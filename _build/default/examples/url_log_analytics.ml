(* URL access-log analytics with the append-only Wavelet Trie.

   The motivating scenario from the paper's introduction: an access log
   is compressed and indexed on the fly (Append is O(|s| + h_s)), the
   sequence order is the time order, and prefix queries answer
   domain-level analytics over arbitrary time windows — e.g. "what was
   the most accessed domain during winter vacation?".

   Build:  dune exec examples/url_log_analytics.exe *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Append_wt = Wt_core.Append_wt
module Range = Wt_core.Range
module Urls = Wt_workload.Urls

let () =
  let n = 200_000 in
  let g = Urls.create ~seed:2026 ~hosts:40 () in

  (* Stream the log into the index as it "arrives". *)
  let wt = Append_wt.create () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Append_wt.append wt (Urls.next_encoded g)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "indexed %d log lines in %.2fs (%.0f ns/append)\n" n dt
    (dt *. 1e9 /. float_of_int n);

  let st = Append_wt.stats wt in
  let raw_bits_per_line =
    let g' = Urls.create ~seed:2026 ~hosts:40 () in
    let acc = ref 0 in
    for _ = 1 to 1000 do
      acc := !acc + Bitstring.length (Urls.next_encoded g')
    done;
    float_of_int !acc /. 1000.
  in
  Printf.printf "space: %.1f bits/line vs %.1f raw bits/line (%.1fx compression)\n"
    (float_of_int st.total_bits /. float_of_int n)
    raw_bits_per_line
    (raw_bits_per_line /. (float_of_int st.total_bits /. float_of_int n));

  (* "Winter vacation" = a window of positions in time order. *)
  let window_lo = n / 2 and window_hi = (n / 2) + 20_000 in
  Printf.printf "\ntime window [%d, %d):\n" window_lo window_hi;

  (* Per-domain hit counts in the window: one RankPrefix pair per host. *)
  Printf.printf "top domains (rank_prefix per host):\n";
  let counts =
    List.init (Urls.host_count g) (fun h ->
        let p = Urls.host_prefix g h in
        let c =
          Append_wt.rank_prefix wt p window_hi - Append_wt.rank_prefix wt p window_lo
        in
        (h, p, c))
  in
  let top = List.sort (fun (_, _, a) (_, _, b) -> compare b a) counts in
  List.iteri
    (fun i (h, _, c) ->
      if i < 5 then Printf.printf "  host #%02d: %6d hits\n" h c)
    top;

  (* The same, discovered without knowing the hosts: frequent strings in
     the window via the Section 5 threshold heuristic. *)
  Printf.printf "\nURLs with >= 500 hits in the window (at_least):\n";
  List.iter
    (fun (s, c) -> Printf.printf "  %6d  %s\n" c (Binarize.to_bytes s))
    (Range.Append.at_least wt ~lo:window_lo ~hi:window_hi ~threshold:500);

  (* Majority check: is any single URL more than half of the window? *)
  (match Range.Append.majority wt ~lo:window_lo ~hi:window_hi with
  | Some (s, c) -> Printf.printf "\nmajority URL: %s (%d hits)\n" (Binarize.to_bytes s) c
  | None -> Printf.printf "\nno single URL is a majority of the window\n");

  (* Report the individual accesses of one domain inside the window by
     iterating SelectPrefix. *)
  let h0 = match top with (h, _, _) :: _ -> h | [] -> 0 in
  let p = Urls.host_prefix g h0 in
  let before = Append_wt.rank_prefix wt p window_lo in
  Printf.printf "\nfirst 3 accesses to host #%02d inside the window:\n" h0;
  for k = 0 to 2 do
    match Append_wt.select_prefix wt p (before + k) with
    | Some pos when pos < window_hi ->
        Printf.printf "  t=%d  %s\n" pos (Binarize.to_bytes (Append_wt.access wt pos))
    | _ -> ()
  done;

  (* The log keeps growing while queries run. *)
  for _ = 1 to 1000 do
    Append_wt.append wt (Urls.next_encoded g)
  done;
  Printf.printf "\nappended 1000 more lines; length now %d\n" (Append_wt.length wt)
