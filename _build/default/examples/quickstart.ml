(* Quickstart: the indexed-sequence-of-strings API in five minutes.

   Build:  dune exec examples/quickstart.exe *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Wavelet_trie = Wt_core.Wavelet_trie
module Dynamic_wt = Wt_core.Dynamic_wt
module Range = Wt_core.Range

(* Any OCaml string becomes a prefix-free bitstring via Binarize. *)
let enc = Binarize.of_bytes
let dec = Binarize.to_bytes

(* A bit-prefix meaning "starts with the byte string w". *)
let starts_with w =
  let e = enc w in
  Bitstring.prefix e (Bitstring.length e - 1)

let () =
  (* A tiny access log: the sequence order is the time order. *)
  let log =
    [
      "site.com/home"; "site.com/login"; "blog.net/post/1"; "site.com/home";
      "blog.net/post/2"; "site.com/home"; "shop.org/cart"; "blog.net/post/1";
      "site.com/logout"; "site.com/home";
    ]
  in
  let wt = Wavelet_trie.of_list (List.map enc log) in

  Printf.printf "sequence length: %d, distinct strings: %d\n"
    (Wavelet_trie.length wt) (Wavelet_trie.distinct_count wt);

  (* Access: what was the 4th request? *)
  Printf.printf "access 4        = %s\n" (dec (Wavelet_trie.access wt 4));

  (* Rank: how many times was the home page hit in the first 6 requests? *)
  Printf.printf "rank home, 6    = %d\n" (Wavelet_trie.rank wt (enc "site.com/home") 6);

  (* Select: when was the home page hit for the third time? *)
  (match Wavelet_trie.select wt (enc "site.com/home") 2 with
  | Some pos -> Printf.printf "select home, 2  = position %d\n" pos
  | None -> print_endline "select home, 2  = absent");

  (* Prefix operations: whole-domain queries without grouping anything. *)
  Printf.printf "rank_prefix site.com, 10 = %d\n"
    (Wavelet_trie.rank_prefix wt (starts_with "site.com/") 10);
  (match Wavelet_trie.select_prefix wt (starts_with "blog.net/") 1 with
  | Some pos -> Printf.printf "2nd blog.net access at position %d\n" pos
  | None -> ());

  (* Section 5 analytics on a position range (= time window). *)
  Printf.printf "distinct in window [2, 9):\n";
  List.iter
    (fun (s, c) -> Printf.printf "  %-18s x%d\n" (dec s) c)
    (Range.Static.distinct wt ~lo:2 ~hi:9);
  (match Range.Static.majority wt ~lo:0 ~hi:10 with
  | Some (s, c) -> Printf.printf "majority of the whole log: %s (%d/10)\n" (dec s) c
  | None -> Printf.printf "no majority in the whole log\n");

  (* The fully dynamic version: unseen strings may arrive at any moment. *)
  let dwt = Dynamic_wt.of_array (Array.of_list (List.map enc log)) in
  Dynamic_wt.insert dwt 3 (enc "api.io/v1/users"); (* a brand-new domain *)
  Printf.printf "after insert: access 3 = %s, distinct = %d\n"
    (dec (Dynamic_wt.access dwt 3))
    (Dynamic_wt.distinct_count dwt);
  Dynamic_wt.delete dwt 3; (* and gone again — the alphabet shrinks back *)
  Printf.printf "after delete: distinct = %d\n" (Dynamic_wt.distinct_count dwt);

  (* Space accounting vs the information-theoretic lower bound. *)
  Format.printf "space: @[%a@]@." Wt_core.Stats.pp (Wavelet_trie.stats wt);

  (* And the structure itself, in the style of the paper's Figure 2. *)
  let tiny =
    Wavelet_trie.of_list
      (List.map Bitstring.of_string
         [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ])
  in
  Format.printf "@.the paper's Figure 2 trie:@.%a@." Wavelet_trie.pp tiny
