(* Column-oriented storage with indexed sequences.

   The paper's database motivation: each column of a relation is stored
   as an indexed sequence in row order.  Because every column supports
   Access/Rank/Select, the relation supports point lookups, predicate
   counting and (for order-preserving binarizations) range predicates —
   all on the compressed representation, with no extra index.

   Build:  dune exec examples/column_store.exe *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Wavelet_trie = Wt_core.Wavelet_trie
module Naive = Wt_core.Indexed_sequence.Naive
module Columns = Wt_workload.Columns

let () =
  let n = 100_000 in

  (* Relation: orders(status TEXT, amount INT).  Both columns in row
     order; row i is (status[i], amount[i]). *)
  let status_col, vocabulary = Columns.categorical ~seed:1 ~cardinality:8 n in
  let amount_width = 16 in
  let amounts =
    let rng = Wt_bits.Xoshiro.create 99 in
    Array.init n (fun _ ->
        (* skewed order amounts in cents *)
        let base = 1 lsl Wt_bits.Xoshiro.int rng 14 in
        base + Wt_bits.Xoshiro.int rng base)
  in
  let amount_col =
    Array.map (fun v -> Binarize.of_int_msb ~width:amount_width v) amounts
  in
  let status = Wavelet_trie.of_array status_col in
  let amount = Wavelet_trie.of_array amount_col in

  Printf.printf "relation with %d rows, 2 columns\n" n;
  let report name wt =
    let st = Wavelet_trie.stats wt in
    Printf.printf "  column %-8s %8d bits total (%.2f bits/row, LB ratio %.2f)\n" name
      st.total_bits
      (float_of_int st.total_bits /. float_of_int n)
      (float_of_int st.total_bits /. Wt_core.Stats.lower_bound st)
  in
  report "status" status;
  report "amount" amount;
  let naive = Naive.of_array status_col in
  Printf.printf "  (naive status column: %d bits)\n" (Naive.space_bits naive);

  (* Point lookup: SELECT * FROM orders WHERE rowid = 31337 *)
  let rowid = 31337 in
  Printf.printf "\nrow %d: status=%s amount=%d\n" rowid
    (Binarize.to_bytes (Wavelet_trie.access status rowid))
    (Binarize.to_int_msb (Wavelet_trie.access amount rowid));

  (* Predicate count: SELECT COUNT of rows WHERE status = v — one Rank. *)
  Printf.printf "\nstatus histogram (rank over the whole column):\n";
  Array.iter
    (fun v ->
      Printf.printf "  %-12s %6d\n" v
        (Wavelet_trie.rank status (Binarize.of_bytes v) n))
    vocabulary;

  (* k-th matching row: SELECT ... WHERE status = v LIMIT 1 OFFSET k — one
     Select.  Intersections iterate the sparser side. *)
  let v = Binarize.of_bytes vocabulary.(0) in
  (match Wavelet_trie.select status v 9 with
  | Some row ->
      Printf.printf "\n10th row with status %s is row %d (amount %d)\n" vocabulary.(0)
        row
        (Binarize.to_int_msb (Wavelet_trie.access amount row))
  | None -> ());

  (* Numeric range predicate via prefixes: with the MSB-first fixed-width
     binarization, every binary prefix is a dyadic value range, so
     COUNT(amount in [2^k, 2^(k+1))) is one RankPrefix. *)
  Printf.printf "\namount magnitude histogram (rank_prefix per dyadic range):\n";
  for k = 10 to 14 do
    (* values in [2^k, 2^(k+1)) share the 16-bit prefix 0...01 of length
       width - k *)
    let plen = amount_width - k in
    let prefix =
      Bitstring.of_bool_list (List.init plen (fun i -> i = plen - 1))
    in
    Printf.printf "  [%5d, %5d): %6d rows\n" (1 lsl k) (1 lsl (k + 1))
      (Wavelet_trie.rank_prefix amount prefix n)
  done;

  (* Count a conjunctive predicate on a row range (a table scan segment):
     status = v AND rowid in [lo, hi).  Rank two positions. *)
  let lo = 10_000 and hi = 20_000 in
  Printf.printf "\nrows [%d, %d) with status %s: %d\n" lo hi vocabulary.(1)
    (let v = Binarize.of_bytes vocabulary.(1) in
     Wavelet_trie.rank status v hi - Wavelet_trie.rank status v lo)
