(* Numeric columns on a huge universe: Section 6 in action.

   A sequence of 60-bit integers cannot be handled by a classical
   dynamic Wavelet Tree without building the full 60-level tree.  The
   Wavelet Trie alone already avoids that via path compression — but an
   adversarial (or just unlucky) value set can still produce a deep
   trie.  Hashing values with a random odd multiplier first
   (Balanced, Theorem 6.2) bounds the height by ~(alpha+2) log |Sigma|
   with high probability, at the price of losing prefix/range queries.

   Build:  dune exec examples/numeric_balanced.exe *)

module Binarize = Wt_strings.Binarize
module Dynamic_wt = Wt_core.Dynamic_wt
module Balanced = Wt_core.Balanced
module Xoshiro = Wt_bits.Xoshiro

let width = 60

(* Trie height of the unhashed representation, for comparison. *)
let unhashed_height values =
  let wt = Dynamic_wt.create () in
  Array.iter (fun v -> Dynamic_wt.append wt (Binarize.of_int_msb ~width v)) values;
  let module N = Dynamic_wt.Node in
  let rec go node =
    if N.is_leaf node then 0
    else 1 + max (go (N.child node false)) (go (N.child node true))
  in
  match N.root wt with None -> 0 | Some r -> go r

let () =
  let rng = Xoshiro.create 2026 in

  (* An adversarial working alphabet: powers of two.  Under the MSB-first
     binarization they form a single degenerate spine — the unhashed trie
     has height |Sigma| — while the hashed trie stays ~log |Sigma|. *)
  let sigma = 59 in
  let alphabet = Array.init sigma (fun i -> 1 lsl i) in

  let b = Balanced.create ~seed:7 ~width () in
  let n = 50_000 in
  let values = Array.init n (fun _ -> alphabet.(Xoshiro.int rng sigma)) in
  Array.iter (Balanced.append b) values;

  Printf.printf "n = %d values from |Sigma| = %d timestamps in a 2^%d universe\n" n sigma
    width;
  Printf.printf "hashed trie height   : %d (log2 |Sigma| = %.1f)\n" (Balanced.height b)
    (log (float_of_int sigma) /. log 2.);
  Printf.printf "unhashed trie height : %d\n" (unhashed_height alphabet);

  (* The full dynamic interface works on values, transparently hashed. *)
  let v = alphabet.(13) in
  Printf.printf "\nvalue %d:\n" v;
  Printf.printf "  occurrences in first 10000 positions: %d\n" (Balanced.rank b v 10_000);
  (match Balanced.select b v 0 with
  | Some pos ->
      Printf.printf "  first occurrence at %d; access -> %d\n" pos (Balanced.access b pos)
  | None -> ());

  (* Updates, including values never seen before. *)
  Balanced.insert b 0 ((1 lsl 59) + 12345);
  Printf.printf "\ninserted a fresh value at t=0: access 0 = %d, |Sigma| = %d\n"
    (Balanced.access b 0) (Balanced.distinct_count b);
  Balanced.delete b 0;
  Printf.printf "deleted it: |Sigma| = %d\n" (Balanced.distinct_count b);

  let st = Balanced.stats b in
  Printf.printf "\nspace: %.1f bits per value (nH0 = %.1f bits/value)\n"
    (float_of_int st.total_bits /. float_of_int n)
    (st.seq_h0_bits /. float_of_int n)
