examples/quickstart.ml: Array Format List Printf Wt_core Wt_strings
