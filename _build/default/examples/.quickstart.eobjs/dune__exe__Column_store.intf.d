examples/column_store.mli:
