examples/url_log_analytics.mli:
