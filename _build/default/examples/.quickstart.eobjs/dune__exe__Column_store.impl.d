examples/column_store.ml: Array List Printf Wt_bits Wt_core Wt_strings Wt_workload
