examples/numeric_balanced.mli:
