examples/social_snapshots.mli:
