examples/url_log_analytics.ml: List Printf Unix Wt_core Wt_strings Wt_workload
