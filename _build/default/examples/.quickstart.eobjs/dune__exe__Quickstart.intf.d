examples/quickstart.mli:
