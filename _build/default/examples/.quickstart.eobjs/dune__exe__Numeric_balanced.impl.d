examples/numeric_balanced.ml: Array Printf Wt_bits Wt_core Wt_strings
