examples/social_snapshots.ml: List Printf String Wt_core Wt_strings
