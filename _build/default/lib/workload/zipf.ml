type t = { cum : float array }

let create ?(s = 1.0) n =
  if n < 1 then invalid_arg "Zipf.create";
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for r = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (r + 1)) s);
    cum.(r) <- !acc
  done;
  let total = !acc in
  Array.iteri (fun i v -> cum.(i) <- v /. total) cum;
  { cum }

let size t = Array.length t.cum

let sample t rng =
  let u = Wt_bits.Xoshiro.float rng in
  (* first index with cum >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo
