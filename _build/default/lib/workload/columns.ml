module Xoshiro = Wt_bits.Xoshiro
module Binarize = Wt_strings.Binarize

let vocab rng k =
  Array.init k (fun i ->
      let len = 2 + Xoshiro.int rng 8 in
      String.init len (fun _ -> Char.chr (Char.code 'a' + Xoshiro.int rng 26))
      ^ string_of_int i)

let categorical ?(seed = 7) ?(cardinality = 64) n =
  let rng = Xoshiro.create seed in
  let words = vocab rng cardinality in
  let dist = Zipf.create ~s:1.2 cardinality in
  let col = Array.init n (fun _ -> Binarize.of_bytes words.(Zipf.sample dist rng)) in
  (col, words)

let identifiers ?(seed = 8) ?(universe = 1 lsl 24) n =
  let rng = Xoshiro.create seed in
  let width = Wt_bits.Broadword.bit_width (universe - 1) in
  let dist = Zipf.create ~s:0.9 4096 in
  Array.init n (fun _ ->
      (* skewed base plus noise, clamped to the universe *)
      let v = (Zipf.sample dist rng * 37) + Xoshiro.int rng 17 in
      Binarize.of_int_msb ~width (v mod universe))

let numeric ?(seed = 9) ?(bits = 40) ?(distinct = 256) n =
  let rng = Xoshiro.create seed in
  (* a sparse working alphabet scattered across the whole universe *)
  let alphabet =
    Array.init distinct (fun _ -> Xoshiro.next rng land Wt_bits.Broadword.mask bits)
  in
  let dist = Zipf.create ~s:1.0 distinct in
  Array.init n (fun _ -> alphabet.(Zipf.sample dist rng))
