(** Zipfian rank sampler.

    Draws ranks in [0, n) with probability proportional to
    [1 / (rank+1)^s], via an explicit cumulative table (O(n) setup,
    O(log n) per sample).  Used to give the synthetic logs the skewed
    frequency profile (low H0) the paper's motivation relies on. *)

type t

val create : ?s:float -> int -> t
(** [create ?s n] over ranks [0, n); default exponent [s = 1.0]. *)

val sample : t -> Wt_bits.Xoshiro.t -> int
val size : t -> int
