(** Word-sequence generator for the document-store motivation.

    Produces a "text" as a sequence of words drawn from a Zipfian
    vocabulary with occasional fresh words (so the alphabet keeps growing,
    as with unseen words arriving in new documents). *)

type t

val create : ?seed:int -> ?base_vocab:int -> ?fresh_every:int -> unit -> t
(** [fresh_every = k]: roughly one word in [k] is brand new (default 64;
    0 disables fresh words). *)

val next : t -> string
val next_encoded : t -> Wt_strings.Bitstring.t
val sequence : t -> int -> Wt_strings.Bitstring.t array
