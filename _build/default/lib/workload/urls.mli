(** Synthetic hierarchical URL/path log generator.

    Models the paper's motivating workloads (query logs, access logs,
    URL sequences): a power-law distribution over a fixed set of hosts,
    per-host directory trees, and power-law path popularity.  The
    resulting string sequences have skewed frequencies (low H0), long
    shared prefixes (small h̃) and an alphabet that grows over time —
    exactly the structure the Wavelet Trie exploits.

    Strings are returned both as raw text and pre-binarized
    ({!Wt_strings.Binarize.of_bytes}), and the generator is fully
    deterministic given its seed. *)

type t

val create : ?seed:int -> ?hosts:int -> ?paths_per_host:int -> ?depth:int -> unit -> t
(** Defaults: 50 hosts, 40 paths per host, max directory depth 3. *)

val next : t -> string
(** The next log line, e.g. ["http://host07.example.com/a/b/file4"]. *)

val next_encoded : t -> Wt_strings.Bitstring.t

val sequence : t -> int -> Wt_strings.Bitstring.t array
(** [sequence t n] draws [n] encoded log lines. *)

val raw_sequence : t -> int -> string array

val host_prefix : t -> int -> Wt_strings.Bitstring.t
(** [host_prefix t i] is the encoded bit-prefix shared by every URL of
    host [i] (for prefix-query experiments: "all accesses to this
    domain"). *)

val host_count : t -> int
