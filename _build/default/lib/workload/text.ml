module Xoshiro = Wt_bits.Xoshiro
module Binarize = Wt_strings.Binarize

type t = {
  rng : Xoshiro.t;
  mutable vocab : string array;
  mutable used : int;
  dist : Zipf.t;
  fresh_every : int;
  mutable counter : int;
}

let make_word rng n =
  String.init (2 + Xoshiro.int rng 7) (fun _ ->
      Char.chr (Char.code 'a' + Xoshiro.int rng 26))
  ^ string_of_int n

let create ?(seed = 11) ?(base_vocab = 512) ?(fresh_every = 64) () =
  if base_vocab < 1 then invalid_arg "Text.create";
  let rng = Xoshiro.create seed in
  let vocab = Array.init (2 * base_vocab) (fun i -> make_word rng i) in
  { rng; vocab; used = base_vocab; dist = Zipf.create ~s:1.05 base_vocab; fresh_every; counter = 0 }

let next t =
  t.counter <- t.counter + 1;
  if t.fresh_every > 0 && Xoshiro.int t.rng t.fresh_every = 0 then begin
    (* introduce a brand-new word *)
    if t.used >= Array.length t.vocab then begin
      let bigger = Array.make (2 * t.used) "" in
      Array.blit t.vocab 0 bigger 0 t.used;
      t.vocab <- bigger;
      for i = t.used to (2 * t.used) - 1 do
        t.vocab.(i) <- make_word t.rng i
      done
    end;
    let w = t.vocab.(t.used) in
    t.used <- t.used + 1;
    w
  end
  else t.vocab.(Zipf.sample t.dist t.rng)

let next_encoded t = Binarize.of_bytes (next t)
let sequence t n = Array.init n (fun _ -> next_encoded t)
