(** Set-associative LRU cache simulator over {!Wt_bits.Bitbuf} reads.

    The paper closes with an open question: "it is an open question how
    the Wavelet Trie would perform in external or cache-oblivious
    models".  We do not have a hardware cache to instrument in this
    environment, so we simulate one (per DESIGN.md's substitution rule):
    {!Wt_bits.Bitbuf.set_probe} reports every read of every bit buffer,
    and this module replays those accesses through a classic
    set-associative LRU cache, counting hits and misses.

    Addresses are synthesized as [(buffer id, byte offset)]; distinct
    buffers never share a line, which models each succinct structure
    living in its own allocation.  This ignores non-bitvector memory
    (node records, directories stored in OCaml arrays), so absolute miss
    counts are lower bounds; comparisons between layouts touching the
    same kinds of data remain meaningful. *)

type t

val create : ?line_bytes:int -> ?ways:int -> ?sets:int -> unit -> t
(** Defaults model a small L1: 64-byte lines, 8 ways, 64 sets (32 KiB). *)

val install : t -> unit
(** Route the global bit-buffer probe into this cache.  Replaces any
    previously installed probe. *)

val uninstall : unit -> unit
(** Remove the probe (no tracing overhead afterwards). *)

val reset_stats : t -> unit

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float

val run : t -> (unit -> 'a) -> 'a * int
(** [run t f] installs the cache, runs [f], uninstalls, and returns
    [f ()]'s result with the number of misses incurred during the call. *)
