type t = {
  line_bytes : int;
  ways : int;
  sets : int;
  tags : int array; (* sets * ways; -1 = empty *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(line_bytes = 64) ?(ways = 8) ?(sets = 64) () =
  if line_bytes < 1 || ways < 1 || sets < 1 then invalid_arg "Cache_sim.create";
  {
    line_bytes;
    ways;
    sets;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let touch_line t line =
  t.clock <- t.clock + 1;
  t.accesses <- t.accesses + 1;
  let set = line mod t.sets in
  let base = set * t.ways in
  (* hit? *)
  let hit = ref false in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = line then begin
      hit := true;
      t.stamps.(base + w) <- t.clock
    end
  done;
  if not !hit then begin
    t.misses <- t.misses + 1;
    (* evict the LRU way *)
    let victim = ref base in
    for w = 1 to t.ways - 1 do
      if t.stamps.(base + w) < t.stamps.(!victim) then victim := base + w
    done;
    t.tags.(!victim) <- line;
    t.stamps.(!victim) <- t.clock
  end

let access t buffer_id byte_off nbytes =
  (* synthesize distinct address spaces per buffer: 1 MiB apart *)
  let addr = (buffer_id * 1_048_576) + byte_off in
  let first = addr / t.line_bytes in
  let last = (addr + max 1 nbytes - 1) / t.line_bytes in
  for line = first to last do
    touch_line t line
  done

let install t = Wt_bits.Bitbuf.set_probe (Some (access t))
let uninstall () = Wt_bits.Bitbuf.set_probe None

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let accesses t = t.accesses
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let run t f =
  install t;
  let before = t.misses in
  Fun.protect ~finally:uninstall (fun () ->
      let r = f () in
      (r, t.misses - before))
