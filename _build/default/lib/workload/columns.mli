(** Column-store workload generators.

    Models the paper's database motivation: columns of a relation stored
    as indexed sequences.  Provides a low-cardinality categorical column
    (country codes, status strings), a skewed identifier column, and a
    numeric column for the Section 6 balanced Wavelet Tree. *)

val categorical :
  ?seed:int -> ?cardinality:int -> int -> Wt_strings.Bitstring.t array * string array
(** [categorical n] draws a Zipf-distributed column of [n] values from a
    generated vocabulary; returns the encoded column and the vocabulary. *)

val identifiers : ?seed:int -> ?universe:int -> int -> Wt_strings.Bitstring.t array
(** Skewed numeric identifiers, binarized MSB-first at fixed width (so
    numeric range queries map to prefix queries). *)

val numeric : ?seed:int -> ?bits:int -> ?distinct:int -> int -> int array
(** Raw integers from a sparse working alphabet of [distinct] values
    inside a [2^bits] universe (the Section 6 scenario). *)
