module Xoshiro = Wt_bits.Xoshiro
module Binarize = Wt_strings.Binarize
module Bitstring = Wt_strings.Bitstring

type t = {
  rng : Xoshiro.t;
  hosts : string array;
  paths : string array array; (* per host *)
  host_dist : Zipf.t;
  path_dist : Zipf.t;
}

let syllables = [| "ka"; "lo"; "mi"; "ta"; "ren"; "zu"; "pol"; "da"; "vex"; "or" |]

let word rng =
  String.concat ""
    (List.init (1 + Xoshiro.int rng 3) (fun _ ->
         syllables.(Xoshiro.int rng (Array.length syllables))))

let create ?(seed = 42) ?(hosts = 50) ?(paths_per_host = 40) ?(depth = 3) () =
  if hosts < 1 || paths_per_host < 1 || depth < 1 then invalid_arg "Urls.create";
  let rng = Xoshiro.create seed in
  let host_names =
    Array.init hosts (fun i -> Printf.sprintf "http://%s%02d.example.com/" (word rng) i)
  in
  let paths =
    Array.map
      (fun _ ->
        (* a small directory tree: directories shared across the host's paths *)
        let dirs = Array.init 6 (fun _ -> word rng) in
        Array.init paths_per_host (fun i ->
            let d = 1 + Xoshiro.int rng depth in
            let parts =
              List.init d (fun _ -> dirs.(Xoshiro.int rng (Array.length dirs)))
            in
            String.concat "/" parts ^ Printf.sprintf "/file%d" i))
      host_names
  in
  {
    rng;
    hosts = host_names;
    paths;
    host_dist = Zipf.create ~s:1.1 hosts;
    path_dist = Zipf.create ~s:1.0 paths_per_host;
  }

let next t =
  let h = Zipf.sample t.host_dist t.rng in
  let p = Zipf.sample t.path_dist t.rng in
  t.hosts.(h) ^ t.paths.(h).(p)

let next_encoded t = Binarize.of_bytes (next t)
let sequence t n = Array.init n (fun _ -> next_encoded t)
let raw_sequence t n = Array.init n (fun _ -> next t)
let host_count t = Array.length t.hosts

let host_prefix t i =
  if i < 0 || i >= Array.length t.hosts then invalid_arg "Urls.host_prefix";
  let enc = Binarize.of_bytes t.hosts.(i) in
  (* Drop the terminator bit: what remains is a bit-prefix of every URL
     encoding that extends this host string. *)
  Bitstring.prefix enc (Bitstring.length enc - 1)
