lib/workload/urls.ml: Array List Printf String Wt_bits Wt_strings Zipf
