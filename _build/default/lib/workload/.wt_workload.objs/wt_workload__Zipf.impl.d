lib/workload/zipf.ml: Array Float Wt_bits
