lib/workload/zipf.mli: Wt_bits
