lib/workload/columns.mli: Wt_strings
