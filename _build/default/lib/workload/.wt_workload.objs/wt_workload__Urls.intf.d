lib/workload/urls.mli: Wt_strings
