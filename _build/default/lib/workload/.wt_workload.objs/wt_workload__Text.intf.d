lib/workload/text.mli: Wt_strings
