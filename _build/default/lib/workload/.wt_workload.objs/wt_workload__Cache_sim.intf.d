lib/workload/cache_sim.mli:
