lib/workload/text.ml: Array Char String Wt_bits Wt_strings Zipf
