lib/workload/columns.ml: Array Char String Wt_bits Wt_strings Zipf
