lib/workload/cache_sim.ml: Array Fun Wt_bits
