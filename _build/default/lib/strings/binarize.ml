module Bitbuf = Wt_bits.Bitbuf
module Broadword = Wt_bits.Broadword

let of_bytes s =
  let n = String.length s in
  let out = Bitbuf.create ~capacity_bits:((9 * n) + 1) () in
  String.iter
    (fun c ->
      Bitbuf.add out true;
      (* MSB first preserves byte order under bit-lexicographic compare *)
      Bitbuf.add_bits out 8 (Broadword.reverse_bits (Char.code c) 8))
    s;
  Bitbuf.add out false;
  Bitstring.of_bitbuf out

let to_bytes bs =
  let buf = Buffer.create 16 in
  let n = Bitstring.length bs in
  let rec go pos =
    if pos >= n then invalid_arg "Binarize.to_bytes: missing terminator"
    else if not (Bitstring.get bs pos) then
      if pos + 1 = n then Buffer.contents buf
      else invalid_arg "Binarize.to_bytes: trailing bits"
    else if pos + 9 > n then invalid_arg "Binarize.to_bytes: truncated byte"
    else begin
      let v = Bitstring.get_bits bs (pos + 1) 8 in
      Buffer.add_char buf (Char.chr (Broadword.reverse_bits v 8));
      go (pos + 9)
    end
  in
  go 0

let of_int_msb ~width v =
  if width < 1 || width > 62 then invalid_arg "Binarize.of_int_msb: bad width";
  if v < 0 || (width < 62 && v >= 1 lsl width) then
    invalid_arg "Binarize.of_int_msb: value out of range";
  let out = Bitbuf.create ~capacity_bits:width () in
  Bitbuf.add_bits out width (Broadword.reverse_bits v width);
  Bitstring.of_bitbuf out

let to_int_msb bs =
  let w = Bitstring.length bs in
  if w < 1 || w > 62 then invalid_arg "Binarize.to_int_msb: bad width";
  Broadword.reverse_bits (Bitstring.get_bits bs 0 w) w

let of_int_lsb ~width v =
  if width < 1 || width > 62 then invalid_arg "Binarize.of_int_lsb: bad width";
  if v < 0 || (width < 62 && v >= 1 lsl width) then
    invalid_arg "Binarize.of_int_lsb: value out of range";
  let out = Bitbuf.create ~capacity_bits:width () in
  Bitbuf.add_bits out width v;
  Bitstring.of_bitbuf out

let to_int_lsb bs =
  let w = Bitstring.length bs in
  if w < 1 || w > 62 then invalid_arg "Binarize.to_int_lsb: bad width";
  Bitstring.get_bits bs 0 w
