lib/strings/bitstring.ml: Format List String Wt_bits
