lib/strings/binarize.ml: Bitstring Buffer Char String Wt_bits
