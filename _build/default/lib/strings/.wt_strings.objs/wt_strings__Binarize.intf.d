lib/strings/binarize.mli: Bitstring
