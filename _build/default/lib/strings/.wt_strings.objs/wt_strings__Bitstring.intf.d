lib/strings/bitstring.mli: Format Wt_bits
