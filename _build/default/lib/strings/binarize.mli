(** Codecs from user-facing values to prefix-free binary strings.

    The Wavelet Trie requires the underlying string set to be prefix-free
    (Section 3 of the paper): "any set of strings can be made prefix-free
    by appending a terminator".  These codecs realize that:

    - {!of_bytes} encodes an arbitrary OCaml [string] (any bytes,
      including NUL) as a self-delimiting bitstring: each byte becomes a
      [1] marker bit followed by the 8 data bits (MSB first) and the
      string ends with a single [0] bit.  No codeword is a prefix of
      another, and the encoding preserves the lexicographic order of the
      underlying byte strings.
    - {!of_int_msb} encodes an integer as a fixed-width, MSB-first
      bitstring; fixed width makes the code trivially prefix-free and
      order-preserving.
    - {!of_int_lsb} is the LSB-first fixed-width encoding used by the
      randomized balanced Wavelet Tree of Section 6. *)

val of_bytes : string -> Bitstring.t
(** Self-delimiting byte-string encoding, 9 bits per byte plus one. *)

val to_bytes : Bitstring.t -> string
(** Inverse of {!of_bytes}; raises [Invalid_argument] on a bitstring not
    produced by it. *)

val of_int_msb : width:int -> int -> Bitstring.t
(** [of_int_msb ~width v]: [width] bits of [v], most significant first.
    Requires [0 <= v < 2^width], [1 <= width <= 62]. *)

val to_int_msb : Bitstring.t -> int
(** Read back a fixed-width MSB-first integer (width = length). *)

val of_int_lsb : width:int -> int -> Bitstring.t
(** Least-significant-bit-first fixed-width encoding (Section 6). *)

val to_int_lsb : Bitstring.t -> int
