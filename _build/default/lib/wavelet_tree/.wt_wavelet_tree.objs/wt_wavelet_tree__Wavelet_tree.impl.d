lib/wavelet_tree/wavelet_tree.ml: Array String Wt_bits Wt_bitvector
