lib/wavelet_tree/quad_wt.mli: Wt_core Wt_strings
