lib/wavelet_tree/dyn_wavelet_tree.ml: Format List Wt_bitvector
