lib/wavelet_tree/dyn_wavelet_tree.mli:
