lib/wavelet_tree/wavelet_tree.mli: Wt_bits Wt_bitvector
