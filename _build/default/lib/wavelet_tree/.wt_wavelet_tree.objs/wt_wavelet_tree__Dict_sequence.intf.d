lib/wavelet_tree/dict_sequence.mli: Wt_strings
