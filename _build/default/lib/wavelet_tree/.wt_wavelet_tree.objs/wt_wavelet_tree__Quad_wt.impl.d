lib/wavelet_tree/quad_wt.ml: Array Bool Fun List Wavelet_tree Wt_strings
