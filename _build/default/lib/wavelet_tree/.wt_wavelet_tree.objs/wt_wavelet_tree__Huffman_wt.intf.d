lib/wavelet_tree/huffman_wt.mli: Wt_core Wt_strings
