lib/wavelet_tree/huffman_wt.ml: Array Fun Hashtbl List Queue Wt_core Wt_strings
