lib/wavelet_tree/dict_sequence.ml: Array List Wavelet_tree Wt_strings
