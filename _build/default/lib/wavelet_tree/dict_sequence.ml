module Bitstring = Wt_strings.Bitstring
module WT = Wavelet_tree.Over_rrr

type t = {
  dict : Bitstring.t array; (* lexicographically sorted distinct strings *)
  wt : WT.t;
  n : int;
}

let of_array strings =
  let dict =
    Array.of_list (List.sort_uniq Bitstring.compare (Array.to_list strings))
  in
  let sigma = max 1 (Array.length dict) in
  (* exact-match binary search *)
  let id_of s =
    let lo = ref 0 and hi = ref (Array.length dict) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if Bitstring.compare dict.(mid) s <= 0 then lo := mid else hi := mid
    done;
    !lo
  in
  let ids = Array.map id_of strings in
  { dict; wt = WT.of_array ~sigma ids; n = Array.length strings }

let length t = t.n
let distinct_count t = Array.length t.dict

let find t s =
  let lo = ref (-1) and hi = ref (Array.length t.dict) in
  (* invariant: dict[lo] < s <= ... ; find exact match *)
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if Bitstring.compare t.dict.(mid) s < 0 then lo := mid else hi := mid
  done;
  if !hi < Array.length t.dict && Bitstring.equal t.dict.(!hi) s then Some !hi else None

(* Dictionary ids whose string starts with [p] form a contiguous range
   because the order is lexicographic and a prefix sorts before (and every
   non-extension >= p sorts after) all its extensions. *)
let prefix_id_range t p =
  (* classify: -1 below the block, 0 inside, 1 above *)
  let classify s =
    if Bitstring.is_prefix ~prefix:p s then 0 else Bitstring.compare s p
  in
  let first_not_below () =
    let lo = ref (-1) and hi = ref (Array.length t.dict) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if classify t.dict.(mid) < 0 then lo := mid else hi := mid
    done;
    !hi
  in
  let first_above () =
    let lo = ref (-1) and hi = ref (Array.length t.dict) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if classify t.dict.(mid) <= 0 then lo := mid else hi := mid
    done;
    !hi
  in
  (first_not_below (), first_above ())

let access t pos =
  if pos < 0 || pos >= t.n then invalid_arg "Dict_sequence.access";
  t.dict.(WT.access t.wt pos)

let rank t s pos =
  match find t s with None -> 0 | Some id -> WT.rank t.wt id pos

let select t s idx =
  match find t s with None -> None | Some id -> WT.select t.wt id idx

let rank_prefix t p pos =
  if pos < 0 || pos > t.n then invalid_arg "Dict_sequence.rank_prefix";
  let lo, hi = prefix_id_range t p in
  if lo >= hi then 0 else WT.range_count t.wt ~lo:0 ~hi:pos ~sym_lo:lo ~sym_hi:hi

(* The operation this representation cannot support efficiently: merge the
   occurrence streams of every dictionary id in the prefix range. *)
let select_prefix t p idx =
  if idx < 0 then invalid_arg "Dict_sequence.select_prefix";
  let lo, hi = prefix_id_range t p in
  if lo >= hi then None
  else begin
    (* per-id cursor into its occurrence list *)
    let cursors = Array.make (hi - lo) 0 in
    let next_pos i =
      match WT.select t.wt (lo + i) cursors.(i) with
      | Some p -> Some p
      | None -> None
    in
    let rec pop k =
      (* find the id with the smallest next occurrence *)
      let best = ref None in
      for i = 0 to hi - lo - 1 do
        match next_pos i with
        | None -> ()
        | Some p -> (
            match !best with
            | Some (_, bp) when bp <= p -> ()
            | _ -> best := Some (i, p))
      done;
      match !best with
      | None -> None
      | Some (i, p) ->
          if k = 0 then Some p
          else begin
            cursors.(i) <- cursors.(i) + 1;
            pop (k - 1)
          end
    in
    pop idx
  end

let space_bits t =
  let dict_bits =
    Array.fold_left (fun acc s -> acc + Bitstring.length s + 64) 0 t.dict
  in
  WT.space_bits t.wt + dict_bits + (3 * 64)
