module Bitbuf = Wt_bits.Bitbuf
module Broadword = Wt_bits.Broadword

module type FID_BUILD = sig
  include Wt_bitvector.Fid.STATIC

  val of_bitbuf : Bitbuf.t -> t
end

(* Levelwise layout with in-place node refinement: at level l the
   sequence is stably sorted by its top-l bits, so the node for any l-bit
   symbol prefix occupies a contiguous interval [lo, hi) that contains,
   at level l+1, its 0-child block followed by its 1-child block.
   Descending with bit b from interval [lo, hi) with z zeros:
     pos_0 = lo + rank0(pos) - rank0(lo)         child = [lo, lo+z)
     pos_1 = lo + z + rank1(pos) - rank1(lo)     child = [lo+z, hi). *)
module Make (F : FID_BUILD) = struct
  type t = {
    n : int;
    sigma : int;
    levels : int;
    bvs : F.t array; (* one bitvector of n bits per level *)
  }

  let length t = t.n
  let sigma t = t.sigma
  let levels t = t.levels

  let of_array ~sigma a =
    if sigma < 1 then invalid_arg "Wavelet_tree.of_array: sigma < 1";
    Array.iter
      (fun x ->
        if x < 0 || x >= sigma then
          invalid_arg "Wavelet_tree.of_array: symbol out of range")
      a;
    let n = Array.length a in
    let levels = if sigma = 1 then 0 else Broadword.bit_width (sigma - 1) in
    let bufs = Array.init levels (fun _ -> Bitbuf.create ~capacity_bits:n ()) in
    (* DFS over the implicit symbol tree emits, per level, the node
       bitvectors in left-to-right order — exactly the level layout. *)
    let rec go lvl elems =
      if lvl < levels && Array.length elems > 0 then begin
        let shift = levels - 1 - lvl in
        let ones = ref 0 in
        Array.iter
          (fun x ->
            let b = (x lsr shift) land 1 = 1 in
            Bitbuf.add bufs.(lvl) b;
            if b then incr ones)
          elems;
        let z = Array.make (Array.length elems - !ones) 0 in
        let o = Array.make !ones 0 in
        let zi = ref 0 and oi = ref 0 in
        Array.iter
          (fun x ->
            if (x lsr shift) land 1 = 1 then begin
              o.(!oi) <- x;
              incr oi
            end
            else begin
              z.(!zi) <- x;
              incr zi
            end)
          elems;
        go (lvl + 1) z;
        go (lvl + 1) o
      end
    in
    go 0 a;
    { n; sigma; levels; bvs = Array.map F.of_bitbuf bufs }

  let access t pos0 =
    if pos0 < 0 || pos0 >= t.n then invalid_arg "Wavelet_tree.access";
    let sym = ref 0 in
    let lo = ref 0 and hi = ref t.n and pos = ref pos0 in
    for lvl = 0 to t.levels - 1 do
      let bv = t.bvs.(lvl) in
      let z_lo = F.rank bv false !lo and z_hi = F.rank bv false !hi in
      let zeros = z_hi - z_lo in
      if F.access bv !pos then begin
        sym := (!sym lsl 1) lor 1;
        pos := !lo + zeros + (F.rank bv true !pos - (!lo - z_lo));
        lo := !lo + zeros
      end
      else begin
        sym := !sym lsl 1;
        pos := !lo + (F.rank bv false !pos - z_lo);
        hi := !lo + zeros
      end
    done;
    !sym

  let rank t sym pos =
    if pos < 0 || pos > t.n then invalid_arg "Wavelet_tree.rank";
    if sym < 0 || sym >= t.sigma then 0
    else begin
      let lo = ref 0 and hi = ref t.n and pos = ref pos in
      let lvl = ref 0 in
      while !lvl < t.levels && !lo < !hi do
        let bv = t.bvs.(!lvl) in
        let b = (sym lsr (t.levels - 1 - !lvl)) land 1 = 1 in
        let z_lo = F.rank bv false !lo and z_hi = F.rank bv false !hi in
        let zeros = z_hi - z_lo in
        if b then begin
          pos := !lo + zeros + (F.rank bv true !pos - (!lo - z_lo));
          lo := !lo + zeros
        end
        else begin
          pos := !lo + (F.rank bv false !pos - z_lo);
          hi := !lo + zeros
        end;
        incr lvl
      done;
      if !lo >= !hi then 0 else !pos - !lo
    end

  let select t sym idx =
    if idx < 0 then invalid_arg "Wavelet_tree.select";
    if sym < 0 || sym >= t.sigma then None
    else begin
      (* Top-down: record each level's node interval. *)
      let path = Array.make (t.levels + 1) (0, 0) in
      let lo = ref 0 and hi = ref t.n in
      for lvl = 0 to t.levels - 1 do
        path.(lvl) <- (!lo, !hi);
        if !lo < !hi then begin
          let bv = t.bvs.(lvl) in
          let b = (sym lsr (t.levels - 1 - lvl)) land 1 = 1 in
          let z_lo = F.rank bv false !lo and z_hi = F.rank bv false !hi in
          let zeros = z_hi - z_lo in
          if b then lo := !lo + zeros else hi := !lo + zeros
        end
      done;
      if idx >= !hi - !lo then None
      else begin
        (* Bottom-up with select. *)
        let pos = ref (!lo + idx) in
        for lvl = t.levels - 1 downto 0 do
          let bv = t.bvs.(lvl) in
          let b = (sym lsr (t.levels - 1 - lvl)) land 1 = 1 in
          let plo, phi = path.(lvl) in
          let z_plo = F.rank bv false plo in
          if b then begin
            let zeros = F.rank bv false phi - z_plo in
            let one_idx = !pos - (plo + zeros) in
            pos := F.select bv true (plo - z_plo + one_idx)
          end
          else begin
            let zero_idx = !pos - plo in
            pos := F.select bv false (z_plo + zero_idx)
          end
        done;
        Some !pos
      end
    end

  let range_count t ~lo ~hi ~sym_lo ~sym_hi =
    if lo < 0 || hi > t.n || lo > hi then invalid_arg "Wavelet_tree.range_count";
    let width = if t.levels = 0 then 1 else 1 lsl t.levels in
    let qlo = max 0 sym_lo and qhi = min width sym_hi in
    (* [nlo, nhi) is the node's interval at this level; [lo, hi) the query
       positions inside it; [node_sym, node_sym + node_width) the node's
       symbol range. *)
    let rec go lvl nlo nhi lo hi node_sym node_width qlo qhi =
      if lo >= hi || qlo >= qhi then 0
      else if qlo <= node_sym && node_sym + node_width <= qhi then hi - lo
      else begin
        (* node_width > 1 here, so lvl < t.levels *)
        let bv = t.bvs.(lvl) in
        let z_nlo = F.rank bv false nlo in
        let zeros_node = F.rank bv false nhi - z_nlo in
        let z_lo = F.rank bv false lo - z_nlo and z_hi = F.rank bv false hi - z_nlo in
        let o_lo = lo - nlo - z_lo and o_hi = hi - nlo - z_hi in
        let half = node_width / 2 in
        let mid = nlo + zeros_node in
        go (lvl + 1) nlo mid (nlo + z_lo) (nlo + z_hi) node_sym half qlo
          (min qhi (node_sym + half))
        + go (lvl + 1) mid nhi (mid + o_lo) (mid + o_hi) (node_sym + half) half
            (max qlo (node_sym + half))
            qhi
      end
    in
    go 0 0 t.n lo hi 0 width qlo qhi

  (* k-th smallest symbol among positions [lo, hi) (range quantile,
     Gagie-Navarro-Puglisi [11]).  Track the node interval [nlo, nhi) and
     the query positions [lo, hi) inside it; take the 0-branch while it
     holds more than k of the range's elements.  Requires 0 <= k < hi-lo. *)
  let range_quantile t ~lo ~hi k =
    if lo < 0 || hi > t.n || lo > hi then invalid_arg "Wavelet_tree.range_quantile";
    if k < 0 || k >= hi - lo then invalid_arg "Wavelet_tree.range_quantile: bad k";
    let sym = ref 0 in
    let nlo = ref 0 and nhi = ref t.n in
    let lo = ref lo and hi = ref hi and k = ref k in
    for lvl = 0 to t.levels - 1 do
      let bv = t.bvs.(lvl) in
      let z_nlo = F.rank bv false !nlo in
      let zeros_node = F.rank bv false !nhi - z_nlo in
      let z_lo = F.rank bv false !lo - z_nlo and z_hi = F.rank bv false !hi - z_nlo in
      let zeros = z_hi - z_lo in
      let mid = !nlo + zeros_node in
      if !k < zeros then begin
        sym := !sym lsl 1;
        lo := !nlo + z_lo;
        hi := !nlo + z_hi;
        nhi := mid
      end
      else begin
        sym := (!sym lsl 1) lor 1;
        k := !k - zeros;
        let o_lo = !lo - !nlo - z_lo and o_hi = !hi - !nlo - z_hi in
        lo := mid + o_lo;
        hi := mid + o_hi;
        nlo := mid
      end
    done;
    !sym

  let level_bits t i =
    let bv = t.bvs.(i) in
    String.init (F.length bv) (fun j -> if F.access bv j then '1' else '0')

  let space_bits t =
    Array.fold_left (fun acc bv -> acc + F.space_bits bv) (64 * 4) t.bvs
end

module Over_plain = Make (Wt_bitvector.Plain)
module Over_rrr = Make (Wt_bitvector.Rrr)
