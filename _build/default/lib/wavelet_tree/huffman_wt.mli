(** Huffman-shaped Wavelet Tree, realized as a Wavelet Trie.

    Section 3 of the paper observes that "the Huffman-tree shaped Wavelet
    Tree can be obtained as a Wavelet Trie by mapping each symbol to its
    Huffman code".  This module does exactly that: it computes a Huffman
    code for the input's symbol frequencies, binarizes the sequence
    through it, and stores the result in the static {!Wt_core.Wavelet_trie}.
    The average root-to-leaf depth h̃ then equals the average codeword
    length, within one bit of H0. *)

type t

val of_array : sigma:int -> int array -> t
(** Requires a non-empty array with symbols in [0, sigma). *)

val length : t -> int
val access : t -> int -> int
val rank : t -> int -> int -> int
val select : t -> int -> int -> int option

val code_of : t -> int -> Wt_strings.Bitstring.t option
(** The Huffman codeword of a symbol ([None] if the symbol never occurs). *)

val avg_code_length : t -> float
(** h̃ of the underlying Wavelet Trie = average codeword length. *)

val stats : t -> Wt_core.Stats.t
val space_bits : t -> int
