module Dyn_rle = Wt_bitvector.Dyn_rle

(* Balanced symbol-range tree, fixed at creation. *)
type node =
  | Leaf of int
  | Node of { bv : Dyn_rle.t; mid : int; left : node; right : node }

type t = { mutable n : int; sigma : int; root : node }

let rec build lo hi =
  if hi - lo = 1 then Leaf lo
  else begin
    let mid = (lo + hi + 1) / 2 in
    Node { bv = Dyn_rle.create (); mid; left = build lo mid; right = build mid hi }
  end

let create ~sigma =
  if sigma < 1 then invalid_arg "Dyn_wavelet_tree.create: sigma < 1";
  { n = 0; sigma; root = build 0 sigma }

let length t = t.n
let sigma t = t.sigma

let access t pos =
  if pos < 0 || pos >= t.n then invalid_arg "Dyn_wavelet_tree.access";
  let rec go node pos =
    match node with
    | Leaf s -> s
    | Node { bv; left; right; _ } ->
        let b, pos' = Dyn_rle.access_rank bv pos in
        go (if b then right else left) pos'
  in
  go t.root pos

let rank t sym pos =
  if pos < 0 || pos > t.n then invalid_arg "Dyn_wavelet_tree.rank";
  if sym < 0 || sym >= t.sigma then 0
  else begin
    let rec go node pos =
      if pos = 0 then 0
      else
        match node with
        | Leaf _ -> pos
        | Node { bv; mid; left; right } ->
            let b = sym >= mid in
            go (if b then right else left) (Dyn_rle.rank bv b pos)
    in
    go t.root pos
  end

let select t sym idx =
  if idx < 0 then invalid_arg "Dyn_wavelet_tree.select";
  if sym < 0 || sym >= t.sigma then None
  else begin
    let rec down node acc =
      match node with
      | Leaf _ -> Some acc
      | Node { bv; mid; left; right } ->
          let b = sym >= mid in
          let cnt = if b then Dyn_rle.ones bv else Dyn_rle.zeros bv in
          if cnt = 0 then None else down (if b then right else left) ((bv, b) :: acc)
    in
    match down t.root [] with
    | None -> None
    | Some trail ->
        (* count at the leaf = count of b in the deepest bitvector *)
        let leaf_count =
          match trail with
          | [] -> t.n
          | (bv, b) :: _ -> if b then Dyn_rle.ones bv else Dyn_rle.zeros bv
        in
        if idx >= leaf_count then None
        else
          Some (List.fold_left (fun i (bv, b) -> Dyn_rle.select bv b i) idx trail)
  end

let insert t pos sym =
  if pos < 0 || pos > t.n then invalid_arg "Dyn_wavelet_tree.insert";
  if sym < 0 || sym >= t.sigma then
    invalid_arg "Dyn_wavelet_tree.insert: symbol outside the fixed alphabet";
  let rec go node pos =
    match node with
    | Leaf _ -> ()
    | Node { bv; mid; left; right } ->
        let b = sym >= mid in
        Dyn_rle.insert bv pos b;
        go (if b then right else left) (Dyn_rle.rank bv b pos)
  in
  go t.root pos;
  t.n <- t.n + 1

let append t sym = insert t t.n sym

let delete t pos =
  if pos < 0 || pos >= t.n then invalid_arg "Dyn_wavelet_tree.delete";
  let rec go node pos =
    match node with
    | Leaf _ -> ()
    | Node { bv; left; right; _ } ->
        let b, pos' = Dyn_rle.access_rank bv pos in
        go (if b then right else left) pos';
        Dyn_rle.delete bv pos
  in
  go t.root pos;
  t.n <- t.n - 1

let space_bits t =
  let rec go = function
    | Leaf _ -> 64
    | Node { bv; left; right; _ } -> Dyn_rle.space_bits bv + (4 * 64) + go left + go right
  in
  go t.root + (3 * 64)

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let rec go node expected =
    match node with
    | Leaf _ -> ()
    | Node { bv; left; right; _ } ->
        Dyn_rle.check_invariants bv;
        if Dyn_rle.length bv <> expected then
          fail "node length %d, expected %d" (Dyn_rle.length bv) expected;
        go left (Dyn_rle.zeros bv);
        go right (Dyn_rle.ones bv)
  in
  go t.root t.n
