(** Classic static Wavelet Tree over an integer alphabet (Grossi, Gupta,
    Vitter [13]; Section 2 and Figure 1 of the paper).

    The balanced levelwise layout: [ceil (log2 σ)] bitvectors of [n] bits
    each, with symbol bits taken MSB-first.  Access/Rank/Select run in
    O(log σ) bitvector operations; with RRR bitvectors space is
    [n H0(S) + o(n log σ)] bits.

    This is the baseline the Wavelet Trie generalizes: it requires the
    alphabet [0, σ) to be fixed in advance and supports no prefix
    operations on strings.  {!Make} is parameterized by the bitvector
    (use {!Wt_bitvector.Plain} for speed, {!Wt_bitvector.Rrr} for
    compression). *)

module type FID_BUILD = sig
  include Wt_bitvector.Fid.STATIC

  val of_bitbuf : Wt_bits.Bitbuf.t -> t
end

module Make (_ : FID_BUILD) : sig
  type t

  val of_array : sigma:int -> int array -> t
  (** [of_array ~sigma a] stores [a]; every element must lie in
      [0, sigma), [sigma >= 1]. *)

  val length : t -> int
  val sigma : t -> int
  val levels : t -> int

  val access : t -> int -> int
  val rank : t -> int -> int -> int
  (** [rank t sym pos]: occurrences of [sym] in [0, pos). *)

  val select : t -> int -> int -> int option
  (** Position of the [idx]-th occurrence, or [None]. *)

  val range_count : t -> lo:int -> hi:int -> sym_lo:int -> sym_hi:int -> int
  (** Number of positions in [lo, hi) holding a symbol in
      [sym_lo, sym_hi) — the 2-dimensional count of Mäkinen–Navarro [17]
      that lexicographic dictionary mappings use to emulate RankPrefix. *)

  val range_quantile : t -> lo:int -> hi:int -> int -> int
  (** [range_quantile t ~lo ~hi k] is the [k]-th smallest symbol among
      positions [lo, hi) (0-based; duplicates counted) — the range
      quantile algorithm of Gagie–Navarro–Puglisi the paper's Section 5
      builds on.  Requires [0 <= k < hi - lo]. *)

  val level_bits : t -> int -> string
  (** Render level [i]'s bitvector (Figure 1 golden test). *)

  val space_bits : t -> int
end

module Over_plain : module type of Make (Wt_bitvector.Plain)
module Over_rrr : module type of Make (Wt_bitvector.Rrr)
