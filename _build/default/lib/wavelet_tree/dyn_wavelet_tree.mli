(** Dynamic Wavelet Tree over a {e fixed} integer alphabet — the prior
    state of the art the paper improves on ([12], [16], [18]).

    The tree shape over [0, sigma) is fixed at creation; each internal
    node holds a fully-dynamic RLE+γ bitvector, so [insert]/[delete] of
    symbols run in O(log σ · log n).  Unlike the Wavelet Trie, the
    alphabet must be known in advance: inserting a symbol outside
    [0, sigma) is an error, and space is paid for the fixed tree shape
    even for symbols that never occur.  Used by the [ablation/fixed-
    alphabet] bench. *)

type t

val create : sigma:int -> t
(** [sigma >= 1]. *)

val length : t -> int
val sigma : t -> int

val access : t -> int -> int
val rank : t -> int -> int -> int
val select : t -> int -> int -> int option
val insert : t -> int -> int -> unit
(** [insert t pos sym]. *)

val delete : t -> int -> unit
val append : t -> int -> unit

val space_bits : t -> int
val check_invariants : t -> unit
