module Bitstring = Wt_strings.Bitstring
module Wavelet_trie = Wt_core.Wavelet_trie

type t = {
  codes : Bitstring.t option array; (* symbol -> codeword *)
  decode : (string, int) Hashtbl.t; (* codeword bits -> symbol *)
  wt : Wavelet_trie.t;
}

(* Huffman tree by two-queue merging over sorted leaf weights. *)
let huffman_codes ~sigma freqs =
  let symbols =
    Array.to_list (Array.init sigma Fun.id)
    |> List.filter (fun s -> freqs.(s) > 0)
  in
  let codes = Array.make sigma None in
  (match symbols with
  | [] -> ()
  | [ s ] ->
      (* single distinct symbol: 1-bit code keeps the set prefix-free *)
      codes.(s) <- Some (Bitstring.of_string "0")
  | _ ->
      let module Q = struct
        type tree = Leaf of int | Node of tree * tree

        let weight_sorted =
          List.sort
            (fun a b -> compare freqs.(a) freqs.(b))
            symbols
      end in
      let open Q in
      (* two-queue O(sigma log sigma) construction *)
      let leaves = Queue.create () and merged = Queue.create () in
      List.iter (fun s -> Queue.add (Leaf s, freqs.(s)) leaves) weight_sorted;
      let pop_min () =
        match (Queue.peek_opt leaves, Queue.peek_opt merged) with
        | None, None -> assert false
        | Some x, None -> ignore (Queue.pop leaves); x
        | None, Some y -> ignore (Queue.pop merged); y
        | Some (_, wx), Some (_, wy) ->
            if wx <= wy then (let x = Queue.pop leaves in x)
            else (let y = Queue.pop merged in y)
      in
      let rec build () =
        let a, wa = pop_min () in
        if Queue.is_empty leaves && Queue.is_empty merged then a
        else begin
          let b, wb = pop_min () in
          Queue.add (Node (a, b), wa + wb) merged;
          build ()
        end
      in
      let root = build () in
      let rec assign path = function
        | Leaf s -> codes.(s) <- Some (Bitstring.of_bool_list (List.rev path))
        | Node (a, b) ->
            assign (false :: path) a;
            assign (true :: path) b
      in
      assign [] root);
  codes

let of_array ~sigma a =
  if Array.length a = 0 then invalid_arg "Huffman_wt.of_array: empty input";
  if sigma < 1 then invalid_arg "Huffman_wt.of_array: sigma < 1";
  let freqs = Array.make sigma 0 in
  Array.iter
    (fun x ->
      if x < 0 || x >= sigma then invalid_arg "Huffman_wt.of_array: symbol out of range";
      freqs.(x) <- freqs.(x) + 1)
    a;
  let codes = huffman_codes ~sigma freqs in
  let decode = Hashtbl.create 64 in
  Array.iteri
    (fun s c ->
      match c with Some c -> Hashtbl.replace decode (Bitstring.to_string c) s | None -> ())
    codes;
  let encoded =
    Array.map
      (fun x -> match codes.(x) with Some c -> c | None -> assert false)
      a
  in
  { codes; decode; wt = Wavelet_trie.of_array encoded }

let length t = Wavelet_trie.length t.wt
let code_of t sym = t.codes.(sym)

let access t pos =
  let c = Wavelet_trie.access t.wt pos in
  match Hashtbl.find_opt t.decode (Bitstring.to_string c) with
  | Some s -> s
  | None -> assert false

let rank t sym pos =
  if sym < 0 || sym >= Array.length t.codes then 0
  else match t.codes.(sym) with None -> 0 | Some c -> Wavelet_trie.rank t.wt c pos

let select t sym idx =
  if sym < 0 || sym >= Array.length t.codes then None
  else match t.codes.(sym) with None -> None | Some c -> Wavelet_trie.select t.wt c idx

let stats t = Wavelet_trie.stats t.wt
let avg_code_length t = (stats t).avg_height
let space_bits t = Wavelet_trie.space_bits t.wt + (64 * (Array.length t.codes + 4))
