module Bitstring = Wt_strings.Bitstring
module WT = Wavelet_tree.Over_rrr

(* Per-node symbols: 0..3 = two-bit branches (hi*2 + lo), 4|5 = the string
   ends with one more bit (0|1).  Prefix-freeness guarantees terminal
   symbols never coexist with extensions of the same bit at the same
   node (that situation lengthens the lcp and is caught as a violation
   one level down). *)
let sigma = 6

type node =
  | Leaf of { label : Bitstring.t; count : int }
  | Node of {
      label : Bitstring.t;
      seq : WT.t; (* the node's 6-ary sequence *)
      children : node option array; (* length 4, for symbols 0..3 *)
    }

type t = { root : node option; n : int }

let length t = t.n

let node_len = function Leaf l -> l.count | Node nd -> WT.length nd.seq

(* ------------------------------------------------------------------ *)

let of_array strings =
  let n = Array.length strings in
  let rec build (idxs : int array) off =
    let m = Array.length idxs in
    let first = strings.(idxs.(0)) in
    let alpha_len = ref (Bitstring.length first - off) in
    for k = 1 to m - 1 do
      let l =
        Bitstring.lcp (Bitstring.drop first off) (Bitstring.drop strings.(idxs.(k)) off)
      in
      if l < !alpha_len then alpha_len := l
    done;
    let alpha = Bitstring.sub first off !alpha_len in
    let stop = off + !alpha_len in
    let ends = ref 0 in
    for k = 0 to m - 1 do
      if Bitstring.length strings.(idxs.(k)) = stop then incr ends
    done;
    if !ends = m then Leaf { label = alpha; count = m }
    else if !ends > 0 then
      invalid_arg "Quad_wt.of_array: string set is not prefix-free"
    else begin
      let sym_of s =
        if Bitstring.length s = stop + 1 then 4 + Bool.to_int (Bitstring.get s stop)
        else
          (2 * Bool.to_int (Bitstring.get s stop))
          + Bool.to_int (Bitstring.get s (stop + 1))
      in
      let syms = Array.map (fun i -> sym_of strings.(i)) idxs in
      let counts = Array.make sigma 0 in
      Array.iter (fun s -> counts.(s) <- counts.(s) + 1) syms;
      let groups = Array.init 4 (fun s -> Array.make counts.(s) 0) in
      let fill = Array.make 4 0 in
      Array.iteri
        (fun k s ->
          if s < 4 then begin
            groups.(s).(fill.(s)) <- idxs.(k);
            fill.(s) <- fill.(s) + 1
          end)
        syms;
      Node
        {
          label = alpha;
          seq = WT.of_array ~sigma syms;
          children =
            Array.init 4 (fun s ->
                if counts.(s) = 0 then None else Some (build groups.(s) (stop + 2)));
        }
    end
  in
  if n = 0 then { root = None; n = 0 }
  else { root = Some (build (Array.init n Fun.id) 0); n }

(* ------------------------------------------------------------------ *)

let bit_string b = Bitstring.of_bool_list [ b ]
let sym_bits s = Bitstring.of_bool_list [ s land 2 <> 0; s land 1 <> 0 ]

let access t pos =
  if pos < 0 || pos >= t.n then invalid_arg "Quad_wt.access";
  let rec go node pos acc =
    match node with
    | Leaf { label; _ } -> Bitstring.concat (List.rev (label :: acc))
    | Node { label; seq; children } -> (
        let sym = WT.access seq pos in
        if sym >= 4 then
          Bitstring.concat (List.rev (bit_string (sym = 5) :: label :: acc))
        else
          let pos' = WT.rank seq sym pos in
          match children.(sym) with
          | Some ch -> go ch pos' (sym_bits sym :: label :: acc)
          | None -> assert false)
  in
  match t.root with None -> assert false | Some root -> go root pos []

(* Shared descent pieces: at a node, classify the remaining suffix. *)
type step =
  | Mismatch
  | Ends_here (* rest consumed exactly at the end of the label *)
  | Terminal of int (* one bit left: terminal symbol 4|5 *)
  | Branch of int (* >= two bits left: symbol 0..3 *)

let classify label rest =
  let l = Bitstring.lcp label rest in
  if l < Bitstring.length label then
    if l = Bitstring.length rest then Ends_here (* prefix stops inside label *)
    else Mismatch
  else begin
    let rest_len = Bitstring.length rest - l in
    if rest_len = 0 then Ends_here
    else if rest_len = 1 then Terminal (4 + Bool.to_int (Bitstring.get rest l))
    else
      Branch
        ((2 * Bool.to_int (Bitstring.get rest l))
        + Bool.to_int (Bitstring.get rest (l + 1)))
  end

let rank t s pos =
  if pos < 0 || pos > t.n then invalid_arg "Quad_wt.rank";
  let rec go node off pos =
    if pos = 0 then 0
    else begin
      let rest = Bitstring.drop s off in
      match node with
      | Leaf { label; count = _ } ->
          if Bitstring.equal rest label then pos else 0
      | Node { label; seq; children } -> (
          match classify label rest with
          | Mismatch | Ends_here -> 0
          | Terminal sym -> WT.rank seq sym pos
          | Branch sym -> (
              match children.(sym) with
              | None -> 0
              | Some ch ->
                  go ch (off + Bitstring.length label + 2) (WT.rank seq sym pos)))
    end
  in
  match t.root with None -> 0 | Some root -> go root 0 pos

(* Descent recording the (seq, sym) trail; returns occurrence count. *)
let trail_of t s =
  let rec go node off acc =
    let rest = Bitstring.drop s off in
    match node with
    | Leaf { label; count } -> if Bitstring.equal rest label then Some (count, acc) else None
    | Node { label; seq; children } -> (
        match classify label rest with
        | Mismatch | Ends_here -> None
        | Terminal sym ->
            Some (WT.rank seq sym (WT.length seq), (seq, sym) :: acc)
        | Branch sym -> (
            match children.(sym) with
            | None -> None
            | Some ch ->
                go ch (off + Bitstring.length label + 2) ((seq, sym) :: acc)))
  in
  match t.root with None -> None | Some root -> go root 0 []

let unwind trail idx =
  List.fold_left
    (fun i (seq, sym) ->
      match WT.select seq sym i with Some p -> p | None -> assert false)
    idx trail

let select t s idx =
  if idx < 0 then invalid_arg "Quad_wt.select";
  match trail_of t s with
  | None -> None
  | Some (count, trail) -> if idx >= count then None else Some (unwind trail idx)

(* Symbols covered by a prefix that stops after one bit of a branching
   step. *)
let half_step_syms b = if b then [ 2; 3; 5 ] else [ 0; 1; 4 ]

let rank_prefix t p pos =
  if pos < 0 || pos > t.n then invalid_arg "Quad_wt.rank_prefix";
  let rec go node off pos =
    if pos = 0 then 0
    else begin
      let rest = Bitstring.drop p off in
      if Bitstring.is_empty rest then pos
      else
        match node with
        | Leaf { label; _ } -> if Bitstring.is_prefix ~prefix:rest label then pos else 0
        | Node { label; seq; children } -> (
            match classify label rest with
            | Ends_here -> pos
            | Mismatch ->
                (* classify says mismatch also when rest stops inside the
                   label; distinguish via is_prefix *)
                if Bitstring.is_prefix ~prefix:rest label then pos else 0
            | Terminal tsym ->
                let b = tsym = 5 in
                List.fold_left
                  (fun acc sym -> acc + WT.rank seq sym pos)
                  0 (half_step_syms b)
            | Branch sym -> (
                match children.(sym) with
                | None -> 0
                | Some ch ->
                    go ch (off + Bitstring.length label + 2) (WT.rank seq sym pos)))
    end
  in
  match t.root with None -> 0 | Some root -> go root 0 pos

(* Position (within a node's sequence) of the k-th element whose symbol is
   in [syms], by binary search over monotone rank sums. *)
let select_among seq syms k =
  let len = WT.length seq in
  let count_before x = List.fold_left (fun acc s -> acc + WT.rank seq s x) 0 syms in
  if k >= count_before len then None
  else begin
    (* smallest x in [1, len] with count_before x >= k + 1; answer x - 1 *)
    let lo = ref 0 and hi = ref len in
    (* invariant: count_before lo <= k < count_before hi *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if count_before mid <= k then lo := mid else hi := mid
    done;
    Some !lo
  end

let select_prefix t p idx =
  if idx < 0 then invalid_arg "Quad_wt.select_prefix";
  let rec go node off acc =
    let rest = Bitstring.drop p off in
    if Bitstring.is_empty rest then
      (* whole node covered *)
      if idx >= node_len node then None else Some (unwind acc idx)
    else
      match node with
      | Leaf { label; count } ->
          if Bitstring.is_prefix ~prefix:rest label && idx < count then
            Some (unwind acc idx)
          else None
      | Node { label; seq; children } -> (
          match classify label rest with
          | Ends_here ->
              if idx >= node_len node then None else Some (unwind acc idx)
          | Mismatch ->
              if Bitstring.is_prefix ~prefix:rest label then
                if idx >= node_len node then None else Some (unwind acc idx)
              else None
          | Terminal tsym -> (
              let b = tsym = 5 in
              match select_among seq (half_step_syms b) idx with
              | None -> None
              | Some q -> Some (unwind acc q))
          | Branch sym -> (
              match children.(sym) with
              | None -> None
              | Some ch -> go ch (off + Bitstring.length label + 2) ((seq, sym) :: acc)))
  in
  match t.root with None -> None | Some root -> go root 0 []

let distinct_count t =
  let rec go = function
    | Leaf _ -> 1
    | Node { seq; children; _ } ->
        let terminals =
          Bool.to_int (WT.rank seq 4 (WT.length seq) > 0)
          + Bool.to_int (WT.rank seq 5 (WT.length seq) > 0)
        in
        Array.fold_left
          (fun acc c -> match c with None -> acc | Some ch -> acc + go ch)
          terminals children
  in
  match t.root with None -> 0 | Some root -> go root

let height t =
  let rec go = function
    | Leaf _ -> 0
    | Node { children; _ } ->
        1
        + Array.fold_left
            (fun acc c -> match c with None -> acc | Some ch -> max acc (go ch))
            0 children
  in
  match t.root with None -> 0 | Some root -> go root

let space_bits t =
  let rec go = function
    | Leaf { label; _ } -> Bitstring.length label + (2 * 64)
    | Node { label; seq; children } ->
        Bitstring.length label + WT.space_bits seq + (6 * 64)
        + Array.fold_left
            (fun acc c -> match c with None -> acc | Some ch -> acc + go ch)
            0 children
  in
  (match t.root with None -> 0 | Some root -> go root) + 64
