(** Dictionary-mapped sequence — "approach (1)" of the paper's related
    work, the traditional way to index a string sequence.

    The distinct strings are collected into a lexicographically sorted
    dictionary, each string is replaced by its dictionary id, and the id
    sequence is stored in a classic balanced Wavelet Tree.  Consequences,
    exactly as the paper describes:

    - [access]/[rank]/[select] work in O(log σ) bitvector operations plus
      a dictionary lookup;
    - because the mapping is lexicographic, prefixes map to contiguous id
      ranges, so [rank_prefix] reduces to the 2-dimensional
      {!Wavelet_tree.Make.range_count} of Mäkinen–Navarro [17];
    - [select_prefix] has no efficient implementation (this module
      provides a documented O(answer · log σ) fallback that walks
      candidate ids) — the gap the Wavelet Trie closes;
    - the dictionary is {e frozen}: the structure is static and cannot
      accept unseen strings, which is what rules this approach out for
      logs and database columns with open value sets.

    Used as a baseline in tests and the [ablation/dict] bench. *)

type t

val of_array : Wt_strings.Bitstring.t array -> t
val length : t -> int
val distinct_count : t -> int

val access : t -> int -> Wt_strings.Bitstring.t
val rank : t -> Wt_strings.Bitstring.t -> int -> int
val select : t -> Wt_strings.Bitstring.t -> int -> int option

val rank_prefix : t -> Wt_strings.Bitstring.t -> int -> int
(** Via lexicographic id-range + 2-D range counting. *)

val select_prefix : t -> Wt_strings.Bitstring.t -> int -> int option
(** Inefficient by construction: merges per-id [select] streams over the
    id range of the prefix.  O(k · r · log σ) for the [k]-th answer over
    [r] matching dictionary entries. *)

val space_bits : t -> int
