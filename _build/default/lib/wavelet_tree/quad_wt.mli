(** Static 4-ary Wavelet Trie — the paper's Section 7 future-work
    direction, prototyped.

    "It is an open question how the Wavelet Trie would perform in
    external or cache-oblivious models. A starting point would be a
    fanout larger than 2 in the trie, but internal nodes would require
    vectors with non-binary alphabet."

    This module implements that starting point for the static case: the
    trie consumes {e two} bits per branching step, so internal nodes have
    up to four subtrie children, and each node stores a small non-binary
    sequence.  Because the binary strings are arbitrary, a string may run
    out after a single bit beyond the node's label; prefix-freeness
    guarantees such a string has no extensions, so it is represented by
    one of two extra "terminal" symbols.  Per-node sequences therefore
    range over a 6-symbol alphabet

      {v 0,1,2,3 = two-bit branches 00,01,10,11;  4,5 = final single bit 0,1 v}

    and are stored in a per-node RRR-backed Wavelet Tree.

    Halving the number of trie levels roughly halves the bitvector
    operations per query (each now costing two levels of the per-node
    mini tree, but with better locality).  The [ablation/quad] bench
    compares it against the binary Wavelet Trie. *)

type t

include Wt_core.Indexed_sequence.S with type t := t
(** Prefix notes: a prefix ending between the two bits of a branching
    step covers three sibling symbols — [rank_prefix] sums their counts
    and [select_prefix] merges their streams by a binary search over rank
    sums (O(log n) per answer). *)

val of_array : Wt_strings.Bitstring.t array -> t
(** Same contract as {!Wt_core.Wavelet_trie.of_array}. *)

val height : t -> int
(** Number of internal nodes on the deepest path — compare with the
    binary trie's. *)
