module Writer = struct
  type t = { buf : Bitbuf.t }

  let create ?capacity_bits () = { buf = Bitbuf.create ?capacity_bits () }
  let over buf = { buf }
  let bit t b = Bitbuf.add t.buf b
  let bits t len v = Bitbuf.add_bits t.buf len v
  let pos t = Bitbuf.length t.buf
  let buffer t = t.buf
end

module Reader = struct
  type t = { buf : Bitbuf.t; mutable pos : int }

  let create ?(pos = 0) buf =
    if pos < 0 || pos > Bitbuf.length buf then invalid_arg "Reader.create";
    { buf; pos }

  let bit t =
    let b = Bitbuf.get t.buf t.pos in
    t.pos <- t.pos + 1;
    b

  let bits t len =
    let v = Bitbuf.get_bits t.buf t.pos len in
    t.pos <- t.pos + len;
    v

  let peek_bit t = Bitbuf.get t.buf t.pos
  let pos t = t.pos

  let seek t pos =
    if pos < 0 || pos > Bitbuf.length t.buf then invalid_arg "Reader.seek";
    t.pos <- pos

  let remaining t = Bitbuf.length t.buf - t.pos
  let at_end t = remaining t = 0
end
