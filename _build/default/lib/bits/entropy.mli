(** Information-theoretic accounting used by the space experiments.

    Conventions follow Section 2 of the paper: logarithms are base 2;
    [H0] is the zero-order empirical entropy; [B(m,n) = ceil(log2 (n choose m))]
    is the lower bound in bits for a set of [m] elements out of [n]. *)

val log2 : float -> float

val h : float -> float
(** Binary entropy function [H(p) = -p log p - (1-p) log (1-p)], with
    [H 0. = H 1. = 0.]. *)

val bitvector_h0_bits : ones:int -> len:int -> float
(** [len * H(ones/len)]: the zero-order entropy, in bits, of a bitvector of
    [len] bits with [ones] ones.  0 for the empty bitvector. *)

val binomial_bound : int -> int -> float
(** [binomial_bound m n] is [log2 (n choose m)] (not rounded up), computed
    in [O(min m (n-m))] floating point steps.  Requires [0 <= m <= n]. *)

val h0_of_counts : int array -> float
(** Zero-order entropy per symbol, in bits, of a sequence whose symbol
    frequencies are given (zeros allowed).  Returns 0 for empty input. *)

val sequence_h0_bits : int array -> float
(** [n * h0_of_counts counts] where [n] is the total count: total
    zero-order entropy of the sequence in bits. *)

val counts_of_list : ('a -> 'a -> int) -> 'a list -> int array
(** Frequency table of a list under a comparison function (order of the
    resulting array is unspecified; only the multiset of counts matters
    for entropy). *)
