(** Deterministic pseudo-random number generator (splitmix64 core).

    Workload generation, the Section 6 hash choice, and property tests all
    draw from explicit generator states so that every experiment in this
    repository is reproducible bit-for-bit.  The generator is the splitmix64
    sequence truncated to OCaml's 62 usable non-negative bits. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val next : t -> int
(** Next value, uniform on [0, 2^62). *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  Requires [bound > 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform on [0, 1). *)

val odd : t -> bits:int -> int
(** [odd t ~bits] is a uniform odd integer on [1, 2^bits), as required for
    the multiplicative hash of Section 6.  Requires [1 <= bits <= 62]. *)

val split : t -> t
(** A new generator seeded from this one; the two streams are then
    independent. *)
