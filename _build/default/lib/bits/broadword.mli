(** Broadword (word-parallel) bit manipulation primitives.

    All functions operate on OCaml native [int] values, treated as words of
    up to 62 data bits (the sign bit is never used by callers in this
    library).  Table-driven byte decompositions are used instead of SWAR
    constants because the canonical 64-bit masks do not fit in OCaml's
    63-bit literals. *)

val popcount : int -> int
(** [popcount x] is the number of set bits in [x].  [x] must be
    non-negative. *)

val popcount_byte : int -> int
(** [popcount_byte b] is the number of set bits in the low 8 bits of [b].
    Bits above position 7 are ignored. *)

val select_in_word : int -> int -> int
(** [select_in_word x k] is the position (from bit 0, LSB first) of the
    [k]-th set bit of [x], counting from [k = 0].
    Requires [0 <= k < popcount x]; raises [Invalid_argument] otherwise. *)

val select0_in_word : int -> int -> int -> int
(** [select0_in_word x len k] is the position of the [k]-th zero bit of [x]
    among its low [len] bits, counting from [k = 0].
    Requires [0 <= k < len - popcount (low len bits of x)]. *)

val lowest_bit : int -> int
(** [lowest_bit x] is the position of the least significant set bit of [x].
    Requires [x <> 0]. *)

val highest_bit : int -> int
(** [highest_bit x] is the position of the most significant set bit of [x].
    Requires [x > 0].  Equivalently [floor (log2 x)]. *)

val bit_width : int -> int
(** [bit_width x] is the number of bits needed to represent [x]:
    [0] for [x = 0], else [highest_bit x + 1]. *)

val mask : int -> int
(** [mask n] is an [int] with the low [n] bits set, for [0 <= n <= 62]. *)

val reverse_bits : int -> int -> int
(** [reverse_bits x len] reverses the low [len] bits of [x] (bit 0 swaps
    with bit [len-1]); bits above [len] are dropped.  [0 <= len <= 62]. *)
