lib/bits/elias.mli: Bit_io
