lib/bits/entropy.ml: Array List
