lib/bits/bit_io.ml: Bitbuf
