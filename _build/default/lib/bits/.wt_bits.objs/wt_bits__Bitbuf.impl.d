lib/bits/bitbuf.ml: Broadword Bytes Char Format Printf String
