lib/bits/rle.mli: Bitbuf
