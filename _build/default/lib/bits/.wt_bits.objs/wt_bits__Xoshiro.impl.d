lib/bits/xoshiro.ml: Int64
