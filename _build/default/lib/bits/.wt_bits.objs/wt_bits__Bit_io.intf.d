lib/bits/bit_io.mli: Bitbuf
