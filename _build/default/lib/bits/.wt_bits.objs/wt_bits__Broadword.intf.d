lib/bits/broadword.mli:
