lib/bits/elias.ml: Bit_io Broadword
