lib/bits/broadword.ml: Bytes Char
