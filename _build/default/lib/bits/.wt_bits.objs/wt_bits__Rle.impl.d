lib/bits/rle.ml: Array Bit_io Elias List
