lib/bits/entropy.mli:
