lib/bits/bitbuf.mli: Format
