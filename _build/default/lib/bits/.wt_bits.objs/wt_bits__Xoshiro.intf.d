lib/bits/xoshiro.mli:
