(** Elias γ and δ universal codes for positive integers [5].

    γ(x) encodes [x >= 1] as [floor(log2 x)] zeros followed by the
    [floor(log2 x) + 1] bits of [x], most significant bit first.
    δ(x) encodes [x >= 1] as γ of the bit length of [x] followed by the
    bits of [x] below the most significant one.

    These are the codes used by the dynamic bitvectors of Section 4.2 of
    the paper: run lengths are γ-coded (RLE+γ) and gaps are δ-coded
    (the Mäkinen–Navarro baseline). *)

val gamma_length : int -> int
(** Bit length of γ(x).  Requires [x >= 1]. *)

val delta_length : int -> int
(** Bit length of δ(x).  Requires [x >= 1]. *)

val write_gamma : Bit_io.Writer.t -> int -> unit
val read_gamma : Bit_io.Reader.t -> int

val write_delta : Bit_io.Writer.t -> int -> unit
val read_delta : Bit_io.Reader.t -> int
