type t = {
  id : int; (* stable identity for the memory probe *)
  mutable data : Bytes.t;
  mutable len : int; (* length in bits *)
}

(* Optional memory-access probe: when set, every read of the buffer
   reports (buffer id, byte offset, bytes touched).  Used by the cache
   simulator (Wt_workload.Cache_sim) to answer the paper's Section 7
   question about external-memory behaviour; costs one branch per read
   when unset. *)
let probe : (int -> int -> int -> unit) option ref = ref None
let set_probe f = probe := f

let touch t pos len =
  match !probe with
  | None -> ()
  | Some f -> f t.id (pos lsr 3) (((pos + len - 1) lsr 3) - (pos lsr 3) + 1)
  [@@inline]

let next_id = ref 0

let create ?(capacity_bits = 256) () =
  let nbytes = max 1 ((capacity_bits + 7) / 8) in
  incr next_id;
  { id = !next_id; data = Bytes.make nbytes '\000'; len = 0 }

let length t = t.len

let capacity_bits t = Bytes.length t.data * 8

let ensure t bits =
  let needed = (bits + 7) / 8 in
  let cur = Bytes.length t.data in
  if needed > cur then begin
    let ncap = max needed (cur * 2) in
    let ndata = Bytes.make ncap '\000' in
    Bytes.blit t.data 0 ndata 0 cur;
    t.data <- ndata
  end

let get t pos =
  if pos < 0 || pos >= t.len then invalid_arg "Bitbuf.get: out of bounds";
  touch t pos 1;
  let b = Char.code (Bytes.unsafe_get t.data (pos lsr 3)) in
  b land (1 lsl (pos land 7)) <> 0

let set t pos bit =
  if pos < 0 || pos >= t.len then invalid_arg "Bitbuf.set: out of bounds";
  let i = pos lsr 3 in
  let b = Char.code (Bytes.unsafe_get t.data i) in
  let m = 1 lsl (pos land 7) in
  let b' = if bit then b lor m else b land lnot m in
  Bytes.unsafe_set t.data i (Char.unsafe_chr (b' land 0xff))

let get_bits t pos len =
  if len < 0 || len > 62 then invalid_arg "Bitbuf.get_bits: bad length";
  if pos < 0 || pos + len > t.len then invalid_arg "Bitbuf.get_bits: out of bounds";
  if len = 0 then 0
  else begin
    touch t pos len;
    let data = t.data in
    let first = pos lsr 3 in
    let shift = pos land 7 in
    (* Low bits from the first byte. *)
    let acc = ref (Char.code (Bytes.unsafe_get data first) lsr shift) in
    let got = ref (8 - shift) in
    let i = ref (first + 1) in
    while !got < len do
      let remaining = len - !got in
      let b = Char.code (Bytes.unsafe_get data !i) in
      let b = if remaining < 8 then b land ((1 lsl remaining) - 1) else b in
      acc := !acc lor (b lsl !got);
      got := !got + 8;
      incr i
    done;
    !acc land (if len = 62 then (1 lsl 62) - 1 else (1 lsl len) - 1)
  end

let set_bits t pos len v =
  if len < 0 || len > 62 then invalid_arg "Bitbuf.set_bits: bad length";
  if v < 0 then invalid_arg "Bitbuf.set_bits: negative value";
  if pos < 0 || pos + len > t.len then invalid_arg "Bitbuf.set_bits: out of bounds";
  let data = t.data in
  let v = v land (if len = 62 then (1 lsl 62) - 1 else (1 lsl len) - 1) in
  let i = ref (pos lsr 3) in
  let shift = ref (pos land 7) in
  let written = ref 0 in
  while !written < len do
    let chunk = min (8 - !shift) (len - !written) in
    let m = ((1 lsl chunk) - 1) lsl !shift in
    let b = Char.code (Bytes.unsafe_get data !i) in
    let bits = ((v lsr !written) lsl !shift) land m in
    Bytes.unsafe_set data !i (Char.unsafe_chr ((b land lnot m land 0xff) lor bits));
    written := !written + chunk;
    shift := 0;
    incr i
  done

let add t bit =
  ensure t (t.len + 1);
  t.len <- t.len + 1;
  set t (t.len - 1) bit

let add_bits t len v =
  if len < 0 || len > 62 then invalid_arg "Bitbuf.add_bits: bad length";
  ensure t (t.len + len);
  t.len <- t.len + len;
  set_bits t (t.len - len) len v

let add_run t bit n =
  if n < 0 then invalid_arg "Bitbuf.add_run";
  ensure t (t.len + n);
  let v = if bit then (1 lsl 62) - 1 else 0 in
  let remaining = ref n in
  while !remaining > 0 do
    let chunk = min 62 !remaining in
    t.len <- t.len + chunk;
    set_bits t (t.len - chunk) chunk v;
    remaining := !remaining - chunk
  done

let blit src pos dst len =
  if pos < 0 || len < 0 || pos + len > src.len then invalid_arg "Bitbuf.blit";
  let remaining = ref len in
  let p = ref pos in
  while !remaining > 0 do
    let chunk = min 56 !remaining in
    add_bits dst chunk (get_bits src !p chunk);
    p := !p + chunk;
    remaining := !remaining - chunk
  done

let append dst src = blit src 0 dst src.len

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Bitbuf.truncate";
  t.len <- n;
  (* Zero the dead bits of the last partial byte so future appends see a
     clean slate (appends assume fresh bytes are zero). *)
  if n land 7 <> 0 then begin
    let i = n lsr 3 in
    let keep = n land 7 in
    let b = Char.code (Bytes.unsafe_get t.data i) in
    Bytes.unsafe_set t.data i (Char.unsafe_chr (b land ((1 lsl keep) - 1)))
  end;
  (* Zero whole bytes above the new length that may contain stale data. *)
  let first_dead = (n + 7) / 8 in
  let last_dirty = Bytes.length t.data in
  if first_dead < last_dirty then
    Bytes.fill t.data first_dead (last_dirty - first_dead) '\000'

let clear t = truncate t 0

let copy t =
  incr next_id;
  { id = !next_id; data = Bytes.copy t.data; len = t.len }

let pop_count t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitbuf.pop_count";
  let acc = ref 0 in
  let p = ref pos in
  let remaining = ref len in
  (* Align to a byte boundary, then count whole bytes, then the tail. *)
  let head = min !remaining ((8 - (pos land 7)) land 7) in
  if head > 0 then begin
    acc := Broadword.popcount (get_bits t !p head);
    p := !p + head;
    remaining := !remaining - head
  end;
  while !remaining >= 8 do
    acc := !acc + Broadword.popcount_byte (Char.code (Bytes.unsafe_get t.data (!p lsr 3)));
    p := !p + 8;
    remaining := !remaining - 8
  done;
  if !remaining > 0 then acc := !acc + Broadword.popcount (get_bits t !p !remaining);
  !acc

let of_string s =
  let t = create ~capacity_bits:(String.length s) () in
  String.iter
    (function
      | '0' -> add t false
      | '1' -> add t true
      | c -> invalid_arg (Printf.sprintf "Bitbuf.of_string: bad character %C" c))
    s;
  t

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let equal a b =
  a.len = b.len
  &&
  let rec go pos =
    if pos >= a.len then true
    else
      let chunk = min 56 (a.len - pos) in
      get_bits a pos chunk = get_bits b pos chunk && go (pos + chunk)
  in
  go 0

let pp fmt t = Format.pp_print_string fmt (to_string t)
let id t = t.id
