(** Streaming readers and writers over {!Bitbuf}.

    A {!Writer.t} appends to the end of a buffer; a {!Reader.t} keeps a
    cursor into an existing buffer.  Both are thin conveniences used by the
    universal-code modules ({!Elias}, {!Rle}). *)

module Writer : sig
  type t

  val create : ?capacity_bits:int -> unit -> t
  (** A writer over a fresh buffer. *)

  val over : Bitbuf.t -> t
  (** A writer appending to an existing buffer. *)

  val bit : t -> bool -> unit
  val bits : t -> int -> int -> unit
  (** [bits w len v] appends the low [len] bits of [v], LSB first. *)

  val pos : t -> int
  (** Number of bits written so far to the underlying buffer. *)

  val buffer : t -> Bitbuf.t
end

module Reader : sig
  type t

  val create : ?pos:int -> Bitbuf.t -> t
  (** A reader starting at bit [pos] (default 0). *)

  val bit : t -> bool
  val bits : t -> int -> int
  (** [bits r len] reads the next [len] bits as an integer, LSB first. *)

  val peek_bit : t -> bool
  (** Read the next bit without consuming it. *)

  val pos : t -> int
  val seek : t -> int -> unit
  val remaining : t -> int
  val at_end : t -> bool
end
