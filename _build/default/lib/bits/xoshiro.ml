(* splitmix64, computed in Int64 then truncated to 62 bits.  Int64 boxing is
   acceptable here: random numbers are never on the hot query paths. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = (1 lsl 62) - 1 - (((1 lsl 62) - 1) mod bound) in
  let rec go () =
    let v = next t in
    if v >= limit then go () else v mod bound
  in
  go ()

let bool t = next t land 1 = 1

let float t = float_of_int (next t) /. ldexp 1.0 62

let odd t ~bits =
  if bits < 1 || bits > 62 then invalid_arg "Xoshiro.odd";
  let m = if bits = 62 then max_int else (1 lsl bits) - 1 in
  next t land m lor 1

let split t = { state = next64 t }
