(* Byte-table implementations.  The classic 64-bit SWAR constants
   (0x5555_5555_5555_5555 etc.) do not fit in OCaml's 63-bit int literals,
   and per-byte table lookups are competitive on modern hardware anyway. *)

let popcount_table =
  let t = Bytes.create 256 in
  for i = 0 to 255 do
    let rec count x = if x = 0 then 0 else (x land 1) + count (x lsr 1) in
    Bytes.unsafe_set t i (Char.unsafe_chr (count i))
  done;
  t

(* [select_table.((b lsl 3) lor k)] is the position of the [k]-th set bit of
   byte [b], or 8 when [b] has at most [k] set bits. *)
let select_table =
  let t = Bytes.create (256 * 8) in
  for b = 0 to 255 do
    let k = ref 0 in
    for pos = 0 to 7 do
      if b land (1 lsl pos) <> 0 then begin
        Bytes.unsafe_set t ((b lsl 3) lor !k) (Char.unsafe_chr pos);
        incr k
      end
    done;
    for k = !k to 7 do
      Bytes.unsafe_set t ((b lsl 3) lor k) '\008'
    done
  done;
  t

let popcount_byte b =
  Char.code (Bytes.unsafe_get popcount_table (b land 0xff))

let popcount x =
  if x < 0 then invalid_arg "Broadword.popcount: negative argument";
  let rec go x acc =
    if x = 0 then acc else go (x lsr 8) (acc + popcount_byte (x land 0xff))
  in
  go x 0

let select_in_word x k =
  if k < 0 then invalid_arg "Broadword.select_in_word: negative index";
  let rec go x k base =
    if x = 0 then invalid_arg "Broadword.select_in_word: index out of range"
    else
      let c = popcount_byte (x land 0xff) in
      if k < c then
        base + Char.code (Bytes.unsafe_get select_table (((x land 0xff) lsl 3) lor k))
      else go (x lsr 8) (k - c) (base + 8)
  in
  go x k 0

let mask n =
  if n < 0 || n > 62 then invalid_arg "Broadword.mask"
  else if n = 62 then (1 lsl 62) - 1
  else (1 lsl n) - 1

let select0_in_word x len k =
  if len < 0 || len > 62 then invalid_arg "Broadword.select0_in_word: bad len";
  select_in_word (lnot x land mask len) k

let lowest_bit x =
  if x = 0 then invalid_arg "Broadword.lowest_bit: zero argument";
  let rec go x base =
    if x land 0xff <> 0 then
      base + Char.code (Bytes.unsafe_get select_table ((x land 0xff) lsl 3))
    else go (x lsr 8) (base + 8)
  in
  go x 0

let highest_bit x =
  if x <= 0 then invalid_arg "Broadword.highest_bit: non-positive argument";
  let rec go x acc = if x > 0xff then go (x lsr 8) (acc + 8) else acc in
  let base = go x 0 in
  let b = x lsr base in
  let rec top i = if b lsr i <> 0 then i else top (i - 1) in
  base + top 7

let bit_width x = if x = 0 then 0 else highest_bit x + 1

let reverse_bits x len =
  if len < 0 || len > 62 then invalid_arg "Broadword.reverse_bits";
  let rec go i acc =
    if i >= len then acc
    else go (i + 1) (acc lor (((x lsr i) land 1) lsl (len - 1 - i)))
  in
  go 0 0
