(** Growable bit buffer.

    A [Bitbuf.t] is a mutable sequence of bits backed by a [Bytes.t] that
    doubles on demand.  Bits are numbered from 0; within a byte, bit [i]
    lives at position [i mod 8] counted from the least significant bit
    (LSB-first layout).  Multi-bit reads and writes of up to 62 bits are
    supported across byte boundaries; an integer value [v] written with
    [set_bits] stores bit [j] of [v] at buffer position [pos + j].

    The buffer supports in-place overwrites ([set], [set_bits]) anywhere in
    [0, length)], and appends at the end ([add], [add_bits]).  It is the
    backing store for every succinct structure in this library. *)

type t

val create : ?capacity_bits:int -> unit -> t
(** [create ()] is an empty buffer.  [capacity_bits] pre-sizes the backing
    store (default 256). *)

val length : t -> int
(** Number of bits currently in the buffer. *)

val get : t -> int -> bool
(** [get t pos] is bit [pos].  Requires [0 <= pos < length t]. *)

val get_bits : t -> int -> int -> int
(** [get_bits t pos len] reads [len] bits starting at [pos] as a
    non-negative integer (bit [pos] becomes bit 0 of the result).
    Requires [0 <= len <= 62] and [pos + len <= length t]. *)

val set : t -> int -> bool -> unit
(** [set t pos b] overwrites bit [pos].  Requires [0 <= pos < length t]. *)

val set_bits : t -> int -> int -> int -> unit
(** [set_bits t pos len v] overwrites [len] bits starting at [pos] with the
    low [len] bits of [v].  Requires [0 <= len <= 62],
    [pos + len <= length t] and [0 <= v]. *)

val add : t -> bool -> unit
(** Append one bit. *)

val add_bits : t -> int -> int -> unit
(** [add_bits t len v] appends the low [len] bits of [v], LSB first.
    Requires [0 <= len <= 62] and [v >= 0]. *)

val add_run : t -> bool -> int -> unit
(** [add_run t b n] appends [n] copies of bit [b]. *)

val append : t -> t -> unit
(** [append dst src] appends all bits of [src] to [dst]. *)

val blit : t -> int -> t -> int -> unit
(** [blit src pos dst len] appends [len] bits of [src] starting at
    [src] position [pos] to the end of [dst]. *)

val truncate : t -> int -> unit
(** [truncate t n] drops all bits at positions [>= n].
    Requires [0 <= n <= length t]. *)

val clear : t -> unit
(** Reset to the empty buffer without releasing storage. *)

val copy : t -> t
(** An independent copy. *)

val pop_count : t -> int -> int -> int
(** [pop_count t pos len] is the number of set bits in [t.[pos .. pos+len)].
    Runs in [O(len / 8)]. *)

val capacity_bits : t -> int
(** Size in bits of the backing store (for space accounting). *)

val of_string : string -> t
(** [of_string "01011"] builds a buffer from an ASCII description, most
    significant first in reading order: character [i] of the string becomes
    bit [i].  Raises [Invalid_argument] on characters other than '0'/'1'. *)

val to_string : t -> string
(** Inverse of {!of_string}. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {2 Memory-access instrumentation}

    An optional global probe observing every read: the callback receives
    [(buffer_id, byte_offset, byte_count)].  Buffers have stable unique
    ids.  Used by the cache simulator to study external-memory behaviour
    (the paper's Section 7 open question); reads cost one extra branch
    while a probe is set and writes are not traced. *)

val set_probe : (int -> int -> int -> unit) option -> unit
val id : t -> int
