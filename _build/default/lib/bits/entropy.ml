let log2 x = log x /. log 2.

let h p =
  if p <= 0. || p >= 1. then 0.
  else (-.p *. log2 p) -. ((1. -. p) *. log2 (1. -. p))

let bitvector_h0_bits ~ones ~len =
  if len = 0 then 0. else float_of_int len *. h (float_of_int ones /. float_of_int len)

let binomial_bound m n =
  if m < 0 || m > n then invalid_arg "Entropy.binomial_bound";
  let m = min m (n - m) in
  let acc = ref 0. in
  for i = 1 to m do
    acc := !acc +. log2 (float_of_int (n - m + i) /. float_of_int i)
  done;
  !acc

let h0_of_counts counts =
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then 0.
  else begin
    let nf = float_of_int n in
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. nf in
          acc -. (p *. log2 p))
      0. counts
  end

let sequence_h0_bits counts =
  let n = Array.fold_left ( + ) 0 counts in
  float_of_int n *. h0_of_counts counts

let counts_of_list compare xs =
  let sorted = List.sort compare xs in
  let rec go acc run = function
    | [] -> if run > 0 then run :: acc else acc
    | [ _ ] -> (run + 1) :: acc
    | x :: (y :: _ as rest) ->
        if compare x y = 0 then go acc (run + 1) rest else go ((run + 1) :: acc) 0 rest
  in
  Array.of_list (go [] 0 sorted)
