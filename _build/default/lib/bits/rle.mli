(** Run-length representation of bitvectors.

    A bitvector [b0^r0 b1^r1 ...] with [b_{i+1} = not b_i] is represented as
    its first bit plus the sequence of positive run lengths.  {!encode}
    γ-codes the runs into a bit buffer ([RLE+γ], the leaf encoding of the
    paper's fully-dynamic bitvector); {!decode} inverts it. *)

type runs = {
  first_bit : bool;  (** Bit value of the first run. *)
  lengths : int array;  (** Strictly positive, alternating run lengths. *)
}

val total_bits : runs -> int
(** Sum of the run lengths. *)

val ones : runs -> int
(** Number of 1 bits described. *)

val of_bits : bool array -> runs
(** Runs of an explicit bit array.  The empty array yields
    [{ first_bit = false; lengths = [||] }]. *)

val to_bits : runs -> bool array

val encode : runs -> Bitbuf.t
(** γ-coded encoding: one bit for [first_bit] (when non-empty), then each
    run length as γ.  The number of runs is not stored; decoding stops at a
    caller-supplied bit count. *)

val encoded_length : runs -> int
(** Bit length of [encode] without materializing it. *)

val decode : total:int -> Bitbuf.t -> runs
(** [decode ~total buf] decodes runs until their lengths sum to [total].
    Raises [Invalid_argument] if the stream is inconsistent. *)

val check : runs -> unit
(** Validate the alternation/positivity invariants; raises
    [Invalid_argument] when violated.  Used by tests and debug assertions. *)
