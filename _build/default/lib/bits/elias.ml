let gamma_length x =
  if x < 1 then invalid_arg "Elias.gamma_length";
  (2 * Broadword.highest_bit x) + 1

let delta_length x =
  if x < 1 then invalid_arg "Elias.delta_length";
  let n = Broadword.highest_bit x in
  gamma_length (n + 1) + n

let write_gamma w x =
  if x < 1 then invalid_arg "Elias.write_gamma";
  let n = Broadword.highest_bit x in
  Bit_io.Writer.bits w n 0;
  (* Value bits MSB first so the leading 1 terminates the zero run. *)
  Bit_io.Writer.bits w (n + 1) (Broadword.reverse_bits x (n + 1))

let read_gamma r =
  let n = ref 0 in
  while not (Bit_io.Reader.bit r) do
    incr n
  done;
  let n = !n in
  if n = 0 then 1
  else begin
    let low = Bit_io.Reader.bits r n in
    (1 lsl n) lor Broadword.reverse_bits low n
  end

let write_delta w x =
  if x < 1 then invalid_arg "Elias.write_delta";
  let n = Broadword.highest_bit x in
  write_gamma w (n + 1);
  (* The n bits of x below its leading one, MSB first. *)
  if n > 0 then
    Bit_io.Writer.bits w n (Broadword.reverse_bits (x land Broadword.mask n) n)

let read_delta r =
  let n = read_gamma r - 1 in
  if n = 0 then 1
  else begin
    let low = Bit_io.Reader.bits r n in
    (1 lsl n) lor Broadword.reverse_bits low n
  end
