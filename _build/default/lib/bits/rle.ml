type runs = { first_bit : bool; lengths : int array }

let total_bits r = Array.fold_left ( + ) 0 r.lengths

let ones r =
  let acc = ref 0 in
  Array.iteri
    (fun i len ->
      let bit = if i land 1 = 0 then r.first_bit else not r.first_bit in
      if bit then acc := !acc + len)
    r.lengths;
  !acc

let check r =
  Array.iter
    (fun len -> if len <= 0 then invalid_arg "Rle.check: non-positive run")
    r.lengths

let of_bits bits =
  let n = Array.length bits in
  if n = 0 then { first_bit = false; lengths = [||] }
  else begin
    let lengths = ref [] in
    let cur = ref bits.(0) in
    let run = ref 1 in
    for i = 1 to n - 1 do
      if bits.(i) = !cur then incr run
      else begin
        lengths := !run :: !lengths;
        cur := bits.(i);
        run := 1
      end
    done;
    lengths := !run :: !lengths;
    { first_bit = bits.(0); lengths = Array.of_list (List.rev !lengths) }
  end

let to_bits r =
  let bits = Array.make (total_bits r) false in
  let pos = ref 0 in
  Array.iteri
    (fun i len ->
      let bit = if i land 1 = 0 then r.first_bit else not r.first_bit in
      for _ = 1 to len do
        bits.(!pos) <- bit;
        incr pos
      done)
    r.lengths;
  bits

let encode r =
  let w = Bit_io.Writer.create () in
  if Array.length r.lengths > 0 then begin
    Bit_io.Writer.bit w r.first_bit;
    Array.iter (fun len -> Elias.write_gamma w len) r.lengths
  end;
  Bit_io.Writer.buffer w

let encoded_length r =
  if Array.length r.lengths = 0 then 0
  else Array.fold_left (fun acc len -> acc + Elias.gamma_length len) 1 r.lengths

let decode ~total buf =
  if total = 0 then { first_bit = false; lengths = [||] }
  else begin
    let r = Bit_io.Reader.create buf in
    let first_bit = Bit_io.Reader.bit r in
    let lengths = ref (Array.make 16 0) in
    let count = ref 0 in
    let seen = ref 0 in
    while !seen < total do
      let len = Elias.read_gamma r in
      if len <= 0 || !seen + len > total then
        invalid_arg "Rle.decode: inconsistent stream";
      if !count >= Array.length !lengths then begin
        let bigger = Array.make (2 * !count) 0 in
        Array.blit !lengths 0 bigger 0 !count;
        lengths := bigger
      end;
      !lengths.(!count) <- len;
      incr count;
      seen := !seen + len
    done;
    { first_bit; lengths = Array.sub !lengths 0 !count }
  end
