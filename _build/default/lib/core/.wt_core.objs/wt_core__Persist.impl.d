lib/core/persist.ml: Append_wt Dynamic_wt Fun Marshal Printf String Wavelet_trie
