lib/core/node_view.ml: Wt_strings
