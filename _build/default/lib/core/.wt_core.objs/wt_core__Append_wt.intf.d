lib/core/append_wt.mli: Format Indexed_sequence Node_view Stats Wt_strings
