lib/core/dynamic_wt.ml: Array Format Fun Query Wt_bitvector Wt_strings
