lib/core/succinct_wt.ml: Array List Option Query Wavelet_trie Wt_bits Wt_bitvector Wt_strings Wt_trie
