lib/core/balanced.mli: Stats
