lib/core/persist.mli: Append_wt Dynamic_wt Wavelet_trie
