lib/core/succinct_wt.mli: Indexed_sequence Node_view Stats Wavelet_trie Wt_strings
