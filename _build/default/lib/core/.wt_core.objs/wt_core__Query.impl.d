lib/core/query.ml: Array Format List Node_view Stats String Wt_bits Wt_strings
