lib/core/range.ml: Append_wt Array Dynamic_wt List Node_view Query Wavelet_trie Wt_strings
