lib/core/indexed_sequence.ml: Array List Wt_strings
