lib/core/string_api.ml: Append_wt Array Dynamic_wt Indexed_sequence List Wavelet_trie Wt_strings
