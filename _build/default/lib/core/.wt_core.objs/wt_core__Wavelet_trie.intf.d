lib/core/wavelet_trie.mli: Format Indexed_sequence Node_view Stats Wt_strings
