lib/core/balanced.ml: Dynamic_wt Wt_bits Wt_strings
