lib/core/wavelet_trie.ml: Array Fun Query Wt_bits Wt_bitvector Wt_strings
