(** Probabilistically-balanced dynamic Wavelet Tree (Section 6 of the
    paper, Theorem 6.2).

    Maintains a dynamic sequence of integers drawn from a universe
    [0, 2^width) whose working alphabet Σ (the set of distinct values
    actually present) is unknown in advance and typically much smaller
    than the universe.  Values are permuted by the multiplicative hash
    [h_a(x) = a·x mod 2^width] (a random odd [a], Dietzfelbinger et
    al. [4]), written MSB-first, and stored in a fully-dynamic Wavelet
    Trie; path compression then keeps the trie height at most
    [(α+2)·log |Σ|] with probability [1 − |Σ|^−α], independent of the
    universe size.

    Deviation from the paper's text: Section 6 writes the hash
    "LSB-to-MSB", but the low bits of [a·x mod 2^w] depend only on
    [x mod 2^l], so any value set congruent modulo a power of two (e.g.
    the powers of two) degenerates the trie with probability 1.  The
    underlying lemma of [4] bounds collisions of the {e high} bits of the
    product, so this implementation puts them first (see DESIGN.md).

    Operations are [O(log u + h log n)] with [h] the trie height. *)

type t

val create : ?seed:int -> width:int -> unit -> t
(** [create ~width ()] handles values in [0, 2^width), [1 <= width <= 62].
    [seed] fixes the hash choice (reproducibility). *)

val width : t -> int
val length : t -> int

val access : t -> int -> int
val rank : t -> int -> int -> int
(** [rank t x pos]: occurrences of value [x] in positions [0, pos). *)

val select : t -> int -> int -> int option
val insert : t -> int -> int -> unit
(** [insert t pos x]. *)

val delete : t -> int -> unit
val append : t -> int -> unit

val distinct_count : t -> int
(** |Σ|: number of distinct values currently stored. *)

val height : t -> int
(** Current trie height (internal nodes on the deepest path) — the
    quantity bounded by Theorem 6.2. *)

val space_bits : t -> int
val stats : t -> Stats.t

val check_invariants : t -> unit
