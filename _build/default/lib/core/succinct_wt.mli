(** Pointerless static Wavelet Trie — the exact Theorem 3.7 layout.

    Where {!Wavelet_trie} keeps the trie as linked nodes (fast, but
    O(|Sset| w) pointer bits), this variant stores:
    - the trie shape and labels in the succinct
      {!Wt_trie.Static_trie} (Theorem 3.6: [LT(Sset) + o(|Sset|)] bits);
    - the per-internal-node RRR bitvectors indexed by the node's
      internal rank ([nH0(S) + o(h̃ n)] bits).

    Queries cost the same O(|s| + h_s) bitvector operations as the
    pointer-based variant plus O(1) succinct-tree navigation per node.
    Used by the space study to show the static Wavelet Trie reaching
    within a small factor of [LB(S) = LT + nH0]. *)

type t

include Indexed_sequence.S with type t := t

val of_array : Wt_strings.Bitstring.t array -> t
val to_array : t -> Wt_strings.Bitstring.t array
val stats : t -> Stats.t

val of_wavelet_trie : Wavelet_trie.t -> t
(** Convert from the pointer-based representation (the bulk-construction
    path: the RRR payload bits are reused rather than re-derived). *)

module Node : Node_view.S with type trie = t
