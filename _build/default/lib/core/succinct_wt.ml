module Bitstring = Wt_strings.Bitstring
module Bitbuf = Wt_bits.Bitbuf
module Rrr = Wt_bitvector.Rrr
module Static_trie = Wt_trie.Static_trie

type rep = {
  trie : Static_trie.t;
  bvs : Rrr.t array; (* indexed by internal rank *)
  leaf_counts : int array; (* indexed by leaf rank *)
  n : int;
}

type t = rep option (* None for the empty sequence *)

let leaf_rank trie v = v - Static_trie.internal_rank trie v

(* Conversion from the pointer-based trie: both trees are the Patricia
   Trie of Sset, so a preorder walk lines the pointer nodes up with the
   succinct trie's internal/leaf ranks, and the (immutable) RRR
   bitvectors are shared rather than rebuilt. *)
let of_wavelet_trie wt =
  let module N = Wavelet_trie.Node in
  match N.root wt with
  | None -> None
  | Some root ->
      let bvs = ref [] in
      let leaf_counts = ref [] in
      let strings = ref [] in
      let rec go node parts =
        let parts = N.label node :: parts in
        if N.is_leaf node then begin
          leaf_counts := N.count node :: !leaf_counts;
          strings := Bitstring.concat (List.rev parts) :: !strings
        end
        else begin
          bvs := node :: !bvs;
          go (N.child node false) (Bitstring.of_bool_list [ false ] :: parts);
          go (N.child node true) (Bitstring.of_bool_list [ true ] :: parts)
        end
      in
      go root [];
      let strings = Array.of_list (List.rev !strings) in
      let trie = Static_trie.of_strings strings in
      (* Extract the shared RRR payloads in preorder = internal rank
         order. *)
      let bvs =
        Array.of_list
          (List.rev_map
             (fun node ->
               (* the Node view hides the Rrr; rebuild from its bits via
                  the iterator, cheap relative to construction *)
               let m = N.count node in
               let next = N.iter_bits node 0 in
               let buf = Bitbuf.create ~capacity_bits:m () in
               for _ = 1 to m do
                 Bitbuf.add buf (next ())
               done;
               Rrr.of_bitbuf buf)
             !bvs)
      in
      Some
        {
          trie;
          bvs;
          leaf_counts = Array.of_list (List.rev !leaf_counts);
          n = N.length wt;
        }

let of_array strings = of_wavelet_trie (Wavelet_trie.of_array strings)

(* ------------------------------------------------------------------ *)

module Node = struct
  type trie = t
  type node = { st : rep; v : int }

  let root (t : trie) = Option.map (fun st -> { st; v = Static_trie.root st.trie }) t
  let length (t : trie) = match t with None -> 0 | Some st -> st.n
  let label { st; v } = Static_trie.label st.trie v
  let is_leaf { st; v } = Static_trie.is_leaf st.trie v

  let bv_of { st; v } = st.bvs.(Static_trie.internal_rank st.trie v)

  let count ({ st; v } as node) =
    if Static_trie.is_leaf st.trie v then st.leaf_counts.(leaf_rank st.trie v)
    else Rrr.length (bv_of node)

  let child { st; v } b = { st; v = Static_trie.child st.trie v b }
  let bv_rank node b pos = Rrr.rank (bv_of node) b pos
  let bv_select node b k = Rrr.select (bv_of node) b k
  let bv_access node pos = Rrr.access (bv_of node) pos
  let bv_access_rank node pos = Rrr.access_rank (bv_of node) pos

  let iter_bits node pos =
    let it = Rrr.Iter.create (bv_of node) pos in
    fun () -> Rrr.Iter.next it

  let bv_space_bits node = Rrr.space_bits (bv_of node)
end

module Q = Query.Make (Node)

let length t = Node.length t
let access = Q.access
let rank = Q.rank
let select = Q.select
let rank_prefix = Q.rank_prefix
let select_prefix = Q.select_prefix
let distinct_count = Q.distinct_count
let to_array = Q.to_array

let space_bits t =
  match t with
  | None -> 64
  | Some st ->
      let bv = Array.fold_left (fun acc bv -> acc + Rrr.space_bits bv) 0 st.bvs in
      Static_trie.space_bits st.trie + bv
      + (64 * (Array.length st.bvs + Array.length st.leaf_counts + 4))

let stats t = Q.stats ~space_bits t


