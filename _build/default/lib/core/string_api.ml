(** Byte-string façade over any Wavelet Trie variant.

    The core structures work on prefix-free bitstrings; these functors
    apply {!Wt_strings.Binarize.of_bytes} on the way in (and its inverse
    on the way out) so applications can speak plain OCaml [string]s.
    Prefix arguments are byte-string prefixes: ["site.com/"] matches every
    stored string that starts with those bytes. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize

let encode = Binarize.of_bytes

(* A byte prefix is the encoding without its terminator bit. *)
let encode_prefix p =
  let e = Binarize.of_bytes p in
  Bitstring.prefix e (Bitstring.length e - 1)

module Make (I : Indexed_sequence.S) = struct
  type t = I.t

  let length = I.length
  let distinct_count = I.distinct_count
  let space_bits = I.space_bits
  let access t pos = Binarize.to_bytes (I.access t pos)
  let rank t s pos = I.rank t (encode s) pos
  let select t s idx = I.select t (encode s) idx
  let rank_prefix t p pos = I.rank_prefix t (encode_prefix p) pos
  let select_prefix t p idx = I.select_prefix t (encode_prefix p) idx

  let count_prefix t p = rank_prefix t p (length t)
  (** Total number of stored strings starting with [p]. *)

  let count t s = rank t s (length t)
  (** Total occurrences of [s]. *)
end

module Make_dynamic (I : Indexed_sequence.DYNAMIC) = struct
  include Make (I)

  let insert t pos s = I.insert t pos (encode s)
  let delete = I.delete
  let append t s = I.append t (encode s)
end

module Static = struct
  include Make (Wavelet_trie)

  let of_list l = Wavelet_trie.of_list (List.map encode l)
  let of_array a = Wavelet_trie.of_array (Array.map encode a)
end

module Append = struct
  include Make (Append_wt)

  let create = Append_wt.create
  let append t s = Append_wt.append t (encode s)
  let of_array a = Append_wt.of_array (Array.map encode a)
end

module Dynamic = struct
  include Make_dynamic (Dynamic_wt)

  let create = Dynamic_wt.create
  let of_array a = Dynamic_wt.of_array (Array.map encode a)
end
