(** Save/load Wavelet Tries to disk.

    The on-disk format is a small header (magic, format version, variant
    tag) followed by the OCaml [Marshal] encoding of the structure.  Like
    all [Marshal]-based formats it is not portable across incompatible
    compiler versions; the header makes such mismatches fail loudly
    instead of silently misbehaving.  Intended for index caches (see the
    [wtrie] CLI), not archival storage. *)

exception Format_error of string
(** Raised by the [load_*] functions on a bad magic, version or variant
    tag. *)

val save_static : Wavelet_trie.t -> string -> unit
val load_static : string -> Wavelet_trie.t
val save_append : Append_wt.t -> string -> unit
val load_append : string -> Append_wt.t
val save_dynamic : Dynamic_wt.t -> string -> unit
val load_dynamic : string -> Dynamic_wt.t

val is_index_file : string -> bool
(** Whether the file starts with this library's magic bytes. *)
