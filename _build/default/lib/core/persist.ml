exception Format_error of string

let magic = "wavelet-trie-index"
let version = 1

let save tag v path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      output_binary_int oc (String.length tag);
      output_string oc tag;
      Marshal.to_channel oc v [])

let load : type a. string -> string -> a =
 fun tag path ->
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* any premature EOF in the header is a truncation *)
      let really_input_string ic n =
        match really_input_string ic n with
        | s -> s
        | exception End_of_file -> raise (Format_error "truncated index header")
      and input_binary_int ic =
        match input_binary_int ic with
        | v -> v
        | exception End_of_file -> raise (Format_error "truncated index header")
      in
      let m = really_input_string ic (String.length magic) in
      if m <> magic then raise (Format_error "not a wavelet-trie index file");
      let v = input_binary_int ic in
      if v <> version then
        raise (Format_error (Printf.sprintf "index format version %d, expected %d" v version));
      let tlen = input_binary_int ic in
      let t = really_input_string ic tlen in
      if t <> tag then
        raise
          (Format_error (Printf.sprintf "index holds a %S trie, expected %S" t tag));
      match (Marshal.from_channel ic : a) with
      | v -> v
      | exception (End_of_file | Failure _) ->
          raise (Format_error "truncated or corrupted index payload"))

let save_static (t : Wavelet_trie.t) path = save "static" t path
let load_static path : Wavelet_trie.t = load "static" path
let save_append (t : Append_wt.t) path = save "append" t path
let load_append path : Append_wt.t = load "append" path
let save_dynamic (t : Dynamic_wt.t) path = save "dynamic" t path
let load_dynamic path : Dynamic_wt.t = load "dynamic" path

let is_index_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | m -> m = magic
          | exception End_of_file -> false)
