module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Broadword = Wt_bits.Broadword
module Xoshiro = Wt_bits.Xoshiro

type t = {
  w : int;
  a : int; (* odd multiplier *)
  a_inv : int; (* a^-1 mod 2^w *)
  wt : Dynamic_wt.t;
}

(* Inverse of an odd number modulo 2^w by Newton iteration: each step
   doubles the number of correct low bits. *)
let mod_inverse a w =
  let m = Broadword.mask w in
  let x = ref a in
  for _ = 1 to 6 do
    x := !x * (2 - (a * !x)) land m
  done;
  !x land m

let create ?(seed = 0x5eed) ~width () =
  if width < 1 || width > 62 then invalid_arg "Balanced.create: bad width";
  let rng = Xoshiro.create seed in
  let a = Xoshiro.odd rng ~bits:width in
  { w = width; a; a_inv = mod_inverse a width; wt = Dynamic_wt.create () }

let width t = t.w
let length t = Dynamic_wt.length t.wt

let check_value t x =
  if x < 0 || (t.w < 62 && x >= 1 lsl t.w) then invalid_arg "Balanced: value out of universe"

(* The hash is written MOST-significant bit first.  The paper says
   "LSB-to-MSB", but the low bits of [a*x mod 2^w] only depend on
   [x mod 2^l] — a set of values congruent modulo a small power of two
   (e.g. the powers of two themselves) collides on every low prefix with
   probability 1, and the trie degenerates.  The Dietzfelbinger et
   al. [4] guarantee is for the HIGH bits of the product, so those must
   come first on the root-to-leaf paths.  See DESIGN.md. *)
let encode t x =
  check_value t x;
  Binarize.of_int_msb ~width:t.w (t.a * x land Broadword.mask t.w)

let decode t bits = t.a_inv * Binarize.to_int_msb bits land Broadword.mask t.w

let access t pos = decode t (Dynamic_wt.access t.wt pos)
let rank t x pos = Dynamic_wt.rank t.wt (encode t x) pos
let select t x idx = Dynamic_wt.select t.wt (encode t x) idx
let insert t pos x = Dynamic_wt.insert t.wt pos (encode t x)
let delete t pos = Dynamic_wt.delete t.wt pos
let append t x = insert t (length t) x
let distinct_count t = Dynamic_wt.distinct_count t.wt

let height t =
  let module N = Dynamic_wt.Node in
  let rec go node = if N.is_leaf node then 0 else 1 + max (go (N.child node false)) (go (N.child node true)) in
  match N.root t.wt with None -> 0 | Some root -> go root

let space_bits t = Dynamic_wt.space_bits t.wt + (4 * 64)
let stats t = Dynamic_wt.stats t.wt
let check_invariants t = Dynamic_wt.check_invariants t.wt
