lib/trie/static_trie.ml: Array Format List Wt_bits Wt_strings Wt_succinct
