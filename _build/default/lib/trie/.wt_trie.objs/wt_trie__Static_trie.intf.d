lib/trie/static_trie.mli: Format Wt_strings
