lib/trie/patricia.mli: Format Wt_strings
