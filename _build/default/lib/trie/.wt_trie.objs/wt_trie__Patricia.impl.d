lib/trie/patricia.ml: Format List Wt_strings
