(** Static succinct Patricia Trie — the Theorem 3.6 layout.

    The trie over a prefix-free set [Sset] is stored as:
    - the tree shape, one bit per node in preorder ({!Wt_succinct.Bintree}),
      [e + 1] bits plus o(·) directories where [e = 2 (|Sset| - 1)] is the
      number of edges;
    - the node labels α concatenated in preorder into a single bit
      sequence [L];
    - a partial-sum directory ({!Wt_succinct.Partial_sums}) delimiting the
      labels, [B(e, |L| + e) + o(·)] bits.

    Total: [|L| + e + B(e, |L| + e) + o(·)] — the lower bound [LT(Sset)]
    of Ferragina et al. [7] plus negligible overhead.

    Nodes are preorder identifiers as in {!Wt_succinct.Bintree}. *)

type t

val of_strings : Wt_strings.Bitstring.t array -> t
(** Build from a non-empty prefix-free set (duplicates allowed and
    ignored).  Raises [Invalid_argument] on an empty array or a
    prefix-freeness violation. *)

val node_count : t -> int
val internal_count : t -> int
val leaf_count : t -> int
(** Number of stored strings. *)

val root : t -> int
val is_leaf : t -> int -> bool
val left_child : t -> int -> int
val right_child : t -> int -> int
val child : t -> int -> bool -> int
val parent : t -> int -> int option
val internal_rank : t -> int -> int

val label : t -> int -> Wt_strings.Bitstring.t
(** The label α of a node.  O(1), shares the label stream. *)

val mem : t -> Wt_strings.Bitstring.t -> bool

val find_path : t -> Wt_strings.Bitstring.t -> int list option
(** [find_path t s] is the root-to-leaf path of node ids spelling exactly
    [s], or [None] if [s] is not stored.  O(|s|). *)

val prefix_node : t -> Wt_strings.Bitstring.t -> (int * int list) option
(** [prefix_node t p] finds the highest node [v] whose root-to-[v] path
    [covers] the prefix [p] (every stored string below [v] starts with
    [p], and all strings with prefix [p] live below [v]).  Returns the
    node and the internal-node path from the root down to and including
    [v] (when internal); [None] when no stored string starts with [p]. *)

val string_of_leaf : t -> int -> Wt_strings.Bitstring.t
(** Reconstruct the stored string ending at a leaf.  O(path length). *)

val label_stream_bits : t -> int
(** [|L|]: total label bits. *)

val edge_count : t -> int
(** [e = node_count - 1]. *)

val space_bits : t -> int
val lower_bound_bits : t -> float
(** The [LT(Sset)] value [|L| + e + B(e, |L| + e)] for this set. *)

val pp : Format.formatter -> t -> unit
