(** Dynamic binary Patricia Trie (Appendix B of the paper).

    Stores a prefix-free set of bitstrings.  Nodes hold bitstring labels;
    internal nodes have exactly two children (0 and 1).  Insertion of [s]
    runs in O(|s|) and splits at most one node; deletion runs in O(l)
    where [l] is the length of the removed string's path, merging the
    removed leaf's parent with its sibling.  Space is O(k w) + |L| bits
    for [k] strings with [L] the concatenated labels.

    This standalone module covers the string-set semantics; the dynamic
    Wavelet Tries carry their own Patricia skeleton because every
    structural step there interleaves with bitvector maintenance. *)

type t

val create : unit -> t
val size : t -> int
(** Number of stored strings. *)

val is_empty : t -> bool

val mem : t -> Wt_strings.Bitstring.t -> bool

val insert : t -> Wt_strings.Bitstring.t -> [ `Added | `Already_present ]
(** Raises [Invalid_argument] if adding [s] would violate prefix-freeness
    (i.e. [s] is a proper prefix of a stored string or vice versa). *)

val remove : t -> Wt_strings.Bitstring.t -> bool
(** [remove t s] deletes [s]; returns whether it was present. *)

val iter : (Wt_strings.Bitstring.t -> unit) -> t -> unit
(** In lexicographic (0-before-1) order.  Strings are reconstructed, so
    the full traversal costs O(|L| + k). *)

val to_list : t -> Wt_strings.Bitstring.t list

val iter_with_prefix : (Wt_strings.Bitstring.t -> unit) -> t -> Wt_strings.Bitstring.t -> unit
(** Enumerate the stored strings that start with the given prefix. *)

val count_prefix : t -> Wt_strings.Bitstring.t -> int

val label_bits : t -> int
(** Total bits across all node labels: the [|L|] of Theorem 3.6. *)

val node_count : t -> int

val check_invariants : t -> unit
(** Validate label alternation-free structure: internal nodes have two
    children and no node (except possibly the root) has an empty
    mergeable shape.  Raises [Failure] on violation. *)

val pp : Format.formatter -> t -> unit
