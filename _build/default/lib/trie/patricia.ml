module Bitstring = Wt_strings.Bitstring

type node = { mutable label : Bitstring.t; mutable kind : kind }
and kind = Leaf | Internal of { mutable zero : node; mutable one : node }

type t = { mutable root : node option; mutable size : int }

let create () = { root = None; size = 0 }
let size t = t.size
let is_empty t = t.size = 0

let child n b =
  match n.kind with
  | Leaf -> invalid_arg "Patricia.child: leaf"
  | Internal c -> if b then c.one else c.zero

(* Descend matching [s]; returns [true] iff s is stored. *)
let mem t s =
  let rec go node s =
    let l = Bitstring.lcp node.label s in
    if l < Bitstring.length node.label then false
    else begin
      let rest = Bitstring.drop s l in
      match node.kind with
      | Leaf -> Bitstring.is_empty rest
      | Internal _ ->
          if Bitstring.is_empty rest then false
          else go (child node (Bitstring.get rest 0)) (Bitstring.drop rest 1)
    end
  in
  match t.root with None -> false | Some root -> go root s

let insert t s =
  match t.root with
  | None ->
      t.root <- Some { label = s; kind = Leaf };
      t.size <- t.size + 1;
      `Added
  | Some root ->
      let rec go node s =
        let l = Bitstring.lcp node.label s in
        let llen = Bitstring.length node.label in
        if l < llen then begin
          if l = Bitstring.length s then
            invalid_arg "Patricia.insert: string is a proper prefix of a stored string";
          (* Split [node] at offset l: a new internal node keeps the
             common prefix, the old node keeps the label suffix past the
             discriminating bit, and a new leaf holds the rest of [s]. *)
          let b = Bitstring.get s l in
          let old_half =
            { label = Bitstring.drop node.label (l + 1); kind = node.kind }
          in
          let new_leaf = { label = Bitstring.drop s (l + 1); kind = Leaf } in
          node.label <- Bitstring.prefix node.label l;
          node.kind <-
            (if b then Internal { zero = old_half; one = new_leaf }
             else Internal { zero = new_leaf; one = old_half });
          `Added
        end
        else begin
          let rest = Bitstring.drop s l in
          match node.kind with
          | Leaf ->
              if Bitstring.is_empty rest then `Already_present
              else
                invalid_arg
                  "Patricia.insert: a stored string is a proper prefix of the string"
          | Internal _ ->
              if Bitstring.is_empty rest then
                invalid_arg
                  "Patricia.insert: string is a proper prefix of a stored string"
              else go (child node (Bitstring.get rest 0)) (Bitstring.drop rest 1)
        end
      in
      let r = go root s in
      if r = `Added then t.size <- t.size + 1;
      r

let remove t s =
  let rec go parent branch node s =
    let l = Bitstring.lcp node.label s in
    if l < Bitstring.length node.label then false
    else begin
      let rest = Bitstring.drop s l in
      match node.kind with
      | Leaf ->
          if not (Bitstring.is_empty rest) then false
          else begin
            (match (parent, branch) with
            | None, _ -> t.root <- None
            | Some p, Some b -> (
                (* Merge the parent with the surviving sibling. *)
                let sibling = child p (not b) in
                let merged_label =
                  Bitstring.concat
                    [ p.label; Bitstring.of_bool_list [ not b ]; sibling.label ]
                in
                p.label <- merged_label;
                p.kind <- sibling.kind)
            | Some _, None -> assert false);
            true
          end
      | Internal _ ->
          if Bitstring.is_empty rest then false
          else begin
            let b = Bitstring.get rest 0 in
            go (Some node) (Some b) (child node b) (Bitstring.drop rest 1)
          end
    end
  in
  match t.root with
  | None -> false
  | Some root ->
      let removed = go None None root s in
      if removed then t.size <- t.size - 1;
      removed

let iter f t =
  let rec go acc node =
    let acc = acc @ [ node.label ] in
    match node.kind with
    | Leaf -> f (Bitstring.concat acc)
    | Internal { zero; one } ->
        go (acc @ [ Bitstring.of_bool_list [ false ] ]) zero;
        go (acc @ [ Bitstring.of_bool_list [ true ] ]) one
  in
  match t.root with None -> () | Some root -> go [] root

let to_list t =
  let acc = ref [] in
  iter (fun s -> acc := s :: !acc) t;
  List.rev !acc

(* Locate the node whose path covers prefix [p]; returns the node and the
   full path-string down to (and including) its label, or None. *)
let locate_prefix t p =
  let rec go path node p =
    let l = Bitstring.lcp node.label p in
    let rest = Bitstring.drop p l in
    if Bitstring.is_empty rest then Some (node, List.rev (node.label :: path))
    else if l < Bitstring.length node.label then None
    else
      match node.kind with
      | Leaf -> None
      | Internal _ ->
          let b = Bitstring.get rest 0 in
          go
            (Bitstring.of_bool_list [ b ] :: node.label :: path)
            (child node b) (Bitstring.drop rest 1)
  in
  match t.root with None -> None | Some root -> go [] root p

let iter_with_prefix f t p =
  match locate_prefix t p with
  | None -> ()
  | Some (node, path) ->
      (* [acc] holds, deepest-first, all labels and branch bits down to and
         including the current node's label. *)
      let rec under acc node =
        match node.kind with
        | Leaf -> f (Bitstring.concat (List.rev acc))
        | Internal { zero; one } ->
            under (zero.label :: Bitstring.of_bool_list [ false ] :: acc) zero;
            under (one.label :: Bitstring.of_bool_list [ true ] :: acc) one
      in
      under (List.rev path) node

let count_prefix t p =
  let n = ref 0 in
  iter_with_prefix (fun _ -> incr n) t p;
  !n

let label_bits t =
  let acc = ref 0 in
  let rec go node =
    acc := !acc + Bitstring.length node.label;
    match node.kind with
    | Leaf -> ()
    | Internal { zero; one } ->
        go zero;
        go one
  in
  (match t.root with None -> () | Some root -> go root);
  !acc

let node_count t =
  let acc = ref 0 in
  let rec go node =
    incr acc;
    match node.kind with
    | Leaf -> ()
    | Internal { zero; one } ->
        go zero;
        go one
  in
  (match t.root with None -> () | Some root -> go root);
  !acc

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let leaves = ref 0 in
  let rec go node =
    match node.kind with
    | Leaf -> incr leaves
    | Internal { zero; one } ->
        go zero;
        go one
  in
  (match t.root with None -> () | Some root -> go root);
  if !leaves <> t.size then fail "size %d but %d leaves" t.size !leaves

let pp fmt t =
  let rec go fmt node =
    match node.kind with
    | Leaf -> Format.fprintf fmt "@[<h>Leaf(%a)@]" Bitstring.pp node.label
    | Internal { zero; one } ->
        Format.fprintf fmt "@[<v 2>Node(%a)@,0:%a@,1:%a@]" Bitstring.pp node.label go
          zero go one
  in
  match t.root with
  | None -> Format.pp_print_string fmt "<empty>"
  | Some root -> go fmt root
