module Bitbuf = Wt_bits.Bitbuf
module Bitstring = Wt_strings.Bitstring
module Bintree = Wt_succinct.Bintree
module Partial_sums = Wt_succinct.Partial_sums
module Entropy = Wt_bits.Entropy

type t = {
  shape : Bintree.t;
  labels : Bitstring.t; (* concatenated labels in preorder: the stream L *)
  delims : Partial_sums.t; (* label lengths in preorder *)
}

(* Build directly in preorder by recursive partitioning of the sorted,
   deduplicated string set (Definition 3.1 shape = Patricia shape). *)
let of_strings strings =
  if Array.length strings = 0 then invalid_arg "Static_trie.of_strings: empty set";
  let shape = Bitbuf.create () in
  let labels = Bitbuf.create () in
  let lens = ref [] in
  let sorted =
    let l = Array.to_list strings in
    let l = List.sort_uniq Bitstring.compare l in
    Array.of_list l
  in
  (* Check prefix-freeness: in sorted order a violation is adjacent. *)
  for i = 0 to Array.length sorted - 2 do
    if Bitstring.is_prefix ~prefix:sorted.(i) sorted.(i + 1) then
      invalid_arg "Static_trie.of_strings: set is not prefix-free"
  done;
  (* Recursive construction mirroring Definition 3.1 / the Patricia
     definition: each call handles sorted[lo, hi) sharing a common prefix
     of [off] consumed bits. *)
  let rec build lo hi off =
    (* longest common prefix of the group beyond [off] *)
    let first = sorted.(lo) and last = sorted.(hi - 1) in
    let l = Bitstring.lcp (Bitstring.drop first off) (Bitstring.drop last off) in
    let alpha = Bitstring.sub first off l in
    if hi - lo = 1 then begin
      Bitbuf.add shape false;
      Bitstring.append_to_bitbuf alpha labels;
      lens := Bitstring.length alpha :: !lens
    end
    else begin
      Bitbuf.add shape true;
      Bitstring.append_to_bitbuf alpha labels;
      lens := Bitstring.length alpha :: !lens;
      (* Partition on the discriminating bit at off + l. *)
      let split = ref lo in
      while !split < hi && not (Bitstring.get sorted.(!split) (off + l)) do
        incr split
      done;
      build lo !split (off + l + 1);
      build !split hi (off + l + 1)
    end
  in
  build 0 (Array.length sorted) 0;
  {
    shape = Bintree.of_bitbuf shape;
    labels = Bitstring.of_bitbuf labels;
    delims = Partial_sums.of_lengths (Array.of_list (List.rev !lens));
  }

let node_count t = Bintree.node_count t.shape
let internal_count t = Bintree.internal_count t.shape
let leaf_count t = Bintree.leaf_count t.shape
let root t = Bintree.root t.shape
let is_leaf t v = Bintree.is_leaf t.shape v
let left_child t v = Bintree.left_child t.shape v
let right_child t v = Bintree.right_child t.shape v
let child t v b = if b then right_child t v else left_child t v
let parent t v = Bintree.parent t.shape v
let internal_rank t v = Bintree.internal_rank t.shape v

let label t v =
  let start = Partial_sums.sum t.delims v in
  Bitstring.sub t.labels start (Partial_sums.length_of t.delims v)

(* Generic descent: returns the path of nodes consumed while matching s
   exactly to a leaf, or None. *)
let find_path t s =
  let rec go v s acc =
    let alpha = label t v in
    let l = Bitstring.lcp alpha s in
    if l < Bitstring.length alpha then None
    else begin
      let rest = Bitstring.drop s l in
      if is_leaf t v then if Bitstring.is_empty rest then Some (List.rev (v :: acc)) else None
      else if Bitstring.is_empty rest then None
      else go (child t v (Bitstring.get rest 0)) (Bitstring.drop rest 1) (v :: acc)
    end
  in
  go (root t) s []

let mem t s = find_path t s <> None

let prefix_node t p =
  let rec go v p acc =
    let alpha = label t v in
    let l = Bitstring.lcp alpha p in
    let rest = Bitstring.drop p l in
    if Bitstring.is_empty rest then Some (v, List.rev (v :: acc))
    else if l < Bitstring.length alpha then None
    else if is_leaf t v then None
    else go (child t v (Bitstring.get rest 0)) (Bitstring.drop rest 1) (v :: acc)
  in
  go (root t) p []

let string_of_leaf t v =
  if not (is_leaf t v) then invalid_arg "Static_trie.string_of_leaf: not a leaf";
  let rec up v acc =
    match parent t v with
    | None -> label t v :: acc
    | Some p ->
        let bit = Bitstring.of_bool_list [ not (Bintree.is_left_child t.shape v) ] in
        up p (bit :: label t v :: acc)
  in
  Bitstring.concat (up v [])

let label_stream_bits t = Bitstring.length t.labels
let edge_count t = node_count t - 1

let space_bits t =
  Bintree.space_bits t.shape + Bitstring.length t.labels
  + Partial_sums.space_bits t.delims

let lower_bound_bits t =
  let l = label_stream_bits t and e = edge_count t in
  float_of_int (l + e) +. Entropy.binomial_bound e (l + e)

let pp fmt t =
  let rec go fmt v =
    if is_leaf t v then Format.fprintf fmt "@[<h>Leaf(%a)@]" Bitstring.pp (label t v)
    else
      Format.fprintf fmt "@[<v 2>Node(%a)@,0:%a@,1:%a@]" Bitstring.pp (label t v) go
        (left_child t v) go (right_child t v)
  in
  go fmt (root t)
