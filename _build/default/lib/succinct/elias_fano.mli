(** Elias–Fano encoding of a monotone integer sequence.

    A non-decreasing sequence of [k] integers in [0, u] is stored in
    [k * (2 + ceil (log2 (u / k)))] bits, close to the information-
    theoretic bound [B(k, u)]: the low [l = log2 (u/k)] bits of each value
    verbatim, the high bits as a unary-coded bitvector.

    This realizes the partial-sum structures of Raman–Raman–Rao [22] used
    throughout Section 3 of the paper to delimit variable-length
    encodings (trie labels, per-node RRR bitvectors). *)

type t

val of_array : universe:int -> int array -> t
(** [of_array ~universe values] encodes [values], which must be
    non-decreasing with every element in [0, universe]. *)

val length : t -> int
(** Number of encoded values. *)

val universe : t -> int

val get : t -> int -> int
(** [get t i] is the [i]-th value. *)

val rank_le : t -> int -> int
(** [rank_le t x] is the number of values [<= x]. *)

val predecessor : t -> int -> (int * int) option
(** [predecessor t x] is [Some (i, v)] where [v = get t i] is the largest
    value [<= x] with the largest such index [i]; [None] when all values
    exceed [x]. *)

val space_bits : t -> int

val pp : Format.formatter -> t -> unit
