type t = { ef : Elias_fano.t; count : int; total : int }

(* We store the sums s_1 .. s_k (s_0 = 0 is implicit): sum of the first i
   lengths for i >= 1. *)
let of_lengths lens =
  let k = Array.length lens in
  let sums = Array.make k 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i len ->
      if len < 0 then invalid_arg "Partial_sums.of_lengths: negative length";
      acc := !acc + len;
      sums.(i) <- !acc)
    lens;
  { ef = Elias_fano.of_array ~universe:!acc sums; count = k; total = !acc }

let count t = t.count
let total t = t.total

let sum t i =
  if i < 0 || i > t.count then invalid_arg "Partial_sums.sum: out of bounds";
  if i = 0 then 0 else Elias_fano.get t.ef (i - 1)

let length_of t i = sum t (i + 1) - sum t i

let find t pos =
  if pos < 0 || pos >= t.total then invalid_arg "Partial_sums.find: out of bounds";
  (* smallest i with sum(i+1) > pos, i.e. number of sums <= pos *)
  Elias_fano.rank_le t.ef pos

let space_bits t = Elias_fano.space_bits t.ef + (2 * 64)
