lib/succinct/elias_fano.mli: Format
