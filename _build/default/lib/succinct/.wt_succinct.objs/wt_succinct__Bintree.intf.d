lib/succinct/bintree.mli: Format Wt_bits
