lib/succinct/partial_sums.ml: Array Elias_fano
