lib/succinct/bintree.ml: Array Format Wt_bits Wt_bitvector
