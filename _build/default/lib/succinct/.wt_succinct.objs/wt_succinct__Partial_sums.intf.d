lib/succinct/partial_sums.mli:
