lib/succinct/elias_fano.ml: Array Format Wt_bits Wt_bitvector
