module Bitbuf = Wt_bits.Bitbuf
module Plain = Wt_bitvector.Plain

(* Excess convention: +1 for an internal node (bit 1), -1 for a leaf
   (bit 0).  prefix_excess p = excess of bits [0..p].  For a valid strictly
   binary tree in preorder, every proper prefix has excess >= 0 and the
   whole sequence has excess -1.  The subtree rooted at v spans [v, j]
   where j is the first position with
   prefix_excess j = prefix_excess (v-1) - 1.

   A segment tree over 62-bit blocks stores, per segment, the total excess
   and the min/max of the within-segment prefix excess; since prefix
   excess moves in +-1 steps, a segment contains an absolute value T iff
   T lies within [base+min, base+max]. *)

let block = 62

type t = {
  bits : Plain.t;
  n : int;
  nblocks : int;
  size : int; (* number of segment-tree leaves (power of two) *)
  tot : int array;
  mn : int array;
  mx : int array;
}

let node_count t = t.n
let internal_count t = Plain.ones t.bits
let leaf_count t = Plain.zeros t.bits
let root _ = 0

let is_leaf t v =
  if v < 0 || v >= t.n then invalid_arg "Bintree.is_leaf";
  not (Plain.access t.bits v)

let internal_rank t v = Plain.rank t.bits true v

let prefix_excess t p = if p < 0 then 0 else (2 * Plain.rank t.bits true (p + 1)) - (p + 1)

let bit_delta b = if b then 1 else -1

let of_bitbuf buf =
  let n = Bitbuf.length buf in
  if n = 0 then invalid_arg "Bintree.of_bitbuf: empty shape";
  let bits = Plain.of_bitbuf buf in
  (* Validate the Zaks-sequence invariant. *)
  let e = ref 0 in
  for i = 0 to n - 1 do
    e := !e + bit_delta (Plain.access bits i);
    if !e < 0 && i < n - 1 then invalid_arg "Bintree.of_bitbuf: invalid shape (early close)"
  done;
  if !e <> -1 then invalid_arg "Bintree.of_bitbuf: invalid shape (unbalanced)";
  let nblocks = (n + block - 1) / block in
  let size =
    let rec go s = if s >= nblocks then s else go (s * 2) in
    go 1
  in
  let tot = Array.make (2 * size) 0 in
  let mn = Array.make (2 * size) max_int in
  let mx = Array.make (2 * size) min_int in
  for b = 0 to nblocks - 1 do
    let node = size + b in
    let e = ref 0 in
    let lo = ref max_int and hi = ref min_int in
    for i = b * block to min n ((b + 1) * block) - 1 do
      e := !e + bit_delta (Plain.access bits i);
      if !e < !lo then lo := !e;
      if !e > !hi then hi := !e
    done;
    tot.(node) <- !e;
    mn.(node) <- !lo;
    mx.(node) <- !hi
  done;
  for node = size - 1 downto 1 do
    let l = 2 * node and r = (2 * node) + 1 in
    tot.(node) <- tot.(l) + tot.(r);
    mn.(node) <- min mn.(l) (if mn.(r) = max_int then max_int else tot.(l) + mn.(r));
    mx.(node) <- max mx.(l) (if mx.(r) = min_int then min_int else tot.(l) + mx.(r))
  done;
  { bits; n; nblocks; size; tot; mn; mx }

(* Forward search: smallest position j >= pos with prefix_excess j = target.
   Raises Not_found when none exists. *)
let fwd_search t pos target =
  let n = t.n in
  (* Scan the rest of pos's block. *)
  let b0 = pos / block in
  let e = ref (prefix_excess t (pos - 1)) in
  let hit = ref (-1) in
  let i = ref pos in
  let bend = min n ((b0 + 1) * block) in
  while !hit < 0 && !i < bend do
    e := !e + bit_delta (Plain.access t.bits !i);
    if !e = target then hit := !i else incr i
  done;
  if !hit >= 0 then !hit
  else begin
    (* Descend the segment tree over full blocks > b0. *)
    let k1 = b0 + 1 in
    let rec go node l r base =
      if r < k1 || l >= t.nblocks then None
      else if
        l >= k1
        && (t.mn.(node) = max_int || base + t.mn.(node) > target
          || base + t.mx.(node) < target)
      then None
      else if l = r then begin
        (* scan block l from its start with absolute base excess *)
        let e = ref base in
        let res = ref None in
        let i = ref (l * block) in
        let bend = min n ((l + 1) * block) in
        while !res = None && !i < bend do
          e := !e + bit_delta (Plain.access t.bits !i);
          if !e = target then res := Some !i else incr i
        done;
        !res
      end
      else begin
        let m = (l + r) / 2 in
        match go (2 * node) l m base with
        | Some _ as s -> s
        | None -> go ((2 * node) + 1) (m + 1) r (base + t.tot.(2 * node))
      end
    in
    match go 1 0 (t.size - 1) 0 with Some j -> j | None -> raise Not_found
  end

(* Backward search: largest position x <= pos with prefix_excess x = target
   and (when [only_internal]) an internal node at x.  The internal-node
   restriction is what [parent] needs: leaves strictly inside a subtree can
   share the parent's prefix excess, but internal nodes inside it always
   sit at relative excess >= +1, so the rightmost internal match is the
   parent. *)
let bwd_search ?(only_internal = false) t pos target =
  let admissible i = (not only_internal) || Plain.access t.bits i in
  let b0 = pos / block in
  (* Scan pos's block backwards down to its start. *)
  let e = ref (prefix_excess t pos) in
  let hit = ref (-1) in
  let i = ref pos in
  let bstart = b0 * block in
  while !hit < 0 && !i >= bstart do
    if !e = target && admissible !i then hit := !i
    else begin
      e := !e - bit_delta (Plain.access t.bits !i);
      decr i
    end
  done;
  if !hit >= 0 then !hit
  else begin
    let k1 = b0 - 1 in
    (* Search full blocks <= k1, rightmost match first. *)
    let rec go node l r base =
      if l > k1 then None
      else if
        t.mn.(node) = max_int
        || (r <= k1 && (base + t.mn.(node) > target || base + t.mx.(node) < target))
      then None
      else if l = r then begin
        (* Forward-compute the within-block prefix excesses, then find the
           rightmost match. *)
        let bend = min t.n ((l + 1) * block) in
        let vals = Array.make (bend - (l * block)) 0 in
        let acc = ref base in
        for i = l * block to bend - 1 do
          acc := !acc + bit_delta (Plain.access t.bits i);
          vals.(i - (l * block)) <- !acc
        done;
        let res = ref None in
        let i = ref (bend - 1) in
        while !res = None && !i >= l * block do
          if vals.(!i - (l * block)) = target && admissible !i then res := Some !i
          else decr i
        done;
        !res
      end
      else begin
        let m = (l + r) / 2 in
        match go ((2 * node) + 1) (m + 1) r (base + t.tot.(2 * node)) with
        | Some _ as s -> s
        | None -> go (2 * node) l m base
      end
    in
    match go 1 0 (t.size - 1) 0 with Some j -> j | None -> raise Not_found
  end

let subtree_end t v =
  if v < 0 || v >= t.n then invalid_arg "Bintree.subtree_end";
  let target = prefix_excess t (v - 1) - 1 in
  fwd_search t v target + 1

let left_child t v =
  if is_leaf t v then invalid_arg "Bintree.left_child: leaf";
  v + 1

let right_child t v =
  if is_leaf t v then invalid_arg "Bintree.right_child: leaf";
  subtree_end t (v + 1)

let is_left_child t v =
  if v <= 0 || v >= t.n then invalid_arg "Bintree.is_left_child";
  Plain.access t.bits (v - 1)

let parent t v =
  if v < 0 || v >= t.n then invalid_arg "Bintree.parent";
  if v = 0 then None
  else if Plain.access t.bits (v - 1) then Some (v - 1)
  else begin
    (* v is the right child: its parent is the largest x < v with
       prefix_excess x = prefix_excess (v-1) + 1. *)
    Some (bwd_search ~only_internal:true t (v - 1) (prefix_excess t (v - 1) + 1))
  end

let space_bits t =
  Plain.space_bits t.bits
  + (64 * (Array.length t.tot + Array.length t.mn + Array.length t.mx + 4))

let pp fmt t =
  Format.pp_print_string fmt (Bitbuf.to_string (Plain.to_bitbuf t.bits))
