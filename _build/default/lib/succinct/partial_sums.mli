(** Static partial sums over non-negative lengths.

    Stores the prefix sums of an array of lengths in compressed form
    (Elias–Fano), supporting the two operations needed to delimit
    concatenated variable-length encodings (labels [L] and per-node
    bitvectors of the static Wavelet Trie, Section 3):

    - [sum t i]: the total length of the first [i] items (so item [i]
      occupies bits [sum t i, sum t (i+1))]);
    - [find t pos]: which item the global bit position [pos] falls in. *)

type t

val of_lengths : int array -> t
(** [of_lengths lens] requires every length [>= 0]. *)

val count : t -> int
(** Number of items. *)

val total : t -> int
(** Sum of all lengths. *)

val sum : t -> int -> int
(** [sum t i] is the sum of the first [i] lengths ([0 <= i <= count]). *)

val length_of : t -> int -> int
(** [length_of t i] is the [i]-th length. *)

val find : t -> int -> int
(** [find t pos] is the item index [i] such that
    [sum t i <= pos < sum t (i + 1)].  Requires [0 <= pos < total t].
    Items of length 0 are skipped (they contain no positions). *)

val space_bits : t -> int
