(** Succinct shape of a strictly binary tree (every internal node has
    exactly two children).

    Nodes are identified by their preorder position in a bit sequence
    where internal nodes are written as [1] and leaves as [0] (a Zaks
    sequence).  A tree with [e/2 + 1] leaves uses [e + 1] bits plus o(n)
    directories — the same budget as the first-child/next-sibling DFUDS
    encoding the paper uses in Theorem 3.7 for the static Patricia Trie.

    Navigation:
    - the root is node [0];
    - [left_child v = v + 1];
    - [right_child v] is found with an excess search (the first position
      where leaves outnumber internal nodes in the left subtree);
    - [parent] uses the symmetric backward search.

    [internal_rank v] numbers the internal nodes in preorder — the index
    of a node's bitvector β in the Wavelet Trie — and [node_rank] is the
    identity on preorder numbers used to address labels. *)

type t

val of_bitbuf : Wt_bits.Bitbuf.t -> t
(** Build from the preorder 1/0 shape sequence.  Raises
    [Invalid_argument] if the sequence is not a valid strictly binary
    tree (it must be non-empty and have exactly one more leaf than
    internal nodes, with every proper prefix having at most as many
    leaves as internal nodes). *)

val node_count : t -> int
val internal_count : t -> int
val leaf_count : t -> int

val root : t -> int
val is_leaf : t -> int -> bool
val left_child : t -> int -> int
val right_child : t -> int -> int

val parent : t -> int -> int option
(** [None] for the root. *)

val is_left_child : t -> int -> bool
(** Whether node [v] is the left child of its parent.  Requires [v <> root]. *)

val internal_rank : t -> int -> int
(** Number of internal nodes before [v] in preorder; for internal [v]
    this is its index among internal nodes. *)

val subtree_end : t -> int -> int
(** [subtree_end t v] is one past the last preorder position of the
    subtree rooted at [v]. *)

val space_bits : t -> int

val pp : Format.formatter -> t -> unit
