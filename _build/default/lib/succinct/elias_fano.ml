module Bitbuf = Wt_bits.Bitbuf
module Broadword = Wt_bits.Broadword
module Plain = Wt_bitvector.Plain

type t = {
  k : int; (* number of values *)
  u : int; (* universe upper bound *)
  low_bits : int; (* width of the explicit low part *)
  lows : Bitbuf.t;
  highs : Plain.t; (* value i contributes a 1 at (v_i >> low_bits) + i *)
}

let length t = t.k
let universe t = t.u

let of_array ~universe values =
  if universe < 0 then invalid_arg "Elias_fano.of_array: negative universe";
  let k = Array.length values in
  let low_bits =
    if k = 0 || universe <= k then 0
    else Broadword.bit_width ((universe / k) - 1)
  in
  let lows = Bitbuf.create ~capacity_bits:(k * max low_bits 1) () in
  let high_len = (if k = 0 then 0 else (universe lsr low_bits) + k + 1) in
  let highs = Bitbuf.create ~capacity_bits:high_len () in
  Bitbuf.add_run highs false high_len;
  let prev = ref 0 in
  Array.iteri
    (fun i v ->
      if v < !prev then invalid_arg "Elias_fano.of_array: not monotone";
      if v > universe then invalid_arg "Elias_fano.of_array: value beyond universe";
      prev := v;
      if low_bits > 0 then Bitbuf.add_bits lows low_bits (v land Broadword.mask low_bits);
      Bitbuf.set highs ((v lsr low_bits) + i) true)
    values;
  { k; u = universe; low_bits; lows; highs = Plain.of_bitbuf highs }

let get t i =
  if i < 0 || i >= t.k then invalid_arg "Elias_fano.get: out of bounds";
  let high = Plain.select t.highs true i - i in
  if t.low_bits = 0 then high
  else (high lsl t.low_bits) lor Bitbuf.get_bits t.lows (i * t.low_bits) t.low_bits

let rank_le t x =
  if t.k = 0 || x < 0 then 0
  else if x >= t.u then t.k
  else begin
    (* Values with high part < xh are all <= x; those with high part > xh
       all exceed x; binary-search the low parts of the xh group.  The ones
       of group h lie strictly between the (h-1)-th and h-th zeros of the
       high bitvector, so select0 delimits groups. *)
    let xh = x lsr t.low_bits in
    let boundary = Plain.select t.highs false xh in
    let upto = Plain.rank t.highs true boundary in
    let start =
      if xh = 0 then 0
      else Plain.rank t.highs true (Plain.select t.highs false (xh - 1))
    in
    let xl = if t.low_bits = 0 then 0 else x land Broadword.mask t.low_bits in
    let lo = ref start and hi = ref upto in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let vl =
        if t.low_bits = 0 then 0
        else Bitbuf.get_bits t.lows (mid * t.low_bits) t.low_bits
      in
      if vl <= xl then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let predecessor t x =
  let r = rank_le t x in
  if r = 0 then None else Some (r - 1, get t (r - 1))

let space_bits t =
  Bitbuf.length t.lows + Plain.space_bits t.highs + (5 * 64)

let pp fmt t =
  Format.fprintf fmt "@[<h>[";
  for i = 0 to t.k - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Format.fprintf fmt "%d" (get t i)
  done;
  Format.fprintf fmt "]@]"
