(** Uncompressed static bitvector with O(1) rank and O(log n) select.

    The bit data is stored verbatim; a two-level rank directory in the
    style of rank9 adds ~14% overhead: absolute cumulative counts every
    448 bits plus seven 9-bit relative subcounts packed into one word per
    superblock.  Select binary-searches the directory.

    Used as the baseline FID, inside Wavelet Trees, and as the building
    block of succinct tree shapes. *)

type t

include Fid.STATIC with type t := t

val of_bitbuf : Wt_bits.Bitbuf.t -> t
(** Build from a bit buffer (the bits are copied). *)

val of_string : string -> t
(** Build from an ASCII ["0101..."] description. *)

val zeros : t -> int

val get_bits : t -> int -> int -> int
(** Direct multi-bit read of the underlying data, as {!Wt_bits.Bitbuf.get_bits}. *)

val to_bitbuf : t -> Wt_bits.Bitbuf.t
(** A copy of the underlying bits. *)

val pp : Format.formatter -> t -> unit
