(** Fully-dynamic RLE+γ bitvector (Section 4.2 of the paper, Theorem 4.9).

    Runs are γ-coded inside the leaves of a balanced chunk tree
    ({!Chunk_tree}).  All of [access], [rank], [select], [insert],
    [delete] run in O(log n); crucially [init b n] builds a constant
    bitvector in O(log n) time, the property (Remark 4.2) that makes this
    encoding suitable for Wavelet Trie node splits.  Space is
    O(n H0 + log n) bits. *)

include Chunk_tree.S
