module Bitbuf = Wt_bits.Bitbuf
module Broadword = Wt_bits.Broadword

(* Geometry: words of 56 bits (so any word fits a single Bitbuf.get_bits
   call), superblocks of 8 words = 448 bits.  Per superblock we store the
   absolute cumulative ones count (l1) and, packed into one int, the seven
   9-bit cumulative subcounts for words 1..7 (l2). *)

let word_bits = 56
let sb_words = 8
let sb_bits = word_bits * sb_words

type t = {
  data : Bitbuf.t;
  len : int;
  ones : int;
  l1 : int array; (* cumulative ones before each superblock; length nsb + 1 *)
  l2 : int array; (* packed subcounts per superblock; length nsb *)
}

let length t = t.len
let ones t = t.ones
let zeros t = t.len - t.ones

let word_pop data pos len =
  if len = 0 then 0 else Broadword.popcount (Bitbuf.get_bits data pos len)

let of_bitbuf buf =
  let data = Bitbuf.copy buf in
  let len = Bitbuf.length data in
  let nsb = (len + sb_bits - 1) / sb_bits in
  let l1 = Array.make (nsb + 1) 0 in
  let l2 = Array.make (max nsb 1) 0 in
  let total = ref 0 in
  for sb = 0 to nsb - 1 do
    l1.(sb) <- !total;
    let base = sb * sb_bits in
    let packed = ref 0 in
    let within = ref 0 in
    for w = 0 to sb_words - 1 do
      if w > 0 then packed := !packed lor (!within lsl (9 * (w - 1)));
      let wpos = base + (w * word_bits) in
      let wlen = min word_bits (len - wpos) in
      if wlen > 0 then within := !within + word_pop data wpos wlen
    done;
    l2.(sb) <- !packed;
    total := !total + !within
  done;
  l1.(nsb) <- !total;
  { data; len; ones = !total; l1; l2 }

let of_string s = of_bitbuf (Bitbuf.of_string s)
let to_bitbuf t = Bitbuf.copy t.data

let access t pos =
  Fid.check_access_pos ~who:"Plain" ~len:t.len pos;
  Bitbuf.get t.data pos

let get_bits t pos len = Bitbuf.get_bits t.data pos len

let rank1 t pos =
  let sb = pos / sb_bits in
  let rem = pos mod sb_bits in
  let w = rem / word_bits in
  let r = rem mod word_bits in
  let sub = if w = 0 then 0 else (t.l2.(sb) lsr (9 * (w - 1))) land 511 in
  t.l1.(sb) + sub + word_pop t.data (pos - r) r

let rank t b pos =
  Fid.check_rank_pos ~who:"Plain" ~len:t.len pos;
  if b then rank1 t pos else pos - rank1 t pos

(* Binary search for the superblock whose cumulative count of [b] first
   exceeds [k], then scan words. *)
let select t b k =
  let count = if b then t.ones else zeros t in
  Fid.check_select_idx ~who:"Plain" ~count k;
  let nsb = Array.length t.l1 - 1 in
  let count_before sb = if b then t.l1.(sb) else (sb * sb_bits) - t.l1.(sb) in
  (* Invariant: count_before lo <= k < count_before hi (hi exclusive end). *)
  let lo = ref 0 and hi = ref nsb in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if count_before mid <= k then lo := mid else hi := mid
  done;
  let sb = !lo in
  let base = sb * sb_bits in
  let remaining = ref (k - count_before sb) in
  let w = ref 0 in
  let word_count w =
    let wpos = base + (w * word_bits) in
    let wlen = min word_bits (t.len - wpos) in
    if wlen <= 0 then 0
    else
      let p = word_pop t.data wpos wlen in
      if b then p else wlen - p
  in
  let c = ref (word_count 0) in
  while !remaining >= !c do
    remaining := !remaining - !c;
    incr w;
    c := word_count !w
  done;
  let wpos = base + (!w * word_bits) in
  let wlen = min word_bits (t.len - wpos) in
  let bits = Bitbuf.get_bits t.data wpos wlen in
  let inword =
    if b then Broadword.select_in_word bits !remaining
    else Broadword.select0_in_word bits wlen !remaining
  in
  wpos + inword

let space_bits t =
  t.len + (64 * (Array.length t.l1 + Array.length t.l2 + 3))

let pp fmt t =
  Format.fprintf fmt "%s" (Bitbuf.to_string t.data)
