(** Module types for Fully Indexable Dictionaries (bitvectors with
    rank/select), in the terminology of Raman–Raman–Rao [22].

    Conventions used across the whole library:
    - positions are 0-based;
    - [rank t b pos] counts occurrences of bit [b] in positions [0, pos)
      — so [rank t b 0 = 0] and [rank t b (length t)] is the total count;
    - [select t b k] is the position of the [k]-th occurrence of [b],
      counting from [k = 0]; it raises [Invalid_argument] when fewer than
      [k + 1] occurrences exist. *)

module type STATIC = sig
  type t

  val length : t -> int
  (** Number of bits. *)

  val ones : t -> int
  (** Number of set bits. *)

  val access : t -> int -> bool
  (** [access t pos] is the bit at [pos].  O(1) (amortized for compressed
      representations). *)

  val rank : t -> bool -> int -> int
  (** [rank t b pos] counts occurrences of [b] in [0, pos). *)

  val select : t -> bool -> int -> int
  (** [select t b k] is the position of the [k]-th occurrence of [b]. *)

  val space_bits : t -> int
  (** Total space of the encoding, including all directories, in bits.
      Used by the space experiments. *)
end

module type APPENDABLE = sig
  include STATIC

  val append : t -> bool -> unit
  (** Append a bit at position [length t]. *)
end

module type DYNAMIC = sig
  include STATIC

  val insert : t -> int -> bool -> unit
  (** [insert t pos b] inserts [b] immediately before position [pos]
      ([0 <= pos <= length t]). *)

  val delete : t -> int -> unit
  (** [delete t pos] removes the bit at [pos]. *)
end

(* Shared argument-checking helpers for implementations. *)

let check_rank_pos ~who ~len pos =
  if pos < 0 || pos > len then
    invalid_arg (Printf.sprintf "%s.rank: position %d out of [0, %d]" who pos len)

let check_access_pos ~who ~len pos =
  if pos < 0 || pos >= len then
    invalid_arg (Printf.sprintf "%s.access: position %d out of [0, %d)" who pos len)

let check_select_idx ~who ~count k =
  if k < 0 || k >= count then
    invalid_arg (Printf.sprintf "%s.select: index %d out of [0, %d)" who k count)
