module Bitbuf = Wt_bits.Bitbuf
module Rle = Wt_bits.Rle
module Elias = Wt_bits.Elias
module Bit_io = Wt_bits.Bit_io

(* Gap encoding: one δ code per 1 bit, holding (preceding zeros + 1).
   Trailing zeros are implied by the [total]/[ones] metadata the chunk
   tree keeps per leaf. *)
module Codec = struct
  let name = "Dyn_gap"

  let encode (runs : Rle.runs) =
    let w = Bit_io.Writer.create () in
    let gap = ref 0 in
    Array.iteri
      (fun i len ->
        let bit = if i land 1 = 0 then runs.first_bit else not runs.first_bit in
        if not bit then gap := !gap + len
        else
          for _ = 1 to len do
            Elias.write_delta w (!gap + 1);
            gap := 0
          done)
      runs.lengths;
    Bit_io.Writer.buffer w

  let decode ~total ~ones buf =
    if total = 0 then { Rle.first_bit = false; lengths = [||] }
    else begin
      let r = Bit_io.Reader.create buf in
      let lengths = ref [] in
      let covered = ref 0 in
      let pending_ones = ref 0 in
      for _ = 1 to ones do
        let gap = Elias.read_delta r - 1 in
        if gap = 0 then incr pending_ones
        else begin
          if !pending_ones > 0 then begin
            lengths := !pending_ones :: !lengths;
            covered := !covered + !pending_ones
          end;
          lengths := gap :: !lengths;
          covered := !covered + gap;
          pending_ones := 1
        end
      done;
      if !pending_ones > 0 then begin
        lengths := !pending_ones :: !lengths;
        covered := !covered + !pending_ones
      end;
      let trailing = total - !covered in
      if trailing < 0 then invalid_arg "Dyn_gap.decode: inconsistent stream";
      if trailing > 0 then lengths := trailing :: !lengths;
      let lengths = Array.of_list (List.rev !lengths) in
      let first_bit =
        if Array.length lengths = 0 then false
        else if ones = 0 then false
        else
          (* The first run is a 1 run iff the first gap was 0. *)
          Bitbuf.length buf > 0
          &&
          let r0 = Bit_io.Reader.create buf in
          Elias.read_delta r0 = 1
      in
      { Rle.first_bit; lengths }
    end

  (* Lazy run reader.  δ codes each carry (gap zeros, then one 1); ones
     with gap 0 extend the current 1-run; trailing zeros are implied by
     [total]. *)
  let reader ~total ~ones buf =
    let r = Bit_io.Reader.create buf in
    let ones_left = ref ones in
    let covered = ref 0 in
    let pending_ones = ref 0 in
    let queued_zeros = ref 0 in
    let emit (b, len) =
      covered := !covered + len;
      (b, len)
    in
    fun () ->
      if !queued_zeros > 0 then begin
        let z = !queued_zeros in
        queued_zeros := 0;
        pending_ones := 1;
        emit (false, z)
      end
      else begin
        let rec grow () =
          if !ones_left = 0 then
            if !pending_ones > 0 then begin
              let o = !pending_ones in
              pending_ones := 0;
              emit (true, o)
            end
            else emit (false, total - !covered)
          else begin
            let gap = Elias.read_delta r - 1 in
            decr ones_left;
            if gap = 0 then begin
              incr pending_ones;
              grow ()
            end
            else if !pending_ones > 0 then begin
              queued_zeros := gap;
              let o = !pending_ones in
              pending_ones := 0;
              emit (true, o)
            end
            else begin
              pending_ones := 1;
              emit (false, gap)
            end
          end
        in
        grow ()
      end

  let encoded_length (runs : Rle.runs) =
    let acc = ref 0 in
    let gap = ref 0 in
    Array.iteri
      (fun i len ->
        let bit = if i land 1 = 0 then runs.first_bit else not runs.first_bit in
        if not bit then gap := !gap + len
        else begin
          acc := !acc + Elias.delta_length (!gap + 1) + (len - 1) * Elias.delta_length 1;
          gap := 0
        end)
      runs.lengths;
    !acc
end

include Chunk_tree.Make (Codec)
