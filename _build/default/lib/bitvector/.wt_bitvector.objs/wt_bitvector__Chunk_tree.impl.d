lib/bitvector/chunk_tree.ml: Array Fid Format Wt_bits
