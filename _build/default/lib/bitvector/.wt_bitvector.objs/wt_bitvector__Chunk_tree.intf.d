lib/bitvector/chunk_tree.mli: Fid Wt_bits
