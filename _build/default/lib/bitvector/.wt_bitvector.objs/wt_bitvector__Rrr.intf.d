lib/bitvector/rrr.mli: Fid Format Wt_bits
