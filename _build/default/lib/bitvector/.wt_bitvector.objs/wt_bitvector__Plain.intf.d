lib/bitvector/plain.mli: Fid Format Wt_bits
