lib/bitvector/appendable.ml: Array Fid Format Rrr Wt_bits
