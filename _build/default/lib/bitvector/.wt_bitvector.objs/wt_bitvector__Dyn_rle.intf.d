lib/bitvector/dyn_rle.mli: Chunk_tree
