lib/bitvector/dyn_gap.mli: Chunk_tree
