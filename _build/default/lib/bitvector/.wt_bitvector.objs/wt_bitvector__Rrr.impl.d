lib/bitvector/rrr.ml: Array Fid Format Wt_bits
