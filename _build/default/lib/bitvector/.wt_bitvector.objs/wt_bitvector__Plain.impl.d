lib/bitvector/plain.ml: Array Fid Format Wt_bits
