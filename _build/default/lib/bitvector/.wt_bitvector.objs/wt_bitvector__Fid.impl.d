lib/bitvector/fid.ml: Printf
