lib/bitvector/dyn_gap.ml: Array Chunk_tree List Wt_bits
