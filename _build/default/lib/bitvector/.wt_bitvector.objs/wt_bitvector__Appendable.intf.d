lib/bitvector/appendable.mli: Fid Wt_bits
