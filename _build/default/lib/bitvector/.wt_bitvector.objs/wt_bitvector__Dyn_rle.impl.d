lib/bitvector/dyn_rle.ml: Chunk_tree Wt_bits
