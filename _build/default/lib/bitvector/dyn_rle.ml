module Bit_io = Wt_bits.Bit_io
module Elias = Wt_bits.Elias

module Codec = struct
  let name = "Dyn_rle"
  let encode = Wt_bits.Rle.encode
  let decode ~total ~ones:_ buf = Wt_bits.Rle.decode ~total buf

  let reader ~total ~ones:_ buf =
    if total = 0 then fun () -> invalid_arg "Dyn_rle.reader: empty"
    else begin
      let r = Bit_io.Reader.create buf in
      let first = Bit_io.Reader.bit r in
      let cur = ref (not first) in
      fun () ->
        cur := not !cur;
        (!cur, Elias.read_gamma r)
    end

  let encoded_length = Wt_bits.Rle.encoded_length
end

include Chunk_tree.Make (Codec)
