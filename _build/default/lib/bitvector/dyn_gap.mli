(** Fully-dynamic gap+δ bitvector — the Mäkinen–Navarro [18] encoding the
    paper starts from in Section 4.2.

    The positions of 1 bits are represented by δ-coded gaps inside the
    leaves of a balanced chunk tree.  [access]/[rank]/[select]/[insert]/
    [delete] run in O(log n) like {!Dyn_rle}, but a constant bitvector
    [1^n] has a Θ(n)-bit encoding, so [init true n] is Θ(n): this module
    exists to demonstrate Remark 4.2 (see the [ablation/init] bench). *)

include Chunk_tree.S
