(* End-to-end soak: a long randomized session mixing every operation the
   library offers against the Naive oracle, on a workload resembling the
   paper's motivation (skewed URL log with a growing alphabet).  Catches
   interaction bugs that per-module tests cannot. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Naive = Wt_core.Indexed_sequence.Naive
module Dynamic_wt = Wt_core.Dynamic_wt
module Append_wt = Wt_core.Append_wt
module Range = Wt_core.Range
module Urls = Wt_workload.Urls

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_dynamic_soak () =
  let rng = Xoshiro.create 31337 in
  let gen = Urls.create ~seed:31337 ~hosts:12 ~paths_per_host:10 () in
  let oracle = Naive.create () in
  let wt = Dynamic_wt.create () in
  let fresh = ref 0 in
  for step = 1 to 12_000 do
    let n = Naive.length oracle in
    (match Xoshiro.int rng 20 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
        (* insert a (possibly repeated) log line at a random position *)
        let s = Urls.next_encoded gen in
        let pos = Xoshiro.int rng (n + 1) in
        Naive.insert oracle pos s;
        Dynamic_wt.insert wt pos s
    | 7 | 8 | 9 ->
        (* append *)
        let s = Urls.next_encoded gen in
        Naive.append oracle s;
        Dynamic_wt.append wt s
    | 10 | 11 ->
        (* brand-new string: alphabet grows *)
        incr fresh;
        let s = Binarize.of_bytes (Printf.sprintf "novel://%d" !fresh) in
        let pos = Xoshiro.int rng (n + 1) in
        Naive.insert oracle pos s;
        Dynamic_wt.insert wt pos s
    | 12 | 13 | 14 | 15 | 16 when n > 0 ->
        let pos = Xoshiro.int rng n in
        Naive.delete oracle pos;
        Dynamic_wt.delete wt pos
    | _ when n > 0 ->
        (* point query *)
        let pos = Xoshiro.int rng n in
        check_bool "access" true
          (Bitstring.equal (Naive.access oracle pos) (Dynamic_wt.access wt pos))
    | _ -> ());
    (* periodic deep checks *)
    if step mod 1500 = 0 then begin
      Dynamic_wt.check_invariants wt;
      let n = Naive.length oracle in
      check_int "length" n (Dynamic_wt.length wt);
      check_int "distinct" (Naive.distinct_count oracle) (Dynamic_wt.distinct_count wt);
      if n > 4 then begin
        let lo = Xoshiro.int rng (n / 2) in
        let hi = lo + Xoshiro.int rng (n - lo) in
        (* distinct in range agrees with a scan *)
        let tbl = Hashtbl.create 16 in
        for i = lo to hi - 1 do
          let w = Bitstring.to_string (Naive.access oracle i) in
          Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w))
        done;
        let got = Range.Dynamic.distinct wt ~lo ~hi in
        check_int "range distinct count" (Hashtbl.length tbl) (List.length got);
        List.iter
          (fun (s, c) ->
            check_int "range count" (Option.value ~default:(-1)
              (Hashtbl.find_opt tbl (Bitstring.to_string s))) c)
          got;
        (* top-1 equals max count *)
        (match Range.Dynamic.top_k wt ~lo ~hi 1 with
        | [ (_, c) ] ->
            let m = Hashtbl.fold (fun _ c m -> max c m) tbl 0 in
            check_int "top-1" m c
        | [] -> check_int "top-1 empty" 0 (hi - lo)
        | _ -> Alcotest.fail "top_k 1 returned several")
      end
    end
  done;
  Dynamic_wt.check_invariants wt

let test_append_soak () =
  (* long streaming session with periodic full verification *)
  let gen = Urls.create ~seed:555 ~hosts:20 () in
  let rng = Xoshiro.create 555 in
  let oracle = Naive.create () in
  let wt = Append_wt.create () in
  for step = 1 to 30_000 do
    let s = Urls.next_encoded gen in
    Naive.append oracle s;
    Append_wt.append wt s;
    if step mod 6000 = 0 then begin
      Append_wt.check_invariants wt;
      for _ = 1 to 100 do
        let pos = Xoshiro.int rng step in
        check_bool "access" true
          (Bitstring.equal (Naive.access oracle pos) (Append_wt.access wt pos));
        let s = Naive.access oracle (Xoshiro.int rng step) in
        check_int "rank" (Naive.rank oracle s pos) (Append_wt.rank wt s pos)
      done;
      (* per-host prefix counts agree with a scan *)
      for h = 0 to Urls.host_count gen - 1 do
        let p = Urls.host_prefix gen h in
        check_int
          (Printf.sprintf "host %d prefix count" h)
          (Naive.rank_prefix oracle p step)
          (Append_wt.rank_prefix wt p step)
      done
    end
  done

let () =
  Alcotest.run "wt_soak"
    [
      ( "soak",
        [
          Alcotest.test_case "dynamic 12k mixed ops" `Slow test_dynamic_soak;
          Alcotest.test_case "append-only 30k stream" `Slow test_append_soak;
        ] );
    ]
