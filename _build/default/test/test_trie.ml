(* Tests for wt_trie: dynamic Patricia trie against a reference set, and
   the static succinct trie against full enumeration. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Patricia = Wt_trie.Patricia
module Static_trie = Wt_trie.Static_trie
module Xoshiro = Wt_bits.Xoshiro

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bs = Bitstring.of_string

module StringSet = Set.Make (String)

(* Random byte strings; Binarize.of_bytes yields a prefix-free family. *)
let random_word rng =
  String.init (1 + Xoshiro.int rng 8) (fun _ ->
      Char.chr (Char.code 'a' + Xoshiro.int rng 4))

(* ------------------------------------------------------------------ *)
(* Patricia *)

let test_patricia_basic () =
  let t = Patricia.create () in
  check_bool "empty" true (Patricia.is_empty t);
  Alcotest.(check string) "insert 0100" "`Added"
    (match Patricia.insert t (bs "0100") with `Added -> "`Added" | _ -> "other");
  check_bool "mem" true (Patricia.mem t (bs "0100"));
  check_bool "not mem prefix" false (Patricia.mem t (bs "01"));
  check_bool "not mem other" false (Patricia.mem t (bs "0101"));
  ignore (Patricia.insert t (bs "0111"));
  ignore (Patricia.insert t (bs "0010"));
  check_int "size" 3 (Patricia.size t);
  Alcotest.(check string) "dup" "`Already_present"
    (match Patricia.insert t (bs "0111") with
    | `Already_present -> "`Already_present"
    | _ -> "other");
  check_int "size after dup" 3 (Patricia.size t);
  List.iter
    (fun s -> check_bool ("mem " ^ s) true (Patricia.mem t (bs s)))
    [ "0100"; "0111"; "0010" ];
  Alcotest.(check (list string))
    "sorted enumeration"
    [ "0010"; "0100"; "0111" ]
    (List.map Bitstring.to_string (Patricia.to_list t))

let test_patricia_prefix_violation () =
  let t = Patricia.create () in
  ignore (Patricia.insert t (bs "0100"));
  Alcotest.check_raises "proper prefix"
    (Invalid_argument "Patricia.insert: string is a proper prefix of a stored string")
    (fun () -> ignore (Patricia.insert t (bs "01")));
  Alcotest.check_raises "extension"
    (Invalid_argument "Patricia.insert: a stored string is a proper prefix of the string")
    (fun () -> ignore (Patricia.insert t (bs "01001")))

let test_patricia_random_vs_set () =
  let rng = Xoshiro.create 42 in
  let t = Patricia.create () in
  let reference = ref StringSet.empty in
  for _ = 1 to 3000 do
    let w = random_word rng in
    let s = Binarize.of_bytes w in
    if Xoshiro.int rng 3 = 0 then begin
      let expected = StringSet.mem w !reference in
      check_bool ("remove " ^ w) expected (Patricia.remove t s);
      reference := StringSet.remove w !reference
    end
    else begin
      let expected = if StringSet.mem w !reference then `Already_present else `Added in
      check_bool ("insert " ^ w) true (Patricia.insert t s = expected);
      reference := StringSet.add w !reference
    end;
    Patricia.check_invariants t
  done;
  check_int "final size" (StringSet.cardinal !reference) (Patricia.size t);
  (* membership agrees on all touched words *)
  StringSet.iter
    (fun w -> check_bool ("final mem " ^ w) true (Patricia.mem t (Binarize.of_bytes w)))
    !reference;
  (* enumeration matches the sorted reference *)
  let enumerated = List.map Binarize.to_bytes (Patricia.to_list t) in
  Alcotest.(check (list string)) "enumeration" (StringSet.elements !reference) enumerated

let test_patricia_prefix_queries () =
  let t = Patricia.create () in
  let words = [ "abc"; "abd"; "ab"; "b"; "ba"; "abcde" ] in
  List.iter (fun w -> ignore (Patricia.insert t (Binarize.of_bytes w))) words;
  (* Prefix of the *encoded* strings: encode a word without terminator by
     using the encoding of the word and dropping the final 0 bit. *)
  let enc_prefix w =
    let e = Binarize.of_bytes w in
    Bitstring.prefix e (Bitstring.length e - 1)
  in
  check_int "prefix ab" 4 (Patricia.count_prefix t (enc_prefix "ab"));
  check_int "prefix abc" 2 (Patricia.count_prefix t (enc_prefix "abc"));
  check_int "prefix b" 2 (Patricia.count_prefix t (enc_prefix "b"));
  check_int "prefix zzz" 0 (Patricia.count_prefix t (enc_prefix "zzz"));
  check_int "empty prefix counts all" 6 (Patricia.count_prefix t Bitstring.empty);
  let matches = ref [] in
  Patricia.iter_with_prefix
    (fun s -> matches := Binarize.to_bytes s :: !matches)
    t (enc_prefix "abc");
  Alcotest.(check (list string)) "iter prefix" [ "abc"; "abcde" ] (List.rev !matches)

let test_patricia_empty_prefix_and_empty_trie () =
  let t = Patricia.create () in
  check_int "empty trie prefix" 0 (Patricia.count_prefix t Bitstring.empty);
  ignore (Patricia.insert t (bs "01"));
  check_int "empty prefix = all" 1 (Patricia.count_prefix t Bitstring.empty);
  check_bool "remove on empty path" false (Patricia.remove t (bs "1"));
  check_bool "remove root" true (Patricia.remove t (bs "01"));
  check_bool "empty again" true (Patricia.is_empty t);
  check_int "label bits empty" 0 (Patricia.label_bits t);
  check_int "nodes empty" 0 (Patricia.node_count t)

let test_patricia_remove_merge () =
  let t = Patricia.create () in
  List.iter (fun s -> ignore (Patricia.insert t (bs s))) [ "000"; "001"; "011" ];
  check_int "3 strings, 5 nodes" 5 (Patricia.node_count t);
  check_bool "remove 001" true (Patricia.remove t (bs "001"));
  check_int "merge shrinks nodes" 3 (Patricia.node_count t);
  check_bool "000 survives" true (Patricia.mem t (bs "000"));
  check_bool "011 survives" true (Patricia.mem t (bs "011"));
  check_bool "001 gone" false (Patricia.mem t (bs "001"));
  check_bool "remove missing" false (Patricia.remove t (bs "001"));
  check_bool "remove 000" true (Patricia.remove t (bs "000"));
  check_bool "remove 011" true (Patricia.remove t (bs "011"));
  check_bool "empty again" true (Patricia.is_empty t)

let test_patricia_label_bits () =
  let t = Patricia.create () in
  ignore (Patricia.insert t (bs "0001"));
  check_int "single label" 4 (Patricia.label_bits t);
  ignore (Patricia.insert t (bs "0011"));
  (* root label "00", leaves "1" and "1" *)
  check_int "after split" 4 (Patricia.label_bits t)

(* ------------------------------------------------------------------ *)
(* Static trie *)

let test_static_small () =
  (* Figure 2's string set: {0001, 0011, 0100, 00100} *)
  let strings = Array.map bs [| "0001"; "0011"; "0100"; "00100" |] in
  let st = Static_trie.of_strings strings in
  check_int "leaves" 4 (Static_trie.leaf_count st);
  check_int "internal" 3 (Static_trie.internal_count st);
  check_int "nodes" 7 (Static_trie.node_count st);
  (* root label is the lcp "0" *)
  Alcotest.(check string) "root label" "0" (Bitstring.to_string (Static_trie.label st 0));
  Array.iter
    (fun s ->
      check_bool ("mem " ^ Bitstring.to_string s) true (Static_trie.mem st s))
    strings;
  check_bool "not mem" false (Static_trie.mem st (bs "0101"));
  check_bool "not mem prefix" false (Static_trie.mem st (bs "00"))

let test_static_random () =
  let rng = Xoshiro.create 55 in
  for _ = 1 to 15 do
    let words =
      List.init (1 + Xoshiro.int rng 200) (fun _ -> random_word rng)
      |> StringSet.of_list |> StringSet.elements
    in
    let strings = Array.of_list (List.map Binarize.of_bytes words) in
    let st = Static_trie.of_strings strings in
    check_int "leaf count" (Array.length strings) (Static_trie.leaf_count st);
    check_int "strict binary" (Array.length strings - 1) (Static_trie.internal_count st);
    (* every string is found, and its leaf reconstructs it *)
    Array.iter
      (fun s ->
        match Static_trie.find_path st s with
        | None -> Alcotest.fail "find_path failed"
        | Some path ->
            let leaf = List.nth path (List.length path - 1) in
            check_bool "leaf" true (Static_trie.is_leaf st leaf);
            check_bool "reconstruct" true
              (Bitstring.equal s (Static_trie.string_of_leaf st leaf)))
      strings;
    (* non-members are rejected *)
    for _ = 1 to 50 do
      let w = random_word rng in
      if not (List.mem w words) then
        check_bool ("notmem " ^ w) false (Static_trie.mem st (Binarize.of_bytes w))
    done;
    (* prefix_node finds subtrees covering word prefixes *)
    List.iter
      (fun w ->
        let p = Binarize.of_bytes w in
        let p = Bitstring.prefix p (Bitstring.length p - 1) in
        match Static_trie.prefix_node st p with
        | None -> Alcotest.fail ("prefix_node missed " ^ w)
        | Some (v, path) ->
            check_bool "path nonempty" true (List.length path > 0);
            check_bool "last is v" true (List.nth path (List.length path - 1) = v))
      words
  done

let test_static_duplicates_and_errors () =
  let st = Static_trie.of_strings (Array.map bs [| "01"; "01"; "10" |]) in
  check_int "dedup" 2 (Static_trie.leaf_count st);
  Alcotest.check_raises "empty" (Invalid_argument "Static_trie.of_strings: empty set")
    (fun () -> ignore (Static_trie.of_strings [||]));
  Alcotest.check_raises "prefix violation"
    (Invalid_argument "Static_trie.of_strings: set is not prefix-free") (fun () ->
      ignore (Static_trie.of_strings (Array.map bs [| "01"; "011" |])))

let test_static_single () =
  let st = Static_trie.of_strings [| bs "10110" |] in
  check_int "one node" 1 (Static_trie.node_count st);
  check_bool "mem" true (Static_trie.mem st (bs "10110"));
  check_bool "root leaf" true (Static_trie.is_leaf st 0);
  check_bool "reconstruct" true
    (Bitstring.equal (bs "10110") (Static_trie.string_of_leaf st 0))

let test_static_space_accounting () =
  let rng = Xoshiro.create 66 in
  let words =
    List.init 500 (fun _ -> random_word rng) |> StringSet.of_list |> StringSet.elements
  in
  let strings = Array.of_list (List.map Binarize.of_bytes words) in
  let st = Static_trie.of_strings strings in
  let lb = Static_trie.lower_bound_bits st in
  let measured = float_of_int (Static_trie.space_bits st) in
  check_bool
    (Printf.sprintf "space %.0f vs LT %.0f" measured lb)
    true
    (measured >= lb *. 0.9 && measured < (lb *. 3.) +. 10_000.)

let () =
  Alcotest.run "wt_trie"
    [
      ( "patricia",
        [
          Alcotest.test_case "basic" `Quick test_patricia_basic;
          Alcotest.test_case "prefix violations" `Quick test_patricia_prefix_violation;
          Alcotest.test_case "random vs set" `Quick test_patricia_random_vs_set;
          Alcotest.test_case "prefix queries" `Quick test_patricia_prefix_queries;
          Alcotest.test_case "empty prefix/trie" `Quick test_patricia_empty_prefix_and_empty_trie;
          Alcotest.test_case "remove merges" `Quick test_patricia_remove_merge;
          Alcotest.test_case "label bits" `Quick test_patricia_label_bits;
        ] );
      ( "static_trie",
        [
          Alcotest.test_case "figure-2 set" `Quick test_static_small;
          Alcotest.test_case "random sets" `Quick test_static_random;
          Alcotest.test_case "duplicates and errors" `Quick test_static_duplicates_and_errors;
          Alcotest.test_case "singleton" `Quick test_static_single;
          Alcotest.test_case "space vs LT bound" `Quick test_static_space_accounting;
        ] );
    ]
