(* Tests for wt_core: the static, append-only and fully-dynamic Wavelet
   Tries, validated against the Naive oracle and against the paper's
   worked examples (Figures 2 and 3). *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Naive = Wt_core.Indexed_sequence.Naive
module Wavelet_trie = Wt_core.Wavelet_trie
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bs = Bitstring.of_string

let fig2_seq =
  List.map bs [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ]

let fig2_dump =
  [
    ("0", Some "0010101");
    ("", Some "0111");
    ("1", None);
    ("", Some "100");
    ("0", None);
    ("", None);
    ("00", None);
  ]

(* ------------------------------------------------------------------ *)
(* Golden structure tests *)

let dump_testable =
  Alcotest.(list (pair string (option string)))

let test_figure2_static () =
  let wt = Wavelet_trie.of_list fig2_seq in
  Alcotest.check dump_testable "figure 2 structure" fig2_dump (Wavelet_trie.dump wt)

let test_figure2_append () =
  let wt = Append_wt.of_array (Array.of_list fig2_seq) in
  Alcotest.check dump_testable "figure 2 structure" fig2_dump (Append_wt.dump wt)

let test_figure2_dynamic () =
  let wt = Dynamic_wt.of_array (Array.of_list fig2_seq) in
  Alcotest.check dump_testable "figure 2 structure" fig2_dump (Dynamic_wt.dump wt)

(* Figure 3: inserting a new string splits a node; the new internal node
   gets a constant bitvector (plus the new string's bit).  We insert 0110
   at position 3 into the Figure 2 sequence: its path diverges inside the
   leaf α=00 reached by 0·1 (i.e. the stored string 0100). *)
let test_figure3_split () =
  let wt = Dynamic_wt.of_array (Array.of_list fig2_seq) in
  Dynamic_wt.insert wt 3 (bs "0110");
  (* The 1-child of the root was the leaf α=00 holding the three
     occurrences of 0100 at sequence positions 2, 4, 6.  Inserting 0110 at
     position 3 reaches that subtree at local position 1, so the split
     node's bitvector is 0 1 0 0: Init(0, cnt=1) then insert 1, then the
     remaining occurrences... the bitvector discriminates 0100 (bit 0)
     from 0110 (bit 1) in subtree order. *)
  let expected =
    [
      ("0", Some "00110101");
      ("", Some "0111");
      ("1", None);
      ("", Some "100");
      ("0", None);
      ("", None);
      ("", Some "0100");
      ("0", None);
      ("0", None);
    ]
  in
  Alcotest.check dump_testable "figure 3 structure" expected (Dynamic_wt.dump wt);
  Dynamic_wt.check_invariants wt;
  (* and deleting it merges the node back *)
  (match Dynamic_wt.select wt (bs "0110") 0 with
  | None -> Alcotest.fail "inserted string not found"
  | Some pos ->
      check_int "inserted at 3" 3 pos;
      Dynamic_wt.delete wt pos);
  Alcotest.check dump_testable "merged back to figure 2" fig2_dump (Dynamic_wt.dump wt);
  Dynamic_wt.check_invariants wt

(* ------------------------------------------------------------------ *)
(* Oracle-based agreement *)

(* A pool of binarized words plus some raw fixed-width strings. *)
let word_pool rng n_words =
  Array.init n_words (fun _ ->
      let w =
        String.init (1 + Xoshiro.int rng 6) (fun _ ->
            Char.chr (Char.code 'a' + Xoshiro.int rng 3))
      in
      Binarize.of_bytes w)

let random_sequence rng pool n = Array.init n (fun _ -> pool.(Xoshiro.int rng (Array.length pool)))

(* Check full agreement between an implementation and the oracle. *)
let agree (type a) (module I : Wt_core.Indexed_sequence.S with type t = a) (wt : a)
    (oracle : Naive.t) rng ~queries =
  let n = Naive.length oracle in
  check_int "length" n (I.length wt);
  check_int "distinct" (Naive.distinct_count oracle) (I.distinct_count wt);
  let some_string () =
    if n > 0 && Xoshiro.bool rng then Naive.access oracle (Xoshiro.int rng n)
    else
      (* a string unlikely to be present *)
      Binarize.of_bytes
        (String.init 3 (fun _ -> Char.chr (Char.code 'a' + Xoshiro.int rng 5)))
  in
  for _ = 1 to queries do
    if n > 0 then begin
      let pos = Xoshiro.int rng n in
      check_bool "access" true
        (Bitstring.equal (Naive.access oracle pos) (I.access wt pos))
    end;
    let s = some_string () in
    let pos = Xoshiro.int rng (n + 1) in
    check_int "rank" (Naive.rank oracle s pos) (I.rank wt s pos);
    let idx = Xoshiro.int rng (max 1 (n / 2)) in
    Alcotest.(check (option int)) "select" (Naive.select oracle s idx) (I.select wt s idx);
    (* prefix ops on bit-prefixes of present strings *)
    let p =
      let s = some_string () in
      Bitstring.prefix s (Xoshiro.int rng (Bitstring.length s + 1))
    in
    check_int "rank_prefix" (Naive.rank_prefix oracle p pos) (I.rank_prefix wt p pos);
    Alcotest.(check (option int))
      "select_prefix"
      (Naive.select_prefix oracle p idx)
      (I.select_prefix wt p idx)
  done

let test_static_oracle () =
  let rng = Xoshiro.create 1001 in
  List.iter
    (fun (n_words, n) ->
      let pool = word_pool rng n_words in
      let seq = random_sequence rng pool n in
      let oracle = Naive.of_array seq in
      let wt = Wavelet_trie.of_array seq in
      agree (module Wavelet_trie) wt oracle rng ~queries:150;
      (* full decode *)
      let decoded = Wavelet_trie.to_array wt in
      Array.iteri
        (fun i s -> check_bool "to_array" true (Bitstring.equal s decoded.(i)))
        seq)
    [ (1, 1); (1, 50); (5, 100); (40, 500); (200, 1000) ]

let test_static_empty () =
  let wt = Wavelet_trie.of_array [||] in
  check_int "empty length" 0 (Wavelet_trie.length wt);
  check_int "empty distinct" 0 (Wavelet_trie.distinct_count wt);
  check_int "rank on empty" 0 (Wavelet_trie.rank wt (bs "01") 0);
  Alcotest.(check (option int)) "select on empty" None (Wavelet_trie.select wt (bs "01") 0)

let test_append_oracle () =
  let rng = Xoshiro.create 2002 in
  let pool = word_pool rng 60 in
  let oracle = Naive.create () in
  let wt = Append_wt.create () in
  for i = 1 to 1200 do
    let s = pool.(Xoshiro.int rng (Array.length pool)) in
    Naive.append oracle s;
    Append_wt.append wt s;
    if i mod 200 = 0 then begin
      Append_wt.check_invariants wt;
      agree (module Append_wt) wt oracle rng ~queries:60
    end
  done;
  Append_wt.check_invariants wt

let test_dynamic_oracle () =
  let rng = Xoshiro.create 3003 in
  let pool = word_pool rng 40 in
  let oracle = Naive.create () in
  let wt = Dynamic_wt.create () in
  for step = 1 to 2500 do
    let n = Naive.length oracle in
    let c = Xoshiro.int rng 10 in
    if c < 5 || n = 0 then begin
      let s = pool.(Xoshiro.int rng (Array.length pool)) in
      let pos = Xoshiro.int rng (n + 1) in
      Naive.insert oracle pos s;
      Dynamic_wt.insert wt pos s
    end
    else if c < 8 then begin
      let pos = Xoshiro.int rng n in
      Naive.delete oracle pos;
      Dynamic_wt.delete wt pos
    end
    else begin
      let s = pool.(Xoshiro.int rng (Array.length pool)) in
      Naive.append oracle s;
      Dynamic_wt.append wt s
    end;
    if step mod 250 = 0 then begin
      Dynamic_wt.check_invariants wt;
      agree (module Dynamic_wt) wt oracle rng ~queries:50
    end
  done

let test_dynamic_alphabet_lifecycle () =
  (* Insert fresh strings (growing the alphabet), then delete every
     occurrence (shrinking it back), checking distinct_count and structure
     at each stage. *)
  let rng = Xoshiro.create 4004 in
  let wt = Dynamic_wt.create () in
  let words = Array.init 120 (fun i -> Binarize.of_bytes (Printf.sprintf "w%03d" i)) in
  Array.iteri
    (fun i w ->
      Dynamic_wt.insert wt (Xoshiro.int rng (Dynamic_wt.length wt + 1)) w;
      check_int "distinct grows" (i + 1) (Dynamic_wt.distinct_count wt))
    words;
  Dynamic_wt.check_invariants wt;
  (* duplicate a few *)
  for _ = 1 to 200 do
    let w = words.(Xoshiro.int rng 120) in
    Dynamic_wt.insert wt (Xoshiro.int rng (Dynamic_wt.length wt + 1)) w
  done;
  check_int "distinct stable" 120 (Dynamic_wt.distinct_count wt);
  Dynamic_wt.check_invariants wt;
  (* delete everything *)
  while Dynamic_wt.length wt > 0 do
    Dynamic_wt.delete wt (Xoshiro.int rng (Dynamic_wt.length wt))
  done;
  check_int "alphabet emptied" 0 (Dynamic_wt.distinct_count wt);
  Dynamic_wt.check_invariants wt

let test_variants_agree () =
  (* The three variants built from the same sequence have identical
     structure dumps. *)
  let rng = Xoshiro.create 5005 in
  let pool = word_pool rng 30 in
  let seq = random_sequence rng pool 400 in
  let s = Wavelet_trie.of_array seq in
  let a = Append_wt.of_array seq in
  let d = Dynamic_wt.of_array seq in
  Alcotest.check dump_testable "static = append" (Wavelet_trie.dump s) (Append_wt.dump a);
  Alcotest.check dump_testable "static = dynamic" (Wavelet_trie.dump s) (Dynamic_wt.dump d)

let test_prefix_free_violations () =
  let wt = Dynamic_wt.create () in
  Dynamic_wt.append wt (bs "0100");
  Alcotest.check_raises "proper prefix"
    (Invalid_argument "Dynamic_wt.insert: string is a proper prefix of a stored string")
    (fun () -> Dynamic_wt.append wt (bs "01"));
  Alcotest.check_raises "extension"
    (Invalid_argument "Dynamic_wt.insert: a stored string is a proper prefix of the string")
    (fun () -> Dynamic_wt.append wt (bs "01001"));
  let awt = Append_wt.create () in
  Append_wt.append awt (bs "0100");
  Alcotest.check_raises "append-only proper prefix"
    (Invalid_argument "Append_wt.append: string is a proper prefix of a stored string")
    (fun () -> Append_wt.append awt (bs "01"));
  Alcotest.check_raises "static violation"
    (Invalid_argument "Wavelet_trie.of_array: string set is not prefix-free") (fun () ->
      ignore (Wavelet_trie.of_array [| bs "01"; bs "011" |]))

(* ------------------------------------------------------------------ *)
(* Space accounting *)

let test_stats_bounds () =
  let rng = Xoshiro.create 6006 in
  let pool = word_pool rng 50 in
  let seq = random_sequence rng pool 3000 in
  let check_stats name (st : Wt_core.Stats.t) =
    check_int (name ^ " n") 3000 st.n;
    check_bool (name ^ " distinct") true (st.distinct <= 50 && st.distinct > 0);
    (* Lemma 3.5: H0(S) <= h~ <= max string length *)
    let h0_per = st.seq_h0_bits /. float_of_int st.n in
    check_bool
      (Printf.sprintf "%s H0 %.2f <= h~ %.2f" name h0_per st.avg_height)
      true
      (h0_per <= st.avg_height +. 1e-9);
    check_bool (name ^ " h~ bounded by max len") true (st.avg_height <= 64.);
    (* measured total is within a small constant of the lower bound *)
    let lb = Wt_core.Stats.lower_bound st in
    check_bool
      (Printf.sprintf "%s total %d vs LB %.0f" name st.total_bits lb)
      true
      (float_of_int st.total_bits >= lb *. 0.5
      && float_of_int st.total_bits <= (8. *. lb) +. 200_000.)
  in
  check_stats "static" (Wavelet_trie.stats (Wavelet_trie.of_array seq));
  check_stats "append" (Append_wt.stats (Append_wt.of_array seq));
  check_stats "dynamic" (Dynamic_wt.stats (Dynamic_wt.of_array seq))

let test_static_more_compact_than_naive () =
  let rng = Xoshiro.create 7007 in
  (* highly repetitive sequence: few distinct long strings *)
  let pool =
    Array.init 8 (fun i -> Binarize.of_bytes (Printf.sprintf "/var/log/service-%d/access.log" i))
  in
  let seq = random_sequence rng pool 20_000 in
  let naive = Naive.of_array seq in
  let wt = Wavelet_trie.of_array seq in
  check_bool
    (Printf.sprintf "wt %d bits < 20%% of naive %d bits" (Wavelet_trie.space_bits wt)
       (Naive.space_bits naive))
    true
    (Wavelet_trie.space_bits wt * 5 < Naive.space_bits naive)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let qcheck_tests =
  let open QCheck in
  let word_gen = Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 1 4)) in
  let seq_gen = Gen.(list_size (int_range 0 80) word_gen) in
  [
    Test.make ~name:"static: rank(s, select(s,k)) = k" ~count:100 (make seq_gen)
      (fun words ->
        let seq = Array.of_list (List.map Binarize.of_bytes words) in
        let wt = Wavelet_trie.of_array seq in
        let ok = ref true in
        Array.iter
          (fun s ->
            let total = Wavelet_trie.rank wt s (Array.length seq) in
            for k = 0 to total - 1 do
              match Wavelet_trie.select wt s k with
              | None -> ok := false
              | Some pos ->
                  if Wavelet_trie.rank wt s pos <> k then ok := false;
                  if not (Bitstring.equal (Wavelet_trie.access wt pos) s) then ok := false
            done)
          seq;
        !ok);
    Test.make ~name:"dynamic insert/delete roundtrip" ~count:100
      (pair (make seq_gen) (make word_gen))
      (fun (words, w) ->
        assume (words <> []);
        let seq = Array.of_list (List.map Binarize.of_bytes words) in
        let wt = Dynamic_wt.of_array seq in
        let before = Dynamic_wt.dump wt in
        let pos = Array.length seq / 2 in
        Dynamic_wt.insert wt pos (Binarize.of_bytes w);
        Dynamic_wt.delete wt pos;
        Dynamic_wt.check_invariants wt;
        Dynamic_wt.dump wt = before);
    Test.make ~name:"rank_prefix of empty prefix = pos" ~count:100 (make seq_gen)
      (fun words ->
        let seq = Array.of_list (List.map Binarize.of_bytes words) in
        let wt = Wavelet_trie.of_array seq in
        let n = Array.length seq in
        List.for_all
          (fun pos -> Wavelet_trie.rank_prefix wt Bitstring.empty pos = pos)
          [ 0; n / 2; n ]);
  ]

let () =
  Alcotest.run "wt_core"
    [
      ( "golden",
        [
          Alcotest.test_case "figure 2 static" `Quick test_figure2_static;
          Alcotest.test_case "figure 2 append-only" `Quick test_figure2_append;
          Alcotest.test_case "figure 2 dynamic" `Quick test_figure2_dynamic;
          Alcotest.test_case "figure 3 split/merge" `Quick test_figure3_split;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "static vs naive" `Quick test_static_oracle;
          Alcotest.test_case "static empty" `Quick test_static_empty;
          Alcotest.test_case "append-only vs naive" `Quick test_append_oracle;
          Alcotest.test_case "dynamic vs naive" `Quick test_dynamic_oracle;
          Alcotest.test_case "dynamic alphabet lifecycle" `Quick test_dynamic_alphabet_lifecycle;
          Alcotest.test_case "variants agree" `Quick test_variants_agree;
          Alcotest.test_case "prefix-free violations" `Quick test_prefix_free_violations;
        ] );
      ( "space",
        [
          Alcotest.test_case "stats bounds" `Quick test_stats_bounds;
          Alcotest.test_case "compresses repetitive data" `Quick test_static_more_compact_than_naive;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
