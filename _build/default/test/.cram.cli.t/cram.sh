  $ cat > log.txt <<STOP
  > site.com/home
  > site.com/login
  > blog.net/post
  > site.com/home
  > shop.org/cart
  > site.com/home
  > STOP
  $ wtrie access log.txt 2
  $ wtrie rank log.txt site.com/home
  $ wtrie rank log.txt site.com/home --hi 3
  $ wtrie select log.txt site.com/home 1
  $ wtrie select log.txt nope 0
  $ wtrie prefix-count log.txt site.com/
  $ wtrie prefix-list log.txt site.com/ --limit 2
  $ wtrie distinct log.txt
  $ wtrie majority log.txt --lo 3 --hi 6
  $ wtrie at-least log.txt 3
  $ wtrie top-k log.txt 2
  $ wtrie quantile log.txt 0
  $ wtrie quantile log.txt 5
  $ wtrie index log.txt log.wtx
  $ wtrie rank log.wtx site.com/home
  $ wtrie access log.wtx 4
