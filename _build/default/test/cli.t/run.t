The wtrie CLI over a small line file.

  $ cat > log.txt <<STOP
  > site.com/home
  > site.com/login
  > blog.net/post
  > site.com/home
  > shop.org/cart
  > site.com/home
  > STOP

Point queries:

  $ wtrie access log.txt 2
  blog.net/post

  $ wtrie rank log.txt site.com/home
  3

  $ wtrie rank log.txt site.com/home --hi 3
  1

  $ wtrie select log.txt site.com/home 1
  3

  $ wtrie select log.txt nope 0
  no such occurrence
  [1]

Prefix queries:

  $ wtrie prefix-count log.txt site.com/
  4

  $ wtrie prefix-list log.txt site.com/ --limit 2
         0  site.com/home
         1  site.com/login

Range analytics:

  $ wtrie distinct log.txt
         1  blog.net/post
         1  shop.org/cart
         3  site.com/home
         1  site.com/login

  $ wtrie majority log.txt --lo 3 --hi 6
  site.com/home (2 of 3)

  $ wtrie at-least log.txt 3
         3  site.com/home

  $ wtrie top-k log.txt 2
         3  site.com/home
         1  site.com/login

  $ wtrie quantile log.txt 0
  blog.net/post

  $ wtrie quantile log.txt 5
  site.com/login

Index caching:

  $ wtrie index log.txt log.wtx
  indexed 6 strings into log.wtx

  $ wtrie rank log.wtx site.com/home
  3

  $ wtrie access log.wtx 4
  shop.org/cart
