(* Tests for the Section 6 probabilistically-balanced dynamic Wavelet
   Tree on integers: oracle agreement, inverse-hash correctness, and the
   Theorem 6.2 height bound. *)

module Balanced = Wt_core.Balanced
module Xoshiro = Wt_bits.Xoshiro

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* naive integer-sequence oracle *)
module M = struct
  type t = int list ref

  let create () : t = ref []
  let length (t : t) = List.length !t
  let access (t : t) pos = List.nth !t pos

  let insert (t : t) pos x =
    let rec go i = function
      | rest when i = pos -> x :: rest
      | [] -> invalid_arg "M.insert"
      | y :: rest -> y :: go (i + 1) rest
    in
    t := go 0 !t

  let delete (t : t) pos = t := List.filteri (fun i _ -> i <> pos) !t
  let rank (t : t) x pos = List.length (List.filteri (fun i y -> i < pos && y = x) !t)

  let select (t : t) x idx =
    let rec go i k = function
      | [] -> None
      | y :: rest -> if y = x then if k = idx then Some i else go (i + 1) (k + 1) rest else go (i + 1) k rest
    in
    go 0 0 !t

  let distinct (t : t) = List.length (List.sort_uniq compare !t)
end

let test_oracle () =
  let rng = Xoshiro.create 606 in
  let width = 40 in
  let b = Balanced.create ~seed:77 ~width () in
  let m = M.create () in
  (* sparse working alphabet inside a huge universe *)
  let alphabet = Array.init 50 (fun _ -> Xoshiro.next rng land Wt_bits.Broadword.mask width) in
  for step = 1 to 1500 do
    let n = M.length m in
    let c = Xoshiro.int rng 10 in
    if c < 6 || n = 0 then begin
      let x = alphabet.(Xoshiro.int rng 50) in
      let pos = Xoshiro.int rng (n + 1) in
      M.insert m pos x;
      Balanced.insert b pos x
    end
    else begin
      let pos = Xoshiro.int rng n in
      M.delete m pos;
      Balanced.delete b pos
    end;
    if step mod 150 = 0 then begin
      Balanced.check_invariants b;
      check_int "length" (M.length m) (Balanced.length b);
      check_int "distinct" (M.distinct m) (Balanced.distinct_count b);
      let n = M.length m in
      for _ = 1 to 30 do
        if n > 0 then begin
          let pos = Xoshiro.int rng n in
          check_int "access" (M.access m pos) (Balanced.access b pos)
        end;
        let x = alphabet.(Xoshiro.int rng 50) in
        let pos = Xoshiro.int rng (n + 1) in
        check_int "rank" (M.rank m x pos) (Balanced.rank b x pos);
        let idx = Xoshiro.int rng 20 in
        Alcotest.(check (option int)) "select" (M.select m x idx) (Balanced.select b x idx)
      done
    end
  done

let test_out_of_universe () =
  let b = Balanced.create ~width:8 () in
  Alcotest.check_raises "too large" (Invalid_argument "Balanced: value out of universe")
    (fun () -> Balanced.append b 256);
  Alcotest.check_raises "negative" (Invalid_argument "Balanced: value out of universe")
    (fun () -> Balanced.append b (-1));
  Balanced.append b 255;
  Balanced.append b 0;
  check_int "access 255" 255 (Balanced.access b 0);
  check_int "access 0" 0 (Balanced.access b 1)

let test_height_bound () =
  (* Theorem 6.2: height <= (alpha+2) log2 |Sigma| with probability
     1 - |Sigma|^-alpha, independent of the universe (width 60 here).
     With alpha = 3 the failure probability is ~1/|Sigma|^3; check over
     several seeds that the bound essentially always holds and is far
     below the worst case log2(u) = 60. *)
  let width = 60 in
  let failures = ref 0 in
  let trials = 20 in
  for seed = 1 to trials do
    let rng = Xoshiro.create (1000 + seed) in
    let sigma = 128 in
    let alphabet =
      Array.init sigma (fun _ -> Xoshiro.next rng land Wt_bits.Broadword.mask width)
    in
    let b = Balanced.create ~seed ~width () in
    Array.iter (Balanced.append b) alphabet;
    (* add repeats; they do not change the trie shape *)
    for _ = 1 to 500 do
      Balanced.append b alphabet.(Xoshiro.int rng sigma)
    done;
    let h = Balanced.height b in
    let bound = int_of_float (5. *. (log (float_of_int sigma) /. log 2.)) in
    if h > bound then incr failures;
    check_bool "far below log u" true (h < width)
  done;
  check_bool (Printf.sprintf "height bound failures: %d/%d" !failures trials) true
    (!failures = 0)

let test_dyadic_adversary () =
  (* Powers of two collide on every low-bit prefix of a*x mod 2^w, so the
     LSB-first writing the paper describes degenerates; MSB-first (what we
     implement) must stay ~log |Sigma|.  Regression for the deviation
     documented in Balanced's interface. *)
  let width = 60 in
  let sigma = 59 in
  let worst = ref 0 in
  for seed = 1 to 10 do
    let b = Balanced.create ~seed ~width () in
    for i = 0 to sigma - 1 do
      Balanced.append b (1 lsl i)
    done;
    worst := max !worst (Balanced.height b)
  done;
  check_bool
    (Printf.sprintf "powers-of-two height %d <= 30" !worst)
    true (!worst <= 30)

let test_determinism () =
  let mk seed =
    let b = Balanced.create ~seed ~width:32 () in
    List.iter (Balanced.append b) [ 5; 17; 5; 1000000; 42 ];
    b
  in
  let a = mk 3 and b = mk 3 in
  check_int "same height" (Balanced.height a) (Balanced.height b);
  for i = 0 to 4 do
    check_int "same content" (Balanced.access a i) (Balanced.access b i)
  done

let () =
  Alcotest.run "wt_balanced"
    [
      ( "balanced",
        [
          Alcotest.test_case "oracle agreement" `Quick test_oracle;
          Alcotest.test_case "universe bounds" `Quick test_out_of_universe;
          Alcotest.test_case "height bound (Thm 6.2)" `Quick test_height_bound;
          Alcotest.test_case "dyadic adversary (MSB-first fix)" `Quick test_dyadic_adversary;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
