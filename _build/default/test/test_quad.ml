(* Tests for the 4-ary Wavelet Trie prototype (Section 7 future work):
   full agreement with the binary static Wavelet Trie, plus the
   terminal-symbol and half-step prefix corner cases specific to fanout 4. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Quad_wt = Wt_wavelet_tree.Quad_wt

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bs = Bitstring.of_string

let test_agrees_with_binary () =
  let rng = Xoshiro.create 11 in
  List.iter
    (fun (n_words, n) ->
      let pool =
        Array.init n_words (fun _ ->
            Binarize.of_bytes
              (String.init (1 + Xoshiro.int rng 6) (fun _ ->
                   Char.chr (Char.code 'a' + Xoshiro.int rng 3))))
      in
      let seq = Array.init n (fun _ -> pool.(Xoshiro.int rng n_words)) in
      let b = Wavelet_trie.of_array seq in
      let q = Quad_wt.of_array seq in
      check_int "length" (Wavelet_trie.length b) (Quad_wt.length q);
      check_int "distinct" (Wavelet_trie.distinct_count b) (Quad_wt.distinct_count q);
      for _ = 1 to 400 do
        let pos = Xoshiro.int rng n in
        check_bool "access" true
          (Bitstring.equal (Wavelet_trie.access b pos) (Quad_wt.access q pos));
        let s = pool.(Xoshiro.int rng n_words) in
        let pos' = Xoshiro.int rng (n + 1) in
        check_int "rank" (Wavelet_trie.rank b s pos') (Quad_wt.rank q s pos');
        let idx = Xoshiro.int rng (max 1 (n / 4)) in
        Alcotest.(check (option int))
          "select" (Wavelet_trie.select b s idx) (Quad_wt.select q s idx);
        (* arbitrary bit prefixes, including odd lengths hitting the
           half-step case *)
        let p = Bitstring.prefix s (Xoshiro.int rng (Bitstring.length s + 1)) in
        check_int "rank_prefix"
          (Wavelet_trie.rank_prefix b p pos')
          (Quad_wt.rank_prefix q p pos');
        Alcotest.(check (option int))
          "select_prefix"
          (Wavelet_trie.select_prefix b p idx)
          (Quad_wt.select_prefix q p idx)
      done)
    [ (1, 10); (6, 300); (50, 1200) ]

let test_terminal_symbols () =
  (* Odd-length suffixes end with the single-bit terminal symbols. *)
  let seq = Array.map bs [| "0"; "1"; "0"; "1"; "0" |] in
  let q = Quad_wt.of_array seq in
  check_int "distinct" 2 (Quad_wt.distinct_count q);
  check_int "rank 0" 3 (Quad_wt.rank q (bs "0") 5);
  check_int "rank 1" 2 (Quad_wt.rank q (bs "1") 5);
  Alcotest.(check (option int)) "select 1#1" (Some 3) (Quad_wt.select q (bs "1") 1);
  check_bool "access" true (Bitstring.equal (bs "1") (Quad_wt.access q 1));
  (* half-step prefix of length covering terminal + extensions *)
  let seq = Array.map bs [| "00"; "010"; "011"; "1" |] in
  let q = Quad_wt.of_array seq in
  (* prefix "0": covers 00, 010, 011 *)
  check_int "prefix 0" 3 (Quad_wt.rank_prefix q (bs "0") 4);
  (* prefix "01": covers 010, 011 *)
  check_int "prefix 01" 2 (Quad_wt.rank_prefix q (bs "01") 4);
  Alcotest.(check (option int)) "select_prefix 0 #2" (Some 2)
    (Quad_wt.select_prefix q (bs "0") 2);
  Alcotest.(check (option int)) "select_prefix 0 #3" None (Quad_wt.select_prefix q (bs "0") 3)

let test_height_halves () =
  let rng = Xoshiro.create 12 in
  let pool =
    Array.init 400 (fun _ ->
        Binarize.of_bytes
          (String.init (3 + Xoshiro.int rng 8) (fun _ ->
               Char.chr (Char.code 'a' + Xoshiro.int rng 8))))
  in
  let seq = Array.init 3000 (fun _ -> pool.(Xoshiro.int rng 400)) in
  let b = Wavelet_trie.of_array seq in
  let q = Quad_wt.of_array seq in
  (* binary height via the Node view *)
  let module N = Wavelet_trie.Node in
  let rec h node =
    if N.is_leaf node then 0 else 1 + max (h (N.child node false)) (h (N.child node true))
  in
  let hb = match N.root b with None -> 0 | Some r -> h r in
  let hq = Quad_wt.height q in
  check_bool
    (Printf.sprintf "quad height %d well below binary %d" hq hb)
    true
    (float_of_int hq <= (0.75 *. float_of_int hb) +. 2.)

let test_empty_and_errors () =
  let q = Quad_wt.of_array [||] in
  check_int "empty" 0 (Quad_wt.length q);
  check_int "empty rank" 0 (Quad_wt.rank q (bs "01") 0);
  Alcotest.check_raises "prefix violation"
    (Invalid_argument "Quad_wt.of_array: string set is not prefix-free") (fun () ->
      ignore (Quad_wt.of_array (Array.map bs [| "01"; "0110" |])))

let () =
  Alcotest.run "wt_quad"
    [
      ( "quad",
        [
          Alcotest.test_case "agrees with binary" `Quick test_agrees_with_binary;
          Alcotest.test_case "terminal symbols" `Quick test_terminal_symbols;
          Alcotest.test_case "height shrinks" `Quick test_height_halves;
          Alcotest.test_case "empty and errors" `Quick test_empty_and_errors;
        ] );
    ]
