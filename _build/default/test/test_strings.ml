(* Tests for wt_strings: Bitstring views/lcp/compare and the prefix-free
   binarization codecs. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Bitbuf = Wt_bits.Bitbuf
module Xoshiro = Wt_bits.Xoshiro

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bs = Bitstring.of_string

let test_basic () =
  check_int "empty" 0 (Bitstring.length Bitstring.empty);
  check_bool "is_empty" true (Bitstring.is_empty Bitstring.empty);
  let t = bs "01101" in
  check_int "length" 5 (Bitstring.length t);
  check_bool "get 0" false (Bitstring.get t 0);
  check_bool "get 1" true (Bitstring.get t 1);
  check_bool "get 4" true (Bitstring.get t 4);
  check_string "to_string" "01101" (Bitstring.to_string t);
  Alcotest.(check (list bool))
    "to_bool_list" [ false; true; true; false; true ] (Bitstring.to_bool_list t);
  check_string "of_bool_list" "01101"
    (Bitstring.to_string (Bitstring.of_bool_list [ false; true; true; false; true ]))

let test_sub_drop_prefix () =
  let t = bs "0110100111" in
  check_string "sub" "1010" (Bitstring.to_string (Bitstring.sub t 2 4));
  check_string "drop" "100111" (Bitstring.to_string (Bitstring.drop t 4));
  check_string "prefix" "011" (Bitstring.to_string (Bitstring.prefix t 3));
  (* nested views *)
  let v = Bitstring.sub (Bitstring.drop t 2) 1 5 in
  check_string "nested" "01001" (Bitstring.to_string v);
  check_string "drop all" "" (Bitstring.to_string (Bitstring.drop t 10))

let test_append_concat () =
  check_string "append" "01101"
    (Bitstring.to_string (Bitstring.append (bs "011") (bs "01")));
  check_string "concat" "0110110"
    (Bitstring.to_string (Bitstring.concat [ bs "01"; bs "101"; bs "10" ]));
  check_string "cons" "1011" (Bitstring.to_string (Bitstring.cons true (bs "011")));
  check_string "snoc" "0111" (Bitstring.to_string (Bitstring.snoc (bs "011") true));
  (* concat of views *)
  let t = bs "11110000" in
  check_string "concat views" "111000"
    (Bitstring.to_string (Bitstring.concat [ Bitstring.prefix t 3; Bitstring.drop t 5 ]))

let test_lcp () =
  check_int "lcp equal" 4 (Bitstring.lcp (bs "0110") (bs "0110"));
  check_int "lcp empty" 0 (Bitstring.lcp Bitstring.empty (bs "0110"));
  check_int "lcp prefix" 3 (Bitstring.lcp (bs "011") (bs "0110"));
  check_int "lcp diverge" 2 (Bitstring.lcp (bs "0110") (bs "0100"));
  check_int "lcp first bit" 0 (Bitstring.lcp (bs "10") (bs "01"));
  (* long strings exercising the word-parallel path *)
  let rng = Xoshiro.create 9 in
  for _ = 1 to 200 do
    let n = 1 + Xoshiro.int rng 300 in
    let a = Array.init n (fun _ -> Xoshiro.bool rng) in
    let k = Xoshiro.int rng (n + 1) in
    (* b = a with bit k flipped (or equal when k = n) *)
    let b = Array.copy a in
    if k < n then b.(k) <- not b.(k);
    let sa = Bitstring.of_bool_list (Array.to_list a) in
    let sb = Bitstring.of_bool_list (Array.to_list b) in
    check_int "lcp random" k (Bitstring.lcp sa sb)
  done

let test_compare () =
  check_int "equal" 0 (Bitstring.compare (bs "0101") (bs "0101"));
  check_bool "prefix sorts first" true (Bitstring.compare (bs "01") (bs "010") < 0);
  check_bool "extension sorts last" true (Bitstring.compare (bs "010") (bs "01") > 0);
  check_bool "0 < 1" true (Bitstring.compare (bs "00") (bs "01") < 0);
  check_bool "1 > 0" true (Bitstring.compare (bs "10") (bs "0111") > 0);
  check_bool "empty least" true (Bitstring.compare Bitstring.empty (bs "0") < 0);
  check_bool "equal views" true (Bitstring.equal (Bitstring.drop (bs "110") 1) (bs "10"));
  check_bool "hash consistent" true
    (Bitstring.hash (Bitstring.drop (bs "11010") 2) = Bitstring.hash (bs "010"))

let test_is_prefix () =
  check_bool "empty prefix" true (Bitstring.is_prefix ~prefix:Bitstring.empty (bs "01"));
  check_bool "proper prefix" true (Bitstring.is_prefix ~prefix:(bs "01") (bs "0110"));
  check_bool "self prefix" true (Bitstring.is_prefix ~prefix:(bs "0110") (bs "0110"));
  check_bool "not prefix" false (Bitstring.is_prefix ~prefix:(bs "00") (bs "0110"));
  check_bool "too long" false (Bitstring.is_prefix ~prefix:(bs "01101") (bs "0110"))

let test_bitbuf_interop () =
  let buf = Bitbuf.of_string "10110" in
  let t = Bitstring.of_bitbuf buf in
  check_string "of_bitbuf" "10110" (Bitstring.to_string t);
  Bitbuf.add buf true;
  check_int "copy is independent" 5 (Bitstring.length t);
  let out = Bitbuf.of_string "00" in
  Bitstring.append_to_bitbuf (Bitstring.drop t 1) out;
  check_string "append_to_bitbuf" "000110" (Bitbuf.to_string out)

(* ------------------------------------------------------------------ *)
(* Binarize *)

let test_bytes_roundtrip () =
  let cases = [ ""; "a"; "abc"; "hello world"; "\x00\xff\x00"; String.make 100 'z' ] in
  List.iter
    (fun s ->
      let enc = Binarize.of_bytes s in
      check_int ("length of " ^ String.escaped s)
        ((9 * String.length s) + 1)
        (Bitstring.length enc);
      check_string ("roundtrip " ^ String.escaped s) s (Binarize.to_bytes enc))
    cases

let test_bytes_prefix_free () =
  (* No encoding is a prefix of another (distinct strings). *)
  let strings = [ ""; "a"; "ab"; "abc"; "b"; "ba"; "\x00"; "aa" ] in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          if s1 <> s2 then
            check_bool
              (Printf.sprintf "%S not prefix of %S" s1 s2)
              false
              (Bitstring.is_prefix ~prefix:(Binarize.of_bytes s1) (Binarize.of_bytes s2)))
        strings)
    strings

let test_bytes_order_preserving () =
  let rng = Xoshiro.create 21 in
  let random_string () =
    String.init (Xoshiro.int rng 12) (fun _ -> Char.chr (Xoshiro.int rng 256))
  in
  for _ = 1 to 500 do
    let a = random_string () and b = random_string () in
    let cmp_bytes = compare a b in
    let cmp_bits = Bitstring.compare (Binarize.of_bytes a) (Binarize.of_bytes b) in
    check_bool
      (Printf.sprintf "order of %S vs %S" a b)
      true
      ((cmp_bytes = 0) = (cmp_bits = 0) && (cmp_bytes < 0) = (cmp_bits < 0))
  done

let test_bytes_malformed () =
  Alcotest.check_raises "empty" (Invalid_argument "Binarize.to_bytes: missing terminator")
    (fun () -> ignore (Binarize.to_bytes Bitstring.empty));
  Alcotest.check_raises "truncated" (Invalid_argument "Binarize.to_bytes: truncated byte")
    (fun () -> ignore (Binarize.to_bytes (bs "101")));
  Alcotest.check_raises "trailing" (Invalid_argument "Binarize.to_bytes: trailing bits")
    (fun () -> ignore (Binarize.to_bytes (bs "011")))

let test_int_codecs () =
  check_string "msb 5 w4" "0101" (Bitstring.to_string (Binarize.of_int_msb ~width:4 5));
  check_string "lsb 5 w4" "1010" (Bitstring.to_string (Binarize.of_int_lsb ~width:4 5));
  let rng = Xoshiro.create 31 in
  for _ = 1 to 300 do
    let width = 1 + Xoshiro.int rng 61 in
    let v = Xoshiro.next rng land Wt_bits.Broadword.mask width in
    check_int "msb roundtrip" v (Binarize.to_int_msb (Binarize.of_int_msb ~width v));
    check_int "lsb roundtrip" v (Binarize.to_int_lsb (Binarize.of_int_lsb ~width v))
  done;
  (* MSB-first preserves numeric order at fixed width *)
  for _ = 1 to 200 do
    let a = Xoshiro.int rng 1000 and b = Xoshiro.int rng 1000 in
    let ba = Binarize.of_int_msb ~width:10 a and bb = Binarize.of_int_msb ~width:10 b in
    check_bool "numeric order" true ((compare a b < 0) = (Bitstring.compare ba bb < 0))
  done

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"bytes encode/decode" ~count:300 string (fun s ->
        Binarize.to_bytes (Binarize.of_bytes s) = s);
    Test.make ~name:"lcp symmetric and bounded" ~count:300
      (pair (list bool) (list bool))
      (fun (a, b) ->
        let sa = Bitstring.of_bool_list a and sb = Bitstring.of_bool_list b in
        let l = Bitstring.lcp sa sb in
        l = Bitstring.lcp sb sa && l <= min (List.length a) (List.length b));
    Test.make ~name:"compare total order vs bool lists" ~count:300
      (pair (list bool) (list bool))
      (fun (a, b) ->
        let sa = Bitstring.of_bool_list a and sb = Bitstring.of_bool_list b in
        let expected = compare a b in
        (* OCaml list compare on bools is lexicographic with false < true *)
        let got = Bitstring.compare sa sb in
        (expected = 0) = (got = 0) && (expected < 0) = (got < 0));
    Test.make ~name:"sub/append identity" ~count:300
      (pair (list bool) small_nat)
      (fun (l, k0) ->
        let t = Bitstring.of_bool_list l in
        let n = Bitstring.length t in
        let k = if n = 0 then 0 else k0 mod (n + 1) in
        Bitstring.equal t (Bitstring.append (Bitstring.prefix t k) (Bitstring.drop t k)));
  ]

let () =
  Alcotest.run "wt_strings"
    [
      ( "bitstring",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "sub/drop/prefix" `Quick test_sub_drop_prefix;
          Alcotest.test_case "append/concat" `Quick test_append_concat;
          Alcotest.test_case "lcp" `Quick test_lcp;
          Alcotest.test_case "compare/equal/hash" `Quick test_compare;
          Alcotest.test_case "is_prefix" `Quick test_is_prefix;
          Alcotest.test_case "bitbuf interop" `Quick test_bitbuf_interop;
        ] );
      ( "binarize",
        [
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "prefix-free" `Quick test_bytes_prefix_free;
          Alcotest.test_case "order-preserving" `Quick test_bytes_order_preserving;
          Alcotest.test_case "malformed input" `Quick test_bytes_malformed;
          Alcotest.test_case "int codecs" `Quick test_int_codecs;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
