(* Tests for the synthetic workload generators: determinism, structural
   properties (skew, shared prefixes), and encoding validity. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Zipf = Wt_workload.Zipf
module Urls = Wt_workload.Urls
module Text = Wt_workload.Text
module Columns = Wt_workload.Columns

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_zipf_shape () =
  let rng = Xoshiro.create 1 in
  let z = Zipf.create 100 in
  check_int "size" 100 (Zipf.size z);
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let r = Zipf.sample z rng in
    check_bool "in range" true (r >= 0 && r < 100);
    counts.(r) <- counts.(r) + 1
  done;
  (* rank 0 much more frequent than rank 50 *)
  check_bool
    (Printf.sprintf "skew: %d vs %d" counts.(0) counts.(50))
    true
    (counts.(0) > 8 * counts.(50));
  (* roughly harmonic: rank0/rank1 ~ 2 *)
  check_bool "harmonic-ish" true
    (float_of_int counts.(0) /. float_of_int counts.(1) < 3.5)

let test_urls_determinism () =
  let a = Urls.create ~seed:5 () and b = Urls.create ~seed:5 () in
  for _ = 1 to 100 do
    Alcotest.(check string) "same stream" (Urls.next a) (Urls.next b)
  done;
  let c = Urls.create ~seed:6 () in
  check_bool "different seeds" true (Urls.next a <> Urls.next c || Urls.next a <> Urls.next c)

let test_urls_structure () =
  let g = Urls.create ~seed:1 ~hosts:10 () in
  let raw = Urls.raw_sequence g 2000 in
  Array.iter
    (fun u ->
      check_bool ("scheme " ^ u) true (String.length u > 10 && String.sub u 0 7 = "http://"))
    raw;
  (* encoded strings decode back *)
  let g2 = Urls.create ~seed:1 ~hosts:10 () in
  let enc = Urls.sequence g2 100 in
  Array.iteri
    (fun i e -> Alcotest.(check string) "encode/decode" raw.(i) (Binarize.to_bytes e))
    enc;
  (* host prefixes really are prefixes of their URLs *)
  for h = 0 to 9 do
    let p = Urls.host_prefix g h in
    check_bool "prefix nonempty" true (Bitstring.length p > 0)
  done;
  (* every URL matches exactly one host prefix *)
  let g3 = Urls.create ~seed:1 ~hosts:10 () in
  let enc = Urls.sequence g3 200 in
  Array.iter
    (fun e ->
      let matches = ref 0 in
      for h = 0 to Urls.host_count g - 1 do
        if Bitstring.is_prefix ~prefix:(Urls.host_prefix g h) e then incr matches
      done;
      check_int "one host" 1 !matches)
    enc

let test_urls_low_entropy () =
  (* the whole point of the workload: H0 far below the raw size *)
  let g = Urls.create ~seed:3 () in
  let seq = Urls.sequence g 5000 in
  let wt = Wt_core.Wavelet_trie.of_array seq in
  let st = Wt_core.Wavelet_trie.stats wt in
  let raw_bits = Array.fold_left (fun a s -> a + Bitstring.length s) 0 seq in
  check_bool
    (Printf.sprintf "H0 %.0f << raw %d" st.seq_h0_bits raw_bits)
    true
    (st.seq_h0_bits < float_of_int raw_bits /. 8.);
  check_bool
    (Printf.sprintf "h~ %.1f << avg len %.1f" st.avg_height
       (float_of_int raw_bits /. 5000.))
    true
    (st.avg_height < float_of_int raw_bits /. 5000. /. 4.)

let test_text_growing_alphabet () =
  let t = Text.create ~seed:2 ~fresh_every:16 () in
  let seq = Text.sequence t 2000 in
  let distinct l =
    List.length (List.sort_uniq Bitstring.compare (Array.to_list l))
  in
  let d1 = distinct (Array.sub seq 0 500) in
  let d2 = distinct seq in
  check_bool (Printf.sprintf "alphabet grows: %d -> %d" d1 d2) true (d2 > d1);
  (* no fresh words at all when disabled *)
  let t0 = Text.create ~seed:2 ~base_vocab:32 ~fresh_every:0 () in
  let seq0 = Text.sequence t0 2000 in
  check_bool "bounded vocab" true (distinct seq0 <= 32)

let test_columns () =
  let col, words = Columns.categorical ~cardinality:16 5000 in
  check_int "length" 5000 (Array.length col);
  check_int "vocab" 16 (Array.length words);
  Array.iter
    (fun e ->
      let w = Binarize.to_bytes e in
      check_bool ("known word " ^ w) true (Array.exists (String.equal w) words))
    (Array.sub col 0 200);
  let ids = Columns.identifiers ~universe:(1 lsl 20) 1000 in
  Array.iter (fun e -> check_int "fixed width" 20 (Bitstring.length e)) ids;
  let nums = Columns.numeric ~bits:30 ~distinct:50 2000 in
  let d = List.length (List.sort_uniq compare (Array.to_list nums)) in
  check_bool "sparse alphabet" true (d <= 50);
  Array.iter (fun v -> check_bool "in universe" true (v >= 0 && v < 1 lsl 30)) nums

(* ------------------------------------------------------------------ *)
(* Cache simulator *)

module Cache_sim = Wt_workload.Cache_sim
module Bitbuf = Wt_bits.Bitbuf

let test_cache_sim_basics () =
  let c = Cache_sim.create ~line_bytes:64 ~ways:2 ~sets:4 () in
  let buf = Bitbuf.create () in
  Bitbuf.add_run buf true 10_000;
  (* first pass: cold misses; second pass over a small window: hits *)
  let _, cold =
    Cache_sim.run c (fun () ->
        for pos = 0 to 9_000 do
          ignore (Bitbuf.get buf pos)
        done)
  in
  check_bool (Printf.sprintf "cold misses %d" cold) true (cold > 0);
  Cache_sim.reset_stats c;
  let _, warm =
    Cache_sim.run c (fun () ->
        for _ = 1 to 1000 do
          ignore (Bitbuf.get buf 0)
        done)
  in
  check_bool (Printf.sprintf "warm misses %d" warm) true (warm <= 1);
  check_bool "hit rate high" true (Cache_sim.miss_rate c < 0.01);
  (* probe uninstalled: no accounting *)
  Cache_sim.reset_stats c;
  ignore (Bitbuf.get buf 5);
  check_int "no probe, no accesses" 0 (Cache_sim.accesses c)

let test_cache_sim_eviction () =
  (* a 1-way 1-set cache thrashes between two lines *)
  let c = Cache_sim.create ~line_bytes:64 ~ways:1 ~sets:1 () in
  let buf = Bitbuf.create () in
  Bitbuf.add_run buf false (64 * 8 * 4);
  let _, m =
    Cache_sim.run c (fun () ->
        for _ = 1 to 100 do
          ignore (Bitbuf.get buf 0);
          ignore (Bitbuf.get buf (64 * 8 * 2))
        done)
  in
  check_int "thrash: every access misses" 200 m

let test_cache_sim_separates_structures () =
  (* queries on a compact structure must miss less than on a scattered
     one: compare sequential scan vs random jumps *)
  let c = Cache_sim.create () in
  let buf = Bitbuf.create () in
  Bitbuf.add_run buf true (512 * 1024);
  let rng = Xoshiro.create 9 in
  let _, seq_m =
    Cache_sim.run c (fun () ->
        for pos = 0 to 49_999 do
          ignore (Bitbuf.get buf pos)
        done)
  in
  Cache_sim.reset_stats c;
  let _, rand_m =
    Cache_sim.run c (fun () ->
        for _ = 1 to 50_000 do
          ignore (Bitbuf.get buf (Xoshiro.int rng (512 * 1024)))
        done)
  in
  check_bool
    (Printf.sprintf "sequential %d << random %d" seq_m rand_m)
    true
    (seq_m * 10 < rand_m)

let () =
  Alcotest.run "wt_workload"
    [
      ( "workload",
        [
          Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
          Alcotest.test_case "urls determinism" `Quick test_urls_determinism;
          Alcotest.test_case "urls structure" `Quick test_urls_structure;
          Alcotest.test_case "urls entropy" `Quick test_urls_low_entropy;
          Alcotest.test_case "text growing alphabet" `Quick test_text_growing_alphabet;
          Alcotest.test_case "columns" `Quick test_columns;
        ] );
      ( "cache_sim",
        [
          Alcotest.test_case "basics" `Quick test_cache_sim_basics;
          Alcotest.test_case "eviction" `Quick test_cache_sim_eviction;
          Alcotest.test_case "locality" `Quick test_cache_sim_separates_structures;
        ] );
    ]
