(* Tests for the wt_bits substrate: broadword primitives, bit buffers,
   Elias codes, run-length coding, entropy accounting, PRNG. *)

module Broadword = Wt_bits.Broadword
module Bitbuf = Wt_bits.Bitbuf
module Bit_io = Wt_bits.Bit_io
module Elias = Wt_bits.Elias
module Rle = Wt_bits.Rle
module Entropy = Wt_bits.Entropy
module Xoshiro = Wt_bits.Xoshiro

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Broadword *)

let naive_popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let test_popcount_small () =
  check_int "popcount 0" 0 (Broadword.popcount 0);
  check_int "popcount 1" 1 (Broadword.popcount 1);
  check_int "popcount 0xff" 8 (Broadword.popcount 0xff);
  check_int "popcount max_int" 62 (Broadword.popcount max_int);
  for i = 0 to 61 do
    check_int "popcount single bit" 1 (Broadword.popcount (1 lsl i))
  done

let test_popcount_random () =
  let rng = Xoshiro.create 42 in
  for _ = 1 to 1000 do
    let x = Xoshiro.next rng in
    check_int "popcount random" (naive_popcount x) (Broadword.popcount x)
  done

let naive_select x k =
  let rec go pos k =
    if pos > 62 then raise Not_found
    else if x land (1 lsl pos) <> 0 then if k = 0 then pos else go (pos + 1) (k - 1)
    else go (pos + 1) k
  in
  go 0 k

let test_select_in_word () =
  let rng = Xoshiro.create 7 in
  for _ = 1 to 500 do
    let x = Xoshiro.next rng in
    let c = Broadword.popcount x in
    for k = 0 to min (c - 1) 10 do
      check_int "select" (naive_select x k) (Broadword.select_in_word x k)
    done;
    if c < 62 then
      Alcotest.check_raises "select out of range" (Invalid_argument "Broadword.select_in_word: index out of range")
        (fun () -> ignore (Broadword.select_in_word x c))
  done

let test_select0_in_word () =
  let rng = Xoshiro.create 8 in
  for _ = 1 to 200 do
    let x = Xoshiro.next rng in
    let len = 1 + Xoshiro.int rng 62 in
    let xm = x land Broadword.mask len in
    let zeros = len - Broadword.popcount xm in
    for k = 0 to min (zeros - 1) 5 do
      let pos = Broadword.select0_in_word x len k in
      check_bool "selected bit is zero" true (x land (1 lsl pos) = 0);
      (* Count zeros strictly before pos *)
      let before = pos - Broadword.popcount (x land Broadword.mask pos) in
      check_int "rank of selected zero" k before
    done
  done

let test_highest_lowest () =
  check_int "highest_bit 1" 0 (Broadword.highest_bit 1);
  check_int "highest_bit 2" 1 (Broadword.highest_bit 2);
  check_int "highest_bit 255" 7 (Broadword.highest_bit 255);
  check_int "highest_bit 256" 8 (Broadword.highest_bit 256);
  check_int "highest max_int" 61 (Broadword.highest_bit max_int);
  check_int "lowest_bit 8" 3 (Broadword.lowest_bit 8);
  check_int "lowest_bit 12" 2 (Broadword.lowest_bit 12);
  check_int "bit_width 0" 0 (Broadword.bit_width 0);
  check_int "bit_width 1" 1 (Broadword.bit_width 1);
  check_int "bit_width 7" 3 (Broadword.bit_width 7);
  for i = 0 to 61 do
    check_int "highest single" i (Broadword.highest_bit (1 lsl i));
    check_int "lowest single" i (Broadword.lowest_bit (1 lsl i))
  done

let test_mask () =
  check_int "mask 0" 0 (Broadword.mask 0);
  check_int "mask 1" 1 (Broadword.mask 1);
  check_int "mask 8" 255 (Broadword.mask 8);
  check_int "mask 62" max_int (Broadword.mask 62)

let test_reverse_bits () =
  check_int "reverse 1 bit" 1 (Broadword.reverse_bits 1 1);
  check_int "reverse 0b01 over 2" 0b10 (Broadword.reverse_bits 0b01 2);
  check_int "reverse 0b110 over 3" 0b011 (Broadword.reverse_bits 0b110 3);
  let rng = Xoshiro.create 3 in
  for _ = 1 to 300 do
    let len = 1 + Xoshiro.int rng 62 in
    let x = Xoshiro.next rng land Broadword.mask len in
    let r = Broadword.reverse_bits x len in
    check_int "reverse involutive" x (Broadword.reverse_bits r len);
    for i = 0 to len - 1 do
      check_bool "bit mirrored" ((x lsr i) land 1 = 1) ((r lsr (len - 1 - i)) land 1 = 1)
    done
  done

(* ------------------------------------------------------------------ *)
(* Bitbuf *)

let test_bitbuf_basic () =
  let b = Bitbuf.create () in
  check_int "empty length" 0 (Bitbuf.length b);
  Bitbuf.add b true;
  Bitbuf.add b false;
  Bitbuf.add b true;
  check_int "length 3" 3 (Bitbuf.length b);
  check_bool "bit 0" true (Bitbuf.get b 0);
  check_bool "bit 1" false (Bitbuf.get b 1);
  check_bool "bit 2" true (Bitbuf.get b 2);
  Bitbuf.set b 1 true;
  check_bool "bit 1 set" true (Bitbuf.get b 1)

let test_bitbuf_random_bits () =
  let rng = Xoshiro.create 99 in
  let n = 3000 in
  let reference = Array.init n (fun _ -> Xoshiro.bool rng) in
  let b = Bitbuf.create () in
  Array.iter (Bitbuf.add b) reference;
  check_int "length" n (Bitbuf.length b);
  Array.iteri (fun i bit -> check_bool "bit" bit (Bitbuf.get b i)) reference;
  (* get_bits agrees with per-bit reads at random offsets/lengths. *)
  for _ = 1 to 500 do
    let len = Xoshiro.int rng 63 in
    let pos = Xoshiro.int rng (n - len + 1) in
    let v = Bitbuf.get_bits b pos len in
    for j = 0 to len - 1 do
      check_bool "get_bits bit" reference.(pos + j) ((v lsr j) land 1 = 1)
    done
  done

let test_bitbuf_set_bits () =
  let rng = Xoshiro.create 1234 in
  let n = 2000 in
  let reference = Array.make n false in
  let b = Bitbuf.create () in
  Bitbuf.add_run b false n;
  for _ = 1 to 400 do
    let len = 1 + Xoshiro.int rng 62 in
    let pos = Xoshiro.int rng (n - len + 1) in
    let v = Xoshiro.next rng land Broadword.mask len in
    Bitbuf.set_bits b pos len v;
    for j = 0 to len - 1 do
      reference.(pos + j) <- (v lsr j) land 1 = 1
    done
  done;
  Array.iteri (fun i bit -> check_bool "after set_bits" bit (Bitbuf.get b i)) reference

let test_bitbuf_add_bits_roundtrip () =
  let rng = Xoshiro.create 5 in
  let b = Bitbuf.create () in
  let writes = ref [] in
  for _ = 1 to 300 do
    let len = 1 + Xoshiro.int rng 62 in
    let v = Xoshiro.next rng land Broadword.mask len in
    Bitbuf.add_bits b len v;
    writes := (len, v) :: !writes
  done;
  let pos = ref 0 in
  List.iter
    (fun (len, v) ->
      check_int "roundtrip word" v (Bitbuf.get_bits b !pos len);
      pos := !pos + len)
    (List.rev !writes);
  check_int "total length" !pos (Bitbuf.length b)

let test_bitbuf_add_run () =
  let b = Bitbuf.create () in
  Bitbuf.add_run b true 100;
  Bitbuf.add_run b false 70;
  Bitbuf.add_run b true 1;
  check_int "length" 171 (Bitbuf.length b);
  check_int "pop all" 101 (Bitbuf.pop_count b 0 171);
  check_int "pop ones run" 100 (Bitbuf.pop_count b 0 100);
  check_int "pop zeros run" 0 (Bitbuf.pop_count b 100 70)

let test_bitbuf_pop_count () =
  let rng = Xoshiro.create 6 in
  let n = 2500 in
  let reference = Array.init n (fun _ -> Xoshiro.bool rng) in
  let b = Bitbuf.create () in
  Array.iter (Bitbuf.add b) reference;
  for _ = 1 to 300 do
    let len = Xoshiro.int rng (n + 1) in
    let pos = Xoshiro.int rng (n - len + 1) in
    let expected = ref 0 in
    for j = pos to pos + len - 1 do
      if reference.(j) then incr expected
    done;
    check_int "pop_count" !expected (Bitbuf.pop_count b pos len)
  done

let test_bitbuf_blit_truncate () =
  let a = Bitbuf.of_string "110100111000101" in
  let b = Bitbuf.of_string "01" in
  Bitbuf.blit a 3 b 7 (* bits 3..9 of a = "1001110" *);
  Alcotest.(check string) "blit" "011001110" (Bitbuf.to_string b);
  Bitbuf.truncate b 4;
  Alcotest.(check string) "truncate" "0110" (Bitbuf.to_string b);
  Bitbuf.add b true;
  Alcotest.(check string) "append after truncate" "01101" (Bitbuf.to_string b);
  let c = Bitbuf.copy b in
  Bitbuf.add c false;
  check_int "copy independent" 5 (Bitbuf.length b);
  check_int "copy extended" 6 (Bitbuf.length c);
  check_bool "equal no" false (Bitbuf.equal b c);
  check_bool "equal yes" true (Bitbuf.equal b (Bitbuf.copy b));
  Bitbuf.clear c;
  check_int "clear" 0 (Bitbuf.length c)

let test_bitbuf_of_to_string () =
  let s = "0110010111010001" in
  Alcotest.(check string) "roundtrip" s (Bitbuf.to_string (Bitbuf.of_string s));
  Alcotest.check_raises "bad char" (Invalid_argument "Bitbuf.of_string: bad character 'x'")
    (fun () -> ignore (Bitbuf.of_string "01x"))

(* ------------------------------------------------------------------ *)
(* Bit_io + Elias *)

let test_elias_gamma_roundtrip () =
  let w = Bit_io.Writer.create () in
  let values = List.init 1000 (fun i -> i + 1) in
  List.iter (Elias.write_gamma w) values;
  let r = Bit_io.Reader.create (Bit_io.Writer.buffer w) in
  List.iter (fun v -> check_int "gamma" v (Elias.read_gamma r)) values;
  check_bool "consumed" true (Bit_io.Reader.at_end r)

let test_elias_delta_roundtrip () =
  let w = Bit_io.Writer.create () in
  let rng = Xoshiro.create 11 in
  let values = List.init 500 (fun _ -> 1 + Xoshiro.int rng 1_000_000_000) in
  List.iter (Elias.write_delta w) values;
  let r = Bit_io.Reader.create (Bit_io.Writer.buffer w) in
  List.iter (fun v -> check_int "delta" v (Elias.read_delta r)) values;
  check_bool "consumed" true (Bit_io.Reader.at_end r)

let test_elias_lengths () =
  check_int "gamma_length 1" 1 (Elias.gamma_length 1);
  check_int "gamma_length 2" 3 (Elias.gamma_length 2);
  check_int "gamma_length 4" 5 (Elias.gamma_length 4);
  check_int "delta_length 1" 1 (Elias.delta_length 1);
  let rng = Xoshiro.create 12 in
  for _ = 1 to 200 do
    let v = 1 + Xoshiro.int rng 1_000_000 in
    let w = Bit_io.Writer.create () in
    Elias.write_gamma w v;
    check_int "gamma length matches" (Elias.gamma_length v) (Bit_io.Writer.pos w);
    let w = Bit_io.Writer.create () in
    Elias.write_delta w v;
    check_int "delta length matches" (Elias.delta_length v) (Bit_io.Writer.pos w)
  done

let test_elias_big_values () =
  (* Values near the top of the representable range. *)
  let values = [ max_int; max_int - 1; 1 lsl 61; (1 lsl 61) - 1 ] in
  List.iter
    (fun v ->
      let w = Bit_io.Writer.create () in
      Elias.write_delta w v;
      let r = Bit_io.Reader.create (Bit_io.Writer.buffer w) in
      check_int "delta big" v (Elias.read_delta r))
    values

let test_reader_seek_peek () =
  let w = Bit_io.Writer.create () in
  Bit_io.Writer.bits w 8 0b10110101;
  Bit_io.Writer.bit w true;
  check_int "writer pos" 9 (Bit_io.Writer.pos w);
  let r = Bit_io.Reader.create (Bit_io.Writer.buffer w) in
  check_bool "peek" true (Bit_io.Reader.peek_bit r);
  check_int "peek does not advance" 0 (Bit_io.Reader.pos r);
  check_int "bits" 0b0101 (Bit_io.Reader.bits r 4);
  check_int "pos after read" 4 (Bit_io.Reader.pos r);
  check_int "remaining" 5 (Bit_io.Reader.remaining r);
  Bit_io.Reader.seek r 8;
  check_bool "after seek" true (Bit_io.Reader.bit r);
  check_bool "at_end" true (Bit_io.Reader.at_end r);
  Alcotest.check_raises "bad seek" (Invalid_argument "Reader.seek")
    (fun () -> Bit_io.Reader.seek r 100)

(* ------------------------------------------------------------------ *)
(* Rle *)

let test_rle_of_to_bits () =
  let rng = Xoshiro.create 77 in
  for _ = 1 to 100 do
    let n = Xoshiro.int rng 500 in
    let bits = Array.init n (fun _ -> Xoshiro.int rng 10 < 7) in
    let runs = Rle.of_bits bits in
    Rle.check runs;
    check_int "total" n (Rle.total_bits runs);
    check_int "ones" (Array.fold_left (fun a b -> if b then a + 1 else a) 0 bits) (Rle.ones runs);
    Alcotest.(check (array bool)) "roundtrip" bits (Rle.to_bits runs)
  done

let test_rle_encode_decode () =
  let rng = Xoshiro.create 78 in
  for _ = 1 to 100 do
    let n = 1 + Xoshiro.int rng 800 in
    let bits = Array.init n (fun _ -> Xoshiro.int rng 10 < 2) in
    let runs = Rle.of_bits bits in
    let enc = Rle.encode runs in
    check_int "encoded_length" (Rle.encoded_length runs) (Bitbuf.length enc);
    let dec = Rle.decode ~total:n enc in
    Alcotest.(check (array bool)) "decode" bits (Rle.to_bits dec)
  done;
  let empty = Rle.decode ~total:0 (Bitbuf.create ()) in
  check_int "empty decode" 0 (Rle.total_bits empty)

(* ------------------------------------------------------------------ *)
(* Entropy *)

let test_entropy_h () =
  Alcotest.(check (float 1e-9)) "H(1/2)" 1.0 (Entropy.h 0.5);
  Alcotest.(check (float 1e-9)) "H(0)" 0.0 (Entropy.h 0.);
  Alcotest.(check (float 1e-9)) "H(1)" 0.0 (Entropy.h 1.);
  Alcotest.(check (float 1e-9)) "H(p)=H(1-p)" (Entropy.h 0.3) (Entropy.h 0.7)

let test_entropy_binomial () =
  Alcotest.(check (float 1e-9)) "C(n,0)" 0.0 (Entropy.binomial_bound 0 100);
  Alcotest.(check (float 1e-9)) "C(n,n)" 0.0 (Entropy.binomial_bound 100 100);
  Alcotest.(check (float 1e-6)) "C(4,2)=6" (Entropy.log2 6.) (Entropy.binomial_bound 2 4);
  Alcotest.(check (float 1e-6)) "C(10,3)=120" (Entropy.log2 120.) (Entropy.binomial_bound 3 10);
  (* B(m,n) <= nH(m/n) + O(1) *)
  let b = Entropy.binomial_bound 300 1000 in
  let nh = Entropy.bitvector_h0_bits ~ones:300 ~len:1000 in
  check_bool "B <= nH + 1" true (b <= nh +. 1.)

let test_entropy_counts () =
  let counts = Entropy.counts_of_list compare [ "a"; "b"; "a"; "c"; "a"; "b" ] in
  Array.sort compare counts;
  Alcotest.(check (array int)) "counts" [| 1; 2; 3 |] counts;
  let h0 = Entropy.h0_of_counts [| 1; 1; 1; 1 |] in
  Alcotest.(check (float 1e-9)) "uniform4" 2.0 h0;
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Entropy.h0_of_counts [||]);
  Alcotest.(check (float 1e-9)) "seq bits" 8.0 (Entropy.sequence_h0_bits [| 1; 1; 1; 1 |])

(* ------------------------------------------------------------------ *)
(* Xoshiro *)

let test_xoshiro_determinism () =
  let a = Xoshiro.create 33 and b = Xoshiro.create 33 in
  for _ = 1 to 100 do
    check_int "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done;
  let c = Xoshiro.create 34 in
  check_bool "different seed different stream" true (Xoshiro.next a <> Xoshiro.next c)

let test_xoshiro_ranges () =
  let rng = Xoshiro.create 55 in
  for _ = 1 to 1000 do
    let v = Xoshiro.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17);
    let o = Xoshiro.odd rng ~bits:20 in
    check_bool "odd" true (o land 1 = 1 && o < 1 lsl 20);
    let f = Xoshiro.float rng in
    check_bool "unit float" true (f >= 0. && f < 1.)
  done;
  check_bool "next non-negative" true (Xoshiro.next rng >= 0)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"bitbuf get_bits/set_bits roundtrip" ~count:300
      (triple (int_bound 61) (int_bound 100) (list_of_size (Gen.return 200) bool))
      (fun (len0, pos0, bits) ->
        let len = max 1 len0 in
        let bits = Array.of_list bits in
        assume (Array.length bits >= pos0 + len);
        let b = Bitbuf.create () in
        Array.iter (Bitbuf.add b) bits;
        let v = Bitbuf.get_bits b pos0 len in
        Bitbuf.set_bits b pos0 len v;
        (* rewriting the same value is the identity *)
        Array.for_all (fun x -> x = true || x = false) bits
        && Bitbuf.to_string b
           = String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0'));
    Test.make ~name:"elias gamma roundtrip" ~count:500
      (int_range 1 1_000_000_000)
      (fun v ->
        let w = Bit_io.Writer.create () in
        Elias.write_gamma w v;
        let r = Bit_io.Reader.create (Bit_io.Writer.buffer w) in
        Elias.read_gamma r = v);
    Test.make ~name:"rle encode/decode identity" ~count:200
      (list_of_size Gen.(int_range 0 300) bool)
      (fun bits ->
        let bits = Array.of_list bits in
        let runs = Rle.of_bits bits in
        let dec = Rle.decode ~total:(Array.length bits) (Rle.encode runs) in
        Rle.to_bits dec = bits);
    Test.make ~name:"popcount sum over halves" ~count:500 (pair small_nat small_nat)
      (fun (a, b) ->
        Broadword.popcount ((a land 0xFFFF) lor ((b land 0xFFFF) lsl 16))
        = Broadword.popcount (a land 0xFFFF) + Broadword.popcount (b land 0xFFFF));
  ]

let () =
  Alcotest.run "wt_bits"
    [
      ( "broadword",
        [
          Alcotest.test_case "popcount small" `Quick test_popcount_small;
          Alcotest.test_case "popcount random" `Quick test_popcount_random;
          Alcotest.test_case "select_in_word" `Quick test_select_in_word;
          Alcotest.test_case "select0_in_word" `Quick test_select0_in_word;
          Alcotest.test_case "highest/lowest bit" `Quick test_highest_lowest;
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "reverse_bits" `Quick test_reverse_bits;
        ] );
      ( "bitbuf",
        [
          Alcotest.test_case "basic" `Quick test_bitbuf_basic;
          Alcotest.test_case "random bits" `Quick test_bitbuf_random_bits;
          Alcotest.test_case "set_bits" `Quick test_bitbuf_set_bits;
          Alcotest.test_case "add_bits roundtrip" `Quick test_bitbuf_add_bits_roundtrip;
          Alcotest.test_case "add_run" `Quick test_bitbuf_add_run;
          Alcotest.test_case "pop_count" `Quick test_bitbuf_pop_count;
          Alcotest.test_case "blit/truncate/copy" `Quick test_bitbuf_blit_truncate;
          Alcotest.test_case "of/to string" `Quick test_bitbuf_of_to_string;
        ] );
      ( "elias",
        [
          Alcotest.test_case "gamma roundtrip" `Quick test_elias_gamma_roundtrip;
          Alcotest.test_case "delta roundtrip" `Quick test_elias_delta_roundtrip;
          Alcotest.test_case "code lengths" `Quick test_elias_lengths;
          Alcotest.test_case "big values" `Quick test_elias_big_values;
        ] );
      ( "bit_io",
        [ Alcotest.test_case "reader seek/peek" `Quick test_reader_seek_peek ] );
      ( "rle",
        [
          Alcotest.test_case "of/to bits" `Quick test_rle_of_to_bits;
          Alcotest.test_case "encode/decode" `Quick test_rle_encode_decode;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "binary entropy" `Quick test_entropy_h;
          Alcotest.test_case "binomial bound" `Quick test_entropy_binomial;
          Alcotest.test_case "counts" `Quick test_entropy_counts;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "determinism" `Quick test_xoshiro_determinism;
          Alcotest.test_case "ranges" `Quick test_xoshiro_ranges;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
