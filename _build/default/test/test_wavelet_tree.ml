(* Tests for wt_wavelet_tree: the classic levelwise Wavelet Tree (with the
   Figure 1 golden test realized as a Wavelet Trie, as the paper
   describes), the Huffman-shaped variant, and the fixed-alphabet dynamic
   baseline. *)

module Bitstring = Wt_strings.Bitstring
module Xoshiro = Wt_bits.Xoshiro
module WT = Wt_wavelet_tree.Wavelet_tree
module Huffman_wt = Wt_wavelet_tree.Huffman_wt
module Dyn_wavelet_tree = Wt_wavelet_tree.Dyn_wavelet_tree
module Wavelet_trie = Wt_core.Wavelet_trie

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Figure 1: the Wavelet Tree of "abracadabra" over {a,b,c,d,r} with the
   alphabet partition {a,b} | {c}{d,r}.  As Section 3 notes, this tree is
   the Wavelet Trie under the symbol mapping a=00 b=01 c=10 d=110 r=111. *)

let test_figure1 () =
  let code = function
    | 'a' -> "00"
    | 'b' -> "01"
    | 'c' -> "10"
    | 'd' -> "110"
    | 'r' -> "111"
    | _ -> assert false
  in
  let seq =
    List.map
      (fun c -> Bitstring.of_string (code c))
      (List.init 11 (String.get "abracadabra"))
  in
  let wt = Wavelet_trie.of_list seq in
  let expected =
    [
      (* Labels are all empty: the code tree branches at every node, so
         path compression never absorbs bits; the bitvectors are exactly
         those of Figure 1. *)
      ("", Some "00101010010"); (* root: {a,b} vs {c,d,r} *)
      ("", Some "0100010"); (* abaaaba: a vs b *)
      ("", None); (* a *)
      ("", None); (* b *)
      ("", Some "1011"); (* rcdr: c vs {d,r} *)
      ("", None); (* c *)
      ("", Some "101"); (* rdr: d vs r *)
      ("", None); (* d *)
      ("", None); (* r *)
    ]
  in
  Alcotest.(check (list (pair string (option string))))
    "figure 1 bitvectors" expected (Wavelet_trie.dump wt)

(* ------------------------------------------------------------------ *)
(* Levelwise Wavelet Tree vs naive *)

let naive_rank a sym pos =
  let c = ref 0 in
  for i = 0 to pos - 1 do
    if a.(i) = sym then incr c
  done;
  !c

let naive_select a sym idx =
  let seen = ref 0 in
  let res = ref None in
  Array.iteri
    (fun i x ->
      if x = sym && !res = None then begin
        if !seen = idx then res := Some i;
        incr seen
      end)
    a;
  !res

let naive_range_count a lo hi sym_lo sym_hi =
  let c = ref 0 in
  for i = lo to hi - 1 do
    if a.(i) >= sym_lo && a.(i) < sym_hi then incr c
  done;
  !c

module type WT_S = sig
  type t

  val of_array : sigma:int -> int array -> t
  val length : t -> int
  val access : t -> int -> int
  val rank : t -> int -> int -> int
  val select : t -> int -> int -> int option
  val range_count : t -> lo:int -> hi:int -> sym_lo:int -> sym_hi:int -> int
end

let exercise_wt name (module M : WT_S) =
  let rng = Xoshiro.create 313 in
  List.iter
    (fun (sigma, n) ->
      let a = Array.init n (fun _ -> Xoshiro.int rng sigma) in
      let wt = M.of_array ~sigma a in
      check_int (name ^ " length") n (M.length wt);
      for pos = 0 to min (n - 1) 200 do
        check_int (name ^ " access") a.(pos) (M.access wt pos)
      done;
      for _ = 1 to 200 do
        let sym = Xoshiro.int rng sigma in
        let pos = Xoshiro.int rng (n + 1) in
        check_int (name ^ " rank") (naive_rank a sym pos) (M.rank wt sym pos);
        let idx = Xoshiro.int rng (max 1 (n / max 1 sigma * 2)) in
        Alcotest.(check (option int))
          (name ^ " select") (naive_select a sym idx) (M.select wt sym idx);
        let lo = Xoshiro.int rng (n + 1) in
        let hi = lo + Xoshiro.int rng (n - lo + 1) in
        let slo = Xoshiro.int rng (sigma + 1) in
        let shi = slo + Xoshiro.int rng (sigma - slo + 1) in
        check_int (name ^ " range_count")
          (naive_range_count a lo hi slo shi)
          (M.range_count wt ~lo ~hi ~sym_lo:slo ~sym_hi:shi)
      done)
    [ (1, 10); (2, 100); (5, 200); (16, 500); (100, 800); (257, 1000) ]

let test_wt_plain () = exercise_wt "plain" (module WT.Over_plain)
let test_wt_rrr () = exercise_wt "rrr" (module WT.Over_rrr)

let test_wt_range_quantile () =
  let rng = Xoshiro.create 414 in
  List.iter
    (fun (sigma, n) ->
      let a = Array.init n (fun _ -> Xoshiro.int rng sigma) in
      let wt = WT.Over_plain.of_array ~sigma a in
      for _ = 1 to 200 do
        let lo = Xoshiro.int rng n in
        let hi = lo + 1 + Xoshiro.int rng (n - lo) in
        let sorted = Array.sub a lo (hi - lo) in
        Array.sort compare sorted;
        let k = Xoshiro.int rng (hi - lo) in
        check_int "quantile" sorted.(k) (WT.Over_plain.range_quantile wt ~lo ~hi k)
      done)
    [ (2, 50); (7, 300); (64, 800) ]

let test_wt_levels () =
  let wt = WT.Over_plain.of_array ~sigma:4 [| 0; 1; 2; 3; 0; 2 |] in
  check_int "levels" 2 (WT.Over_plain.levels wt);
  (* level 0 = MSB: 0,0,1,1,0,1 *)
  Alcotest.(check string) "level 0" "001101" (WT.Over_plain.level_bits wt 0);
  (* level 1 after in-place refinement: zeros block (0,1,0) then ones
     block (2,3,2): LSBs 0,1,0 then 0,1,0 *)
  Alcotest.(check string) "level 1" "010010" (WT.Over_plain.level_bits wt 1)

let test_wt_empty_and_constant () =
  let wt = WT.Over_plain.of_array ~sigma:5 [||] in
  check_int "empty" 0 (WT.Over_plain.length wt);
  check_int "rank empty" 0 (WT.Over_plain.rank wt 3 0);
  let wt = WT.Over_plain.of_array ~sigma:1 [| 0; 0; 0 |] in
  check_int "sigma 1 access" 0 (WT.Over_plain.access wt 1);
  check_int "sigma 1 rank" 3 (WT.Over_plain.rank wt 0 3);
  Alcotest.(check (option int)) "sigma 1 select" (Some 2) (WT.Over_plain.select wt 0 2)

(* ------------------------------------------------------------------ *)
(* Huffman-shaped *)

let test_huffman_vs_naive () =
  let rng = Xoshiro.create 515 in
  (* skewed distribution *)
  let sigma = 32 in
  let zipf = Wt_workload.Zipf.create sigma in
  let a = Array.init 2000 (fun _ -> Wt_workload.Zipf.sample zipf rng) in
  let h = Huffman_wt.of_array ~sigma a in
  check_int "length" 2000 (Huffman_wt.length h);
  for pos = 0 to 199 do
    check_int "access" a.(pos) (Huffman_wt.access h pos)
  done;
  for _ = 1 to 300 do
    let sym = Xoshiro.int rng sigma in
    let pos = Xoshiro.int rng 2001 in
    check_int "rank" (naive_rank a sym pos) (Huffman_wt.rank h sym pos);
    let idx = Xoshiro.int rng 100 in
    Alcotest.(check (option int)) "select" (naive_select a sym idx) (Huffman_wt.select h sym idx)
  done

let test_huffman_depth_near_entropy () =
  let rng = Xoshiro.create 616 in
  let sigma = 64 in
  let zipf = Wt_workload.Zipf.create ~s:1.4 sigma in
  let a = Array.init 20_000 (fun _ -> Wt_workload.Zipf.sample zipf rng) in
  let h = Huffman_wt.of_array ~sigma a in
  let freqs = Array.make sigma 0 in
  Array.iter (fun x -> freqs.(x) <- freqs.(x) + 1) a;
  let h0 = Wt_bits.Entropy.h0_of_counts freqs in
  let avg = Huffman_wt.avg_code_length h in
  (* Huffman: H0 <= avg < H0 + 1 *)
  check_bool
    (Printf.sprintf "H0 %.3f <= avg code %.3f < H0+1" h0 avg)
    true
    (h0 <= avg +. 1e-9 && avg < h0 +. 1.);
  (* far below the balanced log sigma *)
  check_bool "beats balanced depth" true (avg < 6.)

let test_huffman_single_symbol () =
  let h = Huffman_wt.of_array ~sigma:5 (Array.make 50 3) in
  check_int "access" 3 (Huffman_wt.access h 10);
  check_int "rank" 50 (Huffman_wt.rank h 3 50);
  Alcotest.(check (option int)) "select" (Some 49) (Huffman_wt.select h 3 49);
  check_bool "1-bit code" true
    (match Huffman_wt.code_of h 3 with
    | Some c -> Bitstring.length c = 1
    | None -> false)

let test_huffman_absent_symbol () =
  let h = Huffman_wt.of_array ~sigma:10 [| 1; 1; 2 |] in
  check_int "rank of absent" 0 (Huffman_wt.rank h 7 3);
  Alcotest.(check (option int)) "select of absent" None (Huffman_wt.select h 7 0);
  Alcotest.(check (option int)) "code of absent" None
    (Option.map (fun _ -> 0) (Huffman_wt.code_of h 7))

(* ------------------------------------------------------------------ *)
(* Fixed-alphabet dynamic WT *)

let test_dyn_wt_vs_naive () =
  let rng = Xoshiro.create 717 in
  let sigma = 20 in
  let wt = Dyn_wavelet_tree.create ~sigma in
  let model = ref [] in
  let m_insert pos x =
    let rec go i = function
      | rest when i = pos -> x :: rest
      | [] -> assert false
      | y :: r -> y :: go (i + 1) r
    in
    model := go 0 !model
  in
  for step = 1 to 2000 do
    let n = List.length !model in
    if Xoshiro.int rng 3 > 0 || n = 0 then begin
      let x = Xoshiro.int rng sigma in
      let pos = Xoshiro.int rng (n + 1) in
      m_insert pos x;
      Dyn_wavelet_tree.insert wt pos x
    end
    else begin
      let pos = Xoshiro.int rng n in
      model := List.filteri (fun i _ -> i <> pos) !model;
      Dyn_wavelet_tree.delete wt pos
    end;
    if step mod 250 = 0 then begin
      Dyn_wavelet_tree.check_invariants wt;
      let a = Array.of_list !model in
      let n = Array.length a in
      check_int "length" n (Dyn_wavelet_tree.length wt);
      for _ = 1 to 40 do
        if n > 0 then begin
          let pos = Xoshiro.int rng n in
          check_int "access" a.(pos) (Dyn_wavelet_tree.access wt pos)
        end;
        let sym = Xoshiro.int rng sigma in
        let pos = Xoshiro.int rng (n + 1) in
        check_int "rank" (naive_rank a sym pos) (Dyn_wavelet_tree.rank wt sym pos);
        let idx = Xoshiro.int rng 20 in
        Alcotest.(check (option int))
          "select idx" (naive_select a sym idx)
          (Dyn_wavelet_tree.select wt sym idx)
      done
    end
  done

let test_dyn_wt_fixed_alphabet_error () =
  let wt = Dyn_wavelet_tree.create ~sigma:4 in
  Alcotest.check_raises "outside alphabet"
    (Invalid_argument "Dyn_wavelet_tree.insert: symbol outside the fixed alphabet")
    (fun () -> Dyn_wavelet_tree.append wt 4)

(* ------------------------------------------------------------------ *)
(* Dictionary-mapped baseline (related-work approach (1)) *)

module Dict_sequence = Wt_wavelet_tree.Dict_sequence
module Binarize = Wt_strings.Binarize
module Naive = Wt_core.Indexed_sequence.Naive

let test_dict_vs_naive () =
  let rng = Xoshiro.create 818 in
  let words = [| "a"; "ab"; "abc"; "b"; "ba"; "bc"; "c" |] in
  let seq =
    Array.init 400 (fun _ -> Binarize.of_bytes words.(Xoshiro.int rng (Array.length words)))
  in
  let oracle = Naive.of_array seq in
  let d = Dict_sequence.of_array seq in
  check_int "length" 400 (Dict_sequence.length d);
  check_int "distinct" (Naive.distinct_count oracle) (Dict_sequence.distinct_count d);
  for _ = 1 to 300 do
    let pos = Xoshiro.int rng 400 in
    check_bool "access" true
      (Bitstring.equal (Naive.access oracle pos) (Dict_sequence.access d pos));
    let s = seq.(Xoshiro.int rng 400) in
    let pos = Xoshiro.int rng 401 in
    check_int "rank" (Naive.rank oracle s pos) (Dict_sequence.rank d s pos);
    let idx = Xoshiro.int rng 60 in
    Alcotest.(check (option int)) "select" (Naive.select oracle s idx)
      (Dict_sequence.select d s idx);
    (* prefix ops through the lexicographic mapping *)
    let w = words.(Xoshiro.int rng (Array.length words)) in
    let e = Binarize.of_bytes w in
    let p = Bitstring.prefix e (Bitstring.length e - 1) in
    check_int "rank_prefix" (Naive.rank_prefix oracle p pos) (Dict_sequence.rank_prefix d p pos);
    let idx = Xoshiro.int rng 20 in
    Alcotest.(check (option int))
      "select_prefix" (Naive.select_prefix oracle p idx)
      (Dict_sequence.select_prefix d p idx)
  done

let test_dict_absent () =
  let d = Dict_sequence.of_array [| Binarize.of_bytes "x"; Binarize.of_bytes "y" |] in
  check_int "rank absent" 0 (Dict_sequence.rank d (Binarize.of_bytes "z") 2);
  Alcotest.(check (option int)) "select absent" None (Dict_sequence.select d (Binarize.of_bytes "z") 0);
  let p = Binarize.of_bytes "z" in
  let p = Bitstring.prefix p (Bitstring.length p - 1) in
  check_int "rank_prefix absent" 0 (Dict_sequence.rank_prefix d p 2);
  Alcotest.(check (option int)) "select_prefix absent" None (Dict_sequence.select_prefix d p 0)

let () =
  Alcotest.run "wt_wavelet_tree"
    [
      ("figure1", [ Alcotest.test_case "abracadabra" `Quick test_figure1 ]);
      ( "levelwise",
        [
          Alcotest.test_case "plain vs naive" `Quick test_wt_plain;
          Alcotest.test_case "rrr vs naive" `Quick test_wt_rrr;
          Alcotest.test_case "range quantile" `Quick test_wt_range_quantile;
          Alcotest.test_case "level layout" `Quick test_wt_levels;
          Alcotest.test_case "empty/constant" `Quick test_wt_empty_and_constant;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "vs naive" `Quick test_huffman_vs_naive;
          Alcotest.test_case "depth near entropy" `Quick test_huffman_depth_near_entropy;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "absent symbols" `Quick test_huffman_absent_symbol;
        ] );
      ( "dynamic fixed-alphabet",
        [
          Alcotest.test_case "vs naive" `Quick test_dyn_wt_vs_naive;
          Alcotest.test_case "alphabet is fixed" `Quick test_dyn_wt_fixed_alphabet_error;
        ] );
      ( "dict-mapped baseline",
        [
          Alcotest.test_case "vs naive (incl. prefix ops)" `Quick test_dict_vs_naive;
          Alcotest.test_case "absent strings" `Quick test_dict_absent;
        ] );
    ]
