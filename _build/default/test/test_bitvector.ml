(* Tests for wt_bitvector: every implementation is validated against a
   naive reference model on random and adversarial bit sequences. *)

module Bitbuf = Wt_bits.Bitbuf
module Xoshiro = Wt_bits.Xoshiro
module Plain = Wt_bitvector.Plain
module Rrr = Wt_bitvector.Rrr
module Appendable = Wt_bitvector.Appendable
module Dyn_rle = Wt_bitvector.Dyn_rle
module Dyn_gap = Wt_bitvector.Dyn_gap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Reference model *)

module Model = struct
  type t = { mutable bits : bool array }

  let create () = { bits = [||] }
  let of_array bits = { bits = Array.copy bits }
  let length t = Array.length t.bits
  let access t pos = t.bits.(pos)

  let rank t b pos =
    let acc = ref 0 in
    for i = 0 to pos - 1 do
      if t.bits.(i) = b then incr acc
    done;
    !acc

  let select t b k =
    let seen = ref 0 in
    let res = ref (-1) in
    Array.iteri
      (fun i bit ->
        if bit = b then begin
          if !seen = k && !res < 0 then res := i;
          incr seen
        end)
      t.bits;
    if !res < 0 then raise Not_found else !res

  let count t b = rank t b (length t)

  let insert t pos b =
    let n = Array.length t.bits in
    let out = Array.make (n + 1) false in
    Array.blit t.bits 0 out 0 pos;
    out.(pos) <- b;
    Array.blit t.bits pos out (pos + 1) (n - pos);
    t.bits <- out

  let delete t pos =
    let n = Array.length t.bits in
    let out = Array.make (n - 1) false in
    Array.blit t.bits 0 out 0 pos;
    Array.blit t.bits (pos + 1) out pos (n - 1 - pos);
    t.bits <- out

  let append t b = insert t (Array.length t.bits) b
end

(* Interesting bit distributions, including the adversarial ones for the
   compressed encodings: very sparse, very dense, long runs. *)
let patterns rng n =
  [
    ("uniform", Array.init n (fun _ -> Xoshiro.bool rng));
    ("sparse", Array.init n (fun _ -> Xoshiro.int rng 64 = 0));
    ("dense", Array.init n (fun _ -> Xoshiro.int rng 64 <> 0));
    ("all-zero", Array.make n false);
    ("all-one", Array.make n true);
    ( "runs",
      let bits = Array.make n false in
      let i = ref 0 in
      let b = ref false in
      while !i < n do
        let run = 1 + Xoshiro.int rng 200 in
        for j = !i to min (n - 1) (!i + run - 1) do
          bits.(j) <- !b
        done;
        i := !i + run;
        b := not !b
      done;
      bits );
    ("alternating", Array.init n (fun i -> i land 1 = 0));
  ]

(* Full agreement check between a static implementation and the model. *)
let agree ~name ~access ~rank ~select ~length ~rng model =
  let n = Model.length model in
  check_int (name ^ " length") n (length ());
  (* all positions for small inputs, random sample for large *)
  let positions =
    if n <= 300 then List.init n Fun.id
    else List.init 300 (fun _ -> Xoshiro.int rng n)
  in
  List.iter
    (fun pos ->
      check_bool (name ^ " access") (Model.access model pos) (access pos);
      check_int (name ^ " rank1") (Model.rank model true pos) (rank true pos);
      check_int (name ^ " rank0") (Model.rank model false pos) (rank false pos))
    positions;
  check_int (name ^ " rank1 end") (Model.count model true) (rank true n);
  check_int (name ^ " rank0 end") (Model.count model false) (rank false n);
  List.iter
    (fun b ->
      let total = Model.count model b in
      let idxs =
        if total = 0 then []
        else if total <= 100 then List.init total Fun.id
        else List.init 100 (fun _ -> Xoshiro.int rng total)
      in
      List.iter
        (fun k -> check_int (name ^ " select") (Model.select model b k) (select b k))
        idxs)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Plain *)

let test_plain_patterns () =
  let rng = Xoshiro.create 101 in
  List.iter
    (fun n ->
      List.iter
        (fun (pname, bits) ->
          let model = Model.of_array bits in
          let buf = Bitbuf.create () in
          Array.iter (Bitbuf.add buf) bits;
          let bv = Plain.of_bitbuf buf in
          agree
            ~name:(Printf.sprintf "plain/%s/%d" pname n)
            ~access:(Plain.access bv) ~rank:(Plain.rank bv) ~select:(Plain.select bv)
            ~length:(fun () -> Plain.length bv)
            ~rng model;
          check_int "ones" (Model.count model true) (Plain.ones bv);
          check_int "zeros" (Model.count model false) (Plain.zeros bv))
        (patterns rng n))
    [ 0; 1; 2; 55; 56; 57; 447; 448; 449; 1000; 5000 ]

let test_plain_bounds () =
  let bv = Plain.of_string "0110" in
  Alcotest.check_raises "access -1" (Invalid_argument "Plain.access: position -1 out of [0, 4)")
    (fun () -> ignore (Plain.access bv (-1)));
  Alcotest.check_raises "rank 5" (Invalid_argument "Plain.rank: position 5 out of [0, 4]")
    (fun () -> ignore (Plain.rank bv true 5));
  Alcotest.check_raises "select 2" (Invalid_argument "Plain.select: index 2 out of [0, 2)")
    (fun () -> ignore (Plain.select bv true 2))

(* ------------------------------------------------------------------ *)
(* Rrr *)

let test_rrr_patterns () =
  let rng = Xoshiro.create 202 in
  List.iter
    (fun n ->
      List.iter
        (fun (pname, bits) ->
          let model = Model.of_array bits in
          let buf = Bitbuf.create () in
          Array.iter (Bitbuf.add buf) bits;
          let bv = Rrr.of_bitbuf buf in
          agree
            ~name:(Printf.sprintf "rrr/%s/%d" pname n)
            ~access:(Rrr.access bv) ~rank:(Rrr.rank bv) ~select:(Rrr.select bv)
            ~length:(fun () -> Rrr.length bv)
            ~rng model;
          (* decoding gives back the input *)
          check_bool "roundtrip" true (Bitbuf.equal buf (Rrr.to_bitbuf bv)))
        (patterns rng n))
    [ 0; 1; 61; 62; 63; 991; 992; 993; 3000 ]

let test_rrr_compression () =
  (* A sparse bitvector must compress far below its plain length. *)
  let n = 100_000 in
  let rng = Xoshiro.create 7 in
  let buf = Bitbuf.create () in
  for _ = 1 to n do
    Bitbuf.add buf (Xoshiro.int rng 100 = 0)
  done;
  let bv = Rrr.of_bitbuf buf in
  let h0 = Wt_bits.Entropy.bitvector_h0_bits ~ones:(Rrr.ones bv) ~len:n in
  let space = float_of_int (Rrr.space_bits bv) in
  check_bool
    (Printf.sprintf "space %.0f within 4x of entropy %.0f and below plain %d" space h0 n)
    true
    (space < float_of_int n *. 0.75 && space < 4. *. h0 +. 10_000.)

let test_rrr_iterator () =
  let rng = Xoshiro.create 303 in
  List.iter
    (fun n ->
      let bits = Array.init n (fun _ -> Xoshiro.int rng 10 < 3) in
      let buf = Bitbuf.create () in
      Array.iter (Bitbuf.add buf) bits;
      let bv = Rrr.of_bitbuf buf in
      (* from 0 *)
      let it = Rrr.Iter.create bv 0 in
      Array.iteri
        (fun i b ->
          check_bool "has_next" true (Rrr.Iter.has_next it);
          check_int "iter pos" i (Rrr.Iter.pos it);
          check_bool "iter bit" b (Rrr.Iter.next it))
        bits;
      check_bool "exhausted" false (Rrr.Iter.has_next it);
      (* from random positions *)
      for _ = 1 to 20 do
        let start = Xoshiro.int rng (n + 1) in
        let it = Rrr.Iter.create bv start in
        for i = start to min (n - 1) (start + 100) do
          check_bool "iter bit from start" bits.(i) (Rrr.Iter.next it)
        done
      done)
    [ 1; 62; 200; 2000 ]

(* ------------------------------------------------------------------ *)
(* Appendable *)

let test_appendable_incremental () =
  let rng = Xoshiro.create 404 in
  let model = Model.create () in
  let bv = Appendable.create () in
  (* Append enough to cross several segment boundaries (seg = 4096). *)
  for i = 0 to 13_000 do
    let b = Xoshiro.int rng 5 = 0 in
    Model.append model b;
    Appendable.append bv b;
    if i mod 1379 = 0 then begin
      Appendable.check_invariants bv;
      agree
        ~name:(Printf.sprintf "appendable@%d" i)
        ~access:(Appendable.access bv) ~rank:(Appendable.rank bv)
        ~select:(Appendable.select bv)
        ~length:(fun () -> Appendable.length bv)
        ~rng model
    end
  done;
  Appendable.check_invariants bv

let test_appendable_init_offset () =
  let rng = Xoshiro.create 405 in
  List.iter
    (fun (b0, off) ->
      let model = Model.create () in
      for _ = 1 to off do
        Model.append model b0
      done;
      let bv = Appendable.init b0 off in
      check_bool "constant" true (Appendable.is_constant bv);
      for _ = 1 to 5000 do
        let b = Xoshiro.bool rng in
        Model.append model b;
        Appendable.append bv b
      done;
      Appendable.check_invariants bv;
      agree
        ~name:(Printf.sprintf "appendable-init(%b,%d)" b0 off)
        ~access:(Appendable.access bv) ~rank:(Appendable.rank bv)
        ~select:(Appendable.select bv)
        ~length:(fun () -> Appendable.length bv)
        ~rng model)
    [ (false, 1); (true, 1); (false, 777); (true, 777); (true, 10_000); (false, 0) ]

let test_appendable_pending_window () =
  (* Immediately after a segment boundary, the segment's RRR encoding is
     still under construction (the Section 4.1 de-amortization): queries
     in that window must be served correctly from the raw bits. *)
  let rng = Xoshiro.create 909 in
  let model = Model.create () in
  let bv = Appendable.create () in
  for _ = 1 to 4096 do
    let b = Xoshiro.int rng 3 = 0 in
    Model.append model b;
    Appendable.append bv b
  done;
  (* right at the boundary: one full pending segment, empty tail *)
  Appendable.check_invariants bv;
  agree ~name:"pending@boundary" ~access:(Appendable.access bv)
    ~rank:(Appendable.rank bv) ~select:(Appendable.select bv)
    ~length:(fun () -> Appendable.length bv)
    ~rng model;
  (* every single append through the construction window *)
  for i = 1 to 80 do
    let b = Xoshiro.bool rng in
    Model.append model b;
    Appendable.append bv b;
    Appendable.check_invariants bv;
    if i mod 7 = 0 then
      agree
        ~name:(Printf.sprintf "pending+%d" i)
        ~access:(Appendable.access bv) ~rank:(Appendable.rank bv)
        ~select:(Appendable.select bv)
        ~length:(fun () -> Appendable.length bv)
        ~rng model
  done;
  (* access_rank coherence inside and around the pending region *)
  for pos = 4050 to min (Appendable.length bv - 1) 4176 do
    let b, r = Appendable.access_rank bv pos in
    check_bool "ar bit" (Appendable.access bv pos) b;
    check_int "ar rank" (Appendable.rank bv b pos) r
  done

let test_appendable_iterator () =
  let rng = Xoshiro.create 406 in
  let bits = Array.init 9000 (fun _ -> Xoshiro.int rng 3 = 0) in
  let buf = Bitbuf.create () in
  Array.iter (Bitbuf.add buf) bits;
  let bv = Appendable.of_bitbuf buf in
  let it = Appendable.Iter.create bv 0 in
  Array.iteri (fun i b -> check_bool (string_of_int i) b (Appendable.Iter.next it)) bits;
  check_bool "end" false (Appendable.Iter.has_next it);
  (* with an init offset *)
  let bv = Appendable.init true 100 in
  Array.iter (Appendable.append bv) bits;
  let it = Appendable.Iter.create bv 0 in
  for _ = 1 to 100 do
    check_bool "offset bit" true (Appendable.Iter.next it)
  done;
  Array.iter (fun b -> check_bool "body bit" b (Appendable.Iter.next it)) bits

(* ------------------------------------------------------------------ *)
(* Dynamic bitvectors (shared scenarios over both codecs) *)

module type DYN = sig
  include Wt_bitvector.Chunk_tree.S
end

let dyn_random_ops (module D : DYN) codec_name seed =
  let rng = Xoshiro.create seed in
  let model = Model.create () in
  let bv = D.create () in
  for step = 1 to 4000 do
    let n = Model.length model in
    let choice = Xoshiro.int rng 10 in
    if choice < 5 || n = 0 then begin
      (* biased towards runs to exercise run merging *)
      let b = Xoshiro.int rng 4 < 3 in
      let pos = Xoshiro.int rng (n + 1) in
      Model.insert model pos b;
      D.insert bv pos b
    end
    else if choice < 7 then begin
      let pos = Xoshiro.int rng n in
      Model.delete model pos;
      D.delete bv pos
    end
    else begin
      let b = Xoshiro.bool rng in
      Model.append model b;
      D.append bv b
    end;
    if step mod 500 = 0 then begin
      D.check_invariants bv;
      agree
        ~name:(Printf.sprintf "%s@%d" codec_name step)
        ~access:(D.access bv) ~rank:(D.rank bv) ~select:(D.select bv)
        ~length:(fun () -> D.length bv)
        ~rng model
    end
  done;
  D.check_invariants bv

let dyn_init (module D : DYN) codec_name =
  List.iter
    (fun (b, n) ->
      let bv = D.init b n in
      check_int (codec_name ^ " init length") n (D.length bv);
      check_int (codec_name ^ " init ones") (if b then n else 0) (D.ones bv);
      check_bool (codec_name ^ " constant") true (D.is_constant bv);
      D.check_invariants bv;
      if n > 0 then begin
        check_bool "first" b (D.access bv 0);
        check_bool "last" b (D.access bv (n - 1));
        check_int "rank mid" (if b then n / 2 else 0) (D.rank bv true (n / 2))
      end)
    [ (false, 0); (true, 0); (false, 1); (true, 1); (false, 100_000); (true, 100_000) ]

let dyn_bulk (module D : DYN) codec_name seed =
  let rng = Xoshiro.create seed in
  List.iter
    (fun n ->
      List.iter
        (fun (pname, bits) ->
          let model = Model.of_array bits in
          let bv = D.of_bits bits in
          D.check_invariants bv;
          agree
            ~name:(Printf.sprintf "%s/%s/%d" codec_name pname n)
            ~access:(D.access bv) ~rank:(D.rank bv) ~select:(D.select bv)
            ~length:(fun () -> D.length bv)
            ~rng model)
        (patterns rng n))
    [ 0; 1; 2; 100; 2048 ]

let dyn_delete_to_empty (module D : DYN) _codec_name seed =
  let rng = Xoshiro.create seed in
  let bits = Array.init 500 (fun _ -> Xoshiro.bool rng) in
  let model = Model.of_array bits in
  let bv = D.of_bits bits in
  while D.length bv > 0 do
    let pos = Xoshiro.int rng (D.length bv) in
    Model.delete model pos;
    D.delete bv pos;
    D.check_invariants bv;
    if D.length bv > 0 then begin
      let p = Xoshiro.int rng (D.length bv) in
      check_bool "access after delete" (Model.access model p) (D.access bv p)
    end
  done;
  check_int "empty" 0 (D.length bv)

let dyn_iterator (module D : DYN) codec_name seed =
  let rng = Xoshiro.create seed in
  let bits = Array.init 3000 (fun _ -> Xoshiro.int rng 4 = 0) in
  let bv = D.of_bits bits in
  let it = D.Iter.create bv 0 in
  Array.iteri
    (fun i b -> check_bool (Printf.sprintf "%s iter %d" codec_name i) b (D.Iter.next it))
    bits;
  check_bool "end" false (D.Iter.has_next it);
  for _ = 1 to 20 do
    let start = Xoshiro.int rng (Array.length bits + 1) in
    let it = D.Iter.create bv start in
    for i = start to min (Array.length bits - 1) (start + 64) do
      check_bool "iter from start" bits.(i) (D.Iter.next it)
    done
  done

let dyn_leaf_count (module D : DYN) codec_name =
  (* Leaf count must stay proportional to content, not operation count:
     insert many then delete most, and check the tree shrank. *)
  let bv = D.create () in
  let rng = Xoshiro.create 17 in
  for _ = 1 to 20_000 do
    D.insert bv (Xoshiro.int rng (D.length bv + 1)) (Xoshiro.bool rng)
  done;
  let full = D.leaf_count bv in
  for _ = 1 to 19_900 do
    D.delete bv (Xoshiro.int rng (D.length bv))
  done;
  D.check_invariants bv;
  let small = D.leaf_count bv in
  check_bool
    (Printf.sprintf "%s leaves shrink (%d -> %d)" codec_name full small)
    true
    (small <= 4 && small < full)

let dyn_suite (module D : DYN) codec_name seed =
  [
    Alcotest.test_case "random ops vs model" `Quick (fun () ->
        dyn_random_ops (module D) codec_name seed);
    Alcotest.test_case "init" `Quick (fun () -> dyn_init (module D) codec_name);
    Alcotest.test_case "bulk patterns" `Quick (fun () ->
        dyn_bulk (module D) codec_name (seed + 1));
    Alcotest.test_case "delete to empty" `Quick (fun () ->
        dyn_delete_to_empty (module D) codec_name (seed + 2));
    Alcotest.test_case "iterator" `Quick (fun () ->
        dyn_iterator (module D) codec_name (seed + 3));
    Alcotest.test_case "leaf count shrinks" `Quick (fun () ->
        dyn_leaf_count (module D) codec_name);
  ]

(* ------------------------------------------------------------------ *)
(* Space sanity: RLE on runs beats plain; gap Init(1,n) is heavy. *)

let test_rle_space_on_runs () =
  let n = 50_000 in
  let bits = Array.init n (fun i -> i mod 2000 < 1000) in
  let bv = Dyn_rle.of_bits bits in
  check_bool
    (Printf.sprintf "rle compresses long runs: %d bits for %d" (Dyn_rle.space_bits bv) n)
    true
    (Dyn_rle.space_bits bv < n / 10)

let test_gap_init_is_linear () =
  (* Not a timing test: check the representation size blows up, which is
     the structural reason Init is slow (Remark 4.2). *)
  let n = 20_000 in
  let rle = Dyn_rle.init true n in
  let gap = Dyn_gap.init true n in
  check_bool
    (Printf.sprintf "rle init tiny (%d bits), gap init linear (%d bits)"
       (Dyn_rle.space_bits rle) (Dyn_gap.space_bits gap))
    true
    (Dyn_rle.space_bits rle < 1024 && Dyn_gap.space_bits gap > n / 2)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let bits_gen = QCheck.(list_of_size Gen.(int_range 0 400) bool)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rrr rank1(select1(k)) = k" ~count:100 bits_gen (fun l ->
        let bits = Array.of_list l in
        let buf = Bitbuf.create () in
        Array.iter (Bitbuf.add buf) bits;
        let bv = Rrr.of_bitbuf buf in
        let ok = ref true in
        for k = 0 to Rrr.ones bv - 1 do
          let p = Rrr.select bv true k in
          if Rrr.rank bv true p <> k || not (Rrr.access bv p) then ok := false
        done;
        !ok);
    Test.make ~name:"plain rank0 + rank1 = pos" ~count:100 bits_gen (fun l ->
        let bits = Array.of_list l in
        let buf = Bitbuf.create () in
        Array.iter (Bitbuf.add buf) bits;
        let bv = Plain.of_bitbuf buf in
        let ok = ref true in
        for pos = 0 to Plain.length bv do
          if Plain.rank bv true pos + Plain.rank bv false pos <> pos then ok := false
        done;
        !ok);
    Test.make ~name:"dyn_rle insert then delete is identity" ~count:100
      (pair bits_gen (pair small_nat bool))
      (fun (l, (pos0, b)) ->
        let bits = Array.of_list l in
        let bv = Dyn_rle.of_bits bits in
        let pos = if Array.length bits = 0 then 0 else pos0 mod (Array.length bits + 1) in
        Dyn_rle.insert bv pos b;
        Dyn_rle.delete bv pos;
        Dyn_rle.check_invariants bv;
        Dyn_rle.length bv = Array.length bits
        && Array.for_all Fun.id (Array.mapi (fun i x -> Dyn_rle.access bv i = x) bits));
    Test.make ~name:"dyn_gap matches dyn_rle under same ops" ~count:50
      (list_of_size Gen.(int_range 1 200) (pair (int_bound 1000) bool))
      (fun ops ->
        let a = Dyn_rle.create () and b = Dyn_gap.create () in
        List.iter
          (fun (p, bit) ->
            let pos = p mod (Dyn_rle.length a + 1) in
            Dyn_rle.insert a pos bit;
            Dyn_gap.insert b pos bit)
          ops;
        let n = Dyn_rle.length a in
        Dyn_gap.length b = n
        && List.for_all
             (fun pos -> Dyn_rle.access a pos = Dyn_gap.access b pos)
             (List.init n Fun.id));
  ]

let () =
  Alcotest.run "wt_bitvector"
    [
      ( "plain",
        [
          Alcotest.test_case "patterns vs model" `Quick test_plain_patterns;
          Alcotest.test_case "bounds checking" `Quick test_plain_bounds;
        ] );
      ( "rrr",
        [
          Alcotest.test_case "patterns vs model" `Quick test_rrr_patterns;
          Alcotest.test_case "compression" `Quick test_rrr_compression;
          Alcotest.test_case "iterator" `Quick test_rrr_iterator;
        ] );
      ( "appendable",
        [
          Alcotest.test_case "incremental vs model" `Quick test_appendable_incremental;
          Alcotest.test_case "init offset" `Quick test_appendable_init_offset;
          Alcotest.test_case "pending construction window" `Quick test_appendable_pending_window;
          Alcotest.test_case "iterator" `Quick test_appendable_iterator;
        ] );
      ("dyn_rle", dyn_suite (module Dyn_rle) "dyn_rle" 1000);
      ("dyn_gap", dyn_suite (module Dyn_gap) "dyn_gap" 2000);
      ( "space",
        [
          Alcotest.test_case "rle compresses runs" `Quick test_rle_space_on_runs;
          Alcotest.test_case "gap init blows up" `Quick test_gap_init_is_linear;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
