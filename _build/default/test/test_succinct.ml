(* Tests for wt_succinct: Elias-Fano, partial sums, and the succinct
   binary tree shape, each against explicit reference structures. *)

module Bitbuf = Wt_bits.Bitbuf
module Xoshiro = Wt_bits.Xoshiro
module Elias_fano = Wt_succinct.Elias_fano
module Partial_sums = Wt_succinct.Partial_sums
module Bintree = Wt_succinct.Bintree

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Elias-Fano *)

let sorted_array rng n max_v =
  let a = Array.init n (fun _ -> Xoshiro.int rng (max_v + 1)) in
  Array.sort compare a;
  a

let test_ef_get () =
  let rng = Xoshiro.create 11 in
  List.iter
    (fun (n, u) ->
      let values = sorted_array rng n u in
      let ef = Elias_fano.of_array ~universe:u values in
      check_int "length" n (Elias_fano.length ef);
      check_int "universe" u (Elias_fano.universe ef);
      Array.iteri (fun i v -> check_int (Printf.sprintf "get %d" i) v (Elias_fano.get ef i)) values)
    [ (0, 100); (1, 0); (1, 1000); (10, 10); (100, 7); (500, 1_000_000); (1000, 1000) ]

let test_ef_rank_le () =
  let rng = Xoshiro.create 12 in
  List.iter
    (fun (n, u) ->
      let values = sorted_array rng n u in
      let ef = Elias_fano.of_array ~universe:u values in
      let naive_rank_le x =
        Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 values
      in
      for _ = 1 to 200 do
        let x = Xoshiro.int rng (u + 3) - 1 in
        check_int (Printf.sprintf "rank_le %d" x) (naive_rank_le x) (Elias_fano.rank_le ef x)
      done;
      check_int "rank_le -1" 0 (Elias_fano.rank_le ef (-1));
      check_int "rank_le u" n (Elias_fano.rank_le ef u))
    [ (0, 100); (5, 5); (100, 10_000); (1000, 50) ]

let test_ef_predecessor () =
  let ef = Elias_fano.of_array ~universe:100 [| 3; 7; 7; 20; 90 |] in
  Alcotest.(check (option (pair int int))) "pred 2" None (Elias_fano.predecessor ef 2);
  Alcotest.(check (option (pair int int))) "pred 3" (Some (0, 3)) (Elias_fano.predecessor ef 3);
  Alcotest.(check (option (pair int int))) "pred 7" (Some (2, 7)) (Elias_fano.predecessor ef 7);
  Alcotest.(check (option (pair int int)))
    "pred 19" (Some (2, 7)) (Elias_fano.predecessor ef 19);
  Alcotest.(check (option (pair int int)))
    "pred 1000" (Some (4, 90)) (Elias_fano.predecessor ef 1000)

let test_ef_monotone_violation () =
  Alcotest.check_raises "not monotone" (Invalid_argument "Elias_fano.of_array: not monotone")
    (fun () -> ignore (Elias_fano.of_array ~universe:10 [| 5; 3 |]))

let test_ef_space () =
  (* k values in a large universe: ~ k (2 + log(u/k)) bits, far below k words. *)
  let rng = Xoshiro.create 13 in
  let n = 10_000 in
  let u = 10_000_000 in
  let ef = Elias_fano.of_array ~universe:u (sorted_array rng n u) in
  let per_value = float_of_int (Elias_fano.space_bits ef) /. float_of_int n in
  check_bool
    (Printf.sprintf "compact: %.1f bits/value" per_value)
    true (per_value < 20.)

let test_ef_duplicates () =
  (* heavy duplication: every value the same *)
  let ef = Elias_fano.of_array ~universe:50 (Array.make 200 25) in
  for i = 0 to 199 do
    check_int "dup get" 25 (Elias_fano.get ef i)
  done;
  check_int "rank_le 24" 0 (Elias_fano.rank_le ef 24);
  check_int "rank_le 25" 200 (Elias_fano.rank_le ef 25);
  (* zeros allowed *)
  let ef = Elias_fano.of_array ~universe:10 [| 0; 0; 3; 10 |] in
  check_int "get 0" 0 (Elias_fano.get ef 0);
  check_int "rank_le 0" 2 (Elias_fano.rank_le ef 0)

(* ------------------------------------------------------------------ *)
(* Partial sums *)

let test_ps_degenerate () =
  let ps = Partial_sums.of_lengths [||] in
  check_int "empty count" 0 (Partial_sums.count ps);
  check_int "empty total" 0 (Partial_sums.total ps);
  check_int "empty sum" 0 (Partial_sums.sum ps 0);
  let ps = Partial_sums.of_lengths [| 0; 0; 0 |] in
  check_int "all-zero total" 0 (Partial_sums.total ps);
  check_int "all-zero sum" 0 (Partial_sums.sum ps 3)

let test_ps_basic () =
  let ps = Partial_sums.of_lengths [| 3; 0; 5; 1; 0; 2 |] in
  check_int "count" 6 (Partial_sums.count ps);
  check_int "total" 11 (Partial_sums.total ps);
  check_int "sum 0" 0 (Partial_sums.sum ps 0);
  check_int "sum 1" 3 (Partial_sums.sum ps 1);
  check_int "sum 2" 3 (Partial_sums.sum ps 2);
  check_int "sum 3" 8 (Partial_sums.sum ps 3);
  check_int "sum 6" 11 (Partial_sums.sum ps 6);
  check_int "length_of 2" 5 (Partial_sums.length_of ps 2);
  check_int "length_of 4" 0 (Partial_sums.length_of ps 4);
  (* find skips zero-length items *)
  check_int "find 0" 0 (Partial_sums.find ps 0);
  check_int "find 2" 0 (Partial_sums.find ps 2);
  check_int "find 3" 2 (Partial_sums.find ps 3);
  check_int "find 7" 2 (Partial_sums.find ps 7);
  check_int "find 8" 3 (Partial_sums.find ps 8);
  check_int "find 9" 5 (Partial_sums.find ps 9);
  check_int "find 10" 5 (Partial_sums.find ps 10)

let test_ps_random () =
  let rng = Xoshiro.create 21 in
  for _ = 1 to 30 do
    let n = 1 + Xoshiro.int rng 300 in
    let lens = Array.init n (fun _ -> Xoshiro.int rng 20) in
    let ps = Partial_sums.of_lengths lens in
    let sums = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      sums.(i + 1) <- sums.(i) + lens.(i)
    done;
    for i = 0 to n do
      check_int "sum" sums.(i) (Partial_sums.sum ps i)
    done;
    for pos = 0 to sums.(n) - 1 do
      let i = Partial_sums.find ps pos in
      check_bool "find bracket" true (sums.(i) <= pos && pos < sums.(i + 1))
    done
  done

(* ------------------------------------------------------------------ *)
(* Bintree *)

(* Reference: explicit strictly binary trees. *)
type ref_tree = L | N of ref_tree * ref_tree

let rec random_tree rng budget =
  if budget <= 1 || Xoshiro.int rng 4 = 0 then (L, 1)
  else begin
    let l, nl = random_tree rng (budget / 2) in
    let r, nr = random_tree rng (budget - (budget / 2)) in
    (N (l, r), nl + nr + 1)
  end

let shape_of_tree tree =
  let buf = Bitbuf.create () in
  let rec go = function
    | L -> Bitbuf.add buf false
    | N (l, r) ->
        Bitbuf.add buf true;
        go l;
        go r
  in
  go tree;
  buf

(* Collect, per preorder id: (is_leaf, parent, left, right, subtree_size). *)
let analyze tree =
  let info = ref [] in
  let rec go parent id t =
    match t with
    | L ->
        info := (id, (true, parent, -1, -1, 1)) :: !info;
        id + 1
    | N (l, r) ->
        let left_id = id + 1 in
        let after_l = go (Some id) left_id l in
        let right_id = after_l in
        let after_r = go (Some id) right_id r in
        info := (id, (false, parent, left_id, right_id, after_r - id)) :: !info;
        after_r
  in
  let n = go None 0 tree in
  (n, !info)

let test_bintree_navigation () =
  let rng = Xoshiro.create 77 in
  List.iter
    (fun budget ->
      let tree, _ = random_tree rng budget in
      let shape = shape_of_tree tree in
      let bt = Bintree.of_bitbuf shape in
      let n, info = analyze tree in
      check_int "node count" n (Bintree.node_count bt);
      check_int "leaves = internal + 1" (Bintree.internal_count bt + 1) (Bintree.leaf_count bt);
      List.iter
        (fun (id, (leaf, parent, left, right, size)) ->
          check_bool (Printf.sprintf "is_leaf %d" id) leaf (Bintree.is_leaf bt id);
          (match parent with
          | None -> Alcotest.(check (option int)) "root parent" None (Bintree.parent bt id)
          | Some p ->
              Alcotest.(check (option int))
                (Printf.sprintf "parent %d" id)
                (Some p) (Bintree.parent bt id));
          if not leaf then begin
            check_int (Printf.sprintf "left %d" id) left (Bintree.left_child bt id);
            check_int (Printf.sprintf "right %d" id) right (Bintree.right_child bt id)
          end;
          check_int (Printf.sprintf "subtree_end %d" id) (id + size) (Bintree.subtree_end bt id);
          (match parent with
          | Some p ->
              let is_left = Bintree.left_child bt p = id in
              check_bool
                (Printf.sprintf "is_left_child %d" id)
                is_left (Bintree.is_left_child bt id)
          | None -> ()))
        info)
    [ 1; 3; 7; 31; 100; 500; 2000 ]

let test_bintree_validation () =
  Alcotest.check_raises "unbalanced" (Invalid_argument "Bintree.of_bitbuf: invalid shape (unbalanced)")
    (fun () -> ignore (Bintree.of_bitbuf (Bitbuf.of_string "10")));
  Alcotest.check_raises "early close"
    (Invalid_argument "Bintree.of_bitbuf: invalid shape (early close)") (fun () ->
      ignore (Bintree.of_bitbuf (Bitbuf.of_string "1001100")));
  Alcotest.check_raises "empty" (Invalid_argument "Bintree.of_bitbuf: empty shape")
    (fun () -> ignore (Bintree.of_bitbuf (Bitbuf.create ())));
  (* single leaf is fine *)
  let bt = Bintree.of_bitbuf (Bitbuf.of_string "0") in
  check_int "single node" 1 (Bintree.node_count bt);
  check_bool "leaf" true (Bintree.is_leaf bt 0)

let test_bintree_internal_rank () =
  (* Shape: root with two internal children, each with two leaves:
     preorder = 1 1 0 0 1 0 0 *)
  let bt = Bintree.of_bitbuf (Bitbuf.of_string "1100100") in
  check_int "rank of root" 0 (Bintree.internal_rank bt 0);
  check_int "rank of node1" 1 (Bintree.internal_rank bt 1);
  check_int "rank of node4" 2 (Bintree.internal_rank bt 4);
  check_int "internal count" 3 (Bintree.internal_count bt)

let test_bintree_left_spine () =
  (* Degenerate left spine exercises deep excess searches. *)
  let depth = 3000 in
  let buf = Bitbuf.create () in
  for _ = 1 to depth do
    Bitbuf.add buf true;
    (* each internal node: left child continues the spine *)
    ()
  done;
  (* spine of internal nodes each whose right child is a leaf:
     preorder = 1 (1 (1 ... 0) 0) 0 — build explicitly: 1^depth then 0,
     then depth 0s interleaved?  Simpler: right spine: 1 0 1 0 ... 1 0 0 *)
  Bitbuf.clear buf;
  for _ = 1 to depth do
    Bitbuf.add buf true;
    Bitbuf.add buf false
  done;
  Bitbuf.add buf false;
  let bt = Bintree.of_bitbuf buf in
  check_int "nodes" ((2 * depth) + 1) (Bintree.node_count bt);
  (* Walk the right spine. *)
  let v = ref 0 in
  for _ = 1 to depth - 1 do
    check_bool "internal" false (Bintree.is_leaf bt !v);
    check_int "left child is leaf" (!v + 1) (Bintree.left_child bt !v);
    check_bool "left child leaf" true (Bintree.is_leaf bt (!v + 1));
    let r = Bintree.right_child bt !v in
    Alcotest.(check (option int)) "parent of right" (Some !v) (Bintree.parent bt r);
    v := r
  done

let () =
  Alcotest.run "wt_succinct"
    [
      ( "elias_fano",
        [
          Alcotest.test_case "get" `Quick test_ef_get;
          Alcotest.test_case "rank_le" `Quick test_ef_rank_le;
          Alcotest.test_case "predecessor" `Quick test_ef_predecessor;
          Alcotest.test_case "monotone check" `Quick test_ef_monotone_violation;
          Alcotest.test_case "space" `Quick test_ef_space;
          Alcotest.test_case "duplicates and zeros" `Quick test_ef_duplicates;
        ] );
      ( "partial_sums",
        [
          Alcotest.test_case "degenerate" `Quick test_ps_degenerate;
          Alcotest.test_case "basic" `Quick test_ps_basic;
          Alcotest.test_case "random" `Quick test_ps_random;
        ] );
      ( "bintree",
        [
          Alcotest.test_case "navigation vs reference" `Quick test_bintree_navigation;
          Alcotest.test_case "shape validation" `Quick test_bintree_validation;
          Alcotest.test_case "internal rank" `Quick test_bintree_internal_rank;
          Alcotest.test_case "deep spine" `Quick test_bintree_left_spine;
        ] );
    ]
