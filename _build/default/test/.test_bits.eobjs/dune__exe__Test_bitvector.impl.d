test/test_bitvector.ml: Alcotest Array Fun Gen List Printf QCheck QCheck_alcotest Test Wt_bits Wt_bitvector
