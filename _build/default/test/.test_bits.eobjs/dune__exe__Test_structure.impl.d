test/test_structure.ml: Alcotest Array Char Format List Printf String Wt_bits Wt_core Wt_strings Wt_wavelet_tree
