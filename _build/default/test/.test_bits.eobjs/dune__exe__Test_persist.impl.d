test/test_persist.ml: Alcotest Array Char Filename In_channel Out_channel Printexc String Sys Wt_bits Wt_core Wt_strings
