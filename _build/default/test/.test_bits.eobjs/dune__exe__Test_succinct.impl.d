test/test_succinct.ml: Alcotest Array List Printf Wt_bits Wt_succinct
