test/test_workload.ml: Alcotest Array List Printf String Wt_bits Wt_core Wt_strings Wt_workload
