test/test_succinct_wt.mli:
