test/test_trie.ml: Alcotest Array Char List Printf Set String Wt_bits Wt_strings Wt_trie
