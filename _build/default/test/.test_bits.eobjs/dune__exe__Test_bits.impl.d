test/test_bits.ml: Alcotest Array Gen List QCheck QCheck_alcotest String Test Wt_bits
