test/test_balanced.ml: Alcotest Array List Printf Wt_bits Wt_core
