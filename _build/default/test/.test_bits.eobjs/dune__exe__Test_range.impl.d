test/test_range.ml: Alcotest Array Hashtbl List Option String Wt_bits Wt_core Wt_strings
