test/test_soak.ml: Alcotest Hashtbl List Option Printf Wt_bits Wt_core Wt_strings Wt_workload
