test/test_wavelet_tree.ml: Alcotest Array List Option Printf String Wt_bits Wt_core Wt_strings Wt_wavelet_tree Wt_workload
