test/test_balanced.mli:
