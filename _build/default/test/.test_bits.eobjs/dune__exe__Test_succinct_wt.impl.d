test/test_succinct_wt.ml: Alcotest Array Char List Printf String Wt_bits Wt_core Wt_strings
