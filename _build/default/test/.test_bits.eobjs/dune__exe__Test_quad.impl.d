test/test_quad.ml: Alcotest Array Char List Printf String Wt_bits Wt_core Wt_strings Wt_wavelet_tree
