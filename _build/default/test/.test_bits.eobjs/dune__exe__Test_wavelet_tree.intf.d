test/test_wavelet_tree.mli:
