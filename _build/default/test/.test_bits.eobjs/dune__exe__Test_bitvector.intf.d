test/test_bitvector.mli:
