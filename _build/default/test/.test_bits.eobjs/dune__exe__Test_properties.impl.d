test/test_properties.ml: Alcotest Array Gen List QCheck QCheck_alcotest String Test Wt_bits Wt_bitvector Wt_core Wt_strings
