test/test_core.ml: Alcotest Array Char Gen List Printf QCheck QCheck_alcotest String Test Wt_bits Wt_core Wt_strings
