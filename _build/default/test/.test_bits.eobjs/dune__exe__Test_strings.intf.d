test/test_strings.mli:
