test/test_quad.mli:
