test/test_strings.ml: Alcotest Array Char List Printf QCheck QCheck_alcotest String Test Wt_bits Wt_strings
