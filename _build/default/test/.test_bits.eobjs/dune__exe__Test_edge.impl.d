test/test_edge.ml: Alcotest Array Char List Printf String Wt_bits Wt_bitvector Wt_core Wt_strings
