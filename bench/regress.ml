(* Perf-regression gate over the bench trajectory.

     regress.exe BASELINE.json CURRENT.json [--threshold 0.25] [--soft]

   Both inputs are `bench --json` outputs (CURRENT typically from
   `--quick`).  Two kinds of check:

   - Structural: the observability reports under "metrics" must have the
     same counter key-set and latency op-set as the baseline — Report
     JSON is normalized over the full metric universe precisely so this
     diff is exact: a key that appears or disappears means the
     instrumentation (or its serialization) drifted, which silently
     invalidates any longitudinal dashboard built on these files.

   - Throughput: the headline performance figures may not regress by
     more than THRESHOLD (fraction, default 0.25) against the baseline,
     direction-aware: ns/op and us/record must not rise, speedups and
     MB/s must not fall.  Improvements are reported, never gated.

   Exit 0 when clean, 1 on any regression; --soft reports but always
   exits 0 (for CI runners whose core count or load makes timing
   unreliable — the structural checks still print). *)

module Json = Wtrie.Json

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e ->
      Printf.eprintf "regress: %s: %s\n" path e;
      exit 2

(* "a.b.c" path lookup. *)
let rec find j = function
  | [] -> Some j
  | k :: rest -> ( match Json.member k j with Some j' -> find j' rest | None -> None)

let lookup j path = find j (String.split_on_char '.' path)

let number j path =
  match lookup j path with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

(* Direction: what a *worse* current value looks like. *)
type dir = Lower_better | Higher_better

let gated =
  [
    (Lower_better, "batch.access.batch_ns_per_op");
    (Lower_better, "batch.rank.batch_ns_per_op");
    (Higher_better, "batch.access.speedup");
    (Higher_better, "batch.rank.speedup");
    (Lower_better, "parallel.access.domains_1_ns_per_op");
    (Lower_better, "parallel.rank.domains_1_ns_per_op");
    (Higher_better, "analytics.select_all.speedup");
    (Higher_better, "analytics.topk.speedup");
    (Higher_better, "durability.snapshot.save_mb_per_s");
    (Higher_better, "durability.snapshot.load_mb_per_s");
    (Higher_better, "durability.wal.replay_records_per_s");
    (Lower_better, "durability.wal.append_us_per_record");
    (* serving: end-to-end closed-loop throughput, and the overload
       leg's shed fraction (config-bound capacity, so it measures
       admission control, not the runner).  p50/p99 latencies ride
       along in the JSON but are not gated: microsecond percentiles
       through a kernel socket are dominated by scheduler noise. *)
    (Higher_better, "serve.closed_loop.throughput_rps");
    (Higher_better, "serve.overload.shed_fraction");
    (* format v3: reopen cost and the flat engine's batch latency *)
    (Higher_better, "flat.open_speedup_vs_v2");
    (Lower_better, "flat.flat_batch_ns_per_op");
    (* tiered store: sustained WAL-backed ingest rate and the merged
       run+delta read path's tail latency *)
    (Higher_better, "tiered.ingest_strings_per_s");
    (Lower_better, "tiered.read_p99_us");
  ]
(* The multi-domain figures (speedup_2/speedup_4) are deliberately not
   gated: they measure the runner's core count more than the code. *)

let obj_keys = function Some (Json.Obj kvs) -> Some (List.map fst kvs) | _ -> None

let latency_ops j path =
  match lookup j path with
  | Some (Json.List items) ->
      Some
        (List.filter_map
           (fun it -> match Json.member "op" it with Some (Json.Str s) -> Some s | _ -> None)
           items)
  | _ -> None

let failures = ref 0
let fail fmt = Printf.ksprintf (fun m -> incr failures; Printf.printf "FAIL  %s\n" m) fmt

(* Absolute gates on CURRENT alone — the format-v3 acceptance bar, not
   a baseline comparison: the mmap reopen must beat the v2 deserialize
   by at least 50x, and the batch engine on the flat arena must hold
   parity with the pointer tree (within THRESHOLD, the same tolerance
   the relative checks use, since the ratio is a quotient of two
   noisy timings). *)
let absolute ~threshold cur =
  (match number cur "flat.open_speedup_vs_v2" with
  | Some v when v >= 50. ->
      Printf.printf "ok    %-45s %12.1f  (>= 50x floor)\n" "flat.open_speedup_vs_v2" v
  | Some v -> fail "%-45s %12.1f  (below the 50x floor)" "flat.open_speedup_vs_v2" v
  | None -> fail "flat.open_speedup_vs_v2 missing from current");
  let ceiling = 1. +. threshold in
  (match number cur "flat.batch_vs_pointer_ratio" with
  | Some v when v <= ceiling ->
      Printf.printf "ok    %-45s %12.2f  (<= %.2f ceiling)\n" "flat.batch_vs_pointer_ratio"
        v ceiling
  | Some v ->
      fail "%-45s %12.2f  (flat batch worse than pointer by > %.0f%%)"
        "flat.batch_vs_pointer_ratio" v (threshold *. 100.)
  | None -> fail "flat.batch_vs_pointer_ratio missing from current");
  (* tiered acceptance bar: WAL-backed ingest into the bounded delta
     must at least match appending into one monolithic dynamic trie
     (that is the point of tiering), and the merged read path may cost
     at most 4x the flat arena it is built from. *)
  (match number cur "tiered.ingest_speedup_vs_dynamic" with
  | Some v when v >= 1. ->
      Printf.printf "ok    %-45s %12.2f  (>= 1.0 floor)\n"
        "tiered.ingest_speedup_vs_dynamic" v
  | Some v ->
      fail "%-45s %12.2f  (tiered ingest slower than dynamic append)"
        "tiered.ingest_speedup_vs_dynamic" v
  | None -> fail "tiered.ingest_speedup_vs_dynamic missing from current");
  match number cur "tiered.read_p99_ratio_vs_static" with
  | Some v when v <= 4. ->
      Printf.printf "ok    %-45s %12.2f  (<= 4.0 ceiling)\n"
        "tiered.read_p99_ratio_vs_static" v
  | Some v ->
      fail "%-45s %12.2f  (merged read p99 more than 4x the flat arena)"
        "tiered.read_p99_ratio_vs_static" v
  | None -> fail "tiered.read_p99_ratio_vs_static missing from current"


let structural base cur =
  List.iter
    (fun variant ->
      let path kind = Printf.sprintf "metrics.%s.%s" variant kind in
      (match (obj_keys (lookup base (path "counters")), obj_keys (lookup cur (path "counters"))) with
      | Some bk, Some ck when bk = ck ->
          Printf.printf "ok    metrics.%s.counters: %d keys, same set\n" variant (List.length bk)
      | Some bk, Some ck ->
          let missing = List.filter (fun k -> not (List.mem k ck)) bk in
          let extra = List.filter (fun k -> not (List.mem k bk)) ck in
          fail "metrics.%s.counters key drift (missing: %s; new: %s)" variant
            (String.concat "," missing) (String.concat "," extra)
      | _ -> fail "metrics.%s.counters missing from one side" variant);
      match (latency_ops base (path "latencies"), latency_ops cur (path "latencies")) with
      | Some bo, Some co when bo = co ->
          Printf.printf "ok    metrics.%s.latencies: %d ops, same set\n" variant (List.length bo)
      | Some _, Some _ -> fail "metrics.%s.latencies op-set drift" variant
      | _ -> fail "metrics.%s.latencies missing from one side" variant)
    [ "static"; "append"; "dynamic" ]

let throughput ~threshold base cur =
  List.iter
    (fun (dir, path) ->
      match (number base path, number cur path) with
      | Some b, Some c when b > 0. ->
          let ratio = c /. b in
          let worse =
            match dir with
            | Lower_better -> ratio > 1. +. threshold
            | Higher_better -> ratio < 1. -. threshold
          in
          let pct = (ratio -. 1.) *. 100. in
          if worse then fail "%-45s %12.1f -> %12.1f  (%+.1f%%)" path b c pct
          else Printf.printf "ok    %-45s %12.1f -> %12.1f  (%+.1f%%)\n" path b c pct
      | Some _, Some _ -> fail "%s: non-positive baseline" path
      | None, _ -> fail "%s missing from baseline" path
      | _, None -> fail "%s missing from current" path)
    gated

let () =
  let threshold = ref 0.25 and soft = ref false and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0. -> threshold := t
        | _ ->
            prerr_endline "regress: --threshold expects a positive fraction";
            exit 2);
        parse rest
    | "--soft" :: rest ->
        soft := true;
        parse rest
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline; current ] ->
      let base = read_json baseline and cur = read_json current in
      Printf.printf "regress: %s vs %s (threshold %.0f%%%s)\n" current baseline
        (!threshold *. 100.)
        (if !soft then ", soft" else "");
      structural base cur;
      throughput ~threshold:!threshold base cur;
      absolute ~threshold:!threshold cur;
      if !failures = 0 then print_endline "regress: clean"
      else begin
        Printf.printf "regress: %d failure(s)\n" !failures;
        if not !soft then exit 1 else print_endline "regress: soft mode, not failing the build"
      end
  | _ ->
      prerr_endline "usage: regress BASELINE.json CURRENT.json [--threshold FRAC] [--soft]";
      exit 2
