(* Benchmark harness reproducing every table and figure of
   "The Wavelet Trie" (Grossi & Ottaviano, PODS 2012).

   The paper is theoretical: its Table 1 gives asymptotic time/space
   bounds and Figures 1-3 are worked examples.  Accordingly each group
   below either (a) measures the empirical scaling shape predicted by a
   Table 1 row, (b) reports measured space against the information-
   theoretic lower bound LB = LT + nH0, or (c) re-derives a figure's
   structure.  Experiment ids - T1.x, Fx, S5/S6, A.x - match DESIGN.md.

   Per-operation micro-benchmarks use Bechamel (one Test.make per
   operation and input size, grouped per experiment); bulk costs
   (construction, Init, appends) use wall-clock batch timing. *)

open Bechamel
open Toolkit

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Balanced = Wt_core.Balanced
module Range = Wt_core.Range
module Stats = Wt_core.Stats
module Naive = Wt_core.Indexed_sequence.Naive
module Persist = Wt_core.Persist
module Urls = Wt_workload.Urls
module Columns = Wt_workload.Columns
module WTree = Wt_wavelet_tree.Wavelet_tree
module Huffman_wt = Wt_wavelet_tree.Huffman_wt
module Dyn_wavelet_tree = Wt_wavelet_tree.Dyn_wavelet_tree
module Dyn_rle = Wt_bitvector.Dyn_rle
module Dyn_gap = Wt_bitvector.Dyn_gap

let quota =
  match Sys.getenv_opt "BENCH_QUOTA_MS" with
  | Some s -> float_of_string s /. 1000.
  | None -> 0.25

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing: run a grouped test, return (name, ns/op) sorted. *)

let run_group (test : Test.t) =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let res = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
      in
      (name, ns) :: acc)
    res []
  |> List.sort compare

let print_group header note test =
  Printf.printf "\n-- %s\n" header;
  if note <> "" then Printf.printf "   %s\n" note;
  List.iter
    (fun (name, ns) -> Printf.printf "   %-46s %10.0f ns/op\n" name ns)
    (run_group test);
  flush stdout

let now () = Unix.gettimeofday ()

let time_batch f =
  let t0 = now () in
  f ();
  now () -. t0

(* ------------------------------------------------------------------ *)
(* Shared workloads *)

let url_sequence ~seed n =
  let g = Urls.create ~seed () in
  Urls.sequence g n

let sizes = [ 4096; 16384; 65536 ]

let pick rng arr = arr.(Xoshiro.int rng (Array.length arr))

(* ------------------------------------------------------------------ *)
(* T1 query rows: one grouped bench per variant; names embed n so the
   scaling shape is visible in one table. *)

type 'a variant_ops = {
  v_build : Bitstring.t array -> 'a;
  v_access : 'a -> int -> Bitstring.t;
  v_rank : 'a -> Bitstring.t -> int -> int;
  v_select : 'a -> Bitstring.t -> int -> int option;
  v_rank_prefix : 'a -> Bitstring.t -> int -> int;
  v_select_prefix : 'a -> Bitstring.t -> int -> int option;
}

let static_ops =
  {
    v_build = Wavelet_trie.of_array;
    v_access = Wavelet_trie.access;
    v_rank = Wavelet_trie.rank;
    v_select = Wavelet_trie.select;
    v_rank_prefix = Wavelet_trie.rank_prefix;
    v_select_prefix = Wavelet_trie.select_prefix;
  }

let append_ops =
  {
    v_build = Append_wt.of_array;
    v_access = Append_wt.access;
    v_rank = Append_wt.rank;
    v_select = Append_wt.select;
    v_rank_prefix = Append_wt.rank_prefix;
    v_select_prefix = Append_wt.select_prefix;
  }

let dynamic_ops =
  {
    v_build = Dynamic_wt.of_array;
    v_access = Dynamic_wt.access;
    v_rank = Dynamic_wt.rank;
    v_select = Dynamic_wt.select;
    v_rank_prefix = Dynamic_wt.rank_prefix;
    v_select_prefix = Dynamic_wt.select_prefix;
  }

let query_tests (type a) (ops : a variant_ops) =
  List.concat_map
    (fun n ->
      let seq = url_sequence ~seed:42 n in
      let wt = ops.v_build seq in
      let rng = Xoshiro.create 7 in
      let g = Urls.create ~seed:42 () in
      let prefixes = Array.init (Urls.host_count g) (Urls.host_prefix g) in
      [
        Test.make
          ~name:(Printf.sprintf "access       n=%6d" n)
          (Staged.stage (fun () -> ignore (ops.v_access wt (Xoshiro.int rng n))));
        Test.make
          ~name:(Printf.sprintf "rank         n=%6d" n)
          (Staged.stage (fun () ->
               ignore (ops.v_rank wt (pick rng seq) (Xoshiro.int rng (n + 1)))));
        Test.make
          ~name:(Printf.sprintf "select       n=%6d" n)
          (Staged.stage (fun () ->
               ignore (ops.v_select wt (pick rng seq) (Xoshiro.int rng 8))));
        Test.make
          ~name:(Printf.sprintf "rank_prefix  n=%6d" n)
          (Staged.stage (fun () ->
               ignore (ops.v_rank_prefix wt (pick rng prefixes) (Xoshiro.int rng (n + 1)))));
        Test.make
          ~name:(Printf.sprintf "selectprefix n=%6d" n)
          (Staged.stage (fun () ->
               ignore (ops.v_select_prefix wt (pick rng prefixes) (Xoshiro.int rng 8))));
      ])
    sizes

let t1_static_query () =
  print_group "T1.static.query — static Wavelet Trie, URL log"
    "Paper: O(|s| + h_s), constant per bitvector op => flat in n."
    (Test.make_grouped ~name:"static" (query_tests static_ops))

let t1_append_query () =
  print_group "T1.append.query — append-only Wavelet Trie, URL log"
    "Paper: O(|s| + h_s), same shape as static."
    (Test.make_grouped ~name:"append-only" (query_tests append_ops))

let t1_dynamic_query () =
  print_group "T1.dyn.query — fully-dynamic Wavelet Trie, URL log"
    "Paper: O(|s| + h_s log n) => slow logarithmic growth with n."
    (Test.make_grouped ~name:"dynamic" (query_tests dynamic_ops))

(* T1 append column: amortized append cost as the sequence grows. *)
let t1_append_append () =
  Printf.printf
    "\n-- T1.append.append — Append(s) amortized cost while streaming a log\n";
  Printf.printf "   Paper: O(|s| + h_s) independent of n (Theorem 4.3).\n";
  let g = Urls.create ~seed:17 () in
  let wt = Append_wt.create () in
  let batch = 16384 in
  let lat = Array.make (8 * batch) 0. in
  let li = ref 0 in
  for step = 1 to 8 do
    let strings = Array.init batch (fun _ -> Urls.next_encoded g) in
    let dt =
      time_batch (fun () ->
          Array.iter
            (fun s ->
              let t0 = now () in
              Append_wt.append wt s;
              lat.(!li) <- now () -. t0;
              incr li)
            strings)
    in
    Printf.printf "   n=%7d .. %7d: %8.0f ns/append\n"
      ((step - 1) * batch) (step * batch)
      (dt *. 1e9 /. float_of_int batch)
  done;
  Array.sort compare lat;
  let pct p = lat.(int_of_float (p *. float_of_int (Array.length lat - 1))) *. 1e9 in
  Printf.printf
    "   latency percentiles: p50 %.0f ns  p99 %.0f ns  p99.9 %.0f ns  max %.0f ns\n"
    (pct 0.50) (pct 0.99) (pct 0.999) (pct 1.0);
  Printf.printf
    "   (segment freezing is de-amortized; remaining tail spikes are GC slices)\n";
  flush stdout

(* T1 insert/delete columns. *)
let t1_dynamic_updates () =
  Printf.printf "\n-- T1.dyn.insert / T1.dyn.delete — random-position updates\n";
  Printf.printf
    "   Paper: O(|s| + h_s log n); unseen strings also pay a node split (Init is O(log n)).\n";
  List.iter
    (fun n ->
      let seq = url_sequence ~seed:5 n in
      let wt = Dynamic_wt.of_array seq in
      let rng = Xoshiro.create 23 in
      (* mixed inserts: half existing strings, half fresh *)
      let batch = 2000 in
      let fresh_tag = ref 0 in
      let dt_ins =
        time_batch (fun () ->
            for _ = 1 to batch do
              let s =
                if Xoshiro.bool rng then pick rng seq
                else begin
                  incr fresh_tag;
                  Binarize.of_bytes (Printf.sprintf "fresh-%d-%d" n !fresh_tag)
                end
              in
              Dynamic_wt.insert wt (Xoshiro.int rng (Dynamic_wt.length wt + 1)) s
            done)
      in
      let dt_del =
        time_batch (fun () ->
            for _ = 1 to batch do
              Dynamic_wt.delete wt (Xoshiro.int rng (Dynamic_wt.length wt))
            done)
      in
      Printf.printf "   n=%7d: insert %8.0f ns/op   delete %8.0f ns/op\n" n
        (dt_ins *. 1e9 /. float_of_int batch)
        (dt_del *. 1e9 /. float_of_int batch))
    sizes;
  flush stdout

(* Construction throughput (not in Table 1, but the practical companion
   to the Append column): bulk of_array per variant. *)
let t1_build () =
  Printf.printf "\n-- T1.build — construction throughput (bulk of_array)\n";
  let n = 65536 in
  let seq = url_sequence ~seed:42 n in
  let per name f =
    let dt = time_batch (fun () -> ignore (f seq)) in
    Printf.printf "   %-12s %7.0f ns/string  (%.2fs total)\n" name
      (dt *. 1e9 /. float_of_int n) dt
  in
  per "static" Wavelet_trie.of_array;
  per "succinct" Wt_core.Succinct_wt.of_array;
  per "append-only" Append_wt.of_array;
  per "dynamic" Dynamic_wt.of_array;
  per "quad" Wt_wavelet_tree.Quad_wt.of_array;
  (* incremental alternative for the dynamic variant *)
  let dt =
    time_batch (fun () ->
        let wt = Dynamic_wt.create () in
        Array.iter (Dynamic_wt.append wt) seq)
  in
  Printf.printf "   %-12s %7.0f ns/string  (one append at a time)\n" "dynamic-inc"
    (dt *. 1e9 /. float_of_int n);
  flush stdout

(* ------------------------------------------------------------------ *)
(* T1.space — measured space vs LB for each variant and the naive rep. *)

let print_stats name (st : Stats.t) =
  let lb = Stats.lower_bound st in
  Printf.printf
    "   %-12s total %9d bits  = %5.2fx LB   (LT %8.0f + nH0 %8.0f; h~=%5.2f, |Sset|=%d)\n"
    name st.total_bits
    (float_of_int st.total_bits /. lb)
    st.trie_lb_bits st.seq_h0_bits st.avg_height st.distinct

let t1_space () =
  Printf.printf "\n-- T1.space — space vs information-theoretic lower bound\n";
  Printf.printf
    "   Paper: static = LB + o(h~ n); append-only adds PT = O(|Sset| w); dynamic adds O(nH0).\n";
  let report title seq =
    Printf.printf "   [%s] n=%d\n" title (Array.length seq);
    let st = Wavelet_trie.stats (Wavelet_trie.of_array seq) in
    print_stats "static" st;
    print_stats "succinct" (Wt_core.Succinct_wt.stats (Wt_core.Succinct_wt.of_array seq));
    print_stats "append-only" (Append_wt.stats (Append_wt.of_array seq));
    print_stats "dynamic" (Dynamic_wt.stats (Dynamic_wt.of_array seq));
    let naive = Naive.of_array seq in
    Printf.printf
      "   %-12s total %9d bits  = %5.2fx LB   (array of strings + pointers)\n" "naive"
      (Naive.space_bits naive)
      (float_of_int (Naive.space_bits naive) /. Stats.lower_bound st)
  in
  report "URL access log" (url_sequence ~seed:42 65536);
  let col, _ = Columns.categorical ~cardinality:64 65536 in
  report "categorical column (64 values)" col;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Figures: recompute and verify the golden structures. *)

let f_figures () =
  Printf.printf "\n-- F1/F2/F3 — figure reproductions (structural)\n";
  (* Figure 2 *)
  let fig2 =
    List.map Bitstring.of_string
      [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ]
  in
  let wt = Wavelet_trie.of_list fig2 in
  let expected =
    [
      ("0", Some "0010101");
      ("", Some "0111");
      ("1", None);
      ("", Some "100");
      ("0", None);
      ("", None);
      ("00", None);
    ]
  in
  Printf.printf "   F2 wavelet trie of <0001,0011,0100,00100,0100,00100,0100>: %s\n"
    (if Wavelet_trie.dump wt = expected then "matches the paper" else "MISMATCH");
  (* Figure 1 *)
  let code = function
    | 'a' -> "00"
    | 'b' -> "01"
    | 'c' -> "10"
    | 'd' -> "110"
    | 'r' -> "111"
    | _ -> assert false
  in
  let seq =
    List.map
      (fun c -> Bitstring.of_string (code c))
      (List.init 11 (String.get "abracadabra"))
  in
  let wt1 = Wavelet_trie.of_list seq in
  let betas = List.filter_map snd (Wavelet_trie.dump wt1) in
  Printf.printf "   F1 wavelet tree of abracadabra: betas %s => %s\n"
    (String.concat "," betas)
    (if betas = [ "00101010010"; "0100010"; "1011"; "101" ] then "matches the paper"
     else "MISMATCH");
  (* Figure 3 *)
  let dwt = Dynamic_wt.of_array (Array.of_list fig2) in
  Dynamic_wt.insert dwt 3 (Bitstring.of_string "0110");
  let split_ok =
    Dynamic_wt.dump dwt
    = [
        ("0", Some "00110101");
        ("", Some "0111");
        ("1", None);
        ("", Some "100");
        ("0", None);
        ("", None);
        ("", Some "0100");
        ("0", None);
        ("0", None);
      ]
  in
  Printf.printf "   F3 node split on inserting 0110: %s\n"
    (if split_ok then "new internal node with constant bitvector, as in the paper"
     else "MISMATCH");
  flush stdout

(* ------------------------------------------------------------------ *)
(* S5.range — range algorithms scale with output, not n. *)

let s5_range () =
  Printf.printf "\n-- S5.range — Section 5 range algorithms\n";
  Printf.printf
    "   Paper: costs depend on the range/output (distinct values, majority path), not on n.\n";
  List.iter
    (fun n ->
      let seq = url_sequence ~seed:42 n in
      let wt = Wt_core.Flat_wt.of_array seq in
      let rng = Xoshiro.create 31 in
      let width = 1024 in
      let batch = 200 in
      let bench name f =
        let dt =
          time_batch (fun () ->
              for _ = 1 to batch do
                let lo = Xoshiro.int rng (n - width) in
                f ~lo ~hi:(lo + width)
              done)
        in
        Printf.printf "   n=%7d %-28s %9.1f us/query\n" n name
          (dt *. 1e6 /. float_of_int batch)
      in
      bench "distinct (range 1024)" (fun ~lo ~hi -> ignore (Range.Static.distinct wt ~lo ~hi));
      bench "majority (range 1024)" (fun ~lo ~hi -> ignore (Range.Static.majority wt ~lo ~hi));
      bench "at_least 32 (range 1024)" (fun ~lo ~hi ->
          ignore (Range.Static.at_least wt ~lo ~hi ~threshold:32));
      bench "top_k 10 (range 1024)" (fun ~lo ~hi ->
          ignore (Range.Static.top_k wt ~lo ~hi 10));
      bench "iter_range (range 1024)" (fun ~lo ~hi ->
          Range.Static.iter_range wt ~lo ~hi (fun _ -> ())))
    [ 16384; 131072 ];
  flush stdout

(* ------------------------------------------------------------------ *)
(* S6.balanced — height independent of the universe. *)

let s6_balanced () =
  Printf.printf "\n-- S6.balanced — randomized Wavelet Tree on a 2^60 universe\n";
  Printf.printf
    "   Paper (Thm 6.2): height <= (alpha+2) log |Sigma| w.h.p., vs log u = 60 unhashed.\n";
  List.iter
    (fun sigma ->
      let heights = ref [] in
      for seed = 1 to 10 do
        let rng = Xoshiro.create (900 + seed) in
        let b = Balanced.create ~seed ~width:60 () in
        for _ = 1 to sigma do
          Balanced.append b (Xoshiro.next rng land Wt_bits.Broadword.mask 60)
        done;
        heights := Balanced.height b :: !heights
      done;
      let heights = List.sort compare !heights in
      let max_h = List.nth heights (List.length heights - 1) in
      let avg =
        float_of_int (List.fold_left ( + ) 0 heights)
        /. float_of_int (List.length heights)
      in
      let log_sigma = log (float_of_int sigma) /. log 2. in
      Printf.printf
        "   |Sigma|=%5d: height avg %5.1f max %2d   (log|Sigma|=%4.1f, 3log=%4.1f, log u=60)\n"
        sigma avg max_h log_sigma (3. *. log_sigma))
    [ 16; 256; 4096 ];
  (* per-op cost on the hashed trie *)
  let rng = Xoshiro.create 77 in
  let b = Balanced.create ~seed:3 ~width:60 () in
  let alphabet =
    Array.init 1024 (fun _ -> Xoshiro.next rng land Wt_bits.Broadword.mask 60)
  in
  for _ = 1 to 65536 do
    Balanced.append b (pick rng alphabet)
  done;
  print_group "S6.balanced — ops at n=65536, |Sigma|=1024, u=2^60"
    "access/rank/select in O(log u + h log n)."
    (Test.make_grouped ~name:"balanced"
       [
         Test.make ~name:"access"
           (Staged.stage (fun () -> ignore (Balanced.access b (Xoshiro.int rng 65536))));
         Test.make ~name:"rank"
           (Staged.stage (fun () ->
                ignore (Balanced.rank b (pick rng alphabet) (Xoshiro.int rng 65536))));
         Test.make ~name:"select"
           (Staged.stage (fun () ->
                ignore (Balanced.select b (pick rng alphabet) (Xoshiro.int rng 16))));
       ])

(* ------------------------------------------------------------------ *)
(* S7.cache — simulated cache behaviour (the paper's closing question). *)

let s7_cache () =
  Printf.printf "\n-- S7.cache — simulated LRU cache misses per query (Section 7 question)\n";
  Printf.printf
    "   Bit-buffer reads replayed through a set-associative LRU cache (Cache_sim);\n";
  Printf.printf
    "   counts cover bitvector/label storage only, so they are comparative, not absolute.\n";
  let n = 65536 in
  let seq = url_sequence ~seed:42 n in
  let b = Wavelet_trie.of_array seq in
  let sWt = Wt_core.Succinct_wt.of_array seq in
  let q = Wt_wavelet_tree.Quad_wt.of_array seq in
  List.iter
    (fun (label, line_bytes, ways, sets) ->
      let measure name f =
        let cache = Wt_workload.Cache_sim.create ~line_bytes ~ways ~sets () in
        let rng = Xoshiro.create 99 in
        (* warm up *)
        let (), _ = Wt_workload.Cache_sim.run cache (fun () ->
            for _ = 1 to 500 do
              f (Xoshiro.int rng n)
            done)
        in
        Wt_workload.Cache_sim.reset_stats cache;
        let reps = 2000 in
        let (), m =
          Wt_workload.Cache_sim.run cache (fun () ->
              for _ = 1 to reps do
                f (Xoshiro.int rng n)
              done)
        in
        Printf.printf "   %-10s %-18s %7.1f misses/access (miss rate %4.1f%%)\n" label
          name
          (float_of_int m /. float_of_int reps)
          (100. *. Wt_workload.Cache_sim.miss_rate cache)
      in
      measure "binary trie" (fun pos -> ignore (Wavelet_trie.access b pos));
      measure "succinct trie" (fun pos -> ignore (Wt_core.Succinct_wt.access sWt pos));
      measure "quad trie" (fun pos -> ignore (Wt_wavelet_tree.Quad_wt.access q pos)))
    [ ("L1-32K", 64, 8, 64); ("L2-1M", 64, 16, 1024) ];
  flush stdout

(* ------------------------------------------------------------------ *)
(* A.init — Remark 4.2: Init on RLE+gamma vs gap+delta. *)

let a_init () =
  Printf.printf "\n-- A.init — Remark 4.2: Init(1, n) cost by bitvector encoding\n";
  Printf.printf
    "   Paper: RLE+gamma supports Init in O(log n); gap encoding is Omega(n) words.\n";
  List.iter
    (fun n ->
      let reps = 200 in
      let dt_rle =
        time_batch (fun () ->
            for _ = 1 to reps do
              ignore (Dyn_rle.init true n)
            done)
      in
      let dt_gap = time_batch (fun () -> ignore (Dyn_gap.init true n)) in
      Printf.printf
        "   n=%8d: rle+gamma %8.2f us/init (%6d bits)   gap+delta %10.0f us/init (%9d bits)\n"
        n
        (dt_rle *. 1e6 /. float_of_int reps)
        (Dyn_rle.space_bits (Dyn_rle.init true n))
        (dt_gap *. 1e6)
        (Dyn_gap.space_bits (Dyn_gap.init true n)))
    [ 10_000; 100_000; 1_000_000 ];
  flush stdout

(* ------------------------------------------------------------------ *)
(* A.rrr — RRR vs plain bitvectors in a classic wavelet tree. *)

let a_rrr () =
  Printf.printf "\n-- A.rrr — bitvector choice: RRR (compressed) vs plain\n";
  let rng = Xoshiro.create 3 in
  let sigma = 64 in
  let zipf = Wt_workload.Zipf.create ~s:1.3 sigma in
  let n = 262144 in
  let a = Array.init n (fun _ -> Wt_workload.Zipf.sample zipf rng) in
  let wp = WTree.Over_plain.of_array ~sigma a in
  let wr = WTree.Over_rrr.of_array ~sigma a in
  let h0 =
    Wt_bits.Entropy.h0_of_counts
      (let f = Array.make sigma 0 in
       Array.iter (fun x -> f.(x) <- f.(x) + 1) a;
       f)
  in
  Printf.printf "   space: plain %d bits (%.2f/sym)   rrr %d bits (%.2f/sym)  [H0=%.2f]\n"
    (WTree.Over_plain.space_bits wp)
    (float_of_int (WTree.Over_plain.space_bits wp) /. float_of_int n)
    (WTree.Over_rrr.space_bits wr)
    (float_of_int (WTree.Over_rrr.space_bits wr) /. float_of_int n)
    h0;
  print_group "A.rrr — rank over 262144 symbols" ""
    (Test.make_grouped ~name:"bitvectors"
       [
         Test.make ~name:"plain rank"
           (Staged.stage (fun () ->
                ignore (WTree.Over_plain.rank wp (Xoshiro.int rng sigma) (Xoshiro.int rng n))));
         Test.make ~name:"rrr   rank"
           (Staged.stage (fun () ->
                ignore (WTree.Over_rrr.rank wr (Xoshiro.int rng sigma) (Xoshiro.int rng n))));
       ])

(* ------------------------------------------------------------------ *)
(* A.dynwt — Wavelet Trie vs fixed-alphabet dynamic Wavelet Tree. *)

let a_dynwt () =
  Printf.printf
    "\n-- A.dynwt — dynamic alphabet (Wavelet Trie) vs fixed alphabet ([12,18])\n";
  Printf.printf
    "   Same integer workload; the fixed-alphabet WT must know sigma upfront and cannot grow it.\n";
  let sigma = 256 in
  let n = 32768 in
  let rng = Xoshiro.create 8 in
  let data = Array.init n (fun _ -> Xoshiro.int rng sigma) in
  let width = 8 in
  let trie = Dynamic_wt.create () in
  let dt_trie =
    time_batch (fun () ->
        Array.iter (fun x -> Dynamic_wt.append trie (Binarize.of_int_msb ~width x)) data)
  in
  let fixed = Dyn_wavelet_tree.create ~sigma in
  let dt_fixed = time_batch (fun () -> Array.iter (Dyn_wavelet_tree.append fixed) data) in
  Printf.printf "   build by appends: trie %7.0f ns/op   fixed %7.0f ns/op\n"
    (dt_trie *. 1e9 /. float_of_int n)
    (dt_fixed *. 1e9 /. float_of_int n);
  Printf.printf "   space: trie %d bits   fixed %d bits\n" (Dynamic_wt.space_bits trie)
    (Dyn_wavelet_tree.space_bits fixed);
  print_group "A.dynwt — point ops at n=32768, sigma=256" ""
    (Test.make_grouped ~name:"dyn"
       [
         Test.make ~name:"trie  rank"
           (Staged.stage (fun () ->
                ignore
                  (Dynamic_wt.rank trie
                     (Binarize.of_int_msb ~width (Xoshiro.int rng sigma))
                     (Xoshiro.int rng n))));
         Test.make ~name:"fixed rank"
           (Staged.stage (fun () ->
                ignore
                  (Dyn_wavelet_tree.rank fixed (Xoshiro.int rng sigma) (Xoshiro.int rng n))));
         Test.make ~name:"trie  access"
           (Staged.stage (fun () -> ignore (Dynamic_wt.access trie (Xoshiro.int rng n))));
         Test.make ~name:"fixed access"
           (Staged.stage (fun () -> ignore (Dyn_wavelet_tree.access fixed (Xoshiro.int rng n))));
       ])

(* ------------------------------------------------------------------ *)
(* A.dict — related-work approach (1): dictionary-mapped wavelet tree. *)

let a_dict () =
  Printf.printf
    "\n-- A.dict — Wavelet Trie vs dictionary-mapped wavelet tree (approach (1))\n";
  Printf.printf
    "   Paper: lexicographic mapping gives RankPrefix via 2-D range count, but no\n";
  Printf.printf "   efficient SelectPrefix, and the alphabet is frozen at build time.\n";
  let n = 32768 in
  let seq = url_sequence ~seed:42 n in
  let trie = Wavelet_trie.of_array seq in
  let dict = Wt_wavelet_tree.Dict_sequence.of_array seq in
  let g = Urls.create ~seed:42 () in
  let prefixes = Array.init (Urls.host_count g) (Urls.host_prefix g) in
  Printf.printf "   space: trie %d bits   dict-mapped %d bits\n"
    (Wavelet_trie.space_bits trie)
    (Wt_wavelet_tree.Dict_sequence.space_bits dict);
  let rng = Xoshiro.create 1 in
  print_group "A.dict — prefix ops at n=32768" ""
    (Test.make_grouped ~name:"dict"
       [
         Test.make ~name:"trie rank_prefix"
           (Staged.stage (fun () ->
                ignore (Wavelet_trie.rank_prefix trie (pick rng prefixes) (Xoshiro.int rng n))));
         Test.make ~name:"dict rank_prefix"
           (Staged.stage (fun () ->
                ignore
                  (Wt_wavelet_tree.Dict_sequence.rank_prefix dict (pick rng prefixes)
                     (Xoshiro.int rng n))));
         Test.make ~name:"trie select_prefix"
           (Staged.stage (fun () ->
                ignore (Wavelet_trie.select_prefix trie (pick rng prefixes) (Xoshiro.int rng 32))));
         Test.make ~name:"dict select_prefix"
           (Staged.stage (fun () ->
                ignore
                  (Wt_wavelet_tree.Dict_sequence.select_prefix dict (pick rng prefixes)
                     (Xoshiro.int rng 32))));
       ])

(* ------------------------------------------------------------------ *)
(* A.huffman — Huffman-shaped Wavelet Trie vs balanced wavelet tree. *)

let a_huffman () =
  Printf.printf "\n-- A.huffman — Huffman-shaped Wavelet Trie (paper, Section 3 remark)\n";
  let rng = Xoshiro.create 12 in
  let sigma = 256 in
  let zipf = Wt_workload.Zipf.create ~s:1.5 sigma in
  let n = 131072 in
  let a = Array.init n (fun _ -> Wt_workload.Zipf.sample zipf rng) in
  let h = Huffman_wt.of_array ~sigma a in
  let bal = WTree.Over_rrr.of_array ~sigma a in
  let freqs = Array.make sigma 0 in
  Array.iter (fun x -> freqs.(x) <- freqs.(x) + 1) a;
  Printf.printf
    "   avg depth: huffman h~ = %.2f vs balanced log sigma = %d   (H0 = %.2f)\n"
    (Huffman_wt.avg_code_length h)
    (WTree.Over_rrr.levels bal)
    (Wt_bits.Entropy.h0_of_counts freqs);
  Printf.printf "   space: huffman %d bits   balanced+rrr %d bits\n"
    (Huffman_wt.space_bits h) (WTree.Over_rrr.space_bits bal);
  flush stdout

(* ------------------------------------------------------------------ *)
(* A.quad — fanout-4 Wavelet Trie (Section 7 future work, prototyped). *)

let a_quad () =
  Printf.printf "\n-- A.quad — binary vs 4-ary Wavelet Trie (Section 7 future work)\n";
  Printf.printf
    "   Doubling the fanout halves the trie height; per-node sequences become 6-ary.\n";
  let n = 65536 in
  let seq = url_sequence ~seed:42 n in
  let b = Wavelet_trie.of_array seq in
  let q = Wt_wavelet_tree.Quad_wt.of_array seq in
  let module N = Wavelet_trie.Node in
  let rec h node =
    if N.is_leaf node then 0 else 1 + max (h (N.child node false)) (h (N.child node true))
  in
  let hb = match N.root b with None -> 0 | Some r -> h r in
  Printf.printf "   height: binary %d   quad %d\n" hb (Wt_wavelet_tree.Quad_wt.height q);
  Printf.printf "   space:  binary %d bits   quad %d bits\n" (Wavelet_trie.space_bits b)
    (Wt_wavelet_tree.Quad_wt.space_bits q);
  let rng = Xoshiro.create 4 in
  print_group "A.quad — ops at n=65536" ""
    (Test.make_grouped ~name:"quad"
       [
         Test.make ~name:"binary access"
           (Staged.stage (fun () -> ignore (Wavelet_trie.access b (Xoshiro.int rng n))));
         Test.make ~name:"quad   access"
           (Staged.stage (fun () ->
                ignore (Wt_wavelet_tree.Quad_wt.access q (Xoshiro.int rng n))));
         Test.make ~name:"binary rank"
           (Staged.stage (fun () ->
                ignore (Wavelet_trie.rank b (pick rng seq) (Xoshiro.int rng n))));
         Test.make ~name:"quad   rank"
           (Staged.stage (fun () ->
                ignore (Wt_wavelet_tree.Quad_wt.rank q (pick rng seq) (Xoshiro.int rng n))));
       ])

(* ------------------------------------------------------------------ *)
(* Durability: snapshot save/load throughput and WAL replay rate for
   the crash-safe store (format-v2 container + write-ahead log). *)

let rm_store dir =
  if Sys.file_exists dir then begin
    Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let durability_block () =
  let n = 16384 in
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g n in
  let wt = Append_wt.of_array (Array.map Binarize.of_bytes strings) in
  (* snapshot: full-container save (CRC + fsync + rename) and verified load *)
  let path = Filename.temp_file "wt_bench" ".wtx" in
  let reps = 5 in
  let dt_save =
    time_batch (fun () ->
        for _ = 1 to reps do
          Persist.save_append wt path
        done)
    /. float_of_int reps
  in
  let bytes = (Unix.stat path).Unix.st_size in
  let dt_load =
    time_batch (fun () ->
        for _ = 1 to reps do
          ignore (Persist.load_append path : Append_wt.t)
        done)
    /. float_of_int reps
  in
  Sys.remove path;
  let mb_s dt = float_of_int bytes /. dt /. 1048576. in
  (* WAL: logged-append overhead, then replay rate on reopen *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wt_bench_store" in
  rm_store dir;
  let t = Durable.create ~checkpoint_bytes:max_int ~variant:`Append dir in
  let dt_append = time_batch (fun () -> Array.iter (Durable.append t) strings) in
  let wal_bytes = Durable.wal_bytes t in
  Durable.close t;
  let replayed = ref 0 in
  let dt_replay =
    time_batch (fun () ->
        let t', r = Durable.open_ ~checkpoint_bytes:max_int ~verify:false dir in
        replayed := r.Durable.replayed;
        Durable.close t')
  in
  rm_store dir;
  Wt_obs.Json.Obj
    [
      ( "snapshot",
        Wt_obs.Json.Obj
          [
            ("strings", Wt_obs.Json.Int n);
            ("bytes", Wt_obs.Json.Int bytes);
            ("save_ms", Wt_obs.Json.Float (dt_save *. 1e3));
            ("save_mb_per_s", Wt_obs.Json.Float (mb_s dt_save));
            ("load_ms", Wt_obs.Json.Float (dt_load *. 1e3));
            ("load_mb_per_s", Wt_obs.Json.Float (mb_s dt_load));
          ] );
      ( "wal",
        Wt_obs.Json.Obj
          [
            ("records", Wt_obs.Json.Int !replayed);
            ("bytes", Wt_obs.Json.Int wal_bytes);
            ("append_us_per_record", Wt_obs.Json.Float (dt_append *. 1e6 /. float_of_int n));
            ("replay_ms", Wt_obs.Json.Float (dt_replay *. 1e3));
            ("replay_records_per_s", Wt_obs.Json.Float (float_of_int !replayed /. dt_replay));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Serving front-end: closed-loop throughput and latency through the
   full socket → micro-batch → sharded-execute → demux path, plus an
   overload leg whose capacity is pinned by configuration (small batch
   budget on a long window) so the shed fraction measures admission
   control, not the runner's speed. *)

let serve_block () =
  (* throughput is measured with the full telemetry plane live — probes
     recording, the runtime-events GC bridge polling — so the regression
     gate prices the exporter's hot-path cost, not an idealized build *)
  Wtrie.Probe.enable ();
  Wtrie.Runtime.start ();
  let n = 16384 in
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g n in
  let wt = Append_wt.of_array (Array.map Binarize.of_bytes strings) in
  let module Server = Wt_serve.Server in
  let module Client = Wt_serve.Client in
  let rng = Xoshiro.create 77 in
  let opgen _ =
    let module Is = Wt_core.Indexed_sequence in
    if Xoshiro.int rng 2 = 0 then Wt_serve.Wire.Query (Is.Access { pos = Xoshiro.int rng n })
    else
      Wt_serve.Wire.Query
        (Is.Rank { s = strings.(Xoshiro.int rng n); pos = Xoshiro.int rng (n + 1) })
  in
  let with_server tweak f =
    let cfg = tweak { (Server.default_config ()) with port = 0 } in
    let srv = Server.create ~config:cfg ~backend:Server.append_backend (Wt_par.Snapshot.create wt) in
    let d = Domain.spawn (fun () -> Server.serve srv) in
    Fun.protect
      ~finally:(fun () ->
        Server.request_stop srv;
        Domain.join d)
      (fun () -> f srv)
  in
  let load srv ~conns ~window ~ops =
    Client.run_load ~host:"127.0.0.1" ~port:(Server.port srv) ~conns ~window ~ops ~opgen ()
  in
  let uncontended, closed_loop =
    with_server (fun c -> c) (fun srv ->
        (load srv ~conns:1 ~window:1 ~ops:2_000, load srv ~conns:8 ~window:8 ~ops:20_000))
  in
  (* capacity = batch_max per window regardless of machine speed, so the
     closed-loop clients overrun it and the shed fraction is a property
     of admission control rather than of the runner *)
  let overload =
    with_server
      (fun c -> { c with window_us = 5_000; batch_max = 256; queue_max = 64 })
      (fun srv -> load srv ~conns:16 ~window:64 ~ops:20_000)
  in
  let leg (r : Client.report) extra =
    Wt_obs.Json.Obj
      ([
         ("completed", Wt_obs.Json.Int r.Client.completed);
         ("throughput_rps", Wt_obs.Json.Float r.Client.throughput_rps);
         ("p50_us", Wt_obs.Json.Float r.Client.p50_us);
         ("p99_us", Wt_obs.Json.Float r.Client.p99_us);
       ]
      @ extra)
  in
  let shed_fraction =
    if overload.Client.completed = 0 then 0.
    else float_of_int overload.Client.overloaded /. float_of_int overload.Client.completed
  in
  Wtrie.Probe.disable ();
  Wtrie.Probe.reset ();
  Wt_obs.Json.Obj
    [
      ("strings", Wt_obs.Json.Int n);
      ("uncontended", leg uncontended []);
      ("closed_loop", leg closed_loop []);
      ( "overload",
        leg overload [ ("shed_fraction", Wt_obs.Json.Float shed_fraction) ] );
    ]

(* ------------------------------------------------------------------ *)
(* Tiered store: sustained WAL-backed ingest against an in-memory
   dynamic append of the same volume (compaction keeps the delta
   bounded, so the per-string cost stays flat where the monolithic
   dynamic trie's grows with n), and merged-read p99 against the pure
   flat arena the runs are built from (the price of the k-way view). *)

let tiered_block () =
  let n = 16384 in
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g n in
  let module T = Wtrie.Tiered in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wt_bench_tiered" in
  rm_store dir;
  let t = T.create ~threshold:4096 dir in
  let dt_ingest =
    time_batch (fun () ->
        Array.iter (T.ingest t) strings;
        T.wait_compaction t;
        T.flush t)
  in
  let runs = T.run_count t and generation = T.generation t in
  let delta = T.delta_length t in
  let dyn = Wtrie.Dynamic.create () in
  let dt_dyn = time_batch (fun () -> Array.iter (Wtrie.Dynamic.append dyn) strings) in
  (* read-side p99 over scalar access: merged run+delta view vs the
     flat arena alone *)
  let flat = Wtrie.Static.of_array strings in
  let rng = Xoshiro.create 7 in
  let p99 access =
    let reps = 4096 in
    let lat =
      Array.init reps (fun _ ->
          let pos = Xoshiro.int rng n in
          let t0 = now () in
          access pos;
          now () -. t0)
    in
    Array.sort compare lat;
    lat.(int_of_float (0.99 *. float_of_int (reps - 1))) *. 1e6
  in
  let tiered_p99 =
    p99 (fun pos -> ignore (T.access t ~pos : (string, Wtrie.error) result))
  in
  let static_p99 =
    p99 (fun pos -> ignore (Wtrie.Static.access flat ~pos : (string, Wtrie.error) result))
  in
  T.close t;
  rm_store dir;
  let per_s dt = float_of_int n /. dt in
  Wt_obs.Json.Obj
    [
      ("strings", Wt_obs.Json.Int n);
      ("runs", Wt_obs.Json.Int runs);
      ("generation", Wt_obs.Json.Int generation);
      ("delta", Wt_obs.Json.Int delta);
      ("ingest_strings_per_s", Wt_obs.Json.Float (per_s dt_ingest));
      ("dynamic_strings_per_s", Wt_obs.Json.Float (per_s dt_dyn));
      ("ingest_speedup_vs_dynamic", Wt_obs.Json.Float (dt_dyn /. dt_ingest));
      ("read_p99_us", Wt_obs.Json.Float tiered_p99);
      ("static_read_p99_us", Wt_obs.Json.Float static_p99);
      ("read_p99_ratio_vs_static", Wt_obs.Json.Float (tiered_p99 /. static_p99));
    ]

(* ------------------------------------------------------------------ *)
(* Observability metrics block: build each variant through the [Wtrie]
   front door with probes on, run a scripted query/mutation mix, and
   emit the captured report (per-op counters, latency percentiles,
   space-vs-LB breakdown) as JSON.  [--json] prints only this block, as
   one machine-readable object on stdout; full runs append it pretty-
   printed at the end. *)

module Probe = Wt_obs.Probe
module Report = Wt_obs.Report
module Json = Wt_obs.Json

let metrics_queries (type a)
    (module V : Wt_core.Indexed_sequence.STRING_API with type t = a) (wt : a)
    (strings : string array) =
  let n = Array.length strings in
  let rng = Xoshiro.create 11 in
  for i = 0 to 255 do
    ignore (V.access wt ~pos:(Xoshiro.int rng n));
    let s = strings.(Xoshiro.int rng n) in
    ignore (V.count wt s);
    ignore (V.select wt s ~count:(i land 3));
    ignore (V.count_prefix wt ~prefix:(String.sub s 0 (min 4 (String.length s))))
  done;
  (* a batch mix too, so the Exec_* counters land in the report *)
  let ops =
    Array.init 256 (fun i ->
        if i land 1 = 0 then Wt_core.Indexed_sequence.Access { pos = Xoshiro.int rng n }
        else
          Wt_core.Indexed_sequence.Rank
            { s = strings.(Xoshiro.int rng n); pos = Xoshiro.int rng (n + 1) })
  in
  ignore (V.query_batch wt ops);
  (* and the range-analytics suite, so the Analytics_* counters land *)
  for _ = 0 to 3 do
    let prefix = String.sub strings.(Xoshiro.int rng n) 0 4 in
    let lo = Xoshiro.int rng n in
    let hi = lo + Xoshiro.int rng (n - lo + 1) in
    ignore (V.select_all ~prefix ~lo ~hi wt);
    ignore (V.range_count ~prefix wt ~lo ~hi);
    ignore (V.range_distinct ~lo ~hi wt);
    ignore (V.range_topk ~lo ~hi wt ~k:3)
  done

(* Batch vs scalar on the Zipf URL workload: the tentpole number.  Same
   operations through the scalar front door and through [query_batch];
   the engine's level-by-level execution with per-node rank cursors
   should amortize the per-node directory walks away. *)
let batch_block () =
  let n = 131072 in
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g n in
  let wt = Wtrie.Static.of_array strings in
  let b = 16384 in
  let rng = Xoshiro.create 21 in
  let positions = Array.init b (fun _ -> Xoshiro.int rng n) in
  let rank_args =
    Array.init b (fun _ -> (strings.(Xoshiro.int rng n), Xoshiro.int rng (n + 1)))
  in
  let best f =
    let d = ref infinity in
    for _ = 1 to 3 do
      d := min !d (time_batch f)
    done;
    !d
  in
  let scalar_access =
    best (fun () ->
        Array.iter (fun pos -> ignore (Wtrie.Static.access wt ~pos)) positions)
  in
  let access_ops = Array.map (fun pos -> Wtrie.Access { pos }) positions in
  let batch_access = best (fun () -> ignore (Wtrie.Static.query_batch wt access_ops)) in
  let scalar_rank =
    best (fun () ->
        Array.iter (fun (s, pos) -> ignore (Wtrie.Static.rank wt s ~pos)) rank_args)
  in
  let rank_ops = Array.map (fun (s, pos) -> Wtrie.Rank { s; pos }) rank_args in
  let batch_rank = best (fun () -> ignore (Wtrie.Static.query_batch wt rank_ops)) in
  let per op scalar batch =
    let ns dt = dt *. 1e9 /. float_of_int b in
    ( op,
      Json.Obj
        [
          ("scalar_ns_per_op", Json.Float (ns scalar));
          ("batch_ns_per_op", Json.Float (ns batch));
          ("speedup", Json.Float (scalar /. batch));
        ] )
  in
  Json.Obj
    [
      ("n", Json.Int n);
      ("batch_ops", Json.Int b);
      per "access" scalar_access batch_access;
      per "rank" scalar_rank batch_rank;
    ]

(* Restart economics of the format-v3 flat arena: one v2 pointer-tree
   deserialize vs the v3 checksum-plus-mmap open of the same ~131k-URL
   sequence, and the batch engine on the arena vs the pointer trie.
   The open numbers are the whole story of v3 — the arena needs no
   decode, so reopening is independent of the payload size touched. *)
let flat_block () =
  let n = 131072 in
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g n in
  let fwt = Wtrie.Static.of_array strings in
  let pwt = Wavelet_trie.of_array (Array.map Wt_core.String_api.encode strings) in
  let v2 = Filename.temp_file "wt_bench_v2" ".wtx" in
  let v3 = Filename.temp_file "wt_bench_v3" ".wtx" in
  Persist.save_static pwt v2;
  Wtrie.Static.save_file_exn fwt v3;
  let best f =
    let d = ref infinity in
    for _ = 1 to 5 do
      d := min !d (time_batch f)
    done;
    !d
  in
  let v2_load = best (fun () -> ignore (Persist.load_static v2 : Wavelet_trie.t)) in
  let mmap_open =
    best (fun () ->
        let t = Wtrie.Static.open_file_exn ~mode:`Mmap v3 in
        assert (Wtrie.Static.length t = n);
        Wtrie.Static.close t)
  in
  let copy_open =
    best (fun () ->
        let t = Wtrie.Static.open_file_exn ~mode:`Copy v3 in
        assert (Wtrie.Static.length t = n);
        Wtrie.Static.close t)
  in
  Sys.remove v2;
  Sys.remove v3;
  let b = 16384 in
  let rng = Xoshiro.create 41 in
  let ops =
    Array.init b (fun i ->
        if i land 1 = 0 then Wtrie.Access { pos = Xoshiro.int rng n }
        else
          Wtrie.Rank
            { s = strings.(Xoshiro.int rng n); pos = Xoshiro.int rng (n + 1) })
  in
  let flat_batch = best (fun () -> ignore (Wt_exec.Exec.Static.query_batch fwt ops)) in
  let pointer_batch = best (fun () -> ignore (Wt_exec.Exec.Pointer.query_batch pwt ops)) in
  let ns dt = dt *. 1e9 /. float_of_int b in
  Json.Obj
    [
      ("n", Json.Int n);
      ("v2_load_ms", Json.Float (v2_load *. 1e3));
      ("v3_mmap_open_ms", Json.Float (mmap_open *. 1e3));
      ("v3_copy_open_ms", Json.Float (copy_open *. 1e3));
      ("open_speedup_vs_v2", Json.Float (v2_load /. mmap_open));
      ("batch_ops", Json.Int b);
      ("flat_batch_ns_per_op", Json.Float (ns flat_batch));
      ("pointer_batch_ns_per_op", Json.Float (ns pointer_batch));
      ("batch_vs_pointer_ratio", Json.Float (flat_batch /. pointer_batch));
    ]

(* Parallel scaling of the batched engine: the identical Zipf URL batch
   executed sequentially and sharded over explicit pools of 2 and 4
   domains ([lib/par]).  Explicit pools — not the shared default — so
   the measured parallelism is exactly the reported domain count
   regardless of WTRIE_DOMAINS or the host's core count; on a
   single-core box the >1 legs degrade to ~1x (sharding overhead only),
   which is the honest number. *)
let parallel_block () =
  let n = 131072 in
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g n in
  let wt = Wtrie.Static.of_array strings in
  let b = 16384 in
  let rng = Xoshiro.create 31 in
  let positions = Array.init b (fun _ -> Xoshiro.int rng n) in
  let access_ops = Array.map (fun pos -> Wtrie.Access { pos }) positions in
  let rank_ops =
    Array.init b (fun _ ->
        Wtrie.Rank { s = strings.(Xoshiro.int rng n); pos = Xoshiro.int rng (n + 1) })
  in
  let best f =
    let d = ref infinity in
    for _ = 1 to 3 do
      d := min !d (time_batch f)
    done;
    !d
  in
  let engine = Wt_exec.Exec.Static.query_batch in
  let run_at d ops =
    if d = 1 then best (fun () -> ignore (engine wt ops))
    else begin
      let pool = Wt_par.Pool.create ~size:d () in
      let dt =
        best (fun () ->
            ignore (Wt_par.Par_exec.query_batch ~pool ~domains:d engine wt ops))
      in
      Wt_par.Pool.shutdown pool;
      dt
    end
  in
  let per op ops =
    let times = List.map (fun d -> (d, run_at d ops)) [ 1; 2; 4 ] in
    let t1 = List.assoc 1 times in
    ( op,
      Json.Obj
        (List.concat_map
           (fun (d, t) ->
             (Printf.sprintf "domains_%d_ns_per_op" d, Json.Float (t *. 1e9 /. float_of_int b))
             ::
             (if d = 1 then [] else [ (Printf.sprintf "speedup_%d" d, Json.Float (t1 /. t)) ]))
           times) )
  in
  Json.Obj
    [
      ("n", Json.Int n);
      ("batch_ops", Json.Int b);
      ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
      ("pool_default_size", Json.Int (Wt_par.Pool.default_size ()));
      per "access" access_ops;
      per "rank" rank_ops;
    ]

(* Range analytics vs the naive scalar loop it replaces (the tentpole
   numbers of the analytics suite): [select_all ~prefix] against the
   select_prefix-per-occurrence loop, and a window [range_topk] against
   the access-scan + hashtable tally.  Same static Zipf URL index as the
   batch block; the prefix is the busiest host so the reported block is
   large enough to amortize. *)
let analytics_block () =
  let n = 131072 in
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g n in
  let wt = Wtrie.Static.of_array strings in
  let best f =
    let d = ref infinity in
    for _ = 1 to 3 do
      d := min !d (time_batch f)
    done;
    !d
  in
  (* busiest host prefix (up to the '/' closing the authority, skipping
     the scheme's "//") in the Zipf sequence *)
  let host s =
    match String.index_from_opt s (min 8 (String.length s)) '/' with
    | None -> s
    | Some i -> String.sub s 0 (i + 1)
  in
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      let h = host s in
      Hashtbl.replace tbl h (1 + Option.value (Hashtbl.find_opt tbl h) ~default:0))
    strings;
  let prefix, hits =
    Hashtbl.fold (fun h c ((_, bc) as b) -> if c > bc then (h, c) else b) tbl ("", 0)
  in
  let naive_select_all =
    best (fun () ->
        for k = 0 to hits - 1 do
          ignore (Wtrie.Static.select_prefix wt ~prefix ~count:k)
        done)
  in
  let fast_select_all = best (fun () -> ignore (Wtrie.Static.select_all ~prefix wt)) in
  let k = 10 in
  let lo = n / 4 in
  let hi = lo + 16384 in
  let naive_topk =
    best (fun () ->
        let t = Hashtbl.create 1024 in
        for pos = lo to hi - 1 do
          match Wtrie.Static.access wt ~pos with
          | Ok s -> Hashtbl.replace t s (1 + Option.value (Hashtbl.find_opt t s) ~default:0)
          | Error _ -> assert false
        done;
        let l = Hashtbl.fold (fun s c acc -> (s, c) :: acc) t [] in
        let l = List.sort (fun (a, ca) (b, cb) -> if ca <> cb then compare cb ca else compare a b) l in
        ignore (List.filteri (fun i _ -> i < k) l))
  in
  let fast_topk = best (fun () -> ignore (Wtrie.Static.range_topk ~lo ~hi wt ~k)) in
  let ms dt = dt *. 1e3 in
  Json.Obj
    [
      ("n", Json.Int n);
      ( "select_all",
        Json.Obj
          [
            ("prefix_hits", Json.Int hits);
            ("naive_ms", Json.Float (ms naive_select_all));
            ("select_all_ms", Json.Float (ms fast_select_all));
            ("speedup", Json.Float (naive_select_all /. fast_select_all));
          ] );
      ( "topk",
        Json.Obj
          [
            ("window", Json.Int (hi - lo));
            ("k", Json.Int k);
            ("naive_ms", Json.Float (ms naive_topk));
            ("topk_ms", Json.Float (ms fast_topk));
            ("speedup", Json.Float (naive_topk /. fast_topk));
          ] );
    ]

let metrics_block () =
  let g = Urls.create ~seed:42 () in
  let strings = Urls.raw_sequence g 2048 in
  let capture variant (st : Stats.t) =
    let r = Report.capture ~space:[ Stats.to_breakdown ~variant st ] () in
    Probe.disable ();
    Probe.reset ();
    (variant, Report.to_json r)
  in
  let static =
    Probe.reset ();
    Probe.enable ();
    let wt = Wtrie.Static.of_array strings in
    metrics_queries (module Wtrie.Static) wt strings;
    capture "static" (Wt_core.Flat_wt.stats wt)
  in
  let append =
    Probe.reset ();
    Probe.enable ();
    let wt = Wtrie.Append.create () in
    Array.iter (Wtrie.Append.append wt) strings;
    metrics_queries (module Wtrie.Append) wt strings;
    capture "append" (Append_wt.stats wt)
  in
  let dynamic =
    Probe.reset ();
    Probe.enable ();
    let wt = Wtrie.Dynamic.of_array strings in
    let rng = Xoshiro.create 13 in
    for i = 0 to 127 do
      Wtrie.Dynamic.insert wt
        ~pos:(Xoshiro.int rng (Wtrie.Dynamic.length wt + 1))
        (Printf.sprintf "fresh.dev/i/%d" i);
      if i land 1 = 0 then
        Wtrie.Dynamic.delete wt ~pos:(Xoshiro.int rng (Wtrie.Dynamic.length wt))
    done;
    metrics_queries (module Wtrie.Dynamic) wt strings;
    capture "dynamic" (Dynamic_wt.stats wt)
  in
  Json.Obj
    [
      ("metrics", Json.Obj [ static; append; dynamic ]);
      ("batch", batch_block ());
      ("flat", flat_block ());
      ("parallel", parallel_block ());
      ("analytics", analytics_block ());
      ("durability", durability_block ());
      ("serve", serve_block ());
      ("tiered", tiered_block ());
    ]

let print_metrics_block ~json_only =
  let j = metrics_block () in
  if json_only then print_endline (Json.to_string j)
  else begin
    Printf.printf "\n-- metrics — observability report (front-door workload, probes on)\n";
    print_endline (Json.to_string_pretty j)
  end;
  flush stdout

(* ------------------------------------------------------------------ *)

let () =
  let flag f = Array.exists (String.equal f) Sys.argv in
  let json_only = flag "--json" in
  let quick = flag "--quick" in
  if json_only then print_metrics_block ~json_only:true
  else begin
    Printf.printf "wavelet-trie benchmark harness (experiment ids match DESIGN.md)\n";
    Printf.printf "bechamel quota per microbench: %.2fs\n" quota;
    f_figures ();
    if not quick then begin
      t1_build ();
      t1_space ();
      t1_static_query ();
      t1_append_query ();
      t1_dynamic_query ();
      t1_append_append ();
      t1_dynamic_updates ();
      s5_range ();
      s6_balanced ();
      s7_cache ();
      a_init ();
      a_rrr ();
      a_dynwt ();
      a_dict ();
      a_quad ();
      a_huffman ()
    end;
    print_metrics_block ~json_only:false;
    Printf.printf "\ndone.\n"
  end
