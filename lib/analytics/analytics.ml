(** Range analytics: window queries answered by one root-to-frontier
    traversal instead of a loop of scalar queries.

    Every operation works over the position window [\[lo, hi)] of the
    sequence, optionally restricted to strings starting with a prefix:

    - {!Make.select_all} reports every window position whose string
      matches the prefix, ascending — one Patricia descent, then the
      whole occurrence block is mapped back to root positions level by
      level (a batched Lemma 3.3, amortizing the per-level select work
      across the block);
    - {!Make.range_count} is [rank_prefix hi - rank_prefix lo] in a
      single descent, one rank cursor per trail node answering both
      endpoints;
    - {!Make.range_distinct} enumerates the distinct strings present in
      the window with their counts, visiting only subtrees that contain
      window elements;
    - {!Make.range_topk} pops the [k] most frequent strings off a
      max-priority queue of trie nodes ordered by window count, so only
      nodes whose count can still beat the k-th answer are expanded.

    Written once over {!Wt_core.Node_view.CURSORED} and instantiated for
    the static, append-only and fully-dynamic tries; the descents reuse
    {!Wt_core.Query}'s trails and every per-node rank pair goes through
    one {!Wt_core.Node_view.CURSORED.bv_cursor} (the batch engine's
    cursor seam), since the two window endpoints arrive monotone.

    All operations are pure reads: they are safe on [Dynamic_wt.snapshot]
    copies published through [Wt_par.Snapshot] while the owner mutates. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace
module Iseq = Wt_core.Indexed_sequence

let bit0 = Bitstring.of_bool_list [ false ]
let bit1 = Bitstring.of_bool_list [ true ]

(** Bitstring-level algorithms.  Windows are assumed valid
    ([0 <= lo <= hi <= length]); the byte-string façade
    ({!Make_string}) validates and reports {!Iseq.error}s. *)
module Make (N : Wt_core.Node_view.CURSORED) = struct
  module Q = Wt_core.Query.Make (N)

  (* The window [lo, hi) down-mapped into the subsequence of the node
     covering the prefix (np of Lemma 3.3), plus the descent trail
     (root-first) and the bitstring spelled from the root down to and
     including np's label. *)
  type window = {
    node : N.node;
    trail : (N.node * bool) array;
    path : Bitstring.t;
    lo : int;
    hi : int;
  }

  (* One Patricia descent resolves the prefix; then one rank cursor per
     trail node down-maps both window endpoints (monotone: lo <= hi).
     [None] when the sequence is empty or no stored string starts with
     the prefix. *)
  let resolve ?prefix trie ~lo ~hi =
    match N.root trie with
    | None -> None
    | Some root -> (
        match prefix with
        | None -> Some { node = root; trail = [||]; path = N.label root; lo; hi }
        | Some p -> (
            match Q.prefix_trail trie p with
            | None -> None
            | Some (np, rev_trail) ->
                let trail = Array.of_list (List.rev rev_trail) in
                let lo = ref lo and hi = ref hi in
                let pieces = ref [] in
                Array.iter
                  (fun (node, b) ->
                    let cur = N.bv_cursor node in
                    lo := N.cursor_rank cur b !lo;
                    hi := N.cursor_rank cur b !hi;
                    pieces := (if b then bit1 else bit0) :: N.label node :: !pieces)
                  trail;
                let path = Bitstring.concat (List.rev (N.label np :: !pieces)) in
                Some { node = np; trail; path; lo = !lo; hi = !hi }))

  let range_count ?prefix trie ~lo ~hi =
    match resolve ?prefix trie ~lo ~hi with None -> 0 | Some w -> w.hi - w.lo

  (* Map one level's ascending occurrence indices [out] (indices into the
     [b]-subsequence of [node]'s β) back to β positions, in place.  When
     the block is dense in β — the hits span fewer than [scan_factor]
     positions per hit — a single bit scan from the first hit replaces
     the per-index directory selects; two boundary selects decide. *)
  let scan_factor = 8

  let up_level node b out =
    let c = Array.length out in
    Probe.hit Wt_nodes_visited;
    let first = N.bv_select node b out.(0) in
    if c = 1 then out.(0) <- first
    else begin
      let last = N.bv_select node b out.(c - 1) in
      if last - first < scan_factor * c then begin
        (* dense: one amortized-O(span) scan for the whole block *)
        let next = N.iter_bits node first in
        let cnt = ref out.(0) in
        let k = ref 0 in
        let pos = ref first in
        while !k < c do
          (if next () = b then begin
             if !cnt = out.(!k) then begin
               out.(!k) <- !pos;
               incr k
             end;
             incr cnt
           end);
          incr pos
        done
      end
      else begin
        out.(0) <- first;
        for i = 1 to c - 2 do
          out.(i) <- N.bv_select node b out.(i)
        done;
        out.(c - 1) <- last
      end
    end

  let select_all ?prefix trie ~lo ~hi =
    match resolve ?prefix trie ~lo ~hi with
    | None -> [||]
    | Some w ->
        let c = w.hi - w.lo in
        if c = 0 then [||]
        else begin
          let out = Array.init c (fun i -> w.lo + i) in
          for i = Array.length w.trail - 1 downto 0 do
            let node, b = w.trail.(i) in
            up_level node b out
          done;
          out
        end

  let range_distinct ?prefix trie ~lo ~hi =
    match resolve ?prefix trie ~lo ~hi with
    | None -> [||]
    | Some w ->
        let acc = ref [] in
        let rec go node path lo hi =
          Probe.hit Wt_nodes_visited;
          if N.is_leaf node then acc := (path, hi - lo) :: !acc
          else begin
            let cur = N.bv_cursor node in
            let z_lo = N.cursor_rank cur false lo in
            let z_hi = N.cursor_rank cur false hi in
            (if z_hi > z_lo then
               let c0 = N.child node false in
               go c0 (Bitstring.concat [ path; bit0; N.label c0 ]) z_lo z_hi);
            let o_lo = lo - z_lo and o_hi = hi - z_hi in
            if o_hi > o_lo then begin
              let c1 = N.child node true in
              go c1 (Bitstring.concat [ path; bit1; N.label c1 ]) o_lo o_hi
            end
          end
        in
        if w.hi > w.lo then go w.node w.path w.lo w.hi;
        (* 0-subtrees were visited first, so [acc] is reverse-lex *)
        Array.of_list (List.rev !acc)

  type 'node entry = {
    cnt : int;
    path : Bitstring.t;
    enode : 'node;
    elo : int;
    ehi : int;
  }

  (* Entry order for the top-k priority queue: larger window count first,
     lexicographically smaller path on ties.  Path order is sound for
     tie-breaking: a node's path is a prefix of every descendant's, and
     prefixes compare smaller, so an expanded child never outranks a
     leaf already popped ahead of its parent. *)
  let better a b = a.cnt > b.cnt || (a.cnt = b.cnt && Bitstring.compare a.path b.path < 0)

  let range_topk ?prefix trie ~lo ~hi ~k =
    match resolve ?prefix trie ~lo ~hi with
    | None -> [||]
    | Some w ->
        if k = 0 || w.hi = w.lo then [||]
        else begin
          (* binary max-heap of disjoint subtrees, ordered by [better] *)
          let dummy = { cnt = 0; path = Bitstring.empty; enode = w.node; elo = 0; ehi = 0 } in
          let buf = ref (Array.make 16 dummy) in
          let size = ref 0 in
          let swap i j =
            let t = !buf.(i) in
            !buf.(i) <- !buf.(j);
            !buf.(j) <- t
          in
          let push e =
            if !size = Array.length !buf then begin
              let b = Array.make (2 * !size) dummy in
              Array.blit !buf 0 b 0 !size;
              buf := b
            end;
            !buf.(!size) <- e;
            let i = ref !size in
            incr size;
            while !i > 0 && better !buf.(!i) !buf.((!i - 1) / 2) do
              swap !i ((!i - 1) / 2);
              i := (!i - 1) / 2
            done
          in
          let pop () =
            let top = !buf.(0) in
            decr size;
            !buf.(0) <- !buf.(!size);
            let i = ref 0 in
            let sifting = ref true in
            while !sifting do
              let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
              let m = ref !i in
              if l < !size && better !buf.(l) !buf.(!m) then m := l;
              if r < !size && better !buf.(r) !buf.(!m) then m := r;
              if !m = !i then sifting := false
              else begin
                swap !i !m;
                i := !m
              end
            done;
            top
          in
          let out = ref [] in
          let taken = ref 0 in
          push { cnt = w.hi - w.lo; path = w.path; enode = w.node; elo = w.lo; ehi = w.hi };
          while !taken < k && !size > 0 do
            let e = pop () in
            Probe.hit Wt_nodes_visited;
            if N.is_leaf e.enode then begin
              (* no unexpanded subtree can beat a popped leaf *)
              out := (e.path, e.cnt) :: !out;
              incr taken
            end
            else begin
              let cur = N.bv_cursor e.enode in
              let z_lo = N.cursor_rank cur false e.elo in
              let z_hi = N.cursor_rank cur false e.ehi in
              (if z_hi > z_lo then
                 let c0 = N.child e.enode false in
                 push
                   {
                     cnt = z_hi - z_lo;
                     path = Bitstring.concat [ e.path; bit0; N.label c0 ];
                     enode = c0;
                     elo = z_lo;
                     ehi = z_hi;
                   });
              let o_lo = e.elo - z_lo and o_hi = e.ehi - z_hi in
              if o_hi > o_lo then begin
                let c1 = N.child e.enode true in
                push
                  {
                    cnt = o_hi - o_lo;
                    path = Bitstring.concat [ e.path; bit1; N.label c1 ];
                    enode = c1;
                    elo = o_lo;
                    ehi = o_hi;
                  }
              end
            end
          done;
          Array.of_list (List.rev !out)
        end
end

(** Byte-string façade: argument validation against the shared
    {!Iseq.error} shape, prefix binarization, leaf-path decoding, and
    observability (one [Analytics_*] counter hit plus a latency sample
    and an [analytics.*] span per call).  Signatures match the range
    half of {!Iseq.QUERY_API}. *)
(* No [type t] here: the module is [include]d next to the variant's
   string façade in [Wtrie], which already fixes [t = N.trie]. *)
module Make_string (N : Wt_core.Node_view.CURSORED) = struct
  module A = Make (N)

  let window t lo hi =
    let len = N.length t in
    let lo = Option.value lo ~default:0 in
    let hi = Option.value hi ~default:len in
    if lo < 0 || lo > len then Error (Iseq.Position_out_of_bounds { pos = lo; len })
    else if hi < lo || hi > len then Error (Iseq.Position_out_of_bounds { pos = hi; len })
    else Ok (lo, hi)

  let bits_prefix = Option.map Wt_core.String_api.encode_prefix
  let decode (path, n) = (Binarize.to_bytes path, n)

  let select_all ?prefix ?lo ?hi t =
    match window t lo hi with
    | Error e -> Error e
    | Ok (lo, hi) ->
        Probe.hit Analytics_select_all;
        Trace.with_span ~args:[ ("lo", lo); ("hi", hi) ] "analytics.select_all"
          (fun () ->
            Probe.time Analytics_select_all (fun () ->
                Ok (A.select_all ?prefix:(bits_prefix prefix) t ~lo ~hi)))

  let range_count ?prefix t ~lo ~hi =
    match window t (Some lo) (Some hi) with
    | Error e -> Error e
    | Ok (lo, hi) ->
        Probe.hit Analytics_range_count;
        Trace.with_span ~args:[ ("lo", lo); ("hi", hi) ] "analytics.range_count"
          (fun () ->
            Probe.time Analytics_range_count (fun () ->
                Ok (A.range_count ?prefix:(bits_prefix prefix) t ~lo ~hi)))

  let range_distinct ?prefix ?lo ?hi t =
    match window t lo hi with
    | Error e -> Error e
    | Ok (lo, hi) ->
        Probe.hit Analytics_distinct;
        Trace.with_span ~args:[ ("lo", lo); ("hi", hi) ] "analytics.distinct"
          (fun () ->
            Probe.time Analytics_distinct (fun () ->
                Ok
                  (Array.map decode
                     (A.range_distinct ?prefix:(bits_prefix prefix) t ~lo ~hi))))

  let range_topk ?prefix ?lo ?hi t ~k =
    if k < 0 then Error (Iseq.Negative_count { count = k })
    else
      match window t lo hi with
      | Error e -> Error e
      | Ok (lo, hi) ->
          Probe.hit Analytics_topk;
          Trace.with_span
            ~args:[ ("lo", lo); ("hi", hi); ("k", k) ]
            "analytics.topk"
            (fun () ->
              Probe.time Analytics_topk (fun () ->
                  Ok
                    (Array.map decode
                       (A.range_topk ?prefix:(bits_prefix prefix) t ~lo ~hi ~k))))
end

module Static = Make_string (Wt_core.Flat_wt.Node)
module Pointer = Make_string (Wt_core.Wavelet_trie.Node)
module Append = Make_string (Wt_core.Append_wt.Node)
module Dynamic = Make_string (Wt_core.Dynamic_wt.Node)
