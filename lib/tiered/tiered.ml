(** Write-optimized tiered store: a small fully-dynamic delta absorbing
    ingests, immutable flat-arena runs absorbing compactions, and a
    merged read view over both.

    The paper's fully-dynamic trie pays O(|s| + h_s log n) per update
    with n the whole sequence; the LSM-style arrangement here keeps the
    mutable structure small (n = delta size, bounded by the compaction
    threshold) and amortizes the rest into static runs that answer
    reads at flat-arena speed.  The moving parts:

    - {b Ingest} appends the raw byte string to the WAL (the ack
      point), then to the in-memory [Dynamic_wt] delta.  The WAL is
      the delta's replay source — there is no separate delta snapshot
      file.
    - {b Reads} go through a {!View}: the tier list
      [runs…; sealed?; delta] with prefix-sum offsets.  The view
      implements the whole query surface — scalar access/rank/select
      via per-tier decomposition, the analytics suite via per-tier
      windows merged by decoded string, and [query_batch] via a
      two-phase per-tier batch decomposition that reuses the batch
      engine and the domain pool on every tier.
    - {b Compaction} seals the delta (the compactor takes ownership;
      queries keep a frozen [Dynamic_wt.snapshot] of it as a tier),
      builds a [Flat_wt] arena off the owner's critical path — on a
      background domain or, for the synchronous [compact], optionally
      through a [Wt_par.Pool] — and commits with a strict ordering:
      run file durable, WAL rotated to the next generation carrying
      only post-seal ingests, manifest swapped.  Each window of that
      ordering is recoverable (see {!open_}).
    - {b Publication}: every commit (and [publish]) installs a frozen
      view in a {!Wt_par.Snapshot}, so concurrent readers and the
      serving front-end never observe a torn tier list; a batch in
      flight keeps the epoch's tiers alive until it completes.

    On-disk layout (a store is a directory):
    - [manifest.wtx] — format-v2 container, tag ["tiered-manifest"],
      payload = marshalled [(generation, run file names oldest-first,
      next run number)];
    - [run-NNNNNN.wtx] — format-v3 flat-arena containers;
    - [wal.log] — {!Wt_durable.Wal} log, tag ["tiered"], generation
      equal to the manifest's; append records only.

    Crash windows of a compaction commit, and how {!open_} resolves
    them (g = manifest generation on disk, w = WAL generation):
    - after the run write, before the WAL rotation: the run file is an
      orphan ([w = g]); the full WAL replays, the orphan is deleted and
      the next compaction rewrites it atomically;
    - after the WAL rotation, before the manifest swap ([w = g+1]):
      roll forward — the pending run [run-<next>] holds exactly the
      records the rotation dropped, so the run is adopted, the
      manifest rewritten at [g+1], and the (suffix-only) WAL replayed;
    - [w < g] or torn WAL header: the log is stale (its records are
      already inside a run) — reset it;
    - [w > g+1]: impossible under the protocol; refuse to open. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Iseq = Wt_core.Indexed_sequence
module Flat_wt = Wt_core.Flat_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Stats = Wt_core.Stats
module Container = Wt_durable.Container
module Wal = Wt_durable.Wal
module Fault = Wt_durable.Fault
module Snapshot = Wt_par.Snapshot
module Pool = Wt_par.Pool
module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace
module Flight = Wt_obs.Flight
module Export = Wt_obs.Export

let manifest_tag = "tiered-manifest"
let wal_tag = "tiered"
let default_threshold = 4096
let fail fmt = Printf.ksprintf (fun m -> raise (Container.Format_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Merged read view *)

module View = struct
  type tier = Run of Flat_wt.t | Dyn of Dynamic_wt.t

  type t = {
    tiers : tier array;
    offsets : int array;  (** |tiers|+1 prefix sums of tier lengths *)
  }

  let tier_length = function
    | Run f -> Flat_wt.length f
    | Dyn d -> Dynamic_wt.length d

  let make tiers =
    let n = Array.length tiers in
    let offsets = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      offsets.(i + 1) <- offsets.(i) + tier_length tiers.(i)
    done;
    { tiers; offsets }

  let length v = v.offsets.(Array.length v.tiers)
  let tier_count v = Array.length v.tiers
  let tier_len v i = v.offsets.(i + 1) - v.offsets.(i)

  (* The tier holding global position [pos] (valid: 0 <= pos < length):
     the greatest [i] with [offsets.(i) <= pos], found by binary search
     over the prefix sums.  Empty tiers share an offset with their
     successor and are skipped by the greatest-index rule. *)
  let locate v pos =
    let lo = ref 0 and hi = ref (Array.length v.tiers - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if v.offsets.(mid) <= pos then lo := mid else hi := mid - 1
    done;
    !lo

  (* Per-tier scalar primitives. *)
  let t_access t p =
    match t with Run f -> Flat_wt.access f p | Dyn d -> Dynamic_wt.access d p

  let t_rank t s p =
    match t with Run f -> Flat_wt.rank f s p | Dyn d -> Dynamic_wt.rank d s p

  let t_rank_prefix t s p =
    match t with
    | Run f -> Flat_wt.rank_prefix f s p
    | Dyn d -> Dynamic_wt.rank_prefix d s p

  let t_select t s k =
    match t with Run f -> Flat_wt.select f s k | Dyn d -> Dynamic_wt.select d s k

  let t_select_prefix t s k =
    match t with
    | Run f -> Flat_wt.select_prefix f s k
    | Dyn d -> Dynamic_wt.select_prefix d s k

  let t_space_bits = function
    | Run f -> Flat_wt.space_bits f
    | Dyn d -> Dynamic_wt.space_bits d

  let t_stats = function Run f -> Flat_wt.stats f | Dyn d -> Dynamic_wt.stats d

  (* Per-tier analytics at the bitstring level; windows pre-clipped. *)
  module AR = Wt_analytics.Analytics.Make (Flat_wt.Node)
  module AD = Wt_analytics.Analytics.Make (Dynamic_wt.Node)

  let t_select_all ?prefix t ~lo ~hi =
    match t with
    | Run f -> AR.select_all ?prefix f ~lo ~hi
    | Dyn d -> AD.select_all ?prefix d ~lo ~hi

  let t_range_count ?prefix t ~lo ~hi =
    match t with
    | Run f -> AR.range_count ?prefix f ~lo ~hi
    | Dyn d -> AD.range_count ?prefix d ~lo ~hi

  let t_range_distinct ?prefix t ~lo ~hi =
    match t with
    | Run f -> AR.range_distinct ?prefix f ~lo ~hi
    | Dyn d -> AD.range_distinct ?prefix d ~lo ~hi

  (* The global window [lo, hi) clipped to tier [i], in tier-local
     coordinates; [None] when they do not intersect. *)
  let clip v i ~lo ~hi =
    let a = max lo v.offsets.(i) and b = min hi v.offsets.(i + 1) in
    if a >= b then None else Some (a - v.offsets.(i), b - v.offsets.(i))

  (* Merge per-tier distinct tallies by decoded byte string.  Tiers are
     independent tries, so equal strings can sit at structurally
     different leaves; the decoded bytes are the canonical key.  The
     table keeps one representative bitstring per key for ordering. *)
  let tally ?prefix v ~lo ~hi =
    let tbl = Hashtbl.create 64 in
    Array.iteri
      (fun i t ->
        match clip v i ~lo ~hi with
        | None -> ()
        | Some (l, h) ->
            Array.iter
              (fun (path, c) ->
                let key = Binarize.to_bytes path in
                match Hashtbl.find_opt tbl key with
                | Some (_, r) -> r := !r + c
                | None -> Hashtbl.add tbl key (path, ref c))
              (t_range_distinct ?prefix t ~lo:l ~hi:h))
      v.tiers;
    tbl

  let tally_items ?prefix v ~lo ~hi =
    Hashtbl.fold (fun _ (p, r) acc -> (p, !r) :: acc) (tally ?prefix v ~lo ~hi) []

  (* Bitstring-level analytics over the merged view.  Windows are
     assumed valid, as in {!Wt_analytics.Analytics.Make}. *)
  let select_all_bits ?prefix v ~lo ~hi =
    let parts = ref [] in
    for i = Array.length v.tiers - 1 downto 0 do
      match clip v i ~lo ~hi with
      | None -> ()
      | Some (l, h) ->
          let arr = t_select_all ?prefix v.tiers.(i) ~lo:l ~hi:h in
          let off = v.offsets.(i) in
          parts := Array.map (fun p -> p + off) arr :: !parts
    done;
    (* per-tier results are ascending and tiers are position-disjoint *)
    Array.concat !parts

  let range_count_bits ?prefix v ~lo ~hi =
    let acc = ref 0 in
    Array.iteri
      (fun i t ->
        match clip v i ~lo ~hi with
        | None -> ()
        | Some (l, h) -> acc := !acc + t_range_count ?prefix t ~lo:l ~hi:h)
      v.tiers;
    !acc

  let range_distinct_bits ?prefix v ~lo ~hi =
    let items = tally_items ?prefix v ~lo ~hi in
    let items =
      List.sort (fun (a, _) (b, _) -> Bitstring.compare a b) items
    in
    Array.of_list items

  (* Global top-k needs global counts: a string in no single tier's
     top k can win on the merged tallies, so per-tier topk is not
     sound — merge full distinct tallies, then order. *)
  let range_topk_bits ?prefix v ~lo ~hi ~k =
    if k = 0 then [||]
    else
      let items = tally_items ?prefix v ~lo ~hi in
      let items =
        List.sort
          (fun (pa, ca) (pb, cb) ->
            if ca <> cb then compare cb ca else Bitstring.compare pa pb)
          items
      in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: tl -> x :: take (k - 1) tl
      in
      Array.of_list (take k items)

  (* The merged view as an {!Iseq.S} indexed sequence, so the standard
     byte façade ({!Wt_core.String_api.Make}) applies verbatim and the
     merged scalar API reports byte-for-byte the same errors as every
     other variant. *)
  module Seq = struct
    type nonrec t = t

    let length = length
    let access v pos =
      let i = locate v pos in
      t_access v.tiers.(i) (pos - v.offsets.(i))

    (* rank over [0, pos): sum of per-tier ranks over clipped windows. *)
    let fold_rank rank1 v s pos =
      let acc = ref 0 and i = ref 0 in
      let nt = Array.length v.tiers in
      while !i < nt && v.offsets.(!i) < pos do
        let upto = min (tier_len v !i) (pos - v.offsets.(!i)) in
        if upto > 0 then acc := !acc + rank1 v.tiers.(!i) s upto;
        incr i
      done;
      !acc

    let rank v s pos = fold_rank t_rank v s pos
    let rank_prefix v s pos = fold_rank t_rank_prefix v s pos

    (* select: walk tiers subtracting each tier's total occurrence
       count until the residual index lands inside one. *)
    let fold_select count1 sel1 v s idx =
      let nt = Array.length v.tiers in
      let rec go i idx =
        if i >= nt then None
        else
          let len = tier_len v i in
          let c = if len = 0 then 0 else count1 v.tiers.(i) s len in
          if idx < c then
            Option.map (fun p -> v.offsets.(i) + p) (sel1 v.tiers.(i) s idx)
          else go (i + 1) (idx - c)
      in
      go 0 idx

    let select v s idx = fold_select t_rank t_select v s idx
    let select_prefix v s idx = fold_select t_rank_prefix t_select_prefix v s idx

    let distinct_count v =
      Hashtbl.length (tally v ~lo:0 ~hi:(length v))

    let space_bits v =
      Array.fold_left (fun acc t -> acc + t_space_bits t) 0 v.tiers
      + (64 * (Array.length v.tiers + 1))
  end

  (* ---------------------------------------------------------------- *)
  (* Batched queries: two-phase per-tier decomposition.

     Phase A sends every tier one batch carrying (a) translated
     [Access]es for positions it owns, (b) clipped [Rank]-family
     probes whose results sum into the merged answer, and (c) one
     whole-tier count probe per [Select]-family op.  Phase B resolves
     each select in the single tier holding its residual index.  Both
     phases run each tier's sub-batch through {!Wt_par.Par_exec}, so
     the pool parallelism of the flat and dynamic engines carries
     over unchanged; results are merged back in input order. *)

  type a_tag =
    | Direct of int  (** phase-A result is op [i]'s final answer *)
    | Sum of int  (** phase-A result adds into op [i]'s rank sum *)
    | Sel_count of int * int  (** whole-tier count for select op [i], tier [j] *)

  let run_tier ?pool ?domains v j ops =
    match v.tiers.(j) with
    | Run f -> Wt_par.Par_exec.query_batch ?pool ?domains Wt_exec.Exec.Static.query_batch f ops
    | Dyn d -> Wt_par.Par_exec.query_batch ?pool ?domains Wt_exec.Exec.Dynamic.query_batch d ops

  let query_batch ?pool ?domains v (ops : Iseq.op array) :
      (Iseq.value, Iseq.error) result array =
    let nt = Array.length v.tiers in
    let n = length v in
    let nops = Array.length ops in
    let out = Array.make nops (Ok (Iseq.Int 0)) in
    let errs = Array.make nops None in
    let err i e = if errs.(i) = None then errs.(i) <- Some e in
    let sums = Array.make nops 0 in
    let sel_counts = Hashtbl.create 16 in
    (* phase-A op lists per tier, accumulated in reverse *)
    let a_ops = Array.make nt [] and a_tags = Array.make nt [] in
    let push_a j op tag =
      a_ops.(j) <- op :: a_ops.(j);
      a_tags.(j) <- tag :: a_tags.(j)
    in
    let each_tier f =
      for j = 0 to nt - 1 do
        if tier_len v j > 0 then f j (tier_len v j)
      done
    in
    Array.iteri
      (fun i op ->
        match op with
        | Iseq.Access { pos } ->
            if pos < 0 || pos >= n then
              err i (Iseq.Position_out_of_bounds { pos; len = n })
            else
              let j = locate v pos in
              push_a j (Iseq.Access { pos = pos - v.offsets.(j) }) (Direct i)
        | Iseq.Rank { s; pos } ->
            if pos < 0 || pos > n then
              err i (Iseq.Position_out_of_bounds { pos; len = n })
            else
              each_tier (fun j len ->
                  if v.offsets.(j) < pos then
                    push_a j
                      (Iseq.Rank { s; pos = min len (pos - v.offsets.(j)) })
                      (Sum i))
        | Iseq.Rank_prefix { prefix; pos } ->
            if pos < 0 || pos > n then
              err i (Iseq.Position_out_of_bounds { pos; len = n })
            else
              each_tier (fun j len ->
                  if v.offsets.(j) < pos then
                    push_a j
                      (Iseq.Rank_prefix
                         { prefix; pos = min len (pos - v.offsets.(j)) })
                      (Sum i))
        | Iseq.Select { s; count } ->
            if count < 0 then err i (Iseq.Negative_count { count })
            else begin
              Hashtbl.replace sel_counts i (Array.make nt 0);
              each_tier (fun j len ->
                  push_a j (Iseq.Rank { s; pos = len }) (Sel_count (i, j)))
            end
        | Iseq.Select_prefix { prefix; count } ->
            if count < 0 then err i (Iseq.Negative_count { count })
            else begin
              Hashtbl.replace sel_counts i (Array.make nt 0);
              each_tier (fun j len ->
                  push_a j
                    (Iseq.Rank_prefix { prefix; pos = len })
                    (Sel_count (i, j)))
            end)
      ops;
    let run_phase ops_per_tier consume =
      Array.iteri
        (fun j rev_ops ->
          match rev_ops with
          | [] -> ()
          | _ ->
              let ops_j = Array.of_list (List.rev rev_ops) in
              let res = run_tier ?pool ?domains v j ops_j in
              consume j res)
        ops_per_tier
    in
    run_phase a_ops (fun j res ->
        let tags = Array.of_list (List.rev a_tags.(j)) in
        Array.iteri
          (fun k r ->
            let i =
              match tags.(k) with Direct i | Sum i | Sel_count (i, _) -> i
            in
            match (tags.(k), r) with
            | _, Error e -> err i e
            | Direct _, Ok value -> out.(i) <- Ok value
            | Sum _, Ok (Iseq.Int c) -> sums.(i) <- sums.(i) + c
            | Sel_count (_, j'), Ok (Iseq.Int c) ->
                (Hashtbl.find sel_counts i).(j') <- c
            | (Sum _ | Sel_count _), Ok (Iseq.Str _) ->
                (* engine shape violation; not reachable *)
                err i
                  (Iseq.Storage_error
                     { path = "<tiered>"; reason = "batch result shape mismatch" }))
          res);
    (* phase B: one select per op, in the tier owning the residual *)
    let b_ops = Array.make nt [] and b_idx = Array.make nt [] in
    Array.iteri
      (fun i op ->
        if errs.(i) = None then
          match op with
          | Iseq.Select { s = _; count } | Iseq.Select_prefix { prefix = _; count }
            -> (
              let counts = Hashtbl.find sel_counts i in
              let total = Array.fold_left ( + ) 0 counts in
              if count >= total then
                err i (Iseq.No_occurrence { count; occurrences = total })
              else begin
                let j = ref 0 and rem = ref count in
                while !rem >= counts.(!j) do
                  rem := !rem - counts.(!j);
                  incr j
                done;
                let sub =
                  match op with
                  | Iseq.Select { s; _ } -> Iseq.Select { s; count = !rem }
                  | Iseq.Select_prefix { prefix; _ } ->
                      Iseq.Select_prefix { prefix; count = !rem }
                  | _ -> assert false
                in
                b_ops.(!j) <- sub :: b_ops.(!j);
                b_idx.(!j) <- i :: b_idx.(!j)
              end)
          | _ -> ())
      ops;
    run_phase b_ops (fun j res ->
        let idx = Array.of_list (List.rev b_idx.(j)) in
        Array.iteri
          (fun k r ->
            match r with
            | Error e -> err idx.(k) e
            | Ok (Iseq.Int p) -> out.(idx.(k)) <- Ok (Iseq.Int (v.offsets.(j) + p))
            | Ok (Iseq.Str _) ->
                err idx.(k)
                  (Iseq.Storage_error
                     { path = "<tiered>"; reason = "batch result shape mismatch" }))
          res);
    Array.iteri
      (fun i op ->
        match errs.(i) with
        | Some e -> out.(i) <- Error e
        | None -> (
            match op with
            | Iseq.Rank _ | Iseq.Rank_prefix _ -> out.(i) <- Ok (Iseq.Int sums.(i))
            | _ -> ()))
      ops;
    out
end

(* The scalar byte façade over a view: same functor as every variant,
   so error semantics cannot drift. *)
module F = Wt_core.String_api.Make (View.Seq)

(* ------------------------------------------------------------------ *)
(* On-disk manifest *)

let manifest_path dir = Filename.concat dir "manifest.wtx"
let wal_path dir = Filename.concat dir "wal.log"
let run_file i = Printf.sprintf "run-%06d.wtx" i

let write_manifest dir ~generation ~runs ~next_run =
  let payload =
    Marshal.to_string ((generation, runs, next_run) : int * string list * int) []
  in
  Container.write ~tag:manifest_tag ~payload (manifest_path dir)

let read_manifest dir =
  let payload = Container.read ~expect_tag:manifest_tag (manifest_path dir) in
  match (Marshal.from_string payload 0 : int * string list * int) with
  | (g, runs, next_run) as m ->
      if g < 0 || next_run < 0 || List.exists (fun r -> Filename.basename r <> r) runs
      then fail "%s: implausible manifest contents" (manifest_path dir);
      ignore m;
      (g, runs, next_run)
  | exception (Failure _ | Invalid_argument _ | End_of_file) ->
      fail "%s: undecodable manifest payload" (manifest_path dir)

let is_store dir =
  Sys.file_exists dir && Sys.is_directory dir && Sys.file_exists (manifest_path dir)

(* ------------------------------------------------------------------ *)
(* The store *)

type run = { rfile : string; rflat : Flat_wt.t }

type t = {
  dir : string;
  threshold : int;
  read_only : bool;
  lock : Mutex.t;
  mutable generation : int;
  mutable next_run : int;
  mutable runs : run list;  (** oldest first *)
  mutable sealed : Dynamic_wt.t option;  (** compactor-owned *)
  mutable sealed_q : Dynamic_wt.t option;  (** frozen copy queries read *)
  mutable delta : Dynamic_wt.t;
  mutable suffix : string list;  (** raw ingests since the seal, newest first *)
  mutable wal_oc : out_channel option;
  mutable wal_bytes : int;
  mutable compacting : bool;
  mutable compactor : unit Domain.t option;
  mutable compact_exn : exn option;
  mutable closed : bool;
  view : View.t Snapshot.t;
}

type recovery = {
  r_generation : int;
  r_runs : int;
  r_replayed : int;  (** WAL records replayed into the delta *)
  r_dropped_bytes : int;  (** torn-tail bytes discarded *)
  r_rolled_forward : bool;  (** a mid-commit crash was completed *)
  r_wal_reset : bool;  (** a stale or unreadable WAL was discarded *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let ensure_writable t =
  if t.closed then failwith "tiered store is closed";
  if t.read_only then failwith "tiered store opened read-only";
  match t.compact_exn with
  | Some e ->
      (* A failed compaction leaves disk state only recoverable by
         reopen; refuse further mutation instead of compounding it. *)
      raise e
  | None -> ()

(* Tier list under the lock.  [frozen] decides whether the live delta
   goes in as-is (owner-side queries: always fresh, single-threaded) or
   as a [Dynamic_wt.snapshot] (publication: other domains must never
   share cursor state with the mutating owner). *)
let tiers_locked t ~frozen =
  let runs = List.map (fun r -> View.Run r.rflat) t.runs in
  let sealed = match t.sealed_q with Some d -> [ View.Dyn d ] | None -> [] in
  let delta = if frozen then Dynamic_wt.snapshot t.delta else t.delta in
  Array.of_list (runs @ sealed @ [ View.Dyn delta ])

let publish_locked t =
  ignore (Snapshot.publish t.view (View.make (tiers_locked t ~frozen:true)))

let current_view t =
  with_lock t (fun () -> View.make (tiers_locked t ~frozen:false))

let publish t = with_lock t (fun () -> publish_locked t)
let handle t = t.view

(* ------------------------------------------------------------------ *)
(* Open / recovery *)

let open_runs ~verify dir names =
  List.map
    (fun name ->
      let path = Filename.concat dir name in
      let rflat =
        try Flat_wt.open_file ~mode:(if verify then `Copy else `Mmap) path
        with Sys_error reason -> fail "%s: %s" path reason
      in
      if verify then Flat_wt.check_invariants rflat;
      { rfile = name; rflat })
    names

let open_internal ~read_only ~verify ~threshold dir =
  if not (is_store dir) then fail "%s: not a tiered store (no manifest.wtx)" dir;
  if not read_only then Container.cleanup_tmp dir;
  let generation, run_names, next_run = read_manifest dir in
  let scan = Wal.scan (wal_path dir) in
  if scan.s_header_ok && scan.s_tag = wal_tag && scan.s_generation > generation + 1
  then
    fail "%s: WAL generation %d is ahead of manifest generation %d" dir
      scan.s_generation generation;
  let rolled_forward =
    scan.s_header_ok && scan.s_tag = wal_tag && scan.s_generation = generation + 1
  in
  let generation, run_names, next_run =
    if rolled_forward then begin
      (* The WAL rotation landed but the manifest swap did not: the
         pending run holds exactly the records the rotation dropped.
         Adopt it and complete the commit. *)
      let pending = run_file next_run in
      if not (Sys.file_exists (Filename.concat dir pending)) then
        fail "%s: WAL is one generation ahead but pending run %s is missing" dir
          pending;
      let runs = run_names @ [ pending ] in
      if not read_only then
        write_manifest dir ~generation:(generation + 1) ~runs
          ~next_run:(next_run + 1);
      (generation + 1, runs, next_run + 1)
    end
    else (generation, run_names, next_run)
  in
  let runs = open_runs ~verify dir run_names in
  (* Runs adopted; anything else named run-*.wtx is an orphan from a
     crash between the run write and the WAL rotation. *)
  if not read_only then
    Array.iter
      (fun f ->
        if
          String.length f > 4
          && String.sub f 0 4 = "run-"
          && Filename.check_suffix f ".wtx"
          && not (List.mem f run_names)
        then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  let wal_reset =
    (not scan.s_header_ok) || scan.s_tag <> wal_tag || scan.s_generation <> generation
  in
  let delta = Dynamic_wt.create () in
  let replayed, dropped =
    if wal_reset then (0, scan.s_dropped_bytes)
    else begin
      List.iter
        (fun op ->
          match op with
          | Wal.Append s -> Dynamic_wt.append delta (Binarize.of_bytes s)
          | Wal.Insert _ | Wal.Delete _ ->
              fail "%s: tiered WAL holds a non-append record" dir)
        scan.s_ops;
      (scan.s_records, scan.s_dropped_bytes)
    end
  in
  if replayed > 0 then begin
    Probe.record Durable_wal_replay replayed;
    Flight.record ~a:replayed ~b:dropped Wal_replay
  end;
  if dropped > 0 then Probe.record Durable_wal_dropped_bytes dropped;
  if verify then Dynamic_wt.check_invariants delta;
  let wal_oc, wal_bytes =
    if read_only then (None, 0)
    else begin
      if wal_reset then Wal.create ~tag:wal_tag ~generation (wal_path dir)
      else if dropped > 0 then Wal.truncate_to (wal_path dir) scan.s_good_bytes;
      (Some (Wal.open_append (wal_path dir)),
       if wal_reset then Wal.header_size ~tag:wal_tag else scan.s_good_bytes)
    end
  in
  let tiers =
    Array.of_list
      (List.map (fun r -> View.Run r.rflat) runs @ [ View.Dyn (Dynamic_wt.snapshot delta) ])
  in
  let t =
    {
      dir;
      threshold;
      read_only;
      lock = Mutex.create ();
      generation;
      next_run;
      runs;
      sealed = None;
      sealed_q = None;
      delta;
      suffix = [];
      wal_oc;
      wal_bytes;
      compacting = false;
      compactor = None;
      compact_exn = None;
      closed = false;
      view = Snapshot.create (View.make tiers);
    }
  in
  (* compaction-progress gauges for the metrics scrape: replaced by
     name, so the most recently opened store owns them.  Reads are
     deliberately lock-free — a gauge sampled mid-compaction may be one
     step stale, which is fine for telemetry. *)
  Export.register_gauge "tiered_compacting" (fun () -> if t.compacting then 1. else 0.);
  Export.register_gauge "tiered_delta_strings" (fun () ->
      float_of_int (Dynamic_wt.length t.delta));
  Export.register_gauge "tiered_run_count" (fun () -> float_of_int (List.length t.runs));
  let recovery =
    {
      r_generation = generation;
      r_runs = List.length runs;
      r_replayed = replayed;
      r_dropped_bytes = dropped;
      r_rolled_forward = rolled_forward;
      r_wal_reset = wal_reset;
    }
  in
  (t, recovery)

let create ?(threshold = default_threshold) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if Sys.file_exists (manifest_path dir) then
    fail "%s: already a tiered store" dir;
  write_manifest dir ~generation:0 ~runs:[] ~next_run:0;
  Wal.create ~tag:wal_tag ~generation:0 (wal_path dir);
  fst (open_internal ~read_only:false ~verify:false ~threshold dir)

let open_ ?(threshold = default_threshold) ?(verify = false) dir =
  open_internal ~read_only:false ~verify ~threshold dir

let open_read_only ?(verify = false) dir =
  open_internal ~read_only:true ~verify ~threshold:max_int dir

(* ------------------------------------------------------------------ *)
(* Compaction *)

(* Commit ordering (each step atomic on its own, the sequence
   recoverable at every boundary — see the module header):
   1. run file durable; 2. WAL rotated to generation g+1 carrying the
   post-seal suffix; 3. manifest swapped to g+1.  In-memory state and
   the published view change only after all three. *)
let commit t flat =
  with_lock t (fun () ->
      let g' = t.generation + 1 in
      let name = run_file t.next_run in
      let path = Filename.concat t.dir name in
      Flat_wt.save_file flat path;
      Probe.record Tiered_compact_bytes (Unix.stat path).Unix.st_size;
      (match t.wal_oc with
      | Some oc ->
          t.wal_oc <- None;
          close_out_noerr oc
      | None -> ());
      let suffix_ops = List.rev_map (fun s -> Wal.Append s) t.suffix in
      Wal.create_with ~tag:wal_tag ~generation:g' suffix_ops (wal_path t.dir);
      write_manifest t.dir ~generation:g'
        ~runs:(List.map (fun r -> r.rfile) t.runs @ [ name ])
        ~next_run:(t.next_run + 1);
      t.wal_oc <- Some (Wal.open_append (wal_path t.dir));
      t.wal_bytes <-
        List.fold_left
          (fun acc op -> acc + Wal.record_size op)
          (Wal.header_size ~tag:wal_tag)
          suffix_ops;
      t.runs <- t.runs @ [ { rfile = name; rflat = flat } ];
      t.generation <- g';
      t.next_run <- t.next_run + 1;
      t.sealed <- None;
      t.sealed_q <- None;
      t.suffix <- [];
      Probe.hit Tiered_compact;
      Probe.duration Tiered_run_count (List.length t.runs);
      Flight.record ~a:g' Checkpoint;
      publish_locked t)

(* Seal the delta (cheap, under the lock): the compactor owns it from
   here; queries see a frozen snapshot of it as a tier until the
   commit swaps in the run. *)
let seal t =
  with_lock t (fun () ->
      if Dynamic_wt.length t.delta = 0 then None
      else begin
        let d = t.delta in
        t.sealed <- Some d;
        t.sealed_q <- Some (Dynamic_wt.snapshot d);
        t.delta <- Dynamic_wt.create ();
        t.suffix <- [];
        Probe.duration Tiered_delta_strings (Dynamic_wt.length d);
        Some d
      end)

let do_compact ?pool t =
  match seal t with
  | None -> ()
  | Some sealed -> (
      let n = Dynamic_wt.length sealed in
      try
        Trace.with_span ~args:[ ("strings", n) ] "tiered.compact" (fun () ->
            Probe.time Tiered_compact (fun () ->
                let build () = Flat_wt.of_array (Dynamic_wt.to_array sealed) in
                let flat =
                  match pool with
                  | None -> build ()
                  | Some p ->
                      let r = ref None in
                      Pool.run p [| (fun () -> r := Some (build ())) |];
                      Option.get !r
                in
                commit t flat))
      with e ->
        (* Disk may sit in any commit window; in-memory reads stay
           correct (the sealed tier is still a view tier and its
           records are still in some on-disk WAL or run).  Poison the
           writer — recovery is a reopen. *)
        with_lock t (fun () -> if t.compact_exn = None then t.compact_exn <- Some e);
        raise e)

let spawn_compactor t =
  t.compacting <- true;
  t.compactor <-
    Some
      (Domain.spawn (fun () ->
           Fun.protect
             ~finally:(fun () -> with_lock t (fun () -> t.compacting <- false))
             (fun () -> try do_compact t with _ -> ())))

(* Reap a finished background compactor (joins instantly when
   [compacting] is false). *)
let reap t =
  if not t.compacting then
    match t.compactor with
    | Some d ->
        Domain.join d;
        t.compactor <- None
    | None -> ()

let wait_compaction t =
  (match t.compactor with Some d -> Domain.join d | None -> ());
  t.compactor <- None

let maybe_compact t =
  reap t;
  if
    (not t.compacting)
    && t.compact_exn = None
    && Dynamic_wt.length t.delta >= t.threshold
  then spawn_compactor t

let compact ?pool t =
  wait_compaction t;
  (match t.compact_exn with Some e -> raise e | None -> ());
  if t.closed || t.read_only then failwith "tiered store is closed or read-only";
  do_compact ?pool t

(* ------------------------------------------------------------------ *)
(* Ingest *)

let ingest t s =
  with_lock t (fun () ->
      ensure_writable t;
      let oc =
        match t.wal_oc with Some oc -> oc | None -> failwith "tiered WAL closed"
      in
      let bytes = Wal.append_op oc (Wal.Append s) in
      t.wal_bytes <- t.wal_bytes + bytes;
      Probe.hit Tiered_ingest;
      Probe.record Tiered_ingest_bytes (String.length s);
      Probe.hit Durable_wal_append;
      Flight.record ~a:bytes Wal_append;
      Dynamic_wt.append t.delta (Binarize.of_bytes s);
      if t.sealed <> None then t.suffix <- s :: t.suffix);
  maybe_compact t

let ingest_batch t ss =
  List.iter (ingest t) ss;
  publish t

let flush t =
  with_lock t (fun () ->
      ensure_writable t;
      match t.wal_oc with
      | None -> ()
      | Some oc ->
          flush oc;
          Fault.fsync (Unix.descr_of_out_channel oc);
          Probe.hit Tiered_flush)

let close t =
  (try wait_compaction t with _ -> ());
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (match t.wal_oc with
        | Some oc ->
            t.wal_oc <- None;
            (try Stdlib.flush oc with Sys_error _ -> ());
            close_out_noerr oc
        | None -> ());
        List.iter (fun r -> Flat_wt.close r.rflat) t.runs
      end)

(* ------------------------------------------------------------------ *)
(* Introspection *)

let dir t = t.dir
let generation t = t.generation
let run_count t = List.length t.runs
let delta_length t = Dynamic_wt.length t.delta
let wal_bytes t = t.wal_bytes
let is_compacting t = t.compacting

let stats t : Stats.t =
  let v = current_view t in
  let per = Array.map View.t_stats v.View.tiers in
  let n = View.length v in
  let fold f = Array.fold_left (fun acc (s : Stats.t) -> acc +. f s) 0. per in
  let foldi f = Array.fold_left (fun acc (s : Stats.t) -> acc + f s) 0 per in
  {
    n;
    distinct = View.Seq.distinct_count v;
    avg_height =
      (if n = 0 then 0.
       else fold (fun s -> s.avg_height *. float_of_int s.n) /. float_of_int n);
    seq_h0_bits = fold (fun s -> s.seq_h0_bits);
    trie_lb_bits = fold (fun s -> s.trie_lb_bits);
    bv_bits = foldi (fun s -> s.bv_bits);
    label_bits = foldi (fun s -> s.label_bits);
    total_bits = foldi (fun s -> s.total_bits);
  }

(* ------------------------------------------------------------------ *)
(* Query façade: the full QUERY_API over the store, answered on the
   owner's always-fresh view, with the same protective error mapping as
   the static variant's storage layer. *)

let protect t f =
  if t.closed then Error Iseq.Trie_closed
  else
    match f () with
    | r -> r
    | exception Flat_wt.Closed -> Error Iseq.Trie_closed
    | exception Container.Format_error reason ->
        Error (Iseq.Storage_error { path = t.dir; reason })
    | exception Invalid_argument reason | (exception Failure reason) ->
        Error
          (Iseq.Storage_error { path = t.dir; reason = "corrupt tier: " ^ reason })

let length t = View.length (current_view t)
let distinct_count t = View.Seq.distinct_count (current_view t)
let space_bits t = View.Seq.space_bits (current_view t)
let access t ~pos = protect t (fun () -> F.access (current_view t) ~pos)
let rank t s ~pos = protect t (fun () -> F.rank (current_view t) s ~pos)
let select t s ~count = protect t (fun () -> F.select (current_view t) s ~count)

let rank_prefix t ~prefix ~pos =
  protect t (fun () -> F.rank_prefix (current_view t) ~prefix ~pos)

let select_prefix t ~prefix ~count =
  protect t (fun () -> F.select_prefix (current_view t) ~prefix ~count)

let count t s = F.count (current_view t) s
let count_prefix t ~prefix = F.count_prefix (current_view t) ~prefix

let query_batch ?domains t ops =
  match
    protect t (fun () ->
        Ok (View.query_batch ?domains (current_view t) ops))
  with
  | Ok res -> res
  | Error e -> Array.map (fun _ -> Error e) ops

(* Range analytics: merged-level validation and observability (one
   counter hit, one latency sample, one span per call — the per-tier
   traversals do not double-count the façade metrics because they run
   at the bitstring level). *)

let window v lo hi =
  let len = View.length v in
  let lo = Option.value lo ~default:0 in
  let hi = Option.value hi ~default:len in
  if lo < 0 || lo > len then Error (Iseq.Position_out_of_bounds { pos = lo; len })
  else if hi < lo || hi > len then
    Error (Iseq.Position_out_of_bounds { pos = hi; len })
  else Ok (lo, hi)

let bits_prefix = Option.map Wt_core.String_api.encode_prefix
let decode_item (path, n) = (Binarize.to_bytes path, n)

let select_all ?prefix ?lo ?hi t =
  protect t (fun () ->
      let v = current_view t in
      match window v lo hi with
      | Error e -> Error e
      | Ok (lo, hi) ->
          Probe.hit Analytics_select_all;
          Trace.with_span ~args:[ ("lo", lo); ("hi", hi) ] "analytics.select_all"
            (fun () ->
              Probe.time Analytics_select_all (fun () ->
                  Ok (View.select_all_bits ?prefix:(bits_prefix prefix) v ~lo ~hi))))

let range_count ?prefix t ~lo ~hi =
  protect t (fun () ->
      let v = current_view t in
      match window v (Some lo) (Some hi) with
      | Error e -> Error e
      | Ok (lo, hi) ->
          Probe.hit Analytics_range_count;
          Trace.with_span ~args:[ ("lo", lo); ("hi", hi) ] "analytics.range_count"
            (fun () ->
              Probe.time Analytics_range_count (fun () ->
                  Ok (View.range_count_bits ?prefix:(bits_prefix prefix) v ~lo ~hi))))

let range_distinct ?prefix ?lo ?hi t =
  protect t (fun () ->
      let v = current_view t in
      match window v lo hi with
      | Error e -> Error e
      | Ok (lo, hi) ->
          Probe.hit Analytics_distinct;
          Trace.with_span ~args:[ ("lo", lo); ("hi", hi) ] "analytics.distinct"
            (fun () ->
              Probe.time Analytics_distinct (fun () ->
                  Ok
                    (Array.map decode_item
                       (View.range_distinct_bits ?prefix:(bits_prefix prefix) v
                          ~lo ~hi)))))

let range_topk ?prefix ?lo ?hi t ~k =
  if k < 0 then Error (Iseq.Negative_count { count = k })
  else
    protect t (fun () ->
        let v = current_view t in
        match window v lo hi with
        | Error e -> Error e
        | Ok (lo, hi) ->
            Probe.hit Analytics_topk;
            Trace.with_span
              ~args:[ ("lo", lo); ("hi", hi); ("k", k) ]
              "analytics.topk"
              (fun () ->
                Probe.time Analytics_topk (fun () ->
                    Ok
                      (Array.map decode_item
                         (View.range_topk_bits ?prefix:(bits_prefix prefix) v ~lo
                            ~hi ~k)))))

(* ------------------------------------------------------------------ *)
(* Verification / recovery *)

type verify_report = {
  v_generation : int;
  v_runs : int;
  v_length : int;
  v_distinct : int;
  v_wal_records : int;
  v_dropped_bytes : int;
  v_rolled_forward : bool;
  v_wal_reset : bool;
  v_clean : bool;  (** nothing needed fixing *)
}

let verify dir =
  let t, r = open_internal ~read_only:true ~verify:true ~threshold:max_int dir in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      {
        v_generation = r.r_generation;
        v_runs = r.r_runs;
        v_length = length t;
        v_distinct = distinct_count t;
        v_wal_records = r.r_replayed;
        v_dropped_bytes = r.r_dropped_bytes;
        v_rolled_forward = r.r_rolled_forward;
        v_wal_reset = r.r_wal_reset;
        v_clean =
          (not r.r_rolled_forward) && (not r.r_wal_reset) && r.r_dropped_bytes = 0;
      })

let recover ?threshold dir =
  let t, r = open_ ?threshold ~verify:true dir in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      compact t;
      r)
