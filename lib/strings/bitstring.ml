module Bitbuf = Wt_bits.Bitbuf
module Broadword = Wt_bits.Broadword

(* The backing buffer is never mutated after construction; [off]/[len]
   delimit the view, so sub/drop/prefix are O(1). *)
type t = { buf : Bitbuf.t; off : int; len : int }

let empty = { buf = Bitbuf.create ~capacity_bits:8 (); off = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitstring.get: out of bounds";
  Bitbuf.get t.buf (t.off + i)

let get_bits t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Bitstring.get_bits: out of bounds";
  Bitbuf.get_bits t.buf (t.off + pos) len

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitstring.sub";
  { t with off = t.off + pos; len }

let drop t n = sub t n (t.len - n)
let prefix t n = sub t 0 n

let of_bitbuf buf = { buf = Bitbuf.copy buf; off = 0; len = Bitbuf.length buf }

let unsafe_of_bitbuf buf = { buf; off = 0; len = Bitbuf.length buf }

let append_to_bitbuf t out = Bitbuf.blit t.buf t.off out t.len

let concat ts =
  let total = List.fold_left (fun acc t -> acc + t.len) 0 ts in
  let out = Bitbuf.create ~capacity_bits:total () in
  List.iter (fun t -> append_to_bitbuf t out) ts;
  { buf = out; off = 0; len = total }

let append a b = concat [ a; b ]

let of_bool_list bits =
  let out = Bitbuf.create ~capacity_bits:(List.length bits) () in
  List.iter (Bitbuf.add out) bits;
  { buf = out; off = 0; len = List.length bits }

let cons b t =
  let out = Bitbuf.create ~capacity_bits:(t.len + 1) () in
  Bitbuf.add out b;
  append_to_bitbuf t out;
  { buf = out; off = 0; len = t.len + 1 }

let snoc t b =
  let out = Bitbuf.create ~capacity_bits:(t.len + 1) () in
  append_to_bitbuf t out;
  Bitbuf.add out b;
  { buf = out; off = 0; len = t.len + 1 }

let lcp a b =
  let n = min a.len b.len in
  let rec go pos =
    if pos >= n then n
    else begin
      let chunk = min 56 (n - pos) in
      let wa = Bitbuf.get_bits a.buf (a.off + pos) chunk in
      let wb = Bitbuf.get_bits b.buf (b.off + pos) chunk in
      let x = wa lxor wb in
      if x = 0 then go (pos + chunk) else pos + Broadword.lowest_bit x
    end
  in
  go 0

let is_prefix ~prefix t = prefix.len <= t.len && lcp prefix t = prefix.len

let compare a b =
  let l = lcp a b in
  if l = a.len && l = b.len then 0
  else if l = a.len then -1
  else if l = b.len then 1
  else if get a l then 1
  else -1

let equal a b = a.len = b.len && lcp a b = a.len

let hash t =
  (* FNV-style over 56-bit chunks of the view. *)
  let h = ref 0x1505 in
  let pos = ref 0 in
  while !pos < t.len do
    let chunk = min 56 (t.len - !pos) in
    let w = Bitbuf.get_bits t.buf (t.off + !pos) chunk in
    h := (((!h lsl 5) + !h) lxor w) land max_int;
    pos := !pos + chunk
  done;
  (((!h lsl 5) + !h) lxor t.len) land max_int

let of_string s =
  let out = Bitbuf.of_string s in
  { buf = out; off = 0; len = Bitbuf.length out }

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let to_bool_list t = List.init t.len (get t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
