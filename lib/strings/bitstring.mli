(** Immutable binary strings.

    A [Bitstring.t] is an immutable sequence of bits with O(1) [sub]/
    [drop]/[prefix] (structural sharing) and word-parallel [lcp] and
    [compare].  All Wavelet Trie node labels α, all Patricia Trie labels,
    and all binarized query strings are bitstrings.

    Positions are 0-based; bit 0 is the first bit of the string (the most
    significant decision bit when descending a trie). *)

type t

val empty : t
val length : t -> int
val is_empty : t -> bool

val get : t -> int -> bool
(** [get t i] is bit [i].  Requires [0 <= i < length t]. *)

val get_bits : t -> int -> int -> int
(** [get_bits t pos len] packs bits [pos .. pos+len) into an int, bit
    [pos] at bit 0.  Requires [0 <= len <= 62]. *)

val sub : t -> int -> int -> t
(** [sub t pos len] is the substring of [len] bits starting at [pos].
    O(1): shares storage. *)

val drop : t -> int -> t
(** [drop t n] removes the first [n] bits.  O(1). *)

val prefix : t -> int -> t
(** [prefix t n] keeps the first [n] bits.  O(1). *)

val append : t -> t -> t
(** Concatenation (copies). *)

val concat : t list -> t

val cons : bool -> t -> t
(** [cons b t] prepends a single bit. *)

val snoc : t -> bool -> t
(** [snoc t b] appends a single bit. *)

val lcp : t -> t -> int
(** Length of the longest common prefix, in bits.  Word-parallel. *)

val is_prefix : prefix:t -> t -> bool

val compare : t -> t -> int
(** Lexicographic bit order; a proper prefix sorts before its extensions. *)

val equal : t -> t -> bool
val hash : t -> int

val of_string : string -> t
(** [of_string "0110"] reads an ASCII description, leftmost character
    first. *)

val to_string : t -> string

val of_bool_list : bool list -> t
val to_bool_list : t -> bool list

val of_bitbuf : Wt_bits.Bitbuf.t -> t
(** Copies the buffer. *)

val unsafe_of_bitbuf : Wt_bits.Bitbuf.t -> t
(** Wraps the buffer without copying.  The caller must not mutate it
    afterwards (bitstrings are assumed immutable). *)

val append_to_bitbuf : t -> Wt_bits.Bitbuf.t -> unit
(** Append all bits to a buffer (used to build label streams). *)

val pp : Format.formatter -> t -> unit
