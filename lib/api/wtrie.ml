(** The Wavelet Trie front door.

    One module to open: the three sequence variants behind a uniform
    byte-string API, the batch query engine, the observability layer,
    and the space/statistics reports.

    {[
      let wt = Wtrie.Static.of_list [ "a"; "b"; "a" ] in
      assert (Wtrie.Static.count wt "a" = 2);
      assert (Wtrie.Static.rank wt "a" ~pos:3 = Ok 2);

      (* a whole vector of queries in one amortized traversal *)
      let results =
        Wtrie.Static.query_batch wt
          [| Access { pos = 0 }; Rank { s = "a"; pos = 3 } |]
      in
      assert (results = [| Ok (Str "a"); Ok (Int 2) |])
    ]}

    Pick a variant by mutability:
    - {!Static} — immutable, RRR-compressed (Section 3 of the paper);
    - {!Append} — append-only streams (Section 4.1);
    - {!Dynamic} — insert/delete at any position (Section 4.2).

    All three share the {!module-type-QUERY_API} read side — every
    query, from scalar point lookups through [query_batch] to the range
    analytics ([select_all], [range_count], [range_distinct],
    [range_topk]), is declared once and behaves identically across
    variants.  {!module-type-STRING_API} adds construction; the mutable
    ones extend it ({!module-type-APPEND_API},
    {!module-type-DYNAMIC_API}).  Each operation comes in exactly one
    shape — labelled arguments, [(_, {!error}) result] for everything
    partial; the pre-batch alias shapes ([access_exn], [select_opt],
    ...) are gone (see docs/observability.md for the migration table).
    The [t] equalities are exposed, so [Static.t] is
    [Wt_core.Wavelet_trie.t] etc. and the lower-level toolkits
    ([Wt_core.Range], [Wt_core.Persist], ...) keep working on the same
    values. *)

type error = Wt_core.Indexed_sequence.error =
  | Position_out_of_bounds of { pos : int; len : int }
  | Negative_count of { count : int }
  | No_occurrence of { count : int; occurrences : int }

let pp_error = Wt_core.Indexed_sequence.pp_error

type op = Wt_core.Indexed_sequence.op =
  | Access of { pos : int }
  | Rank of { s : string; pos : int }
  | Select of { s : string; count : int }
  | Rank_prefix of { prefix : string; pos : int }
  | Select_prefix of { prefix : string; count : int }

type value = Wt_core.Indexed_sequence.value = Str of string | Int of int

let pp_value = Wt_core.Indexed_sequence.pp_value

module type QUERY_API = Wt_core.Indexed_sequence.QUERY_API
module type STRING_API = Wt_core.Indexed_sequence.STRING_API
module type APPEND_API = Wt_core.Indexed_sequence.APPEND_API
module type DYNAMIC_API = Wt_core.Indexed_sequence.DYNAMIC_API

(* Sealing with the API signatures attaches the batch entry points from
   the engine — routed through the domain pool when [~domains] is given —
   and the range-analytics suite from [lib/analytics], then hides every
   helper outside QUERY_API and the variant's constructors/mutators. *)

module Static : STRING_API with type t = Wt_core.Wavelet_trie.t = struct
  include Wt_core.String_api.Static
  include Wt_analytics.Analytics.Static

  let query_batch ?domains t ops =
    Wt_par.Par_exec.query_batch ?domains Wt_exec.Exec.Static.query_batch t ops
end

module Append : APPEND_API with type t = Wt_core.Append_wt.t = struct
  include Wt_core.String_api.Append
  include Wt_analytics.Analytics.Append

  let query_batch ?domains t ops =
    Wt_par.Par_exec.query_batch ?domains Wt_exec.Exec.Append.query_batch t ops
end

module Dynamic : DYNAMIC_API with type t = Wt_core.Dynamic_wt.t = struct
  include Wt_core.String_api.Dynamic
  include Wt_analytics.Analytics.Dynamic

  let query_batch ?domains t ops =
    Wt_par.Par_exec.query_batch ?domains Wt_exec.Exec.Dynamic.query_batch t ops
end

(** The multicore serving layer behind [query_batch ~domains]:
    {!Pool} is the shared domain pool (size from [WTRIE_DOMAINS] or the
    machine), {!Snapshot} the epoch-published handle that pairs with
    {!Dynamic.snapshot} to isolate parallel readers from the owner
    domain's updates:

    {[
      let handle = Wtrie.Snapshot.create (Wtrie.Dynamic.snapshot wt) in
      (* reader domains, at any time: *)
      let frozen = Wtrie.Snapshot.read handle in
      let _ = Wtrie.Dynamic.query_batch ~domains:4 frozen ops in
      (* owner domain: mutate freely, then publish a fresh snapshot *)
      Wtrie.Dynamic.insert wt ~pos:0 "new";
      ignore (Wtrie.Snapshot.publish handle (Wtrie.Dynamic.snapshot wt))
    ]} *)
module Pool = Wt_par.Pool

module Snapshot = Wt_par.Snapshot

(** Crash-safe persistence for the mutable variants: checksummed
    snapshot + write-ahead log in a store directory, with torn-tail
    recovery and checkpointing ([wtrie ingest]/[verify]/[recover] in
    the CLI).  [Durable.Fault] is the fault-injection hook the
    crash-safety test harness drives. *)
module Durable = Durable

(** Space accounting shared by the variants ([Static.space_bits] etc.
    feed it); [Stats.to_breakdown] bridges into {!Report}. *)
module Stats = Wt_core.Stats

(** Observability: {!Probe} switches telemetry on and off, {!Report}
    snapshots it, {!Space} holds the word-overhead model and the
    space-vs-lower-bound breakdown. *)
module Probe = Wt_obs.Probe

module Report = Wt_obs.Report
module Space = Wt_obs.Space
module Histogram = Wt_obs.Histogram
module Json = Wt_obs.Json

(** Span tracing across the query pipeline ({!Trace}) and the always-on
    bounded ring of recent events ({!Flight}) — see
    docs/observability.md, "Tracing & the flight recorder". *)
module Trace = Wt_obs.Trace

module Flight = Wt_obs.Flight

(** The overload-safe TCP serving front-end ([wtrie serve] in the CLI):
    {!Serve.Server} micro-batches concurrently arriving single queries
    into sharded {!Snapshot} executions with admission control,
    deadlines, and graceful drain; {!Serve.Wire} is the bounded binary
    protocol; {!Serve.Client} is the blocking client and closed-loop
    load generator.  See docs/serving.md. *)
module Serve = struct
  module Server = Wt_serve.Server
  module Batcher = Wt_serve.Batcher
  module Wire = Wt_serve.Wire
  module Client = Wt_serve.Client
end

let with_trace = Wt_obs.Trace.with_trace
(** [with_trace f] traces [f ()] and returns its result together with
    the Chrome [trace_event] JSON ({!Json.t}) of every span it opened:
    [Wtrie.with_trace (fun () -> Static.query_batch ~domains:4 wt ops)]
    yields a trace that nests query → level → shard across domains.
    Print with {!Json.to_string} and load in Perfetto. *)
