(** The Wavelet Trie front door.

    One module to open: the three sequence variants behind a uniform
    byte-string API, the batch query engine, the observability layer,
    and the space/statistics reports.

    {[
      let wt = Wtrie.Static.of_list [ "a"; "b"; "a" ] in
      assert (Wtrie.Static.count wt "a" = 2);
      assert (Wtrie.Static.rank wt "a" ~pos:3 = Ok 2);

      (* a whole vector of queries in one amortized traversal *)
      let results =
        Wtrie.Static.query_batch wt
          [| Access { pos = 0 }; Rank { s = "a"; pos = 3 } |]
      in
      assert (results = [| Ok (Str "a"); Ok (Int 2) |])
    ]}

    Pick a variant by mutability:
    - {!Static} — immutable, RRR-compressed (Section 3 of the paper);
    - {!Append} — append-only streams (Section 4.1);
    - {!Dynamic} — insert/delete at any position (Section 4.2).

    All three share the {!module-type-QUERY_API} read side — every
    query, from scalar point lookups through [query_batch] to the range
    analytics ([select_all], [range_count], [range_distinct],
    [range_topk]), is declared once and behaves identically across
    variants.  {!module-type-STRING_API} adds construction; the mutable
    ones extend it ({!module-type-APPEND_API},
    {!module-type-DYNAMIC_API}).  Each operation comes in exactly one
    shape — labelled arguments, [(_, {!error}) result] for everything
    partial; the pre-batch alias shapes ([access_exn], [select_opt],
    ...) are gone (see docs/observability.md for the migration table).

    {!Static} runs on the pointer-free flat arena ({!Wt_core.Flat_wt}):
    the format-v3 container payload queried in place, so
    {!STATIC_API.save_file} / {!STATIC_API.open_file} round-trip through
    disk with an O(1) [`Mmap] open (one read-only mapping, shareable
    across serving processes).  The [t] equalities are exposed
    ([Static.t] is [Wt_core.Flat_wt.t], [Dynamic.t] is
    [Wt_core.Dynamic_wt.t], ...) so the lower-level toolkits
    ([Wt_core.Range], [Wt_core.Persist], ...) keep working on the same
    values. *)

type error = Wt_core.Indexed_sequence.error =
  | Position_out_of_bounds of { pos : int; len : int }
  | Negative_count of { count : int }
  | No_occurrence of { count : int; occurrences : int }
  | Trie_closed
  | Storage_error of { path : string; reason : string }

let pp_error = Wt_core.Indexed_sequence.pp_error

type op = Wt_core.Indexed_sequence.op =
  | Access of { pos : int }
  | Rank of { s : string; pos : int }
  | Select of { s : string; count : int }
  | Rank_prefix of { prefix : string; pos : int }
  | Select_prefix of { prefix : string; count : int }

type value = Wt_core.Indexed_sequence.value = Str of string | Int of int

let pp_value = Wt_core.Indexed_sequence.pp_value

module type QUERY_API = Wt_core.Indexed_sequence.QUERY_API
module type STRING_API = Wt_core.Indexed_sequence.STRING_API
module type STATIC_API = Wt_core.Indexed_sequence.STATIC_API
module type APPEND_API = Wt_core.Indexed_sequence.APPEND_API
module type DYNAMIC_API = Wt_core.Indexed_sequence.DYNAMIC_API

(* Sealing with the API signatures attaches the batch entry points from
   the engine — routed through the domain pool when [~domains] is given —
   and the range-analytics suite from [lib/analytics], then hides every
   helper outside QUERY_API and the variant's constructors/mutators. *)

module Static : STATIC_API with type t = Wt_core.Flat_wt.t = struct
  include Wt_core.String_api.Static
  module A = Wt_analytics.Analytics.Static

  (* The analytics and batch entry points bypass the scalar façade, so
     they repeat its guards: a closed trie reports [Trie_closed] and a
     corrupted arena [Storage_error] through the result, never an
     exception ([protect] comes from {!Wt_core.String_api.Static}). *)
  let select_all ?prefix ?lo ?hi t = protect t (fun () -> A.select_all ?prefix ?lo ?hi t)
  let range_count ?prefix t ~lo ~hi = protect t (fun () -> A.range_count ?prefix t ~lo ~hi)

  let range_distinct ?prefix ?lo ?hi t =
    protect t (fun () -> A.range_distinct ?prefix ?lo ?hi t)

  let range_topk ?prefix ?lo ?hi t ~k = protect t (fun () -> A.range_topk ?prefix ?lo ?hi t ~k)

  let query_batch ?domains t ops =
    match
      protect t (fun () ->
          Ok (Wt_par.Par_exec.query_batch ?domains Wt_exec.Exec.Static.query_batch t ops))
    with
    | Ok results -> results
    | Error e -> Array.map (fun _ -> Error e) ops
end

module Append : APPEND_API with type t = Wt_core.Append_wt.t = struct
  include Wt_core.String_api.Append
  include Wt_analytics.Analytics.Append

  let query_batch ?domains t ops =
    Wt_par.Par_exec.query_batch ?domains Wt_exec.Exec.Append.query_batch t ops
end

module Dynamic : DYNAMIC_API with type t = Wt_core.Dynamic_wt.t = struct
  include Wt_core.String_api.Dynamic
  include Wt_analytics.Analytics.Dynamic

  let query_batch ?domains t ops =
    Wt_par.Par_exec.query_batch ?domains Wt_exec.Exec.Dynamic.query_batch t ops
end

(** The write-optimized tiered store ([lib/tiered]): ingests land in a
    small {!Dynamic}-style delta backed by a WAL, reads go through a
    merged view over [immutable runs…; delta], and a background domain
    compacts the delta into flat-arena run files, publishing each new
    tier list through {!Snapshot} epochs.  The store satisfies the
    whole {!module-type-QUERY_API} (sealed below), plus
    [create]/[open_]/[ingest]/[flush]/[compact]/[verify]/[recover] and
    the durable-store error conventions ([Wt_durable.Container.
    Format_error] for corrupt stores).  See docs/durability.md.

    {[
      let t = Wtrie.Tiered.create "store.tiered" in
      Wtrie.Tiered.ingest t "a.com/x";
      Wtrie.Tiered.flush t;                 (* fsync the ack point *)
      Wtrie.Tiered.compact t;               (* delta -> immutable run *)
      assert (Wtrie.Tiered.count t "a.com/x" = 1)
    ]} *)
module Tiered = Wt_tiered.Tiered

(* seal the read-side conformance: the merged view answers the same
   QUERY_API as every single-trie variant *)
module _ : QUERY_API with type t = Tiered.t = Tiered

(** Index files on disk, behind one front door.

    A format-v3 index ({!Static.save_file}) holds the flat arena and
    opens in O(1) via mmap; format-v2 indexes ({!Wt_core.Persist},
    [Marshal]-based) are still readable — {!load_index} dispatches on
    the container's version and variant tag, and {!convert} rewrites
    any readable index as v3 static.  All failures raise
    {!Format_error} (the shared container exception). *)
module Storage = struct
  exception Format_error = Wt_core.Persist.Format_error

  type loaded = Static of Static.t | Append of Append.t | Dynamic of Dynamic.t

  let index_version = Wt_durable.Container.version_of_file
  (** The container format version of an index file, or [None] when the
      file does not start with the container magic. *)

  let is_index_file = Wt_core.Persist.is_index_file

  let variant_name = function Static _ -> "static" | Append _ -> "append" | Dynamic _ -> "dynamic"

  let length = function
    | Static t -> Static.length t
    | Append t -> Append.length t
    | Dynamic t -> Dynamic.length t

  (* [load_index path] opens any readable index.  v3 maps the flat
     arena in place ([?mode] as in {!STATIC_API.open_file}); v2 indexes
     deserialize into their native variant, except v2 static, whose
     pointer trie is flattened on load so every static value the
     library hands out is the arena representation. *)
  let load_index ?mode path =
    match index_version path with
    | Some v when v = Wt_durable.Container.version_v3 ->
        Static (Static.open_file_exn ?mode path)
    | _ -> (
        match Wt_core.Persist.tag_of_file path with
        | Some "static" ->
            Static (Wt_core.Flat_wt.of_wavelet_trie (Wt_core.Persist.load_static path))
        | Some "append" -> Append (Wt_core.Persist.load_append path)
        | Some "dynamic" -> Dynamic (Wt_core.Persist.load_dynamic path)
        | Some t -> raise (Format_error (Printf.sprintf "unknown index variant %S" t))
        | None ->
            (* not a verifiable v2 container: re-run the tagged read so
               the precise corruption reason surfaces *)
            let tag, _ = Wt_durable.Container.read_tagged path in
            raise (Format_error (Printf.sprintf "unknown index variant %S" tag)))

  (* Deep verification for [wtrie verify]: full checksums, then the
     variant's structural invariants.  Returns (variant, length). *)
  let verify_index path =
    match index_version path with
    | Some v when v = Wt_durable.Container.version_v3 -> (
        (* [`Copy] re-verifies the payload checksum, unlike the mmap
           fast path *)
        match Static.open_file ~mode:`Copy path with
        | Error e -> raise (Format_error (Format.asprintf "%a" pp_error e))
        | Ok t ->
            (try Wt_core.Flat_wt.check_invariants t
             with Failure m -> raise (Format_error ("index fails invariants: " ^ m)));
            ("static", Static.length t))
    | _ -> (
        let tag, _payload = Wt_durable.Container.read_tagged path in
        match tag with
        | "static" ->
            let wt = Wt_core.Persist.load_static path in
            let n = Wt_core.Wavelet_trie.length wt in
            (* no check_invariants on the pointer trie: decode a sample
               sweep instead, so a payload that unmarshals but lies
               still trips *)
            let step = max 1 (n / 256) in
            let i = ref 0 in
            while !i < n do
              ignore (Wt_core.Wavelet_trie.access wt !i);
              i := !i + step
            done;
            ("static", n)
        | "append" ->
            let wt = Wt_core.Persist.load_append path in
            (try Wt_core.Append_wt.check_invariants wt
             with Failure m -> raise (Format_error ("index fails invariants: " ^ m)));
            ("append", Wt_core.Append_wt.length wt)
        | "dynamic" ->
            let wt = Wt_core.Persist.load_dynamic path in
            (try Wt_core.Dynamic_wt.check_invariants wt
             with Failure m -> raise (Format_error ("index fails invariants: " ^ m)));
            ("dynamic", Wt_core.Dynamic_wt.length wt)
        | t -> raise (Format_error (Printf.sprintf "unknown index variant %S" t)))

  (* [convert src dst] rewrites any readable index as a format-v3
     static arena.  Returns (source variant, length). *)
  let convert src dst =
    let loaded = load_index ~mode:`Copy src in
    let flat =
      match loaded with
      | Static t -> t
      | Append t -> Wt_core.Flat_wt.of_array (Wt_core.Append_wt.to_array t)
      | Dynamic t -> Wt_core.Flat_wt.of_array (Wt_core.Dynamic_wt.to_array t)
    in
    Static.save_file_exn flat dst;
    (variant_name loaded, length loaded)
end

(** The multicore serving layer behind [query_batch ~domains]:
    {!Pool} is the shared domain pool (size from [WTRIE_DOMAINS] or the
    machine), {!Snapshot} the epoch-published handle that pairs with
    {!Dynamic.snapshot} to isolate parallel readers from the owner
    domain's updates:

    {[
      let handle = Wtrie.Snapshot.create (Wtrie.Dynamic.snapshot wt) in
      (* reader domains, at any time: *)
      let frozen = Wtrie.Snapshot.read handle in
      let _ = Wtrie.Dynamic.query_batch ~domains:4 frozen ops in
      (* owner domain: mutate freely, then publish a fresh snapshot *)
      Wtrie.Dynamic.insert wt ~pos:0 "new";
      ignore (Wtrie.Snapshot.publish handle (Wtrie.Dynamic.snapshot wt))
    ]} *)
module Pool = Wt_par.Pool

module Snapshot = Wt_par.Snapshot

(** Crash-safe persistence for the mutable variants: checksummed
    snapshot + write-ahead log in a store directory, with torn-tail
    recovery and checkpointing ([wtrie ingest]/[verify]/[recover] in
    the CLI).  [Durable.Fault] is the fault-injection hook the
    crash-safety test harness drives. *)
module Durable = Durable

(** Space accounting shared by the variants ([Static.space_bits] etc.
    feed it); [Stats.to_breakdown] bridges into {!Report}. *)
module Stats = Wt_core.Stats

(** Observability: {!Probe} switches telemetry on and off, {!Report}
    snapshots it, {!Space} holds the word-overhead model and the
    space-vs-lower-bound breakdown. *)
module Probe = Wt_obs.Probe

module Report = Wt_obs.Report
module Space = Wt_obs.Space
module Histogram = Wt_obs.Histogram
module Json = Wt_obs.Json

(** The live telemetry plane: {!Export} renders the metric universe as
    Prometheus exposition text (or JSON) from a lock-free snapshot,
    safe to call while other domains record; {!Runtime} bridges OCaml's
    [Runtime_events] ring into [rt_*] GC metrics and [gc.*] trace
    spans.  See docs/observability.md, "The live telemetry plane". *)
module Export = Wt_obs.Export

module Runtime = Wt_obs.Runtime

(** Span tracing across the query pipeline ({!Trace}) and the always-on
    bounded ring of recent events ({!Flight}) — see
    docs/observability.md, "Tracing & the flight recorder". *)
module Trace = Wt_obs.Trace

module Flight = Wt_obs.Flight

(** The overload-safe TCP serving front-end ([wtrie serve] in the CLI):
    {!Serve.Server} micro-batches concurrently arriving single queries
    into sharded {!Snapshot} executions with admission control,
    deadlines, and graceful drain; {!Serve.Wire} is the bounded binary
    protocol; {!Serve.Client} is the blocking client and closed-loop
    load generator.  See docs/serving.md. *)
module Serve = struct
  module Server = Wt_serve.Server
  module Batcher = Wt_serve.Batcher
  module Wire = Wt_serve.Wire
  module Client = Wt_serve.Client
end

let with_trace = Wt_obs.Trace.with_trace
(** [with_trace f] traces [f ()] and returns its result together with
    the Chrome [trace_event] JSON ({!Json.t}) of every span it opened:
    [Wtrie.with_trace (fun () -> Static.query_batch ~domains:4 wt ops)]
    yields a trace that nests query → level → shard across domains.
    Print with {!Json.to_string} and load in Perfetto. *)
