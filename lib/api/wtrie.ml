(** The Wavelet Trie front door.

    One module to open: the three sequence variants behind a uniform
    byte-string API, the observability layer, and the space/statistics
    reports.

    {[
      let wt = Wtrie.Static.of_list [ "a"; "b"; "a" ] in
      assert (Wtrie.Static.count wt "a" = 2);

      Wtrie.Probe.enable ();
      ignore (Wtrie.Static.rank_exn wt "a" 3);
      print_endline (Wtrie.Report.to_json_string (Wtrie.Report.capture ()))
    ]}

    Pick a variant by mutability:
    - {!Static} — immutable, RRR-compressed (Section 3 of the paper);
    - {!Append} — append-only streams (Section 4.1);
    - {!Dynamic} — insert/delete at any position (Section 4.2).

    All three satisfy {!module-type-STRING_API}; the mutable ones extend
    it ({!module-type-APPEND_API}, {!module-type-DYNAMIC_API}).  The
    modules are re-exported unsealed, so [Static.t] is
    [Wt_core.Wavelet_trie.t] etc. and the lower-level toolkits
    ([Wt_core.Range], [Wt_core.Persist], ...) keep working on the same
    values. *)

type api_error = Wt_core.Indexed_sequence.api_error =
  | Position_out_of_bounds of { pos : int; len : int }

let pp_api_error = Wt_core.Indexed_sequence.pp_api_error

module type STRING_API = Wt_core.Indexed_sequence.STRING_API
module type APPEND_API = Wt_core.Indexed_sequence.APPEND_API
module type DYNAMIC_API = Wt_core.Indexed_sequence.DYNAMIC_API

module Static = Wt_core.String_api.Static
module Append = Wt_core.String_api.Append
module Dynamic = Wt_core.String_api.Dynamic

(* Conformance: every variant implements its tier of the uniform API. *)
module _ : STRING_API = Static
module _ : APPEND_API = Append
module _ : DYNAMIC_API = Dynamic

(** Crash-safe persistence for the mutable variants: checksummed
    snapshot + write-ahead log in a store directory, with torn-tail
    recovery and checkpointing ([wtrie ingest]/[verify]/[recover] in
    the CLI).  [Durable.Fault] is the fault-injection hook the
    crash-safety test harness drives. *)
module Durable = Durable

(** Space accounting shared by the variants ([Static.space_bits] etc.
    feed it); [Stats.to_breakdown] bridges into {!Report}. *)
module Stats = Wt_core.Stats

(** Observability: {!Probe} switches telemetry on and off, {!Report}
    snapshots it, {!Space} holds the word-overhead model and the
    space-vs-lower-bound breakdown. *)
module Probe = Wt_obs.Probe

module Report = Wt_obs.Report
module Space = Wt_obs.Space
module Histogram = Wt_obs.Histogram
module Json = Wt_obs.Json
