(* Read-only byte-addressed view over a char Bigarray.

   The flat static trie (format v3) queries its on-disk arena in place;
   a [Membuf.t] is the bounds-checked window it reads through, backed
   either by a private copy ([of_string]) or directly by an [mmap]ed
   file ([of_bigarray]).  Every read validates its range, so a corrupt
   arena offset surfaces as [Invalid_argument] — never a segfault —
   whichever backing is in use.

   Bit numbering matches {!Bitbuf}: within byte [i], bit [j] of the
   stream lives at bit [j] (LSB-first), so a bit stream serialized byte
   by byte with [Bitbuf.get_bits bb (8*i) 8] reads back identically
   here. *)

type ba = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { ba : ba; len : int }

let length t = t.len

let of_bigarray (ba : ba) = { ba; len = Bigarray.Array1.dim ba }

let of_string s =
  let n = String.length s in
  let ba = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set ba i (String.unsafe_get s i)
  done;
  { ba; len = n }

let to_string t = String.init t.len (fun i -> Bigarray.Array1.unsafe_get t.ba i)

let check t off n what =
  if off < 0 || n < 0 || off > t.len - n then
    invalid_arg (Printf.sprintf "Membuf.%s: [%d, %d) outside [0, %d)" what off (off + n) t.len)

let sub t off len =
  check t off len "sub";
  { ba = Bigarray.Array1.sub t.ba off len; len }

let get t i =
  check t i 1 "get";
  Char.code (Bigarray.Array1.unsafe_get t.ba i)

let get_u32 t off =
  check t off 4 "get_u32";
  let b i = Char.code (Bigarray.Array1.unsafe_get t.ba (off + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

(* 64-bit little-endian, rejected when it does not fit a non-negative
   OCaml int (top two bits of the last byte): a corrupt length field
   must fail here, not wrap around in later arithmetic. *)
let get_u64 t off =
  check t off 8 "get_u64";
  let b i = Char.code (Bigarray.Array1.unsafe_get t.ba (off + i)) in
  let top = b 7 in
  if top land 0xC0 <> 0 then invalid_arg "Membuf.get_u64: value exceeds 62 bits";
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) lor (b 4 lsl 32)
  lor (b 5 lsl 40) lor (b 6 lsl 48) lor (top lsl 56)

let get_bit t pos =
  let byte = pos lsr 3 in
  check t byte 1 "get_bit";
  Char.code (Bigarray.Array1.unsafe_get t.ba byte) land (1 lsl (pos land 7)) <> 0

(* [get_bits t pos len] reads [len <= 62] bits starting at bit [pos],
   LSB-first, mirroring [Bitbuf.get_bits].  Accumulated in <= 8-bit
   chunks so no intermediate shift exceeds 61 (OCaml ints are 63-bit). *)
let get_bits t pos len =
  if len < 0 || len > 62 then invalid_arg "Membuf.get_bits: len outside [0, 62]";
  if len = 0 then 0
  else begin
    let first_byte = pos lsr 3 in
    let last_byte = (pos + len - 1) lsr 3 in
    check t first_byte (last_byte - first_byte + 1) "get_bits";
    let sh = pos land 7 in
    let take = min len (8 - sh) in
    let acc = ref ((Char.code (Bigarray.Array1.unsafe_get t.ba first_byte) lsr sh)
                   land ((1 lsl take) - 1)) in
    let got = ref take in
    let byte = ref (first_byte + 1) in
    while !got < len do
      let take = min 8 (len - !got) in
      let v = Char.code (Bigarray.Array1.unsafe_get t.ba !byte) land ((1 lsl take) - 1) in
      acc := !acc lor (v lsl !got);
      got := !got + take;
      incr byte
    done;
    !acc
  end
