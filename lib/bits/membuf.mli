(** Read-only byte/bit view over a char Bigarray.

    The flat static trie (format v3) runs its queries directly against
    the on-disk arena; a [Membuf.t] is the window it reads through —
    either a private copy ([of_string]) or the [mmap]ed file itself
    ([of_bigarray]).  Every accessor is bounds-checked, so corrupt
    offsets raise [Invalid_argument] instead of faulting, whichever
    backing is in use.

    Bit numbering is LSB-first within each byte, identical to
    {!Bitbuf}: a stream serialized with [Bitbuf.get_bits bb (8*i) 8]
    per byte reads back bit-for-bit with {!get_bits}. *)

type ba = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val of_string : string -> t
(** Copy a string into a private buffer. *)

val of_bigarray : ba -> t
(** View an existing Bigarray without copying (e.g. an [mmap]ed file).
    The view keeps the array alive; the mapping stays valid for the
    lifetime of the [t]. *)

val length : t -> int
(** Size in bytes. *)

val to_string : t -> string
(** Copy the whole window out (e.g. to re-save an opened arena). *)

val sub : t -> int -> int -> t
(** [sub t off len] is the window [off, off+len) sharing storage. *)

val get : t -> int -> int
(** Byte at an offset, [0..255]. *)

val get_u32 : t -> int -> int
(** Little-endian unsigned 32-bit read. *)

val get_u64 : t -> int -> int
(** Little-endian 64-bit read; raises [Invalid_argument] when the value
    does not fit a non-negative OCaml int (i.e. exceeds 62 bits). *)

val get_bit : t -> int -> bool
(** Bit at a bit position. *)

val get_bits : t -> int -> int -> int
(** [get_bits t pos len] packs bits [pos .. pos+len) into an int, bit
    [pos] at bit 0.  Requires [0 <= len <= 62]. *)
