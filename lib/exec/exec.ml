(** Batch query execution engine.

    A query batch is executed level-by-level over the trie instead of
    one root-to-leaf walk per operation.  The downward operations
    (access / rank / rank_prefix) are sorted by position once at the
    root and carried through the trie as a frontier of
    [(node, item range)] groups; every visited node answers all of its
    items with a single rank cursor ({!Wt_core.Node_view.CURSORED})
    before its children are expanded.

    Why one cursor per node suffices: for a fixed bit [b],
    [rank b] is monotone in the position, so if a node receives its
    items in non-decreasing position order, the positions it forwards to
    each child are again non-decreasing — sortedness is preserved all
    the way down, and every bitvector query after the first lands in (or
    just after) the cursor's cached block.

    Work that depends only on the query *string* — not the position —
    is shared across the batch instead of repeated per item:

    - rank / rank_prefix items resolve their Patricia descent (label
      comparisons, branching bits) once per distinct string, via the
      same memoized trails the select family uses.  In the hot loop a
      rank item is just a position plus an index into its precomputed
      branch-bit array: no label [lcp], no suffix bookkeeping.
    - access items share the path prefix per *node* (the frontier group
      carries the reversed label pieces); items landing on the same leaf
      share one materialized bitstring.

    The frontier itself is struct-of-arrays — parallel [id]/[pos]/
    [trail] arrays, double-buffered between levels — so a level is a
    few sequential passes rather than pointer chasing through per-item
    records.  The upward operations (select / select_prefix) share one
    Patricia descent per distinct query string; each occurrence index
    pays only the [bv_select] fold.

    The per-operation results are exactly those of the scalar {!Query}
    algorithms, errors included. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace
module Iseq = Wt_core.Indexed_sequence

(* The bitstring-level engine, shared by the three variants. *)
module Make (N : Wt_core.Node_view.CURSORED) = struct
  module Q = Wt_core.Query.Make (N)

  type bitop =
    | Access of int
    | Rank of Bitstring.t * int
    | Rank_prefix of Bitstring.t * int
    | Select of Bitstring.t * int
    | Select_prefix of Bitstring.t * int

  type bitres =
    | Bits of Bitstring.t (* access *)
    | Count of int (* rank / rank_prefix *)
    | Found of int (* select: position *)
    | Missing of int (* select: how many occurrences exist *)

  (* Single-bit label pieces, shared by every access path. *)
  let bit0 = Bitstring.of_bool_list [ false ]
  let bit1 = Bitstring.of_bool_list [ true ]

  (* A downward item is four parallel-array slots:
     [id]    result index;
     [pos]   position within the current node's subsequence;
     [trail] branch bits of the item's fixed root-to-target path
             (rank / rank_prefix; shared per distinct string);
     [tix]   next trail index, or -1 for access items (which read
             their branch bit from the bitvector instead). *)
  let no_trail : bool array = [||]

  let run trie (ops : bitop array) : bitres array =
    let n = N.length trie in
    let nops = Array.length ops in
    let results = Array.make nops (Count 0) in
    if nops > 0 then
      Trace.with_span ~args:[ ("ops", nops) ] "exec.batch" (fun () ->
    begin
      Probe.hit Exec_batch;
      Probe.record Exec_batch_ops nops;
      (* Memoized descents, one per distinct string: select groups keyed
         by (is_prefix, string), and branch-bit trails for the rank
         family. *)
      let selects = Hashtbl.create 16 in
      let rank_trails = Hashtbl.create 16 in
      let prefix_trails = Hashtbl.create 16 in
      let trail_bits tbl is_prefix s =
        match Hashtbl.find_opt tbl s with
        | Some t -> t
        | None ->
            let tr =
              if is_prefix then Option.map snd (Q.prefix_trail trie s)
              else Option.map snd (Q.trail_of trie s)
            in
            (* trails are deepest-first; the engine consumes them
               root-first *)
            let t = Option.map (fun l -> Array.of_list (List.rev_map snd l)) tr in
            Hashtbl.add tbl s t;
            t
      in
      let down = ref [] in
      let m = ref 0 in
      let push id pos trail tix =
        incr m;
        down := (id, pos, trail, tix) :: !down
      in
      Array.iteri
        (fun i op ->
          match op with
          | Access pos ->
              if pos < 0 || pos >= n then invalid_arg "Exec.run: access out of bounds";
              Probe.hit Wt_access;
              push i pos no_trail (-1)
          | Rank (s, pos) ->
              if pos < 0 || pos > n then invalid_arg "Exec.run: rank out of bounds";
              Probe.hit Wt_rank;
              (match trail_bits rank_trails false s with
              | None -> results.(i) <- Count 0 (* absent string *)
              | Some bits -> push i pos bits 0)
          | Rank_prefix (p, pos) ->
              if pos < 0 || pos > n then
                invalid_arg "Exec.run: rank_prefix out of bounds";
              Probe.hit Wt_rank_prefix;
              (match trail_bits prefix_trails true p with
              | None -> results.(i) <- Count 0 (* prefix matches nothing *)
              | Some bits -> push i pos bits 0)
          | Select (s, k) ->
              if k < 0 then invalid_arg "Exec.run: negative select index";
              Probe.hit Wt_select;
              let key = (false, s) in
              let group =
                match Hashtbl.find_opt selects key with
                | Some g -> g
                | None ->
                    let g = ref [] in
                    Hashtbl.add selects key g;
                    g
              in
              group := (i, k) :: !group
          | Select_prefix (p, k) ->
              if k < 0 then invalid_arg "Exec.run: negative select_prefix index";
              Probe.hit Wt_select_prefix;
              let key = (true, p) in
              let group =
                match Hashtbl.find_opt selects key with
                | Some g -> g
                | None ->
                    let g = ref [] in
                    Hashtbl.add selects key g;
                    g
              in
              group := (i, k) :: !group)
        ops;
      (* Upward family: one memoized trail per distinct string, then a
         select fold per occurrence index. *)
      Hashtbl.iter
        (fun (is_prefix, s) group ->
          let trail =
            if is_prefix then
              match Q.prefix_trail trie s with
              | None -> None
              | Some (np, tr) -> Some (N.count np, tr)
            else Q.trail_of trie s
          in
          match trail with
          | None -> List.iter (fun (i, _) -> results.(i) <- Missing 0) !group
          | Some (cnt, tr) ->
              List.iter
                (fun (i, k) ->
                  if k >= cnt then results.(i) <- Missing cnt
                  else
                    results.(i) <-
                      Found
                        (List.fold_left (fun j (node, b) -> N.bv_select node b j) k tr))
                !group)
        selects;
      (* Downward family: level-by-level frontier over parallel arrays. *)
      (match N.root trie with
      | Some root when !m > 0 ->
          let m = !m in
          (* materialize, then sort by root position (one sort total) *)
          let uid = Array.make m 0
          and upos = Array.make m 0
          and utix = Array.make m 0
          and utrl = Array.make m no_trail in
          let j = ref m in
          List.iter
            (fun (id, pos, trl, tix) ->
              decr j;
              uid.(!j) <- id;
              upos.(!j) <- pos;
              utix.(!j) <- tix;
              utrl.(!j) <- trl)
            !down;
          let perm = Array.init m Fun.id in
          Array.sort (fun a b -> Stdlib.compare (upos.(a) : int) upos.(b)) perm;
          let pick src = Array.map (fun k -> src.(k)) perm in
          (* double-buffered item arrays + per-level scratch for the
             one-branch items (zeros are written in place, ones after) *)
          let cid = ref (pick uid)
          and cpos = ref (pick upos)
          and ctix = ref (pick utix)
          and ctrl = ref (pick utrl) in
          let nid = ref (Array.make m 0)
          and npos = ref (Array.make m 0)
          and ntix = ref (Array.make m 0)
          and ntrl = ref (Array.make m no_trail) in
          let oid = Array.make m 0
          and opos = Array.make m 0
          and otix = Array.make m 0
          and otrl = Array.make m no_trail in
          let groups = ref [ (root, [], 0, m) ] in
          let lvl = ref 0 in
          while !groups <> [] do
            let level = !groups in
            groups := [];
            let fill = ref 0 in
            Trace.with_span
              ~args:[ ("level", !lvl); ("groups", List.length level) ]
              "exec.level"
              (fun () ->
            Probe.time Exec_level (fun () ->
                List.iter
                  (fun (node, pfx, lo, hi) ->
                    let cid = !cid and cpos = !cpos and ctix = !ctix and ctrl = !ctrl in
                    let nid = !nid and npos = !npos and ntix = !ntix and ntrl = !ntrl in
                    let label = N.label node in
                    let llen = Bitstring.length label in
                    if N.is_leaf node then begin
                      Probe.record Wt_nodes_visited (hi - lo);
                      (* all access items here spell the same string *)
                      let full =
                        lazy (Bitstring.concat (List.rev (label :: pfx)))
                      in
                      for k = lo to hi - 1 do
                        if ctix.(k) < 0 then begin
                          Probe.record Wt_bits_consumed llen;
                          results.(cid.(k)) <- Bits (Lazy.force full)
                        end
                        else
                          (* a trail ending at a leaf is fully consumed:
                             the remaining count is the answer *)
                          results.(cid.(k)) <- Count cpos.(k)
                      done
                    end
                    else begin
                      let cursor = N.bv_cursor node in
                      let visited = ref 0 and consumed = ref 0 in
                      let zlo = !fill in
                      let ones = ref 0 in
                      for k = lo to hi - 1 do
                        let tix = ctix.(k) and pos = cpos.(k) in
                        if tix < 0 then begin
                          incr visited;
                          consumed := !consumed + llen + 1;
                          let b, pos' = N.cursor_access_rank cursor pos in
                          if b then begin
                            let o = !ones in
                            oid.(o) <- cid.(k);
                            opos.(o) <- pos';
                            otix.(o) <- -1;
                            otrl.(o) <- no_trail;
                            ones := o + 1
                          end
                          else begin
                            let f = !fill in
                            nid.(f) <- cid.(k);
                            npos.(f) <- pos';
                            ntix.(f) <- -1;
                            ntrl.(f) <- no_trail;
                            fill := f + 1
                          end
                        end
                        else begin
                          let trl = ctrl.(k) in
                          if tix = Array.length trl then
                            (* descent complete at an internal node
                               (rank_prefix whose p ends here) *)
                            results.(cid.(k)) <- Count pos
                          else if pos = 0 then results.(cid.(k)) <- Count 0
                          else begin
                            incr visited;
                            consumed := !consumed + llen + 1;
                            let b = trl.(tix) in
                            let pos' = N.cursor_rank cursor b pos in
                            if b then begin
                              let o = !ones in
                              oid.(o) <- cid.(k);
                              opos.(o) <- pos';
                              otix.(o) <- tix + 1;
                              otrl.(o) <- trl;
                              ones := o + 1
                            end
                            else begin
                              let f = !fill in
                              nid.(f) <- cid.(k);
                              npos.(f) <- pos';
                              ntix.(f) <- tix + 1;
                              ntrl.(f) <- trl;
                              fill := f + 1
                            end
                          end
                        end
                      done;
                      Probe.record Wt_nodes_visited !visited;
                      Probe.record Wt_bits_consumed !consumed;
                      let zhi = !fill in
                      let ones = !ones in
                      if ones > 0 then begin
                        Array.blit oid 0 nid zhi ones;
                        Array.blit opos 0 npos zhi ones;
                        Array.blit otix 0 ntix zhi ones;
                        Array.blit otrl 0 ntrl zhi ones;
                        fill := zhi + ones
                      end;
                      if zhi > zlo then
                        groups :=
                          (N.child node false, bit0 :: label :: pfx, zlo, zhi)
                          :: !groups;
                      if ones > 0 then
                        groups :=
                          (N.child node true, bit1 :: label :: pfx, zhi, zhi + ones)
                          :: !groups
                    end)
                  level));
            incr lvl;
            (* swap the frontier buffers *)
            let t = !cid in
            cid := !nid;
            nid := t;
            let t = !cpos in
            cpos := !npos;
            npos := t;
            let t = !ctix in
            ctix := !ntix;
            ntix := t;
            let t = !ctrl in
            ctrl := !ntrl;
            ntrl := t
          done
      | _ -> ())
    end);
    results
end

(* ------------------------------------------------------------------ *)
(* Byte-string wrapper: validates operations against the shared error
   type, binarizes each distinct string once, runs the engine, and maps
   results back.  Invalid operations become per-op [Error]s and are
   excluded from the engine batch — [query_batch] never raises. *)

module Make_string (N : Wt_core.Node_view.CURSORED) = struct
  module E = Make (N)

  let query_batch (trie : N.trie) (ops : Iseq.op array) :
      (Iseq.value, Iseq.error) result array =
    let n = N.length trie in
    let nops = Array.length ops in
    let out = Array.make nops (Ok (Iseq.Int 0)) in
    (* binarization is shared across duplicate strings in the batch *)
    let strs = Hashtbl.create 16 and prefs = Hashtbl.create 16 in
    let memo tbl f s =
      match Hashtbl.find_opt tbl s with
      | Some b -> b
      | None ->
          let b = f s in
          Hashtbl.add tbl s b;
          b
    in
    let encode = memo strs Wt_core.String_api.encode in
    let encode_prefix = memo prefs Wt_core.String_api.encode_prefix in
    let idxs = ref [] and bitops = ref [] in
    let push i bop =
      idxs := i :: !idxs;
      bitops := bop :: !bitops
    in
    Array.iteri
      (fun i op ->
        match op with
        | Iseq.Access { pos } ->
            if pos < 0 || pos >= n then
              out.(i) <- Error (Iseq.Position_out_of_bounds { pos; len = n })
            else push i (E.Access pos)
        | Iseq.Rank { s; pos } ->
            if pos < 0 || pos > n then
              out.(i) <- Error (Iseq.Position_out_of_bounds { pos; len = n })
            else push i (E.Rank (encode s, pos))
        | Iseq.Select { s; count } ->
            if count < 0 then out.(i) <- Error (Iseq.Negative_count { count })
            else push i (E.Select (encode s, count))
        | Iseq.Rank_prefix { prefix; pos } ->
            if pos < 0 || pos > n then
              out.(i) <- Error (Iseq.Position_out_of_bounds { pos; len = n })
            else push i (E.Rank_prefix (encode_prefix prefix, pos))
        | Iseq.Select_prefix { prefix; count } ->
            if count < 0 then out.(i) <- Error (Iseq.Negative_count { count })
            else push i (E.Select_prefix (encode_prefix prefix, count)))
      ops;
    let idxs = Array.of_list (List.rev !idxs) in
    let bitops = Array.of_list (List.rev !bitops) in
    let res = E.run trie bitops in
    (* access items landing on the same leaf share one bitstring; decode
       each distinct one once *)
    let decoded = Hashtbl.create 16 in
    let decode bs =
      match Hashtbl.find_opt decoded bs with
      | Some s -> s
      | None ->
          let s = Binarize.to_bytes bs in
          Hashtbl.add decoded bs s;
          s
    in
    Array.iteri
      (fun j r ->
        let i = idxs.(j) in
        out.(i) <-
          (match (r, bitops.(j)) with
          | E.Bits bs, _ -> Ok (Iseq.Str (decode bs))
          | E.Count c, _ -> Ok (Iseq.Int c)
          | E.Found p, _ -> Ok (Iseq.Int p)
          | E.Missing occ, (E.Select (_, k) | E.Select_prefix (_, k)) ->
              Error (Iseq.No_occurrence { count = k; occurrences = occ })
          | E.Missing _, _ -> assert false))
      res;
    out
end

module Static = Make_string (Wt_core.Flat_wt.Node)
module Pointer = Make_string (Wt_core.Wavelet_trie.Node)
module Append = Make_string (Wt_core.Append_wt.Node)
module Dynamic = Make_string (Wt_core.Dynamic_wt.Node)
