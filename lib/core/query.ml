(** Query algorithms of the Wavelet Trie (Lemmas 3.2 and 3.3), written
    once over {!Node_view.S} and shared by the static, append-only and
    fully-dynamic variants.

    Each operation performs O(h_s) bitvector operations along the
    root-to-node path of the queried string [s] (or prefix [p]), plus the
    O(|s|) label comparisons of a Patricia Trie search. *)

module Bitstring = Wt_strings.Bitstring
module Probe = Wt_obs.Probe

module Make (N : Node_view.S) = struct
  (* Traversal telemetry: every operation below bumps its own counter on
     entry; the descent loops additionally record [Wt_nodes_visited] once
     per node examined and [Wt_bits_consumed] for the label bits compared
     plus, on a descent, the branching bit.  Early exits (e.g. [pos = 0]
     in rank) do not examine a node and are not counted. *)

  let access trie pos =
    if pos < 0 || pos >= N.length trie then invalid_arg "Wavelet_trie.access";
    Probe.hit Wt_access;
    let rec go node pos acc =
      Probe.hit Wt_nodes_visited;
      if N.is_leaf node then begin
        Probe.record Wt_bits_consumed (Bitstring.length (N.label node));
        Bitstring.concat (List.rev (N.label node :: acc))
      end
      else begin
        Probe.record Wt_bits_consumed (Bitstring.length (N.label node) + 1);
        let b, pos' = N.bv_access_rank node pos in
        go (N.child node b) pos' (Bitstring.of_bool_list [ b ] :: N.label node :: acc)
      end
    in
    match N.root trie with None -> assert false | Some root -> go root pos []

  let rank trie s pos =
    if pos < 0 || pos > N.length trie then invalid_arg "Wavelet_trie.rank";
    Probe.hit Wt_rank;
    let rec go node off pos =
      if pos = 0 then 0
      else begin
        Probe.hit Wt_nodes_visited;
        let rest = Bitstring.drop s off in
        let label = N.label node in
        let l = Bitstring.lcp label rest in
        if N.is_leaf node then begin
          Probe.record Wt_bits_consumed l;
          if l = Bitstring.length label && l = Bitstring.length rest then pos else 0
        end
        else if l < Bitstring.length label || l >= Bitstring.length rest then begin
          Probe.record Wt_bits_consumed l;
          0
        end
        else begin
          Probe.record Wt_bits_consumed (l + 1);
          let b = Bitstring.get rest l in
          go (N.child node b) (off + l + 1) (N.bv_rank node b pos)
        end
      end
    in
    match N.root trie with None -> 0 | Some root -> go root 0 pos

  (* Descend to the leaf spelling s, recording the (node, bit) trail;
     returns the occurrence count and the trail, deepest node first. *)
  let trail_of trie s =
    let rec go node off acc =
      Probe.hit Wt_nodes_visited;
      let rest = Bitstring.drop s off in
      let label = N.label node in
      let l = Bitstring.lcp label rest in
      if N.is_leaf node then begin
        Probe.record Wt_bits_consumed l;
        if l = Bitstring.length label && l = Bitstring.length rest then
          Some (N.count node, acc)
        else None
      end
      else if l < Bitstring.length label || l >= Bitstring.length rest then begin
        Probe.record Wt_bits_consumed l;
        None
      end
      else begin
        Probe.record Wt_bits_consumed (l + 1);
        let b = Bitstring.get rest l in
        go (N.child node b) (off + l + 1) ((node, b) :: acc)
      end
    in
    match N.root trie with None -> None | Some root -> go root 0 []

  let select trie s idx =
    if idx < 0 then invalid_arg "Wavelet_trie.select";
    Probe.hit Wt_select;
    match trail_of trie s with
    | None -> None
    | Some (count, trail) ->
        if idx >= count then None
        else Some (List.fold_left (fun i (node, b) -> N.bv_select node b i) idx trail)

  let rank_prefix trie p pos =
    if pos < 0 || pos > N.length trie then invalid_arg "Wavelet_trie.rank_prefix";
    Probe.hit Wt_rank_prefix;
    let rec go node off pos =
      if pos = 0 then 0
      else begin
        Probe.hit Wt_nodes_visited;
        let rest = Bitstring.drop p off in
        if Bitstring.is_empty rest then pos
        else begin
          let label = N.label node in
          let l = Bitstring.lcp label rest in
          if l = Bitstring.length rest then begin
            Probe.record Wt_bits_consumed l;
            pos
          end
          else if l < Bitstring.length label || N.is_leaf node then begin
            Probe.record Wt_bits_consumed l;
            0
          end
          else begin
            Probe.record Wt_bits_consumed (l + 1);
            let b = Bitstring.get rest l in
            go (N.child node b) (off + l + 1) (N.bv_rank node b pos)
          end
        end
      end
    in
    match N.root trie with None -> 0 | Some root -> go root 0 pos

  (* Descend to the node np covering prefix p (Lemma 3.3). *)
  let prefix_trail trie p =
    let rec go node off acc =
      Probe.hit Wt_nodes_visited;
      let rest = Bitstring.drop p off in
      if Bitstring.is_empty rest then Some (node, acc)
      else begin
        let label = N.label node in
        let l = Bitstring.lcp label rest in
        if l = Bitstring.length rest then begin
          Probe.record Wt_bits_consumed l;
          Some (node, acc)
        end
        else if l < Bitstring.length label || N.is_leaf node then begin
          Probe.record Wt_bits_consumed l;
          None
        end
        else begin
          Probe.record Wt_bits_consumed (l + 1);
          let b = Bitstring.get rest l in
          go (N.child node b) (off + l + 1) ((node, b) :: acc)
        end
      end
    in
    match N.root trie with None -> None | Some root -> go root 0 []

  let select_prefix trie p idx =
    if idx < 0 then invalid_arg "Wavelet_trie.select_prefix";
    Probe.hit Wt_select_prefix;
    match prefix_trail trie p with
    | None -> None
    | Some (np, trail) ->
        if idx >= N.count np then None
        else Some (List.fold_left (fun i (node, b) -> N.bv_select node b i) idx trail)

  let distinct_count trie =
    let rec go node =
      if N.is_leaf node then 1 else go (N.child node false) + go (N.child node true)
    in
    match N.root trie with None -> 0 | Some root -> go root

  let to_array trie = Array.init (N.length trie) (access trie)

  (* Preorder dump of (α, β) pairs, for golden structure tests. *)
  let dump trie =
    let out = ref [] in
    let rec go node =
      if N.is_leaf node then
        out := (Bitstring.to_string (N.label node), None) :: !out
      else begin
        let m = N.count node in
        let next = N.iter_bits node 0 in
        let beta = String.init m (fun _ -> if next () then '1' else '0') in
        out := (Bitstring.to_string (N.label node), Some beta) :: !out;
        go (N.child node false);
        go (N.child node true)
      end
    in
    (match N.root trie with None -> () | Some root -> go root);
    List.rev !out

  (* Figure-2-style tree rendering. *)
  let pp_tree fmt trie =
    let label_str node =
      let l = Bitstring.to_string (N.label node) in
      if l = "" then "{e}" else l
    in
    let rec go fmt prefix node =
      if N.is_leaf node then
        Format.fprintf fmt "a=%s  (leaf x%d)" (label_str node) (N.count node)
      else begin
        let m = N.count node in
        let next = N.iter_bits node 0 in
        let beta =
          String.init (min m 64) (fun _ -> if next () then '1' else '0')
          ^ if m > 64 then "..." else ""
        in
        Format.fprintf fmt "a=%s  b=%s" (label_str node) beta;
        Format.fprintf fmt "@,%s+-0: " prefix;
        go fmt (prefix ^ "|    ") (N.child node false);
        Format.fprintf fmt "@,%s+-1: " prefix;
        go fmt (prefix ^ "     ") (N.child node true)
      end
    in
    match N.root trie with
    | None -> Format.pp_print_string fmt "<empty sequence>"
    | Some root ->
        Format.fprintf fmt "@[<v>";
        go fmt "" root;
        Format.fprintf fmt "@]"

  (* Generic space accounting (Stats).  [space_bits] supplies the
     variant's measured total (node overheads differ across variants). *)
  let stats ~space_bits trie : Stats.t =
    let bv_len = ref 0 in
    let bv_bits = ref 0 in
    let label_bits = ref 0 in
    let leaf_counts = ref [] in
    let nodes = ref 0 in
    let rec go node =
      incr nodes;
      label_bits := !label_bits + Bitstring.length (N.label node);
      if N.is_leaf node then leaf_counts := N.count node :: !leaf_counts
      else begin
        bv_len := !bv_len + N.count node;
        bv_bits := !bv_bits + N.bv_space_bits node;
        go (N.child node false);
        go (N.child node true)
      end
    in
    (match N.root trie with None -> () | Some root -> go root);
    let e = max 0 (!nodes - 1) in
    let trie_lb_bits =
      if !nodes = 0 then 0.
      else
        float_of_int (!label_bits + e)
        +. Wt_bits.Entropy.binomial_bound e (!label_bits + e)
    in
    let n = N.length trie in
    {
      n;
      distinct = List.length !leaf_counts;
      avg_height = (if n = 0 then 0. else float_of_int !bv_len /. float_of_int n);
      seq_h0_bits = Wt_bits.Entropy.sequence_h0_bits (Array.of_list !leaf_counts);
      trie_lb_bits;
      bv_bits = !bv_bits;
      label_bits = !label_bits;
      total_bits = space_bits trie;
    }
end
