(** Fully-dynamic Wavelet Trie (Section 4 of the paper, Theorem 4.4) —
    the first compressed dynamic sequence with a dynamic alphabet.

    A dynamic Patricia Trie skeleton whose internal nodes carry
    fully-dynamic RLE+γ bitvectors ({!Wt_bitvector.Dyn_rle}).

    - [insert pos s] supports previously unseen strings: the trie node
      where [s] diverges is split, and the fresh internal node receives a
      constant bitvector built with the O(log n) [Init] of Theorem 4.9
      (Figure 3 of the paper).
    - [delete pos] removes the string at [pos]; deleting the last
      occurrence of a string merges its parent with the sibling subtree,
      shrinking the alphabet.

    All operations run in O(|s| + h_s log n) (delete of a last occurrence
    pays the label merge, O(l̂ + h_s log n)).  Space is
    [LB(S) + PT(Sset) + O(n H0)] bits. *)

type t

include Indexed_sequence.DYNAMIC with type t := t

val create : unit -> t
val of_array : Wt_strings.Bitstring.t array -> t
val to_array : t -> Wt_strings.Bitstring.t array

val snapshot : t -> t
(** Frozen copy for snapshot-isolated readers: O(#trie nodes) skeleton
    copy whose per-node bitvectors are O(1) persistent snapshots
    ({!Wt_bitvector.Dyn_rle.snapshot}).  Queries on the copy are
    oblivious to subsequent [insert]/[delete]/[append] on the original
    (and vice versa) — the publication primitive behind parallel serving
    of the dynamic variant ({!Wt_par.Snapshot}). *)

val dump : t -> (string * string option) list
val stats : t -> Stats.t

val pp : Format.formatter -> t -> unit
(** Render the trie in the style of the paper's Figure 2 (labels α and
    bitvectors β per node; β truncated past 64 bits). *)

val check_invariants : t -> unit
(** Validate per-node counts, bitvector internal invariants, and that no
    internal node has a constant bitvector (such nodes must have been
    merged away).  Raises [Failure]. *)

module Node : Node_view.CURSORED with type trie = t
