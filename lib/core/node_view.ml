(** The node interface shared by all Wavelet Trie variants.

    The query algorithms of Sections 3–5 (access/rank/select, the prefix
    variants, and the range algorithms) only need trie navigation plus
    rank/select/access/iteration on each node's bitvector β; this module
    type abstracts over the static (RRR), append-only, and fully-dynamic
    (RLE+γ) node representations so {!Query} and {!Range} are written
    once. *)

module type S = sig
  type trie
  type node

  val root : trie -> node option
  (** [None] iff the sequence is empty. *)

  val length : trie -> int
  (** Sequence length [n]. *)

  val label : node -> Wt_strings.Bitstring.t
  (** The node's α. *)

  val is_leaf : node -> bool

  val count : node -> int
  (** Length of the subsequence this node represents (for internal nodes,
      the length of β; for leaves, the number of occurrences). *)

  val child : node -> bool -> node
  (** [child v b]: the [b]-labeled child of an internal node. *)

  val bv_rank : node -> bool -> int -> int
  val bv_select : node -> bool -> int -> int
  val bv_access : node -> int -> bool

  val bv_access_rank : node -> int -> bool * int
  (** [(b, rank b pos)] with [b] the bit at [pos], in one pass over β. *)

  val iter_bits : node -> int -> unit -> bool
  (** [iter_bits v pos] returns a cursor yielding β's bits from position
      [pos], one per call, amortized O(1). *)

  val bv_space_bits : node -> int
  (** Measured footprint of an internal node's bitvector (space
      accounting). *)
end

(** {!S} plus a rank cursor over a node's β, for the batch query engine
    ({!module:Exec} in [lib/exec]): one cursor per visited node answers a
    monotone sequence of rank/access queries from cached block state
    instead of a from-scratch directory walk per query. *)
module type CURSORED = sig
  include S

  type cursor

  val bv_cursor : node -> cursor
  (** A fresh cursor over an internal node's β.  O(1). *)

  val cursor_rank : cursor -> bool -> int -> int
  (** Same contract as [bv_rank]; cheap when positions arrive in
      non-decreasing order. *)

  val cursor_access_rank : cursor -> int -> bool * int
  (** Same contract as [bv_access_rank]; cheap on monotone positions. *)
end
