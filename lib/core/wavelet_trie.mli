(** Static Wavelet Trie (Section 3 of the paper, Theorem 3.7).

    The Wavelet Trie of a sequence [S] of prefix-free binary strings is
    the Wavelet Tree of [S] whose shape is the Patricia Trie of the
    distinct strings [Sset] (Definition 3.1): each internal node carries
    the longest-common-prefix label α and an RRR-compressed bitvector β
    discriminating, in sequence order, which strings continue with 0 and
    which with 1.

    Supported queries, each in O(|s| + h_s) bitvector operations
    (Lemmas 3.2 and 3.3): [access], [rank], [select], [rank_prefix],
    [select_prefix].

    Space is [LT(Sset) + n H0(S) + o(h̃ n)] bits; {!stats} reports every
    term of the bound next to the measured footprint. *)

type t

include Indexed_sequence.S with type t := t

val of_array : Wt_strings.Bitstring.t array -> t
(** Build from a sequence.  The distinct strings must form a prefix-free
    set; [Invalid_argument] otherwise.  O(total input bits). *)

val of_list : Wt_strings.Bitstring.t list -> t

val to_array : t -> Wt_strings.Bitstring.t array
(** Decode the whole sequence (for tests; O(n) Access-equivalent work). *)

val dump : t -> (string * string option) list
(** Preorder list of nodes as [(α, Some β | None)] rendered as 0/1
    strings — leaves have no bitvector.  Used by the Figure 2 golden
    test. *)

val stats : t -> Stats.t
(** Space accounting per Theorem 3.7. *)

val iter_bfs :
  t ->
  (label:Wt_strings.Bitstring.t -> bv:Wt_bitvector.Rrr.t option -> count:int -> unit) ->
  unit
(** Visit every node in BFS (level) order — a node's two children are
    enqueued consecutively, zero child first.  [bv] is [None] for
    leaves; [count] is the subsequence length (β length for internal
    nodes, occurrence count for leaves).  Serialization hook for the
    flat arena builder ({!Flat_wt}). *)

val pp : Format.formatter -> t -> unit
(** Render the trie in the style of the paper's Figure 2 (labels α and
    bitvectors β per node; β truncated past 64 bits). *)

(** Internal node view used by the Section 5 range algorithms
    ({!Range}). *)
module Node : Node_view.CURSORED with type trie = t
