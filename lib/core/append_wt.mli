(** Append-only Wavelet Trie (Section 4 of the paper, Theorem 4.3).

    A dynamic Patricia Trie skeleton whose internal nodes carry
    append-only compressed bitvectors ({!Wt_bitvector.Appendable}).
    [append s] runs in O(|s| + h_s) — including when [s] is a previously
    unseen string, which splits one trie node: the fresh internal node's
    bitvector is a constant prefix realized as a left offset (the paper's
    O(1) [Init] trick), so compressing and indexing a sequential log on
    the fly is as cheap as querying it.

    Queries are as in the static version: O(|s| + h_s) with O(1)
    bitvector operations.  Space is
    [LB(S) + PT(Sset) + o(h̃ n)] bits, where [PT] is the O(|Sset| w)
    pointer overhead of the dynamic Patricia Trie. *)

type t

include Indexed_sequence.S with type t := t

val create : unit -> t

val append : t -> Wt_strings.Bitstring.t -> unit
(** [append t s] appends [s] at position [length t].  The distinct
    strings must stay prefix-free; [Invalid_argument] otherwise. *)

val of_array : Wt_strings.Bitstring.t array -> t
val to_array : t -> Wt_strings.Bitstring.t array

val bulk_append : t -> Wt_strings.Bitstring.t array -> unit
(** [bulk_append t ss] appends the strings of [ss] in order, routing the
    whole batch through the trie in one traversal: each node's branch
    bits are appended in one run instead of once per root-to-leaf walk.
    The result is identical to [Array.iter (append t) ss].  On a
    prefix-freeness violation, raises [Invalid_argument] and leaves the
    trie partially updated — treat the whole batch as failed. *)

val dump : t -> (string * string option) list
(** Preorder [(α, β)] dump, as {!Wavelet_trie.dump}. *)

val stats : t -> Stats.t

val pp : Format.formatter -> t -> unit
(** Render the trie in the style of the paper's Figure 2 (labels α and
    bitvectors β per node; β truncated past 64 bits). *)

val check_invariants : t -> unit
(** Validate per-node counts and bitvector lengths; raises [Failure]. *)

module Node : Node_view.CURSORED with type trie = t
