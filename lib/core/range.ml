(** Range query algorithms on the Wavelet Trie (Section 5 of the paper).

    All operations work on the positions [lo, hi) of the sequence and are
    generic over the trie variant through {!Node_view.S}; [Cop] (the cost
    of one bitvector operation) is O(1) for the static and append-only
    tries and O(log n) for the fully dynamic one.

    - {!Make.iter_range}: sequential enumeration using per-node bit
      iterators — one rank per traversed node, then O(1) amortized per
      emitted bit (the paper's "Sequential access").
    - {!Make.distinct}: distinct values (with counts) in the range, in
      lexicographic order, touching only subtrees that contain range
      elements.
    - {!Make.majority}: the range majority element, O(h · Cop).
    - {!Make.at_least}: all values occurring at least [threshold] times in
      the range — the paper's pruning heuristic for frequent values.
    - {!Make.top_k}: the k most frequent values, exactly (best-first by
      range count).
    - {!Make.quantile}: the k-th lexicographically smallest string in the
      range (the range-quantile algorithm of [11], which Section 5 cites).

    Each operation takes an optional [?prefix] restricting it to the
    subtree of strings starting with that prefix (the traversal starts at
    the node [n_p] of Lemma 3.3). *)

module Bitstring = Wt_strings.Bitstring

module Make (N : Node_view.S) = struct
  module Q = Query.Make (N)

  (* Resolve the optional prefix: the start node, the root-to-node string
     (including the node's own label for internal recursions that emit
     strings), and [lo, hi) mapped into the node's subsequence.  Returns
     None when no stored string has the prefix. *)
  let resolve ?prefix trie ~lo ~hi =
    let n = N.length trie in
    if lo < 0 || hi > n || lo > hi then invalid_arg "Range: bad range";
    match N.root trie with
    | None -> None
    | Some root -> (
        match prefix with
        | None -> Some (root, [], lo, hi)
        | Some p -> (
            match Q.prefix_trail trie p with
            | None -> None
            | Some (np, trail) ->
                let trail = List.rev trail (* root first *) in
                let map pos =
                  List.fold_left (fun pos (node, b) -> N.bv_rank node b pos) pos trail
                in
                let base =
                  List.concat_map
                    (fun (node, b) -> [ N.label node; Bitstring.of_bool_list [ b ] ])
                    trail
                in
                Some (np, base, map lo, map hi)))

  (* Lazily-built cursor tree for sequential access. *)
  type cursor = {
    node : N.node;
    path : Bitstring.t; (* full string prefix incl. this node's label *)
    next_bit : (unit -> bool) option; (* None for leaves *)
    mutable zero : cursor option;
    mutable one : cursor option;
    mutable zero_start : int; (* subsequence position where the child
                                 cursor starts when first created *)
    mutable one_start : int;
  }

  let make_cursor node path start =
    {
      node;
      path;
      next_bit = (if N.is_leaf node then None else Some (N.iter_bits node start));
      zero = None;
      one = None;
      zero_start = (if N.is_leaf node then 0 else N.bv_rank node false start);
      one_start = (if N.is_leaf node then 0 else N.bv_rank node true start);
    }

  let rec cursor_next c =
    match c.next_bit with
    | None -> c.path
    | Some next ->
        let b = next () in
        let child =
          if b then (
            match c.one with
            | Some x -> x
            | None ->
                let ch = N.child c.node true in
                let x =
                  make_cursor ch
                    (Bitstring.concat
                       [ c.path; Bitstring.of_bool_list [ true ]; N.label ch ])
                    c.one_start
                in
                c.one <- Some x;
                x)
          else
            match c.zero with
            | Some x -> x
            | None ->
                let ch = N.child c.node false in
                let x =
                  make_cursor ch
                    (Bitstring.concat
                       [ c.path; Bitstring.of_bool_list [ false ]; N.label ch ])
                    c.zero_start
                in
                c.zero <- Some x;
                x
        in
        cursor_next child

  let iter_range ?prefix trie ~lo ~hi f =
    match resolve ?prefix trie ~lo ~hi with
    | None -> ()
    | Some (node, base, lo, hi) ->
        if lo < hi then begin
          let path = Bitstring.concat (base @ [ N.label node ]) in
          let c = make_cursor node path lo in
          for _ = lo to hi - 1 do
            f (cursor_next c)
          done
        end

  let to_list ?prefix trie ~lo ~hi =
    let acc = ref [] in
    iter_range ?prefix trie ~lo ~hi (fun s -> acc := s :: !acc);
    List.rev !acc

  let distinct ?prefix trie ~lo ~hi =
    match resolve ?prefix trie ~lo ~hi with
    | None -> []
    | Some (node, base, lo, hi) ->
        let acc = ref [] in
        let rec go node parts lo hi =
          if hi > lo then
            if N.is_leaf node then
              acc := (Bitstring.concat (List.rev parts), hi - lo) :: !acc
            else begin
              let z_lo = N.bv_rank node false lo and z_hi = N.bv_rank node false hi in
              go (N.child node false)
                (N.label (N.child node false) :: Bitstring.of_bool_list [ false ] :: parts)
                z_lo z_hi;
              go (N.child node true)
                (N.label (N.child node true) :: Bitstring.of_bool_list [ true ] :: parts)
                (lo - z_lo) (hi - z_hi)
            end
        in
        go node (N.label node :: List.rev base) lo hi;
        List.rev !acc

  let majority ?prefix trie ~lo ~hi =
    match resolve ?prefix trie ~lo ~hi with
    | None -> None
    | Some (node, base, lo, hi) ->
        if hi <= lo then None
        else begin
          let total = hi - lo in
          let rec go node parts lo hi =
            if N.is_leaf node then begin
              let count = hi - lo in
              if 2 * count > total then
                Some (Bitstring.concat (List.rev parts), count)
              else None
            end
            else begin
              let z_lo = N.bv_rank node false lo and z_hi = N.bv_rank node false hi in
              let zeros = z_hi - z_lo in
              let ones = hi - lo - zeros in
              if 2 * zeros > total then
                go (N.child node false)
                  (N.label (N.child node false)
                  :: Bitstring.of_bool_list [ false ]
                  :: parts)
                  z_lo z_hi
              else if 2 * ones > total then
                go (N.child node true)
                  (N.label (N.child node true) :: Bitstring.of_bool_list [ true ] :: parts)
                  (lo - z_lo) (hi - z_hi)
              else None
            end
          in
          go node (N.label node :: List.rev base) lo hi
        end

  let at_least ?prefix trie ~lo ~hi ~threshold =
    if threshold < 1 then invalid_arg "Range.at_least: threshold must be >= 1";
    match resolve ?prefix trie ~lo ~hi with
    | None -> []
    | Some (node, base, lo, hi) ->
        let acc = ref [] in
        let rec go node parts lo hi =
          if hi - lo >= threshold then
            if N.is_leaf node then
              acc := (Bitstring.concat (List.rev parts), hi - lo) :: !acc
            else begin
              let z_lo = N.bv_rank node false lo and z_hi = N.bv_rank node false hi in
              go (N.child node false)
                (N.label (N.child node false) :: Bitstring.of_bool_list [ false ] :: parts)
                z_lo z_hi;
              go (N.child node true)
                (N.label (N.child node true) :: Bitstring.of_bool_list [ true ] :: parts)
                (lo - z_lo) (hi - z_hi)
            end
        in
        go node (N.label node :: List.rev base) lo hi;
        List.rev !acc

  let count_range trie ~prefix ~lo ~hi =
    let n = N.length trie in
    if lo < 0 || hi > n || lo > hi then invalid_arg "Range.count_range";
    Q.rank_prefix trie prefix hi - Q.rank_prefix trie prefix lo

  (* k-th lexicographically smallest string in the range — the range
     quantile algorithm of Gagie-Navarro-Puglisi [11], which Section 5
     builds on: descend taking the 0-branch while it holds more than k
     range elements, else discount them and go right.  O(h * Cop). *)
  let quantile ?prefix trie ~lo ~hi k =
    if k < 0 then invalid_arg "Range.quantile";
    match resolve ?prefix trie ~lo ~hi with
    | None -> None
    | Some (node, base, lo, hi) ->
        if k >= hi - lo then None
        else begin
          let rec go node parts lo hi k =
            if N.is_leaf node then Some (Bitstring.concat (List.rev parts))
            else begin
              let z_lo = N.bv_rank node false lo and z_hi = N.bv_rank node false hi in
              let zeros = z_hi - z_lo in
              if k < zeros then
                go (N.child node false)
                  (N.label (N.child node false)
                  :: Bitstring.of_bool_list [ false ]
                  :: parts)
                  z_lo z_hi k
              else
                go (N.child node true)
                  (N.label (N.child node true) :: Bitstring.of_bool_list [ true ] :: parts)
                  (lo - z_lo) (hi - z_hi) (k - zeros)
            end
          in
          go node (N.label node :: List.rev base) lo hi k
        end

  (* Exact top-k most frequent values in the range, by best-first search:
     a node's range count upper-bounds every value below it, so expanding
     nodes in decreasing count order pops leaves in decreasing frequency
     (the classic wavelet-tree top-k of Gagie–Navarro–Puglisi, which the
     paper's Section 5 heuristic approximates).  Touches only the nodes
     whose count exceeds the k-th answer. *)
  let top_k ?prefix trie ~lo ~hi k =
    if k < 0 then invalid_arg "Range.top_k";
    match resolve ?prefix trie ~lo ~hi with
    | None -> []
    | Some (node, base, lo, hi) ->
        if hi <= lo || k = 0 then []
        else begin
          (* binary max-heap on (count, node, parts, lo, hi) *)
          let heap = ref [||] in
          let size = ref 0 in
          let swap i j =
            let t = !heap.(i) in
            !heap.(i) <- !heap.(j);
            !heap.(j) <- t
          in
          let count_of (c, _, _, _, _) = c in
          let push entry =
            if !size >= Array.length !heap then begin
              let bigger = Array.make (max 8 (2 * !size)) entry in
              Array.blit !heap 0 bigger 0 !size;
              heap := bigger
            end;
            !heap.(!size) <- entry;
            incr size;
            let i = ref (!size - 1) in
            while !i > 0 && count_of !heap.(!i) > count_of !heap.((!i - 1) / 2) do
              swap !i ((!i - 1) / 2);
              i := (!i - 1) / 2
            done
          in
          let pop () =
            let top = !heap.(0) in
            decr size;
            !heap.(0) <- !heap.(!size);
            let i = ref 0 in
            let continue = ref true in
            while !continue do
              let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
              let best = ref !i in
              if l < !size && count_of !heap.(l) > count_of !heap.(!best) then best := l;
              if r < !size && count_of !heap.(r) > count_of !heap.(!best) then best := r;
              if !best = !i then continue := false
              else begin
                swap !i !best;
                i := !best
              end
            done;
            top
          in
          push (hi - lo, node, N.label node :: List.rev base, lo, hi);
          let out = ref [] in
          let found = ref 0 in
          while !found < k && !size > 0 do
            let c, node, parts, lo, hi = pop () in
            if N.is_leaf node then begin
              out := (Bitstring.concat (List.rev parts), c) :: !out;
              incr found
            end
            else begin
              let z_lo = N.bv_rank node false lo and z_hi = N.bv_rank node false hi in
              let zeros = z_hi - z_lo in
              let ones = hi - lo - zeros in
              if zeros > 0 then begin
                let ch = N.child node false in
                push
                  (zeros, ch, N.label ch :: Bitstring.of_bool_list [ false ] :: parts,
                   z_lo, z_hi)
              end;
              if ones > 0 then begin
                let ch = N.child node true in
                push
                  (ones, ch, N.label ch :: Bitstring.of_bool_list [ true ] :: parts,
                   lo - z_lo, hi - z_hi)
              end
            end
          done;
          List.rev !out
        end
end

(** Pre-applied instances for the Wavelet Trie variants.  [Static] runs
    on the flat arena ({!Flat_wt}); [Pointer] on the linked static
    representation. *)
module Static = Make (Flat_wt.Node)

module Pointer = Make (Wavelet_trie.Node)

module Append = Make (Append_wt.Node)
module Dynamic = Make (Dynamic_wt.Node)
