(** Byte-string façade over any Wavelet Trie variant.

    The core structures work on prefix-free bitstrings; these functors
    apply {!Wt_strings.Binarize.of_bytes} on the way in (and its inverse
    on the way out) so applications can speak plain OCaml [string]s.
    Prefix arguments are byte-string prefixes: ["site.com/"] matches every
    stored string that starts with those bytes.

    All three variants satisfy the uniform signatures of
    {!Indexed_sequence.STRING_API} (and its mutating extensions); the
    [Wtrie] entry module re-exports them and seals the conformance.

    Observability: each façade operation runs under {!Wt_obs.Probe.time},
    so enabling probes yields per-operation latency histograms here while
    the operation counters come from the instrumented implementations
    below (query traversals, bitvector layers, mutation paths). *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Probe = Wt_obs.Probe

type api_error = Indexed_sequence.api_error = Position_out_of_bounds of { pos : int; len : int }

let pp_api_error = Indexed_sequence.pp_api_error

let encode = Binarize.of_bytes

(* A byte prefix is the encoding without its terminator bit. *)
let encode_prefix p =
  let e = Binarize.of_bytes p in
  Bitstring.prefix e (Bitstring.length e - 1)

module Make (I : Indexed_sequence.S) = struct
  type t = I.t

  let length = I.length
  let distinct_count = I.distinct_count
  let space_bits = I.space_bits
  let access t pos = Probe.time Wt_access (fun () -> Binarize.to_bytes (I.access t pos))
  let rank_exn t s pos = Probe.time Wt_rank (fun () -> I.rank t (encode s) pos)

  let rank t s pos =
    let len = I.length t in
    if pos < 0 || pos > len then Error (Position_out_of_bounds { pos; len })
    else Ok (rank_exn t s pos)

  let select t s idx =
    if idx < 0 then None else Probe.time Wt_select (fun () -> I.select t (encode s) idx)

  let select_exn t s idx =
    match Probe.time Wt_select (fun () -> I.select t (encode s) idx) with
    | Some pos -> pos
    | None -> raise Not_found

  let rank_prefix_exn t p pos =
    Probe.time Wt_rank_prefix (fun () -> I.rank_prefix t (encode_prefix p) pos)

  let rank_prefix t p pos =
    let len = I.length t in
    if pos < 0 || pos > len then Error (Position_out_of_bounds { pos; len })
    else Ok (rank_prefix_exn t p pos)

  let select_prefix t p idx =
    if idx < 0 then None
    else Probe.time Wt_select_prefix (fun () -> I.select_prefix t (encode_prefix p) idx)

  let select_prefix_exn t p idx =
    match Probe.time Wt_select_prefix (fun () -> I.select_prefix t (encode_prefix p) idx) with
    | Some pos -> pos
    | None -> raise Not_found

  let count_prefix t p = rank_prefix_exn t p (length t)
  (** Total number of stored strings starting with [p]. *)

  let count t s = rank_exn t s (length t)
  (** Total occurrences of [s]. *)
end

module Make_dynamic (I : Indexed_sequence.DYNAMIC) = struct
  include Make (I)

  let insert t pos s = Probe.time Wt_insert (fun () -> I.insert t pos (encode s))
  let delete t pos = Probe.time Wt_delete (fun () -> I.delete t pos)
  let append t s = Probe.time Wt_append (fun () -> I.append t (encode s))
end

module Static = struct
  include Make (Wavelet_trie)

  let of_list l = Wavelet_trie.of_list (List.map encode l)
  let of_array a = Wavelet_trie.of_array (Array.map encode a)
end

module Append = struct
  include Make (Append_wt)

  let create = Append_wt.create
  let append t s = Probe.time Wt_append (fun () -> Append_wt.append t (encode s))
  let of_array a = Append_wt.of_array (Array.map encode a)
  let of_list l = of_array (Array.of_list l)
end

module Dynamic = struct
  include Make_dynamic (Dynamic_wt)

  let create = Dynamic_wt.create
  let of_array a = Dynamic_wt.of_array (Array.map encode a)
  let of_list l = of_array (Array.of_list l)
end
