(** Byte-string façade over any Wavelet Trie variant.

    The core structures work on prefix-free bitstrings; these functors
    apply {!Wt_strings.Binarize.of_bytes} on the way in (and its inverse
    on the way out) so applications can speak plain OCaml [string]s.
    Prefix arguments are byte-string prefixes: ["site.com/"] matches every
    stored string that starts with those bytes.

    All three variants satisfy the uniform signatures of
    {!Indexed_sequence.STRING_API} (and its mutating extensions); the
    [Wtrie] entry module re-exports them and seals the conformance.

    Observability: each façade operation runs under {!Wt_obs.Probe.time},
    so enabling probes yields per-operation latency histograms here while
    the operation counters come from the instrumented implementations
    below (query traversals, bitvector layers, mutation paths). *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace

let encode = Binarize.of_bytes

(* A byte prefix is the encoding without its terminator bit. *)
let encode_prefix p =
  let e = Binarize.of_bytes p in
  Bitstring.prefix e (Bitstring.length e - 1)

open struct
  (* Shared constructors so the scalar façades and the batch engine
     report identical errors. *)
  type error = Indexed_sequence.error =
    | Position_out_of_bounds of { pos : int; len : int }
    | Negative_count of { count : int }
    | No_occurrence of { count : int; occurrences : int }
    | Trie_closed
    | Storage_error of { path : string; reason : string }
end

module Make (I : Indexed_sequence.S) = struct
  type t = I.t

  let length = I.length
  let distinct_count = I.distinct_count
  let space_bits = I.space_bits

  let access_exn t pos =
    Probe.time Wt_access (fun () -> Binarize.to_bytes (I.access t pos))

  let access t ~pos =
    let len = I.length t in
    if pos < 0 || pos >= len then Error (Position_out_of_bounds { pos; len })
    else Ok (access_exn t pos)

  let rank_exn t s pos = Probe.time Wt_rank (fun () -> I.rank t (encode s) pos)

  let rank t s ~pos =
    let len = I.length t in
    if pos < 0 || pos > len then Error (Position_out_of_bounds { pos; len })
    else Ok (rank_exn t s pos)

  let count t s = rank_exn t s (I.length t)

  let select_opt t s count =
    if count < 0 then None
    else Probe.time Wt_select (fun () -> I.select t (encode s) count)

  let select t s ~count =
    if count < 0 then Error (Negative_count { count })
    else
      match Probe.time Wt_select (fun () -> I.select t (encode s) count) with
      | Some pos -> Ok pos
      | None ->
          (* error path only: one extra rank to report how many exist *)
          Error (No_occurrence { count; occurrences = rank_exn t s (I.length t) })

  let select_exn t s count =
    match Probe.time Wt_select (fun () -> I.select t (encode s) count) with
    | Some pos -> pos
    | None -> raise Not_found

  let rank_prefix_exn t p pos =
    Probe.time Wt_rank_prefix (fun () -> I.rank_prefix t (encode_prefix p) pos)

  let rank_prefix t ~prefix ~pos =
    let len = I.length t in
    if pos < 0 || pos > len then Error (Position_out_of_bounds { pos; len })
    else Ok (rank_prefix_exn t prefix pos)

  let count_prefix t ~prefix = rank_prefix_exn t prefix (I.length t)

  let select_prefix_opt t p count =
    if count < 0 then None
    else Probe.time Wt_select_prefix (fun () -> I.select_prefix t (encode_prefix p) count)

  let select_prefix t ~prefix ~count =
    if count < 0 then Error (Negative_count { count })
    else
      match
        Probe.time Wt_select_prefix (fun () ->
            I.select_prefix t (encode_prefix prefix) count)
      with
      | Some pos -> Ok pos
      | None ->
          Error (No_occurrence { count; occurrences = count_prefix t ~prefix })

  let select_prefix_exn t p count =
    match
      Probe.time Wt_select_prefix (fun () -> I.select_prefix t (encode_prefix p) count)
    with
    | Some pos -> pos
    | None -> raise Not_found
end

module Make_dynamic (I : Indexed_sequence.DYNAMIC) = struct
  include Make (I)

  let insert t ~pos s =
    Trace.with_span ~args:[ ("pos", pos) ] "wt.insert" (fun () ->
        Probe.time Wt_insert (fun () -> I.insert t pos (encode s)))

  let delete t ~pos =
    Trace.with_span ~args:[ ("pos", pos) ] "wt.delete" (fun () ->
        Probe.time Wt_delete (fun () -> I.delete t pos))

  let append t s =
    Trace.with_span "wt.append" (fun () ->
        Probe.time Wt_append (fun () -> I.append t (encode s)))

  let append_batch t ss = Array.iter (append t) ss
end

module Pointer = struct
  include Make (Wavelet_trie)

  let of_list l = Wavelet_trie.of_list (List.map encode l)
  let of_array a = Wavelet_trie.of_array (Array.map encode a)
end

module Static = struct
  module M = Make (Flat_wt)
  include M

  (* Result-returning ops on a closed handle report [Trie_closed]
     instead of letting {!Flat_wt.Closed} escape, and a traversal that
     trips over a corrupted arena (possible under the mmap fast path,
     which skips the payload checksum) reports [Storage_error] instead
     of leaking the internal bounds-check exception.  The [_exn]
     variants keep the exceptions. *)
  let protect t f =
    if Flat_wt.is_closed t then Error Trie_closed
    else
      match f () with
      | r -> r
      | exception Flat_wt.Closed -> Error Trie_closed
      | exception (Invalid_argument reason | Failure reason) ->
          Error
            (Storage_error
               { path = Flat_wt.source t; reason = "corrupt arena: " ^ reason })
      | exception Wt_durable.Container.Format_error reason ->
          Error (Storage_error { path = Flat_wt.source t; reason })

  let access t ~pos = protect t (fun () -> M.access t ~pos)
  let rank t s ~pos = protect t (fun () -> M.rank t s ~pos)
  let select t s ~count = protect t (fun () -> M.select t s ~count)
  let rank_prefix t ~prefix ~pos = protect t (fun () -> M.rank_prefix t ~prefix ~pos)

  let select_prefix t ~prefix ~count =
    protect t (fun () -> M.select_prefix t ~prefix ~count)

  let of_list l = Flat_wt.of_list (List.map encode l)
  let of_array a = Flat_wt.of_array (Array.map encode a)
  let of_wavelet_trie = Flat_wt.of_wavelet_trie

  (* Storage front door: every failure mode lands in the shared error
     variant — [Format_error] and I/O problems as [Storage_error],
     operations on a closed handle as [Trie_closed]. *)
  let wrap_storage path f =
    match f () with
    | v -> Ok v
    | exception Flat_wt.Closed -> Error Trie_closed
    | exception Wt_durable.Container.Format_error reason ->
        Error (Storage_error { path; reason })
    | exception Sys_error reason -> Error (Storage_error { path; reason })

  let save_file t path = wrap_storage path (fun () -> Flat_wt.save_file t path)
  let save_file_exn = Flat_wt.save_file
  let open_file ?mode path = wrap_storage path (fun () -> Flat_wt.open_file ?mode path)
  let open_file_exn ?mode path = Flat_wt.open_file ?mode path
  let close = Flat_wt.close
  let is_closed = Flat_wt.is_closed
end

module Append = struct
  include Make (Append_wt)

  let create = Append_wt.create
  let append t s = Probe.time Wt_append (fun () -> Append_wt.append t (encode s))

  let append_batch t ss =
    Probe.time Wt_append (fun () -> Append_wt.bulk_append t (Array.map encode ss))

  let of_array a = Append_wt.of_array (Array.map encode a)
  let of_list l = of_array (Array.of_list l)
end

module Dynamic = struct
  include Make_dynamic (Dynamic_wt)

  let create = Dynamic_wt.create
  let snapshot = Dynamic_wt.snapshot
  let of_array a = Dynamic_wt.of_array (Array.map encode a)
  let of_list l = of_array (Array.of_list l)
end
