(** Save/load Wavelet Tries to disk — format v2.

    The on-disk format is the checksummed container of
    {!Wt_durable.Container}: a header (magic, format version, variant
    tag, payload length), the OCaml [Marshal] encoding of the
    structure, and a footer repeating the payload length — each section
    guarded by a CRC32C.  Corruption, truncation, version and variant
    mismatches all raise {!Format_error}; nothing unverified ever
    reaches [Marshal].  Saves are atomic (temp file + fsync + rename),
    so an interrupted save leaves the previous index intact.

    Like all [Marshal]-based formats it is not portable across
    incompatible compiler versions; the checksummed header makes such
    mismatches fail loudly instead of silently misbehaving.  Intended
    for index caches (see the [wtrie] CLI) and the {!Durable} store's
    snapshots, not archival storage. *)

exception Format_error of string
(** Raised by the [load_*] functions on any corruption: bad magic,
    version or variant tag, checksum mismatch, truncation. *)

val version : int
(** The on-disk format version, 2. *)

val save_static : Wavelet_trie.t -> string -> unit
val load_static : string -> Wavelet_trie.t
val save_append : Append_wt.t -> string -> unit
val load_append : string -> Append_wt.t
val save_dynamic : Dynamic_wt.t -> string -> unit
val load_dynamic : string -> Dynamic_wt.t

val is_index_file : string -> bool
(** Whether the file starts with this library's magic bytes. *)

val tag_of_file : string -> string option
(** The variant tag ("static" / "append" / "dynamic") of a fully
    checksum-verified index file, or [None]. *)
