(* Index persistence, format v2: the checksummed atomic container of
   {!Wt_durable.Container} around the Marshal encoding of each variant.

   Compared to format v1 (raw header + Marshal dump written in place):
   - every section (header, payload, footer) carries a CRC32C, so any
     bit flip or truncation raises [Format_error] instead of reaching
     [Marshal] — including the historical v1 hole where a corrupted tag
     length escaped as [Invalid_argument] or an allocation blow-up;
   - saves are atomic (temp file + fsync + rename): a crash mid-save
     always leaves the previous index intact. *)

module Container = Wt_durable.Container

exception Format_error = Container.Format_error

let version = Container.version

let save tag v path = Container.write ~tag ~payload:(Marshal.to_string v []) path

let load : type a. string -> string -> a =
 fun tag path ->
  let payload = Container.read ~expect_tag:tag path in
  (* The payload is checksum-verified, so Marshal failures here mean a
     marshalling-incompatible compiler, not disk corruption — but they
     still must fail loudly, not crash. *)
  match (Marshal.from_string payload 0 : a) with
  | v -> v
  | exception (Failure _ | Invalid_argument _ | End_of_file) ->
      raise (Format_error "index payload does not unmarshal (incompatible build?)")

let save_static (t : Wavelet_trie.t) path = save "static" t path
let load_static path : Wavelet_trie.t = load "static" path
let save_append (t : Append_wt.t) path = save "append" t path
let load_append path : Append_wt.t = load "append" path
let save_dynamic (t : Dynamic_wt.t) path = save "dynamic" t path
let load_dynamic path : Dynamic_wt.t = load "dynamic" path

let is_index_file = Container.is_container

let tag_of_file = Container.tag_of_file
