(* Pointer-free flat static Wavelet Trie — the format-v3 arena.

   The whole trie lives in one contiguous byte blob: a 64-byte header,
   a level-ordered table of fixed-size node records addressed by index
   instead of pointers, the concatenated node labels as one bit stream,
   and the RRR bitvector blobs inline ({!Wt_bitvector.Rrr.Flat}), with
   their rank/select directories precomputed at build time.  Queries
   run directly against the blob through {!Wt_bits.Membuf} — the
   on-disk container payload *is* the in-memory query structure, so
   [open] is a checksummed header read plus an [mmap] (zero-copy, one
   read-only mapping shareable across serving processes).

   Arena layout (integers little-endian, bit streams LSB-first):

     header (64 bytes):
       off  0  magic "WTF3" (4 bytes)
       off  4  u32 arena version (= 1)
       off  8  u64 n               sequence length
       off 16  u64 node_count
       off 24  u64 nodes_off       byte offset of the node table (= 64)
       off 32  u64 labels_off      byte offset of the label stream
       off 40  u64 labels_len_bits
       off 48  u64 arena_len       total blob size in bytes
       off 56  u64 reserved (= 0)

     node record (32 bytes, BFS order; children of node i are the
     consecutive records [child0, child0+1]):
       off  0  u32 child0          0-child index; 0 marks a leaf (the
                                   root is never a child, so index 0 is
                                   free as the sentinel)
       off  4  u32 count           subsequence length (β length /
                                   leaf occurrence count)
       off  8  u32 label_len       label length in bits
       off 12  u32 reserved (= 0)
       off 16  u64 label_off       bit offset into the label stream
       off 24  u64 payload         internal: absolute byte offset of
                                   the node's RRR blob; leaf: 0

     labels:  labels_len_bits bits, byte-padded
     blobs:   RRR blobs ({!Rrr.Flat} layout), one per internal node

   Safety: every arena read is bounds-checked by [Membuf], so a corrupt
   blob raises [Invalid_argument] (or {!Wt_durable.Container.Format_error}
   at open) — never a segfault — even when the backing is an unverified
   mmap.  [child] additionally requires child indices to increase, so
   traversals over corrupt tables terminate.  After {!close} the file
   descriptor is released and the handle flips to a closed state: every
   subsequent operation raises {!Closed} deterministically, while the
   mapping itself stays alive (GC-rooted through the handle) so
   in-flight reads in other domains remain memory-safe. *)

module Bitstring = Wt_strings.Bitstring
module Bitbuf = Wt_bits.Bitbuf
module Membuf = Wt_bits.Membuf
module Rrr = Wt_bitvector.Rrr
module Container = Wt_durable.Container
module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace

exception Closed

let arena_magic = "WTF3"
let arena_version = 1
let header_len = 64
let node_len = 32

let tag = "static"
(* Same variant tag as the v2 static container; the two are told apart
   by the container's format-version field. *)

type t = {
  mb : Membuf.t;
  n : int;
  node_count : int;
  nodes_off : int;
  labels_bit : int; (* bit offset of the label stream *)
  source : string; (* file path when opened from storage, for errors *)
  mutable closed : bool;
  release : unit -> unit; (* backing fd, when mmap-opened *)
}

let fail fmt = Printf.ksprintf (fun m -> raise (Container.Format_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Building: serialize a pointer trie's BFS walk straight into the
   arena blob. *)

type rec_ = {
  r_child0 : int;
  r_count : int;
  r_llen : int;
  r_loff : int;
  r_blob : int option; (* blob offset relative to the blob section *)
}

let append_stream buf bb =
  let len = Bitbuf.length bb in
  let i = ref 0 in
  while !i < len do
    let take = min 8 (len - !i) in
    Buffer.add_char buf (Char.chr (Bitbuf.get_bits bb !i take));
    i := !i + take
  done

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let arena_of_wavelet_trie (wt : Wavelet_trie.t) : string =
  Probe.time Flat_build (fun () ->
      let n = Wavelet_trie.length wt in
      if n >= 1 lsl 32 then invalid_arg "Flat_wt: sequence length exceeds 2^32";
      let labels = Bitbuf.create () in
      let blobs = Buffer.create 1024 in
      let recs = ref [] in
      let node_count = ref 0 in
      let next = ref 1 in
      Wavelet_trie.iter_bfs wt (fun ~label ~bv ~count ->
          let r_loff = Bitbuf.length labels in
          Bitstring.append_to_bitbuf label labels;
          let r_child0, r_blob =
            match bv with
            | None -> (0, None)
            | Some bv ->
                let off = Buffer.length blobs in
                Rrr.Flat.append blobs bv;
                let c0 = !next in
                next := !next + 2;
                (c0, Some off)
          in
          incr node_count;
          recs :=
            { r_child0; r_count = count; r_llen = Bitstring.length label; r_loff; r_blob }
            :: !recs);
      let node_count = !node_count in
      if node_count >= 1 lsl 32 then invalid_arg "Flat_wt: node count exceeds 2^32";
      let labels_bits = Bitbuf.length labels in
      let labels_off = header_len + (node_len * node_count) in
      let blobs_off = labels_off + ((labels_bits + 7) / 8) in
      let arena_len = blobs_off + Buffer.length blobs in
      let out = Buffer.create arena_len in
      Buffer.add_string out arena_magic;
      add_u32 out arena_version;
      add_u64 out n;
      add_u64 out node_count;
      add_u64 out header_len;
      add_u64 out labels_off;
      add_u64 out labels_bits;
      add_u64 out arena_len;
      add_u64 out 0;
      List.iter
        (fun r ->
          add_u32 out r.r_child0;
          add_u32 out r.r_count;
          add_u32 out r.r_llen;
          add_u32 out 0;
          add_u64 out r.r_loff;
          add_u64 out (match r.r_blob with None -> 0 | Some rel -> blobs_off + rel))
        (List.rev !recs);
      append_stream out labels;
      Buffer.add_buffer out blobs;
      Buffer.contents out)

(* ------------------------------------------------------------------ *)
(* Opening: validate the header shape, then serve queries in place.
   [release] is invoked (once) by {!close} to free the backing fd. *)

let of_membuf ?(source = "<memory>") ?(release = fun () -> ()) mb =
  let len = Membuf.length mb in
  if len < header_len then fail "flat arena: truncated header (%d bytes)" len;
  let magic_ok =
    Membuf.get mb 0 = Char.code 'W'
    && Membuf.get mb 1 = Char.code 'T'
    && Membuf.get mb 2 = Char.code 'F'
    && Membuf.get mb 3 = Char.code '3'
  in
  if not magic_ok then fail "flat arena: bad magic";
  let v = Membuf.get_u32 mb 4 in
  if v <> arena_version then fail "flat arena: version %d, expected %d" v arena_version;
  match
    let n = Membuf.get_u64 mb 8 in
    let node_count = Membuf.get_u64 mb 16 in
    let nodes_off = Membuf.get_u64 mb 24 in
    let labels_off = Membuf.get_u64 mb 32 in
    let labels_bits = Membuf.get_u64 mb 40 in
    let arena_len = Membuf.get_u64 mb 48 in
    (n, node_count, nodes_off, labels_off, labels_bits, arena_len)
  with
  | exception Invalid_argument _ -> fail "flat arena: corrupt header field"
  | n, node_count, nodes_off, labels_off, labels_bits, arena_len ->
      if arena_len <> len then
        fail "flat arena: declared size %d, actual %d" arena_len len;
      if nodes_off <> header_len then fail "flat arena: bad node-table offset";
      if node_count > (len - header_len) / node_len then
        fail "flat arena: node table exceeds the blob";
      if labels_off <> header_len + (node_len * node_count) then
        fail "flat arena: bad label-stream offset";
      if labels_off + ((labels_bits + 7) / 8) > len then
        fail "flat arena: label stream exceeds the blob";
      if (n = 0) <> (node_count = 0) then
        fail "flat arena: length and node count disagree on emptiness";
      let t =
        {
          mb;
          n;
          node_count;
          nodes_off;
          labels_bit = labels_off * 8;
          source;
          closed = false;
          release;
        }
      in
      (if node_count > 0 then
         let root_count = Membuf.get_u32 mb (nodes_off + 4) in
         if root_count <> n then
           fail "flat arena: root count %d disagrees with length %d" root_count n);
      t

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.release ()
  end

let is_closed t = t.closed
let source t = t.source

(* ------------------------------------------------------------------ *)

module Node = struct
  type trie = t
  type node = { t : t; idx : int; mutable bv_memo : Rrr.Flat.t option }
  (* [bv_memo] caches the parsed bitvector view: node values live
     within one traversal (they are created by [root]/[child] and never
     shared across domains), so the memo is domain-local by
     construction. *)

  let root (trie : trie) =
    if trie.closed then raise Closed;
    if trie.node_count = 0 then None else Some { t = trie; idx = 0; bv_memo = None }

  let length (trie : trie) =
    if trie.closed then raise Closed;
    trie.n

  let base node = node.t.nodes_off + (node_len * node.idx)
  let child0 node = Membuf.get_u32 node.t.mb (base node)
  let count node = Membuf.get_u32 node.t.mb (base node + 4)
  let is_leaf node = child0 node = 0

  let label node =
    let len = Membuf.get_u32 node.t.mb (base node + 8) in
    let bitpos = node.t.labels_bit + Membuf.get_u64 node.t.mb (base node + 16) in
    let out = Bitbuf.create ~capacity_bits:len () in
    let i = ref 0 in
    while !i < len do
      let take = min 56 (len - !i) in
      Bitbuf.add_bits out take (Membuf.get_bits node.t.mb (bitpos + !i) take);
      i := !i + take
    done;
    Bitstring.unsafe_of_bitbuf out

  let child node b =
    let c0 = child0 node in
    if c0 = 0 then invalid_arg "Flat_wt.Node.child: leaf";
    (* child indices must increase: traversals over a corrupt table
       terminate instead of looping *)
    if c0 <= node.idx || c0 + 1 >= node.t.node_count then
      invalid_arg "Flat_wt.Node.child: corrupt child index";
    { t = node.t; idx = (if b then c0 + 1 else c0); bv_memo = None }

  let bv_of node =
    match node.bv_memo with
    | Some bv -> bv
    | None ->
        let p = Membuf.get_u64 node.t.mb (base node + 24) in
        if p = 0 then invalid_arg "Flat_wt.Node: leaf has no bitvector";
        let bv = Rrr.Flat.of_membuf node.t.mb p in
        node.bv_memo <- Some bv;
        bv

  let bv_rank node b pos = Rrr.Flat.rank (bv_of node) b pos
  let bv_select node b k = Rrr.Flat.select (bv_of node) b k
  let bv_access node pos = Rrr.Flat.access (bv_of node) pos
  let bv_access_rank node pos = Rrr.Flat.access_rank (bv_of node) pos

  let iter_bits node pos =
    let it = Rrr.Flat.Iter.create (bv_of node) pos in
    fun () -> Rrr.Flat.Iter.next it

  let bv_space_bits node = Rrr.Flat.space_bits (bv_of node)

  type cursor = Rrr.Flat.Cursor.t

  let bv_cursor node = Rrr.Flat.Cursor.create (bv_of node)
  let cursor_rank = Rrr.Flat.Cursor.rank
  let cursor_access_rank = Rrr.Flat.Cursor.access_rank
end

module Q = Query.Make (Node)

let length t =
  if t.closed then raise Closed;
  t.n

let access = Q.access
let rank = Q.rank
let select = Q.select
let rank_prefix = Q.rank_prefix
let select_prefix = Q.select_prefix
let distinct_count = Q.distinct_count
let to_array = Q.to_array
let dump = Q.dump
let pp = Q.pp_tree

let space_bits t =
  if t.closed then raise Closed;
  8 * Membuf.length t.mb

let stats t = Q.stats ~space_bits t

(* ------------------------------------------------------------------ *)
(* Construction and storage *)

let of_wavelet_trie wt = of_membuf (Membuf.of_string (arena_of_wavelet_trie wt))
let of_array strings = of_wavelet_trie (Wavelet_trie.of_array strings)
let of_list l = of_array (Array.of_list l)

let save_file t path =
  if t.closed then raise Closed;
  Probe.time Flat_save (fun () ->
      Container.write_v3 ~tag ~payload:(Membuf.to_string t.mb) path)

let open_file ?(mode = `Mmap) path =
  Trace.with_span "flat.open" (fun () ->
      match mode with
      | `Copy ->
          Probe.time Flat_open_copy (fun () ->
              of_membuf ~source:path
                (Membuf.of_string (Container.read_v3 ~expect_tag:tag path)))
      | `Mmap ->
          Probe.time Flat_open_mmap (fun () ->
              let m = Container.map_v3 ~expect_tag:tag path in
              match
                of_membuf ~source:path ~release:m.Container.close
                  (Membuf.of_bigarray m.Container.data)
              with
              | t -> t
              | exception e ->
                  m.Container.close ();
                  raise e))

(* Structural deep check (the [wtrie verify] walk): child topology,
   count consistency between each β and its children, label and blob
   bounds.  Raises [Failure] on the first violation. *)
let check_invariants t =
  if t.closed then raise Closed;
  let check cond fmt =
    Printf.ksprintf (fun m -> if not cond then failwith ("flat arena: " ^ m)) fmt
  in
  match Node.root t with
  | None -> check (t.n = 0) "empty node table but length %d" t.n
  | Some root ->
      check (Node.count root = t.n) "root count %d <> length %d" (Node.count root) t.n;
      let rec go node =
        ignore (Bitstring.length (Node.label node));
        let c = Node.count node in
        if Node.is_leaf node then check (c > 0) "leaf with count 0"
        else begin
          let bv = Node.bv_of node in
          check (Rrr.Flat.length bv = c) "node %d: β length %d <> count %d" node.Node.idx
            (Rrr.Flat.length bv) c;
          let z = Node.child node false and o = Node.child node true in
          check
            (Node.count z = Rrr.Flat.zeros bv && Node.count o = Rrr.Flat.ones bv)
            "node %d: children counts disagree with β" node.Node.idx;
          go z;
          go o
        end
      in
      go root
