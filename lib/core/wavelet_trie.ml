module Bitstring = Wt_strings.Bitstring
module Bitbuf = Wt_bits.Bitbuf
module Rrr = Wt_bitvector.Rrr
module Entropy = Wt_bits.Entropy
module Space = Wt_obs.Space

type node =
  | Leaf of { label : Bitstring.t; count : int }
  | Node of { label : Bitstring.t; bv : Rrr.t; zero : node; one : node }

type t = { root : node option; n : int }

let length t = t.n

(* ------------------------------------------------------------------ *)
(* Construction (Definition 3.1).

   The recursion works on an array of sequence indices plus the uniform
   number of consumed bits [off]: all strings reaching a node share their
   first [off] bits (the root-to-node path), so suffixes never need to be
   materialized. *)

let of_array strings =
  let n = Array.length strings in
  let rec build (idxs : int array) off =
    let m = Array.length idxs in
    let first = strings.(idxs.(0)) in
    (* α = lcp of all suffixes *)
    let alpha_len = ref (Bitstring.length first - off) in
    for k = 1 to m - 1 do
      let s = strings.(idxs.(k)) in
      let l = Bitstring.lcp (Bitstring.drop first off) (Bitstring.drop s off) in
      if l < !alpha_len then alpha_len := l
    done;
    let alpha = Bitstring.sub first off !alpha_len in
    let stop = off + !alpha_len in
    (* Constant subsequence <=> every string ends exactly at [stop]. *)
    let ends = ref 0 in
    for k = 0 to m - 1 do
      if Bitstring.length strings.(idxs.(k)) = stop then incr ends
    done;
    if !ends = m then Leaf { label = alpha; count = m }
    else if !ends > 0 then
      invalid_arg "Wavelet_trie.of_array: string set is not prefix-free"
    else begin
      let bits = Bitbuf.create ~capacity_bits:m () in
      let ones = ref 0 in
      for k = 0 to m - 1 do
        let b = Bitstring.get strings.(idxs.(k)) stop in
        Bitbuf.add bits b;
        if b then incr ones
      done;
      let zeros_idx = Array.make (m - !ones) 0 in
      let ones_idx = Array.make !ones 0 in
      let zi = ref 0 and oi = ref 0 in
      for k = 0 to m - 1 do
        if Bitbuf.get bits k then begin
          ones_idx.(!oi) <- idxs.(k);
          incr oi
        end
        else begin
          zeros_idx.(!zi) <- idxs.(k);
          incr zi
        end
      done;
      Node
        {
          label = alpha;
          bv = Rrr.of_bitbuf bits;
          zero = build zeros_idx (stop + 1);
          one = build ones_idx (stop + 1);
        }
    end
  in
  if n = 0 then { root = None; n = 0 }
  else { root = Some (build (Array.init n Fun.id) 0); n }

let of_list l = of_array (Array.of_list l)

(* ------------------------------------------------------------------ *)

(* Level-ordered serialization hook for the flat arena builder
   ({!Flat_wt}): nodes in BFS order, a node's two children enqueued
   consecutively (zero first), so the builder can assign contiguous
   child indices with a running counter. *)
let iter_bfs t f =
  match t.root with
  | None -> ()
  | Some root ->
      let q = Queue.create () in
      Queue.add root q;
      while not (Queue.is_empty q) do
        match Queue.pop q with
        | Leaf { label; count } -> f ~label ~bv:None ~count
        | Node { label; bv; zero; one } ->
            f ~label ~bv:(Some bv) ~count:(Rrr.length bv);
            Queue.add zero q;
            Queue.add one q
      done

module Node = struct
  type trie = t
  type nonrec node = node

  let root (trie : trie) = trie.root
  let length (trie : trie) = trie.n
  let label = function Leaf { label; _ } -> label | Node { label; _ } -> label
  let is_leaf = function Leaf _ -> true | Node _ -> false
  let count = function Leaf l -> l.count | Node nd -> Rrr.length nd.bv

  let child node b =
    match node with
    | Leaf _ -> invalid_arg "Wavelet_trie.Node.child: leaf"
    | Node { zero; one; _ } -> if b then one else zero

  let bv_of = function
    | Leaf _ -> invalid_arg "Wavelet_trie.Node: leaf has no bitvector"
    | Node { bv; _ } -> bv

  let bv_rank node b pos = Rrr.rank (bv_of node) b pos
  let bv_select node b k = Rrr.select (bv_of node) b k
  let bv_access node pos = Rrr.access (bv_of node) pos

  let bv_access_rank node pos = Rrr.access_rank (bv_of node) pos

  let iter_bits node pos =
    let it = Rrr.Iter.create (bv_of node) pos in
    fun () -> Rrr.Iter.next it

  let bv_space_bits node = Rrr.space_bits (bv_of node)

  type cursor = Rrr.Cursor.t

  let bv_cursor node = Rrr.Cursor.create (bv_of node)
  let cursor_rank = Rrr.Cursor.rank
  let cursor_access_rank = Rrr.Cursor.access_rank
end

module Q = Query.Make (Node)

let access = Q.access
let rank = Q.rank
let select = Q.select
let rank_prefix = Q.rank_prefix
let select_prefix = Q.select_prefix
let distinct_count = Q.distinct_count
let to_array = Q.to_array
let dump = Q.dump
let pp = Q.pp_tree

(* ------------------------------------------------------------------ *)
(* Space accounting *)

let space_bits t =
  let rec go = function
    | Leaf { label; _ } -> Bitstring.length label + Space.static_leaf_bits
    | Node { label; bv; zero; one } ->
        Bitstring.length label + Rrr.space_bits bv + Space.static_internal_bits + go zero
        + go one
  in
  (match t.root with None -> 0 | Some root -> go root) + Space.root_bits

let stats t = Q.stats ~space_bits t
