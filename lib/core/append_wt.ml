module Bitstring = Wt_strings.Bitstring
module Appendable = Wt_bitvector.Appendable
module Probe = Wt_obs.Probe
module Space = Wt_obs.Space

type node = { mutable label : Bitstring.t; mutable kind : kind }

and kind =
  | Leaf of { mutable count : int }
  | Internal of { bv : Appendable.t; mutable zero : node; mutable one : node }

type t = { mutable root : node option; mutable n : int }

let create () = { root = None; n = 0 }
let length t = t.n

let append t s =
  Probe.hit Wt_append;
  (match t.root with
  | None -> t.root <- Some { label = s; kind = Leaf { count = 1 } }
  | Some root ->
      (* Descend, appending the discriminating bit at every internal node;
         [cnt] is the length of the subsequence at the current node
         (before this append). *)
      let rec go node off cnt =
        let rest = Bitstring.drop s off in
        let label = node.label in
        let l = Bitstring.lcp label rest in
        if l < Bitstring.length label then begin
          if l = Bitstring.length rest then
            invalid_arg "Append_wt.append: string is a proper prefix of a stored string";
          (* Split: the new internal node's bitvector is Init(c, cnt)
             followed by the new string's bit b — realized as a left
             offset, O(1) (Section 4.1). *)
          Probe.hit Wt_node_split;
          let b = Bitstring.get rest l in
          let c = Bitstring.get label l in
          let old_half = { label = Bitstring.drop label (l + 1); kind = node.kind } in
          let new_leaf =
            { label = Bitstring.drop rest (l + 1); kind = Leaf { count = 1 } }
          in
          let bv = Appendable.init c cnt in
          Appendable.append bv b;
          node.label <- Bitstring.prefix label l;
          node.kind <-
            (if b then Internal { bv; zero = old_half; one = new_leaf }
             else Internal { bv; zero = new_leaf; one = old_half })
        end
        else begin
          match node.kind with
          | Leaf lf ->
              if l = Bitstring.length rest then lf.count <- lf.count + 1
              else
                invalid_arg
                  "Append_wt.append: a stored string is a proper prefix of the string"
          | Internal { bv; zero; one } ->
              if l = Bitstring.length rest then
                invalid_arg
                  "Append_wt.append: string is a proper prefix of a stored string";
              let b = Bitstring.get rest l in
              Appendable.append bv b;
              let cnt' = (if b then Appendable.ones bv else Appendable.zeros bv) - 1 in
              go (if b then one else zero) (off + l + 1) cnt'
        end
      in
      go root 0 t.n);
  t.n <- t.n + 1

(* Bulk construction by recursive partitioning, with the bitvectors
   streamed into Appendable segments — O(total bits). *)
let of_array strings =
  let n = Array.length strings in
  if n = 0 then create ()
  else begin
    let rec build (idxs : int array) off =
      let m = Array.length idxs in
      let first = strings.(idxs.(0)) in
      let alpha_len = ref (Bitstring.length first - off) in
      for k = 1 to m - 1 do
        let l =
          Bitstring.lcp (Bitstring.drop first off) (Bitstring.drop strings.(idxs.(k)) off)
        in
        if l < !alpha_len then alpha_len := l
      done;
      let alpha = Bitstring.sub first off !alpha_len in
      let stop = off + !alpha_len in
      let ends = ref 0 in
      for k = 0 to m - 1 do
        if Bitstring.length strings.(idxs.(k)) = stop then incr ends
      done;
      if !ends = m then { label = alpha; kind = Leaf { count = m } }
      else if !ends > 0 then
        invalid_arg "Append_wt.append: a stored string is a proper prefix of the string"
      else begin
        let bv = Appendable.create () in
        let ones = ref 0 in
        for k = 0 to m - 1 do
          let b = Bitstring.get strings.(idxs.(k)) stop in
          Appendable.append bv b;
          if b then incr ones
        done;
        let zeros_idx = Array.make (m - !ones) 0 in
        let ones_idx = Array.make !ones 0 in
        let zi = ref 0 and oi = ref 0 in
        for k = 0 to m - 1 do
          if Bitstring.get strings.(idxs.(k)) stop then begin
            ones_idx.(!oi) <- idxs.(k);
            incr oi
          end
          else begin
            zeros_idx.(!zi) <- idxs.(k);
            incr zi
          end
        done;
        {
          label = alpha;
          kind =
            Internal
              {
                bv;
                zero = build zeros_idx (stop + 1);
                one = build ones_idx (stop + 1);
              };
        }
      end
    in
    { root = Some (build (Array.init n Fun.id) 0); n }
  end

(* Batched append: route the whole array through the trie in one
   traversal.  At every node the branch bits of all strings passing
   through it are appended in sequence order before the children are
   visited, so the resulting structure is bit-for-bit the one produced
   by appending the strings one at a time — node splits included, since
   a split only depends on the node's subsequence length at the moment
   the diverging string arrives, which is preserved.  On
   [Invalid_argument] (a prefix-freeness violation mid-batch) the trie
   is left partially updated; treat the whole batch as failed. *)
let bulk_append t strings =
  let m = Array.length strings in
  if m > 0 then begin
    Probe.record Wt_append m;
    match t.root with
    | None ->
        let built = of_array strings in
        t.root <- built.root;
        t.n <- built.n
    | Some root ->
        (* Turn [node] into an internal node branching at bit [l] of its
           label, with the string [rbits] (the suffix past [off]) in the
           fresh leaf — the scalar split, with the subsequence length
           read off the node itself. *)
        let split node l rbits =
          Probe.hit Wt_node_split;
          let label = node.label in
          let cnt =
            match node.kind with
            | Leaf lf -> lf.count
            | Internal { bv; _ } -> Appendable.length bv
          in
          let b = Bitstring.get rbits l in
          let c = Bitstring.get label l in
          let old_half = { label = Bitstring.drop label (l + 1); kind = node.kind } in
          let new_leaf =
            { label = Bitstring.drop rbits (l + 1); kind = Leaf { count = 1 } }
          in
          let bv = Appendable.init c cnt in
          Appendable.append bv b;
          node.label <- Bitstring.prefix label l;
          node.kind <-
            (if b then Internal { bv; zero = old_half; one = new_leaf }
             else Internal { bv; zero = new_leaf; one = old_half })
        in
        (* [go node off idxs]: append [strings.(i)] for each [i] in
           [idxs] (in order) below [node]; all of them agree with the
           root-to-node path on their first [off] bits. *)
        let rec go node off idxs =
          match idxs with
          | [] -> ()
          | _ -> (
              match node.kind with
              | Leaf lf ->
                  let rec scan = function
                    | [] -> ()
                    | i :: rest ->
                        let label = node.label in
                        let rbits = Bitstring.drop strings.(i) off in
                        let l = Bitstring.lcp label rbits in
                        if l < Bitstring.length label then begin
                          if l = Bitstring.length rbits then
                            invalid_arg
                              "Append_wt.append: string is a proper prefix of a \
                               stored string";
                          split node l rbits;
                          (* the node is internal now: reroute the rest *)
                          go node off rest
                        end
                        else if l = Bitstring.length rbits then begin
                          lf.count <- lf.count + 1;
                          scan rest
                        end
                        else
                          invalid_arg
                            "Append_wt.append: a stored string is a proper prefix \
                             of the string"
                  in
                  scan idxs
              | Internal { bv; zero; one } ->
                  let zeros_acc = ref [] and ones_acc = ref [] in
                  let flush () =
                    let coff = off + Bitstring.length node.label + 1 in
                    go zero coff (List.rev !zeros_acc);
                    go one coff (List.rev !ones_acc)
                  in
                  let rec scan = function
                    | [] -> flush ()
                    | i :: rest ->
                        let label = node.label in
                        let rbits = Bitstring.drop strings.(i) off in
                        let l = Bitstring.lcp label rbits in
                        if l < Bitstring.length label then begin
                          if l = Bitstring.length rbits then
                            invalid_arg
                              "Append_wt.append: string is a proper prefix of a \
                               stored string";
                          (* the accumulated strings belong to the old
                             children: push them down before splitting *)
                          flush ();
                          split node l rbits;
                          go node off rest
                        end
                        else if l = Bitstring.length rbits then
                          invalid_arg
                            "Append_wt.append: string is a proper prefix of a \
                             stored string"
                        else begin
                          let b = Bitstring.get rbits l in
                          Appendable.append bv b;
                          let acc = if b then ones_acc else zeros_acc in
                          acc := i :: !acc;
                          scan rest
                        end
                  in
                  scan idxs)
        in
        go root 0 (List.init m Fun.id);
        t.n <- t.n + m
  end

(* ------------------------------------------------------------------ *)

module Node = struct
  type trie = t
  type nonrec node = node

  let root (trie : trie) = trie.root
  let length (trie : trie) = trie.n
  let label node = node.label
  let is_leaf node = match node.kind with Leaf _ -> true | Internal _ -> false

  let count node =
    match node.kind with Leaf { count } -> count | Internal { bv; _ } -> Appendable.length bv

  let child node b =
    match node.kind with
    | Leaf _ -> invalid_arg "Append_wt.Node.child: leaf"
    | Internal { zero; one; _ } -> if b then one else zero

  let bv_of node =
    match node.kind with
    | Leaf _ -> invalid_arg "Append_wt.Node: leaf has no bitvector"
    | Internal { bv; _ } -> bv

  let bv_rank node b pos = Appendable.rank (bv_of node) b pos
  let bv_select node b k = Appendable.select (bv_of node) b k
  let bv_access node pos = Appendable.access (bv_of node) pos

  let bv_access_rank node pos = Appendable.access_rank (bv_of node) pos

  let iter_bits node pos =
    let it = Appendable.Iter.create (bv_of node) pos in
    fun () -> Appendable.Iter.next it

  let bv_space_bits node = Appendable.space_bits (bv_of node)

  type cursor = Appendable.Cursor.t

  let bv_cursor node = Appendable.Cursor.create (bv_of node)
  let cursor_rank = Appendable.Cursor.rank
  let cursor_access_rank = Appendable.Cursor.access_rank
end

module Q = Query.Make (Node)

let access = Q.access
let rank = Q.rank
let select = Q.select
let rank_prefix = Q.rank_prefix
let select_prefix = Q.select_prefix
let distinct_count = Q.distinct_count
let to_array = Q.to_array
let dump = Q.dump
let pp = Q.pp_tree

let space_bits t =
  let rec go node =
    Bitstring.length node.label
    +
    match node.kind with
    | Leaf _ -> Space.mutable_leaf_bits
    | Internal { bv; zero; one } ->
        Appendable.space_bits bv + Space.mutable_internal_bits + go zero + go one
  in
  (match t.root with None -> 0 | Some root -> go root) + Space.root_bits

let stats t = Q.stats ~space_bits t

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let rec go node =
    match node.kind with
    | Leaf { count } ->
        if count <= 0 then fail "leaf with count %d" count;
        count
    | Internal { bv; zero; one } ->
        Appendable.check_invariants bv;
        let cz = go zero and co = go one in
        if Appendable.zeros bv <> cz then
          fail "zero-child count %d but bv has %d zeros" cz (Appendable.zeros bv);
        if Appendable.ones bv <> co then
          fail "one-child count %d but bv has %d ones" co (Appendable.ones bv);
        cz + co
  in
  match t.root with
  | None -> if t.n <> 0 then fail "empty root but n = %d" t.n
  | Some root ->
      let c = go root in
      if c <> t.n then fail "root count %d but n = %d" c t.n
