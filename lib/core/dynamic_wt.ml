module Bitstring = Wt_strings.Bitstring
module Dyn_rle = Wt_bitvector.Dyn_rle
module Probe = Wt_obs.Probe
module Space = Wt_obs.Space

type node = { mutable label : Bitstring.t; mutable kind : kind }

and kind =
  | Leaf of { mutable count : int }
  | Internal of { bv : Dyn_rle.t; mutable zero : node; mutable one : node }

type t = { mutable root : node option; mutable n : int }

let create () = { root = None; n = 0 }
let length t = t.n

let insert t pos s =
  if pos < 0 || pos > t.n then invalid_arg "Dynamic_wt.insert: position out of range";
  Probe.hit Wt_insert;
  (match t.root with
  | None -> t.root <- Some { label = s; kind = Leaf { count = 1 } }
  | Some root ->
      (* [cnt] is the subsequence length at the current node before this
         insertion; [pos] is the insertion point inside that
         subsequence. *)
      let rec go node off pos cnt =
        let rest = Bitstring.drop s off in
        let label = node.label in
        let l = Bitstring.lcp label rest in
        if l < Bitstring.length label then begin
          if l = Bitstring.length rest then
            invalid_arg "Dynamic_wt.insert: string is a proper prefix of a stored string";
          (* Split (Figure 3): the new internal node starts with the
             constant bitvector Init(c, cnt) — O(log n) on RLE+γ — and the
             new string's bit b is inserted at [pos]. *)
          Probe.hit Wt_node_split;
          let b = Bitstring.get rest l in
          let c = Bitstring.get label l in
          let old_half = { label = Bitstring.drop label (l + 1); kind = node.kind } in
          let new_leaf =
            { label = Bitstring.drop rest (l + 1); kind = Leaf { count = 1 } }
          in
          let bv = Dyn_rle.init c cnt in
          Dyn_rle.insert bv pos b;
          node.label <- Bitstring.prefix label l;
          node.kind <-
            (if b then Internal { bv; zero = old_half; one = new_leaf }
             else Internal { bv; zero = new_leaf; one = old_half })
        end
        else begin
          match node.kind with
          | Leaf lf ->
              if l = Bitstring.length rest then lf.count <- lf.count + 1
              else
                invalid_arg
                  "Dynamic_wt.insert: a stored string is a proper prefix of the string"
          | Internal { bv; zero; one } ->
              if l = Bitstring.length rest then
                invalid_arg
                  "Dynamic_wt.insert: string is a proper prefix of a stored string";
              let b = Bitstring.get rest l in
              Dyn_rle.insert bv pos b;
              let pos' = Dyn_rle.rank bv b pos in
              let cnt' = (if b then Dyn_rle.ones bv else Dyn_rle.zeros bv) - 1 in
              go (if b then one else zero) (off + l + 1) pos' cnt'
        end
      in
      go root 0 pos t.n);
  t.n <- t.n + 1

(* Counts under both [Wt_append] and, via [insert], [Wt_insert]. *)
let append t s =
  Probe.hit Wt_append;
  insert t t.n s

let delete t pos =
  if pos < 0 || pos >= t.n then invalid_arg "Dynamic_wt.delete: position out of range";
  Probe.hit Wt_delete;
  let rec go node pos =
    match node.kind with
    | Leaf lf -> lf.count <- lf.count - 1
    | Internal { bv; zero; one } ->
        let b, pos' = Dyn_rle.access_rank bv pos in
        go (if b then one else zero) pos';
        Dyn_rle.delete bv pos;
        (* Last occurrence removed: one side is empty, merge with the
           surviving sibling (the label gains the branch bit and the
           sibling's label, as in the dynamic Patricia Trie). *)
        if Dyn_rle.length bv > 0 && Dyn_rle.is_constant bv then begin
          Probe.hit Wt_node_merge;
          let sbit = Dyn_rle.ones bv > 0 in
          let survivor = if sbit then one else zero in
          node.label <-
            Bitstring.concat
              [ node.label; Bitstring.of_bool_list [ sbit ]; survivor.label ];
          node.kind <- survivor.kind
        end
  in
  (match t.root with
  | None -> assert false
  | Some root ->
      go root pos;
      if t.n = 1 then t.root <- None);
  t.n <- t.n - 1

(* Frozen copy for snapshot-isolated readers: the Patricia skeleton's
   node records are mutable and must be copied (O(#nodes)), but each
   node's bitvector is an O(1) [Dyn_rle.snapshot] — the chunk tree is
   persistent under its root, so the dominant state is shared, not
   duplicated.  The copy is a full-featured trie: queries on it are
   oblivious to later [insert]/[delete]/[append] on the original (and
   vice versa). *)
let snapshot t =
  let rec copy node =
    {
      label = node.label;
      kind =
        (match node.kind with
        | Leaf { count } -> Leaf { count }
        | Internal { bv; zero; one } ->
            Internal { bv = Dyn_rle.snapshot bv; zero = copy zero; one = copy one });
    }
  in
  { root = Option.map copy t.root; n = t.n }

(* Bulk construction: one recursive partition pass (as in the static
   variant) with Dyn_rle bitvectors built from explicit bit arrays —
   O(total bits) instead of n separate O(|s| + h log n) inserts. *)
let of_array strings =
  let n = Array.length strings in
  if n = 0 then create ()
  else begin
    let rec build (idxs : int array) off =
      let m = Array.length idxs in
      let first = strings.(idxs.(0)) in
      let alpha_len = ref (Bitstring.length first - off) in
      for k = 1 to m - 1 do
        let l =
          Bitstring.lcp (Bitstring.drop first off) (Bitstring.drop strings.(idxs.(k)) off)
        in
        if l < !alpha_len then alpha_len := l
      done;
      let alpha = Bitstring.sub first off !alpha_len in
      let stop = off + !alpha_len in
      let ends = ref 0 in
      for k = 0 to m - 1 do
        if Bitstring.length strings.(idxs.(k)) = stop then incr ends
      done;
      if !ends = m then { label = alpha; kind = Leaf { count = m } }
      else if !ends > 0 then
        invalid_arg "Dynamic_wt.insert: a stored string is a proper prefix of the string"
      else begin
        let bits = Array.make m false in
        let ones = ref 0 in
        for k = 0 to m - 1 do
          let b = Bitstring.get strings.(idxs.(k)) stop in
          bits.(k) <- b;
          if b then incr ones
        done;
        let zeros_idx = Array.make (m - !ones) 0 in
        let ones_idx = Array.make !ones 0 in
        let zi = ref 0 and oi = ref 0 in
        for k = 0 to m - 1 do
          if bits.(k) then begin
            ones_idx.(!oi) <- idxs.(k);
            incr oi
          end
          else begin
            zeros_idx.(!zi) <- idxs.(k);
            incr zi
          end
        done;
        {
          label = alpha;
          kind =
            Internal
              {
                bv = Dyn_rle.of_bits bits;
                zero = build zeros_idx (stop + 1);
                one = build ones_idx (stop + 1);
              };
        }
      end
    in
    { root = Some (build (Array.init n Fun.id) 0); n }
  end

(* ------------------------------------------------------------------ *)

module Node = struct
  type trie = t
  type nonrec node = node

  let root (trie : trie) = trie.root
  let length (trie : trie) = trie.n
  let label node = node.label
  let is_leaf node = match node.kind with Leaf _ -> true | Internal _ -> false

  let count node =
    match node.kind with Leaf { count } -> count | Internal { bv; _ } -> Dyn_rle.length bv

  let child node b =
    match node.kind with
    | Leaf _ -> invalid_arg "Dynamic_wt.Node.child: leaf"
    | Internal { zero; one; _ } -> if b then one else zero

  let bv_of node =
    match node.kind with
    | Leaf _ -> invalid_arg "Dynamic_wt.Node: leaf has no bitvector"
    | Internal { bv; _ } -> bv

  let bv_rank node b pos = Dyn_rle.rank (bv_of node) b pos
  let bv_select node b k = Dyn_rle.select (bv_of node) b k
  let bv_access node pos = Dyn_rle.access (bv_of node) pos

  let bv_access_rank node pos = Dyn_rle.access_rank (bv_of node) pos

  let iter_bits node pos =
    let it = Dyn_rle.Iter.create (bv_of node) pos in
    fun () -> Dyn_rle.Iter.next it

  let bv_space_bits node = Dyn_rle.space_bits (bv_of node)

  type cursor = Dyn_rle.Cursor.t

  let bv_cursor node = Dyn_rle.Cursor.create (bv_of node)
  let cursor_rank = Dyn_rle.Cursor.rank
  let cursor_access_rank = Dyn_rle.Cursor.access_rank
end

module Q = Query.Make (Node)

let access = Q.access
let rank = Q.rank
let select = Q.select
let rank_prefix = Q.rank_prefix
let select_prefix = Q.select_prefix
let distinct_count = Q.distinct_count
let to_array = Q.to_array
let dump = Q.dump
let pp = Q.pp_tree

let space_bits t =
  let rec go node =
    Bitstring.length node.label
    +
    match node.kind with
    | Leaf _ -> Space.mutable_leaf_bits
    | Internal { bv; zero; one } ->
        Dyn_rle.space_bits bv + Space.mutable_internal_bits + go zero + go one
  in
  (match t.root with None -> 0 | Some root -> go root) + Space.root_bits

let stats t = Q.stats ~space_bits t

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let rec go node =
    match node.kind with
    | Leaf { count } ->
        if count <= 0 then fail "leaf with count %d" count;
        count
    | Internal { bv; zero; one } ->
        Dyn_rle.check_invariants bv;
        if Dyn_rle.is_constant bv then fail "constant internal bitvector (unmerged node)";
        let cz = go zero and co = go one in
        if Dyn_rle.zeros bv <> cz then
          fail "zero-child count %d but bv has %d zeros" cz (Dyn_rle.zeros bv);
        if Dyn_rle.ones bv <> co then
          fail "one-child count %d but bv has %d ones" co (Dyn_rle.ones bv);
        cz + co
  in
  match t.root with
  | None -> if t.n <> 0 then fail "empty root but n = %d" t.n
  | Some root ->
      let c = go root in
      if c <> t.n then fail "root count %d but n = %d" c t.n
