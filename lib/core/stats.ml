(** Space-accounting record shared by all Wavelet Trie variants.

    Reports each term of the paper's space bounds (Theorems 3.7, 4.3,
    4.4) next to the measured footprint:
    [LB(S) = LT(Sset) + n H0(S)] is the information-theoretic lower bound;
    [avg_height] is h̃ (Definition 3.4), so h̃·n is the total bitvector
    length. *)

type t = {
  n : int;  (** sequence length *)
  distinct : int;  (** |Sset| *)
  avg_height : float;  (** h̃: mean internal nodes per string *)
  seq_h0_bits : float;  (** n H0(S) *)
  trie_lb_bits : float;  (** LT(Sset) (Theorem 3.6) *)
  bv_bits : int;  (** measured bitvector payloads incl. directories *)
  label_bits : int;  (** measured label bits |L| *)
  total_bits : int;  (** measured total incl. node overhead *)
}

let lower_bound t = t.trie_lb_bits +. t.seq_h0_bits

(* Bridge into the observability layer: the same measurements as a
   {!Wt_obs.Space.breakdown}, tagged with the variant name, so all three
   variants surface comparable numbers in reports. *)
let to_breakdown ~variant t : Wt_obs.Space.breakdown =
  {
    variant;
    n = t.n;
    distinct = t.distinct;
    label_bits = t.label_bits;
    bv_bits = t.bv_bits;
    overhead_bits = t.total_bits - t.label_bits - t.bv_bits;
    total_bits = t.total_bits;
    lt_bits = t.trie_lb_bits;
    nh0_bits = t.seq_h0_bits;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>n=%d distinct=%d h~=%.2f@,\
     LB = LT + nH0 = %.0f + %.0f = %.0f bits@,\
     measured: labels=%d bv=%d total=%d bits (%.2fx LB, %.2f bits/string)@]"
    t.n t.distinct t.avg_height t.trie_lb_bits t.seq_h0_bits (lower_bound t)
    t.label_bits t.bv_bits t.total_bits
    (if lower_bound t > 0. then float_of_int t.total_bits /. lower_bound t else 0.)
    (if t.n > 0 then float_of_int t.total_bits /. float_of_int t.n else 0.)
