(** The indexed-sequence-of-strings interface (Section 1 of the paper) and
    a naive reference implementation used as the testing oracle.

    All strings are prefix-free bitstrings (binarize byte strings or
    integers with {!Wt_strings.Binarize} first).  Conventions:
    - [rank t s pos] counts occurrences of [s] in positions [0, pos);
    - [select t s idx] is the position of the [idx]-th occurrence
      (0-based), or [None] when there are at most [idx] occurrences;
    - [rank_prefix]/[select_prefix] are the same over strings that start
      with the given prefix. *)

module Bitstring = Wt_strings.Bitstring

module type S = sig
  type t

  val length : t -> int
  val access : t -> int -> Bitstring.t
  val rank : t -> Bitstring.t -> int -> int
  val select : t -> Bitstring.t -> int -> int option
  val rank_prefix : t -> Bitstring.t -> int -> int
  val select_prefix : t -> Bitstring.t -> int -> int option

  val distinct_count : t -> int
  (** |Sset|: number of distinct strings present. *)

  val space_bits : t -> int
end

module type DYNAMIC = sig
  include S

  val insert : t -> int -> Bitstring.t -> unit
  (** [insert t pos s] places [s] immediately before position [pos]. *)

  val delete : t -> int -> unit
  val append : t -> Bitstring.t -> unit
end

(* ------------------------------------------------------------------ *)
(* Byte-string front-door signatures, implemented by {!String_api} plus
   the batch engine ([lib/exec]) and re-exported as the [Wtrie] entry
   module.  Every variant presents the same uniform surface; the
   mutating tiers extend it. *)

(** The one error shape shared by every front-door query. *)
type error =
  | Position_out_of_bounds of { pos : int; len : int }
      (** A position argument outside the valid range for the operation
          ([0, len) for [access], [0, len] for [rank]-style counts). *)
  | Negative_count of { count : int }
      (** A negative occurrence index passed to a [select]-style
          operation. *)
  | No_occurrence of { count : int; occurrences : int }
      (** A [select]-style operation asked for occurrence [count]
          (0-based) but only [occurrences] matches exist. *)
  | Trie_closed
      (** The operation reached a static trie whose backing mapping has
          been [close]d; the handle is permanently invalid. *)
  | Storage_error of { path : string; reason : string }
      (** Opening or saving an index file failed: I/O error, corrupt or
          truncated container, format-version or variant mismatch. *)

let pp_error fmt = function
  | Position_out_of_bounds { pos; len } ->
      Format.fprintf fmt "position %d out of bounds (sequence length %d)" pos len
  | Negative_count { count } ->
      Format.fprintf fmt "negative occurrence index %d" count
  | No_occurrence { count; occurrences } ->
      Format.fprintf fmt "no occurrence %d (only %d present)" count occurrences
  | Trie_closed -> Format.fprintf fmt "trie is closed"
  | Storage_error { path; reason } -> Format.fprintf fmt "%s: %s" path reason

(** One operation of a query batch.  Strings and prefixes are byte
    strings, exactly as in the scalar API. *)
type op =
  | Access of { pos : int }
  | Rank of { s : string; pos : int }
  | Select of { s : string; count : int }
  | Rank_prefix of { prefix : string; pos : int }
  | Select_prefix of { prefix : string; count : int }

(** Result payload of a batch operation: [Str] for [Access], [Int] for
    everything else (a count for the rank family, a position for the
    select family). *)
type value = Str of string | Int of int

let pp_value fmt = function
  | Str s -> Format.fprintf fmt "%s" s
  | Int n -> Format.fprintf fmt "%d" n

(** The read side shared verbatim by every variant.

    One signature, included by {!STRING_API} (and therefore by the
    append and dynamic extensions), so a query operation is declared
    exactly once and cannot drift across variants.  The API is labelled
    and uniform: every partial operation returns [(_, error) result]
    with the shared {!error} type; {!val-query_batch} evaluates a
    vector of point operations in one amortized trie traversal, and the
    range-analytics suite ([select_all] / [range_count] /
    [range_distinct] / [range_topk], implemented in [lib/analytics])
    answers window queries with one frontier walk instead of one scalar
    query per reported item.

    Range conventions: [lo]/[hi] delimit the position window
    [\[lo, hi)] of the sequence, defaulting to the whole sequence;
    [?prefix] restricts an operation to stored strings starting with
    that byte prefix (default: all strings).  All range operations are
    pure reads — they are safe on [Dynamic.snapshot] copies published
    through [Wt_par.Snapshot] while the owner keeps mutating. *)
module type QUERY_API = sig
  type t

  val length : t -> int

  val distinct_count : t -> int
  (** |Sset|: number of distinct strings present. *)

  val space_bits : t -> int

  val access : t -> pos:int -> (string, error) result
  (** The string at position [pos]. *)

  val rank : t -> string -> pos:int -> (int, error) result
  (** Occurrences of the string in positions [0, pos). *)

  val select : t -> string -> count:int -> (int, error) result
  (** Position of the [count]-th occurrence (0-based). *)

  val rank_prefix : t -> prefix:string -> pos:int -> (int, error) result
  (** Stored strings starting with [prefix] in positions [0, pos). *)

  val select_prefix : t -> prefix:string -> count:int -> (int, error) result
  (** Position of the [count]-th stored string starting with [prefix]. *)

  val count : t -> string -> int
  (** Total occurrences of the string. *)

  val count_prefix : t -> prefix:string -> int
  (** Total number of stored strings starting with the byte prefix. *)

  val query_batch : ?domains:int -> t -> op array -> (value, error) result array
  (** Evaluate a whole vector of operations, grouping them by trie path
      and executing level-by-level so each visited node answers a
      monotone sequence of positions from cached bitvector state (the
      batch engine, [lib/exec]).  [query_batch t ops] is equivalent to
      evaluating each operation with the scalar API, in order; per-op
      failures are reported in the result array, never raised.

      [~domains:d] additionally splits the batch into up to [d]
      contiguous shards executed in parallel on the shared domain pool
      ([lib/par]; sized by [WTRIE_DOMAINS] or the machine), each shard
      running the engine with its own cursors, and merges the results
      back in input order — the result array is index-for-index the
      same.  Omitted (or [d = 1], or a small batch), the call never
      touches the pool.  Parallel execution reads the trie without
      locks, so do not mutate the trie during the call; to serve
      queries while updating the dynamic variant, query a [snapshot]
      published through [Wt_par.Snapshot] instead. *)

  (** {2 Range analytics}

      Window queries over positions [\[lo, hi)], each answered by one
      root-to-frontier traversal of the trie ([lib/analytics]) instead
      of a loop of scalar queries. *)

  val select_all : ?prefix:string -> ?lo:int -> ?hi:int -> t -> (int array, error) result
  (** All positions in [\[lo, hi)] whose string starts with [prefix],
      ascending.  Equivalent to iterating [select_prefix] over every
      occurrence index and filtering by the window, but the Patricia
      descent happens once and the occurrence block is mapped back to
      root positions level by level. *)

  val range_count : ?prefix:string -> t -> lo:int -> hi:int -> (int, error) result
  (** Number of positions in [\[lo, hi)] whose string starts with
      [prefix]: [rank_prefix hi - rank_prefix lo] in one descent. *)

  val range_distinct :
    ?prefix:string -> ?lo:int -> ?hi:int -> t -> ((string * int) array, error) result
  (** The distinct strings occurring in [\[lo, hi)] (matching [prefix])
      with their in-window occurrence counts, in lexicographic order of
      the stored (binarized) strings.  Touches only subtrees that
      contain window elements. *)

  val range_topk :
    ?prefix:string -> ?lo:int -> ?hi:int -> t -> k:int -> ((string * int) array, error) result
  (** The [k] most frequent strings in [\[lo, hi)] (matching [prefix])
      with their in-window counts, most frequent first — exact, via a
      max-priority queue over trie nodes ordered by subrange size, so
      only nodes whose window count exceeds the k-th answer are
      expanded.  Ties are broken towards the lexicographically smaller
      string. *)
end

(** {!QUERY_API} plus construction: the full surface of the immutable
    (static) variant, and the base the mutating tiers extend. *)
module type STRING_API = sig
  include QUERY_API

  val of_list : string list -> t
  val of_array : string array -> t
end

(** {!STRING_API} plus file storage: the full surface of the flat
    static variant.  [save_file] writes the format-v3 container (the
    arena itself as payload); [open_file] reopens it either zero-copy
    through [mmap] (the default — ~O(1), one read-only mapping
    shareable across processes) or as a fully-CRC-verified private copy.
    Failures come back as {!error} ([Storage_error], or [Trie_closed]
    after {!STATIC_API.close}); the [_exn] forms raise
    [Failure] with the same rendering. *)
module type STATIC_API = sig
  include STRING_API

  val save_file : t -> string -> (unit, error) result
  (** Atomically write the trie as a format-v3 container. *)

  val save_file_exn : t -> string -> unit

  val open_file : ?mode:[ `Mmap | `Copy ] -> string -> (t, error) result
  (** [open_file path] opens a v3 index.  [`Mmap] (default) verifies the
      header and footer checksums and maps the arena in place — no
      deserialization, no payload copy.  [`Copy] additionally verifies
      the payload checksum and reads the arena into private memory. *)

  val open_file_exn : ?mode:[ `Mmap | `Copy ] -> string -> t

  val close : t -> unit
  (** Release the backing file descriptor.  Idempotent.  Subsequent
      operations on this handle fail deterministically with
      [Trie_closed] (never a crash); in-flight reads in other domains
      remain memory-safe — the mapping itself is reclaimed only when
      the handle is garbage-collected. *)

  val is_closed : t -> bool
end

module type APPEND_API = sig
  include STRING_API

  val create : unit -> t
  val append : t -> string -> unit

  val append_batch : t -> string array -> unit
  (** Append a whole array in one trie traversal ([Append_wt.bulk_append]
      on the append-only variant): equivalent to appending the strings
      one at a time, but each node's branch bits are emitted in one run.
      Raises [Invalid_argument] on a prefix-freeness violation, leaving
      the batch partially applied. *)
end

module type DYNAMIC_API = sig
  include APPEND_API

  val insert : t -> pos:int -> string -> unit
  (** [insert t ~pos s] places [s] immediately before position [pos]. *)

  val delete : t -> pos:int -> unit

  val snapshot : t -> t
  (** A frozen copy of the sequence, isolated from subsequent mutations
      of the original (and vice versa).  Cheap: the skeleton is copied
      but the per-node bitvectors are shared persistently.  Publish
      snapshots through [Wt_par.Snapshot] to serve parallel readers
      while updates land on the owner's working trie. *)
end

(** Array-backed oracle: every operation is a linear scan. *)
module Naive = struct
  type t = { mutable xs : Bitstring.t array; mutable n : int }

  let create () = { xs = [||]; n = 0 }
  let of_array xs = { xs = Array.copy xs; n = Array.length xs }
  let length t = t.n

  let access t pos =
    if pos < 0 || pos >= t.n then invalid_arg "Naive.access";
    t.xs.(pos)

  let count_below t pred pos =
    let acc = ref 0 in
    for i = 0 to pos - 1 do
      if pred t.xs.(i) then incr acc
    done;
    !acc

  let find_nth t pred idx =
    let seen = ref 0 in
    let res = ref None in
    (try
       for i = 0 to t.n - 1 do
         if pred t.xs.(i) then begin
           if !seen = idx then begin
             res := Some i;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    !res

  let rank t s pos =
    if pos < 0 || pos > t.n then invalid_arg "Naive.rank";
    count_below t (Bitstring.equal s) pos

  let select t s idx = if idx < 0 then invalid_arg "Naive.select" else find_nth t (Bitstring.equal s) idx

  let rank_prefix t p pos =
    if pos < 0 || pos > t.n then invalid_arg "Naive.rank_prefix";
    count_below t (fun s -> Bitstring.is_prefix ~prefix:p s) pos

  let select_prefix t p idx =
    if idx < 0 then invalid_arg "Naive.select_prefix"
    else find_nth t (fun s -> Bitstring.is_prefix ~prefix:p s) idx

  let distinct_count t =
    let l = Array.to_list (Array.sub t.xs 0 t.n) in
    List.length (List.sort_uniq Bitstring.compare l)

  let space_bits t =
    let acc = ref (64 * (t.n + 2)) in
    for i = 0 to t.n - 1 do
      acc := !acc + Bitstring.length t.xs.(i)
    done;
    !acc

  let ensure t n =
    if n > Array.length t.xs then begin
      let xs = Array.make (max 8 (2 * n)) Bitstring.empty in
      Array.blit t.xs 0 xs 0 t.n;
      t.xs <- xs
    end

  let insert t pos s =
    if pos < 0 || pos > t.n then invalid_arg "Naive.insert";
    ensure t (t.n + 1);
    Array.blit t.xs pos t.xs (pos + 1) (t.n - pos);
    t.xs.(pos) <- s;
    t.n <- t.n + 1

  let delete t pos =
    if pos < 0 || pos >= t.n then invalid_arg "Naive.delete";
    Array.blit t.xs (pos + 1) t.xs pos (t.n - pos - 1);
    t.n <- t.n - 1

  let append t s = insert t t.n s
  let to_array t = Array.sub t.xs 0 t.n
end
