(** The indexed-sequence-of-strings interface (Section 1 of the paper) and
    a naive reference implementation used as the testing oracle.

    All strings are prefix-free bitstrings (binarize byte strings or
    integers with {!Wt_strings.Binarize} first).  Conventions:
    - [rank t s pos] counts occurrences of [s] in positions [0, pos);
    - [select t s idx] is the position of the [idx]-th occurrence
      (0-based), or [None] when there are at most [idx] occurrences;
    - [rank_prefix]/[select_prefix] are the same over strings that start
      with the given prefix. *)

module Bitstring = Wt_strings.Bitstring

module type S = sig
  type t

  val length : t -> int
  val access : t -> int -> Bitstring.t
  val rank : t -> Bitstring.t -> int -> int
  val select : t -> Bitstring.t -> int -> int option
  val rank_prefix : t -> Bitstring.t -> int -> int
  val select_prefix : t -> Bitstring.t -> int -> int option

  val distinct_count : t -> int
  (** |Sset|: number of distinct strings present. *)

  val space_bits : t -> int
end

module type DYNAMIC = sig
  include S

  val insert : t -> int -> Bitstring.t -> unit
  (** [insert t pos s] places [s] immediately before position [pos]. *)

  val delete : t -> int -> unit
  val append : t -> Bitstring.t -> unit
end

(* ------------------------------------------------------------------ *)
(* Byte-string front-door signatures, implemented by {!String_api} and
   re-exported as the [Wtrie] entry module.  Every variant presents the
   same uniform surface; the mutating tiers extend it. *)

type api_error = Position_out_of_bounds of { pos : int; len : int }

let pp_api_error fmt (Position_out_of_bounds { pos; len }) =
  Format.fprintf fmt "position %d out of bounds (sequence length %d)" pos len

(** Queries over byte strings.  Position arguments are validated:
    [rank]-style operations return [Error (Position_out_of_bounds _)]
    and [select]-style ones return [None] on bad input, with [_exn]
    variants keeping the raising behaviour. *)
module type STRING_API = sig
  type t

  val of_list : string list -> t
  val of_array : string array -> t
  val length : t -> int

  val distinct_count : t -> int
  (** |Sset|: number of distinct strings present. *)

  val space_bits : t -> int
  val access : t -> int -> string

  val rank : t -> string -> int -> (int, api_error) result
  (** Occurrences of the string in positions [0, pos). *)

  val rank_exn : t -> string -> int -> int

  val select : t -> string -> int -> int option
  (** Position of the [idx]-th occurrence (0-based); [None] when there
      are at most [idx] occurrences or [idx < 0]. *)

  val select_exn : t -> string -> int -> int
  (** Like {!select} but raises [Not_found] on a missing occurrence and
      [Invalid_argument] on a negative index. *)

  val rank_prefix : t -> string -> int -> (int, api_error) result
  val rank_prefix_exn : t -> string -> int -> int
  val select_prefix : t -> string -> int -> int option
  val select_prefix_exn : t -> string -> int -> int

  val count : t -> string -> int
  (** Total occurrences of the string. *)

  val count_prefix : t -> string -> int
  (** Total number of stored strings starting with the byte prefix. *)
end

module type APPEND_API = sig
  include STRING_API

  val create : unit -> t
  val append : t -> string -> unit
end

module type DYNAMIC_API = sig
  include APPEND_API

  val insert : t -> int -> string -> unit
  (** [insert t pos s] places [s] immediately before position [pos]. *)

  val delete : t -> int -> unit
end

(** Array-backed oracle: every operation is a linear scan. *)
module Naive = struct
  type t = { mutable xs : Bitstring.t array; mutable n : int }

  let create () = { xs = [||]; n = 0 }
  let of_array xs = { xs = Array.copy xs; n = Array.length xs }
  let length t = t.n

  let access t pos =
    if pos < 0 || pos >= t.n then invalid_arg "Naive.access";
    t.xs.(pos)

  let count_below t pred pos =
    let acc = ref 0 in
    for i = 0 to pos - 1 do
      if pred t.xs.(i) then incr acc
    done;
    !acc

  let find_nth t pred idx =
    let seen = ref 0 in
    let res = ref None in
    (try
       for i = 0 to t.n - 1 do
         if pred t.xs.(i) then begin
           if !seen = idx then begin
             res := Some i;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    !res

  let rank t s pos =
    if pos < 0 || pos > t.n then invalid_arg "Naive.rank";
    count_below t (Bitstring.equal s) pos

  let select t s idx = if idx < 0 then invalid_arg "Naive.select" else find_nth t (Bitstring.equal s) idx

  let rank_prefix t p pos =
    if pos < 0 || pos > t.n then invalid_arg "Naive.rank_prefix";
    count_below t (fun s -> Bitstring.is_prefix ~prefix:p s) pos

  let select_prefix t p idx =
    if idx < 0 then invalid_arg "Naive.select_prefix"
    else find_nth t (fun s -> Bitstring.is_prefix ~prefix:p s) idx

  let distinct_count t =
    let l = Array.to_list (Array.sub t.xs 0 t.n) in
    List.length (List.sort_uniq Bitstring.compare l)

  let space_bits t =
    let acc = ref (64 * (t.n + 2)) in
    for i = 0 to t.n - 1 do
      acc := !acc + Bitstring.length t.xs.(i)
    done;
    !acc

  let ensure t n =
    if n > Array.length t.xs then begin
      let xs = Array.make (max 8 (2 * n)) Bitstring.empty in
      Array.blit t.xs 0 xs 0 t.n;
      t.xs <- xs
    end

  let insert t pos s =
    if pos < 0 || pos > t.n then invalid_arg "Naive.insert";
    ensure t (t.n + 1);
    Array.blit t.xs pos t.xs (pos + 1) (t.n - pos);
    t.xs.(pos) <- s;
    t.n <- t.n + 1

  let delete t pos =
    if pos < 0 || pos >= t.n then invalid_arg "Naive.delete";
    Array.blit t.xs (pos + 1) t.xs pos (t.n - pos - 1);
    t.n <- t.n - 1

  let append t s = insert t t.n s
  let to_array t = Array.sub t.xs 0 t.n
end
