(* One bounds check for every length-prefixed decoder in the tree.

   A declared length read off a wire frame, a WAL record header or a
   container header is attacker-/corruption-controlled: acting on it
   before validation turns a flipped bit into an [Out_of_memory] (a
   64 MiB allocation per garbage frame is a denial of service all by
   itself) or into a huge blocking read.  Every decoder therefore runs
   the declared value through {!ok} *before* allocating or copying:

   - [cap] is the format's own sanity bound (no sane WAL record is
     bigger than [Wal.max_record_len], no sane wire frame bigger than
     the server's [max_frame], ...);
   - [remaining] is how many bytes could possibly still exist (rest of
     the file for on-disk formats; [max_int] for a stream whose end is
     unknown).

   The helper only answers; the caller picks its failure shape
   ([Format_error] on disk, a protocol error frame on the wire). *)

let[@inline] ok ~declared ~cap ~remaining =
  declared >= 0 && declared <= cap && declared <= remaining
