(** Write-ahead log framing: a checksummed header (variant tag + the
    snapshot generation the log applies to) followed by CRC-framed
    append/insert/delete records.

    The scanner never raises on corruption — it recovers every
    complete, checksum-valid record before the first bad frame and
    reports the torn tail, so the store can truncate and continue.
    Strings are the byte strings of the front-door API (they are
    re-binarized on replay). *)

type op = Append of string | Insert of int * string | Delete of int

val create : tag:string -> generation:int -> string -> unit
(** Atomically (re)initialize a WAL file to a bare header. *)

val create_with : tag:string -> generation:int -> op list -> string -> unit
(** Atomically replace a WAL with a fresh header followed by the given
    records (temp + fsync + rename): either the old log survives intact
    or the new one is complete.  Used by log rotations that must carry
    records forward — e.g. the tiered store's compaction commit, which
    moves the post-seal ingests into the next generation's log. *)

val header_size : tag:string -> int

val append_op : out_channel -> op -> int
(** Frame and append one record, flush, return the bytes written. *)

val record_size : op -> int
(** On-disk size of the record [append_op] would write. *)

type scan = {
  s_tag : string;
  s_generation : int;  (** -1 when the header itself is torn *)
  s_header_ok : bool;
  s_ops : op list;  (** every record of the verified prefix, in order *)
  s_records : int;
  s_good_bytes : int;  (** offset the file should be truncated to *)
  s_dropped_bytes : int;  (** torn-tail bytes past the verified prefix *)
}

val scan : string -> scan
(** Scan a WAL; corruption is reported, never raised.  A missing file
    scans as an empty, torn-header log. *)

val truncate_to : string -> int -> unit
(** Physically drop a torn tail ([Unix.ftruncate] + fsync). *)

val open_append : string -> out_channel
