(* Write-ahead log framing for the durable store.

   A WAL file is a checksummed header followed by a stream of
   CRC-framed records:

     header := magic (16 bytes "wavelet-trie-wal")
             | u32 version (= 1)
             | u32 tag length | tag bytes       (variant, e.g. "append")
             | u64 generation                   (snapshot it applies to)
             | u32 CRC32C of everything above
     record := u32 body length | u32 CRC32C of body | body
     body   := u8 op
             | op = 0 (Append): string bytes
             | op = 1 (Insert): u64 position | string bytes
             | op = 2 (Delete): u64 position

   The scanner ({!scan}) never raises on corruption: it recovers every
   complete, checksum-valid record before the first bad frame and
   reports how many trailing bytes a torn write left behind, so the
   store can truncate the tail and carry on.  A record whose length
   field is implausible (flipped into a huge value) is treated as the
   start of the torn tail, never allocated. *)

type op = Append of string | Insert of int * string | Delete of int

let magic = "wavelet-trie-wal"
let version = 1
let max_record_len = 1 lsl 26 (* 64 MiB: no sane single op is bigger *)

let add_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)
let add_u64 buf v = Buffer.add_int64_be buf (Int64.of_int v)
let get_u32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFFFFFF

(* Negative/overflowing u64 -> None; the caller treats it as corrupt. *)
let get_u64_opt s off =
  let v = String.get_int64_be s off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then None
  else Some (Int64.to_int v)

(* ------------------------------------------------------------------ *)
(* Header *)

let header_bytes ~tag ~generation =
  if String.length tag > Container.max_tag_len then invalid_arg "Wal: tag too long";
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  add_u32 buf version;
  add_u32 buf (String.length tag);
  Buffer.add_string buf tag;
  add_u64 buf generation;
  add_u32 buf (Crc32c.string (Buffer.contents buf));
  Buffer.contents buf

let header_size ~tag = String.length magic + 4 + 4 + String.length tag + 8 + 4

let create ~tag ~generation path =
  Container.atomic_write path (fun oc ->
      Fault.output_string oc (header_bytes ~tag ~generation))

(* ------------------------------------------------------------------ *)
(* Records *)

let encode_op op =
  let buf = Buffer.create 64 in
  (match op with
  | Append s ->
      Buffer.add_char buf '\000';
      Buffer.add_string buf s
  | Insert (pos, s) ->
      Buffer.add_char buf '\001';
      add_u64 buf pos;
      Buffer.add_string buf s
  | Delete pos ->
      Buffer.add_char buf '\002';
      add_u64 buf pos);
  Buffer.contents buf

let decode_op body =
  let n = String.length body in
  if n = 0 then None
  else
    match body.[0] with
    | '\000' -> Some (Append (String.sub body 1 (n - 1)))
    | '\001' when n >= 9 ->
        Option.map (fun pos -> Insert (pos, String.sub body 9 (n - 9))) (get_u64_opt body 1)
    | '\002' when n = 9 -> Option.map (fun pos -> Delete pos) (get_u64_opt body 1)
    | _ -> None

let frame_bytes op =
  let body = encode_op op in
  let buf = Buffer.create (String.length body + 8) in
  add_u32 buf (String.length body);
  add_u32 buf (Crc32c.string body);
  Buffer.add_string buf body;
  Buffer.contents buf

let record_size op = String.length (frame_bytes op)

(* Atomic header+records replacement: the whole new log (fresh header
   plus every given record) lands via temp + fsync + rename, so a crash
   mid-write leaves the previous log byte-for-byte intact.  The tiered
   store's compaction commit rotates its WAL with this — the records
   are the ingests that arrived after the compacted prefix was sealed,
   and they must survive the rotation atomically. *)
let create_with ~tag ~generation ops path =
  Container.atomic_write path (fun oc ->
      Fault.output_string oc (header_bytes ~tag ~generation);
      List.iter (fun op -> Fault.output_string oc (frame_bytes op)) ops)

let append_op oc op =
  let frame = frame_bytes op in
  Fault.output_string oc frame;
  flush oc;
  String.length frame

(* ------------------------------------------------------------------ *)
(* Scanning *)

type scan = {
  s_tag : string;
  s_generation : int;
  s_header_ok : bool;
  s_ops : op list;
  s_records : int;
  s_good_bytes : int;
  s_dropped_bytes : int;
}

let scan path =
  let s =
    match open_in_bin path with
    | exception Sys_error _ -> ""
    | ic ->
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)
  in
  let len = String.length s in
  let bad_header () =
    {
      s_tag = "";
      s_generation = -1;
      s_header_ok = false;
      s_ops = [];
      s_records = 0;
      s_good_bytes = 0;
      s_dropped_bytes = len;
    }
  in
  let mlen = String.length magic in
  if len < mlen + 8 || String.sub s 0 mlen <> magic then bad_header ()
  else
    let v = get_u32 s mlen in
    let tlen = get_u32 s (mlen + 4) in
    if
      v <> version
      || (not (Bounded.ok ~declared:tlen ~cap:Container.max_tag_len ~remaining:(len - mlen - 8)))
      || mlen + 8 + tlen + 12 > len
    then bad_header ()
    else
      let tag = String.sub s (mlen + 8) tlen in
      let hdr_end = mlen + 8 + tlen + 8 in
      match get_u64_opt s (mlen + 8 + tlen) with
      | None -> bad_header ()
      | Some generation ->
          if Crc32c.string ~len:hdr_end s <> get_u32 s hdr_end then bad_header ()
          else begin
            let start = hdr_end + 4 in
            let ops = ref [] in
            let records = ref 0 in
            let pos = ref start in
            let torn = ref false in
            while (not !torn) && !pos < len do
              if !pos + 8 > len then torn := true
              else begin
                let blen = get_u32 s !pos in
                let crc = get_u32 s (!pos + 4) in
                (* a flipped length field is the start of the torn tail,
                   never an allocation ({!Bounded}) *)
                if blen = 0 || not (Bounded.ok ~declared:blen ~cap:max_record_len ~remaining:(len - !pos - 8))
                then torn := true
                else if Crc32c.string ~pos:(!pos + 8) ~len:blen s <> crc then
                  torn := true
                else
                  match decode_op (String.sub s (!pos + 8) blen) with
                  | None -> torn := true
                  | Some op ->
                      ops := op :: !ops;
                      incr records;
                      pos := !pos + 8 + blen
              end
            done;
            {
              s_tag = tag;
              s_generation = generation;
              s_header_ok = true;
              s_ops = List.rev !ops;
              s_records = !records;
              s_good_bytes = !pos;
              s_dropped_bytes = len - !pos;
            }
          end

(* Truncate a WAL to its verified prefix (drop the torn tail). *)
let truncate_to path good_bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd good_bytes;
      Fault.fsync fd)

let open_append path =
  open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
