(* Crash-safe durable store: a checksummed snapshot plus a write-ahead
   log, for the two mutable Wavelet Trie variants.

   A store is a directory:

     <dir>/snapshot.wtx   format-v2 container (tag "durable-append" or
                          "durable-dynamic") holding the Marshal of
                          [(generation, trie)]
     <dir>/wal.log        WAL for that generation (see {!Wt_durable.Wal})

   Invariant: the trie state equals the snapshot of generation [g] with
   the verified prefix of a generation-[g] WAL replayed on top.  The
   two crash windows are closed by ordering and by the generation tag:

   - snapshot writes are atomic (temp + fsync + rename), so a crash
     mid-checkpoint leaves the old snapshot and the old WAL — nothing
     lost;
   - the WAL is reset (atomically) only *after* the new snapshot is
     durable; a crash between the two leaves a WAL whose generation is
     older than the snapshot's, which {!open_} recognizes as already
     absorbed and discards instead of replaying twice.

   A torn WAL tail (crash mid-append) is truncated to the last
   checksum-valid record on open; every complete record before it is
   replayed.  Recovery work is reported through the {!Wt_obs} probes
   ([durable_wal_replay], [durable_wal_dropped_bytes], ...). *)

module Fault = Wt_durable.Fault
module Container = Wt_durable.Container
module Wal = Wt_durable.Wal
module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace
module Flight = Wt_obs.Flight
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Binarize = Wt_strings.Binarize

exception Format_error = Container.Format_error

(* Arm the flight recorder's crash marker: when fault injection tears a
   write, the dump taken at exit shows the [crash] event after the WAL
   appends and checkpoints that led up to it. *)
let () = Fault.set_crash_hook (fun msg -> Flight.record ~note:msg Crash)

let fail fmt = Printf.ksprintf (fun m -> raise (Format_error m)) fmt

type variant = [ `Append | `Dynamic ]
type trie = A of Append_wt.t | D of Dynamic_wt.t

type t = {
  dir : string;
  variant : variant;
  trie : trie;
  mutable generation : int;
  mutable wal_oc : out_channel option;  (* None = read-only or closed *)
  mutable wal_bytes : int;
  checkpoint_bytes : int;
}

type recovery = {
  snapshot_generation : int;
  replayed : int;
  dropped_bytes : int;
  wal_reset : bool;
  checkpointed : bool;
}

let default_checkpoint_bytes = 1 lsl 20

let snapshot_path dir = Filename.concat dir "snapshot.wtx"
let wal_path dir = Filename.concat dir "wal.log"

let tag_of_variant = function
  | `Append -> "durable-append"
  | `Dynamic -> "durable-dynamic"

let variant_of_tag = function
  | "durable-append" -> Some `Append
  | "durable-dynamic" -> Some `Dynamic
  | _ -> None

let variant_name = function `Append -> "append" | `Dynamic -> "dynamic"

let is_store dir =
  Sys.file_exists dir && Sys.is_directory dir
  && Sys.file_exists (snapshot_path dir)

(* ------------------------------------------------------------------ *)
(* Trie plumbing *)

let empty_trie = function `Append -> A (Append_wt.create ()) | `Dynamic -> D (Dynamic_wt.create ())
let trie_length = function A wt -> Append_wt.length wt | D wt -> Dynamic_wt.length wt

let check_trie = function
  | A wt -> Append_wt.check_invariants wt
  | D wt -> Dynamic_wt.check_invariants wt

let apply_op trie op =
  let bounds what pos len ok =
    if not ok then fail "WAL %s record position %d out of bounds (length %d)" what pos len
  in
  match (trie, op) with
  | A wt, Wal.Append s -> Append_wt.append wt (Binarize.of_bytes s)
  | D wt, Wal.Append s -> Dynamic_wt.append wt (Binarize.of_bytes s)
  | D wt, Wal.Insert (pos, s) ->
      let len = Dynamic_wt.length wt in
      bounds "insert" pos len (pos >= 0 && pos <= len);
      Dynamic_wt.insert wt pos (Binarize.of_bytes s)
  | D wt, Wal.Delete pos ->
      let len = Dynamic_wt.length wt in
      bounds "delete" pos len (pos >= 0 && pos < len);
      Dynamic_wt.delete wt pos
  | A _, (Wal.Insert _ | Wal.Delete _) ->
      fail "append-only store contains an insert/delete WAL record"

(* ------------------------------------------------------------------ *)
(* Snapshot I/O *)

let write_snapshot dir variant generation trie =
  Trace.with_span ~args:[ ("generation", generation) ] "durable.save" @@ fun () ->
  let payload =
    match trie with
    | A wt -> Marshal.to_string (generation, wt) []
    | D wt -> Marshal.to_string (generation, wt) []
  in
  Container.write ~tag:(tag_of_variant variant) ~payload (snapshot_path dir);
  Probe.hit Durable_snapshot_save;
  Flight.record ~a:generation Snapshot_save

let load_snapshot dir =
  let tag, payload = Container.read_tagged (snapshot_path dir) in
  let variant =
    match variant_of_tag tag with
    | Some v -> v
    | None -> fail "not a durable store snapshot (tag %S)" tag
  in
  let decode : type a. unit -> int * a =
   fun () ->
    match (Marshal.from_string payload 0 : int * a) with
    | v -> v
    | exception (Failure _ | Invalid_argument _ | End_of_file) ->
        fail "corrupted snapshot payload (marshal decode failed)"
  in
  let generation, trie =
    match variant with
    | `Append ->
        let g, (wt : Append_wt.t) = decode () in
        (g, A wt)
    | `Dynamic ->
        let g, (wt : Dynamic_wt.t) = decode () in
        (g, D wt)
  in
  if generation < 0 then fail "corrupted snapshot (negative generation)";
  Probe.hit Durable_snapshot_load;
  Flight.record ~a:generation Snapshot_load;
  (variant, generation, trie)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let reopen_wal t =
  let oc = Wal.open_append (wal_path t.dir) in
  t.wal_oc <- Some oc

let create ?(checkpoint_bytes = default_checkpoint_bytes) ~variant dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Durable.create: %s exists and is not a directory" dir);
  if Sys.file_exists (snapshot_path dir) then
    invalid_arg (Printf.sprintf "Durable.create: %s already holds a store" dir);
  let trie = empty_trie variant in
  let tag = tag_of_variant variant in
  write_snapshot dir variant 0 trie;
  Wal.create ~tag ~generation:0 (wal_path dir);
  let t =
    {
      dir;
      variant;
      trie;
      generation = 0;
      wal_oc = None;
      wal_bytes = Wal.header_size ~tag;
      checkpoint_bytes;
    }
  in
  reopen_wal t;
  t

(* Shared by {!open_} (read-write: truncates torn tails, reopens the
   log) and {!verify} (read-only: touches nothing on disk). *)
let open_internal ~read_only ~verify ?(checkpoint_bytes = default_checkpoint_bytes) dir =
  if not (is_store dir) then fail "%s is not a durable store directory" dir;
  if not read_only then Container.cleanup_tmp dir;
  let variant, generation, trie = load_snapshot dir in
  let tag = tag_of_variant variant in
  let scan = Wal.scan (wal_path dir) in
  let wal_reset =
    (not scan.s_header_ok)
    || scan.s_tag <> tag
    || scan.s_generation <> generation
  in
  if scan.s_header_ok && scan.s_generation > generation then
    fail "WAL generation %d is ahead of snapshot generation %d" scan.s_generation
      generation;
  let replayed, dropped_bytes =
    if not scan.s_header_ok then (0, scan.s_dropped_bytes)
      (* torn header: nothing in the file is attributable *)
    else if wal_reset then (0, 0)
      (* stale generation: its records are already in the snapshot *)
    else begin
      Trace.with_span ~args:[ ("records", scan.s_records) ] "durable.replay"
        (fun () ->
          List.iter
            (fun op ->
              match apply_op trie op with
              | () -> ()
              | exception (Failure _ | Invalid_argument _) ->
                  fail "WAL record could not be replayed on the recovered trie")
            scan.s_ops);
      (scan.s_records, scan.s_dropped_bytes)
    end
  in
  if replayed > 0 then Flight.record ~a:replayed Wal_replay;
  Probe.record Durable_wal_replay replayed;
  Probe.record Durable_wal_dropped_bytes (max 0 dropped_bytes);
  if verify then begin
    match check_trie trie with
    | () -> ()
    | exception Failure m -> fail "recovered index fails invariants: %s" m
  end;
  let t =
    {
      dir;
      variant;
      trie;
      generation;
      wal_oc = None;
      wal_bytes = (if wal_reset then Wal.header_size ~tag else scan.s_good_bytes);
      checkpoint_bytes;
    }
  in
  if not read_only then begin
    if wal_reset then Wal.create ~tag ~generation (wal_path dir)
    else if scan.s_dropped_bytes > 0 then
      Wal.truncate_to (wal_path dir) scan.s_good_bytes;
    reopen_wal t
  end;
  let recovery =
    {
      snapshot_generation = generation;
      replayed;
      dropped_bytes = max 0 dropped_bytes;
      wal_reset;
      checkpointed = false;
    }
  in
  (t, recovery)

let open_ ?checkpoint_bytes ?(verify = true) dir =
  open_internal ~read_only:false ~verify ?checkpoint_bytes dir

let open_read_only ?(verify = true) dir =
  open_internal ~read_only:true ~verify dir

let close t =
  match t.wal_oc with
  | None -> ()
  | Some oc ->
      t.wal_oc <- None;
      flush oc;
      Fault.fsync (Unix.descr_of_out_channel oc);
      close_out oc

(* ------------------------------------------------------------------ *)
(* Mutation through the log *)

let writable t =
  match t.wal_oc with
  | Some oc -> oc
  | None -> invalid_arg "Durable: store is read-only or closed"

let checkpoint t =
  ignore (writable t : out_channel);
  Trace.with_span ~args:[ ("generation", t.generation + 1) ] "durable.checkpoint"
  @@ fun () ->
  let generation' = t.generation + 1 in
  (* 1. the new snapshot becomes durable under the new generation... *)
  write_snapshot t.dir t.variant generation' t.trie;
  (* 2. ...and only then is the log reset to that generation.  A crash
     between the two leaves a stale-generation WAL that open_ discards. *)
  (match t.wal_oc with
  | Some oc ->
      t.wal_oc <- None;
      (try close_out oc with Sys_error _ -> ())
  | None -> ());
  let tag = tag_of_variant t.variant in
  Wal.create ~tag ~generation:generation' (wal_path t.dir);
  t.generation <- generation';
  t.wal_bytes <- Wal.header_size ~tag;
  reopen_wal t;
  Probe.hit Durable_checkpoint;
  Flight.record ~a:generation' Checkpoint

let maybe_checkpoint t = if t.wal_bytes >= t.checkpoint_bytes then checkpoint t

let log_op t op =
  let oc = writable t in
  let n = Wal.append_op oc op in
  t.wal_bytes <- t.wal_bytes + n;
  Probe.hit Durable_wal_append;
  Flight.record ~a:n Wal_append

let append t s =
  log_op t (Wal.Append s);
  (match t.trie with
  | A wt -> Append_wt.append wt (Binarize.of_bytes s)
  | D wt -> Dynamic_wt.append wt (Binarize.of_bytes s));
  maybe_checkpoint t

let insert t pos s =
  (match t.trie with
  | A _ -> invalid_arg "Durable.insert: append-only store"
  | D wt ->
      let len = Dynamic_wt.length wt in
      if pos < 0 || pos > len then
        invalid_arg (Printf.sprintf "Durable.insert: position %d out of bounds" pos);
      log_op t (Wal.Insert (pos, s));
      Dynamic_wt.insert wt pos (Binarize.of_bytes s));
  maybe_checkpoint t

let delete t pos =
  (match t.trie with
  | A _ -> invalid_arg "Durable.delete: append-only store"
  | D wt ->
      let len = Dynamic_wt.length wt in
      if pos < 0 || pos >= len then
        invalid_arg (Printf.sprintf "Durable.delete: position %d out of bounds" pos);
      log_op t (Wal.Delete pos);
      Dynamic_wt.delete wt pos);
  maybe_checkpoint t

(* ------------------------------------------------------------------ *)
(* Accessors *)

let dir t = t.dir
let variant t = t.variant
let generation t = t.generation
let wal_bytes t = t.wal_bytes
let length t = trie_length t.trie

let access t pos =
  match t.trie with
  | A wt -> Binarize.to_bytes (Append_wt.access wt pos)
  | D wt -> Binarize.to_bytes (Dynamic_wt.access wt pos)

let append_trie t = match t.trie with A wt -> Some wt | D _ -> None
let dynamic_trie t = match t.trie with D wt -> Some wt | A _ -> None

let stats t =
  match t.trie with A wt -> Append_wt.stats wt | D wt -> Dynamic_wt.stats wt

let distinct_count t =
  match t.trie with
  | A wt -> Append_wt.distinct_count wt
  | D wt -> Dynamic_wt.distinct_count wt

let check t =
  match check_trie t.trie with
  | () -> ()
  | exception Failure m -> fail "store fails invariants: %s" m

(* ------------------------------------------------------------------ *)
(* Verify / recover *)

type verify_report = {
  v_variant : variant;
  v_generation : int;
  v_length : int;
  v_distinct : int;
  v_wal_records : int;
  v_dropped_bytes : int;
  v_wal_reset : bool;
  v_clean : bool;
}

let verify dir =
  let t, r = open_read_only ~verify:true dir in
  {
    v_variant = t.variant;
    v_generation = t.generation;
    v_length = length t;
    v_distinct = distinct_count t;
    v_wal_records = r.replayed;
    v_dropped_bytes = r.dropped_bytes;
    v_wal_reset = r.wal_reset;
    v_clean = r.dropped_bytes = 0 && not r.wal_reset;
  }

let recover ?checkpoint_bytes dir =
  let t, r = open_ ?checkpoint_bytes ~verify:true dir in
  checkpoint t;
  close t;
  { r with checkpointed = true }
