(* The checksummed on-disk container — index format v2.

   Layout (all integers big-endian):

     header  := magic (18 bytes "wavelet-trie-index")
              | u32 version (= 2)
              | u32 tag length          (bounded: 0..255)
              | tag bytes               (variant name, e.g. "append")
              | u64 payload length
              | u32 CRC32C of everything above
     payload := opaque bytes (Marshal encoding of the structure)
     footer  := u64 payload length (repeated)
              | u32 CRC32C of payload
              | u32 CRC32C of the footer's first 12 bytes

   Every section is independently checksummed, so any bit flip or
   truncation surfaces as {!Format_error} before a single payload byte
   reaches [Marshal] — which would otherwise happily segfault or decode
   garbage.  The repeated payload length in the footer catches the
   "header intact, file cut mid-payload" case even when the cut lands
   on the old EOF of a recycled file.

   Writes are atomic: temp file in the same directory, fsync, rename
   over the target, fsync the directory.  An interrupted save therefore
   always leaves the previous version of the file intact (orphaned temp
   files are invisible to readers; {!Durable} cleans its store
   directory of them on open, via {!cleanup_tmp}).  All
   bytes go through {!Fault}, so the fault harness can tear any write. *)

exception Format_error of string

let magic = "wavelet-trie-index"
let version = 2
let version_v3 = 3
let max_tag_len = 255
let tmp_prefix = ".wt-tmp-"

(* Sanity cap on a declared payload length ({!Bounded}): far above any
   real index, far below anything that could be asked of the allocator
   by a corrupt header. *)
let max_payload_len = 1 lsl 36

let fail fmt = Printf.ksprintf (fun m -> raise (Format_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Binary helpers *)

let add_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)
let add_u64 buf v = Buffer.add_int64_be buf (Int64.of_int v)

let get_u32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFFFFFF

let get_u64 s off what =
  let v = String.get_int64_be s off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    fail "corrupt %s (unreasonable 64-bit length)" what;
  Int64.to_int v

(* ------------------------------------------------------------------ *)
(* Atomic writes *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fault.fsync fd;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let cleanup_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter
        (fun e ->
          if String.length e >= String.length tmp_prefix
             && String.sub e 0 (String.length tmp_prefix) = tmp_prefix
          then try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries

(* [atomic_write path writer] runs [writer oc] against a temp file and
   renames it over [path] only once its bytes are flushed and fsynced.
   On an injected crash the temp file is deliberately left behind (as a
   real crash would); on any other exception it is removed. *)
let atomic_write path writer =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir tmp_prefix "" in
  let oc = open_out_bin tmp in
  (match
     writer oc;
     flush oc;
     Fault.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
      (try close_out oc with Sys_error _ -> ());
      (match e with
      | Fault.Injected_crash _ -> ()
      | _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
      raise e);
  Sys.rename tmp path;
  fsync_dir dir

(* ------------------------------------------------------------------ *)
(* Writing *)

let header_bytes ?(version = version) ~tag ~payload_len () =
  if String.length tag > max_tag_len then invalid_arg "Container.write: tag too long";
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  add_u32 buf version;
  add_u32 buf (String.length tag);
  Buffer.add_string buf tag;
  add_u64 buf payload_len;
  let crc = Crc32c.string (Buffer.contents buf) in
  add_u32 buf crc;
  Buffer.contents buf

let footer_bytes ~payload_len ~payload_crc =
  let buf = Buffer.create 16 in
  add_u64 buf payload_len;
  add_u32 buf payload_crc;
  add_u32 buf (Crc32c.string (Buffer.contents buf));
  Buffer.contents buf

let write_versioned ~version ~tag ~payload path =
  let payload_len = String.length payload in
  let header = header_bytes ~version ~tag ~payload_len () in
  let footer = footer_bytes ~payload_len ~payload_crc:(Crc32c.string payload) in
  atomic_write path (fun oc ->
      Fault.output_string oc header;
      Fault.output_string oc payload;
      Fault.output_string oc footer)

let write ~tag ~payload path = write_versioned ~version ~tag ~payload path

let write_v3 ~tag ~payload path = write_versioned ~version:version_v3 ~tag ~payload path

(* ------------------------------------------------------------------ *)
(* Reading *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> fail "cannot open index: %s" m
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

(* Parse and CRC-check the header at the start of [s] — possibly just a
   prefix of the file of total size [file_len].  Returns
   (version, tag, payload_off, payload_len). *)
let parse_header s ~file_len =
  let len = String.length s in
  let need off n what = if off + n > len then fail "truncated index %s" what in
  need 0 (String.length magic + 8) "header";
  if String.sub s 0 (String.length magic) <> magic then
    fail "not a wavelet-trie index file";
  let off = String.length magic in
  let v = get_u32 s off in
  let tlen = get_u32 s (off + 4) in
  if not (Bounded.ok ~declared:tlen ~cap:max_tag_len ~remaining:(file_len - off - 8)) then
    fail "corrupt header (tag length %d out of bounds)" tlen;
  need (off + 8) (tlen + 12) "header";
  let tag = String.sub s (off + 8) tlen in
  let header_len = off + 8 + tlen + 8 in
  let payload_len = get_u64 s (off + 8 + tlen) "header" in
  if Crc32c.string ~len:header_len s <> get_u32 s header_len then
    fail "index header checksum mismatch";
  (v, tag, header_len + 4, payload_len)

let check_version ~expect v =
  if v <> expect then
    fail "index format version %d, expected %d (re-index to upgrade)" v expect

let read_tagged_versioned ~expect_version path =
  let s = read_file path in
  let len = String.length s in
  let v, tag, payload_off, payload_len = parse_header s ~file_len:len in
  check_version ~expect:expect_version v;
  (* bounds before bytes: a flipped length field must fail here, not in
     the allocator *)
  if not (Bounded.ok ~declared:payload_len ~cap:max_payload_len ~remaining:(len - payload_off))
  then fail "truncated index payload";
  let footer_off = payload_off + payload_len in
  if footer_off + 16 > len then fail "truncated index footer";
  if len <> footer_off + 16 then
    fail "index has %d trailing bytes after the footer" (len - footer_off - 16);
  if Crc32c.string ~pos:footer_off ~len:12 s <> get_u32 s (footer_off + 12) then
    fail "index footer checksum mismatch";
  if get_u64 s footer_off "footer" <> payload_len then
    fail "payload length disagrees between header and footer";
  let payload_crc = get_u32 s (footer_off + 8) in
  if Crc32c.string ~pos:payload_off ~len:payload_len s <> payload_crc then
    fail "index payload checksum mismatch";
  (tag, String.sub s payload_off payload_len)

let read_tagged path = read_tagged_versioned ~expect_version:version path

let read ~expect_tag path =
  let tag, payload = read_tagged path in
  if tag <> expect_tag then
    fail "index holds a %S trie, expected %S" tag expect_tag;
  payload

(* ------------------------------------------------------------------ *)
(* Format v3: the payload is a flat arena queried in place, so the
   container offers a second read path — [map_v3] checks the header and
   footer CRCs (O(1)) and [mmap]s the payload read-only instead of
   copying and checksumming all of it.  [read_v3] is the fully-verified
   copying open (every CRC, including the payload's). *)

let read_v3 ~expect_tag path =
  let tag, payload = read_tagged_versioned ~expect_version:version_v3 path in
  if tag <> expect_tag then
    fail "index holds a %S trie, expected %S" tag expect_tag;
  payload

type ba = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type mapping = { data : ba; close : unit -> unit }

let map_v3 ~expect_tag path =
  let parse ic =
    let file_len = in_channel_length ic in
    let head =
      match really_input_string ic (min file_len 4096) with
      | s -> s
      | exception End_of_file -> fail "truncated index header"
    in
    let v, tag, payload_off, payload_len = parse_header head ~file_len in
    check_version ~expect:version_v3 v;
    if tag <> expect_tag then fail "index holds a %S trie, expected %S" tag expect_tag;
    if
      not
        (Bounded.ok ~declared:payload_len ~cap:max_payload_len
           ~remaining:(file_len - payload_off))
    then fail "truncated index payload";
    let footer_off = payload_off + payload_len in
    if file_len <> footer_off + 16 then
      fail "index has %d trailing bytes after the footer" (file_len - footer_off - 16);
    seek_in ic footer_off;
    let footer =
      match really_input_string ic 16 with
      | s -> s
      | exception End_of_file -> fail "truncated index footer"
    in
    if Crc32c.string ~len:12 footer <> get_u32 footer 12 then
      fail "index footer checksum mismatch";
    if get_u64 footer 0 "footer" <> payload_len then
      fail "payload length disagrees between header and footer";
    (payload_off, payload_len)
  in
  let payload_off, payload_len =
    match open_in_bin path with
    | exception Sys_error m -> fail "cannot open index: %s" m
    | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> parse ic)
  in
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) -> fail "cannot map index: %s" (Unix.error_message e)
  | fd -> (
      let close_fd () = try Unix.close fd with Unix.Unix_error _ -> () in
      match Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |] with
      | exception Unix.Unix_error (e, _, _) ->
          close_fd ();
          fail "cannot map index: %s" (Unix.error_message e)
      | exception Sys_error m ->
          close_fd ();
          fail "cannot map index: %s" m
      | g ->
          let ba = Bigarray.array1_of_genarray g in
          if Bigarray.Array1.dim ba < payload_off + payload_len then begin
            close_fd ();
            fail "index shrank while mapping"
          end;
          (* The sub view roots the whole mapping; the munmap happens at
             GC once every view dies.  [close] only releases the fd —
             in-flight reads through existing views stay safe. *)
          let data = Bigarray.Array1.sub ba payload_off payload_len in
          let closed = ref false in
          let close () =
            if not !closed then begin
              closed := true;
              close_fd ()
            end
          in
          { data; close })

let version_of_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic (String.length magic + 4) with
          | s when String.sub s 0 (String.length magic) = magic ->
              Some (get_u32 s (String.length magic))
          | _ -> None
          | exception End_of_file -> None)

let tag_of_file path = match read_tagged path with
  | tag, _ -> Some tag
  | exception Format_error _ -> None

let is_container path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | m -> m = magic
          | exception End_of_file -> false)
