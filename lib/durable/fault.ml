(* Fault injection for the durability layer.

   Every byte the durable subsystem writes (snapshot containers, WAL
   headers, WAL records) flows through {!output}, so a test — or the
   [WTRIE_FAULT_CRASH_AFTER] environment knob used by the CI smoke test
   — can arm a byte budget after which the process behaves as if it
   crashed mid-write: the allowed prefix reaches the file (a torn
   write), then {!Injected_crash} is raised and every further durable
   write fails the same way.  Recovery code paths never write through
   this module's budget accounting twice: the budget is global, which is
   exactly the "whole process dies" model the harness wants. *)

exception Injected_crash of string

(* Called with the fault message just before {!Injected_crash} is
   raised.  The [durable] library (which, unlike this one, links
   [wt_obs]) points it at the flight recorder so the crash marker lands
   in the ring before the process unwinds; a ref keeps [wt_durable]
   dependency-light. *)
let crash_hook : (string -> unit) ref = ref (fun _ -> ())
let set_crash_hook f = crash_hook := f

(* [None] = disarmed; [Some b] = b more bytes may reach disk. *)
let budget = ref None

let arm_crash_after_bytes n = budget := Some (max 0 n)
let disarm () = budget := None
let armed () = !budget <> None

let arm_from_env () =
  match Sys.getenv_opt "WTRIE_FAULT_CRASH_AFTER" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> arm_crash_after_bytes n
      | _ -> ())
  | None -> ()

let output oc s pos len =
  match !budget with
  | None -> output_substring oc s pos len
  | Some b when len <= b ->
      budget := Some (b - len);
      output_substring oc s pos len
  | Some b ->
      (* Torn write: only the first [b] bytes reach the file, then the
         "process" dies.  Flush so the partial bytes are really there,
         as they would be after a kernel write of the short count. *)
      output_substring oc s pos b;
      flush oc;
      budget := Some 0;
      let msg =
        Printf.sprintf "injected crash: torn write (%d of %d bytes reached the file)" b
          len
      in
      !crash_hook msg;
      raise (Injected_crash msg)

let output_string oc s = output oc s 0 (String.length s)

(* fsync is advisory on exotic filesystems; never fail a save over it. *)
let fsync fd = try Unix.fsync fd with Unix.Unix_error _ -> ()
