(* CRC-32C (Castagnoli), the checksum guarding every on-disk section of
   the durable format: snapshot header/payload/footer and each WAL
   record.  Table-driven, reflected polynomial 0x82F63B78 — the same
   parameterization as SSE4.2's CRC32 instruction, iSCSI and ext4, so
   files can be cross-checked with standard tools. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Running state is the complemented register, as usual for CRC32. *)

let init = 0xFFFFFFFF

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.update";
  let t = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc

let finish crc = crc lxor 0xFFFFFFFF land 0xFFFFFFFF

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  finish (update init s pos len)
