(** Crash-safe durable store for the mutable Wavelet Trie variants: a
    checksummed format-v2 snapshot plus a CRC-framed write-ahead log,
    kept in a directory ([<dir>/snapshot.wtx], [<dir>/wal.log]).

    Guarantees, enforced by the fault-injection suite
    ([test/test_faults.ml]):
    - snapshot writes are atomic — a crash mid-save leaves the previous
      snapshot intact;
    - a crash mid-append leaves a torn WAL tail; {!open_} replays every
      complete, checksum-valid record before it and truncates the rest;
    - a crash mid-checkpoint can never replay records twice: the WAL
      carries the generation of the snapshot it applies to, and a
      stale-generation log is discarded, not replayed;
    - corruption (bit flips, truncation) raises {!Format_error} — the
      library never crashes on it and never silently serves wrong
      answers.

    Mutations are logged before they are applied; once past a size
    threshold the log is absorbed into a fresh snapshot
    ({!checkpoint}).  Recovery work is reported through the
    {!Wt_obs.Probe} layer ([durable_*] metrics).  Strings at this API
    are byte strings, as in the {!Wtrie} front door. *)

module Fault = Wt_durable.Fault

exception Format_error of string
(** Same exception as [Wt_core.Persist.Format_error]. *)

type variant = [ `Append | `Dynamic ]
type t

type recovery = {
  snapshot_generation : int;
  replayed : int;  (** WAL records applied on top of the snapshot *)
  dropped_bytes : int;  (** torn-tail bytes discarded *)
  wal_reset : bool;  (** log was torn at the header or stale-generation *)
  checkpointed : bool;
}

val create : ?checkpoint_bytes:int -> variant:variant -> string -> t
(** Initialize a fresh store directory (created if missing).
    [Invalid_argument] if it already holds a store. *)

val open_ : ?checkpoint_bytes:int -> ?verify:bool -> string -> t * recovery
(** Load the snapshot, replay the WAL's verified prefix, truncate any
    torn tail, and reopen for writing.  [verify] (default [true]) runs
    [check_invariants] on the recovered trie, mapping failures to
    {!Format_error}. *)

val open_read_only : ?verify:bool -> string -> t * recovery
(** Like {!open_} but touches nothing on disk; mutations raise. *)

val close : t -> unit
val is_store : string -> bool

(** {1 Mutations} — logged to the WAL before being applied. *)

val append : t -> string -> unit

val insert : t -> int -> string -> unit
(** Dynamic stores only; [Invalid_argument] on an append-only store. *)

val delete : t -> int -> unit
(** Dynamic stores only; [Invalid_argument] on an append-only store. *)

val checkpoint : t -> unit
(** Absorb the WAL into a fresh snapshot (next generation) and reset
    the log.  Automatic once the WAL exceeds [checkpoint_bytes]
    (default 1 MiB). *)

(** {1 Accessors} *)

val dir : t -> string
val variant : t -> variant
val variant_name : variant -> string
val generation : t -> int
val wal_bytes : t -> int
val length : t -> int
val access : t -> int -> string
val distinct_count : t -> int
val stats : t -> Wt_core.Stats.t

val append_trie : t -> Wt_core.Append_wt.t option
(** The underlying trie when the store is append-only — the same value
    the [Wtrie.Append] front door and [Wt_core.Range] operate on. *)

val dynamic_trie : t -> Wt_core.Dynamic_wt.t option

val check : t -> unit
(** [check_invariants] on the live trie; {!Format_error} on failure. *)

(** {1 Verify / recover} *)

type verify_report = {
  v_variant : variant;
  v_generation : int;
  v_length : int;
  v_distinct : int;
  v_wal_records : int;  (** records in the verified WAL prefix *)
  v_dropped_bytes : int;
  v_wal_reset : bool;
  v_clean : bool;  (** no torn tail, no pending reset, invariants ok *)
}

val verify : string -> verify_report
(** Read-only deep verification of a store directory: checksums,
    replay of the WAL prefix, [check_invariants].  Raises
    {!Format_error} on unrecoverable corruption. *)

val recover : ?checkpoint_bytes:int -> string -> recovery
(** Open read-write (replaying and truncating), checkpoint the
    recovered state into a fresh snapshot, and close.  After a
    successful recover, {!verify} reports a clean store. *)
