(** CRC-32C (Castagnoli, reflected polynomial [0x82F63B78]) — the
    checksum behind every section of the durable on-disk format.  Same
    parameterization as iSCSI/ext4/SSE4.2, so external tools agree. *)

val init : int
(** Initial running state (complemented register). *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] folds bytes [pos, pos+len) into the running
    state.  Raises [Invalid_argument] on an out-of-range slice. *)

val finish : int -> int
(** Final value (in [0, 2^32)) from a running state. *)

val string : ?pos:int -> ?len:int -> string -> int
(** One-shot digest of a substring (default: the whole string). *)
