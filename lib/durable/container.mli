(** The checksummed on-disk container — index format v2.

    A container is [header | payload | footer]; the header carries the
    magic, format version, variant tag and payload length, the footer
    repeats the payload length, and all three sections have CRC32C
    checksums.  Any bit flip or truncation raises {!Format_error}
    before a single payload byte is interpreted.

    Writes are atomic (same-directory temp file + fsync + rename +
    directory fsync): an interrupted save always leaves the previous
    file intact.  Every written byte flows through {!Fault}. *)

exception Format_error of string

val magic : string
(** First bytes of every container (shared with format v1). *)

val version : int
(** The Marshal-payload container format version, 2. *)

val version_v3 : int
(** The flat-arena container format version, 3: same framing, but the
    payload is a [Wt_core.Flat_wt] arena queried in place, so it can be
    opened by {!map_v3} with no deserialization. *)

val max_tag_len : int

val write : tag:string -> payload:string -> string -> unit
(** [write ~tag ~payload path] atomically replaces [path] with a
    checksummed container.  Raises [Invalid_argument] if the tag
    exceeds {!max_tag_len}. *)

val read : expect_tag:string -> string -> string
(** Verify every checksum and return the payload; {!Format_error} on
    any corruption, truncation, version or tag mismatch. *)

val read_tagged : string -> string * string
(** Like {!read} but returns [(tag, payload)] without checking the
    variant tag. *)

val tag_of_file : string -> string option
(** The variant tag of a fully-verified container, or [None]. *)

val write_v3 : tag:string -> payload:string -> string -> unit
(** Like {!write} but stamps format version 3 (flat-arena payload). *)

val read_v3 : expect_tag:string -> string -> string
(** Fully-verified v3 read: every checksum including the payload's, the
    payload returned as a private copy.  {!Format_error} on corruption,
    truncation, version or tag mismatch. *)

type ba = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type mapping = {
  data : ba;  (** the payload bytes, a read-only window of the mapping *)
  close : unit -> unit;
      (** release the file descriptor (idempotent).  The mapping itself
          is reclaimed by the GC once every view of [data] dies, so
          in-flight reads through existing views remain memory-safe. *)
}

(** [map_v3 ~expect_tag path] is the ~O(1) open: header and footer
    CRCs are verified (the payload CRC is not — use {!read_v3} for a
    full check), then the file is [mmap]ed read-only and the payload
    window returned without copying.  One mapping is shareable across
    any number of serving processes. *)
val map_v3 : expect_tag:string -> string -> mapping

val version_of_file : string -> int option
(** The declared format version of a file bearing this library's magic
    (no checksum verification), or [None]. *)

val is_container : string -> bool
(** Whether the file starts with this library's magic bytes. *)

val atomic_write : string -> (out_channel -> unit) -> unit
(** Low-level atomic file replacement used by {!write} and the WAL:
    temp file + fsync + rename + directory fsync.  On an injected
    crash the temp file is left behind, as after a real crash. *)

val cleanup_tmp : string -> unit
(** Remove orphaned temp files (crash leftovers) from a directory. *)
