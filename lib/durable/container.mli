(** The checksummed on-disk container — index format v2.

    A container is [header | payload | footer]; the header carries the
    magic, format version, variant tag and payload length, the footer
    repeats the payload length, and all three sections have CRC32C
    checksums.  Any bit flip or truncation raises {!Format_error}
    before a single payload byte is interpreted.

    Writes are atomic (same-directory temp file + fsync + rename +
    directory fsync): an interrupted save always leaves the previous
    file intact.  Every written byte flows through {!Fault}. *)

exception Format_error of string

val magic : string
(** First bytes of every container (shared with format v1). *)

val version : int
(** The current on-disk format version, 2. *)

val max_tag_len : int

val write : tag:string -> payload:string -> string -> unit
(** [write ~tag ~payload path] atomically replaces [path] with a
    checksummed container.  Raises [Invalid_argument] if the tag
    exceeds {!max_tag_len}. *)

val read : expect_tag:string -> string -> string
(** Verify every checksum and return the payload; {!Format_error} on
    any corruption, truncation, version or tag mismatch. *)

val read_tagged : string -> string * string
(** Like {!read} but returns [(tag, payload)] without checking the
    variant tag. *)

val tag_of_file : string -> string option
(** The variant tag of a fully-verified container, or [None]. *)

val is_container : string -> bool
(** Whether the file starts with this library's magic bytes. *)

val atomic_write : string -> (out_channel -> unit) -> unit
(** Low-level atomic file replacement used by {!write} and the WAL:
    temp file + fsync + rename + directory fsync.  On an injected
    crash the temp file is left behind, as after a real crash. *)

val cleanup_tmp : string -> unit
(** Remove orphaned temp files (crash leftovers) from a directory. *)
