(** Fault-injection hook for the durability layer.

    All durable writes (snapshot containers, WAL headers and records)
    go through {!output}/{!output_string}.  Arming a byte budget makes
    the write path behave like a process killed mid-write: the allowed
    prefix reaches the file — a torn write — and {!Injected_crash} is
    raised; subsequent durable writes keep failing until {!disarm}.

    The budget is process-global, matching the crash model: once a
    process "dies", nothing it does afterwards reaches disk. *)

exception Injected_crash of string

val arm_crash_after_bytes : int -> unit
(** Allow this many more durable bytes, then crash. *)

val disarm : unit -> unit
val armed : unit -> bool

val arm_from_env : unit -> unit
(** Arm from [WTRIE_FAULT_CRASH_AFTER] (a byte count) when set — the
    CLI calls this at startup so CI can kill a writer mid-append. *)

val set_crash_hook : (string -> unit) -> unit
(** Invoked with the fault message just before {!Injected_crash} is
    raised.  The [durable] library points this at the flight recorder
    ({!Wt_obs.Flight}) so a crash marker lands in the ring before the
    process unwinds; the indirection keeps this library free of an obs
    dependency. *)

val output : out_channel -> string -> int -> int -> unit
(** [output oc s pos len], charging the budget. *)

val output_string : out_channel -> string -> unit

val fsync : Unix.file_descr -> unit
(** [Unix.fsync] that ignores filesystem refusals. *)
