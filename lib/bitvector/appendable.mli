(** Append-only compressed bitvector (Section 4.1, Theorem 4.5).

    The bitvector is the concatenation of frozen segments of 4096 bits,
    each compressed with {!Rrr}, followed by a small mutable tail with an
    explicit rank directory.  Queries are O(1) (amortized within a
    segment).  [append] is {e worst-case} O(1): when the tail fills, it
    becomes a {e pending} segment whose RRR encoding is built a couple of
    blocks at a time by the next few appends (the paper's partial
    rebuilding [21]); queries meanwhile read the pending segment's raw
    bits, which stay live until construction finishes — so at most one
    segment is duplicated at a time, as in the paper's proof.  Space is
    [n H0 + o(n)] bits.

    The remaining substitution (DESIGN.md): the paper's fusion-tree
    partial sums over segment counters are replaced by binary search,
    which is O(log n) per select but immaterial at realistic word sizes.

    [init] realizes the "left offset" trick of Section 4: the bitvector
    starts with a {e virtual} constant prefix stored as two integers, so
    Wavelet Trie node splits on append cost O(1). *)

type t

include Fid.APPENDABLE with type t := t

val create : unit -> t

val init : bool -> int -> t
(** [init b n] is the bitvector [b^n], represented in O(log n) bits as a
    virtual offset.  O(1). *)

val of_bitbuf : Wt_bits.Bitbuf.t -> t
(** Bulk construction (appends every bit; segments are frozen on the way). *)

val zeros : t -> int
val is_constant : t -> bool

val access_rank : t -> int -> bool * int
(** [access_rank t pos] is [(b, rank t b pos)] with [b = access t pos]. *)

(** Rank cursor for batched queries: an {!Rrr.Cursor} into the frozen
    segment last queried (the pending segment and tail are O(1) per
    query already).  Frozen segments are immutable, so the cursor stays
    valid across appends.  Any position order is correct; monotone
    positions are the fast path. *)
module Cursor : sig
  type bv := t
  type t

  val create : bv -> t
  (** A fresh cursor with an empty cache.  O(1). *)

  val rank : t -> bool -> int -> int
  (** Same contract as the bitvector's [rank]. *)

  val access_rank : t -> int -> bool * int
  (** Same contract as the bitvector's [access_rank]. *)
end

module Iter : sig
  type bv := t
  type t

  val create : bv -> int -> t
  val next : t -> bool
  val has_next : t -> bool
  val pos : t -> int
end

val check_invariants : t -> unit
(** Validate segment and tail directories; raises [Failure] on violation. *)
