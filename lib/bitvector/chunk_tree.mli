(** Dynamic bitvector as a balanced tree of encoded chunks.

    This is the skeleton shared by the paper's two dynamic bitvector
    encodings (Section 4.2): leaves hold a compressed encoding of a few
    hundred bits of the bitvector; internal AVL nodes cache the total bit
    and one counts of their subtree, giving O(log n) [access], [rank],
    [select], [insert] and [delete].  Leaves are split when their encoding
    outgrows a threshold and merged with a neighbour when it underflows,
    so the number of tree nodes stays proportional to the total encoded
    size.

    The leaf encoding is supplied by a {!CODEC}:
    - {!Dyn_rle} instantiates it with RLE+γ, for which a constant run
      encodes in O(log n) bits, making [init] O(log n) — the property the
      Wavelet Trie needs (Remark 4.2);
    - {!Dyn_gap} instantiates it with gap+δ encoding (the
      Mäkinen–Navarro [18] layout), for which [init true n] necessarily
      materializes Θ(n) code words. *)

module type CODEC = sig
  val name : string

  val encode : Wt_bits.Rle.runs -> Wt_bits.Bitbuf.t
  (** Encode a run sequence. *)

  val decode : total:int -> ones:int -> Wt_bits.Bitbuf.t -> Wt_bits.Rle.runs
  (** Decode an encoding produced by [encode] describing [total] bits of
      which [ones] are set. *)

  val reader : total:int -> ones:int -> Wt_bits.Bitbuf.t -> unit -> bool * int
  (** Lazy decoding: each call yields the next run as [(bit, length)].
      Callers never request runs past [total] bits.  Point queries use
      this to scan a leaf with early exit and no allocation. *)

  val encoded_length : Wt_bits.Rle.runs -> int
  (** Bit length of [encode runs], without materializing it. *)
end

module type S = sig
  type t

  include Fid.DYNAMIC with type t := t

  val create : unit -> t
  (** The empty bitvector. *)

  val init : bool -> int -> t
  (** [init b n] is the constant bitvector [b^n] — the [Init] operation of
      Section 4 of the paper.  Cost is dominated by the codec: O(log n)
      for RLE+γ, Θ(n) code words for gap encoding. *)

  val of_bits : bool array -> t
  val append : t -> bool -> unit
  (** [append t b] is [insert t (length t) b]. *)

  val zeros : t -> int
  val is_constant : t -> bool
  (** True when the bitvector is empty, all zeros, or all ones — the
      trigger for Wavelet Trie node merging on delete. *)

  val access_rank : t -> int -> bool * int
  (** [access_rank t pos] is [(b, rank t b pos)] for [b = access t pos],
      in a single descent. *)

  val snapshot : t -> t
  (** O(1) frozen copy.  Tree nodes are immutable (every edit path-copies
      down from the root), so the copy shares the entire tree; subsequent
      [insert]/[delete]/[append] on the original replace its root and
      leave the snapshot untouched.  The snapshot itself supports the
      full API, including further edits. *)

  val check_invariants : t -> unit
  (** Validate tree balance, cached counts and leaf sizing; raises
      [Failure] on violation.  For tests. *)

  val leaf_count : t -> int
  (** Number of leaves (for space/invariant tests). *)

  module Iter : sig
    type bv := t
    type t

    val create : bv -> int -> t
    val next : t -> bool
    (** Amortized O(1) after O(log n) creation; raises at the end. *)

    val has_next : t -> bool
    val pos : t -> int
  end

  (** Rank cursor for batched queries: caches the last visited leaf
      fully decoded (run offsets and cumulative one-counts) plus the
      counts before it, so queries landing in the cached leaf skip both
      the O(log n) descent and the run decode.  Any position order is
      correct; monotone positions are the fast path.  The cache
      revalidates itself against the current root (a physical-equality
      check), so an [insert]/[delete]/[append] between queries is
      detected as a miss and answered freshly, never from stale data. *)
  module Cursor : sig
    type bv := t
    type t

    val create : bv -> t
    (** A fresh cursor with an empty cache.  O(1). *)

    val rank : t -> bool -> int -> int
    (** Same contract as the bitvector's [rank]. *)

    val access_rank : t -> int -> bool * int
    (** Same contract as the bitvector's [access_rank]. *)
  end
end

module Make (_ : CODEC) : S
