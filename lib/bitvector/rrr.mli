(** RRR compressed static bitvector (Raman–Raman–Rao [22]).

    The bitvector is split into blocks of 62 bits.  Each block is encoded
    as a 6-bit class (its popcount) plus a variable-length offset: the
    index of the block's bit pattern in the enumeration of all 62-bit
    patterns of that class (combinatorial number system).  Superblocks of
    16 blocks carry absolute rank and offset-stream position samples.

    Space is [B(m,n) + O(n / 16) + directories] bits — entropy-compressed —
    with O(1)-block rank/select walks (at most 16 class reads per query)
    exactly as required by Sections 3 and 4.1 of the paper.

    {!Iter} provides the sequential O(1)-amortized bit iterator needed by
    the Section 5 range algorithms. *)

type t

include Fid.STATIC with type t := t

val of_bitbuf : Wt_bits.Bitbuf.t -> t
val of_string : string -> t

val zeros : t -> int

val access_rank : t -> int -> bool * int
(** [access_rank t pos] is [(b, rank t b pos)] with [b = access t pos],
    decoding the block once. *)

val to_bitbuf : t -> Wt_bits.Bitbuf.t
(** Decode the whole bitvector back to a buffer. *)

val block_bits : int
(** The block size (62). *)

(** Resumable construction, for the Section 4.1 de-amortization: encode a
    filled segment a few blocks at a time, interleaved with appends. *)
module Builder : sig
  type rrr := t
  type t

  val create : Wt_bits.Bitbuf.t -> t
  (** Snapshot the buffer reference (the caller must not mutate it until
      [finalize]). *)

  val step : t -> int -> unit
  (** [step b k] encodes up to [k] further blocks (62 bits each). *)

  val finished : t -> bool

  val finalize : t -> rrr
  (** Requires [finished]. *)
end

(** Rank cursor for batched queries: caches the last decoded block and
    the rank/offset-stream prefix sums before it, so a query landing in
    the cached block costs one in-block popcount and a short forward
    step walks only the classes in between.  Any position order is
    correct; monotone non-decreasing positions are the all-hit fast
    path.  Cursor queries count as [Rrr_rank]/[Rrr_access] plus a
    [Bv_cursor_hit] or [Bv_cursor_miss]. *)
module Cursor : sig
  type bv := t
  type t

  val create : bv -> t
  (** A fresh cursor with an empty cache.  O(1). *)

  val rank : t -> bool -> int -> int
  (** Same contract as the bitvector's [rank]. *)

  val access_rank : t -> int -> bool * int
  (** Same contract as the bitvector's [access_rank]. *)
end

module Iter : sig
  type bv := t
  type t

  val create : bv -> int -> t
  (** [create bv pos] is an iterator positioned at [pos]
      ([0 <= pos <= length bv]). *)

  val next : t -> bool
  (** Return the bit under the cursor and advance.  Amortized O(1): blocks
      are decoded once per 62 consumed bits.  Raises [Invalid_argument] at
      the end of the bitvector. *)

  val pos : t -> int
  val has_next : t -> bool
end

val pp : Format.formatter -> t -> unit

(** Flat serialized form: the same blocks and directories in one
    contiguous byte blob, queried in place through {!Wt_bits.Membuf} —
    the inline bitvector encoding of the format-v3 arena.  [append]
    serializes a built bitvector; [of_membuf] opens a view at a byte
    offset with no decoding.  Queries hit the same [Rrr_*] /
    [Bv_cursor_*] probes as the pointer form. *)
module Flat : sig
  type rrr := t
  type t

  val append : Buffer.t -> rrr -> unit
  (** Serialize the blob (self-delimiting given its base offset). *)

  val of_membuf : Wt_bits.Membuf.t -> int -> t
  (** [of_membuf mb base] views the blob starting at byte [base].
      Raises [Invalid_argument] on a structurally corrupt blob; all
      subsequent reads are bounds-checked. *)

  val length : t -> int
  val ones : t -> int
  val zeros : t -> int

  val size : t -> int
  (** Blob size in bytes. *)

  val space_bits : t -> int

  val rank : t -> bool -> int -> int
  val select : t -> bool -> int -> int
  val access : t -> int -> bool
  val access_rank : t -> int -> bool * int

  module Cursor : sig
    type bv := t
    type t

    val create : bv -> t
    val rank : t -> bool -> int -> int
    val access_rank : t -> int -> bool * int
  end

  module Iter : sig
    type bv := t
    type t

    val create : bv -> int -> t
    val next : t -> bool
    val pos : t -> int
    val has_next : t -> bool
  end
end
