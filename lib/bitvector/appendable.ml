module Bitbuf = Wt_bits.Bitbuf
module Broadword = Wt_bits.Broadword
module Probe = Wt_obs.Probe

let seg_bits = 4096
let word_bits = 56
let tail_words = (seg_bits / word_bits) + 2

(* Blocks of RRR construction performed per append while a segment is
   pending.  A segment has seg_bits/62 = 67 blocks, so construction
   finishes within ~34 appends — far inside the seg_bits appends before
   the next segment fills, as the de-amortization argument requires. *)
let build_steps = 2

(* A filled segment whose RRR encoding is still being constructed
   incrementally (Section 4.1's partial rebuilding): queries are served
   from the raw bits until the builder finishes. *)
type pending = {
  raw : Bitbuf.t;
  raw_cum : int array; (* ones before each 56-bit word *)
  raw_ones : int;
  builder : Rrr.Builder.t;
}

type t = {
  offset_bit : bool; (* virtual constant prefix: Init's "left offset" *)
  offset_len : int;
  mutable segments : Rrr.t array; (* frozen segments of exactly seg_bits *)
  mutable nsegs : int;
  mutable cum_ones : int array; (* ones before segment i; length >= nsegs+1 *)
  mutable pending : pending option;
  mutable tail : Bitbuf.t;
  mutable tail_ones : int;
  mutable tail_cum : int array; (* ones before each 56-bit tail word; grows *)
}

let create_with offset_bit offset_len =
  {
    offset_bit;
    offset_len;
    segments = [||];
    nsegs = 0;
    cum_ones = Array.make 8 0;
    pending = None;
    tail = Bitbuf.create ~capacity_bits:128 ();
    tail_ones = 0;
    tail_cum = Array.make 4 0;
  }

let create () = create_with false 0

let init b n =
  if n < 0 then invalid_arg "Appendable.init";
  create_with b n

let pending_bits t = match t.pending with None -> 0 | Some _ -> seg_bits
let pending_ones t = match t.pending with None -> 0 | Some p -> p.raw_ones
let phys_length t = (t.nsegs * seg_bits) + pending_bits t + Bitbuf.length t.tail
let length t = t.offset_len + phys_length t

let ones t =
  (if t.offset_bit then t.offset_len else 0)
  + t.cum_ones.(t.nsegs) + pending_ones t + t.tail_ones

let zeros t = length t - ones t
let is_constant t = ones t = 0 || ones t = length t

(* ------------------------------------------------------------------ *)
(* Raw-buffer helpers shared by the tail and the pending segment:
   [cum.(w)] holds the ones before word [w]. *)

let buf_rank1 buf cum pos =
  let w = pos / word_bits in
  let r = pos mod word_bits in
  cum.(w) + if r = 0 then 0 else Broadword.popcount (Bitbuf.get_bits buf (pos - r) r)

let buf_select buf cum b k =
  let len = Bitbuf.length buf in
  let nwords = (len + word_bits - 1) / word_bits in
  let count_before w = if b then cum.(w) else (w * word_bits) - cum.(w) in
  let lo = ref 0 and hi = ref (max nwords 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if count_before mid <= k then lo := mid else hi := mid
  done;
  let w = !lo in
  let wpos = w * word_bits in
  let wlen = min word_bits (len - wpos) in
  let bits = Bitbuf.get_bits buf wpos wlen in
  let k' = k - count_before w in
  wpos
  + if b then Broadword.select_in_word bits k' else Broadword.select0_in_word bits wlen k'

(* ------------------------------------------------------------------ *)
(* Structural transitions *)

let grow_segments t =
  if t.nsegs = Array.length t.segments then begin
    let cap = max 4 (t.nsegs * 2) in
    let dummy = Rrr.of_bitbuf (Bitbuf.create ()) in
    let nsegs_arr = Array.make cap dummy in
    Array.blit t.segments 0 nsegs_arr 0 t.nsegs;
    t.segments <- nsegs_arr;
    let ncum = Array.make (cap + 1) 0 in
    Array.blit t.cum_ones 0 ncum 0 (t.nsegs + 1);
    t.cum_ones <- ncum
  end

let commit_pending t p =
  grow_segments t;
  t.segments.(t.nsegs) <- Rrr.Builder.finalize p.builder;
  t.cum_ones.(t.nsegs + 1) <- t.cum_ones.(t.nsegs) + p.raw_ones;
  t.nsegs <- t.nsegs + 1;
  t.pending <- None

let advance_pending t =
  match t.pending with
  | None -> ()
  | Some p ->
      Rrr.Builder.step p.builder build_steps;
      if Rrr.Builder.finished p.builder then commit_pending t p

(* The tail reached seg_bits: move it to pending and start a fresh tail.
   O(1): the buffers are moved, not copied. *)
let retire_tail t =
  (match t.pending with
  | None -> ()
  | Some p ->
      (* cannot happen with build_steps >= 1 (construction finishes within
         ~34 appends, the next tail needs 4096); kept as a safety valve *)
      Rrr.Builder.step p.builder max_int;
      commit_pending t p);
  t.pending <-
    Some
      {
        raw = t.tail;
        raw_cum = t.tail_cum;
        raw_ones = t.tail_ones;
        builder = Rrr.Builder.create t.tail;
      };
  t.tail <- Bitbuf.create ~capacity_bits:128 ();
  t.tail_ones <- 0;
  t.tail_cum <- Array.make 4 0

let append t b =
  Probe.hit App_append;
  let tl = Bitbuf.length t.tail in
  Bitbuf.add t.tail b;
  if b then t.tail_ones <- t.tail_ones + 1;
  (* Record the cumulative count at the next word boundary. *)
  (if (tl + 1) mod word_bits = 0 then begin
     let w = (tl + 1) / word_bits in
     if w >= Array.length t.tail_cum then begin
       let bigger = Array.make (min tail_words (2 * (w + 1))) 0 in
       Array.blit t.tail_cum 0 bigger 0 (Array.length t.tail_cum);
       t.tail_cum <- bigger
     end;
     t.tail_cum.(w) <- t.tail_ones
   end);
  advance_pending t;
  if tl + 1 = seg_bits then retire_tail t

let of_bitbuf buf =
  let t = create () in
  let n = Bitbuf.length buf in
  for i = 0 to n - 1 do
    append t (Bitbuf.get buf i)
  done;
  t

(* ------------------------------------------------------------------ *)
(* Queries: the physical layout is
   [frozen segments][pending segment?][tail]. *)

let phys_rank1 t pos =
  let frozen = t.nsegs * seg_bits in
  if pos < frozen then begin
    let seg = pos / seg_bits in
    t.cum_ones.(seg) + Rrr.rank t.segments.(seg) true (pos mod seg_bits)
  end
  else begin
    match t.pending with
    | Some p when pos < frozen + seg_bits ->
        t.cum_ones.(t.nsegs) + buf_rank1 p.raw p.raw_cum (pos - frozen)
    | Some p ->
        t.cum_ones.(t.nsegs) + p.raw_ones
        + buf_rank1 t.tail t.tail_cum (pos - frozen - seg_bits)
    | None -> t.cum_ones.(t.nsegs) + buf_rank1 t.tail t.tail_cum (pos - frozen)
  end

let rank t b pos =
  Fid.check_rank_pos ~who:"Appendable" ~len:(length t) pos;
  Probe.hit App_rank;
  if pos <= t.offset_len then if b = t.offset_bit then pos else 0
  else begin
    let off_count = if b = t.offset_bit then t.offset_len else 0 in
    let p = pos - t.offset_len in
    let r1 = phys_rank1 t p in
    off_count + if b then r1 else p - r1
  end

let phys_access t pos =
  let frozen = t.nsegs * seg_bits in
  if pos < frozen then Rrr.access t.segments.(pos / seg_bits) (pos mod seg_bits)
  else begin
    match t.pending with
    | Some p when pos < frozen + seg_bits -> Bitbuf.get p.raw (pos - frozen)
    | Some _ -> Bitbuf.get t.tail (pos - frozen - seg_bits)
    | None -> Bitbuf.get t.tail (pos - frozen)
  end

let access t pos =
  Fid.check_access_pos ~who:"Appendable" ~len:(length t) pos;
  Probe.hit App_access;
  if pos < t.offset_len then t.offset_bit else phys_access t (pos - t.offset_len)

(* (bit at pos, rank of that bit before pos), sharing the block decode in
   the frozen-segment case. *)
let access_rank t pos =
  Fid.check_access_pos ~who:"Appendable" ~len:(length t) pos;
  Probe.hit App_access;
  if pos < t.offset_len then (t.offset_bit, pos)
  else begin
    let p = pos - t.offset_len in
    let frozen = t.nsegs * seg_bits in
    let b, r1 =
      if p < frozen then begin
        let seg = p / seg_bits in
        let b, rb = Rrr.access_rank t.segments.(seg) (p mod seg_bits) in
        let local1 = if b then rb else (p mod seg_bits) - rb in
        (b, t.cum_ones.(seg) + local1)
      end
      else (phys_access t p, phys_rank1 t p)
    in
    let off_count = if b = t.offset_bit then t.offset_len else 0 in
    (b, off_count + if b then r1 else p - r1)
  end

let phys_select t b k =
  let count_frozen i = if b then t.cum_ones.(i) else (i * seg_bits) - t.cum_ones.(i) in
  let in_frozen = count_frozen t.nsegs in
  if k < in_frozen then begin
    let lo = ref 0 and hi = ref t.nsegs in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if count_frozen mid <= k then lo := mid else hi := mid
    done;
    let seg = !lo in
    (seg * seg_bits) + Rrr.select t.segments.(seg) b (k - count_frozen seg)
  end
  else begin
    let k = k - in_frozen in
    match t.pending with
    | Some p ->
        let in_pending = if b then p.raw_ones else seg_bits - p.raw_ones in
        if k < in_pending then (t.nsegs * seg_bits) + buf_select p.raw p.raw_cum b k
        else
          ((t.nsegs + 1) * seg_bits) + buf_select t.tail t.tail_cum b (k - in_pending)
    | None -> (t.nsegs * seg_bits) + buf_select t.tail t.tail_cum b k
  end

let select t b k =
  let count = if b then ones t else zeros t in
  Fid.check_select_idx ~who:"Appendable" ~count k;
  Probe.hit App_select;
  if b = t.offset_bit && k < t.offset_len then k
  else begin
    let k' = if b = t.offset_bit then k - t.offset_len else k in
    t.offset_len + phys_select t b k'
  end

let space_bits t =
  let segs = ref 0 in
  for i = 0 to t.nsegs - 1 do
    segs := !segs + Rrr.space_bits t.segments.(i)
  done;
  (match t.pending with
  | None -> ()
  | Some p ->
      segs := !segs + Bitbuf.capacity_bits p.raw + (64 * Array.length p.raw_cum));
  !segs
  + Bitbuf.capacity_bits t.tail
  + (64 * (Array.length t.cum_ones + Array.length t.tail_cum + 8))

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  if t.offset_len < 0 then fail "negative offset";
  let cum = ref 0 in
  for i = 0 to t.nsegs - 1 do
    if t.cum_ones.(i) <> !cum then fail "segment cum_ones wrong at %d" i;
    if Rrr.length t.segments.(i) <> seg_bits then fail "segment %d wrong length" i;
    cum := !cum + Rrr.ones t.segments.(i)
  done;
  if t.cum_ones.(t.nsegs) <> !cum then fail "final cum_ones wrong";
  (match t.pending with
  | None -> ()
  | Some p ->
      if Bitbuf.length p.raw <> seg_bits then fail "pending wrong length";
      if Bitbuf.pop_count p.raw 0 seg_bits <> p.raw_ones then fail "pending ones wrong";
      for w = 0 to seg_bits / word_bits do
        if p.raw_cum.(w) <> Bitbuf.pop_count p.raw 0 (min (w * word_bits) seg_bits) then
          fail "pending cum wrong at %d" w
      done);
  let tones = Bitbuf.pop_count t.tail 0 (Bitbuf.length t.tail) in
  if tones <> t.tail_ones then fail "tail ones wrong";
  for w = 0 to Bitbuf.length t.tail / word_bits do
    let expect = Bitbuf.pop_count t.tail 0 (min (w * word_bits) (Bitbuf.length t.tail)) in
    if t.tail_cum.(w) <> expect then fail "tail cum wrong at word %d" w
  done

(* Rank cursor: the virtual offset prefix, the pending segment and the
   tail are already O(1) per query (constant / word-cumulative counts),
   so the cache lives entirely in the frozen part — an {!Rrr.Cursor}
   into the segment last queried.  Frozen segments are immutable, so the
   cursor stays valid across concurrent appends. *)
module Cursor = struct
  type nonrec bv = t [@@warning "-34"]

  type t = {
    bv : bv;
    mutable seg : int; (* segment index of [sub], or -1 *)
    mutable sub : Rrr.Cursor.t option;
  }

  let create bv = { bv; seg = -1; sub = None }

  let seg_cursor t seg =
    match t.sub with
    | Some c when t.seg = seg -> c
    | _ ->
        let c = Rrr.Cursor.create t.bv.segments.(seg) in
        t.seg <- seg;
        t.sub <- Some c;
        c

  (* Physical rank1, routing frozen-segment work through the cursor. *)
  let cursed_rank1 t p =
    let bv = t.bv in
    if p < bv.nsegs * seg_bits then begin
      let seg = p / seg_bits in
      bv.cum_ones.(seg) + Rrr.Cursor.rank (seg_cursor t seg) true (p mod seg_bits)
    end
    else phys_rank1 bv p

  let rank t b pos =
    let bv = t.bv in
    Fid.check_rank_pos ~who:"Appendable.Cursor" ~len:(length bv) pos;
    Probe.hit App_rank;
    if pos <= bv.offset_len then if b = bv.offset_bit then pos else 0
    else begin
      let off_count = if b = bv.offset_bit then bv.offset_len else 0 in
      let p = pos - bv.offset_len in
      let r1 = cursed_rank1 t p in
      off_count + if b then r1 else p - r1
    end

  let access_rank t pos =
    let bv = t.bv in
    Fid.check_access_pos ~who:"Appendable.Cursor" ~len:(length bv) pos;
    Probe.hit App_access;
    if pos < bv.offset_len then (bv.offset_bit, pos)
    else begin
      let p = pos - bv.offset_len in
      let b, r1 =
        if p < bv.nsegs * seg_bits then begin
          let seg = p / seg_bits in
          let b, rb = Rrr.Cursor.access_rank (seg_cursor t seg) (p mod seg_bits) in
          let local1 = if b then rb else (p mod seg_bits) - rb in
          (b, bv.cum_ones.(seg) + local1)
        end
        else (phys_access bv p, phys_rank1 bv p)
      in
      let off_count = if b = bv.offset_bit then bv.offset_len else 0 in
      (b, off_count + if b then r1 else p - r1)
    end
end

module Iter = struct
  type nonrec bv = t [@@warning "-34"]

  type t = {
    bv : bv;
    mutable cursor : int;
    mutable seg : int; (* segment index of the live sub-iterator, or -1 *)
    mutable sub : Rrr.Iter.t option;
  }

  let create bv pos =
    if pos < 0 || pos > length bv then invalid_arg "Appendable.Iter.create";
    { bv; cursor = pos; seg = -1; sub = None }

  let pos t = t.cursor
  let has_next t = t.cursor < length t.bv

  let next t =
    if not (has_next t) then invalid_arg "Appendable.Iter.next: exhausted";
    let bv = t.bv in
    let b =
      if t.cursor < bv.offset_len then bv.offset_bit
      else begin
        let p = t.cursor - bv.offset_len in
        let frozen = bv.nsegs * seg_bits in
        if p >= frozen then phys_access bv p
        else begin
          let seg = p / seg_bits in
          (match t.sub with
          | Some it when t.seg = seg && Rrr.Iter.pos it = p mod seg_bits -> ()
          | _ ->
              t.seg <- seg;
              t.sub <- Some (Rrr.Iter.create bv.segments.(seg) (p mod seg_bits)));
          match t.sub with Some it -> Rrr.Iter.next it | None -> assert false
        end
      end
    in
    t.cursor <- t.cursor + 1;
    b
  end
