module Bitbuf = Wt_bits.Bitbuf
module Rle = Wt_bits.Rle
module Probe = Wt_obs.Probe

module type CODEC = sig
  val name : string
  val encode : Rle.runs -> Bitbuf.t
  val decode : total:int -> ones:int -> Bitbuf.t -> Rle.runs
  val reader : total:int -> ones:int -> Bitbuf.t -> unit -> bool * int
  val encoded_length : Rle.runs -> int
end

module type S = sig
  type t

  include Fid.DYNAMIC with type t := t

  val create : unit -> t
  val init : bool -> int -> t
  val of_bits : bool array -> t
  val append : t -> bool -> unit
  val zeros : t -> int
  val is_constant : t -> bool
  val access_rank : t -> int -> bool * int

  val snapshot : t -> t
  (** O(1) frozen copy.  Tree nodes are immutable (every edit path-copies
      down from the root), so the copy shares the entire tree; subsequent
      [insert]/[delete]/[append] on the original replace its root and
      leave the snapshot untouched. *)

  val check_invariants : t -> unit
  val leaf_count : t -> int

  module Iter : sig
    type bv := t
    type t

    val create : bv -> int -> t
    val next : t -> bool
    val has_next : t -> bool
    val pos : t -> int
  end

  module Cursor : sig
    type bv := t
    type t

    val create : bv -> t
    val rank : t -> bool -> int -> int
    val access_rank : t -> int -> bool * int
  end
end

(* ------------------------------------------------------------------ *)
(* Run-sequence edits.  Runs alternate bit values, so the neighbours of a
   run always carry the complementary bit; this keeps the case analysis
   below small. *)

let bit_of_run first_bit i = if i land 1 = 0 then first_bit else not first_bit

(* Index of the run containing bit position [pos], together with the
   offset of [pos] inside it.  [pos] may equal the total length, in which
   case the last run index and its length are returned. *)
let locate (runs : Rle.runs) pos =
  let n = Array.length runs.lengths in
  let rec go i start =
    if i >= n then invalid_arg "Chunk_tree.locate: position out of range"
    else
      let len = runs.lengths.(i) in
      if pos < start + len || (i = n - 1 && pos = start + len) then (i, pos - start)
      else go (i + 1) (start + len)
  in
  go 0 0

let runs_insert (runs : Rle.runs) pos b : Rle.runs =
  let n = Array.length runs.lengths in
  if n = 0 then { first_bit = b; lengths = [| 1 |] }
  else begin
    let i, o = locate runs pos in
    let rb = bit_of_run runs.first_bit i in
    let lengths = runs.lengths in
    if rb = b then begin
      let lengths = Array.copy lengths in
      lengths.(i) <- lengths.(i) + 1;
      { runs with lengths }
    end
    else if o = 0 then
      if i = 0 then
        (* New run of the complementary bit in front. *)
        { first_bit = b; lengths = Array.append [| 1 |] lengths }
      else begin
        let lengths = Array.copy lengths in
        lengths.(i - 1) <- lengths.(i - 1) + 1;
        { runs with lengths }
      end
    else if o = lengths.(i) then
      (* Only possible at the very end of the sequence (locate returns an
         interior position otherwise). *)
      { runs with lengths = Array.append lengths [| 1 |] }
    else begin
      (* Split run [i] at offset [o]. *)
      let out = Array.make (n + 2) 0 in
      Array.blit lengths 0 out 0 i;
      out.(i) <- o;
      out.(i + 1) <- 1;
      out.(i + 2) <- lengths.(i) - o;
      Array.blit lengths (i + 1) out (i + 3) (n - i - 1);
      { runs with lengths = out }
    end
  end

let runs_delete (runs : Rle.runs) pos : Rle.runs =
  let n = Array.length runs.lengths in
  let i, o = locate runs pos in
  let lengths = runs.lengths in
  if o >= lengths.(i) then invalid_arg "Chunk_tree.runs_delete: out of range";
  if lengths.(i) > 1 then begin
    let lengths = Array.copy lengths in
    lengths.(i) <- lengths.(i) - 1;
    { runs with lengths }
  end
  else if n = 1 then { first_bit = false; lengths = [||] }
  else if i = 0 then { first_bit = not runs.first_bit; lengths = Array.sub lengths 1 (n - 1) }
  else if i = n - 1 then { runs with lengths = Array.sub lengths 0 (n - 1) }
  else begin
    (* Interior singleton run vanishes; its neighbours carry equal bits and
       coalesce. *)
    let out = Array.make (n - 2) 0 in
    Array.blit lengths 0 out 0 (i - 1);
    out.(i - 1) <- lengths.(i - 1) + lengths.(i + 1);
    Array.blit lengths (i + 2) out i (n - i - 2);
    { runs with lengths = out }
  end

let runs_concat (a : Rle.runs) (b : Rle.runs) : Rle.runs =
  let na = Array.length a.lengths and nb = Array.length b.lengths in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let last_a = bit_of_run a.first_bit (na - 1) in
    if last_a <> b.first_bit then
      { a with lengths = Array.append a.lengths b.lengths }
    else begin
      let out = Array.make (na + nb - 1) 0 in
      Array.blit a.lengths 0 out 0 na;
      out.(na - 1) <- out.(na - 1) + b.lengths.(0);
      Array.blit b.lengths 1 out na (nb - 1);
      { a with lengths = out }
    end
  end

(* ------------------------------------------------------------------ *)

module Make (Codec : CODEC) : S = struct
  (* Leaf sizing, in encoded bits.  [max_leaf] bounds re-encode work per
     update; [min_leaf] triggers merging so leaf count stays proportional
     to total encoded size. *)
  (* Leaf sizing is a time/space knob: smaller leaves cost fewer decoded
     runs per point query but more tree-node overhead.  512/96 keeps the
     dynamic Wavelet Trie within ~4-5x of LB on skewed workloads while
     halving query time vs 1024-bit leaves. *)
  let max_leaf = 512
  let min_leaf = 96

  type node =
    | Leaf of { enc : Bitbuf.t; bits : int; ones : int }
    | Node of { l : node; r : node; bits : int; ones : int; height : int }

  type t = { mutable root : node option }

  let bits_of = function Leaf l -> l.bits | Node n -> n.bits
  let ones_of = function Leaf l -> l.ones | Node n -> n.ones
  let height_of = function Leaf _ -> 1 | Node n -> n.height

  let leaf_of_runs runs =
    Leaf { enc = Codec.encode runs; bits = Rle.total_bits runs; ones = Rle.ones runs }

  let decode_leaf = function
    | Leaf { enc; bits; ones } -> Codec.decode ~total:bits ~ones enc
    | Node _ -> invalid_arg "Chunk_tree.decode_leaf"

  let mk l r =
    Node
      {
        l;
        r;
        bits = bits_of l + bits_of r;
        ones = ones_of l + ones_of r;
        height = 1 + max (height_of l) (height_of r);
      }

  (* Standard AVL rebalancing: the children's heights differ by at most 2
     after one structural edit below. *)
  let balance l r =
    let hl = height_of l and hr = height_of r in
    if hl > hr + 1 then
      match l with
      | Leaf _ -> mk l r (* leaves have height 1; cannot happen *)
      | Node { l = ll; r = lr; _ } ->
          if height_of ll >= height_of lr then mk ll (mk lr r)
          else begin
            match lr with
            | Leaf _ -> mk ll (mk lr r)
            | Node { l = lrl; r = lrr; _ } -> mk (mk ll lrl) (mk lrr r)
          end
    else if hr > hl + 1 then
      match r with
      | Leaf _ -> mk l r
      | Node { l = rl; r = rr; _ } ->
          if height_of rr >= height_of rl then mk (mk l rl) rr
          else begin
            match rl with
            | Leaf _ -> mk (mk l rl) rr
            | Node { l = rll; r = rlr; _ } -> mk (mk l rll) (mk rlr rr)
          end
    else mk l r

  (* Split an oversized run sequence into two roughly equal halves by
     encoded size, both non-empty. *)
  let split_runs (runs : Rle.runs) =
    let n = Array.length runs.lengths in
    assert (n >= 1);
    if n = 1 then begin
      (* A single huge run: split by bit count. *)
      let len = runs.lengths.(0) in
      let half = max 1 (len / 2) in
      ( { runs with lengths = [| half |] },
        { Rle.first_bit = runs.first_bit; lengths = [| len - half |] } )
    end
    else begin
      let total = Rle.total_bits runs in
      let acc = ref 0 in
      let cut = ref 0 in
      (* Codec-neutral heuristic: cut at half the described bits. *)
      (try
         for i = 0 to n - 2 do
           acc := !acc + runs.lengths.(i);
           if !acc * 2 >= total then begin
             cut := i + 1;
             raise Exit
           end
         done;
         cut := n - 1
       with Exit -> ());
      let cut = max 1 (min !cut (n - 1)) in
      ( { runs with lengths = Array.sub runs.lengths 0 cut },
        {
          Rle.first_bit = bit_of_run runs.first_bit cut;
          lengths = Array.sub runs.lengths cut (n - cut);
        } )
    end

  (* Rebuild a node from an edited run sequence, splitting as needed. *)
  let rec node_of_runs runs =
    if Codec.encoded_length runs <= max_leaf then leaf_of_runs runs
    else begin
      let a, b = split_runs runs in
      balance (node_of_runs a) (node_of_runs b)
    end

  (* Remove the leftmost leaf of a subtree; returns its runs and what is
     left of the subtree. *)
  let rec pop_first_leaf = function
    | Leaf _ as lf -> (decode_leaf lf, None)
    | Node { l; r; _ } -> (
        match pop_first_leaf l with
        | runs, None -> (runs, Some r)
        | runs, Some l' -> (runs, Some (balance l' r)))

  let rec pop_last_leaf = function
    | Leaf _ as lf -> (decode_leaf lf, None)
    | Node { l; r; _ } -> (
        match pop_last_leaf r with
        | runs, None -> (runs, Some l)
        | runs, Some r' -> (runs, Some (balance l r')))

  let is_underfull = function
    | Leaf { enc; _ } -> Bitbuf.length enc < min_leaf
    | Node _ -> false

  (* Join two sibling subtrees after an edit, merging an underfull leaf on
     the edited side with its neighbour leaf from the other side. *)
  let join_fix l r =
    if is_underfull l then begin
      let runs_r, rest = pop_first_leaf r in
      let merged = node_of_runs (runs_concat (decode_leaf l) runs_r) in
      match rest with None -> merged | Some r' -> balance merged r'
    end
    else if is_underfull r then begin
      let runs_l, rest = pop_last_leaf l in
      let merged = node_of_runs (runs_concat runs_l (decode_leaf r)) in
      match rest with None -> merged | Some l' -> balance l' merged
    end
    else balance l r

  let rec insert_node node pos b =
    match node with
    | Leaf _ -> node_of_runs (runs_insert (decode_leaf node) pos b)
    | Node { l; r; _ } ->
        let bl = bits_of l in
        if pos < bl then balance (insert_node l pos b) r
        else balance l (insert_node r (pos - bl) b)

  (* Returns [None] when the subtree becomes empty. *)
  let rec delete_node node pos =
    match node with
    | Leaf _ ->
        let runs = runs_delete (decode_leaf node) pos in
        if Rle.total_bits runs = 0 then None else Some (leaf_of_runs runs)
    | Node { l; r; _ } -> (
        let bl = bits_of l in
        if pos < bl then
          match delete_node l pos with
          | None -> Some r
          | Some l' -> Some (join_fix l' r)
        else
          match delete_node r (pos - bl) with
          | None -> Some l
          | Some r' -> Some (join_fix l r'))

  (* Streaming leaf scans: decode runs lazily with early exit, no array
     materialization (the hot path of every point query). *)

  let leaf_reader = function
    | Leaf { enc; bits; ones } -> Codec.reader ~total:bits ~ones enc
    | Node _ -> invalid_arg "Chunk_tree.leaf_reader"

  (* (bit at pos, rank of that bit before pos) within a leaf. *)
  let leaf_access_rank leaf pos =
    let next = leaf_reader leaf in
    let rec go start r1 =
      let b, len = next () in
      if pos < start + len then
        if b then (true, r1 + (pos - start)) else (false, start - r1 + (pos - start))
      else go (start + len) (if b then r1 + len else r1)
    in
    go 0 0

  let leaf_rank1 leaf pos =
    let next = leaf_reader leaf in
    let rec go start r1 =
      if start >= pos then r1
      else begin
        let b, len = next () in
        let used = min len (pos - start) in
        go (start + len) (if b then r1 + used else r1)
      end
    in
    go 0 0

  let leaf_select leaf b k =
    let next = leaf_reader leaf in
    let rec go start seen =
      let rb, len = next () in
      if rb = b && k < seen + len then start + (k - seen)
      else go (start + len) (if rb = b then seen + len else seen)
    in
    go 0 0

  let rec access_node node pos =
    match node with
    | Leaf _ -> fst (leaf_access_rank node pos)
    | Node { l; r; _ } ->
        let bl = bits_of l in
        if pos < bl then access_node l pos else access_node r (pos - bl)

  let rec rank1_node node pos =
    match node with
    | Leaf _ -> leaf_rank1 node pos
    | Node { l; r; _ } ->
        let bl = bits_of l in
        if pos <= bl then rank1_node l pos
        else ones_of l + rank1_node r (pos - bl)

  (* Single descent computing (access pos, rank (access pos) pos). *)
  let rec access_rank_node node pos acc1 acc0 =
    match node with
    | Leaf _ ->
        let b, r = leaf_access_rank node pos in
        (b, (r + if b then acc1 else acc0))
    | Node { l; r; _ } ->
        let bl = bits_of l in
        if pos < bl then access_rank_node l pos acc1 acc0
        else access_rank_node r (pos - bl) (acc1 + ones_of l) (acc0 + bl - ones_of l)

  let rec select_node node b k =
    match node with
    | Leaf _ -> leaf_select node b k
    | Node { l; r; _ } ->
        let cb = if b then ones_of l else bits_of l - ones_of l in
        if k < cb then select_node l b k else bits_of l + select_node r b (k - cb)

  (* Public interface *)

  let create () = { root = None }

  (* Every edit installs a freshly allocated [Some root] block, so the
     snapshot's saved option is physically distinct from any post-edit
     root: sharing is read-only. *)
  let snapshot t = { root = t.root }

  let length t = match t.root with None -> 0 | Some n -> bits_of n
  let ones t = match t.root with None -> 0 | Some n -> ones_of n
  let zeros t = length t - ones t
  let is_constant t = ones t = 0 || ones t = length t

  let init b n =
    if n < 0 then invalid_arg "Chunk_tree.init";
    if n = 0 then create ()
    else { root = Some (node_of_runs { Rle.first_bit = b; lengths = [| n |] }) }

  let of_bits bits =
    if Array.length bits = 0 then create ()
    else { root = Some (node_of_runs (Rle.of_bits bits)) }

  let access t pos =
    Fid.check_access_pos ~who:Codec.name ~len:(length t) pos;
    Probe.hit Dbv_access;
    match t.root with None -> assert false | Some n -> access_node n pos

  let access_rank t pos =
    Fid.check_access_pos ~who:Codec.name ~len:(length t) pos;
    Probe.hit Dbv_access;
    match t.root with
    | None -> assert false
    | Some n -> access_rank_node n pos 0 0

  let rank t b pos =
    Fid.check_rank_pos ~who:Codec.name ~len:(length t) pos;
    Probe.hit Dbv_rank;
    match t.root with
    | None -> 0
    | Some n ->
        let r1 = rank1_node n pos in
        if b then r1 else pos - r1

  let select t b k =
    let count = if b then ones t else zeros t in
    Fid.check_select_idx ~who:Codec.name ~count k;
    Probe.hit Dbv_select;
    match t.root with None -> assert false | Some n -> select_node n b k

  let insert t pos b =
    let len = length t in
    if pos < 0 || pos > len then invalid_arg (Codec.name ^ ".insert: out of range");
    Probe.hit Dbv_insert;
    match t.root with
    | None -> t.root <- Some (leaf_of_runs { Rle.first_bit = b; lengths = [| 1 |] })
    | Some n -> t.root <- Some (insert_node n pos b)

  let append t b = insert t (length t) b

  let delete t pos =
    let len = length t in
    if pos < 0 || pos >= len then invalid_arg (Codec.name ^ ".delete: out of range");
    Probe.hit Dbv_delete;
    match t.root with
    | None -> assert false
    | Some n -> t.root <- delete_node n pos

  (* One heap block per node: Leaf {enc; bits; ones} and
     Node {l; r; bits; ones; height}; the root is a one-field record. *)
  let leaf_overhead = Wt_obs.Space.block_bits ~fields:3
  let node_overhead = Wt_obs.Space.block_bits ~fields:5
  let root_overhead = Wt_obs.Space.block_bits ~fields:1

  let rec space_node = function
    | Leaf { enc; _ } -> Bitbuf.length enc + leaf_overhead
    | Node { l; r; _ } -> space_node l + space_node r + node_overhead

  let space_bits t =
    match t.root with None -> root_overhead | Some n -> root_overhead + space_node n

  let rec leaf_count_node = function
    | Leaf _ -> 1
    | Node { l; r; _ } -> leaf_count_node l + leaf_count_node r

  let leaf_count t = match t.root with None -> 0 | Some n -> leaf_count_node n

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let rec go = function
      | Leaf { enc; bits; ones } ->
          if bits <= 0 then fail "empty leaf";
          let runs = Codec.decode ~total:bits ~ones enc in
          Rle.check runs;
          if Rle.total_bits runs <> bits then fail "leaf bits cache wrong";
          if Rle.ones runs <> ones then fail "leaf ones cache wrong";
          if Bitbuf.length enc > max_leaf then
            fail "oversized leaf: %d > %d" (Bitbuf.length enc) max_leaf;
          (1, bits, ones)
      | Node { l; r; bits; ones; height } ->
          let hl, bl, ol = go l in
          let hr, br, or_ = go r in
          if abs (hl - hr) > 1 then fail "AVL violation: %d vs %d" hl hr;
          if height <> 1 + max hl hr then fail "height cache wrong";
          if bits <> bl + br then fail "bits cache wrong";
          if ones <> ol + or_ then fail "ones cache wrong";
          (height, bits, ones)
    in
    match t.root with
    | None -> ()
    | Some n -> ignore (go n)

  module Iter = struct
    type nonrec bv = t [@@warning "-34"]

    type t = {
      mutable stack : node list; (* subtrees to the right, nearest first *)
      mutable read : unit -> bool * int; (* run reader of the current leaf *)
      mutable run_bit : bool;
      mutable run_left : int; (* bits left in the current run *)
      mutable leaf_left : int; (* bits left in the current leaf *)
      mutable cursor : int;
      limit : int;
    }

    let rec descend stack node pos =
      match node with
      | Leaf _ -> (stack, node, pos)
      | Node { l; r; _ } ->
          let bl = bits_of l in
          if pos < bl then descend (r :: stack) l pos else descend stack r (pos - bl)

    (* Start reading [leaf] from local offset [pos]. *)
    let enter it leaf pos =
      let read = leaf_reader leaf in
      it.read <- read;
      it.leaf_left <- bits_of leaf - pos;
      (* skip [pos] bits *)
      let rec skip pos =
        if pos = 0 then begin
          it.run_left <- 0 (* force a read on the first next () *)
        end
        else begin
          let b, len = read () in
          if pos < len then begin
            it.run_bit <- b;
            it.run_left <- len - pos
          end
          else skip (pos - len)
        end
      in
      skip pos

    let create bv pos =
      let limit = match bv.root with None -> 0 | Some n -> bits_of n in
      if pos < 0 || pos > limit then invalid_arg (Codec.name ^ ".Iter.create");
      let it =
        {
          stack = [];
          read = (fun () -> invalid_arg (Codec.name ^ ".Iter: empty"));
          run_bit = false;
          run_left = 0;
          leaf_left = 0;
          cursor = pos;
          limit;
        }
      in
      (match bv.root with
      | None -> ()
      | Some root ->
          if pos < limit then begin
            let stack, leaf, local = descend [] root pos in
            it.stack <- stack;
            enter it leaf local
          end);
      it

    let pos it = it.cursor
    let has_next it = it.cursor < it.limit

    let next it =
      if not (has_next it) then invalid_arg (Codec.name ^ ".Iter.next: exhausted");
      if it.leaf_left = 0 then begin
        match it.stack with
        | [] -> invalid_arg (Codec.name ^ ".Iter.next: internal")
        | subtree :: rest ->
            let stack, leaf, local = descend rest subtree 0 in
            it.stack <- stack;
            enter it leaf local
      end;
      if it.run_left = 0 then begin
        let b, len = it.read () in
        it.run_bit <- b;
        it.run_left <- len
      end;
      it.run_left <- it.run_left - 1;
      it.leaf_left <- it.leaf_left - 1;
      it.cursor <- it.cursor + 1;
      it.run_bit
  end

  (* Rank cursor: caches the last visited leaf fully decoded — run start
     offsets and cumulative one-counts — plus the bit and one counts
     before it, so queries landing in the cached leaf skip both the
     O(log n) descent and the streaming run decode.  Tree nodes are
     immutable (updates replace the root), and the cache revalidates
     itself against the current root on every use (a physical-equality
     check), so a cursor stays correct across interleaved edits — a
     post-edit query simply pays one reload. *)
  module Cursor = struct
    type nonrec bv = t [@@warning "-34"]

    type t = {
      bv : bv;
      mutable leaf_start : int; (* global position of the cached leaf *)
      mutable leaf_bits : int; (* 0 = nothing cached *)
      mutable leaf_ones : int;
      mutable ones_before : int; (* ones in [0, leaf_start) *)
      mutable starts : int array; (* run start offsets; length nruns+1 *)
      mutable cums : int array; (* ones before each run; length nruns+1 *)
      mutable first_bit : bool;
      mutable nruns : int;
      mutable run : int; (* last run index used, for monotone advance *)
      mutable at : node option; (* root the cache was decoded from *)
    }

    let create bv =
      {
        bv;
        leaf_start = 0;
        leaf_bits = 0;
        leaf_ones = 0;
        ones_before = 0;
        starts = [||];
        cums = [||];
        first_bit = false;
        nruns = 0;
        run = 0;
        at = None;
      }

    (* Every edit installs a freshly allocated [Some root] block, so
       option-level physical equality against the root seen at [load]
       time is a sound and complete cache-validity check: a stale cache
       can never be mistaken for fresh. *)
    let[@inline] cache_fresh it = it.leaf_bits > 0 && it.at == it.bv.root

    (* Descend to the leaf containing [pos] and decode it into the cache.
       [pos] may equal the total length (rank at the end): the rightmost
       leaf is cached then. *)
    let load it pos =
      match it.bv.root with
      | None -> invalid_arg (Codec.name ^ ".Cursor: empty bitvector")
      | Some root ->
          let rec go node start ones =
            match node with
            | Leaf _ as lf ->
                let runs = decode_leaf lf in
                let n = Array.length runs.Rle.lengths in
                let starts = Array.make (n + 1) 0 in
                let cums = Array.make (n + 1) 0 in
                for i = 0 to n - 1 do
                  let len = runs.Rle.lengths.(i) in
                  starts.(i + 1) <- starts.(i) + len;
                  cums.(i + 1) <-
                    (cums.(i) + if bit_of_run runs.Rle.first_bit i then len else 0)
                done;
                it.leaf_start <- start;
                it.leaf_bits <- bits_of lf;
                it.leaf_ones <- ones_of lf;
                it.ones_before <- ones;
                it.starts <- starts;
                it.cums <- cums;
                it.first_bit <- runs.Rle.first_bit;
                it.nruns <- n;
                it.run <- 0
            | Node { l; r; _ } ->
                let bl = bits_of l in
                if pos - start < bl then go l start ones
                else go r (start + bl) (ones + ones_of l)
          in
          go root 0 0;
          it.at <- it.bv.root

    let seek it pos =
      if
        cache_fresh it
        && pos >= it.leaf_start
        && pos <= it.leaf_start + it.leaf_bits
      then Probe.hit Bv_cursor_hit
      else begin
        Probe.hit Bv_cursor_miss;
        load it pos
      end

    (* Run containing local offset [o] ([o < leaf_bits]), advancing the
       cached index forward and rewinding on a backward step. *)
    let run_of it o =
      if o < it.starts.(it.run) then it.run <- 0;
      while it.run + 1 < it.nruns && o >= it.starts.(it.run + 1) do
        it.run <- it.run + 1
      done;
      it.run

    let rank1 it pos =
      if pos <= 0 then 0
      else begin
        seek it pos;
        let o = pos - it.leaf_start in
        if o >= it.leaf_bits then it.ones_before + it.leaf_ones
        else begin
          let i = run_of it o in
          it.ones_before + it.cums.(i)
          + (if bit_of_run it.first_bit i then o - it.starts.(i) else 0)
        end
      end

    let rank it b pos =
      Fid.check_rank_pos ~who:(Codec.name ^ ".Cursor") ~len:(length it.bv) pos;
      Probe.hit Dbv_rank;
      let r1 = rank1 it pos in
      if b then r1 else pos - r1

    let access_rank it pos =
      Fid.check_access_pos ~who:(Codec.name ^ ".Cursor") ~len:(length it.bv) pos;
      Probe.hit Dbv_access;
      (* strict upper bound: the bit at a leaf boundary lives in the next
         leaf, unlike a rank at the same position *)
      (if cache_fresh it && pos >= it.leaf_start && pos < it.leaf_start + it.leaf_bits
       then Probe.hit Bv_cursor_hit
       else begin
         Probe.hit Bv_cursor_miss;
         load it pos
       end);
      let o = pos - it.leaf_start in
      let i = run_of it o in
      let b = bit_of_run it.first_bit i in
      let r1 =
        it.ones_before + it.cums.(i) + (if b then o - it.starts.(i) else 0)
      in
      (b, if b then r1 else pos - r1)
  end
end
