module Bitbuf = Wt_bits.Bitbuf
module Broadword = Wt_bits.Broadword
module Probe = Wt_obs.Probe

let block_bits = 62
let class_bits = 6
let sb_blocks = 16
let sb_bits = block_bits * sb_blocks

(* Pascal's triangle up to n = 62.  C(62,31) = 4.7e17 < max_int. *)
let binom =
  let t = Array.make_matrix (block_bits + 1) (block_bits + 1) 0 in
  for n = 0 to block_bits do
    t.(n).(0) <- 1;
    for k = 1 to n do
      t.(n).(k) <- t.(n - 1).(k - 1) + (if k <= n - 1 then t.(n - 1).(k) else 0)
    done
  done;
  t

(* Offset field width for each class: ceil(log2 C(62, c)), 0 for the
   singleton classes. *)
let offset_width =
  Array.init (block_bits + 1) (fun c ->
      let count = binom.(block_bits).(c) in
      if count <= 1 then 0 else Broadword.bit_width (count - 1))

(* Rank of [bits] (a 62-bit pattern with popcount [c]) in the combinatorial
   enumeration: scanning positions from 0, a set bit at position i with r
   ones still to place skips C(62-1-i, r) patterns. *)
let encode_offset bits c =
  let off = ref 0 in
  let r = ref c in
  let i = ref 0 in
  let bits = ref bits in
  while !r > 0 do
    if !bits land 1 = 1 then begin
      (* patterns with a 0 here and r ones in the remaining 61-i bits *)
      off := !off + binom.(block_bits - 1 - !i).(!r);
      decr r
    end;
    bits := !bits lsr 1;
    incr i
  done;
  !off

let decode_offset off c =
  let bits = ref 0 in
  let off = ref off in
  let r = ref c in
  let i = ref 0 in
  while !r > 0 do
    let skip = binom.(block_bits - 1 - !i).(!r) in
    if !off >= skip then begin
      off := !off - skip;
      bits := !bits lor (1 lsl !i);
      decr r
    end;
    incr i
  done;
  !bits

type t = {
  len : int;
  total_ones : int;
  classes : Bitbuf.t; (* 6 bits per block *)
  offsets : Bitbuf.t; (* variable-width offsets, concatenated *)
  sb_ones : int array; (* cumulative ones before each superblock *)
  sb_off : int array; (* offset-stream bit position at superblock start *)
}

let length t = t.len
let ones t = t.total_ones
let zeros t = t.len - t.total_ones

let nblocks_of_len len = (len + block_bits - 1) / block_bits

let of_bitbuf buf =
  let len = Bitbuf.length buf in
  let nblocks = nblocks_of_len len in
  let nsb = (nblocks + sb_blocks - 1) / sb_blocks in
  let classes = Bitbuf.create ~capacity_bits:(nblocks * class_bits) () in
  let offsets = Bitbuf.create ~capacity_bits:len () in
  let sb_ones = Array.make (nsb + 1) 0 in
  let sb_off = Array.make (nsb + 1) 0 in
  let total = ref 0 in
  for blk = 0 to nblocks - 1 do
    if blk mod sb_blocks = 0 then begin
      let sb = blk / sb_blocks in
      sb_ones.(sb) <- !total;
      sb_off.(sb) <- Bitbuf.length offsets
    end;
    let pos = blk * block_bits in
    let blen = min block_bits (len - pos) in
    let bits = Bitbuf.get_bits buf pos blen in
    let c = Broadword.popcount bits in
    Bitbuf.add_bits classes class_bits c;
    let w = offset_width.(c) in
    if w > 0 then Bitbuf.add_bits offsets w (encode_offset bits c);
    total := !total + c
  done;
  sb_ones.(nsb) <- !total;
  sb_off.(nsb) <- Bitbuf.length offsets;
  { len; total_ones = !total; classes; offsets; sb_ones; sb_off }

let of_string s = of_bitbuf (Bitbuf.of_string s)

let class_of t blk = Bitbuf.get_bits t.classes (blk * class_bits) class_bits

let decode_block t off_pos c =
  let w = offset_width.(c) in
  if w = 0 then if c = 0 then 0 else Broadword.mask block_bits
  else decode_offset (Bitbuf.get_bits t.offsets off_pos w) c

(* Ones among the first [r] positions of a block with class [c] and
   offset stream position [off_pos], stopping the unranking at position
   [r] (cheaper than decoding the whole block). *)
let rank1_in_block t off_pos c r =
  let w = offset_width.(c) in
  if w = 0 then if c = 0 then 0 else min r c
  else begin
    let off = ref (Bitbuf.get_bits t.offsets off_pos w) in
    let rem = ref c in
    let ones = ref 0 in
    let i = ref 0 in
    while !i < r && !rem > 0 do
      let skip = binom.(block_bits - 1 - !i).(!rem) in
      if !off >= skip then begin
        off := !off - skip;
        incr ones;
        decr rem
      end;
      incr i
    done;
    !ones
  end

(* Bit at position [r] of a block (same early exit). *)
let access_in_block t off_pos c r =
  let w = offset_width.(c) in
  if w = 0 then c <> 0
  else begin
    let off = ref (Bitbuf.get_bits t.offsets off_pos w) in
    let rem = ref c in
    let i = ref 0 in
    let bit = ref false in
    let continue = ref true in
    while !continue do
      let hit =
        !rem > 0
        &&
        let skip = binom.(block_bits - 1 - !i).(!rem) in
        if !off >= skip then begin
          off := !off - skip;
          decr rem;
          true
        end
        else false
      in
      if !i = r then begin
        bit := hit;
        continue := false
      end
      else if !rem = 0 then begin
        bit := false;
        continue := false
      end
      else incr i
    done;
    !bit
  end

(* Walk blocks of superblock [sb] up to block [target]; returns
   (ones before target within walk + sb base, offset position of target). *)
let walk_to_block t target =
  let sb = target / sb_blocks in
  let ones = ref t.sb_ones.(sb) in
  let off = ref t.sb_off.(sb) in
  for blk = sb * sb_blocks to target - 1 do
    let c = class_of t blk in
    ones := !ones + c;
    off := !off + offset_width.(c)
  done;
  (!ones, !off)

let block_len t blk = min block_bits (t.len - (blk * block_bits))

let rank1 t pos =
  if pos = 0 then 0
  else begin
    let blk = pos / block_bits in
    let nblocks = nblocks_of_len t.len in
    if blk >= nblocks then t.total_ones
    else begin
      let ones, off = walk_to_block t blk in
      let r = pos mod block_bits in
      if r = 0 then ones else ones + rank1_in_block t off (class_of t blk) r
    end
  end

let rank t b pos =
  Fid.check_rank_pos ~who:"Rrr" ~len:t.len pos;
  Probe.hit Rrr_rank;
  if b then rank1 t pos else pos - rank1 t pos

let access t pos =
  Fid.check_access_pos ~who:"Rrr" ~len:t.len pos;
  Probe.hit Rrr_access;
  let blk = pos / block_bits in
  let _, off = walk_to_block t blk in
  access_in_block t off (class_of t blk) (pos mod block_bits)

(* (bit at pos, rank of that bit before pos): one walk + one partial
   unranking that also captures the bit at [pos]. *)
let access_rank t pos =
  Fid.check_access_pos ~who:"Rrr" ~len:t.len pos;
  Probe.hit Rrr_access;
  let blk = pos / block_bits in
  let ones, off_pos = walk_to_block t blk in
  let c = class_of t blk in
  let r = pos mod block_bits in
  let w = offset_width.(c) in
  let b, in_block =
    if w = 0 then (c <> 0, if c = 0 then 0 else r)
    else begin
      let off = ref (Bitbuf.get_bits t.offsets off_pos w) in
      let rem = ref c in
      let cnt = ref 0 in
      let i = ref 0 in
      let bit = ref false in
      let continue = ref true in
      while !continue do
        let hit =
          !rem > 0
          &&
          let skip = binom.(block_bits - 1 - !i).(!rem) in
          if !off >= skip then begin
            off := !off - skip;
            decr rem;
            true
          end
          else false
        in
        if !i = r then begin
          bit := hit;
          continue := false
        end
        else begin
          if hit then incr cnt;
          if !rem = 0 then begin
            bit := false;
            continue := false
          end
          else incr i
        end
      done;
      (!bit, !cnt)
    end
  in
  let r1 = ones + in_block in
  (b, if b then r1 else pos - r1)

let select t b k =
  let count = if b then t.total_ones else zeros t in
  Fid.check_select_idx ~who:"Rrr" ~count k;
  Probe.hit Rrr_select;
  let nsb = Array.length t.sb_ones - 1 in
  (* count of b strictly before superblock sb *)
  let count_before sb =
    if b then t.sb_ones.(sb) else min t.len (sb * sb_bits) - t.sb_ones.(sb)
  in
  let lo = ref 0 and hi = ref nsb in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if count_before mid <= k then lo := mid else hi := mid
  done;
  let sb = !lo in
  let remaining = ref (k - count_before sb) in
  let blk = ref (sb * sb_blocks) in
  let off = ref (t.sb_off.(sb)) in
  let block_count blk =
    let c = class_of t blk in
    if b then c else block_len t blk - c
  in
  let c = ref (block_count !blk) in
  while !remaining >= !c do
    remaining := !remaining - !c;
    off := !off + offset_width.(class_of t !blk);
    incr blk;
    c := block_count !blk
  done;
  let cls = class_of t !blk in
  let bits = decode_block t !off cls in
  let inblock =
    if b then Broadword.select_in_word bits !remaining
    else Broadword.select0_in_word bits (block_len t !blk) !remaining
  in
  (!blk * block_bits) + inblock

let to_bitbuf t =
  let out = Bitbuf.create ~capacity_bits:t.len () in
  let nblocks = nblocks_of_len t.len in
  let off = ref 0 in
  for blk = 0 to nblocks - 1 do
    let c = class_of t blk in
    let bits = decode_block t !off c in
    off := !off + offset_width.(c);
    Bitbuf.add_bits out (block_len t blk) bits
  done;
  out

let space_bits t =
  Bitbuf.length t.classes + Bitbuf.length t.offsets
  + (64 * (Array.length t.sb_ones + Array.length t.sb_off + 2))

(* Resumable construction: the paper's Section 4.1 de-amortization needs
   RRR built "in O(n'/log n) steps ... interleaved with other operations".
   A builder encodes a bounded number of blocks per [step] call. *)
module Builder = struct
  type rrr = t

  type t = {
    src : Bitbuf.t;
    len : int;
    nblocks : int;
    nsb : int;
    classes : Bitbuf.t;
    offsets : Bitbuf.t;
    sb_ones : int array;
    sb_off : int array;
    mutable blk : int; (* next block to encode *)
    mutable total : int; (* ones so far *)
  }

  let create src =
    let len = Bitbuf.length src in
    let nblocks = nblocks_of_len len in
    let nsb = (nblocks + sb_blocks - 1) / sb_blocks in
    {
      src;
      len;
      nblocks;
      nsb;
      classes = Bitbuf.create ~capacity_bits:(nblocks * class_bits) ();
      offsets = Bitbuf.create ~capacity_bits:len ();
      sb_ones = Array.make (nsb + 1) 0;
      sb_off = Array.make (nsb + 1) 0;
      blk = 0;
      total = 0;
    }

  let finished b = b.blk >= b.nblocks

  let step b k =
    let target = min b.nblocks (b.blk + k) in
    while b.blk < target do
      let blk = b.blk in
      if blk mod sb_blocks = 0 then begin
        let sb = blk / sb_blocks in
        b.sb_ones.(sb) <- b.total;
        b.sb_off.(sb) <- Bitbuf.length b.offsets
      end;
      let pos = blk * block_bits in
      let blen = min block_bits (b.len - pos) in
      let bits = Bitbuf.get_bits b.src pos blen in
      let c = Broadword.popcount bits in
      Bitbuf.add_bits b.classes class_bits c;
      let w = offset_width.(c) in
      if w > 0 then Bitbuf.add_bits b.offsets w (encode_offset bits c);
      b.total <- b.total + c;
      b.blk <- blk + 1
    done

  let finalize b : rrr =
    if not (finished b) then invalid_arg "Rrr.Builder.finalize: not finished";
    b.sb_ones.(b.nsb) <- b.total;
    b.sb_off.(b.nsb) <- Bitbuf.length b.offsets;
    {
      len = b.len;
      total_ones = b.total;
      classes = b.classes;
      offsets = b.offsets;
      sb_ones = b.sb_ones;
      sb_off = b.sb_off;
    }
end

(* Rank cursor: caches the last decoded block together with the rank and
   offset-stream prefix sums before it.  A query landing in the cached
   block is an in-block popcount; a short forward step re-uses the prefix
   sums and walks only the classes in between; anything else repositions
   from the superblock directory (exactly what a from-scratch query
   does).  Correct for any position order — monotone batches are simply
   the all-hit fast path. *)
module Cursor = struct
  type nonrec bv = t [@@warning "-34"]

  type t = {
    bv : bv;
    mutable blk : int; (* decoded block index, or -1 *)
    mutable bits : int; (* decoded contents of block [blk] *)
    mutable ones_before : int; (* ones in blocks [0, blk) *)
    mutable off : int; (* offset-stream position of block [blk] *)
  }

  let create bv = { bv; blk = -1; bits = 0; ones_before = 0; off = 0 }

  let seek t blk =
    if blk = t.blk then Probe.hit Bv_cursor_hit
    else begin
      (if t.blk >= 0 && blk > t.blk && blk - t.blk <= sb_blocks then begin
         Probe.hit Bv_cursor_hit;
         for b = t.blk to blk - 1 do
           let c = class_of t.bv b in
           t.ones_before <- t.ones_before + c;
           t.off <- t.off + offset_width.(c)
         done
       end
       else begin
         Probe.hit Bv_cursor_miss;
         let ones, off = walk_to_block t.bv blk in
         t.ones_before <- ones;
         t.off <- off
       end);
      t.blk <- blk;
      t.bits <- decode_block t.bv t.off (class_of t.bv blk)
    end

  let rank1 t pos =
    if pos <= 0 then 0
    else begin
      let blk = pos / block_bits in
      if blk >= nblocks_of_len t.bv.len then t.bv.total_ones
      else begin
        seek t blk;
        t.ones_before
        + Broadword.popcount (t.bits land Broadword.mask (pos mod block_bits))
      end
    end

  let rank t b pos =
    Fid.check_rank_pos ~who:"Rrr.Cursor" ~len:t.bv.len pos;
    Probe.hit Rrr_rank;
    let r1 = rank1 t pos in
    if b then r1 else pos - r1

  let access_rank t pos =
    Fid.check_access_pos ~who:"Rrr.Cursor" ~len:t.bv.len pos;
    Probe.hit Rrr_access;
    seek t (pos / block_bits);
    let r = pos mod block_bits in
    let b = t.bits land (1 lsl r) <> 0 in
    let r1 = t.ones_before + Broadword.popcount (t.bits land Broadword.mask r) in
    (b, if b then r1 else pos - r1)
end

module Iter = struct
  type nonrec bv = t [@@warning "-34"]

  type t = {
    bv : bv;
    mutable cursor : int; (* global bit position *)
    mutable blk : int; (* decoded block index, or -1 *)
    mutable bits : int; (* decoded block contents *)
    mutable off : int; (* offset-stream position of block [blk] *)
  }

  let create bv pos =
    if pos < 0 || pos > bv.len then invalid_arg "Rrr.Iter.create";
    (* Position the offset cursor at the block containing [pos]. *)
    if pos >= bv.len then { bv; cursor = pos; blk = -1; bits = 0; off = 0 }
    else begin
      let blk = pos / block_bits in
      let _, off = walk_to_block bv blk in
      let c = class_of bv blk in
      let bits = decode_block bv off c in
      { bv; cursor = pos; blk; bits; off }
    end

  let pos t = t.cursor
  let has_next t = t.cursor < t.bv.len

  let next t =
    if t.cursor >= t.bv.len then invalid_arg "Rrr.Iter.next: exhausted";
    let blk = t.cursor / block_bits in
    if blk <> t.blk then begin
      (* Crossed into the next block: advance the offset cursor. *)
      if t.blk >= 0 && blk = t.blk + 1 then
        t.off <- t.off + offset_width.(class_of t.bv t.blk)
      else begin
        let _, off = walk_to_block t.bv blk in
        t.off <- off
      end;
      t.blk <- blk;
      t.bits <- decode_block t.bv t.off (class_of t.bv blk)
    end;
    let b = t.bits land (1 lsl (t.cursor mod block_bits)) <> 0 in
    t.cursor <- t.cursor + 1;
    b
end

let pp fmt t = Format.fprintf fmt "%s" (Bitbuf.to_string (to_bitbuf t))

(* ------------------------------------------------------------------ *)
(* Flat serialized form: the same blocks/directories laid out in one
   contiguous byte blob, queried in place through {!Wt_bits.Membuf}.
   This is the inline bitvector encoding of the format-v3 arena
   ([Wt_core.Flat_wt]): no deserialization, the on-disk bytes are the
   query structure.

   Blob layout (all integers little-endian, bit streams LSB-first):

     u64 len_bits | u64 total_ones
     | (nsb+1) x u32 sb_ones        cumulative ones before superblock
     | (nsb+1) x u32 sb_off         offset-stream bit pos at superblock
     | classes   (nblocks x 6 bits, byte-padded)
     | offsets   (variable-width offsets, byte-padded)

   [nblocks]/[nsb] are derived from [len_bits], so the blob is
   self-delimiting given its base offset. *)
module Flat = struct
  module Membuf = Wt_bits.Membuf

  type rrr = t
  (* the pointer representation, input of the serializer *)

  type t = {
    mb : Membuf.t;
    len : int;
    total_ones : int;
    nblocks : int;
    sb_ones_off : int; (* byte offset of the sb_ones directory *)
    sb_off_off : int; (* byte offset of the sb_off directory *)
    classes_bit : int; (* bit offset of the classes stream *)
    offsets_bit : int; (* bit offset of the offsets stream *)
    size : int; (* blob size in bytes *)
  }

  let nsb_of_nblocks nblocks = (nblocks + sb_blocks - 1) / sb_blocks

  (* Append one bit stream of a pointer [rrr] byte-aligned: Bitbuf and
     Membuf share the LSB-first layout, so byte [i] of the stream is
     exactly [get_bits (8*i) 8]. *)
  let append_stream buf bb =
    let len = Bitbuf.length bb in
    let i = ref 0 in
    while !i < len do
      let take = min 8 (len - !i) in
      Buffer.add_char buf (Char.chr (Bitbuf.get_bits bb !i take));
      i := !i + take
    done

  let add_u32_le buf v = Buffer.add_int32_le buf (Int32.of_int v)
  let add_u64_le buf v = Buffer.add_int64_le buf (Int64.of_int v)

  let append buf (rrr : rrr) =
    add_u64_le buf rrr.len;
    add_u64_le buf rrr.total_ones;
    Array.iter (fun v -> add_u32_le buf v) rrr.sb_ones;
    Array.iter (fun v -> add_u32_le buf v) rrr.sb_off;
    append_stream buf rrr.classes;
    append_stream buf rrr.offsets

  (* [of_membuf mb base]: a view of the blob starting at byte [base].
     Validates the directory shape; every subsequent read is
     bounds-checked by [Membuf], so a corrupt blob raises
     [Invalid_argument] instead of reading out of range. *)
  let of_membuf mb base =
    let len = Membuf.get_u64 mb base in
    let total_ones = Membuf.get_u64 mb (base + 8) in
    if total_ones > len then invalid_arg "Rrr.Flat: ones exceed length";
    let nblocks = nblocks_of_len len in
    let nsb = nsb_of_nblocks nblocks in
    let sb_ones_off = base + 16 in
    let sb_off_off = sb_ones_off + (4 * (nsb + 1)) in
    let classes_off = sb_off_off + (4 * (nsb + 1)) in
    let classes_bytes = ((nblocks * class_bits) + 7) / 8 in
    let offsets_off = classes_off + classes_bytes in
    let offsets_bits = Membuf.get_u32 mb (sb_off_off + (4 * nsb)) in
    let size = offsets_off + ((offsets_bits + 7) / 8) - base in
    if Membuf.length mb < base + size then invalid_arg "Rrr.Flat: blob truncated";
    {
      mb;
      len;
      total_ones;
      nblocks;
      sb_ones_off;
      sb_off_off;
      classes_bit = classes_off * 8;
      offsets_bit = offsets_off * 8;
      size;
    }

  let length t = t.len
  let ones t = t.total_ones
  let zeros t = t.len - t.total_ones
  let size t = t.size
  let space_bits t = t.size * 8

  let sb_ones t sb = Membuf.get_u32 t.mb (t.sb_ones_off + (4 * sb))
  let sb_offp t sb = Membuf.get_u32 t.mb (t.sb_off_off + (4 * sb))
  let class_of t blk = Membuf.get_bits t.mb (t.classes_bit + (blk * class_bits)) class_bits
  let off_bits t pos w = Membuf.get_bits t.mb (t.offsets_bit + pos) w

  let decode_block t off_pos c =
    let w = offset_width.(c) in
    if w = 0 then if c = 0 then 0 else Broadword.mask block_bits
    else decode_offset (off_bits t off_pos w) c

  let rank1_in_block t off_pos c r =
    let w = offset_width.(c) in
    if w = 0 then if c = 0 then 0 else min r c
    else begin
      let off = ref (off_bits t off_pos w) in
      let rem = ref c in
      let ones = ref 0 in
      let i = ref 0 in
      while !i < r && !rem > 0 do
        let skip = binom.(block_bits - 1 - !i).(!rem) in
        if !off >= skip then begin
          off := !off - skip;
          incr ones;
          decr rem
        end;
        incr i
      done;
      !ones
    end

  let access_in_block t off_pos c r =
    let w = offset_width.(c) in
    if w = 0 then c <> 0
    else begin
      let off = ref (off_bits t off_pos w) in
      let rem = ref c in
      let i = ref 0 in
      let bit = ref false in
      let continue = ref true in
      while !continue do
        let hit =
          !rem > 0
          &&
          let skip = binom.(block_bits - 1 - !i).(!rem) in
          if !off >= skip then begin
            off := !off - skip;
            decr rem;
            true
          end
          else false
        in
        if !i = r then begin
          bit := hit;
          continue := false
        end
        else if !rem = 0 then begin
          bit := false;
          continue := false
        end
        else incr i
      done;
      !bit
    end

  let walk_to_block t target =
    let sb = target / sb_blocks in
    let ones = ref (sb_ones t sb) in
    let off = ref (sb_offp t sb) in
    for blk = sb * sb_blocks to target - 1 do
      let c = class_of t blk in
      ones := !ones + c;
      off := !off + offset_width.(c)
    done;
    (!ones, !off)

  let block_len t blk = min block_bits (t.len - (blk * block_bits))

  let rank1 t pos =
    if pos = 0 then 0
    else begin
      let blk = pos / block_bits in
      if blk >= t.nblocks then t.total_ones
      else begin
        let ones, off = walk_to_block t blk in
        let r = pos mod block_bits in
        if r = 0 then ones else ones + rank1_in_block t off (class_of t blk) r
      end
    end

  let rank t b pos =
    Fid.check_rank_pos ~who:"Rrr.Flat" ~len:t.len pos;
    Probe.hit Rrr_rank;
    if b then rank1 t pos else pos - rank1 t pos

  let access t pos =
    Fid.check_access_pos ~who:"Rrr.Flat" ~len:t.len pos;
    Probe.hit Rrr_access;
    let blk = pos / block_bits in
    let _, off = walk_to_block t blk in
    access_in_block t off (class_of t blk) (pos mod block_bits)

  let access_rank t pos =
    Fid.check_access_pos ~who:"Rrr.Flat" ~len:t.len pos;
    Probe.hit Rrr_access;
    let blk = pos / block_bits in
    let ones, off_pos = walk_to_block t blk in
    let c = class_of t blk in
    let r = pos mod block_bits in
    let w = offset_width.(c) in
    let b, in_block =
      if w = 0 then (c <> 0, if c = 0 then 0 else r)
      else begin
        let off = ref (off_bits t off_pos w) in
        let rem = ref c in
        let cnt = ref 0 in
        let i = ref 0 in
        let bit = ref false in
        let continue = ref true in
        while !continue do
          let hit =
            !rem > 0
            &&
            let skip = binom.(block_bits - 1 - !i).(!rem) in
            if !off >= skip then begin
              off := !off - skip;
              decr rem;
              true
            end
            else false
          in
          if !i = r then begin
            bit := hit;
            continue := false
          end
          else begin
            if hit then incr cnt;
            if !rem = 0 then begin
              bit := false;
              continue := false
            end
            else incr i
          end
        done;
        (!bit, !cnt)
      end
    in
    let r1 = ones + in_block in
    (b, if b then r1 else pos - r1)

  let select t b k =
    let count = if b then t.total_ones else zeros t in
    Fid.check_select_idx ~who:"Rrr.Flat" ~count k;
    Probe.hit Rrr_select;
    let nsb = nsb_of_nblocks t.nblocks in
    let count_before sb =
      if b then sb_ones t sb else min t.len (sb * sb_bits) - sb_ones t sb
    in
    let lo = ref 0 and hi = ref nsb in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if count_before mid <= k then lo := mid else hi := mid
    done;
    let sb = !lo in
    let remaining = ref (k - count_before sb) in
    let blk = ref (sb * sb_blocks) in
    let off = ref (sb_offp t sb) in
    let block_count blk =
      let c = class_of t blk in
      if b then c else block_len t blk - c
    in
    let c = ref (block_count !blk) in
    while !remaining >= !c do
      remaining := !remaining - !c;
      off := !off + offset_width.(class_of t !blk);
      incr blk;
      c := block_count !blk
    done;
    let cls = class_of t !blk in
    let bits = decode_block t !off cls in
    let inblock =
      if b then Broadword.select_in_word bits !remaining
      else Broadword.select0_in_word bits (block_len t !blk) !remaining
    in
    (!blk * block_bits) + inblock

  (* Rank cursor over a flat view: same caching discipline as
     {!Cursor} (cached decoded block + prefix sums, short forward
     walks), same [Bv_cursor_hit]/[Bv_cursor_miss] accounting. *)
  module Cursor = struct
    type nonrec bv = t [@@warning "-34"]

    type t = {
      bv : bv;
      mutable blk : int;
      mutable bits : int;
      mutable ones_before : int;
      mutable off : int;
    }

    let create bv = { bv; blk = -1; bits = 0; ones_before = 0; off = 0 }

    let seek t blk =
      if blk = t.blk then Probe.hit Bv_cursor_hit
      else begin
        (if t.blk >= 0 && blk > t.blk && blk - t.blk <= sb_blocks then begin
           Probe.hit Bv_cursor_hit;
           for b = t.blk to blk - 1 do
             let c = class_of t.bv b in
             t.ones_before <- t.ones_before + c;
             t.off <- t.off + offset_width.(c)
           done
         end
         else begin
           Probe.hit Bv_cursor_miss;
           let ones, off = walk_to_block t.bv blk in
           t.ones_before <- ones;
           t.off <- off
         end);
        t.blk <- blk;
        t.bits <- decode_block t.bv t.off (class_of t.bv blk)
      end

    let rank1 t pos =
      if pos <= 0 then 0
      else begin
        let blk = pos / block_bits in
        if blk >= t.bv.nblocks then t.bv.total_ones
        else begin
          seek t blk;
          t.ones_before
          + Broadword.popcount (t.bits land Broadword.mask (pos mod block_bits))
        end
      end

    let rank t b pos =
      Fid.check_rank_pos ~who:"Rrr.Flat.Cursor" ~len:t.bv.len pos;
      Probe.hit Rrr_rank;
      let r1 = rank1 t pos in
      if b then r1 else pos - r1

    let access_rank t pos =
      Fid.check_access_pos ~who:"Rrr.Flat.Cursor" ~len:t.bv.len pos;
      Probe.hit Rrr_access;
      seek t (pos / block_bits);
      let r = pos mod block_bits in
      let b = t.bits land (1 lsl r) <> 0 in
      let r1 = t.ones_before + Broadword.popcount (t.bits land Broadword.mask r) in
      (b, if b then r1 else pos - r1)
  end

  module Iter = struct
    type nonrec bv = t [@@warning "-34"]

    type t = {
      bv : bv;
      mutable cursor : int;
      mutable blk : int;
      mutable bits : int;
      mutable off : int;
    }

    let create bv pos =
      if pos < 0 || pos > bv.len then invalid_arg "Rrr.Flat.Iter.create";
      if pos >= bv.len then { bv; cursor = pos; blk = -1; bits = 0; off = 0 }
      else begin
        let blk = pos / block_bits in
        let _, off = walk_to_block bv blk in
        let c = class_of bv blk in
        let bits = decode_block bv off c in
        { bv; cursor = pos; blk; bits; off }
      end

    let pos t = t.cursor
    let has_next t = t.cursor < t.bv.len

    let next t =
      if t.cursor >= t.bv.len then invalid_arg "Rrr.Flat.Iter.next: exhausted";
      let blk = t.cursor / block_bits in
      if blk <> t.blk then begin
        if t.blk >= 0 && blk = t.blk + 1 then
          t.off <- t.off + offset_width.(class_of t.bv t.blk)
        else begin
          let _, off = walk_to_block t.bv blk in
          t.off <- off
        end;
        t.blk <- blk;
        t.bits <- decode_block t.bv t.off (class_of t.bv blk)
      end;
      let b = t.bits land (1 lsl (t.cursor mod block_bits)) <> 0 in
      t.cursor <- t.cursor + 1;
      b
  end
end
