(** Client side of the serving protocol: a small blocking client for
    tests and tooling, plus a closed-loop pipelined load generator that
    doubles as the benchmark driver and the CI smoke-test hammer. *)

module Is = Wt_core.Indexed_sequence

(* ------------------------------------------------------------------ *)
(* Blocking request/reply client *)

type t = { fd : Unix.file_descr; rd : Wire.reader; mutable next_id : int }

exception Server_closed
(** The server closed the connection (EOF or reset) while a reply was
    outstanding — expected under defensive disconnects. *)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* [connect ~host ~port ()] retries refused connections for
   [retry_for_s] (default 5s), covering the race between starting a
   server process and its listen call. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ | Sys_error _ -> ()

let connect ?(retry_for_s = 5.0) ~host ~port () =
  ignore_sigpipe ();
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let deadline = Unix.gettimeofday () +. retry_for_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        { fd; rd = Wire.reader (); next_id = 1 }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNABORTED) as e, fn, arg) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () < deadline then begin
          ignore (Unix.select [] [] [] 0.05);
          go ()
        end
        else raise (Unix.Unix_error (e, fn, arg))
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_reply t =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Wire.next t.rd with
    | Wire.Frame payload -> (
        match Wire.decode_reply payload with
        | Ok r -> r
        | Error msg -> failwith ("serve client: undecodable reply: " ^ msg))
    | Wire.Broken msg -> failwith ("serve client: broken reply stream: " ^ msg)
    | Wire.Need_more -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> raise Server_closed
        | n ->
            Wire.feed t.rd buf 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            raise Server_closed)
  in
  go ()

(* [call t body] sends one request and blocks for its reply's status. *)
let call ?(timeout_us = 0) t body =
  let id = t.next_id in
  t.next_id <- id + 1;
  write_all t.fd (Wire.encode_request { Wire.id; timeout_us; body });
  let r = read_reply t in
  if r.Wire.rid <> id then
    failwith (Printf.sprintf "serve client: reply id %d for request %d" r.Wire.rid id);
  r.Wire.status

let ping t = match call t Wire.Ping with Wire.Pong -> true | _ -> false

let length t =
  match call t Wire.Length with
  | Wire.Ok_value (Is.Int n) -> n
  | _ -> failwith "serve client: unexpected reply to Length"

(* [stats_json t] returns the server's live telemetry page (report +
   server counters + slow-query exemplars) as a JSON string. *)
let stats_json t =
  match call t Wire.Stats with
  | Wire.Ok_value (Is.Str s) -> s
  | _ -> failwith "serve client: unexpected reply to Stats"

(* [scrape t] returns the Prometheus exposition text. *)
let scrape t =
  match call t Wire.Scrape with
  | Wire.Ok_value (Is.Str s) -> s
  | _ -> failwith "serve client: unexpected reply to Scrape"

(* ------------------------------------------------------------------ *)
(* Closed-loop load generator *)

type report = {
  sent : int;
  completed : int;  (** replies received, of any status *)
  ok : int;
  query_error : int;
  overloaded : int;
  expired : int;
  bad : int;
  lost : int;  (** outstanding when the server closed the connection *)
  elapsed_s : float;
  throughput_rps : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;  (** latency stats cover served replies (ok + query_error) *)
}

type lconn = {
  l_fd : Unix.file_descr;
  l_rd : Wire.reader;
  l_sendq : Buffer.t;
  mutable l_sent_off : int;
  mutable l_outstanding : int;
  mutable l_alive : bool;
  l_inflight : (int, int) Hashtbl.t;  (** id -> send-time ns *)
}

let percentile sorted n q =
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* [run_load ~host ~port ~conns ~window ~ops ~opgen ()] opens [conns]
   pipelined connections, keeps [window] requests outstanding on each,
   and drives [ops] requests total ([opgen i] supplies request [i]'s
   body).  Closed-loop: a new request is issued only when a reply (of
   any status) frees a slot, so offered load adapts to server capacity
   the way a well-behaved client fleet does. *)
let run_load ~host ~port ~conns ~window ~ops ?(timeout_us = 0) ~opgen () =
  ignore_sigpipe ();
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let mk () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd addr;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Unix.set_nonblock fd;
    {
      l_fd = fd;
      l_rd = Wire.reader ();
      l_sendq = Buffer.create 4096;
      l_sent_off = 0;
      l_outstanding = 0;
      l_alive = true;
      l_inflight = Hashtbl.create 64;
    }
  in
  let cs = Array.init (max 1 conns) (fun _ -> mk ()) in
  let sent = ref 0 in
  let ok = ref 0 and query_error = ref 0 and overloaded = ref 0 in
  let expired = ref 0 and bad = ref 0 and lost = ref 0 in
  let completed = ref 0 in
  let lat = Array.make (max 1 ops) 0. in
  let lat_n = ref 0 in
  let next_id = ref 1 in
  let scratch = Bytes.create 65536 in
  let now_ns () = Wt_obs.Probe.now_ns () in
  let t0 = now_ns () in
  (* hard stop so a wedged server cannot hang the harness *)
  let give_up_ns = t0 + 120_000_000_000 in
  let top_up c =
    while c.l_alive && c.l_outstanding < window && !sent < ops do
      let id = !next_id in
      incr next_id;
      let body = opgen !sent in
      incr sent;
      Buffer.add_string c.l_sendq (Wire.encode_request { Wire.id; timeout_us; body });
      Hashtbl.replace c.l_inflight id (now_ns ());
      c.l_outstanding <- c.l_outstanding + 1
    done
  in
  let kill c =
    if c.l_alive then begin
      c.l_alive <- false;
      lost := !lost + c.l_outstanding;
      c.l_outstanding <- 0;
      try Unix.close c.l_fd with Unix.Unix_error _ -> ()
    end
  in
  let flush_send c =
    let pending = Buffer.length c.l_sendq - c.l_sent_off in
    if pending > 0 then begin
      let s = Buffer.contents c.l_sendq in
      match Unix.write_substring c.l_fd s c.l_sent_off pending with
      | n ->
          c.l_sent_off <- c.l_sent_off + n;
          if c.l_sent_off = Buffer.length c.l_sendq then begin
            Buffer.clear c.l_sendq;
            c.l_sent_off <- 0
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> kill c
    end
  in
  let absorb c payload =
    match Wire.decode_reply payload with
    | Error _ -> incr bad
    | Ok { Wire.rid; status } ->
        (match Hashtbl.find_opt c.l_inflight rid with
        | Some sent_ns ->
            Hashtbl.remove c.l_inflight rid;
            c.l_outstanding <- c.l_outstanding - 1;
            incr completed;
            let record_lat () =
              if !lat_n < Array.length lat then begin
                lat.(!lat_n) <- float_of_int (now_ns () - sent_ns) /. 1e3;
                incr lat_n
              end
            in
            (match status with
            | Wire.Ok_value _ | Wire.Pong ->
                incr ok;
                record_lat ()
            | Wire.Query_error _ ->
                incr query_error;
                record_lat ()
            | Wire.Overloaded -> incr overloaded
            | Wire.Deadline_exceeded -> incr expired
            | Wire.Bad_request _ -> incr bad)
        | None -> incr bad)
  in
  let handle_read c =
    match Unix.read c.l_fd scratch 0 (Bytes.length scratch) with
    | 0 -> kill c
    | n ->
        Wire.feed c.l_rd scratch 0 n;
        let continue = ref true in
        while !continue do
          match Wire.next c.l_rd with
          | Wire.Frame p -> absorb c p
          | Wire.Need_more -> continue := false
          | Wire.Broken _ ->
              kill c;
              continue := false
        done
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> kill c
  in
  let live () = Array.exists (fun c -> c.l_alive) cs in
  let work_left () = !sent < ops || Array.exists (fun c -> c.l_alive && c.l_outstanding > 0) cs
  in
  while live () && work_left () && now_ns () < give_up_ns do
    Array.iter (fun c -> if c.l_alive then top_up c) cs;
    let reads = Array.to_list cs |> List.filter_map (fun c -> if c.l_alive then Some c.l_fd else None) in
    let writes =
      Array.to_list cs
      |> List.filter_map (fun c ->
             if c.l_alive && Buffer.length c.l_sendq - c.l_sent_off > 0 then Some c.l_fd else None)
    in
    match Unix.select reads writes [] 0.1 with
    | readable, writable, _ ->
        Array.iter
          (fun c ->
            if c.l_alive && List.memq c.l_fd writable then flush_send c;
            if c.l_alive && List.memq c.l_fd readable then handle_read c)
          cs
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Array.iter kill cs;
  lost := !lost + (!sent - !completed - !lost);
  let elapsed_s = float_of_int (now_ns () - t0) /. 1e9 in
  let served = Array.sub lat 0 !lat_n in
  Array.sort compare served;
  {
    sent = !sent;
    completed = !completed;
    ok = !ok;
    query_error = !query_error;
    overloaded = !overloaded;
    expired = !expired;
    bad = !bad;
    lost = !lost;
    elapsed_s;
    throughput_rps = (if elapsed_s > 0. then float_of_int !completed /. elapsed_s else 0.);
    p50_us = percentile served !lat_n 0.50;
    p90_us = percentile served !lat_n 0.90;
    p99_us = percentile served !lat_n 0.99;
    max_us = (if !lat_n = 0 then 0. else served.(!lat_n - 1));
  }
