(** The serving wire protocol: length-prefixed binary frames.

    {v
      frame   := u32 payload length (1 .. max_frame) | payload
      request := i64 id | i32 timeout_us | u8 op | op-specific
                 op 0 Ping            (health check; never queued)
                 op 1 Length          (sequence length; never queued)
                 op 2 Access          i64 pos
                 op 3 Rank            i64 pos   | rest = string
                 op 4 Select          i64 count | rest = string
                 op 5 Rank_prefix     i64 pos   | rest = prefix
                 op 6 Select_prefix   i64 count | rest = prefix
                 op 7 Stats           (observability report JSON; inline)
                 op 8 Scrape          (Prometheus-style exposition; inline)
      reply   := i64 id | u8 status | status-specific
                 0 Ok_int             i64
                 1 Ok_str             rest = bytes
                 2 Pong
                 3 Query_error        u8 which | i64 fields
                 4 Overloaded         (admission control shed this request)
                 5 Deadline_exceeded  (request expired before execution)
                 6 Bad_request        rest = reason
    v}

    All integers are big-endian; [i64] is two's complement, checked on
    decode to fit an OCaml [int].  Strings carry no inner length — the
    frame delimits them — so a frame parses in one pass with no nested
    length fields to validate.

    Decoding is {e total and bounded}: {!decode_request} and
    {!decode_reply} never raise on any byte string, and the incremental
    {!reader} validates the declared frame length against [max_frame]
    (through {!Wt_durable.Bounded}, the same check the WAL and container
    decoders run) as soon as the four header bytes arrive — an absurd
    length marks the stream broken {e before} any allocation or further
    reading, so a garbage or adversarial frame can cost at most the
    bytes already received. *)

module Is = Wt_core.Indexed_sequence

let default_max_frame = 1 lsl 20
(** 1 MiB: far above any sane request or reply, far below an
    allocation-as-denial-of-service. *)

let header_len = 4

(* ------------------------------------------------------------------ *)
(* Requests and replies *)

type body =
  | Ping  (** health check: answered [Pong] inline, even under overload *)
  | Length  (** current sequence length: answered inline *)
  | Stats
      (** live observability report as JSON ([Ok_str]): answered inline
          off the select loop, never queued behind the batcher *)
  | Scrape
      (** Prometheus-style text exposition plus slow-query exemplars
          ([Ok_str]): answered inline like [Stats] *)
  | Query of Is.op  (** admitted, micro-batched, executed on the engine *)

type request = { id : int; timeout_us : int; body : body }
(** [timeout_us <= 0] means no deadline; positive values start counting
    at server admission. *)

type status =
  | Ok_value of Is.value
  | Pong
  | Query_error of Is.error
  | Overloaded
  | Deadline_exceeded
  | Bad_request of string

type reply = { rid : int; status : status }

(* ------------------------------------------------------------------ *)
(* Binary helpers *)

let add_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)
let add_i32 buf v = Buffer.add_int32_be buf (Int32.of_int v)

(* A 64-bit field that does not fit the 63-bit OCaml [int] is rejected,
   not wrapped: silent truncation would answer a different query than
   the client asked. *)
let get_i64_fit s off =
  let v = String.get_int64_be s off in
  let i = Int64.to_int v in
  if Int64.of_int i = v then Some i else None

let get_i32 s off = Int32.to_int (String.get_int32_be s off)

let frame payload =
  let n = String.length payload in
  let buf = Buffer.create (header_len + n) in
  add_i32 buf n;
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Requests *)

let op_tag = function
  | Ping -> '\000'
  | Length -> '\001'
  | Query (Is.Access _) -> '\002'
  | Query (Is.Rank _) -> '\003'
  | Query (Is.Select _) -> '\004'
  | Query (Is.Rank_prefix _) -> '\005'
  | Query (Is.Select_prefix _) -> '\006'
  | Stats -> '\007'
  | Scrape -> '\008'

let encode_request { id; timeout_us; body } =
  let buf = Buffer.create 32 in
  add_i64 buf id;
  add_i32 buf (max 0 timeout_us);
  Buffer.add_char buf (op_tag body);
  (match body with
  | Ping | Length | Stats | Scrape -> ()
  | Query (Is.Access { pos }) -> add_i64 buf pos
  | Query (Is.Rank { s; pos }) ->
      add_i64 buf pos;
      Buffer.add_string buf s
  | Query (Is.Select { s; count }) ->
      add_i64 buf count;
      Buffer.add_string buf s
  | Query (Is.Rank_prefix { prefix; pos }) ->
      add_i64 buf pos;
      Buffer.add_string buf prefix
  | Query (Is.Select_prefix { prefix; count }) ->
      add_i64 buf count;
      Buffer.add_string buf prefix);
  frame (Buffer.contents buf)

let decode_request payload =
  let n = String.length payload in
  if n < 13 then Error "request payload shorter than its fixed header"
  else
    match get_i64_fit payload 0 with
    | None -> Error "request id out of range"
    | Some id -> (
        let timeout_us = get_i32 payload 8 in
        if timeout_us < 0 then Error "negative timeout"
        else
          let exact k v = if n = k then Ok v else Error "trailing bytes after request" in
          let with_i64 make =
            if n < 21 then Error "truncated request argument"
            else
              match get_i64_fit payload 13 with
              | None -> Error "request argument out of range"
              | Some arg -> Ok (make arg (String.sub payload 21 (n - 21)))
          in
          let req body = { id; timeout_us; body } in
          match payload.[12] with
          | '\000' -> exact 13 (req Ping)
          | '\001' -> exact 13 (req Length)
          | '\007' -> exact 13 (req Stats)
          | '\008' -> exact 13 (req Scrape)
          | '\002' ->
              Result.bind (with_i64 (fun pos rest -> (pos, rest))) (fun (pos, rest) ->
                  if rest <> "" then Error "trailing bytes after request"
                  else Ok (req (Query (Is.Access { pos }))))
          | '\003' -> with_i64 (fun pos s -> req (Query (Is.Rank { s; pos })))
          | '\004' -> with_i64 (fun count s -> req (Query (Is.Select { s; count })))
          | '\005' -> with_i64 (fun pos prefix -> req (Query (Is.Rank_prefix { prefix; pos })))
          | '\006' ->
              with_i64 (fun count prefix -> req (Query (Is.Select_prefix { prefix; count })))
          | _ -> Error "unknown request op")

(* Best-effort id of an undecodable payload, so the error reply can
   still be correlated; 0 when even the id bytes are missing. *)
let request_id_hint payload =
  if String.length payload >= 8 then Option.value ~default:0 (get_i64_fit payload 0) else 0

(* ------------------------------------------------------------------ *)
(* Replies *)

let encode_reply { rid; status } =
  let buf = Buffer.create 32 in
  add_i64 buf rid;
  (match status with
  | Ok_value (Is.Int v) ->
      Buffer.add_char buf '\000';
      add_i64 buf v
  | Ok_value (Is.Str s) ->
      Buffer.add_char buf '\001';
      Buffer.add_string buf s
  | Pong -> Buffer.add_char buf '\002'
  | Query_error e -> (
      Buffer.add_char buf '\003';
      match e with
      | Is.Position_out_of_bounds { pos; len } ->
          Buffer.add_char buf '\000';
          add_i64 buf pos;
          add_i64 buf len
      | Is.Negative_count { count } ->
          Buffer.add_char buf '\001';
          add_i64 buf count
      | Is.No_occurrence { count; occurrences } ->
          Buffer.add_char buf '\002';
          add_i64 buf count;
          add_i64 buf occurrences
      | Is.Trie_closed -> Buffer.add_char buf '\003'
      | Is.Storage_error { path; reason } ->
          (* two length-prefixed strings: the frame alone cannot delimit
             both *)
          Buffer.add_char buf '\004';
          add_i64 buf (String.length path);
          Buffer.add_string buf path;
          Buffer.add_string buf reason)
  | Overloaded -> Buffer.add_char buf '\004'
  | Deadline_exceeded -> Buffer.add_char buf '\005'
  | Bad_request msg ->
      Buffer.add_char buf '\006';
      Buffer.add_string buf msg);
  frame (Buffer.contents buf)

let decode_reply payload =
  let n = String.length payload in
  if n < 9 then Error "reply payload shorter than its fixed header"
  else
    match get_i64_fit payload 0 with
    | None -> Error "reply id out of range"
    | Some rid -> (
        let reply status = { rid; status } in
        let i64 off =
          if n < off + 8 then Error "truncated reply field"
          else
            match get_i64_fit payload off with
            | None -> Error "reply field out of range"
            | Some v -> Ok v
        in
        let exact k v = if n = k then Ok v else Error "trailing bytes after reply" in
        match payload.[8] with
        | '\000' ->
            Result.bind (i64 9) (fun v -> exact 17 (reply (Ok_value (Is.Int v))))
        | '\001' -> Ok (reply (Ok_value (Is.Str (String.sub payload 9 (n - 9)))))
        | '\002' -> exact 9 (reply Pong)
        | '\003' ->
            if n < 10 then Error "truncated query error"
            else (
              match payload.[9] with
              | '\000' ->
                  Result.bind (i64 10) (fun pos ->
                      Result.bind (i64 18) (fun len ->
                          exact 26 (reply (Query_error (Is.Position_out_of_bounds { pos; len })))))
              | '\001' ->
                  Result.bind (i64 10) (fun count ->
                      exact 18 (reply (Query_error (Is.Negative_count { count }))))
              | '\002' ->
                  Result.bind (i64 10) (fun count ->
                      Result.bind (i64 18) (fun occurrences ->
                          exact 26 (reply (Query_error (Is.No_occurrence { count; occurrences })))))
              | '\003' -> exact 10 (reply (Query_error Is.Trie_closed))
              | '\004' ->
                  Result.bind (i64 10) (fun plen ->
                      if plen < 0 || plen > n - 18 then Error "storage error path length out of range"
                      else
                        let path = String.sub payload 18 plen in
                        let reason = String.sub payload (18 + plen) (n - 18 - plen) in
                        Ok (reply (Query_error (Is.Storage_error { path; reason }))))
              | _ -> Error "unknown query error tag")
        | '\004' -> exact 9 (reply Overloaded)
        | '\005' -> exact 9 (reply Deadline_exceeded)
        | '\006' -> Ok (reply (Bad_request (String.sub payload 9 (n - 9))))
        | _ -> Error "unknown reply status")

(* ------------------------------------------------------------------ *)
(* Incremental frame reader *)

type next = Frame of string | Need_more | Broken of string

type reader = {
  max_frame : int;
  mutable buf : Bytes.t;
  mutable start : int;  (** first unconsumed byte *)
  mutable fill : int;  (** end of valid bytes *)
  mutable broken : string option;
}

let reader ?(max_frame = default_max_frame) () =
  { max_frame; buf = Bytes.create 4096; start = 0; fill = 0; broken = None }

let buffered r = r.fill - r.start

let feed r src pos len =
  if Option.is_none r.broken && len > 0 then begin
    (* compact before growing: the consumed prefix is free capacity *)
    if r.start > 0 && r.fill + len > Bytes.length r.buf then begin
      Bytes.blit r.buf r.start r.buf 0 (r.fill - r.start);
      r.fill <- r.fill - r.start;
      r.start <- 0
    end;
    if r.fill + len > Bytes.length r.buf then begin
      let cap = max (2 * Bytes.length r.buf) (r.fill + len) in
      let buf = Bytes.create cap in
      Bytes.blit r.buf 0 buf 0 r.fill;
      r.buf <- buf
    end;
    Bytes.blit src pos r.buf r.fill len;
    r.fill <- r.fill + len
  end

let next r =
  match r.broken with
  | Some msg -> Broken msg
  | None ->
      if buffered r < header_len then Need_more
      else begin
        let declared = get_i32 (Bytes.unsafe_to_string r.buf) r.start in
        (* validated before any allocation: the frame body is never
           waited for, let alone copied, once the length is implausible *)
        if
          declared <= 0
          || not (Wt_durable.Bounded.ok ~declared ~cap:r.max_frame ~remaining:max_int)
        then begin
          let msg = Printf.sprintf "declared frame length %d outside 1..%d" declared r.max_frame in
          r.broken <- Some msg;
          Broken msg
        end
        else if buffered r < header_len + declared then Need_more
        else begin
          let payload = Bytes.sub_string r.buf (r.start + header_len) declared in
          r.start <- r.start + header_len + declared;
          if r.start = r.fill then begin
            r.start <- 0;
            r.fill <- 0
          end;
          Frame payload
        end
      end
