(** Group-commit micro-batching with admission control and deadlines.

    Single queries arriving concurrently are coalesced into one batch
    for the sharded executor: a batch is cut when it reaches
    [batch_max] operations or when its oldest member has waited
    [window_ns] — whichever comes first — so an idle server answers a
    lone query within one window and a busy server amortises dispatch
    over hundreds of operations.

    Robustness is built into admission rather than bolted on:

    - {b backpressure}: at most [queue_max] operations wait; past that
      {!admit} refuses with [`Overloaded] and the caller answers the
      client immediately instead of queueing unbounded work;
    - {b deadlines}: each operation may carry an absolute deadline.
      The flush instant is pulled {e earlier} than the window when the
      tightest queued deadline minus a running estimate of batch
      execution time would otherwise be missed, and operations already
      past their deadline at flush time are handed back unexecuted
      ([None]) so the engine never spends work on an answer nobody is
      waiting for.

    The batcher is deliberately single-threaded — it lives inside the
    server's event loop; parallelism happens {e inside} the [exec]
    callback (sharded over the domain pool), not around it. *)

module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace
module Is = Wt_core.Indexed_sequence

type 'k pending = {
  key : 'k;
  op : Is.op;
  admit_ns : int;
  deadline_ns : int;  (** absolute; [max_int] = none *)
}

type 'k t = {
  batch_max : int;
  window_ns : int;
  queue_max : int;
  q : 'k pending Queue.t;
  mutable min_deadline_ns : int;  (** over queued entries; [max_int] if none *)
  mutable exec_est_ns : int;  (** EMA of recent batch execution times *)
}

let create ~batch_max ~window_ns ~queue_max () =
  {
    batch_max = max 1 batch_max;
    window_ns = max 0 window_ns;
    queue_max = max 1 queue_max;
    q = Queue.create ();
    min_deadline_ns = max_int;
    (* seed the execution estimate at 100µs: wrong by at most a small
       factor for any realistic batch, corrected after the first flush *)
    exec_est_ns = 100_000;
  }

let pending t = Queue.length t.q

type admission = Admitted | Overloaded

(* [admit t ~now_ns ~key ~timeout_us op] queues [op] unless the queue is
   full.  [timeout_us <= 0] means no deadline. *)
let admit t ~now_ns ~key ~timeout_us op =
  if Queue.length t.q >= t.queue_max then begin
    Probe.hit Serve_shed;
    Overloaded
  end
  else begin
    let deadline_ns = if timeout_us <= 0 then max_int else now_ns + (timeout_us * 1000) in
    Queue.push { key; op; admit_ns = now_ns; deadline_ns } t.q;
    if deadline_ns < t.min_deadline_ns then t.min_deadline_ns <- deadline_ns;
    Probe.hit Serve_request;
    Admitted
  end

(* The instant the queue must be flushed: the oldest admission plus the
   batching window, pulled earlier if the tightest deadline minus the
   execution estimate lands sooner.  [None] when nothing is queued. *)
let due_at t =
  match Queue.peek_opt t.q with
  | None -> None
  | Some oldest ->
      let window_due = oldest.admit_ns + t.window_ns in
      let deadline_due =
        if t.min_deadline_ns = max_int then max_int else t.min_deadline_ns - t.exec_est_ns
      in
      Some (min window_due deadline_due)

let due t ~now_ns =
  Queue.length t.q >= t.batch_max
  || (match due_at t with None -> false | Some d -> now_ns >= d)

(* [flush t ~now_ns ~exec] cuts one batch (up to [batch_max] in arrival
   order) and returns, in that order, [(key, Some result)] for executed
   operations and [(key, None)] for those already past their deadline.
   [exec] receives only the live operations.

   [?on_done] is called once per {e executed} operation with its
   queue-wait (admit to flush) and the batch's execution time — the
   wait/exec latency split the slow-query log records — plus the
   [serve.batch] span id active during execution ([-1] when tracing is
   off).  [None] (the default) costs nothing. *)
let flush ?on_done t ~now_ns ~exec =
  let n = min t.batch_max (Queue.length t.q) in
  if n = 0 then [||]
  else begin
    Probe.hit Serve_batch;
    Probe.duration Serve_queue_depth (Queue.length t.q);
    let taken = Array.init n (fun _ -> Queue.pop t.q) in
    (* min-deadline is a queue-wide invariant; rebuild it from what's left *)
    t.min_deadline_ns <- Queue.fold (fun m p -> min m p.deadline_ns) max_int t.q;
    let expired = ref 0 in
    Array.iter
      (fun p ->
        Probe.duration Serve_queue_wait (now_ns - p.admit_ns);
        if p.deadline_ns < now_ns then incr expired)
      taken;
    if !expired > 0 then Probe.record Serve_deadline !expired;
    let live = Array.of_seq (Seq.filter (fun p -> p.deadline_ns >= now_ns) (Array.to_seq taken)) in
    let exec_ns = ref 0 and span = ref (-1) in
    let results =
      Trace.with_span
        ~args:[ ("ops", Array.length live); ("expired", !expired) ]
        "serve.batch"
        (fun () ->
          span := Trace.current_id ();
          if Array.length live = 0 then [||]
          else begin
            let t0 = Probe.now_ns () in
            let r = exec (Array.map (fun p -> p.op) live) in
            let dt = Probe.now_ns () - t0 in
            t.exec_est_ns <- ((3 * t.exec_est_ns) + dt) / 4;
            exec_ns := dt;
            r
          end)
    in
    (match on_done with
    | None -> ()
    | Some f ->
        Array.iter
          (fun p ->
            f p.key p.op ~wait_ns:(now_ns - p.admit_ns) ~exec_ns:!exec_ns ~span:!span)
          live);
    let live_i = ref 0 in
    Array.map
      (fun p ->
        if p.deadline_ns < now_ns then (p.key, None)
        else begin
          let r = results.(!live_i) in
          incr live_i;
          (p.key, Some r)
        end)
      taken
  end
