(** The overload-safe TCP serving front-end.

    A single-domain [Unix.select] event loop owns every socket; query
    execution is the only parallel part (sharded over the domain pool by
    {!Wt_par.Par_exec}, against the latest {!Wt_par.Snapshot}).  The
    loop accepts connections, peels {!Wire} frames off them, answers
    [Ping]/[Length] inline, and admits queries to the {!Batcher}; due
    batches are executed and their replies demultiplexed back to each
    connection's write buffer in request order.

    Degradation is graceful by construction:

    - a full queue or a connection past its in-flight cap answers
      [Overloaded] immediately ({!Batcher});
    - at [max_conns] the listener is simply left out of the select
      read set, so new connections queue in the kernel backlog instead
      of growing server state;
    - a connection that sends garbage, declares an absurd frame length,
      stalls mid-frame past the read timeout, or refuses to drain its
      replies past [outbuf_max] is closed — and only it: per-connection
      failures never reach the loop;
    - [SIGTERM]/{!request_stop} flips an atomic the loop polls; it then
      stops accepting, executes everything already admitted, drains
      write buffers within [drain_grace_ms], and returns so the process
      can exit 0.

    A fatal loop error (a bug, not a client) dumps the flight-recorder
    ring when [WTRIE_FLIGHT_DUMP] is set, then re-raises. *)

module Probe = Wt_obs.Probe
module Flight = Wt_obs.Flight
module Export = Wt_obs.Export
module Runtime = Wt_obs.Runtime
module Report = Wt_obs.Report
module Json = Wt_obs.Json
module Snapshot = Wt_par.Snapshot
module Append_wt = Wt_core.Append_wt
module Is = Wt_core.Indexed_sequence

(* What the loop needs from a trie variant: its length (the inline
   [Length] reply) and its batch engine.  The trie type is packed away
   in {!source}, so one server type serves every variant. *)
type 'trie backend = {
  length : 'trie -> int;
  engine :
    ?pool:Wt_par.Pool.t ->
    ?domains:int ->
    'trie ->
    Is.op array ->
    (Is.value, Is.error) result array;
}

type source = Source : 'trie backend * 'trie Snapshot.t -> source

let append_backend =
  {
    length = Append_wt.length;
    engine =
      (fun ?pool ?domains trie ops ->
        Wt_par.Par_exec.query_batch ?pool ?domains Wt_exec.Exec.Append.query_batch trie
          ops);
  }

let static_backend =
  {
    length = Wt_core.Flat_wt.length;
    engine =
      (fun ?pool ?domains trie ops ->
        Wt_par.Par_exec.query_batch ?pool ?domains Wt_exec.Exec.Static.query_batch trie
          ops);
  }

(* Serves the tiered store's epoch-published merged views ([runs…;
   delta]); the per-tier sub-batches go through the pool exactly like
   the single-trie backends.  Pair it with [Wt_tiered.Tiered.handle]. *)
let tiered_backend =
  {
    length = Wt_tiered.Tiered.View.length;
    engine =
      (fun ?pool ?domains view ops ->
        Wt_tiered.Tiered.View.query_batch ?pool ?domains view ops);
  }

type config = {
  host : string;
  port : int;  (** 0 = ephemeral; read the bound port with {!port} *)
  batch_max : int;
  window_us : int;
  queue_max : int;
  max_conns : int;
  max_frame : int;
  conn_inflight_max : int;
  outbuf_max : int;
  read_timeout_ms : int;  (** mid-frame stall allowance (slow-loris) *)
  drain_grace_ms : int;
  domains : int option;  (** [None] = execute on the loop's domain *)
  pool : Wt_par.Pool.t option;
  metrics_port : int option;
      (** also listen here for plain-TCP metrics scrapes: each accepted
          connection gets one HTTP/1.0 response carrying the Prometheus
          exposition, written through the select loop, then closed.
          [Some 0] = ephemeral; read the bound port with
          {!metrics_port}.  [None] (default) = no listener. *)
  slow_ms : int option;
      (** log an exemplar for any request whose queue-wait plus
          batch-execution time reaches this many milliseconds ([Some 0]
          = log every request); [None] (default) disables the log *)
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

let default_config () =
  {
    host = "127.0.0.1";
    port = 0;
    batch_max = env_int "WTRIE_SERVE_BATCH_OPS" 512;
    window_us = env_int "WTRIE_SERVE_WINDOW_US" 200;
    queue_max = env_int "WTRIE_SERVE_QUEUE_MAX" 8192;
    max_conns = env_int "WTRIE_SERVE_MAX_CONNS" 1024;
    max_frame = env_int "WTRIE_SERVE_MAX_FRAME" Wire.default_max_frame;
    conn_inflight_max = env_int "WTRIE_SERVE_CONN_INFLIGHT" 1024;
    outbuf_max = env_int "WTRIE_SERVE_OUTBUF_MAX" (4 lsl 20);
    read_timeout_ms = env_int "WTRIE_SERVE_READ_TIMEOUT_MS" 10_000;
    drain_grace_ms = 5_000;
    domains = None;
    pool = None;
    metrics_port = None;
    slow_ms = None;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  rd : Wire.reader;
  outq : string Queue.t;  (** encoded frames awaiting the socket *)
  mutable out_head_pos : int;  (** bytes of the head frame already written *)
  mutable out_bytes : int;
  mutable inflight : int;  (** admitted queries not yet answered *)
  mutable last_rx_ns : int;
  mutable alive : bool;
}

(* Plain fields, not atomics: every mutation happens on the loop domain.
   Exposed so tests and the CLI can report what the server actually did. *)
type stats = {
  mutable accepted : int;
  mutable closed_defensive : int;
  mutable requests : int;
  mutable batches : int;
  mutable shed : int;
  mutable expired : int;
  mutable bad_frames : int;
  mutable slow : int;  (** requests past the slow-query threshold *)
}

(* A slow-query exemplar: enough to attribute one bad tail sample
   without a full trace — what kind of query, how long it waited in the
   batcher vs. how long its batch executed, and the [serve.batch] span
   it ran under (so a concurrently exported Chrome trace can be joined
   on the id). *)
type exemplar = {
  x_t_ns : int;  (** flush instant *)
  x_kind : string;  (** query kind: "access", "rank", ... *)
  x_rid : int;  (** client-assigned request id *)
  x_wait_ns : int;  (** admission to batch cut *)
  x_exec_ns : int;  (** the owning batch's execution time *)
  x_span : int;  (** [serve.batch] span id, [-1] when tracing is off *)
}

let slow_capacity = 64
(* Ring slots: the most recent exemplars survive, the rest age out —
   same bounded-memory discipline as the flight recorder. *)

let dummy_exemplar =
  { x_t_ns = 0; x_kind = ""; x_rid = 0; x_wait_ns = 0; x_exec_ns = 0; x_span = -1 }

(* A metrics-scrape connection: one pre-rendered response draining
   through the select loop, then closed.  Input (the HTTP request line
   curl sends) is read and discarded so the close is orderly. *)
type mconn = {
  mfd : Unix.file_descr;
  mbuf : string;
  mutable moff : int;
  mutable malive : bool;
}

type t = {
  cfg : config;
  source : source;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  metrics_bound_port : int;  (** [-1] when no metrics listener *)
  batcher : (conn * int) Batcher.t;
  conns : (int, conn) Hashtbl.t;
  stop : bool Atomic.t;
  stats : stats;
  scratch : Bytes.t;
  mutable next_cid : int;
  mutable mconns : mconn list;
  slow_ring : exemplar array;
  mutable slow_widx : int;
  mutable last_rt_poll_ns : int;
}

let port t = t.bound_port
let metrics_port t = if t.metrics_bound_port >= 0 then Some t.metrics_bound_port else None
let stats t = t.stats
let request_stop t = Atomic.set t.stop true
let stopping t = Atomic.get t.stop

(* [create ?config snap] binds and listens; [Unix.Unix_error] from
   socket/bind propagates to the caller (the CLI maps it to exit 74). *)
let create ?config ~backend snap =
  let cfg = match config with Some c -> c | None -> default_config () in
  (* a peer that disappears mid-write must surface as EPIPE on the
     write call, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ | Sys_error _ -> ());
  let listen_on port =
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, port) in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (match
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd addr;
       Unix.listen fd 128;
       Unix.set_nonblock fd
     with
    | () -> ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e);
    let bound =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
    in
    (fd, bound)
  in
  let fd, bound_port = listen_on cfg.port in
  let metrics_fd, metrics_bound_port =
    match cfg.metrics_port with
    | None -> (None, -1)
    | Some p -> (
        match listen_on p with
        | mfd, mp -> (Some mfd, mp)
        | exception e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e)
  in
  Flight.record ~a:bound_port ~note:"serve.listen" Mark;
  let t =
    {
      cfg;
      source = Source (backend, snap);
      listen_fd = fd;
      bound_port;
      metrics_fd;
      metrics_bound_port;
      batcher =
        Batcher.create ~batch_max:cfg.batch_max ~window_ns:(cfg.window_us * 1000)
          ~queue_max:cfg.queue_max ();
      conns = Hashtbl.create 64;
      stop = Atomic.make false;
      stats =
        {
          accepted = 0;
          closed_defensive = 0;
          requests = 0;
          batches = 0;
          shed = 0;
          expired = 0;
          bad_frames = 0;
          slow = 0;
        };
      scratch = Bytes.create 65536;
      next_cid = 0;
      mconns = [];
      slow_ring = Array.make slow_capacity dummy_exemplar;
      slow_widx = 0;
      last_rt_poll_ns = 0;
    }
  in
  (* live-state gauges for the scrape: replaced by name, so restarting
     a server in-process keeps the gauge set stable *)
  Export.register_gauge "serve_open_conns" (fun () ->
      float_of_int (Hashtbl.length t.conns));
  Export.register_gauge "serve_pending_ops" (fun () ->
      float_of_int (Batcher.pending t.batcher));
  t

(* ------------------------------------------------------------------ *)
(* Connection plumbing *)

let close_conn t ?(defensive = false) c =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove t.conns c.cid;
    if defensive then begin
      t.stats.closed_defensive <- t.stats.closed_defensive + 1;
      Probe.hit Serve_conn_close
    end;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send_reply t c reply =
  if c.alive then begin
    let s = Wire.encode_reply reply in
    Queue.push s c.outq;
    c.out_bytes <- c.out_bytes + String.length s;
    (* a reader that never drains its replies is backpressured by
       disconnect, not by unbounded server memory *)
    if c.out_bytes > t.cfg.outbuf_max then close_conn t ~defensive:true c
  end

let handle_write t c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.outq) do
    let head = Queue.peek c.outq in
    let len = String.length head - c.out_head_pos in
    match Unix.write_substring c.fd head c.out_head_pos len with
    | n ->
        c.out_bytes <- c.out_bytes - n;
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_head_pos <- 0
        end
        else begin
          c.out_head_pos <- c.out_head_pos + n;
          continue := false
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (_, _, _) ->
        close_conn t c;
        continue := false
  done

(* ------------------------------------------------------------------ *)
(* Slow-query exemplars *)

let op_kind = function
  | Is.Access _ -> "access"
  | Is.Rank _ -> "rank"
  | Is.Select _ -> "select"
  | Is.Rank_prefix _ -> "rank_prefix"
  | Is.Select_prefix _ -> "select_prefix"

let note_slow t ~kind ~rid ~wait_ns ~exec_ns ~span =
  t.stats.slow <- t.stats.slow + 1;
  Probe.hit Serve_slow;
  Flight.record ~a:wait_ns ~b:exec_ns ~note:kind Slow_query;
  t.slow_ring.(t.slow_widx land (slow_capacity - 1)) <-
    { x_t_ns = Probe.now_ns (); x_kind = kind; x_rid = rid; x_wait_ns = wait_ns;
      x_exec_ns = exec_ns; x_span = span };
  t.slow_widx <- t.slow_widx + 1

let slow_exemplars t =
  let n = t.slow_widx in
  let lo = max 0 (n - slow_capacity) in
  List.init (n - lo) (fun i -> t.slow_ring.((lo + i) land (slow_capacity - 1)))

let exemplar_json x =
  Json.Obj
    [
      ("t_ns", Json.Int x.x_t_ns);
      ("kind", Json.Str x.x_kind);
      ("rid", Json.Int x.x_rid);
      ("wait_ns", Json.Int x.x_wait_ns);
      ("exec_ns", Json.Int x.x_exec_ns);
      ("span", Json.Int x.x_span);
    ]

(* ------------------------------------------------------------------ *)
(* Live telemetry rendering (Stats / Scrape / --metrics-port) *)

(* Both renderers poll the runtime bridge first, so GC pauses that
   happened since the last serve-loop poll are visible at the instant
   of the scrape (a no-op when the bridge was never started). *)

let stats_json t =
  ignore (Runtime.poll ());
  Json.Obj
    [
      ("report", Report.to_json (Report.capture ()));
      ( "server",
        Json.Obj
          [
            ("accepted", Json.Int t.stats.accepted);
            ("closed_defensive", Json.Int t.stats.closed_defensive);
            ("requests", Json.Int t.stats.requests);
            ("batches", Json.Int t.stats.batches);
            ("shed", Json.Int t.stats.shed);
            ("expired", Json.Int t.stats.expired);
            ("bad_frames", Json.Int t.stats.bad_frames);
            ("slow", Json.Int t.stats.slow);
            ("conns", Json.Int (Hashtbl.length t.conns));
            ("pending_ops", Json.Int (Batcher.pending t.batcher));
          ] );
      ("slow_queries", Json.List (List.map exemplar_json (slow_exemplars t)));
    ]

(* The exposition page: the full metric universe plus gauges, then one
   comment line per slow-query exemplar — comments keep the page valid
   for any Prometheus parser while still carrying the per-request
   attribution a TSDB cannot. *)
let scrape_text t =
  ignore (Runtime.poll ());
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Export.prometheus ());
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Printf.sprintf
           "# EXEMPLAR wtrie_serve_slow_query kind=%s rid=%d span=%d wait_ns=%d exec_ns=%d t_ns=%d\n"
           x.x_kind x.x_rid x.x_span x.x_wait_ns x.x_exec_ns x.x_t_ns))
    (slow_exemplars t);
  Buffer.contents buf

let http_response body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    (String.length body) body

(* ------------------------------------------------------------------ *)
(* Metrics listener *)

let max_mconns = 32
(* Concurrent scrapes in flight; past this, accepts wait in the kernel
   backlog.  A scrape is one response and a close, so the cap only ever
   binds under a misbehaving scraper. *)

let close_mconn mc =
  if mc.malive then begin
    mc.malive <- false;
    try Unix.close mc.mfd with Unix.Unix_error _ -> ()
  end

let accept_metrics_burst t mfd =
  let continue = ref true in
  while !continue && List.length t.mconns < max_mconns do
    match Unix.accept mfd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (* render once at accept: every scrape sees a consistent page,
           and the write path is pure buffer drain *)
        let mc = { mfd = fd; mbuf = http_response (scrape_text t); moff = 0; malive = true } in
        t.mconns <- mc :: t.mconns
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

(* The request bytes (curl's GET line) are irrelevant — read them so the
   peer's send completes, discard them, and treat EOF/error as done. *)
let handle_mconn_read t mc =
  match Unix.read mc.mfd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> close_mconn mc
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_mconn mc

let handle_mconn_write mc =
  let continue = ref true in
  while !continue && mc.malive && mc.moff < String.length mc.mbuf do
    let len = String.length mc.mbuf - mc.moff in
    match Unix.write_substring mc.mfd mc.mbuf mc.moff len with
    | n ->
        mc.moff <- mc.moff + n;
        if n < len then continue := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error (_, _, _) ->
        close_mconn mc;
        continue := false
  done;
  if mc.malive && mc.moff >= String.length mc.mbuf then close_mconn mc

(* ------------------------------------------------------------------ *)
(* Requests *)

let overloaded t c rid =
  t.stats.shed <- t.stats.shed + 1;
  send_reply t c { Wire.rid; status = Wire.Overloaded }

let handle_frame t c now_ns payload =
  match Wire.decode_request payload with
  | Error msg ->
      (* a syntactically valid frame with an undecodable payload gets a
         correlated error reply; the connection survives *)
      t.stats.bad_frames <- t.stats.bad_frames + 1;
      Probe.hit Serve_bad_frame;
      send_reply t c { Wire.rid = Wire.request_id_hint payload; status = Wire.Bad_request msg }
  | Ok { Wire.id; timeout_us = _; body = Wire.Ping } ->
      send_reply t c { Wire.rid = id; status = Wire.Pong }
  | Ok { Wire.id; timeout_us = _; body = Wire.Length } ->
      let (Source (b, snap)) = t.source in
      let len = b.length (Snapshot.read snap) in
      send_reply t c { Wire.rid = id; status = Wire.Ok_value (Is.Int len) }
  | Ok { Wire.id; timeout_us = _; body = Wire.Stats } ->
      (* answered inline, never queued: telemetry must stay readable
         when the batcher is the thing being diagnosed *)
      send_reply t c
        { Wire.rid = id; status = Wire.Ok_value (Is.Str (Json.to_string (stats_json t))) }
  | Ok { Wire.id; timeout_us = _; body = Wire.Scrape } ->
      send_reply t c { Wire.rid = id; status = Wire.Ok_value (Is.Str (scrape_text t)) }
  | Ok { Wire.id; timeout_us; body = Wire.Query op } ->
      if c.inflight >= t.cfg.conn_inflight_max then begin
        Probe.hit Serve_shed;
        overloaded t c id
      end
      else begin
        match Batcher.admit t.batcher ~now_ns ~key:(c, id) ~timeout_us op with
        | Batcher.Overloaded -> overloaded t c id
        | Batcher.Admitted ->
            c.inflight <- c.inflight + 1;
            t.stats.requests <- t.stats.requests + 1
      end

let handle_read t c =
  match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> close_conn t c (* orderly EOF; any in-flight replies are dropped at demux *)
  | n ->
      c.last_rx_ns <- Probe.now_ns ();
      Wire.feed c.rd t.scratch 0 n;
      let continue = ref true in
      while !continue && c.alive do
        match Wire.next c.rd with
        | Wire.Need_more -> continue := false
        | Wire.Broken _ ->
            (* an implausible frame length: nothing downstream of it can
               be trusted, so the stream dies rather than resynchronise *)
            t.stats.bad_frames <- t.stats.bad_frames + 1;
            Probe.hit Serve_bad_frame;
            close_conn t ~defensive:true c;
            continue := false
        | Wire.Frame payload -> handle_frame t c (Probe.now_ns ()) payload
      done
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c

let accept_burst t =
  let continue = ref true in
  while !continue && Hashtbl.length t.conns < t.cfg.max_conns do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        let c =
          {
            fd;
            cid;
            rd = Wire.reader ~max_frame:t.cfg.max_frame ();
            outq = Queue.create ();
            out_head_pos = 0;
            out_bytes = 0;
            inflight = 0;
            last_rx_ns = Probe.now_ns ();
            alive = true;
          }
        in
        Hashtbl.replace t.conns cid c;
        t.stats.accepted <- t.stats.accepted + 1;
        Probe.hit Serve_accept
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* Batch execution *)

let flush_batch t =
  let now_ns = Probe.now_ns () in
  let (Source (b, snap)) = t.source in
  let trie = Snapshot.read snap in
  (* the slow-query hook only exists when a threshold is configured, so
     the common no-logging path pays nothing per op *)
  let on_done =
    match t.cfg.slow_ms with
    | None -> None
    | Some ms ->
        let thr_ns = ms * 1_000_000 in
        Some
          (fun (_, rid) op ~wait_ns ~exec_ns ~span ->
            if wait_ns + exec_ns >= thr_ns then
              note_slow t ~kind:(op_kind op) ~rid ~wait_ns ~exec_ns ~span)
  in
  let results =
    Batcher.flush ?on_done t.batcher ~now_ns ~exec:(fun ops ->
        b.engine ?pool:t.cfg.pool ?domains:t.cfg.domains trie ops)
  in
  if Array.length results > 0 then t.stats.batches <- t.stats.batches + 1;
  Array.iter
    (fun ((c, rid), res) ->
      c.inflight <- c.inflight - 1;
      match res with
      | None ->
          t.stats.expired <- t.stats.expired + 1;
          send_reply t c { Wire.rid; status = Wire.Deadline_exceeded }
      | Some (Ok v) -> send_reply t c { Wire.rid; status = Wire.Ok_value v }
      | Some (Error e) -> send_reply t c { Wire.rid; status = Wire.Query_error e })
    results

(* ------------------------------------------------------------------ *)
(* Event loop *)

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let reap_stalled t now_ns =
  let timeout_ns = t.cfg.read_timeout_ms * 1_000_000 in
  if timeout_ns > 0 then
    List.iter
      (fun c ->
        (* only a connection stuck mid-frame is a slow-loris suspect; an
           idle connection with no partial frame may sit forever *)
        if Wire.buffered c.rd > 0 && now_ns - c.last_rx_ns > timeout_ns then
          close_conn t ~defensive:true c)
      (conn_list t)

let select_timeout t now_ns =
  match Batcher.due_at t.batcher with
  | None -> 0.05
  | Some due -> Float.max 0. (Float.min 0.05 (float_of_int (due - now_ns) /. 1e9))

let loop_once t =
  let now_ns = Probe.now_ns () in
  (* drain the runtime-events ring at most every 10ms: often enough
     that GC pause histograms track live, rare enough to be invisible
     in the loop's budget (a no-op when the bridge isn't started) *)
  if now_ns - t.last_rt_poll_ns > 10_000_000 then begin
    t.last_rt_poll_ns <- now_ns;
    ignore (Runtime.poll ())
  end;
  t.mconns <- List.filter (fun mc -> mc.malive) t.mconns;
  let conns = conn_list t in
  let reads =
    let base = List.map (fun c -> c.fd) conns in
    let base = List.fold_left (fun acc mc -> mc.mfd :: acc) base t.mconns in
    let base =
      match t.metrics_fd with
      | Some mfd when List.length t.mconns < max_mconns && not (stopping t) -> mfd :: base
      | _ -> base
    in
    (* accept pushback: past max_conns the listener stays out of the
       read set and new connections wait in the kernel backlog *)
    if Hashtbl.length t.conns < t.cfg.max_conns && not (stopping t) then t.listen_fd :: base
    else base
  in
  let writes = List.filter_map (fun c -> if c.out_bytes > 0 then Some c.fd else None) conns in
  let writes = List.fold_left (fun acc mc -> mc.mfd :: acc) writes t.mconns in
  let readable, writable, _ =
    match Unix.select reads writes [] (select_timeout t now_ns) with
    | r -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.memq t.listen_fd readable then accept_burst t;
  (match t.metrics_fd with
  | Some mfd when List.memq mfd readable -> accept_metrics_burst t mfd
  | _ -> ());
  List.iter (fun c -> if List.memq c.fd readable then handle_read t c) conns;
  List.iter (fun mc -> if mc.malive && List.memq mc.mfd readable then handle_mconn_read t mc) t.mconns;
  let now_ns = Probe.now_ns () in
  while Batcher.due t.batcher ~now_ns do
    flush_batch t
  done;
  (* write after flushing so replies produced this iteration go out
     without waiting for the next select round *)
  List.iter (fun c -> if c.alive && (List.memq c.fd writable || c.out_bytes > 0) then handle_write t c) conns;
  List.iter (fun mc -> if mc.malive && List.memq mc.mfd writable then handle_mconn_write mc) t.mconns;
  reap_stalled t (Probe.now_ns ())

let close_metrics t =
  (match t.metrics_fd with
  | Some mfd -> ( try Unix.close mfd with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter close_mconn t.mconns;
  t.mconns <- []

let drain t =
  Flight.record ~note:"serve.drain" Mark;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  close_metrics t;
  (* everything already admitted is executed and answered *)
  while Batcher.pending t.batcher > 0 do
    flush_batch t
  done;
  let deadline = Probe.now_ns () + (t.cfg.drain_grace_ms * 1_000_000) in
  let rec pump () =
    let waiting = List.filter (fun c -> c.alive && c.out_bytes > 0) (conn_list t) in
    if waiting <> [] && Probe.now_ns () < deadline then begin
      (match Unix.select [] (List.map (fun c -> c.fd) waiting) [] 0.05 with
      | _, writable, _ ->
          List.iter (fun c -> if List.memq c.fd writable then handle_write t c) waiting
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      pump ()
    end
  in
  pump ();
  List.iter (fun c -> close_conn t c) (conn_list t)

(* [serve t] blocks until {!request_stop} (or SIGTERM via the CLI's
   handler), then drains and returns.  Per-connection failures are
   contained; anything that escapes the loop is a server bug and dumps
   the flight ring (when [WTRIE_FLIGHT_DUMP] is set) before re-raising. *)
let serve t =
  match
    while not (stopping t) do
      loop_once t
    done
  with
  | () -> drain t
  | exception e ->
      (match Sys.getenv_opt "WTRIE_FLIGHT_DUMP" with
      | Some path when path <> "" -> (
          try
            let oc = open_out path in
            output_string oc (Wt_obs.Json.to_string (Flight.to_json ()));
            output_string oc "\n";
            close_out oc
          with Sys_error _ -> ())
      | _ -> ());
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      close_metrics t;
      List.iter (fun c -> close_conn t c) (conn_list t);
      raise e
