(** Minimal JSON tree, printer and parser — just enough for the metrics
    sinks (bench [--json], [wtrie stats --json]) and the
    {!Report.to_json} round-trip, with zero dependencies.

    The printer emits canonical output (no insignificant whitespace,
    object fields in construction order); floats print as ["%.17g"]
    with a trailing [".0"] forced on integral values so that parsing
    returns a [Float] again.  Only finite floats are representable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i') s
  then s
  else s ^ ".0"

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          print_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_to buf j;
  Buffer.contents buf

(* Indented variant for human eyes (CLI sinks). *)
let to_string_pretty j =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go ind = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as v -> print_to buf v
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (ind + 2);
            go (ind + 2) x)
          xs;
        Buffer.add_char buf '\n';
        pad ind;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (ind + 2);
            escape_to buf k;
            Buffer.add_string buf ": ";
            go (ind + 2) v)
          fields;
        Buffer.add_char buf '\n';
        pad ind;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the input string. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* ASCII range only — all this library ever emits. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail "non-ASCII \\u escape unsupported"
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' -> is_float := true; true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad float"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad int"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors used by [Report.of_json]. *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_obj = function Obj fields -> Some fields | _ -> None
