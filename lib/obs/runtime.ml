(** The OCaml 5 runtime telemetry bridge: GC and domain events from
    [Runtime_events], folded into the [Rt_*] metrics and the tracer.

    The runtime writes begin/end markers for every GC phase into a
    per-domain ring buffer; {!start} turns that recording on and opens
    a self-process cursor, and each {!poll} drains whatever accumulated
    since the last one:

    - an [EV_MINOR] begin/end pair becomes one sample in the
      [Rt_gc_minor] pause histogram; [EV_MAJOR] likewise in
      [Rt_gc_major] — both tagged with the domain (ring) that ran the
      collection;
    - every pause also adds to [Rt_gc_ns] (total GC nanoseconds, the
      cross-domain sum) and to a per-ring accumulator readable with
      {!per_domain_gc_ns} — the "is one domain eating all the GC?"
      attribution the aggregate hides;
    - when tracing is enabled, each pause is injected as a [gc.minor] /
      [gc.major] span on the collecting domain's timeline row, so GC
      appears inline between query spans in Chrome trace exports;
    - overwritten (unconsumed) ring events count into
      [Rt_events_lost]: nonzero means {!poll} is being called too
      rarely for the event rate.

    Only the top-level [EV_MINOR]/[EV_MAJOR] phases are timed; their
    nested sub-phases (mark/sweep slices, root scans) are ignored so a
    pause is counted once, not once per sub-phase.

    Polling is cheap (one C call plus a callback per pending event) and
    single-consumer by design: the serving loop owns the cadence, and
    scrape handlers call {!poll} before exporting so the [Rt_*] metrics
    are fresh at the instant of the scrape.  All state here is owned by
    whichever domain calls {!poll}; concurrent pollers are serialized
    by a mutex ({!poll} from two domains is safe, not useful). *)

let max_rings = 256
(* Ring ids are small consecutive integers (one ring per live domain,
   ids recycled); 256 is far above [Domain.recommended_domain_count]
   on any current machine. *)

type state = {
  cursor : Runtime_events.cursor;
  callbacks : Runtime_events.Callbacks.t;
  minor_start : int array;  (** per ring: pending EV_MINOR begin ts, or 0 *)
  major_start : int array;
  gc_ns : int array;  (** per ring: accumulated GC ns *)
}

let st : state option ref = ref None
let mu = Mutex.create ()

let ts t = Int64.to_int (Runtime_events.Timestamp.to_int64 t)

let make_callbacks minor_start major_start gc_ns =
  let open Runtime_events in
  let begin_ ring t phase =
    if ring < max_rings then
      match phase with
      | EV_MINOR -> minor_start.(ring) <- ts t
      | EV_MAJOR -> major_start.(ring) <- ts t
      | _ -> ()
  in
  let end_ ring t phase =
    if ring < max_rings then begin
      let finish starts metric name =
        let t0 = starts.(ring) in
        starts.(ring) <- 0;
        (* a begin lost to ring overwrite leaves t0 = 0: skip rather
           than record a bogus epoch-length pause *)
        if t0 > 0 then begin
          let t1 = ts t in
          let dt = t1 - t0 in
          if dt >= 0 then begin
            Probe.duration metric dt;
            Probe.record Metric.Rt_gc_ns dt;
            gc_ns.(ring) <- gc_ns.(ring) + dt;
            Trace.inject ~dom:ring name ~t0_ns:t0 ~t1_ns:t1
          end
        end
      in
      match phase with
      | EV_MINOR -> finish minor_start Metric.Rt_gc_minor "gc.minor"
      | EV_MAJOR -> finish major_start Metric.Rt_gc_major "gc.major"
      | _ -> ()
    end
  in
  let lost _ring n = Probe.record Metric.Rt_events_lost n in
  Callbacks.create ~runtime_begin:begin_ ~runtime_end:end_ ~lost_events:lost ()

(* [start ()] is idempotent; the runtime keeps recording until the
   process exits (pause/resume is not exposed — the bridge is meant to
   stay on for the life of a serving process). *)
let start () =
  Mutex.lock mu;
  (match !st with
  | Some _ -> ()
  | None ->
      Runtime_events.start ();
      let minor_start = Array.make max_rings 0 in
      let major_start = Array.make max_rings 0 in
      let gc_ns = Array.make max_rings 0 in
      st :=
        Some
          {
            cursor = Runtime_events.create_cursor None;
            callbacks = make_callbacks minor_start major_start gc_ns;
            minor_start;
            major_start;
            gc_ns;
          });
  Mutex.unlock mu

let started () =
  Mutex.lock mu;
  let r = Option.is_some !st in
  Mutex.unlock mu;
  r

(* [poll ()] drains pending runtime events into the metrics; returns
   the number of events consumed (0 when the bridge was never
   started).  The mutex makes concurrent pollers safe; it is never
   held while user code runs — callbacks only touch probe atomics and
   this module's arrays. *)
let poll () =
  Mutex.lock mu;
  let r =
    match !st with
    | None -> 0
    | Some s -> (
        match Runtime_events.read_poll s.cursor s.callbacks None with
        | n -> n
        | exception _ -> 0)
  in
  Mutex.unlock mu;
  r

(* Per-domain GC attribution: [(ring_id, gc_ns)] for every ring that
   accumulated any.  Ring ids map to domains one-to-one while domains
   are alive (the initial domain is ring 0). *)
let per_domain_gc_ns () =
  Mutex.lock mu;
  let r =
    match !st with
    | None -> []
    | Some s ->
        let acc = ref [] in
        for i = max_rings - 1 downto 0 do
          if s.gc_ns.(i) > 0 then acc := (i, s.gc_ns.(i)) :: !acc
        done;
        !acc
  in
  Mutex.unlock mu;
  r

let total_gc_ns () = List.fold_left (fun a (_, ns) -> a + ns) 0 (per_domain_gc_ns ())
