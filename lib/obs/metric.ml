(** The fixed universe of instrumented operations.

    Metrics attribute work to a layer of the stack, mirroring the
    per-primitive accounting of the paper's Table 1:
    - [Rrr_*]: static RRR bitvector primitives (the static trie's β);
    - [App_*]: append-only segmented bitvector primitives (Section 4.1) —
      frozen-segment queries additionally count as [Rrr_*], since they
      delegate to the segment's RRR encoding;
    - [Dbv_*]: dynamic chunk-tree bitvector primitives (Section 4.2,
      RLE+γ and gap+δ codecs alike);
    - [Wt_*]: whole trie-level operations and mutations;
    - [Wt_nodes_visited] / [Wt_bits_consumed]: traversal work — trie
      nodes examined and string bits consumed (label lcp plus branch
      bits) along root-to-node paths, i.e. the O(|s| + h_s) term;
    - [Durable_*]: the crash-safe persistence layer — snapshot
      saves/loads, WAL records appended and replayed, torn-tail bytes
      dropped during recovery, and checkpoints taken;
    - [Exec_*]: the batch query engine — batches executed, operations
      per batch, and the per-level latency histogram of its
      level-by-level traversal;
    - [Bv_cursor_*]: rank-cursor cache behaviour shared by every
      bitvector implementation — a hit answers a query from the cached
      (block, rank-so-far) state with an in-block popcount or a short
      forward walk, a miss repositions from the directory;
    - [Par_*]: the multicore serving layer — parallel batches
      dispatched, shards they were split into, pool tasks executed
      (and the subset the submitting domain stole back from the queue),
      queue-wait and per-shard-run latency histograms, and dynamic-trie
      snapshots published for isolated readers;
    - [Analytics_*]: the range-analytics suite ([lib/analytics]) —
      one count per front-door invocation of [select_all],
      [range_count], [range_distinct] and [range_topk]; the same ids
      key the per-call latency histograms recorded at the byte-string
      façade;
    - [Flat_*]: the flat static arena ([lib/core]'s [Flat_wt], format
      v3) — arenas built from pointer tries, saved to v3 containers,
      and opened by [mmap] (zero-copy) or full-CRC copy; the same ids
      key the build/save/open latency histograms;
    - [Tiered_*]: the write-optimized tiered store ([lib/tiered]) —
      ingests acknowledged (and their payload bytes), WAL fsync
      barriers ([flush]), compactions committed (the same id keys the
      compaction-duration histogram) and the run-file bytes they wrote
      (write amplification = [tiered_compact_bytes] /
      [tiered_ingest_bytes]), plus two sampled histograms:
      [Tiered_delta_strings] (delta size at each seal) and
      [Tiered_run_count] (immutable run count after each commit);
    - [Serve_*]: the TCP serving front-end ([lib/serve]) — connections
      accepted and defensively closed, query requests admitted,
      micro-batches flushed, requests shed with [Overloaded]
      (admission control) or expired with [Deadline_exceeded], wire
      frames rejected by the bounded decoder, plus two histograms:
      [Serve_queue_depth] (pending-queue depth sampled at each flush)
      and [Serve_queue_wait] (admit-to-execute wait, ns), and
      [Serve_slow] — requests whose queue-wait + batch-execution time
      crossed the server's slow-query threshold (each one also leaves
      an exemplar in the slow-query ring, see [lib/serve/server.ml]);
    - [Rt_*]: the OCaml 5 runtime, observed through the
      [Runtime_events] bridge ([lib/obs/runtime.ml]) — minor and major
      GC pause histograms ([Rt_gc_minor]/[Rt_gc_major], ns per
      collection phase on whichever domain ran it), [Rt_gc_ns] (total
      nanoseconds spent in GC phases, summed over domains; the
      per-domain split is exposed programmatically by
      [Runtime.per_domain_gc_ns]) and [Rt_events_lost] (ring-buffer
      events the consumer missed — nonzero means the poll cadence is
      too slow for the event rate).

    Counter metrics count invocations; the same ids key the latency
    histograms recorded by {!Probe.time} at the string-API layer. *)

type t =
  | Rrr_rank
  | Rrr_select
  | Rrr_access
  | App_append
  | App_rank
  | App_select
  | App_access
  | Dbv_insert
  | Dbv_delete
  | Dbv_rank
  | Dbv_select
  | Dbv_access
  | Wt_access
  | Wt_rank
  | Wt_select
  | Wt_rank_prefix
  | Wt_select_prefix
  | Wt_insert
  | Wt_delete
  | Wt_append
  | Wt_node_split
  | Wt_node_merge
  | Wt_nodes_visited
  | Wt_bits_consumed
  | Durable_snapshot_save
  | Durable_snapshot_load
  | Durable_wal_append
  | Durable_wal_replay
  | Durable_wal_dropped_bytes
  | Durable_checkpoint
  | Exec_batch
  | Exec_batch_ops
  | Exec_level
  | Bv_cursor_hit
  | Bv_cursor_miss
  | Par_batch
  | Par_shards
  | Par_task
  | Par_steal
  | Par_queue_wait
  | Par_shard_run
  | Par_snapshot_publish
  | Analytics_select_all
  | Analytics_range_count
  | Analytics_distinct
  | Analytics_topk
  | Serve_accept
  | Serve_conn_close
  | Serve_request
  | Serve_batch
  | Serve_shed
  | Serve_deadline
  | Serve_bad_frame
  | Serve_queue_depth
  | Serve_queue_wait
  | Flat_build
  | Flat_save
  | Flat_open_mmap
  | Flat_open_copy
  | Tiered_ingest
  | Tiered_ingest_bytes
  | Tiered_flush
  | Tiered_compact
  | Tiered_compact_bytes
  | Tiered_delta_strings
  | Tiered_run_count
  | Serve_slow
  | Rt_gc_minor
  | Rt_gc_major
  | Rt_gc_ns
  | Rt_events_lost

let count = 71

let index = function
  | Rrr_rank -> 0
  | Rrr_select -> 1
  | Rrr_access -> 2
  | App_append -> 3
  | App_rank -> 4
  | App_select -> 5
  | App_access -> 6
  | Dbv_insert -> 7
  | Dbv_delete -> 8
  | Dbv_rank -> 9
  | Dbv_select -> 10
  | Dbv_access -> 11
  | Wt_access -> 12
  | Wt_rank -> 13
  | Wt_select -> 14
  | Wt_rank_prefix -> 15
  | Wt_select_prefix -> 16
  | Wt_insert -> 17
  | Wt_delete -> 18
  | Wt_append -> 19
  | Wt_node_split -> 20
  | Wt_node_merge -> 21
  | Wt_nodes_visited -> 22
  | Wt_bits_consumed -> 23
  | Durable_snapshot_save -> 24
  | Durable_snapshot_load -> 25
  | Durable_wal_append -> 26
  | Durable_wal_replay -> 27
  | Durable_wal_dropped_bytes -> 28
  | Durable_checkpoint -> 29
  | Exec_batch -> 30
  | Exec_batch_ops -> 31
  | Exec_level -> 32
  | Bv_cursor_hit -> 33
  | Bv_cursor_miss -> 34
  | Par_batch -> 35
  | Par_shards -> 36
  | Par_task -> 37
  | Par_steal -> 38
  | Par_queue_wait -> 39
  | Par_shard_run -> 40
  | Par_snapshot_publish -> 41
  | Analytics_select_all -> 42
  | Analytics_range_count -> 43
  | Analytics_distinct -> 44
  | Analytics_topk -> 45
  | Serve_accept -> 46
  | Serve_conn_close -> 47
  | Serve_request -> 48
  | Serve_batch -> 49
  | Serve_shed -> 50
  | Serve_deadline -> 51
  | Serve_bad_frame -> 52
  | Serve_queue_depth -> 53
  | Serve_queue_wait -> 54
  | Flat_build -> 55
  | Flat_save -> 56
  | Flat_open_mmap -> 57
  | Flat_open_copy -> 58
  | Tiered_ingest -> 59
  | Tiered_ingest_bytes -> 60
  | Tiered_flush -> 61
  | Tiered_compact -> 62
  | Tiered_compact_bytes -> 63
  | Tiered_delta_strings -> 64
  | Tiered_run_count -> 65
  | Serve_slow -> 66
  | Rt_gc_minor -> 67
  | Rt_gc_major -> 68
  | Rt_gc_ns -> 69
  | Rt_events_lost -> 70

let all =
  [|
    Rrr_rank; Rrr_select; Rrr_access; App_append; App_rank; App_select; App_access;
    Dbv_insert; Dbv_delete; Dbv_rank; Dbv_select; Dbv_access; Wt_access; Wt_rank;
    Wt_select; Wt_rank_prefix; Wt_select_prefix; Wt_insert; Wt_delete; Wt_append;
    Wt_node_split; Wt_node_merge; Wt_nodes_visited; Wt_bits_consumed;
    Durable_snapshot_save; Durable_snapshot_load; Durable_wal_append;
    Durable_wal_replay; Durable_wal_dropped_bytes; Durable_checkpoint;
    Exec_batch; Exec_batch_ops; Exec_level; Bv_cursor_hit; Bv_cursor_miss;
    Par_batch; Par_shards; Par_task; Par_steal; Par_queue_wait; Par_shard_run;
    Par_snapshot_publish; Analytics_select_all; Analytics_range_count;
    Analytics_distinct; Analytics_topk; Serve_accept; Serve_conn_close;
    Serve_request; Serve_batch; Serve_shed; Serve_deadline; Serve_bad_frame;
    Serve_queue_depth; Serve_queue_wait; Flat_build; Flat_save; Flat_open_mmap;
    Flat_open_copy; Tiered_ingest; Tiered_ingest_bytes; Tiered_flush;
    Tiered_compact; Tiered_compact_bytes; Tiered_delta_strings; Tiered_run_count;
    Serve_slow; Rt_gc_minor; Rt_gc_major; Rt_gc_ns; Rt_events_lost;
  |]

let name = function
  | Rrr_rank -> "rrr_rank"
  | Rrr_select -> "rrr_select"
  | Rrr_access -> "rrr_access"
  | App_append -> "appendable_append"
  | App_rank -> "appendable_rank"
  | App_select -> "appendable_select"
  | App_access -> "appendable_access"
  | Dbv_insert -> "dynbv_insert"
  | Dbv_delete -> "dynbv_delete"
  | Dbv_rank -> "dynbv_rank"
  | Dbv_select -> "dynbv_select"
  | Dbv_access -> "dynbv_access"
  | Wt_access -> "wt_access"
  | Wt_rank -> "wt_rank"
  | Wt_select -> "wt_select"
  | Wt_rank_prefix -> "wt_rank_prefix"
  | Wt_select_prefix -> "wt_select_prefix"
  | Wt_insert -> "wt_insert"
  | Wt_delete -> "wt_delete"
  | Wt_append -> "wt_append"
  | Wt_node_split -> "wt_node_split"
  | Wt_node_merge -> "wt_node_merge"
  | Wt_nodes_visited -> "wt_nodes_visited"
  | Wt_bits_consumed -> "wt_bits_consumed"
  | Durable_snapshot_save -> "durable_snapshot_save"
  | Durable_snapshot_load -> "durable_snapshot_load"
  | Durable_wal_append -> "durable_wal_append"
  | Durable_wal_replay -> "durable_wal_replay"
  | Durable_wal_dropped_bytes -> "durable_wal_dropped_bytes"
  | Durable_checkpoint -> "durable_checkpoint"
  | Exec_batch -> "exec_batch"
  | Exec_batch_ops -> "exec_batch_ops"
  | Exec_level -> "exec_level"
  | Bv_cursor_hit -> "bv_cursor_hit"
  | Bv_cursor_miss -> "bv_cursor_miss"
  | Par_batch -> "par_batch"
  | Par_shards -> "par_shard_count"
  | Par_task -> "par_task"
  | Par_steal -> "par_steal"
  | Par_queue_wait -> "par_queue_wait"
  | Par_shard_run -> "par_shard_run"
  | Par_snapshot_publish -> "par_snapshot_publish"
  | Analytics_select_all -> "analytics_select_all"
  | Analytics_range_count -> "analytics_range_count"
  | Analytics_distinct -> "analytics_distinct"
  | Analytics_topk -> "analytics_topk"
  | Serve_accept -> "serve_accept"
  | Serve_conn_close -> "serve_conn_close"
  | Serve_request -> "serve_request"
  | Serve_batch -> "serve_batch"
  | Serve_shed -> "serve_shed"
  | Serve_deadline -> "serve_deadline_expired"
  | Serve_bad_frame -> "serve_bad_frame"
  | Serve_queue_depth -> "serve_queue_depth"
  | Serve_queue_wait -> "serve_queue_wait"
  | Flat_build -> "flat_build"
  | Flat_save -> "flat_save"
  | Flat_open_mmap -> "flat_open_mmap"
  | Flat_open_copy -> "flat_open_copy"
  | Tiered_ingest -> "tiered_ingest"
  | Tiered_ingest_bytes -> "tiered_ingest_bytes"
  | Tiered_flush -> "tiered_flush"
  | Tiered_compact -> "tiered_compact"
  | Tiered_compact_bytes -> "tiered_compact_bytes"
  | Tiered_delta_strings -> "tiered_delta_strings"
  | Tiered_run_count -> "tiered_run_count"
  | Serve_slow -> "serve_slow_query"
  | Rt_gc_minor -> "rt_gc_minor"
  | Rt_gc_major -> "rt_gc_major"
  | Rt_gc_ns -> "rt_gc_ns"
  | Rt_events_lost -> "rt_events_lost"

let of_name s = Array.find_opt (fun m -> name m = s) all
