(** Span-based tracing: explainable latency for the multi-stage,
    multi-domain query pipeline.

    A span is a named, timed interval with a parent — [with_span] nests
    spans lexically on the executing domain's own span stack, and
    [~parent] carries the chain across domains (the sharded executor
    stamps each shard task with the submitting batch span's id).
    Completed spans accumulate in per-domain buffers and export as
    Chrome [trace_event] JSON ({!to_json}), loadable in Perfetto or
    chrome://tracing: one [tid] per domain, nesting inferred from the
    interval containment the stacks guarantee.

    Cost model mirrors {!Probe}: tracing is off by default, and a
    disabled [with_span] is one atomic load and a branch — results are
    bit-for-bit those of the untraced code.  When enabled, counted
    sampling ([~sample_every]) keeps the overhead bounded on hot paths:
    only every n-th *root* span (and its whole subtree) is recorded;
    subtrees are never torn.

    Timestamps come from {!Probe.now_ns}, so the clock is the same
    injectable monotonic source the latency histograms use and span
    trees are deterministic under a test clock. *)

type event = {
  id : int;
  parent : int;  (** span id of the parent, or -1 for a root *)
  name : string;
  args : (string * int) list;
  dom : int;  (** id of the domain that executed the span *)
  t0_ns : int;
  t1_ns : int;
}

type frame = {
  fid : int;
  fparent : int;
  fname : string;
  fargs : (string * int) list;
  ft0 : int;
}

(* Per-domain state: the open-span stack, the mute depth for
   sampled-out subtrees, and the completed-event buffer (newest first,
   bounded).  Each domain mutates only its own state, so no locks are
   needed on the hot path; the registry lets [events]/[reset] reach
   every domain's buffer from the collector. *)
type dstate = {
  ddom : int;
  mutable stack : frame list;
  mutable mute : int;
  mutable evs : event list;
  mutable nevs : int;
  mutable dropped : int;
}

let max_events_per_domain = 1 lsl 20

let on = Atomic.make false
let sample_every = Atomic.make 1
let sample_ctr = Atomic.make 0
let next_id = Atomic.make 1

let registry : dstate list ref = ref []
let reg_mu = Mutex.create ()

let dkey =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          ddom = (Domain.self () :> int);
          stack = [];
          mute = 0;
          evs = [];
          nevs = 0;
          dropped = 0;
        }
      in
      Mutex.lock reg_mu;
      registry := st :: !registry;
      Mutex.unlock reg_mu;
      st)

let state () = Domain.DLS.get dkey

let enabled () = Atomic.get on

let enable ?sample_every:(se = 1) () =
  Atomic.set sample_every (max 1 se);
  Atomic.set sample_ctr 0;
  Atomic.set on true

let disable () = Atomic.set on false

(* Collector-side; call while no domain is inside a traced section. *)
let reset () =
  Mutex.lock reg_mu;
  let sts = !registry in
  Mutex.unlock reg_mu;
  List.iter
    (fun d ->
      d.stack <- [];
      d.mute <- 0;
      d.evs <- [];
      d.nevs <- 0;
      d.dropped <- 0)
    sts;
  Atomic.set sample_ctr 0

(* The id of the innermost open span on this domain, or -1.  Capture it
   before fanning work out to other domains and pass it back in as
   [~parent] to keep the span tree connected across the pool. *)
let current_id () =
  if not (Atomic.get on) then -1
  else match (state ()).stack with [] -> -1 | fr :: _ -> fr.fid

let[@inline] sampled_out () =
  let every = Atomic.get sample_every in
  every > 1 && Atomic.fetch_and_add sample_ctr 1 mod every <> 0

let emit d fr t1 =
  if d.nevs >= max_events_per_domain then d.dropped <- d.dropped + 1
  else begin
    d.evs <-
      {
        id = fr.fid;
        parent = fr.fparent;
        name = fr.fname;
        args = fr.fargs;
        dom = d.ddom;
        t0_ns = fr.ft0;
        t1_ns = t1;
      }
      :: d.evs;
    d.nevs <- d.nevs + 1
  end

(* [with_span ?parent ?args name f] runs [f] inside a span.  [~parent]
   (a span id from [current_id], possibly captured on another domain)
   overrides the stack-derived parent; a negative value means "none".
   Exceptions close the span and re-raise. *)
let with_span ?(parent = -1) ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let d = state () in
    let root = d.stack == [] && parent < 0 in
    if d.mute > 0 || (root && sampled_out ()) then begin
      d.mute <- d.mute + 1;
      Fun.protect ~finally:(fun () -> d.mute <- d.mute - 1) f
    end
    else begin
      let fparent =
        if parent >= 0 then parent
        else match d.stack with [] -> -1 | fr :: _ -> fr.fid
      in
      let fid = Atomic.fetch_and_add next_id 1 in
      let t0 = Probe.now_ns () in
      let fr = { fid; fparent; fname = name; fargs = args; ft0 = t0 } in
      d.stack <- fr :: d.stack;
      Flight.record ~t:t0 ~a:fid ~note:name Flight.Span_begin;
      let finish () =
        (match d.stack with
        | top :: rest when top == fr -> d.stack <- rest
        | _ ->
            (* unbalanced nesting (an inner span leaked an exception past
               its own finish) — drop down to our frame *)
            let rec pop = function
              | top :: rest when top != fr -> pop rest
              | top :: rest when top == fr -> rest
              | l -> l
            in
            d.stack <- pop d.stack);
        let t1 = Probe.now_ns () in
        emit d fr t1;
        Flight.record ~t:t1 ~a:fid ~note:name Flight.Span_end
      in
      match f () with
      | r ->
          finish ();
          r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt
    end
  end

(* [inject ?args ?dom name ~t0_ns ~t1_ns] records an already-completed
   interval as a root span — for events observed from outside the
   span-stack discipline, e.g. GC pauses read off the [Runtime_events]
   ring after the fact.  The event lands in the {e calling} domain's
   buffer (its own mutation, no locks) but carries [?dom] (default: the
   caller) as the timeline row, so a GC pause on domain 3 renders on
   domain 3's track even though the poller runs on domain 0. *)
let inject ?(args = []) ?dom name ~t0_ns ~t1_ns =
  if Atomic.get on then begin
    let d = state () in
    if d.nevs >= max_events_per_domain then d.dropped <- d.dropped + 1
    else begin
      let id = Atomic.fetch_and_add next_id 1 in
      d.evs <-
        {
          id;
          parent = -1;
          name;
          args;
          dom = (match dom with Some x -> x | None -> d.ddom);
          t0_ns;
          t1_ns;
        }
        :: d.evs;
      d.nevs <- d.nevs + 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Collection and export *)

let events () =
  Mutex.lock reg_mu;
  let sts = !registry in
  Mutex.unlock reg_mu;
  let all = List.concat_map (fun d -> d.evs) sts in
  List.sort (fun a b -> compare (a.t0_ns, a.id) (b.t0_ns, b.id)) all

let event_count () =
  Mutex.lock reg_mu;
  let sts = !registry in
  Mutex.unlock reg_mu;
  List.fold_left (fun acc d -> acc + d.nevs) 0 sts

let dropped_count () =
  Mutex.lock reg_mu;
  let sts = !registry in
  Mutex.unlock reg_mu;
  List.fold_left (fun acc d -> acc + d.dropped) 0 sts

(* Chrome trace_event export: complete events (ph "X", microsecond
   ts/dur) on pid 1, one tid per domain, plus thread-name metadata so
   Perfetto labels the rows "domain-N".  Span ids and parents ride in
   [args] for tools that want the exact tree rather than the
   containment-inferred one. *)
let to_json () =
  let evs = events () in
  let doms = List.sort_uniq compare (List.map (fun e -> e.dom) evs) in
  let meta =
    List.map
      (fun dom ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int dom);
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain-%d" dom)) ]);
          ])
      doms
  in
  let ev_json e =
    Json.Obj
      [
        ("name", Json.Str e.name);
        ("cat", Json.Str "wtrie");
        ("ph", Json.Str "X");
        ("ts", Json.Float (float_of_int e.t0_ns /. 1e3));
        ("dur", Json.Float (float_of_int (max 0 (e.t1_ns - e.t0_ns)) /. 1e3));
        ("pid", Json.Int 1);
        ("tid", Json.Int e.dom);
        ( "args",
          Json.Obj
            (("id", Json.Int e.id)
            :: ("parent", Json.Int e.parent)
            :: List.map (fun (k, v) -> (k, Json.Int v)) e.args) );
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map ev_json evs));
      ("displayTimeUnit", Json.Str "ns");
    ]

(* [with_trace f]: reset, trace [f ()], return its result with the
   exported trace.  Events stay collected until the next [reset], so
   callers can still inspect [events ()] afterwards. *)
let with_trace ?sample_every f =
  reset ();
  enable ?sample_every ();
  match f () with
  | r ->
      disable ();
      (r, to_json ())
  | exception e ->
      disable ();
      raise e
