(** The flight recorder: an always-on, fixed-size, lock-free ring of
    the most recent noteworthy events, one ring per domain.

    Unlike {!Probe} counters (aggregates) and {!Trace} spans (opt-in,
    possibly sampled), the flight recorder is always armed and bounded:
    recording overwrites the oldest slot, so the memory cost is a
    constant [capacity] records per domain no matter how long the
    process runs, and the write path is one clock read plus one array
    store into the writer domain's own ring — no locks, no allocation
    beyond the event record.

    It exists to answer "what was the system doing just before X?":
    {!dump} merges every domain's ring into one chronological tail, and
    the durable layer's injected-crash path ({!Wt_durable.Fault}) drops
    a [Crash] marker so the dump written at [exit 70] shows the WAL
    appends and checkpoints that led up to the torn write.

    Reading ({!dump}) while other domains write is safe but the
    freshest slots may be mid-overwrite; collectors should quiesce
    writers for exact results (tests do). *)

type kind =
  | Span_begin  (** a {!Trace} span opened ([a] = span id, [note] = name) *)
  | Span_end  (** a {!Trace} span closed ([a] = span id, [note] = name) *)
  | Wal_append  (** a WAL record reached the log ([a] = payload bytes) *)
  | Wal_replay  (** recovery replayed WAL records ([a] = record count) *)
  | Snapshot_save  (** a durable snapshot was written ([a] = generation) *)
  | Snapshot_load  (** a durable snapshot was read ([a] = generation) *)
  | Snapshot_publish  (** an epoch snapshot was published ([a] = epoch) *)
  | Checkpoint  (** WAL absorbed into a fresh snapshot ([a] = new generation) *)
  | Pool_dispatch  (** a pool task started executing ([a] = domain slot) *)
  | Crash  (** injected crash fired; [note] is the fault message *)
  | Slow_query
      (** a served request crossed the slow-query threshold ([a] =
          queue-wait ns, [b] = batch-execution ns, [note] = op kind) *)
  | Mark  (** free-form marker for tests and applications *)

let kind_name = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Wal_append -> "wal_append"
  | Wal_replay -> "wal_replay"
  | Snapshot_save -> "snapshot_save"
  | Snapshot_load -> "snapshot_load"
  | Snapshot_publish -> "snapshot_publish"
  | Checkpoint -> "checkpoint"
  | Pool_dispatch -> "pool_dispatch"
  | Crash -> "crash"
  | Slow_query -> "slow_query"
  | Mark -> "mark"

type event = {
  t_ns : int;
  dom : int;
  kind : kind;
  a : int;
  b : int;
  note : string;
}

let capacity = 512
(** Ring slots per domain; the dump holds at most this many events from
    each domain that ever recorded one. *)

type ring = { rdom : int; ev : event array; mutable widx : int }

let dummy = { t_ns = 0; dom = -1; kind = Mark; a = 0; b = 0; note = "" }

let registry : ring list ref = ref []
let reg_mu = Mutex.create ()

let rkey =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          rdom = (Domain.self () :> int);
          ev = Array.make capacity dummy;
          widx = 0;
        }
      in
      Mutex.lock reg_mu;
      registry := r :: !registry;
      Mutex.unlock reg_mu;
      r)

(* [record kind] stamps an event into the calling domain's ring.  [~t]
   supplies the timestamp when the caller already read the clock (the
   tracer passes its span timestamps through so a test clock ticks once
   per observable instant). *)
let record ?t ?(a = 0) ?(b = 0) ?(note = "") kind =
  let r = Domain.DLS.get rkey in
  let t_ns = match t with Some t -> t | None -> Probe.now_ns () in
  r.ev.(r.widx land (capacity - 1)) <- { t_ns; dom = r.rdom; kind; a; b; note };
  r.widx <- r.widx + 1

(* Collector side. *)

let rings () =
  Mutex.lock reg_mu;
  let rs = !registry in
  Mutex.unlock reg_mu;
  rs

let clear () = List.iter (fun r -> r.widx <- 0) (rings ())

let dump () =
  let tail r =
    let n = r.widx in
    let lo = max 0 (n - capacity) in
    List.init (n - lo) (fun i -> r.ev.((lo + i) land (capacity - 1)))
  in
  List.sort
    (fun a b -> compare (a.t_ns, a.dom) (b.t_ns, b.dom))
    (List.concat_map tail (rings ()))

let event_to_json e =
  Json.Obj
    [
      ("t_ns", Json.Int e.t_ns);
      ("domain", Json.Int e.dom);
      ("kind", Json.Str (kind_name e.kind));
      ("a", Json.Int e.a);
      ("b", Json.Int e.b);
      ("note", Json.Str e.note);
    ]

let to_json () =
  Json.Obj [ ("events", Json.List (List.map event_to_json (dump ()))) ]

let pp_event fmt e =
  Format.fprintf fmt "%12d  dom%-3d %-16s a=%-8d b=%-8d %s" e.t_ns e.dom
    (kind_name e.kind) e.a e.b e.note

let pp fmt () =
  let evs = dump () in
  Format.fprintf fmt "@[<v>flight recorder (%d most recent events):@,"
    (List.length evs);
  List.iter (fun e -> Format.fprintf fmt "  %a@," pp_event e) evs;
  Format.fprintf fmt "@]"
