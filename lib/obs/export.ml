(** Live telemetry export: lock-free snapshots of the whole metric
    universe, counter/histogram deltas between two snapshots, and a
    Prometheus-style text exposition — all safe to call concurrently
    with hot-path recording.

    Every read here is a plain [Atomic.get] walk over {!Probe}'s
    counters and histogram buckets: no locks are taken and no writer is
    ever blocked, so a scrape racing a recording domain observes each
    cell at some instant during the scrape.  Two consequences the
    consumers rely on:

    - {b monotonicity}: a counter or a histogram's per-bucket count can
      only grow between two snapshots, so deltas are non-negative and
      rates derived from them are meaningful;
    - {b bounded skew}: a snapshot is not one atomic cut across cells —
      a histogram's [count] may momentarily run ahead of the bucket sum
      read a microsecond earlier.  The exposition derives cumulative
      buckets and [_count] from the {e same} bucket walk, so each
      emitted histogram is internally consistent.

    {b Gauges} are point-in-time values that are not counters (open
    connections, queue depth, delta size, compaction in progress).
    Layers register a closure under a stable name
    ({!register_gauge}); every exposition calls the closures at scrape
    time.  Registration replaces by name, so re-creating a server or a
    store keeps the gauge set stable. *)

type snapshot = {
  at_ns : int;  (** {!Probe.now_ns} at capture *)
  counters : int array;  (** by {!Metric.index}, length {!Metric.count} *)
  hists : Histogram.snapshot array;  (** by {!Metric.index} *)
}

let capture () =
  {
    at_ns = Probe.now_ns ();
    counters = Array.map (fun m -> Probe.counter m) Metric.all;
    hists = Array.map (fun m -> Probe.histogram m) Metric.all;
  }

(* [delta a b] (a earlier, b later): counter differences and per-bucket
   histogram differences, clamped at 0 so a mid-scrape race can never
   produce a negative rate.  Derived percentile fields of the delta
   histograms are recomputed from the differenced buckets. *)
let delta (a : snapshot) (b : snapshot) =
  let counters = Array.mapi (fun i c -> max 0 (c - a.counters.(i))) b.counters in
  let hists =
    Array.mapi
      (fun i (hb : Histogram.snapshot) ->
        let ha = a.hists.(i) in
        let tbl = Hashtbl.create 8 in
        List.iter (fun (e, c) -> Hashtbl.replace tbl e c) hb.Histogram.buckets;
        List.iter
          (fun (e, c) ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt tbl e) in
            Hashtbl.replace tbl e (cur - c))
          ha.Histogram.buckets;
        let buckets =
          List.sort compare
            (Hashtbl.fold (fun e c acc -> if c > 0 then (e, c) :: acc else acc) tbl [])
        in
        let count = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
        let sum_b = hb.Histogram.mean_ns *. float_of_int hb.Histogram.count in
        let sum_a = ha.Histogram.mean_ns *. float_of_int ha.Histogram.count in
        {
          Histogram.count;
          p50_ns = Report.quantile_of_buckets ~count ~max_ns:hb.Histogram.max_ns buckets 0.50;
          p90_ns = Report.quantile_of_buckets ~count ~max_ns:hb.Histogram.max_ns buckets 0.90;
          p99_ns = Report.quantile_of_buckets ~count ~max_ns:hb.Histogram.max_ns buckets 0.99;
          max_ns = hb.Histogram.max_ns;
          mean_ns = (if count = 0 then 0. else Float.max 0. (sum_b -. sum_a) /. float_of_int count);
          buckets;
        })
      b.hists
  in
  { at_ns = b.at_ns; counters; hists }

let elapsed_ns (a : snapshot) (b : snapshot) = max 1 (b.at_ns - a.at_ns)

(* ------------------------------------------------------------------ *)
(* Gauges *)

let gauge_mu = Mutex.create ()
let gauge_list : (string * (unit -> float)) list ref = ref []

(* Replaces by name: a restarted server re-registers its gauges without
   growing the set.  Registration order is preserved for stable output. *)
let register_gauge name f =
  Mutex.lock gauge_mu;
  (if List.mem_assoc name !gauge_list then
     gauge_list := List.map (fun (n, g) -> if n = name then (n, f) else (n, g)) !gauge_list
   else gauge_list := !gauge_list @ [ (name, f) ]);
  Mutex.unlock gauge_mu

let unregister_gauge name =
  Mutex.lock gauge_mu;
  gauge_list := List.filter (fun (n, _) -> n <> name) !gauge_list;
  Mutex.unlock gauge_mu

(* Gauge closures run outside the lock: they may touch other mutexes
   (e.g. the tiered store's), and a slow gauge must not block
   registration from another domain. *)
let gauges () =
  Mutex.lock gauge_mu;
  let gs = !gauge_list in
  Mutex.unlock gauge_mu;
  List.filter_map
    (fun (n, f) -> match f () with v -> Some (n, v) | exception _ -> None)
    gs

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition *)

(* Counters expose as [wtrie_<name>_total]; latency histograms as
   [wtrie_<name>_ns] with cumulative [_bucket{le="..."}] lines derived
   from the log-scaled buckets (bucket [b] covers [2^b, 2^(b+1)) ns, so
   its upper bound is [le="2^(b+1)"]), plus [_sum]/[_count]; gauges as
   bare [wtrie_<name>].  Zero-valued counters are emitted (the universe
   is fixed, and a dashboard wants the series to exist before it first
   fires); empty histograms are skipped to keep the page proportional
   to what actually ran. *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let prometheus_of_snapshot ?(gauges = []) (s : snapshot) =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Array.iteri
    (fun i m ->
      let n = Metric.name m in
      add "# TYPE wtrie_%s_total counter\n" n;
      add "wtrie_%s_total %d\n" n s.counters.(i))
    Metric.all;
  Array.iteri
    (fun i m ->
      let h = s.hists.(i) in
      if h.Histogram.count > 0 then begin
        let n = Metric.name m in
        add "# TYPE wtrie_%s_ns histogram\n" n;
        let cum = ref 0 in
        List.iter
          (fun (e, c) ->
            cum := !cum + c;
            (* bucket [e] covers [2^e, 2^(e+1)): upper bound 2^(e+1) *)
            add "wtrie_%s_ns_bucket{le=\"%d\"} %d\n" n (1 lsl (e + 1)) !cum)
          h.Histogram.buckets;
        add "wtrie_%s_ns_bucket{le=\"+Inf\"} %d\n" n !cum;
        add "wtrie_%s_ns_sum %s\n" n
          (float_str (h.Histogram.mean_ns *. float_of_int h.Histogram.count));
        add "wtrie_%s_ns_count %d\n" n !cum
      end)
    Metric.all;
  List.iter
    (fun (n, v) ->
      add "# TYPE wtrie_%s gauge\n" n;
      add "wtrie_%s %s\n" n (float_str v))
    gauges;
  Buffer.contents buf

(* [prometheus ()] is the live scrape: capture + registered gauges. *)
let prometheus () = prometheus_of_snapshot ~gauges:(gauges ()) (capture ())

(* The JSON shape is {!Report}'s, unchanged — one scrape endpoint can
   serve both representations from the same probe state. *)
let json () = Report.to_json (Report.capture ())
let json_string () = Report.to_json_string (Report.capture ())
