(** Centralised word-overhead accounting and the space-breakdown report.

    Every Wavelet Trie variant reports its measured footprint next to the
    paper's lower bound [LB(S) = LT(Sset) + n H0(S)].  The pointer/header
    overhead of the in-memory representation used to be ad-hoc magic
    numbers in each variant's [space_bits]; the constants below model an
    OCaml heap block uniformly — one header word plus one word per field
    — so static, append-only and dynamic numbers are comparable.

    The static variant's nodes are a single block:
      [Leaf {label; count}] and [Node {label; bv; zero; one}].
    The mutable variants box the kind separately:
      [{label; kind}] pointing at [Leaf {count}] or
      [Internal {bv; zero; one}]. *)

let word_bits = 64

(* An OCaml heap block with [fields] fields: header word + field words. *)
let block_bits ~fields = word_bits * (fields + 1)

let static_leaf_bits = block_bits ~fields:2
let static_internal_bits = block_bits ~fields:4
let mutable_leaf_bits = block_bits ~fields:2 + block_bits ~fields:1
let mutable_internal_bits = block_bits ~fields:2 + block_bits ~fields:3

(* The [{root; n}] record every variant keeps at the top. *)
let root_bits = block_bits ~fields:2

(* ------------------------------------------------------------------ *)

type breakdown = {
  variant : string;  (** "static" | "append" | "dynamic" | ... *)
  n : int;  (** sequence length *)
  distinct : int;  (** |Sset| *)
  label_bits : int;  (** measured label payload |L| *)
  bv_bits : int;  (** measured bitvector payload incl. directories *)
  overhead_bits : int;  (** node headers and pointers *)
  total_bits : int;
  lt_bits : float;  (** LT(Sset), Theorem 3.6 *)
  nh0_bits : float;  (** n H0(S) *)
}

let lower_bound_bits b = b.lt_bits +. b.nh0_bits

let ratio_to_lb b =
  let lb = lower_bound_bits b in
  if lb > 0. then float_of_int b.total_bits /. lb else 0.

let breakdown_to_json b =
  Json.Obj
    [
      ("variant", Json.Str b.variant);
      ("n", Json.Int b.n);
      ("distinct", Json.Int b.distinct);
      ("label_bits", Json.Int b.label_bits);
      ("bv_bits", Json.Int b.bv_bits);
      ("overhead_bits", Json.Int b.overhead_bits);
      ("total_bits", Json.Int b.total_bits);
      ("lt_bits", Json.Float b.lt_bits);
      ("nh0_bits", Json.Float b.nh0_bits);
      (* derived, for readers; [breakdown_of_json] recomputes them *)
      ("lb_bits", Json.Float (lower_bound_bits b));
      ("ratio_to_lb", Json.Float (ratio_to_lb b));
    ]

let breakdown_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* variant = Option.bind (Json.member "variant" j) Json.to_str in
  let* n = Option.bind (Json.member "n" j) Json.to_int in
  let* distinct = Option.bind (Json.member "distinct" j) Json.to_int in
  let* label_bits = Option.bind (Json.member "label_bits" j) Json.to_int in
  let* bv_bits = Option.bind (Json.member "bv_bits" j) Json.to_int in
  let* overhead_bits = Option.bind (Json.member "overhead_bits" j) Json.to_int in
  let* total_bits = Option.bind (Json.member "total_bits" j) Json.to_int in
  let* lt_bits = Option.bind (Json.member "lt_bits" j) Json.to_float in
  let* nh0_bits = Option.bind (Json.member "nh0_bits" j) Json.to_float in
  Some
    { variant; n; distinct; label_bits; bv_bits; overhead_bits; total_bits; lt_bits; nh0_bits }

let pp_breakdown fmt b =
  Format.fprintf fmt
    "@[<v>[%s] n=%d distinct=%d@,\
     labels %d + bitvectors %d + overhead %d = %d bits@,\
     LB = LT + nH0 = %.0f + %.0f = %.0f bits (%.2fx LB)@]"
    b.variant b.n b.distinct b.label_bits b.bv_bits b.overhead_bits b.total_bits
    b.lt_bits b.nh0_bits (lower_bound_bits b) (ratio_to_lb b)
