(** A point-in-time snapshot of everything the probes collected:
    operation counters, latency histograms and per-variant space
    breakdowns — the payload behind [wtrie --stats], the bench's JSON
    metrics block, and programmatic assertions in tests.

    [to_json]/[of_json] round-trip: derived fields (lower bounds,
    ratios, latency percentiles) are emitted for readers but recomputed
    on parse — percentiles from the raw histogram buckets — so
    [to_json (of_json (to_json r)) = to_json r].

    The JSON form is {e normalized}: the [counters] object carries every
    declared metric (zeros included) and [latencies] carries one entry
    per metric (never-hit metrics get the same shape with [count] 0 and
    empty [buckets]), so two reports always share one structure and
    downstream consumers ([bench/regress.ml]) can diff them field by
    field without guessing which keys happened to fire. *)

type latency = {
  op : string;
  count : int;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
  mean_ns : float;
  buckets : (int * int) list;
      (** raw log-scaled histogram: [(exponent, count)], ascending;
          bucket [b] covers [2^b, 2^(b+1)) ns, bucket 0 absorbs <= 1 *)
}

type t = {
  counters : (string * int) list;
  latencies : latency list;
  space : Space.breakdown list;
}

let empty = { counters = []; latencies = []; space = [] }

(* Percentile derivation from the raw buckets, shared by [capture], the
   parser and the cross-op summary: the value at quantile [q] is the
   lower bound of the bucket holding the sample of rank
   floor(q * (count-1)) — the same rule {!Histogram.quantile} applies to
   the live atomics, so a captured report and its parsed round-trip
   agree exactly.  [max_ns] caps the top bucket since the exact maximum
   is tracked separately. *)
let quantile_of_buckets ~count ~max_ns buckets q =
  if count = 0 then 0
  else begin
    let target =
      max 0 (min (count - 1) (int_of_float (q *. float_of_int (count - 1))))
    in
    let rec walk seen = function
      | [] -> max_ns
      | (b, c) :: tl ->
          if target < seen + c then if b = 0 then 0 else 1 lsl b
          else walk (seen + c) tl
    in
    walk 0 buckets
  end

let derive ~op ~count ~max_ns ~mean_ns ~buckets =
  {
    op;
    count;
    p50_ns = quantile_of_buckets ~count ~max_ns buckets 0.50;
    p90_ns = quantile_of_buckets ~count ~max_ns buckets 0.90;
    p99_ns = quantile_of_buckets ~count ~max_ns buckets 0.99;
    max_ns;
    mean_ns;
    buckets;
  }

let empty_latency op =
  { op; count = 0; p50_ns = 0; p90_ns = 0; p99_ns = 0; max_ns = 0; mean_ns = 0.; buckets = [] }

let capture ?(space = []) () =
  {
    counters = Probe.counter_list ();
    latencies =
      List.map
        (fun (op, (s : Histogram.snapshot)) ->
          derive ~op ~count:s.count ~max_ns:s.max_ns ~mean_ns:s.mean_ns
            ~buckets:s.buckets)
        (Probe.latency_list ());
    space;
  }

let counter t name = match List.assoc_opt name t.counters with Some c -> c | None -> 0

let latency t op = List.find_opt (fun l -> l.op = op) t.latencies

(* The cross-operation roll-up behind [wtrie stats]'s "overall latency"
   line: merge every op's buckets into one histogram and re-derive the
   percentiles.  [None] when nothing was timed. *)
let summary t =
  let live = List.filter (fun l -> l.count > 0) t.latencies in
  if live = [] then None
  else begin
    let merged = Hashtbl.create 16 in
    List.iter
      (fun l ->
        List.iter
          (fun (b, c) ->
            Hashtbl.replace merged b
              (c + Option.value ~default:0 (Hashtbl.find_opt merged b)))
          l.buckets)
      live;
    let buckets =
      List.sort compare (Hashtbl.fold (fun b c acc -> (b, c) :: acc) merged [])
    in
    let count = List.fold_left (fun acc l -> acc + l.count) 0 live in
    let max_ns = List.fold_left (fun acc l -> max acc l.max_ns) 0 live in
    let mean_ns =
      List.fold_left (fun acc l -> acc +. (l.mean_ns *. float_of_int l.count)) 0. live
      /. float_of_int count
    in
    Some (derive ~op:"overall" ~count ~max_ns ~mean_ns ~buckets)
  end

(* ------------------------------------------------------------------ *)

let latency_to_json l =
  Json.Obj
    [
      ("op", Json.Str l.op);
      ("count", Json.Int l.count);
      ("p50_ns", Json.Int l.p50_ns);
      ("p90_ns", Json.Int l.p90_ns);
      ("p99_ns", Json.Int l.p99_ns);
      ("max_ns", Json.Int l.max_ns);
      ("mean_ns", Json.Float l.mean_ns);
      ( "buckets",
        Json.Obj (List.map (fun (b, c) -> (string_of_int b, Json.Int c)) l.buckets) );
    ]

let latency_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* op = Option.bind (Json.member "op" j) Json.to_str in
  let* count = Option.bind (Json.member "count" j) Json.to_int in
  let* max_ns = Option.bind (Json.member "max_ns" j) Json.to_int in
  let* mean_ns = Option.bind (Json.member "mean_ns" j) Json.to_float in
  let* bucket_fields = Option.bind (Json.member "buckets" j) Json.to_obj in
  let* buckets =
    List.fold_left
      (fun acc (k, v) ->
        match (acc, int_of_string_opt k, Json.to_int v) with
        | Some acc, Some b, Some c -> Some ((b, c) :: acc)
        | _ -> None)
      (Some []) bucket_fields
  in
  let buckets = List.sort compare buckets in
  (* p50/p90/p99 are derived fields: recomputed from the buckets, not
     trusted from the input *)
  Some (derive ~op ~count ~max_ns ~mean_ns ~buckets)

(* Normalized views: every declared metric appears exactly once, in
   declaration order; entries for names outside the metric universe
   (none today) are preserved after the fixed set. *)

let normalized_counters t =
  let known = Array.to_list (Array.map (fun m -> (Metric.name m, counter t (Metric.name m))) Metric.all) in
  let extra =
    List.filter (fun (k, _) -> Array.for_all (fun m -> Metric.name m <> k) Metric.all) t.counters
  in
  known @ extra

let normalized_latencies t =
  let known =
    Array.to_list
      (Array.map
         (fun m ->
           let n = Metric.name m in
           match latency t n with Some l -> l | None -> empty_latency n)
         Metric.all)
  in
  let extra =
    List.filter
      (fun l -> Array.for_all (fun m -> Metric.name m <> l.op) Metric.all)
      t.latencies
  in
  known @ extra

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (normalized_counters t)) );
      ("latencies", Json.List (List.map latency_to_json (normalized_latencies t)));
      ("space", Json.List (List.map Space.breakdown_to_json t.space));
    ]

let to_json_string t = Json.to_string (to_json t)

let all_some xs = if List.exists Option.is_none xs then None else Some (List.filter_map Fun.id xs)

let of_json j =
  let ( let* ) o f = Option.bind o f in
  let result =
    let* counter_fields = Option.bind (Json.member "counters" j) Json.to_obj in
    let* counters =
      all_some
        (List.map
           (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v))
           counter_fields)
    in
    let* latency_items = Option.bind (Json.member "latencies" j) Json.to_list in
    let* latencies = all_some (List.map latency_of_json latency_items) in
    let* space_items = Option.bind (Json.member "space" j) Json.to_list in
    let* space = all_some (List.map Space.breakdown_of_json space_items) in
    Some { counters; latencies; space }
  in
  match result with
  | Some t -> Ok t
  | None -> Error "Report.of_json: missing or ill-typed field"

let of_json_string s =
  match Json.of_string s with Ok j -> of_json j | Error e -> Error e

(* ------------------------------------------------------------------ *)

(* Human rendering skips the zero entries the normalized JSON carries:
   a parsed report prints the same as the capture it came from. *)
let pp fmt t =
  let counters = List.filter (fun (_, c) -> c <> 0) t.counters in
  let latencies = List.filter (fun l -> l.count > 0) t.latencies in
  Format.fprintf fmt "@[<v>";
  if counters <> [] then begin
    Format.fprintf fmt "operation counters:@,";
    List.iter
      (fun (name, c) -> Format.fprintf fmt "  %-20s %12d@," name c)
      counters
  end;
  if latencies <> [] then begin
    Format.fprintf fmt "latencies (log-scaled histogram, ns):@,";
    Format.fprintf fmt "  %-20s %10s %10s %10s %10s %10s@," "op" "count" "p50" "p90"
      "p99" "max";
    List.iter
      (fun l ->
        Format.fprintf fmt "  %-20s %10d %10d %10d %10d %10d@," l.op l.count l.p50_ns
          l.p90_ns l.p99_ns l.max_ns)
      latencies;
    match summary t with
    | None -> ()
    | Some s ->
        Format.fprintf fmt "  overall latency: p50 %d ns  p90 %d ns  p99 %d ns  max %d ns  (%d samples)@,"
          s.p50_ns s.p90_ns s.p99_ns s.max_ns s.count
  end;
  if t.space <> [] then begin
    Format.fprintf fmt "space vs lower bound:@,";
    List.iter (fun b -> Format.fprintf fmt "  @[%a@]@," Space.pp_breakdown b) t.space
  end;
  if counters = [] && latencies = [] && t.space = [] then
    Format.fprintf fmt "(no samples; were probes enabled?)@,";
  Format.fprintf fmt "@]"
