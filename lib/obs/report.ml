(** A point-in-time snapshot of everything the probes collected:
    operation counters, latency histograms and per-variant space
    breakdowns — the payload behind [wtrie --stats], the bench's JSON
    metrics block, and programmatic assertions in tests.

    [to_json]/[of_json] round-trip: derived fields (lower bounds,
    ratios) are emitted for readers but recomputed on parse, so
    [to_json (of_json (to_json r)) = to_json r]. *)

type latency = {
  op : string;
  count : int;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
  mean_ns : float;
}

type t = {
  counters : (string * int) list;
  latencies : latency list;
  space : Space.breakdown list;
}

let empty = { counters = []; latencies = []; space = [] }

let capture ?(space = []) () =
  {
    counters = Probe.counter_list ();
    latencies =
      List.map
        (fun (op, (s : Histogram.snapshot)) ->
          {
            op;
            count = s.count;
            p50_ns = s.p50_ns;
            p90_ns = s.p90_ns;
            p99_ns = s.p99_ns;
            max_ns = s.max_ns;
            mean_ns = s.mean_ns;
          })
        (Probe.latency_list ());
    space;
  }

let counter t name = match List.assoc_opt name t.counters with Some c -> c | None -> 0

(* ------------------------------------------------------------------ *)

let latency_to_json l =
  Json.Obj
    [
      ("op", Json.Str l.op);
      ("count", Json.Int l.count);
      ("p50_ns", Json.Int l.p50_ns);
      ("p90_ns", Json.Int l.p90_ns);
      ("p99_ns", Json.Int l.p99_ns);
      ("max_ns", Json.Int l.max_ns);
      ("mean_ns", Json.Float l.mean_ns);
    ]

let latency_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* op = Option.bind (Json.member "op" j) Json.to_str in
  let* count = Option.bind (Json.member "count" j) Json.to_int in
  let* p50_ns = Option.bind (Json.member "p50_ns" j) Json.to_int in
  let* p90_ns = Option.bind (Json.member "p90_ns" j) Json.to_int in
  let* p99_ns = Option.bind (Json.member "p99_ns" j) Json.to_int in
  let* max_ns = Option.bind (Json.member "max_ns" j) Json.to_int in
  let* mean_ns = Option.bind (Json.member "mean_ns" j) Json.to_float in
  Some { op; count; p50_ns; p90_ns; p99_ns; max_ns; mean_ns }

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters));
      ("latencies", Json.List (List.map latency_to_json t.latencies));
      ("space", Json.List (List.map Space.breakdown_to_json t.space));
    ]

let to_json_string t = Json.to_string (to_json t)

let all_some xs = if List.exists Option.is_none xs then None else Some (List.filter_map Fun.id xs)

let of_json j =
  let ( let* ) o f = Option.bind o f in
  let result =
    let* counter_fields = Option.bind (Json.member "counters" j) Json.to_obj in
    let* counters =
      all_some
        (List.map
           (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v))
           counter_fields)
    in
    let* latency_items = Option.bind (Json.member "latencies" j) Json.to_list in
    let* latencies = all_some (List.map latency_of_json latency_items) in
    let* space_items = Option.bind (Json.member "space" j) Json.to_list in
    let* space = all_some (List.map Space.breakdown_of_json space_items) in
    Some { counters; latencies; space }
  in
  match result with
  | Some t -> Ok t
  | None -> Error "Report.of_json: missing or ill-typed field"

let of_json_string s =
  match Json.of_string s with Ok j -> of_json j | Error e -> Error e

(* ------------------------------------------------------------------ *)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  if t.counters <> [] then begin
    Format.fprintf fmt "operation counters:@,";
    List.iter
      (fun (name, c) -> Format.fprintf fmt "  %-20s %12d@," name c)
      t.counters
  end;
  if t.latencies <> [] then begin
    Format.fprintf fmt "latencies (log-scaled histogram, ns):@,";
    Format.fprintf fmt "  %-20s %10s %10s %10s %10s %10s@," "op" "count" "p50" "p90"
      "p99" "max";
    List.iter
      (fun l ->
        Format.fprintf fmt "  %-20s %10d %10d %10d %10d %10d@," l.op l.count l.p50_ns
          l.p90_ns l.p99_ns l.max_ns)
      t.latencies
  end;
  if t.space <> [] then begin
    Format.fprintf fmt "space vs lower bound:@,";
    List.iter (fun b -> Format.fprintf fmt "  @[%a@]@," Space.pp_breakdown b) t.space
  end;
  if t.counters = [] && t.latencies = [] && t.space = [] then
    Format.fprintf fmt "(no samples; were probes enabled?)@,";
  Format.fprintf fmt "@]"
