(** Lock-free log-scaled histogram of nanosecond durations.

    Bucket [b] covers durations in [2^b, 2^(b+1)) ns (bucket 0 also
    absorbs non-positive samples), so 64 buckets span any [int] value
    with a fixed relative error of at most 2x.  Recording is one
    [Atomic.fetch_and_add] plus one CAS loop for the exact maximum —
    safe from any number of domains without locks.

    Percentiles are read from the bucket ranks and reported as the lower
    bound of the selected bucket (except p100, which is exact), which
    keeps snapshots deterministic under a deterministic clock. *)

let nbuckets = 64

type t = {
  buckets : int Atomic.t array;
  total : int Atomic.t;
  sum : int Atomic.t;
  max : int Atomic.t;
}

let create () =
  {
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum = Atomic.make 0;
    max = Atomic.make 0;
  }

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0
  end

let rec store_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then store_max a v

let record t v =
  let v = max 0 v in
  ignore (Atomic.fetch_and_add t.buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add t.total 1);
  ignore (Atomic.fetch_and_add t.sum v);
  store_max t.max v

let reset t =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.total 0;
  Atomic.set t.sum 0;
  Atomic.set t.max 0

let count t = Atomic.get t.total

(* Value at quantile [q] in [0,1]: lower bound of the bucket holding the
   sample of rank floor(q * (count-1)). *)
let quantile t q =
  let n = Atomic.get t.total in
  if n = 0 then 0
  else begin
    let target = int_of_float (q *. float_of_int (n - 1)) in
    let target = max 0 (min (n - 1) target) in
    let rec walk b seen =
      if b >= nbuckets then Atomic.get t.max
      else begin
        let c = Atomic.get t.buckets.(b) in
        if target < seen + c then if b = 0 then 0 else 1 lsl b
        else walk (b + 1) (seen + c)
      end
    in
    walk 0 0
  end

type snapshot = {
  count : int;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  max_ns : int;
  mean_ns : float;
  buckets : (int * int) list;
      (** non-empty buckets as [(exponent, count)], ascending: bucket
          [b] holds samples in [2^b, 2^(b+1)) ns (0 absorbs <= 1).
          This is the raw data the percentiles derive from
          ({!Wt_obs.Report} re-derives them on JSON parse). *)
}

let bucket_list (t : t) =
  let rec go b acc =
    if b < 0 then acc
    else
      let c = Atomic.get t.buckets.(b) in
      go (b - 1) (if c = 0 then acc else (b, c) :: acc)
  in
  go (nbuckets - 1) []

let snapshot t =
  let n = Atomic.get t.total in
  {
    count = n;
    p50_ns = quantile t 0.50;
    p90_ns = quantile t 0.90;
    p99_ns = quantile t 0.99;
    max_ns = Atomic.get t.max;
    mean_ns =
      (if n = 0 then 0. else float_of_int (Atomic.get t.sum) /. float_of_int n);
    buckets = bucket_list t;
  }
