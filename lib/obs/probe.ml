(** The probe front door: one global, lock-free telemetry sink.

    Hot paths call {!record}/{!hit} unconditionally; when probes are
    disabled (the default) each call is a single atomic load and a
    predictable branch, so instrumentation costs nothing measurable and
    query results are bit-for-bit those of the uninstrumented code.
    When enabled, counters are [Atomic.fetch_and_add] and latencies go
    to per-metric log-scaled histograms — no locks anywhere.

    The clock is injectable ({!set_clock}) so tests can drive the
    latency histograms deterministically. *)

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let counters = Array.init Metric.count (fun _ -> Atomic.make 0)
let histograms = Array.init Metric.count (fun _ -> Histogram.create ())

let reset () =
  Array.iter (fun c -> Atomic.set c 0) counters;
  Array.iter Histogram.reset histograms

let[@inline] record m n =
  if Atomic.get on then ignore (Atomic.fetch_and_add counters.(Metric.index m) n)

let[@inline] hit m = record m 1

let counter m = Atomic.get counters.(Metric.index m)
let histogram m = Histogram.snapshot histograms.(Metric.index m)

(* Monotonic nanoseconds via the CLOCK_MONOTONIC stub (a [@noalloc]
   external).  Wall-clock time ([Unix.gettimeofday]) is wrong here: an
   NTP step mid-measurement lands a wildly negative or huge sample in
   the latency histograms and corrupts span durations. *)
let default_clock () = Int64.to_int (Monotonic_clock.now ())
let clock = ref default_clock
let set_clock f = clock := f
let now_ns () = !clock ()

(* [duration m ns] records an externally measured duration into [m]'s
   latency histogram — for spans that start and end on different
   domains (e.g. pool queue wait: stamped at submit, recorded at the
   executing domain), where [time]'s single-closure shape cannot
   apply.  Histograms are lock-free, so any domain may record. *)
let[@inline] duration m ns =
  if Atomic.get on then Histogram.record histograms.(Metric.index m) ns

(* [time m f] runs [f ()]; when probes are enabled the duration lands in
   [m]'s latency histogram.  Timing does not touch the counter for [m]:
   counters are bumped by the instrumented implementation itself, so the
   two views stay independently meaningful. *)
let time m f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = !clock () in
    let r = f () in
    Histogram.record histograms.(Metric.index m) (!clock () - t0);
    r
  end

(* Snapshots for {!Report}: only metrics that fired, in declaration order. *)

let counter_list () =
  Array.fold_right
    (fun m acc ->
      let c = counter m in
      if c = 0 then acc else (Metric.name m, c) :: acc)
    Metric.all []

let latency_list () =
  Array.fold_right
    (fun m acc ->
      let s = histogram m in
      if s.Histogram.count = 0 then acc else (Metric.name m, s) :: acc)
    Metric.all []
