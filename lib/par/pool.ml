(** A reusable domain pool: a fixed set of worker domains draining one
    [Mutex]/[Condition]-protected task queue.

    A pool of size [k] provides [k]-way parallelism for {!run}: [k - 1]
    worker domains plus the submitting domain itself, which — rather
    than blocking for the workers — steals tasks back from the queue
    until it is empty and only then waits for stragglers.  This keeps a
    size-1 pool strictly equivalent to sequential execution (no domains
    are spawned, no queue is touched) and never oversubscribes the
    machine with an idle submitter.

    The default pool is shared, created on first use, and sized from
    [WTRIE_DOMAINS] when set (clamped to [1, 64]) or
    [Domain.recommended_domain_count] otherwise.

    Telemetry (see docs/observability.md): every executed task counts as
    [par_task] ([par_steal] when the submitter ran it), its time from
    submit to start lands in the [par_queue_wait] histogram, and each
    pool keeps an always-on per-domain latency histogram of the tasks
    that domain executed ({!domain_latencies}). *)

module Histogram = Wt_obs.Histogram
module Probe = Wt_obs.Probe

(* [fin] signals the submitting [run]'s countdown.  It must be called
   only after all per-task accounting (the per-domain histogram in
   particular), or the submitter can observe the pool's telemetry
   before the last task has recorded itself. *)
type task = { stamp : int; run : unit -> unit; fin : unit -> unit }

type t = {
  size : int; (* total parallelism: workers + the submitting domain *)
  mutable workers : unit Domain.t array;
  q : task Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  hists : Histogram.t array; (* slot 0 = submitter, slot k = worker k *)
}

let size t = t.size

(* Execute one dequeued task on behalf of domain slot [k].  Tasks
   enqueued by [run] capture their own exceptions, but a defensive
   swallow keeps a worker alive (and the pool usable) even if a raw
   closure slips through. *)
let exec_task t k task =
  Probe.hit Par_task;
  Wt_obs.Flight.record ~a:k Pool_dispatch;
  if k = 0 then Probe.hit Par_steal;
  if task.stamp > 0 then Probe.duration Par_queue_wait (Probe.now_ns () - task.stamp);
  let t0 = Probe.now_ns () in
  (try task.run () with _ -> ());
  Histogram.record t.hists.(k) (Probe.now_ns () - t0);
  task.fin ()

let rec worker_loop t k =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.m
  done;
  (* On shutdown the queue is drained before exiting, so no submitted
     task is ever lost. *)
  if Queue.is_empty t.q then Mutex.unlock t.m
  else begin
    let task = Queue.pop t.q in
    Mutex.unlock t.m;
    exec_task t k task;
    worker_loop t k
  end

let create ?size () =
  let size =
    match size with
    | Some s ->
        if s < 1 then invalid_arg "Pool.create: size must be >= 1";
        s
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      size;
      workers = [||];
      q = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      hists = Array.init size (fun _ -> Histogram.create ());
    }
  in
  t.workers <- Array.init (size - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let shutdown t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* Fan out [fns] and return when every one of them has finished.

   Completion is tracked by an atomic countdown; the final decrement
   broadcasts a dedicated per-call condition.  The waiter only blocks
   while holding that condition's mutex and re-checks the countdown
   under it, and the finisher broadcasts under the same mutex, so the
   wakeup cannot be missed.  The atomic decrement is also the
   happens-before edge that publishes each task's writes (e.g. a result
   slot) to the submitter. *)
let run t fns =
  let n = Array.length fns in
  if n = 0 then ()
  else if n = 1 || t.size = 1 then Array.iter (fun f -> f ()) fns
  else begin
    let remaining = Atomic.make n in
    let failed = Atomic.make None in
    let dm = Mutex.create () in
    let dc = Condition.create () in
    let wrap f () =
      try f ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failed None (Some (e, bt)))
    in
    let finish () =
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock dm;
        Condition.broadcast dc;
        Mutex.unlock dm
      end
    in
    let stamp = if Probe.enabled () then Probe.now_ns () else 0 in
    Mutex.lock t.m;
    Array.iter (fun f -> Queue.push { stamp; run = wrap f; fin = finish } t.q) fns;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    (* Steal loop: the submitter works the queue dry instead of idling.
       It may pick up tasks submitted by a concurrent [run] — harmless,
       their countdown is theirs. *)
    let rec steal () =
      Mutex.lock t.m;
      let task = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
      Mutex.unlock t.m;
      match task with
      | Some task ->
          exec_task t 0 task;
          steal ()
      | None -> ()
    in
    steal ();
    Mutex.lock dm;
    while Atomic.get remaining > 0 do
      Condition.wait dc dm
    done;
    Mutex.unlock dm;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let domain_latencies t =
  Array.mapi
    (fun k h -> ((if k = 0 then "submitter" else Printf.sprintf "worker-%d" k), Histogram.snapshot h))
    t.hists

(* The shared default pool, sized from the environment. *)

let default_size () =
  match Sys.getenv_opt "WTRIE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> min d 64
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_mutex = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~size:(default_size ()) () in
        default_pool := Some p;
        at_exit (fun () -> shutdown p);
        p
  in
  Mutex.unlock default_mutex;
  p
