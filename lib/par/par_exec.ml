(** Sharded parallel batch execution.

    [query_batch ~domains engine trie ops] partitions [ops] into up to
    [domains] contiguous shards, runs each shard through [engine] (a
    whole-batch executor such as [Wt_exec.Exec.Static.query_batch]) on a
    {!Pool}, and concatenates the per-shard results — shards are
    contiguous and concatenated in shard order, so the output is
    index-for-index what [engine trie ops] returns.

    Each shard invocation of the engine builds its own frontier, memo
    tables and per-node rank cursors, so shards share nothing mutable;
    the trie itself is only read.  This is safe for all three variants
    provided the trie is not mutated during the call — for the dynamic
    variant under concurrent updates, query a {!Snapshot}-published
    [Dynamic_wt.snapshot] instead of the owner's working trie.

    Shards are never smaller than [min_shard] operations (default 256):
    below that, fan-out overhead (task queueing, domain wakeup) swamps
    the per-op work and the batch runs on the submitting domain alone —
    in particular empty and size-1 batches never touch the pool. *)

module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace

let default_min_shard = 256

(* Contiguous, maximally even partition: shard i covers
   [i*n/k, (i+1)*n/k). *)
let shard_ranges n k = Array.init k (fun i -> (i * n / k, ((i + 1) * n / k) - (i * n / k)))

let query_batch ?pool ?(min_shard = default_min_shard) ?domains
    (engine : 'trie -> 'op array -> 'res array) (trie : 'trie) (ops : 'op array) :
    'res array =
  match domains with
  | None -> engine trie ops
  | Some d ->
      let nops = Array.length ops in
      let min_shard = max 1 min_shard in
      let shards = min (max 1 d) (max 1 (min nops (nops / min_shard))) in
      if shards <= 1 then engine trie ops
      else begin
        let pool = match pool with Some p -> p | None -> Pool.default () in
        Probe.hit Par_batch;
        Probe.record Par_shards shards;
        Trace.with_span ~args:[ ("shards", shards); ("ops", nops) ] "par.batch"
          (fun () ->
            (* captured on the submitting domain so the shard spans —
               which run on pool domains with empty span stacks — nest
               under this batch in the merged trace *)
            let parent = Trace.current_id () in
            let parts = Array.make shards [||] in
            let tasks =
              Array.mapi
                (fun i (off, len) () ->
                  Trace.with_span ~parent
                    ~args:[ ("shard", i); ("ops", len) ]
                    "par.shard"
                    (fun () ->
                      parts.(i) <-
                        Probe.time Par_shard_run (fun () ->
                            engine trie (Array.sub ops off len))))
                (shard_ranges nops shards)
            in
            Pool.run pool tasks;
            Array.concat (Array.to_list parts))
      end
