(** Epoch-published snapshots: single-writer, many-reader isolation.

    The owner domain keeps a private working value it is free to mutate
    (for the dynamic trie: apply [insert]/[delete]/[append]) and, at
    consistency points of its choosing, {!publish}es a frozen copy
    (e.g. [Dynamic_wt.snapshot]).  Reader domains {!read} whichever
    snapshot is current; a snapshot, once obtained, never changes under
    the reader — queries against it are answered entirely from state
    frozen at publish time, no matter how many updates the owner has
    applied since.

    The handle is a single [Atomic.t] holding an [(epoch, value)] pair,
    so a reader always sees a consistent pair, and the atomic swap is
    the happens-before edge that makes the freshly built snapshot's
    internals visible to other domains. *)

type 'a t = (int * 'a) Atomic.t

let create v : _ t = Atomic.make (0, v)
let read (t : _ t) = snd (Atomic.get t)
let epoch (t : _ t) = fst (Atomic.get t)

let pair (t : _ t) = Atomic.get t
(** The current [(epoch, value)], read atomically — use this when the
    reader must know which epoch its value belongs to. *)

(* Single writer: the epoch bump is read-then-set, not a CAS loop, on
   the strength of the one-owner protocol.  Counted as
   [par_snapshot_publish]. *)
let publish (t : _ t) v =
  let e = fst (Atomic.get t) + 1 in
  Atomic.set t (e, v);
  Wt_obs.Probe.hit Par_snapshot_publish;
  Wt_obs.Flight.record ~a:e Snapshot_publish;
  e
