(** A reusable domain pool: worker domains draining one
    [Mutex]/[Condition] task queue, with the submitting domain stealing
    work back instead of idling.  See pool.ml for the protocol. *)

type t

val create : ?size:int -> unit -> t
(** [create ~size ()] builds a pool offering [size]-way parallelism:
    [size - 1] worker domains plus the domain that calls {!run}.
    [~size:1] spawns nothing and makes {!run} purely sequential.
    Default size: {!default_size}.  Raises [Invalid_argument] when
    [size < 1]. *)

val size : t -> int

val run : t -> (unit -> unit) array -> unit
(** Execute all thunks, in parallel across the pool, and return once
    every one has finished.  Thunk order is not an execution order;
    callers sequence results by writing to disjoint slots.  If any
    thunk raised, the first captured exception is re-raised (with its
    backtrace) after all thunks have finished.  Safe to call from
    several domains at once. *)

val shutdown : t -> unit
(** Drain the queue, stop and join the workers.  Idempotent. *)

val domain_latencies : t -> (string * Wt_obs.Histogram.snapshot) array
(** Always-on per-domain latency histograms of the tasks each domain
    executed: slot ["submitter"] is the stealing caller, ["worker-k"]
    the k-th spawned domain. *)

val default_size : unit -> int
(** [WTRIE_DOMAINS] when set to a positive integer (clamped to 64),
    else [Domain.recommended_domain_count ()]. *)

val default : unit -> t
(** The shared pool, created on first use with {!default_size} and shut
    down at exit. *)
