(* wtrie — index a file of lines as a compressed sequence of strings and
   query it: the paper's Access/Rank/Select/RankPrefix/SelectPrefix plus
   the Section 5 range analytics, from the command line.

     dune exec bin/wtrie_cli.exe -- stats mylog.txt
     dune exec bin/wtrie_cli.exe -- rank mylog.txt "GET /index.html"
     dune exec bin/wtrie_cli.exe -- prefix-count mylog.txt "GET /api/"
     dune exec bin/wtrie_cli.exe -- majority mylog.txt --lo 1000 --hi 2000

   Each line of the file is one element of the sequence, in order.
   Sources go through one front door: a line file builds in memory, a
   saved index opens via [Wtrie.Storage] (format v3 maps the flat arena
   in place — O(1), zero-copy; format v2 still loads), a durable store
   directory replays.  Pass [--stats] to any query command to get the
   observability report (operation counters, latency histograms,
   space-vs-LB breakdown) on stderr.

   Durability: [index] writes a checksummed format-v3 static index
   atomically; [convert] upgrades any older index in place; [ingest]
   maintains a crash-safe snapshot+WAL store directory; [verify]
   deep-checks every form and [recover] truncates a torn WAL tail and
   checkpoints.  Query commands accept a line file, a saved index, or
   an (append) store directory interchangeably. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Range = Wt_core.Range
module Stats = Wt_core.Stats
module Storage = Wtrie.Storage
module Durable = Wtrie.Durable
module Json = Wtrie.Json
open Cmdliner

let read_lines path =
  let ic =
    if path = "-" then stdin
    else
      (* I/O failures (missing file, permissions) are exit 74 (EX_IOERR),
         distinct from 64 (bad arguments) and 2 (cannot run) *)
      try open_in path
      with Sys_error msg ->
        Printf.eprintf "wtrie: %s\n" msg;
        exit 74
  in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  if path <> "-" then close_in ic;
  Array.of_list (List.rev !lines)

(* What a query command runs against: an append trie (line files,
   stores, v2 append indexes) or a flat static arena (v3 indexes, and
   v2 static indexes flattened on load).  Most commands only need the
   uniform QUERY_API and go through [pack]; the range-toolkit and
   serving commands match on the variant. *)
type src =
  | App of Wtrie.Append.t
  | Flat of Wtrie.Static.t
  | Tier of Wtrie.Tiered.t

type packed = Packed : (module Wtrie.QUERY_API with type t = 'a) * 'a -> packed

let pack = function
  | App wt -> Packed ((module Wtrie.Append), wt)
  | Flat wt -> Packed ((module Wtrie.Static), wt)
  | Tier t -> Packed ((module Wtrie.Tiered), t)

let src_length src =
  let (Packed ((module Q), wt)) = pack src in
  Q.length wt

(* Build from a line file, or load directly when given a saved index or
   a durable store directory — every stored form behind [Wtrie.Storage],
   so a v3 index is an mmap away. *)
let build path =
  if path <> "-" && Sys.file_exists path && Sys.is_directory path
     && Wtrie.Tiered.is_store path
  then begin
    let t, r = Wtrie.Tiered.open_read_only path in
    if r.Wtrie.Tiered.r_dropped_bytes > 0 || r.Wtrie.Tiered.r_wal_reset then
      Printf.eprintf
        "warning: %s has a torn write-ahead log (%d bytes unrecovered); run 'wtrie recover %s'\n"
        path r.Wtrie.Tiered.r_dropped_bytes path;
    Tier t
  end
  else if path <> "-" && Sys.file_exists path && Sys.is_directory path then begin
    if not (Durable.is_store path) then begin
      Printf.eprintf "%s is a directory but not a durable store\n" path;
      exit 2
    end;
    let t, r = Durable.open_read_only ~verify:false path in
    if r.Durable.dropped_bytes > 0 || r.Durable.wal_reset then
      Printf.eprintf
        "warning: %s has a torn write-ahead log (%d bytes unrecovered); run 'wtrie recover %s'\n"
        path r.Durable.dropped_bytes path;
    match Durable.append_trie t with
    | Some wt -> App wt
    | None ->
        Printf.eprintf "%s holds a dynamic store; this command reads append stores only\n" path;
        exit 2
  end
  else if path <> "-" && Sys.file_exists path && Storage.is_index_file path then begin
    match Storage.load_index path with
    | Storage.Static wt -> Flat wt
    | Storage.Append wt -> App wt
    | Storage.Dynamic _ ->
        Printf.eprintf "%s holds a dynamic index; re-save it as static or append\n" path;
        exit 2
  end
  else begin
    let lines = read_lines path in
    let wt = Wtrie.Append.create () in
    Array.iter (Wtrie.Append.append wt) lines;
    App wt
  end

(* Observability plumbing: when requested, probes cover the whole
   command (build + queries) and the report lands on stderr so stdout
   stays script-friendly. *)

let src_stats = function
  | App wt -> ("append", Wt_core.Append_wt.stats wt)
  | Flat wt -> ("static", Wt_core.Flat_wt.stats wt)
  | Tier t -> ("tiered", Wtrie.Tiered.stats t)

let capture_report src =
  let variant, st = src_stats src in
  let r = Wtrie.Report.capture ~space:[ Wtrie.Stats.to_breakdown ~variant st ] () in
  Wtrie.Probe.disable ();
  Wtrie.Probe.reset ();
  r

let with_stats enabled f =
  if not enabled then ignore (f () : src)
  else begin
    Wtrie.Probe.reset ();
    Wtrie.Probe.enable ();
    let src = f () in
    Format.eprintf "%a@." Wtrie.Report.pp (capture_report src)
  end

(* common arguments *)
let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input file; one string per line ('-' for stdin).")

let lo_arg =
  Arg.(value & opt int 0 & info [ "lo" ] ~docv:"LO" ~doc:"Range start position (inclusive).")

let hi_arg =
  Arg.(value & opt (some int) None & info [ "hi" ] ~docv:"HI" ~doc:"Range end position (exclusive; default: sequence length).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print the observability report (operation counters, latency histograms, space breakdown) to stderr.")

(* Malformed query arguments (positions/windows out of bounds, negative
   occurrence counts, ...) print the shared [Wtrie.pp_error] rendering
   and exit 64 (EX_USAGE) — distinct from 1 (query answered: no result),
   2 (cannot run at all) and the verify/durability codes. *)
let fail_query e =
  Format.eprintf "%a@." Wtrie.pp_error e;
  exit 64

let or_fail = function Ok v -> v | Error e -> fail_query e

(* Validate [--lo]/[--hi] into a concrete window for the range commands
   that bypass the front door (the [Range] toolkit calls raise on bad
   windows instead of returning errors). *)
let window_or_fail src lo hi =
  let len = src_length src in
  let hi = match hi with None -> len | Some h -> h in
  if lo < 0 || lo > len then fail_query (Wtrie.Position_out_of_bounds { pos = lo; len });
  if hi < lo || hi > len then fail_query (Wtrie.Position_out_of_bounds { pos = hi; len });
  (lo, hi)

let index_cmd =
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output index file.")
  in
  let run file out =
    (* Build the static trie straight from the lines when possible;
       an existing index/store source is decoded first. *)
    let wt =
      if file <> "-" && Sys.file_exists file
         && (Sys.is_directory file || Storage.is_index_file file)
      then begin
        let src = build file in
        let (Packed ((module Q), t)) = pack src in
        match src with
        | Flat wt -> wt
        | App _ | Tier _ ->
            Wtrie.Static.of_array
              (Array.init (Q.length t) (fun pos ->
                   match Q.access t ~pos with Ok s -> s | Error _ -> assert false))
      end
      else Wtrie.Static.of_array (read_lines file)
    in
    (* save_file writes atomically: a crash mid-save leaves any
       previous index at OUT intact.  The payload is the flat arena
       itself, so later opens are an mmap, not a deserialize. *)
    (match Wtrie.Static.save_file wt out with
    | Ok () -> ()
    | Error e -> fail_query e);
    Printf.printf "indexed %d strings into %s\n" (Wtrie.Static.length wt) out
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Build the static index once and save it atomically (format v3: the file is the query structure; opening it back is an O(1) mmap).  Query commands accept it in place of the text file.")
    Term.(const run $ file_arg $ out)

let convert_cmd =
  let src_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SRC" ~doc:"Existing index file (any format version or variant).")
  in
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output index file (format v3, static).")
  in
  let run src out =
    let variant, n = Storage.convert src out in
    Printf.printf "converted %s (%s index, length %d) into %s (v3 static)\n" src variant n
      out
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Rewrite any readable index as a format-v3 static index: the flat arena as the container payload, mmap-opened in O(1) by every other command.")
    Term.(const run $ src_arg $ out)

(* ------------------------------------------------------------------ *)
(* Durability commands: ingest (crash-safe append store), verify,
   recover. *)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report on stdout.")

let ingest_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE" ~doc:"Durable store directory (created on first use).")
  in
  let file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Input file; one string per line ('-' for stdin).")
  in
  let checkpoint =
    Arg.(value & opt int (1 lsl 20) & info [ "checkpoint-bytes" ] ~docv:"N" ~doc:"Checkpoint the WAL into a fresh snapshot once it exceeds N bytes (snapshot+WAL stores).")
  in
  let tiered =
    Arg.(value & flag & info [ "tiered" ] ~doc:"Use the tiered LSM-style store: ingests land in a small dynamic delta and a background domain compacts it into immutable runs.  An existing store's layout always wins over this flag.")
  in
  let compact_strings =
    Arg.(value & opt (some int) None & info [ "compact-strings" ] ~docv:"N" ~doc:"Tiered stores: compact the delta into a run once it holds N strings.")
  in
  let run dir file checkpoint_bytes tiered compact_strings =
    let lines = read_lines file in
    (match compact_strings with
    | Some n when n < 1 ->
        Printf.eprintf "wtrie ingest: --compact-strings must be >= 1 (got %d)\n" n;
        exit 64
    | _ -> ());
    (* an existing store dictates its own layout; the flag only picks
       the layout of a store created here *)
    if Wtrie.Tiered.is_store dir || ((not (Durable.is_store dir)) && tiered) then begin
      let module T = Wtrie.Tiered in
      let t =
        if T.is_store dir then begin
          let t, r = T.open_ ?threshold:compact_strings dir in
          if r.T.r_replayed > 0 || r.T.r_dropped_bytes > 0 || r.T.r_rolled_forward then
            Printf.eprintf
              "recovered %s: %d WAL records replayed, %d torn bytes dropped%s\n" dir
              r.T.r_replayed r.T.r_dropped_bytes
              (if r.T.r_rolled_forward then ", mid-compaction commit completed" else "");
          t
        end
        else T.create ?threshold:compact_strings dir
      in
      Array.iter (T.ingest t) lines;
      T.wait_compaction t;
      T.flush t;
      let len = T.length t and gen = T.generation t in
      let runs = T.run_count t and delta = T.delta_length t in
      T.close t;
      Printf.printf
        "ingested %d strings into %s (tiered, length %d, generation %d, %d runs + %d in delta)\n"
        (Array.length lines) dir len gen runs delta
    end
    else begin
      let t =
        if Durable.is_store dir then begin
          let t, r = Durable.open_ ~checkpoint_bytes dir in
          if r.Durable.replayed > 0 || r.Durable.dropped_bytes > 0 then
            Printf.eprintf "recovered %s: %d WAL records replayed, %d torn bytes dropped\n"
              dir r.Durable.replayed r.Durable.dropped_bytes;
          t
        end
        else Durable.create ~checkpoint_bytes ~variant:`Append dir
      in
      Array.iter (Durable.append t) lines;
      Durable.close t;
      Printf.printf "ingested %d strings into %s (length %d, generation %d)\n"
        (Array.length lines) dir (Durable.length t) (Durable.generation t)
    end
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Append a file of lines to a crash-safe store (write-ahead logged; survives being killed mid-append).  With $(b,--tiered), the store is LSM-style: delta + immutable runs + background compaction.")
    Term.(const run $ dir $ file $ checkpoint $ tiered $ compact_strings)


let verify_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"INDEX" ~doc:"Index file or durable store directory.")
  in
  let run path json =
    let emit obj = print_endline (Json.to_string (Json.Obj obj)) in
    match
      if Sys.file_exists path && Sys.is_directory path && Wtrie.Tiered.is_store path
      then begin
        let module T = Wtrie.Tiered in
        let r = T.verify path in
        if json then
          emit
            [
              ("ok", Json.Bool r.T.v_clean);
              ("kind", Json.Str "store");
              ("variant", Json.Str "tiered");
              ("generation", Json.Int r.T.v_generation);
              ("runs", Json.Int r.T.v_runs);
              ("length", Json.Int r.T.v_length);
              ("distinct", Json.Int r.T.v_distinct);
              ("wal_records", Json.Int r.T.v_wal_records);
              ("wal_dropped_bytes", Json.Int r.T.v_dropped_bytes);
              ("wal_reset_needed", Json.Bool r.T.v_wal_reset);
              ("rolled_forward", Json.Bool r.T.v_rolled_forward);
            ]
        else if r.T.v_clean then
          Printf.printf
            "%s: ok (tiered store, generation %d, %d runs, length %d, wal records %d)\n"
            path r.T.v_generation r.T.v_runs r.T.v_length r.T.v_wal_records
        else
          Printf.printf
            "%s: recoverable (tiered store, %d wal records intact, %d bytes torn%s%s); run 'wtrie recover %s'\n"
            path r.T.v_wal_records r.T.v_dropped_bytes
            (if r.T.v_wal_reset then ", wal header reset needed" else "")
            (if r.T.v_rolled_forward then ", mid-compaction commit pending" else "")
            path;
        r.T.v_clean
      end
      else if Sys.file_exists path && Sys.is_directory path then begin
        let r = Durable.verify path in
        if json then
          emit
            [
              ("ok", Json.Bool r.Durable.v_clean);
              ("kind", Json.Str "store");
              ("variant", Json.Str (Durable.variant_name r.Durable.v_variant));
              ("generation", Json.Int r.Durable.v_generation);
              ("length", Json.Int r.Durable.v_length);
              ("distinct", Json.Int r.Durable.v_distinct);
              ("wal_records", Json.Int r.Durable.v_wal_records);
              ("wal_dropped_bytes", Json.Int r.Durable.v_dropped_bytes);
              ("wal_reset_needed", Json.Bool r.Durable.v_wal_reset);
            ]
        else if r.Durable.v_clean then
          Printf.printf "%s: ok (%s store, generation %d, length %d, wal records %d)\n"
            path
            (Durable.variant_name r.Durable.v_variant)
            r.Durable.v_generation r.Durable.v_length r.Durable.v_wal_records
        else
          Printf.printf
            "%s: recoverable (%s store, %d wal records intact, %d bytes torn%s); run 'wtrie recover %s'\n"
            path
            (Durable.variant_name r.Durable.v_variant)
            r.Durable.v_wal_records r.Durable.v_dropped_bytes
            (if r.Durable.v_wal_reset then ", wal header reset needed" else "")
            path;
        r.Durable.v_clean
      end
      else begin
        let tag, length = Storage.verify_index path in
        if json then
          emit
            [
              ("ok", Json.Bool true);
              ("kind", Json.Str "file");
              ("variant", Json.Str tag);
              ("length", Json.Int length);
            ]
        else Printf.printf "%s: ok (%s index, length %d)\n" path tag length;
        true
      end
    with
    | true -> ()
    | false -> exit 1
    | exception Storage.Format_error msg ->
        if json then
          emit [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
        else Printf.eprintf "%s: corrupt: %s\n" path msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Deep-verify an index file or durable store: checksums, WAL scan, structural invariants.  Exit 0 clean, 1 recoverable, 2 corrupt.")
    Term.(const run $ path $ json_arg)

let recover_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE" ~doc:"Durable store directory.")
  in
  let run path json =
    if Sys.file_exists path && Sys.is_directory path && Wtrie.Tiered.is_store path
    then begin
      let module T = Wtrie.Tiered in
      match T.recover path with
      | r ->
          if json then
            print_endline
              (Json.to_string
                 (Json.Obj
                    [
                      ("ok", Json.Bool true);
                      ("replayed", Json.Int r.T.r_replayed);
                      ("dropped_bytes", Json.Int r.T.r_dropped_bytes);
                      ("wal_reset", Json.Bool r.T.r_wal_reset);
                      ("rolled_forward", Json.Bool r.T.r_rolled_forward);
                      ("generation", Json.Int r.T.r_generation);
                    ]))
          else
            Printf.printf
              "recovered %s: replayed %d records, dropped %d bytes%s, delta compacted into a run\n"
              path r.T.r_replayed r.T.r_dropped_bytes
              (if r.T.r_rolled_forward then ", completed a mid-compaction commit"
               else "")
      | exception Storage.Format_error msg ->
          if json then
            print_endline
              (Json.to_string
                 (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]))
          else Printf.eprintf "%s: unrecoverable: %s\n" path msg;
          exit 2
    end
    else
    match Durable.recover path with
    | r ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("ok", Json.Bool true);
                    ("replayed", Json.Int r.Durable.replayed);
                    ("dropped_bytes", Json.Int r.Durable.dropped_bytes);
                    ("wal_reset", Json.Bool r.Durable.wal_reset);
                    ("generation", Json.Int (r.Durable.snapshot_generation + 1));
                  ]))
        else
          Printf.printf
            "recovered %s: replayed %d records, dropped %d bytes, checkpointed as generation %d\n"
            path r.Durable.replayed r.Durable.dropped_bytes
            (r.Durable.snapshot_generation + 1)
    | exception Storage.Format_error msg ->
        if json then
          print_endline
            (Json.to_string (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]))
        else Printf.eprintf "%s: unrecoverable: %s\n" path msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Replay a store's WAL, truncate any torn tail, and checkpoint the recovered state into a fresh snapshot.")
    Term.(const run $ path $ json_arg)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full observability report as JSON on stdout (same shape as the bench metrics block).")
  in
  let run file json =
    Wtrie.Probe.reset ();
    Wtrie.Probe.enable ();
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    ignore (Q.count_prefix wt ~prefix:"");
    let _, st = src_stats src in
    let report = capture_report src in
    if json then print_endline (Wtrie.Report.to_json_string report)
    else begin
      Format.printf "%a@." Stats.pp st;
      Printf.printf "distinct strings: %d\n" (Q.distinct_count wt);
      Format.printf "%a@." Wtrie.Report.pp report
    end
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Build the index and report its space against the LB, plus the observability report.")
    Term.(const run $ file_arg $ json)

(* The query subcommands share one argument convention: [--at POS] for
   positions, [--prefix P] for byte prefixes, [--count K] for occurrence
   indices/limits.  Query errors print via [Wtrie.pp_error] and exit 64. *)

let at_arg ~doc = Arg.(value & opt (some int) None & info [ "at" ] ~docv:"POS" ~doc)

let prefix_arg =
  Arg.(required & opt (some string) None & info [ "prefix" ] ~docv:"PREFIX" ~doc:"Byte prefix to match against stored strings.")

let count_arg ~doc = Arg.(value & opt (some int) None & info [ "count" ] ~docv:"K" ~doc)

let access_cmd =
  let at = Arg.(required & opt (some int) None & info [ "at" ] ~docv:"POS" ~doc:"Position to read.") in
  let run file at stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    print_endline (or_fail (Q.access wt ~pos:at));
    src
  in
  Cmd.v (Cmd.info "access" ~doc:"Print the string at position --at.")
    Term.(const run $ file_arg $ at $ stats_arg)

let rank_cmd =
  let s = Arg.(required & pos 1 (some string) None & info [] ~docv:"STRING") in
  let at = at_arg ~doc:"Count occurrences before POS (default: sequence length)." in
  let run file s at stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    let pos = match at with None -> Q.length wt | Some p -> p in
    Printf.printf "%d\n" (or_fail (Q.rank wt s ~pos));
    src
  in
  Cmd.v (Cmd.info "rank" ~doc:"Count occurrences of STRING before --at.")
    Term.(const run $ file_arg $ s $ at $ stats_arg)

let select_cmd =
  let s = Arg.(required & pos 1 (some string) None & info [] ~docv:"STRING") in
  let count =
    Arg.(required & opt (some int) None & info [ "count" ] ~docv:"K" ~doc:"Occurrence index (0-based).")
  in
  let run file s count stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    Printf.printf "%d\n" (or_fail (Q.select wt s ~count));
    src
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Position of the --count-th (0-based) occurrence of STRING.")
    Term.(const run $ file_arg $ s $ count $ stats_arg)

let prefix_count_cmd =
  let at = at_arg ~doc:"Count matches before POS (default: sequence length)." in
  let run file p at stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    (match at with
    | None -> Printf.printf "%d\n" (Q.count_prefix wt ~prefix:p)
    | Some pos -> Printf.printf "%d\n" (or_fail (Q.rank_prefix wt ~prefix:p ~pos)));
    src
  in
  Cmd.v
    (Cmd.info "prefix-count" ~doc:"Count strings starting with --prefix before --at.")
    Term.(const run $ file_arg $ prefix_arg $ at $ stats_arg)

let prefix_list_cmd =
  let count = count_arg ~doc:"Print at most K matches (default 20)." in
  let run file p count stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    let limit = match count with None -> 20 | Some k -> k in
    (* one batch: the k-th SelectPrefix and the Access at its position
       share trie traversals with all the others *)
    let rec go k =
      if k < limit then
        match Q.select_prefix wt ~prefix:p ~count:k with
        | Ok pos ->
            Printf.printf "%8d  %s\n" pos (or_fail (Q.access wt ~pos));
            go (k + 1)
        | Error _ -> ()
    in
    go 0;
    src
  in
  Cmd.v
    (Cmd.info "prefix-list"
       ~doc:"List the first occurrences of strings starting with --prefix (SelectPrefix).")
    Term.(const run $ file_arg $ prefix_arg $ count $ stats_arg)

(* ------------------------------------------------------------------ *)
(* Trace mode: run a Zipf-skewed query batch under span tracing and
   export Chrome trace_event JSON for Perfetto / chrome://tracing. *)

let trace_cmd =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input file, saved index or store directory; omitted: a synthetic URL-log workload is generated.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"OUT" ~doc:"Write the Chrome trace_event JSON here (load it in Perfetto or chrome://tracing).")
  in
  let gen_ops =
    Arg.(value & opt int 10_000 & info [ "gen-ops" ] ~docv:"N" ~doc:"Number of queries in the traced batch (positions and strings drawn Zipf-skewed).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc:"Execute the traced batch on up to $(docv) domains; shard spans then cross domains in the trace.")
  in
  let sample =
    Arg.(value & opt int 1 & info [ "sample" ] ~docv:"N" ~doc:"Record every $(docv)-th root span (with its whole subtree); 1 records everything.")
  in
  let run file out gen_ops domains sample =
    if gen_ops < 1 then begin
      Printf.eprintf "--gen-ops must be >= 1 (got %d)\n" gen_ops;
      exit 2
    end;
    let src =
      match file with
      | Some f -> build f
      | None ->
          let wt = Wtrie.Append.create () in
          Wtrie.Append.append_batch wt
            (Wt_workload.Urls.raw_sequence (Wt_workload.Urls.create ~seed:42 ()) 4096);
          App wt
    in
    let (Packed ((module Q), wt)) = pack src in
    let n = Q.length wt in
    if n = 0 then begin
      Printf.eprintf "cannot trace over an empty sequence\n";
      exit 2
    end;
    (* Zipf-skewed op mix: positions and query strings are drawn from
       the same skewed rank distribution the bench uses, so the trace
       shows the cache behaviour of a realistic batch. *)
    let rng = Wt_bits.Xoshiro.create 11 in
    let zipf = Wt_workload.Zipf.create n in
    let str_at pos =
      match Q.access wt ~pos with Ok s -> s | Error _ -> assert false
    in
    let ops =
      Array.init gen_ops (fun i ->
          let pos = Wt_workload.Zipf.sample zipf rng in
          match i mod 5 with
          | 0 -> Wtrie.Access { pos }
          | 1 -> Wtrie.Rank { s = str_at pos; pos = Wt_bits.Xoshiro.int rng (n + 1) }
          | 2 -> Wtrie.Select { s = str_at pos; count = Wt_bits.Xoshiro.int rng 4 }
          | 3 ->
              let s = str_at pos in
              let plen = min (String.length s) (1 + Wt_bits.Xoshiro.int rng 8) in
              Wtrie.Rank_prefix { prefix = String.sub s 0 plen; pos = Wt_bits.Xoshiro.int rng (n + 1) }
          | _ ->
              let s = str_at pos in
              let plen = min (String.length s) (1 + Wt_bits.Xoshiro.int rng 8) in
              Wtrie.Select_prefix { prefix = String.sub s 0 plen; count = Wt_bits.Xoshiro.int rng 4 })
    in
    let results, trace =
      Wtrie.with_trace ~sample_every:sample (fun () ->
          Q.query_batch ?domains wt ops)
    in
    ignore (results : (Wtrie.value, Wtrie.error) result array);
    let oc = open_out out in
    output_string oc (Json.to_string trace);
    output_string oc "\n";
    close_out oc;
    let evs = Wtrie.Trace.events () in
    let doms =
      List.length (List.sort_uniq compare (List.map (fun e -> e.Wtrie.Trace.dom) evs))
    in
    Printf.printf "traced %d ops into %s (%d spans across %d domains)\n" gen_ops out
      (List.length evs) doms
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a Zipf-skewed query batch under span tracing and export Chrome trace_event JSON (query → level → shard, one timeline row per domain).")
    Term.(const run $ file $ out $ gen_ops $ domains $ sample)

(* ------------------------------------------------------------------ *)
(* Batch mode: read a vector of operations, evaluate it through the
   batch engine, print one result line per operation.  Per-op failures
   are data (printed as [error: ...]), not process failures. *)

let parse_op lineno line =
  let fail () =
    Printf.eprintf
      "line %d: cannot parse %S (expected: access POS | rank STRING POS | select STRING K | rank-prefix PREFIX POS | select-prefix PREFIX K)\n"
      lineno line;
    exit 2
  in
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' line)
  in
  (* the string/prefix argument is everything between the op name and
     the trailing integer, so it may contain spaces *)
  let split_tail = function
    | [] -> fail ()
    | words -> (
        match List.rev words with
        | last :: rev_mid -> (
            match int_of_string_opt last with
            | None -> fail ()
            | Some k -> (String.concat " " (List.rev rev_mid), k))
        | [] -> fail ())
  in
  match words with
  | [] -> fail ()
  | [ "access"; p ] -> (
      match int_of_string_opt p with
      | Some pos -> Wtrie.Access { pos }
      | None -> fail ())
  | "rank" :: rest ->
      let s, pos = split_tail rest in
      Wtrie.Rank { s; pos }
  | "select" :: rest ->
      let s, count = split_tail rest in
      Wtrie.Select { s; count }
  | "rank-prefix" :: rest ->
      let prefix, pos = split_tail rest in
      Wtrie.Rank_prefix { prefix; pos }
  | "select-prefix" :: rest ->
      let prefix, count = split_tail rest in
      Wtrie.Select_prefix { prefix; count }
  | _ -> fail ()

let query_cmd =
  let batch =
    Arg.(value & opt (some string) None & info [ "batch" ] ~docv:"OPS" ~doc:"File of operations, one per line ('-' for stdin): access POS, rank STRING POS, select STRING K, rank-prefix PREFIX POS, select-prefix PREFIX K.")
  in
  let select_all =
    Arg.(value & flag & info [ "select-all" ] ~doc:"Report every position in [--lo, --hi) whose string starts with --prefix, ascending, one per line (one frontier traversal).")
  in
  let count_range =
    Arg.(value & flag & info [ "count-range" ] ~doc:"Count the positions in [--lo, --hi) whose string starts with --prefix (one descent).")
  in
  let distinct =
    Arg.(value & flag & info [ "distinct" ] ~doc:"Distinct strings in [--lo, --hi) matching --prefix, with their in-window counts, lexicographically.")
  in
  let top_k =
    Arg.(value & opt (some int) None & info [ "top-k" ] ~docv:"K" ~doc:"The $(docv) most frequent strings in [--lo, --hi) matching --prefix, most frequent first (ties: lexicographically smaller wins).")
  in
  let prefix =
    Arg.(value & opt (some string) None & info [ "prefix" ] ~docv:"PREFIX" ~doc:"Byte prefix restricting the range query (default: all strings).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc:"Execute the batch on up to $(docv) domains in parallel (sharded over the domain pool; pool size follows WTRIE_DOMAINS or the machine).  Results are identical to the sequential run, in input order.")
  in
  let run file batch select_all count_range distinct top_k prefix lo hi domains stats =
    (match domains with
    | Some d when d < 1 ->
        Printf.eprintf "--domains must be >= 1 (got %d)\n" d;
        exit 2
    | _ -> ());
    let modes =
      (match batch with Some _ -> 1 | None -> 0)
      + (if select_all then 1 else 0)
      + (if count_range then 1 else 0)
      + (if distinct then 1 else 0)
      + match top_k with Some _ -> 1 | None -> 0
    in
    if modes <> 1 then begin
      Printf.eprintf
        "query: pass exactly one of --batch, --select-all, --count-range, --distinct, --top-k\n";
      exit 2
    end;
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    (match batch with
    | Some batch ->
        let lines = read_lines batch in
        let ops =
          Array.of_list
            (List.concat
               (List.mapi
                  (fun i l -> if String.trim l = "" then [] else [ parse_op (i + 1) l ])
                  (Array.to_list lines)))
        in
        Array.iter
          (function
            | Ok v -> Format.printf "%a@." Wtrie.pp_value v
            | Error e -> Format.printf "error: %a@." Wtrie.pp_error e)
          (Q.query_batch ?domains wt ops)
    | None ->
        let pp_tallies =
          Array.iter (fun (s, c) -> Printf.printf "%8d  %s\n" c s)
        in
        if select_all then
          Array.iter
            (fun pos -> Printf.printf "%d\n" pos)
            (or_fail (Q.select_all ?prefix ~lo ?hi wt))
        else if count_range then begin
          let hi = match hi with None -> Q.length wt | Some h -> h in
          Printf.printf "%d\n" (or_fail (Q.range_count ?prefix wt ~lo ~hi))
        end
        else if distinct then
          pp_tallies (or_fail (Q.range_distinct ?prefix ~lo ?hi wt))
        else
          match top_k with
          | Some k -> pp_tallies (or_fail (Q.range_topk ?prefix ~lo ?hi wt ~k))
          | None -> assert false);
    src
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate queries against the index: --batch for a vector of point operations in one amortized traversal (per-op errors are printed as data, exit 0), or one of the range-analytics modes --select-all / --count-range / --distinct / --top-k over the [--lo, --hi) window.")
    Term.(const run $ file_arg $ batch $ select_all $ count_range $ distinct $ top_k
          $ prefix $ lo_arg $ hi_arg $ domains $ stats_arg)

let distinct_cmd =
  let run file lo hi stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    Array.iter
      (fun (s, c) -> Printf.printf "%8d  %s\n" c s)
      (or_fail (Q.range_distinct ~lo ?hi wt));
    src
  in
  Cmd.v
    (Cmd.info "distinct" ~doc:"Distinct strings (with counts) in [--lo, --hi).")
    Term.(const run $ file_arg $ lo_arg $ hi_arg $ stats_arg)

let majority_cmd =
  let run file lo hi stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let lo, hi = window_or_fail src lo hi in
    let m =
      match src with
      | App wt -> Range.Append.majority wt ~lo ~hi
      | Flat wt -> Range.Static.majority wt ~lo ~hi
      | Tier t -> (
          (* the merged top-1 is the only majority candidate *)
          match Wtrie.Tiered.range_topk ~lo ~hi t ~k:1 with
          | Ok [| (s, c) |] when 2 * c > hi - lo -> Some (Binarize.of_bytes s, c)
          | _ -> None)
    in
    (match m with
    | Some (s, c) -> Printf.printf "%s (%d of %d)\n" (Binarize.to_bytes s) c (hi - lo)
    | None ->
        print_endline "no majority";
        exit 1);
    src
  in
  Cmd.v
    (Cmd.info "majority" ~doc:"The majority string of [--lo, --hi), if any.")
    Term.(const run $ file_arg $ lo_arg $ hi_arg $ stats_arg)

let top_k_cmd =
  let k = Arg.(required & pos 1 (some int) None & info [] ~docv:"K") in
  let run file k lo hi stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let (Packed ((module Q), wt)) = pack src in
    Array.iter
      (fun (s, c) -> Printf.printf "%8d  %s\n" c s)
      (or_fail (Q.range_topk ~lo ?hi wt ~k));
    src
  in
  Cmd.v
    (Cmd.info "top-k" ~doc:"The K most frequent strings in [--lo, --hi) (exact; ties go to the lexicographically smaller string).")
    Term.(const run $ file_arg $ k $ lo_arg $ hi_arg $ stats_arg)

let quantile_cmd =
  let k = Arg.(required & pos 1 (some int) None & info [] ~docv:"K") in
  let run file k lo hi stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let lo, hi = window_or_fail src lo hi in
    let q =
      match src with
      | App wt -> Range.Append.quantile wt ~lo ~hi k
      | Flat wt -> Range.Static.quantile wt ~lo ~hi k
      | Tier _ when k < 0 -> invalid_arg "Range.quantile"
      | Tier t -> (
          (* walk the lex-sorted merged distinct tallies to the k-th
             occupant (counting multiplicity), as the single-trie
             range-quantile does *)
          match Wtrie.Tiered.range_distinct ~lo ~hi t with
          | Error _ -> None
          | Ok items ->
              let rec walk i acc =
                if i >= Array.length items then None
                else
                  let s, c = items.(i) in
                  if k < acc + c then Some (Binarize.of_bytes s)
                  else walk (i + 1) (acc + c)
              in
              walk 0 0)
    in
    (match q with
    | Some s -> print_endline (Binarize.to_bytes s)
    | None ->
        prerr_endline "k out of range";
        exit 1);
    src
  in
  Cmd.v
    (Cmd.info "quantile"
       ~doc:"The K-th lexicographically smallest string in [--lo, --hi).")
    Term.(const run $ file_arg $ k $ lo_arg $ hi_arg $ stats_arg)

let at_least_cmd =
  let t = Arg.(required & pos 1 (some int) None & info [] ~docv:"T") in
  let run file t lo hi stats =
    with_stats stats @@ fun () ->
    let src = build file in
    let lo, hi = window_or_fail src lo hi in
    let hits =
      match src with
      | App wt -> Range.Append.at_least wt ~lo ~hi ~threshold:t
      | Flat wt -> Range.Static.at_least wt ~lo ~hi ~threshold:t
      | Tier tr ->
          if t < 1 then invalid_arg "Range.at_least: threshold must be >= 1";
          (match Wtrie.Tiered.range_distinct ~lo ~hi tr with
          | Error _ -> []
          | Ok items ->
              Array.to_list items
              |> List.filter_map (fun (s, c) ->
                     if c >= t then Some (Binarize.of_bytes s, c) else None))
    in
    List.iter
      (fun (s, c) -> Printf.printf "%8d  %s\n" c (Binarize.to_bytes s))
      hits;
    src
  in
  Cmd.v
    (Cmd.info "at-least" ~doc:"Strings occurring at least T times in [--lo, --hi).")
    Term.(const run $ file_arg $ t $ lo_arg $ hi_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* Serving: the overload-safe TCP front-end and its load generator.
   Socket-level failures exit 74 (EX_IOERR); malformed flags exit 64. *)

module Server = Wtrie.Serve.Server
module Sclient = Wtrie.Serve.Client
module Swire = Wtrie.Serve.Wire

let serve_usage fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("wtrie serve: " ^ m);
      exit 64)
    fmt

let serve_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let port_arg =
    Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral).")
  in
  let port_file_arg =
    Arg.(value & opt (some string) None & info [ "port-file" ] ~docv:"PATH" ~doc:"Write the bound port here once listening (for scripts using --port 0).")
  in
  let domains_arg =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc:"Execute batches sharded over N domains (default: the serving domain alone).")
  in
  let batch_ops_arg =
    Arg.(value & opt (some int) None & info [ "batch-ops" ] ~docv:"K" ~doc:"Cut a batch at K coalesced operations.")
  in
  let window_us_arg =
    Arg.(value & opt (some int) None & info [ "window-us" ] ~docv:"US" ~doc:"Cut a batch when its oldest operation has waited US microseconds.")
  in
  let queue_max_arg =
    Arg.(value & opt (some int) None & info [ "queue-max" ] ~docv:"N" ~doc:"Admission-control watermark: shed queries past N queued operations.")
  in
  let max_conns_arg =
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~docv:"N" ~doc:"Stop accepting past N concurrent connections.")
  in
  let read_timeout_arg =
    Arg.(value & opt (some int) None & info [ "read-timeout-ms" ] ~docv:"MS" ~doc:"Close a connection stalled mid-frame for MS milliseconds.")
  in
  let metrics_port_arg =
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc:"Also serve the Prometheus metrics exposition over plain TCP on PORT (0 = ephemeral): each connection gets one HTTP/1.0 response and is closed, so curl and nc both work.")
  in
  let metrics_port_file_arg =
    Arg.(value & opt (some string) None & info [ "metrics-port-file" ] ~docv:"PATH" ~doc:"Write the bound metrics port here once listening (for scripts using --metrics-port 0).")
  in
  let slow_ms_arg =
    Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"MS" ~doc:"Record a slow-query exemplar (kind, queue-wait vs execution split, span id) for every request taking at least MS milliseconds; 0 logs every request. Exemplars ride the metrics exposition and the Stats reply.")
  in
  let run file host port port_file domains batch_ops window_us queue_max max_conns read_timeout_ms
      metrics_port metrics_port_file slow_ms =
    if port < 0 || port > 65535 then serve_usage "--port must be in 0..65535 (got %d)" port;
    (match metrics_port with
    | Some p when p < 0 || p > 65535 ->
        serve_usage "--metrics-port must be in 0..65535 (got %d)" p
    | _ -> ());
    (match slow_ms with
    | Some ms when ms < 0 -> serve_usage "--slow-ms must be >= 0 (got %d)" ms
    | _ -> ());
    let positive flag v =
      match v with
      | Some v when v < 1 -> serve_usage "%s must be >= 1 (got %d)" flag v
      | _ -> v
    in
    let batch_ops = positive "--batch-ops" batch_ops in
    let queue_max = positive "--queue-max" queue_max in
    let max_conns = positive "--max-conns" max_conns in
    let read_timeout_ms = positive "--read-timeout-ms" read_timeout_ms in
    let domains = positive "--domains" domains in
    (match window_us with
    | Some w when w < 0 -> serve_usage "--window-us must be >= 0 (got %d)" w
    | _ -> ());
    let src = build file in
    let d = Server.default_config () in
    let cfg =
      {
        d with
        host;
        port;
        domains;
        batch_max = Option.value ~default:d.Server.batch_max batch_ops;
        window_us = Option.value ~default:d.Server.window_us window_us;
        queue_max = Option.value ~default:d.Server.queue_max queue_max;
        max_conns = Option.value ~default:d.Server.max_conns max_conns;
        read_timeout_ms = Option.value ~default:d.Server.read_timeout_ms read_timeout_ms;
        metrics_port;
        slow_ms;
      }
    in
    (* the serving process is always live-scrapable: recording is on
       and the runtime-events bridge feeds GC pauses into rt_* metrics *)
    Wtrie.Probe.enable ();
    Wtrie.Runtime.start ();
    let srv =
      try
        match src with
        | App wt ->
            Server.create ~config:cfg ~backend:Server.append_backend
              (Wtrie.Snapshot.create wt)
        | Flat wt ->
            Server.create ~config:cfg ~backend:Server.static_backend
              (Wtrie.Snapshot.create wt)
        | Tier t ->
            (* serve the store's epoch-published merged views; ingest
               processes publish new tier lists through the same handle *)
            Server.create ~config:cfg ~backend:Server.tiered_backend
              (Wtrie.Tiered.handle t)
      with Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "wtrie serve: cannot listen on %s:%d: %s (%s)\n" host port
          (Unix.error_message e) fn;
        exit 74
    in
    Printf.printf "listening on %s:%d (%d strings, pid %d)\n%!" host (Server.port srv)
      (src_length src) (Unix.getpid ());
    (match Server.metrics_port srv with
    | Some mp -> Printf.printf "metrics on %s:%d\n%!" host mp
    | None -> ());
    (match port_file with
    | Some p ->
        let oc = open_out p in
        Printf.fprintf oc "%d\n" (Server.port srv);
        close_out oc
    | None -> ());
    (match (metrics_port_file, Server.metrics_port srv) with
    | Some p, Some mp ->
        let oc = open_out p in
        Printf.fprintf oc "%d\n" mp;
        close_out oc
    | _ -> ());
    let stop _ = Server.request_stop srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Server.serve srv;
    let st = Server.stats srv in
    Printf.printf
      "drained: %d connections, %d requests, %d batches, %d shed, %d expired, %d bad frames, %d slow\n%!"
      st.Server.accepted st.Server.requests st.Server.batches st.Server.shed st.Server.expired
      st.Server.bad_frames st.Server.slow
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve FILE over TCP: concurrently arriving queries are coalesced into micro-batches with admission control, per-request deadlines, and graceful SIGTERM drain (see docs/serving.md). With --metrics-port the live telemetry plane is scrapable over plain TCP.")
    Term.(const run $ file_arg $ host_arg $ port_arg $ port_file_arg $ domains_arg
          $ batch_ops_arg $ window_us_arg $ queue_max_arg $ max_conns_arg $ read_timeout_arg
          $ metrics_port_arg $ metrics_port_file_arg $ slow_ms_arg)

let loadgen_cmd =
  let target_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc:"Server address.")
  in
  let conns_arg =
    Arg.(value & opt int 4 & info [ "conns" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let ops_arg =
    Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc:"Total requests to drive.")
  in
  let window_arg =
    Arg.(value & opt int 8 & info [ "window" ] ~docv:"N" ~doc:"Pipelined requests kept outstanding per connection.")
  in
  let timeout_us_arg =
    Arg.(value & opt int 0 & info [ "timeout-us" ] ~docv:"US" ~doc:"Per-request deadline (0 = none).")
  in
  let connect_timeout_arg =
    Arg.(value & opt float 5.0 & info [ "connect-timeout" ] ~docv:"S" ~doc:"Retry refused connections for S seconds.")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let fail_usage fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("wtrie loadgen: " ^ m);
        exit 64)
      fmt
  in
  let run target conns ops window timeout_us connect_timeout json =
    let host, port =
      match String.rindex_opt target ':' with
      | Some i -> (
          let h = String.sub target 0 i in
          let p = String.sub target (i + 1) (String.length target - i - 1) in
          match int_of_string_opt p with
          | Some p when p > 0 && p <= 65535 -> (h, p)
          | _ -> fail_usage "TARGET must be HOST:PORT (got %s)" target)
      | None -> fail_usage "TARGET must be HOST:PORT (got %s)" target
    in
    if conns < 1 then fail_usage "--conns must be >= 1 (got %d)" conns;
    if ops < 1 then fail_usage "--ops must be >= 1 (got %d)" ops;
    if window < 1 then fail_usage "--window must be >= 1 (got %d)" window;
    let io_fail e =
      Printf.eprintf "wtrie loadgen: cannot reach %s:%d: %s\n" host port (Unix.error_message e);
      exit 74
    in
    (* sample real strings off the server so Rank/Select/prefix ops in
       the generated mix query values that actually occur *)
    let n, samples =
      match Sclient.connect ~retry_for_s:connect_timeout ~host ~port () with
      | exception Unix.Unix_error (e, _, _) -> io_fail e
      | probe ->
          let n = Sclient.length probe in
          let samples =
            if n = 0 then [||]
            else
              Array.init 16 (fun i ->
                  match
                    Sclient.call probe
                      (Swire.Query (Wt_core.Indexed_sequence.Access { pos = i * n / 16 }))
                  with
                  | Swire.Ok_value (Wt_core.Indexed_sequence.Str s) -> s
                  | _ -> "")
          in
          Sclient.close probe;
          (n, samples)
    in
    let rng = Random.State.make [| 0x5eed; ops; conns |] in
    let opgen _i =
      let module Is = Wt_core.Indexed_sequence in
      if n = 0 then Swire.Ping
      else begin
        let sample () = samples.(Random.State.int rng (Array.length samples)) in
        match Random.State.int rng 8 with
        | 0 | 1 | 2 | 3 -> Swire.Query (Is.Access { pos = Random.State.int rng n })
        | 4 | 5 -> Swire.Query (Is.Rank { s = sample (); pos = Random.State.int rng (n + 1) })
        | 6 -> Swire.Query (Is.Select { s = sample (); count = 1 + Random.State.int rng 2 })
        | _ ->
            let s = sample () in
            let prefix = String.sub s 0 (min (String.length s) (1 + Random.State.int rng 3)) in
            Swire.Query (Is.Rank_prefix { prefix; pos = Random.State.int rng (n + 1) })
      end
    in
    let r =
      match Sclient.run_load ~host ~port ~conns ~window ~ops ~timeout_us ~opgen () with
      | r -> r
      | exception Unix.Unix_error (e, _, _) -> io_fail e
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("sent", Json.Int r.Sclient.sent);
                ("completed", Json.Int r.Sclient.completed);
                ("ok", Json.Int r.Sclient.ok);
                ("query_error", Json.Int r.Sclient.query_error);
                ("overloaded", Json.Int r.Sclient.overloaded);
                ("expired", Json.Int r.Sclient.expired);
                ("bad", Json.Int r.Sclient.bad);
                ("lost", Json.Int r.Sclient.lost);
                ("elapsed_s", Json.Float r.Sclient.elapsed_s);
                ("throughput_rps", Json.Float r.Sclient.throughput_rps);
                ("p50_us", Json.Float r.Sclient.p50_us);
                ("p90_us", Json.Float r.Sclient.p90_us);
                ("p99_us", Json.Float r.Sclient.p99_us);
                ("max_us", Json.Float r.Sclient.max_us);
              ]))
    else begin
      Printf.printf "sent %d  completed %d  ok %d  query-errors %d  shed %d  expired %d  bad %d  lost %d\n"
        r.Sclient.sent r.Sclient.completed r.Sclient.ok r.Sclient.query_error r.Sclient.overloaded
        r.Sclient.expired r.Sclient.bad r.Sclient.lost;
      Printf.printf "throughput %.0f req/s  latency p50 %.0f us  p90 %.0f us  p99 %.0f us  max %.0f us\n"
        r.Sclient.throughput_rps r.Sclient.p50_us r.Sclient.p90_us r.Sclient.p99_us r.Sclient.max_us
    end;
    (* a run that never completed a single request could not actually
       talk to the server: that's an I/O failure, not a report *)
    if r.Sclient.completed = 0 then exit 74
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Closed-loop pipelined load generator against a running 'wtrie serve' (mixed Access/Rank/Select/prefix workload sampled from the served sequence).")
    Term.(const run $ target_arg $ conns_arg $ ops_arg $ window_arg $ timeout_us_arg
          $ connect_timeout_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* wtrie top: a polling live view over a running server's telemetry,
   built entirely on the Stats wire op — counters become rates between
   frames, histograms become per-interval percentiles by diffing raw
   buckets.  [--once] renders one cumulative frame and exits (tests). *)

let top_cmd =
  let target_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc:"Server address.")
  in
  let interval_arg =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"S" ~doc:"Seconds between frames.")
  in
  let count_arg =
    Arg.(value & opt (some int) None & info [ "count" ] ~docv:"N" ~doc:"Exit after N frames.")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Render a single cumulative frame and exit (for scripts and tests).")
  in
  let fail_usage fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("wtrie top: " ^ m);
        exit 64)
      fmt
  in
  let run target interval count once =
    let host, port =
      match String.rindex_opt target ':' with
      | Some i -> (
          let h = String.sub target 0 i in
          let p = String.sub target (i + 1) (String.length target - i - 1) in
          match int_of_string_opt p with
          | Some p when p > 0 && p <= 65535 -> (h, p)
          | _ -> fail_usage "TARGET must be HOST:PORT (got %s)" target)
      | None -> fail_usage "TARGET must be HOST:PORT (got %s)" target
    in
    if interval <= 0. then fail_usage "--interval must be > 0 (got %g)" interval;
    (match count with
    | Some c when c < 1 -> fail_usage "--count must be >= 1 (got %d)" c
    | _ -> ());
    let frames = if once then 1 else Option.value ~default:max_int count in
    let module Report = Wtrie.Report in
    let client =
      match Sclient.connect ~host ~port () with
      | c -> c
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "wtrie top: cannot reach %s:%d: %s\n" host port (Unix.error_message e);
          exit 74
    in
    let geti obj k = match Json.member k obj with Some (Json.Int i) -> i | _ -> 0 in
    let fmt_ns ns =
      let f = float_of_int ns in
      if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
      else if f >= 1e6 then Printf.sprintf "%.1fms" (f /. 1e6)
      else if f >= 1e3 then Printf.sprintf "%.1fus" (f /. 1e3)
      else Printf.sprintf "%dns" ns
    in
    let find_lat r op = List.find_opt (fun l -> l.Report.op = op) r.Report.latencies in
    (* per-interval percentiles: the raw log-buckets are cumulative, so
       the interval distribution is the bucket-wise difference from the
       previous frame (the whole history when there is none) *)
    let interval_quantiles prev r op =
      match find_lat r op with
      | None -> None
      | Some ln ->
          let pb, pc =
            match Option.bind prev (fun p -> find_lat p op) with
            | Some lp -> (lp.Report.buckets, lp.Report.count)
            | None -> ([], 0)
          in
          let db =
            List.filter_map
              (fun (b, c) ->
                let c = c - (match List.assoc_opt b pb with Some x -> x | None -> 0) in
                if c > 0 then Some (b, c) else None)
              ln.Report.buckets
          in
          let dc = ln.Report.count - pc in
          if dc <= 0 then None
          else
            Some
              ( Report.quantile_of_buckets ~count:dc ~max_ns:ln.Report.max_ns db 0.50,
                Report.quantile_of_buckets ~count:dc ~max_ns:ln.Report.max_ns db 0.99,
                dc )
    in
    let rate prev r name =
      match prev with
      | None -> "-"
      | Some p ->
          Printf.sprintf "%.0f/s"
            (float_of_int (Report.counter r name - Report.counter p name) /. interval)
    in
    let render frame_i j prev =
      let report =
        match Option.map Report.of_json (Json.member "report" j) with
        | Some (Ok r) -> r
        | Some (Error _) | None ->
            prerr_endline "wtrie top: malformed stats reply";
            exit 74
      in
      let server = match Json.member "server" j with Some s -> s | None -> Json.Obj [] in
      let exemplars =
        match Json.member "slow_queries" j with Some (Json.List l) -> List.length l | _ -> 0
      in
      Printf.printf "wtrie top %s:%d  frame %d\n" host port frame_i;
      Printf.printf "  requests %d (%s)  batches %d (%s)  shed %d  expired %d  bad %d\n"
        (geti server "requests") (rate prev report "serve_request")
        (geti server "batches") (rate prev report "serve_batch")
        (geti server "shed") (geti server "expired") (geti server "bad_frames");
      Printf.printf "  conns %d  pending %d  slow %d (exemplars kept %d)\n"
        (geti server "conns") (geti server "pending_ops") (geti server "slow") exemplars;
      (match interval_quantiles prev report "serve_queue_wait" with
      | Some (p50, p99, dc) ->
          Printf.printf "  queue-wait p50 %s  p99 %s  (%d samples)\n" (fmt_ns p50) (fmt_ns p99) dc
      | None -> Printf.printf "  queue-wait (no samples)\n");
      let gc_line label op =
        match interval_quantiles prev report op with
        | Some (p50, p99, dc) ->
            Printf.printf "  %s p50 %s  p99 %s  (%d pauses)\n" label (fmt_ns p50) (fmt_ns p99) dc
        | None -> Printf.printf "  %s (no pauses)\n" label
      in
      gc_line "gc-minor" "rt_gc_minor";
      gc_line "gc-major" "rt_gc_major";
      Printf.printf "  gc-time %s total (%s)  runtime-events lost %d\n%!"
        (fmt_ns (Report.counter report "rt_gc_ns"))
        (rate prev report "rt_gc_ns")
        (Report.counter report "rt_events_lost");
      report
    in
    let prev = ref None in
    (try
       let i = ref 0 in
       while !i < frames do
         incr i;
         let j =
           match Json.of_string (Sclient.stats_json client) with
           | Ok j -> j
           | Error m ->
               prerr_endline ("wtrie top: malformed stats reply: " ^ m);
               exit 74
         in
         prev := Some (render !i j !prev);
         if !i < frames then ignore (Unix.select [] [] [] interval)
       done
     with Sclient.Server_closed ->
       prerr_endline "wtrie top: server closed the connection";
       exit 74);
    Sclient.close client
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live view over a running 'wtrie serve': polls the Stats op and renders request rates, queue-wait and GC-pause percentiles per interval, and slow-query exemplar counts.")
    Term.(const run $ target_arg $ interval_arg $ count_arg $ once_arg)

let () =
  (* CI and tests can kill any durable writer mid-write by setting
     WTRIE_FAULT_CRASH_AFTER=<bytes>; the process then exits 70 with a
     torn file, exactly like a crash. *)
  Wt_durable.Fault.arm_from_env ();
  let doc = "compressed indexed sequences of strings (Wavelet Trie)" in
  let info = Cmd.info "wtrie" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        index_cmd; convert_cmd; ingest_cmd; verify_cmd; recover_cmd; stats_cmd; access_cmd;
        rank_cmd; select_cmd; prefix_count_cmd; prefix_list_cmd; query_cmd;
        trace_cmd; distinct_cmd; majority_cmd; at_least_cmd; top_k_cmd;
        quantile_cmd; serve_cmd; loadgen_cmd; top_cmd;
      ]
  in
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Wt_durable.Fault.Injected_crash msg ->
      Printf.eprintf "wtrie: %s\n" msg;
      (* Crash forensics: with WTRIE_FLIGHT_DUMP=<path>, write the
         flight-recorder ring — ending in the [crash] marker the fault
         hook recorded — before dying, like a kernel core pattern. *)
      (match Sys.getenv_opt "WTRIE_FLIGHT_DUMP" with
      | Some path when path <> "" ->
          let oc = open_out path in
          output_string oc (Json.to_string (Wtrie.Flight.to_json ()));
          output_string oc "\n";
          close_out oc;
          Printf.eprintf "wtrie: flight recorder dumped to %s\n" path
      | _ -> ());
      exit 70
  | exception Storage.Format_error msg ->
      Printf.eprintf "wtrie: %s\n" msg;
      exit 2
  (* anything the commands didn't map themselves: I/O trouble is 74 *)
  | exception Unix.Unix_error (e, fn, _) ->
      Printf.eprintf "wtrie: %s (%s)\n" (Unix.error_message e) fn;
      exit 74
  | exception Sys_error msg ->
      Printf.eprintf "wtrie: %s\n" msg;
      exit 74
