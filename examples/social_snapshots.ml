(* Evolving-graph snapshots with the fully-dynamic Wavelet Trie.

   The paper's social-network motivation: edges of a graph arrive and
   disappear over time; storing the chronological sequence of edge
   events as strings "src>dst" lets us answer, with prefix queries,
   "how did the adjacency list of a vertex change in a given time
   frame?" — producing snapshots on the fly.  The alphabet (the set of
   edges ever seen) grows and shrinks dynamically, which is exactly what
   the Wavelet Trie supports and fixed-alphabet wavelet trees do not.

   The timeline lives behind the [Wtrie.Dynamic] front door (plain byte
   strings); the range analytics of Section 5 work on the same value
   through [Wt_core.Range].

   Build:  dune exec examples/social_snapshots.exe *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Range = Wt_core.Range

let edge src dst = Printf.sprintf "%s>%s" src dst

(* bit-prefix meaning "any edge out of src", for the Range toolkit *)
let out_edges src =
  let e = Binarize.of_bytes (src ^ ">") in
  Bitstring.prefix e (Bitstring.length e - 1)

let () =
  let wt = Wtrie.Dynamic.create () in
  let log = ref [] in
  let add s d =
    Wtrie.Dynamic.append wt (edge s d);
    log := Printf.sprintf "t=%2d  +%s>%s" (Wtrie.Dynamic.length wt - 1) s d :: !log
  in

  (* A small friendship timeline. *)
  add "ada" "bob";
  add "ada" "cyd";
  add "bob" "cyd";
  add "ada" "bob"; (* re-befriended: repeated edge event *)
  add "cyd" "ada";
  add "bob" "ada";
  add "ada" "dan";
  add "dan" "ada";
  add "bob" "dan";
  add "ada" "cyd";
  List.iter print_endline (List.rev !log);

  let n = Wtrie.Dynamic.length wt in
  Printf.printf "\n%d events, %d distinct edges\n" n (Wtrie.Dynamic.distinct_count wt);

  (* Snapshot question: what were ada's outgoing edge events during
     "winter vacation" (positions [2, 8))? *)
  Printf.printf "\nada's edge events in window [2, 8):\n";
  List.iter
    (fun (s, c) -> Printf.printf "  %s x%d\n" (Binarize.to_bytes s) c)
    (Range.Dynamic.distinct wt ~prefix:(out_edges "ada") ~lo:2 ~hi:8);

  (* Count per vertex over the whole timeline: one rank_prefix each. *)
  Printf.printf "\nout-degree event counts:\n";
  List.iter
    (fun v ->
      Printf.printf "  %-4s %d\n" v (Wtrie.Dynamic.count_prefix wt ~prefix:(v ^ ">")))
    [ "ada"; "bob"; "cyd"; "dan" ];

  (* GDPR moment: cyd leaves the network.  Delete every event that
     involves cyd — deleting the last occurrence of an edge removes it
     from the alphabet (the trie reshapes itself). *)
  let involves_cyd w =
    w = "cyd" || String.length w > 3
                 && (String.sub w 0 4 = "cyd>"
                    || String.length w > 4
                       && String.sub w (String.length w - 4) 4 = ">cyd")
  in
  let removed = ref 0 in
  let pos = ref 0 in
  while !pos < Wtrie.Dynamic.length wt do
    if involves_cyd (Result.get_ok (Wtrie.Dynamic.access wt ~pos:!pos)) then begin
      Wtrie.Dynamic.delete wt ~pos:!pos;
      incr removed
    end
    else incr pos
  done;
  Printf.printf "\nremoved %d events involving cyd; %d distinct edges remain:\n" !removed
    (Wtrie.Dynamic.distinct_count wt);
  Range.Dynamic.iter_range wt ~lo:0 ~hi:(Wtrie.Dynamic.length wt) (fun s ->
      Printf.printf "  %s\n" (Binarize.to_bytes s));
  Wt_core.Dynamic_wt.check_invariants wt;

  (* Back-dated correction: it turns out ada befriended eve before
     everything else — insert at position 0, a brand-new edge. *)
  Wtrie.Dynamic.insert wt ~pos:0 (edge "ada" "eve");
  Printf.printf "\nafter back-dated insert, first event: %s\n"
    (Result.get_ok (Wtrie.Dynamic.access wt ~pos:0))
