(* Quickstart: the indexed-sequence-of-strings API in five minutes.

   Everything an application needs lives behind the [Wtrie] front door:
   the three variants (Static / Append / Dynamic) under one uniform
   byte-string API, plus the observability layer.

   Build:  dune exec examples/quickstart.exe *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Range = Wt_core.Range

let () =
  (* A tiny access log: the sequence order is the time order. *)
  let log =
    [
      "site.com/home"; "site.com/login"; "blog.net/post/1"; "site.com/home";
      "blog.net/post/2"; "site.com/home"; "shop.org/cart"; "blog.net/post/1";
      "site.com/logout"; "site.com/home";
    ]
  in
  let wt = Wtrie.Static.of_list log in

  Printf.printf "sequence length: %d, distinct strings: %d\n"
    (Wtrie.Static.length wt) (Wtrie.Static.distinct_count wt);

  (* Access: what was the 4th request? *)
  Printf.printf "access 4        = %s\n" (Wtrie.Static.access wt 4);

  (* Rank: how many times was the home page hit in the first 6 requests?
     The checked form returns a result; [rank_exn] raises instead. *)
  (match Wtrie.Static.rank wt "site.com/home" 6 with
  | Ok c -> Printf.printf "rank home, 6    = %d\n" c
  | Error e -> Format.printf "rank home, 6    = error: %a@." Wtrie.pp_api_error e);

  (* Select: when was the home page hit for the third time? *)
  (match Wtrie.Static.select wt "site.com/home" 2 with
  | Some pos -> Printf.printf "select home, 2  = position %d\n" pos
  | None -> print_endline "select home, 2  = absent");

  (* Prefix operations: whole-domain queries without grouping anything. *)
  Printf.printf "rank_prefix site.com, 10 = %d\n"
    (Wtrie.Static.rank_prefix_exn wt "site.com/" 10);
  (match Wtrie.Static.select_prefix wt "blog.net/" 1 with
  | Some pos -> Printf.printf "2nd blog.net access at position %d\n" pos
  | None -> ());

  (* Section 5 analytics on a position range (= time window).  Range
     works on the same value: [Wtrie.Static.t] IS [Wavelet_trie.t]. *)
  Printf.printf "distinct in window [2, 9):\n";
  List.iter
    (fun (s, c) -> Printf.printf "  %-18s x%d\n" (Binarize.to_bytes s) c)
    (Range.Static.distinct wt ~lo:2 ~hi:9);
  (match Range.Static.majority wt ~lo:0 ~hi:10 with
  | Some (s, c) ->
      Printf.printf "majority of the whole log: %s (%d/10)\n" (Binarize.to_bytes s) c
  | None -> Printf.printf "no majority in the whole log\n");

  (* The fully dynamic version: unseen strings may arrive at any moment. *)
  let dwt = Wtrie.Dynamic.of_list log in
  Wtrie.Dynamic.insert dwt 3 "api.io/v1/users"; (* a brand-new domain *)
  Printf.printf "after insert: access 3 = %s, distinct = %d\n"
    (Wtrie.Dynamic.access dwt 3)
    (Wtrie.Dynamic.distinct_count dwt);
  Wtrie.Dynamic.delete dwt 3; (* and gone again — the alphabet shrinks back *)
  Printf.printf "after delete: distinct = %d\n" (Wtrie.Dynamic.distinct_count dwt);

  (* Space accounting vs the information-theoretic lower bound. *)
  Format.printf "space: @[%a@]@." Wtrie.Stats.pp (Wt_core.Wavelet_trie.stats wt);

  (* Observability: flip the probes on, run some queries, snapshot a
     report (operation counters, traversal work, latency histograms). *)
  Wtrie.Probe.enable ();
  ignore (Wtrie.Static.count wt "site.com/home");
  ignore (Wtrie.Static.access wt 0);
  Format.printf "@.telemetry for the two queries above:@.%a@." Wtrie.Report.pp
    (Wtrie.Report.capture ());
  Wtrie.Probe.disable ();
  Wtrie.Probe.reset ();

  (* And the structure itself, in the style of the paper's Figure 2. *)
  let tiny =
    Wt_core.Wavelet_trie.of_list
      (List.map Bitstring.of_string
         [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ])
  in
  Format.printf "@.the paper's Figure 2 trie:@.%a@." Wt_core.Wavelet_trie.pp tiny
