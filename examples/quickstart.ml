(* Quickstart: the indexed-sequence-of-strings API in five minutes.

   Everything an application needs lives behind the [Wtrie] front door:
   the three variants (Static / Append / Dynamic) under one uniform
   byte-string API, plus the observability layer.

   Build:  dune exec examples/quickstart.exe *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Range = Wt_core.Range

let () =
  (* A tiny access log: the sequence order is the time order. *)
  let log =
    [
      "site.com/home"; "site.com/login"; "blog.net/post/1"; "site.com/home";
      "blog.net/post/2"; "site.com/home"; "shop.org/cart"; "blog.net/post/1";
      "site.com/logout"; "site.com/home";
    ]
  in
  let wt = Wtrie.Static.of_list log in

  Printf.printf "sequence length: %d, distinct strings: %d\n"
    (Wtrie.Static.length wt) (Wtrie.Static.distinct_count wt);

  (* Every partial query returns a result with the one shared error
     type; [Wtrie.pp_error] prints it. *)

  (* Access: what was the 4th request? *)
  (match Wtrie.Static.access wt ~pos:4 with
  | Ok s -> Printf.printf "access 4        = %s\n" s
  | Error e -> Format.printf "access 4        = error: %a@." Wtrie.pp_error e);

  (* Rank: how many times was the home page hit in the first 6 requests? *)
  (match Wtrie.Static.rank wt "site.com/home" ~pos:6 with
  | Ok c -> Printf.printf "rank home, 6    = %d\n" c
  | Error e -> Format.printf "rank home, 6    = error: %a@." Wtrie.pp_error e);

  (* Select: when was the home page hit for the third time? *)
  (match Wtrie.Static.select wt "site.com/home" ~count:2 with
  | Ok pos -> Printf.printf "select home, 2  = position %d\n" pos
  | Error e -> Format.printf "select home, 2  = %a@." Wtrie.pp_error e);

  (* Prefix operations: whole-domain queries without grouping anything. *)
  (match Wtrie.Static.rank_prefix wt ~prefix:"site.com/" ~pos:10 with
  | Ok c -> Printf.printf "rank_prefix site.com, 10 = %d\n" c
  | Error _ -> ());
  (match Wtrie.Static.select_prefix wt ~prefix:"blog.net/" ~count:1 with
  | Ok pos -> Printf.printf "2nd blog.net access at position %d\n" pos
  | Error _ -> ());

  (* Batches: hand the whole query vector to the engine and it shares
     the trie traversal between the operations — results come back in
     order, per-op errors as data. *)
  let batch =
    Wtrie.Static.query_batch wt
      [|
        Access { pos = 0 };
        Rank { s = "site.com/home"; pos = 10 };
        Select { s = "shop.org/cart"; count = 0 };
        Rank_prefix { prefix = "blog.net/"; pos = 10 };
        Select { s = "shop.org/cart"; count = 5 };
      |]
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Format.printf "batch[%d] = %a@." i Wtrie.pp_value v
      | Error e -> Format.printf "batch[%d] = error: %a@." i Wtrie.pp_error e)
    batch;

  (* Section 5 analytics on a position range (= time window).  Range
     works on the same value: [Wtrie.Static.t] IS [Wt_core.Flat_wt.t],
     the flat format-v3 arena. *)
  Printf.printf "distinct in window [2, 9):\n";
  List.iter
    (fun (s, c) -> Printf.printf "  %-18s x%d\n" (Binarize.to_bytes s) c)
    (Range.Static.distinct wt ~lo:2 ~hi:9);
  (match Range.Static.majority wt ~lo:0 ~hi:10 with
  | Some (s, c) ->
      Printf.printf "majority of the whole log: %s (%d/10)\n" (Binarize.to_bytes s) c
  | None -> Printf.printf "no majority in the whole log\n");

  (* The fully dynamic version: unseen strings may arrive at any moment. *)
  let dwt = Wtrie.Dynamic.of_list log in
  Wtrie.Dynamic.insert dwt ~pos:3 "api.io/v1/users"; (* a brand-new domain *)
  Printf.printf "after insert: access 3 = %s, distinct = %d\n"
    (Result.get_ok (Wtrie.Dynamic.access dwt ~pos:3))
    (Wtrie.Dynamic.distinct_count dwt);
  Wtrie.Dynamic.delete dwt ~pos:3; (* and gone again — the alphabet shrinks back *)
  Printf.printf "after delete: distinct = %d\n" (Wtrie.Dynamic.distinct_count dwt);

  (* Space accounting vs the information-theoretic lower bound. *)
  Format.printf "space: @[%a@]@." Wtrie.Stats.pp (Wt_core.Flat_wt.stats wt);

  (* Storage: the static trie saves as a format-v3 container whose
     payload is the query structure itself, so re-opening is a checksum
     check plus an mmap — no deserialization. *)
  let path = Filename.temp_file "quickstart" ".wtx" in
  (match Wtrie.Static.save_file wt path with
  | Ok () -> (
      match Wtrie.Static.open_file path (* ~mode:`Mmap is the default *) with
      | Ok wt2 ->
          Printf.printf "reopened from %s: length %d, home hits %d\n"
            (Filename.basename path) (Wtrie.Static.length wt2)
            (Wtrie.Static.count wt2 "site.com/home");
          Wtrie.Static.close wt2;
          (* after close, queries fail deterministically: *)
          (match Wtrie.Static.access wt2 ~pos:0 with
          | Error e -> Format.printf "after close: %a@." Wtrie.pp_error e
          | Ok _ -> assert false)
      | Error e -> Format.printf "open failed: %a@." Wtrie.pp_error e)
  | Error e -> Format.printf "save failed: %a@." Wtrie.pp_error e);
  Sys.remove path;

  (* Observability: flip the probes on, run some queries, snapshot a
     report (operation counters, traversal work, latency histograms). *)
  Wtrie.Probe.enable ();
  ignore (Wtrie.Static.count wt "site.com/home");
  ignore (Wtrie.Static.access wt ~pos:0);
  Format.printf "@.telemetry for the two queries above:@.%a@." Wtrie.Report.pp
    (Wtrie.Report.capture ());
  Wtrie.Probe.disable ();
  Wtrie.Probe.reset ();

  (* And the structure itself, in the style of the paper's Figure 2. *)
  let tiny =
    Wt_core.Wavelet_trie.of_list
      (List.map Bitstring.of_string
         [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ])
  in
  Format.printf "@.the paper's Figure 2 trie:@.%a@." Wt_core.Wavelet_trie.pp tiny
