(* URL access-log analytics with the append-only Wavelet Trie.

   The motivating scenario from the paper's introduction: an access log
   is compressed and indexed on the fly (Append is O(|s| + h_s)), the
   sequence order is the time order, and the range-analytics suite
   answers domain-level questions over arbitrary time windows — e.g.
   "what was the most accessed URL during winter vacation?".

   Everything below goes through the byte-string front door
   ([Wtrie.Append]); no bitstrings in sight.

   Build:  dune exec examples/url_log_analytics.exe *)

module Urls = Wt_workload.Urls

(* "http://host07.example.com/a/b/file4" -> "http://host07.example.com/"
   (skip past the scheme before looking for the first slash). *)
let host url =
  match String.index_from_opt url (min 8 (String.length url)) '/' with
  | None -> url
  | Some i -> String.sub url 0 (i + 1)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" Wtrie.pp_error e)

let () =
  let n = 200_000 in
  let g = Urls.create ~seed:2026 ~hosts:40 () in

  (* Stream the log into the index as it "arrives". *)
  let wt = Wtrie.Append.create () in
  let t0 = Unix.gettimeofday () in
  let raw_bits = ref 0 in
  for _ = 1 to n do
    let line = Urls.next g in
    raw_bits := !raw_bits + (8 * String.length line);
    Wtrie.Append.append wt line
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "indexed %d log lines in %.2fs (%.0f ns/append)\n" n dt
    (dt *. 1e9 /. float_of_int n);
  let bits_per_line = float_of_int (Wtrie.Append.space_bits wt) /. float_of_int n in
  let raw_per_line = float_of_int !raw_bits /. float_of_int n in
  Printf.printf "space: %.1f bits/line vs %.1f raw bits/line (%.1fx compression)\n"
    bits_per_line raw_per_line (raw_per_line /. bits_per_line);

  (* "Winter vacation" = a window of positions in time order. *)
  let lo = n / 2 and hi = (n / 2) + 20_000 in
  Printf.printf "\ntime window [%d, %d):\n" lo hi;

  (* The most accessed URLs in the window: one priority-queue traversal,
     no enumeration of the alphabet. *)
  Printf.printf "top 5 URLs (range_topk):\n";
  let top = ok (Wtrie.Append.range_topk wt ~lo ~hi ~k:5) in
  Array.iter (fun (s, c) -> Printf.printf "  %6d  %s\n" c s) top;

  (* Zoom in on the busiest domain: its total traffic, its per-endpoint
     breakdown, and the exact arrival times of its first accesses. *)
  let busiest = match top.(0) with s, _ -> host s in
  let hits = ok (Wtrie.Append.range_count wt ~prefix:busiest ~lo ~hi) in
  Printf.printf "\nbusiest domain %s: %d hits in the window\n" busiest hits;

  Printf.printf "its endpoints (range_distinct):\n";
  let breakdown = ok (Wtrie.Append.range_distinct ~prefix:busiest ~lo ~hi wt) in
  Array.iteri
    (fun i (s, c) -> if i < 5 then Printf.printf "  %6d  %s\n" c s)
    breakdown;
  if Array.length breakdown > 5 then
    Printf.printf "  ... %d more endpoints\n" (Array.length breakdown - 5);

  let times = ok (Wtrie.Append.select_all ~prefix:busiest ~lo ~hi wt) in
  Printf.printf "first 3 accesses inside the window:\n";
  Array.iteri
    (fun k pos ->
      if k < 3 then Printf.printf "  t=%d  %s\n" pos (ok (Wtrie.Append.access wt ~pos)))
    times;

  (* The log keeps growing while queries run. *)
  for _ = 1 to 1000 do
    Wtrie.Append.append wt (Urls.next g)
  done;
  let len = Wtrie.Append.length wt in
  let recent = ok (Wtrie.Append.range_count wt ~prefix:busiest ~lo:(len - 1000) ~hi:len) in
  Printf.printf "\nappended 1000 more lines; length now %d (%d of them hit %s)\n" len
    recent busiest
