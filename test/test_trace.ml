(* Span tracing and the flight recorder: deterministic span trees under
   the injected clock, parent links across Exec levels and across
   domains, counted sampling that never tears a subtree, ring-buffer
   wraparound, crash-dump content, and the zero-cost-when-disabled
   contract mirroring test_obs.ml. *)

module Probe = Wt_obs.Probe
module Trace = Wt_obs.Trace
module Flight = Wt_obs.Flight
module Fault = Wt_durable.Fault

let check_int = Alcotest.(check int)

(* Every clock read advances exactly 1000 "ns", so span endpoints are
   exact integers.  [Trace.with_span] passes its own timestamps through
   to the flight recorder, so a span costs exactly two ticks. *)
let with_fake_clock f =
  let ticks = ref 0 in
  Probe.set_clock (fun () ->
      ticks := !ticks + 1000;
      !ticks);
  Fun.protect ~finally:(fun () -> Probe.set_clock Probe.default_clock) f

let traced ?sample_every f =
  Trace.reset ();
  Trace.enable ?sample_every ();
  Fun.protect ~finally:Trace.disable f

let by_name name evs = List.filter (fun e -> e.Trace.name = name) evs
let the name evs =
  match by_name name evs with
  | [ e ] -> e
  | l -> Alcotest.failf "expected exactly one %S span, got %d" name (List.length l)

(* ------------------------------------------------------------------ *)
(* (a) Span trees *)

let test_span_tree_deterministic () =
  with_fake_clock (fun () ->
      traced (fun () ->
          Trace.with_span "a" (fun () ->
              Trace.with_span "b" (fun () -> ());
              Trace.with_span ~args:[ ("k", 7) ] "c" (fun () -> ())));
      let evs = Trace.events () in
      check_int "three spans" 3 (List.length evs);
      let a = the "a" evs and b = the "b" evs and c = the "c" evs in
      check_int "a is a root" (-1) a.Trace.parent;
      check_int "b under a" a.Trace.id b.Trace.parent;
      check_int "c under a" a.Trace.id c.Trace.parent;
      Alcotest.(check (list (pair string int))) "args survive" [ ("k", 7) ] c.Trace.args;
      (* two ticks per span, in stack order *)
      check_int "a.t0" 1000 a.Trace.t0_ns;
      check_int "b.t0" 2000 b.Trace.t0_ns;
      check_int "b.t1" 3000 b.Trace.t1_ns;
      check_int "c.t0" 4000 c.Trace.t0_ns;
      check_int "c.t1" 5000 c.Trace.t1_ns;
      check_int "a.t1" 6000 a.Trace.t1_ns)

(* An exception must close the span and re-raise; the sibling after it
   still nests correctly. *)
let test_span_exception () =
  traced (fun () ->
      Trace.with_span "root" (fun () ->
          (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
          Trace.with_span "after" (fun () -> ())));
  let evs = Trace.events () in
  let root = the "root" evs in
  check_int "boom closed under root" root.Trace.id (the "boom" evs).Trace.parent;
  check_int "after still under root" root.Trace.id (the "after" evs).Trace.parent

let test_exec_level_nesting () =
  let strings = Array.init 128 (fun i -> Printf.sprintf "h%d.net/p/%d" (i mod 5) (i mod 17)) in
  let wt = Wtrie.Static.of_array strings in
  let ops =
    Array.init 64 (fun i ->
        if i land 1 = 0 then Wtrie.Access { pos = i }
        else Wtrie.Rank { s = strings.(i); pos = i })
  in
  traced (fun () -> ignore (Wtrie.Static.query_batch wt ops));
  let evs = Trace.events () in
  let batch = the "exec.batch" evs in
  Alcotest.(check (list (pair string int))) "batch args" [ ("ops", 64) ] batch.Trace.args;
  let levels = by_name "exec.level" evs in
  Alcotest.(check bool) "at least one level" true (List.length levels > 0);
  List.iteri
    (fun i l ->
      check_int (Printf.sprintf "level %d under batch" i) batch.Trace.id l.Trace.parent;
      check_int
        (Printf.sprintf "level %d indexed in order" i)
        i (List.assoc "level" l.Trace.args);
      Alcotest.(check bool)
        (Printf.sprintf "level %d contained in batch" i)
        true
        (batch.Trace.t0_ns <= l.Trace.t0_ns && l.Trace.t1_ns <= batch.Trace.t1_ns))
    levels

(* ------------------------------------------------------------------ *)
(* (b) Cross-domain parenting *)

(* Explicit [Domain.spawn]: the guaranteed two-domain case.  [~parent]
   carries the chain; the child span records the executing domain. *)
let test_cross_domain_parent () =
  traced (fun () ->
      Trace.with_span "submit" (fun () ->
          let parent = Trace.current_id () in
          let d =
            Domain.spawn (fun () -> Trace.with_span ~parent "remote" (fun () -> 41 + 1))
          in
          check_int "child result" 42 (Domain.join d)));
  let evs = Trace.events () in
  let submit = the "submit" evs and remote = the "remote" evs in
  check_int "remote under submit" submit.Trace.id remote.Trace.parent;
  Alcotest.(check bool)
    "spans from two distinct domains" true
    (submit.Trace.dom <> remote.Trace.dom)

(* The sharded executor: every par.shard span is parented to the
   par.batch span even when a shard runs on a pool worker, and results
   are identical to the sequential engine. *)
let test_shard_spans () =
  let strings = Array.init 512 (fun i -> Printf.sprintf "s%d.io/%d" (i mod 7) (i mod 29)) in
  let wt = Wtrie.Static.of_array strings in
  let ops = Array.init 256 (fun i -> Wtrie.Access { pos = i }) in
  let engine = Wt_exec.Exec.Static.query_batch in
  let expected = engine wt ops in
  let pool = Wt_par.Pool.create ~size:4 () in
  traced (fun () ->
      let got = Wt_par.Par_exec.query_batch ~pool ~min_shard:1 ~domains:4 engine wt ops in
      Alcotest.(check bool) "sharded = sequential" true (got = expected));
  Wt_par.Pool.shutdown pool;
  let evs = Trace.events () in
  let batch = the "par.batch" evs in
  check_int "shards arg" 4 (List.assoc "shards" batch.Trace.args);
  let shards = by_name "par.shard" evs in
  check_int "one span per shard" 4 (List.length shards);
  List.iter
    (fun s -> check_int "shard under batch" batch.Trace.id s.Trace.parent)
    shards;
  (* each shard span also leaves begin/end breadcrumbs in the ring *)
  let marks =
    List.filter
      (fun (e : Flight.event) -> e.kind = Flight.Span_begin && e.note = "par.shard")
      (Flight.dump ())
  in
  Alcotest.(check bool) "flight saw the shards" true (List.length marks >= 4)

(* ------------------------------------------------------------------ *)
(* (c) Counted sampling: every 2nd root recorded, subtrees never torn *)

let test_sampling_whole_subtrees () =
  traced ~sample_every:2 (fun () ->
      for _ = 1 to 4 do
        Trace.with_span "root" (fun () -> Trace.with_span "kid" (fun () -> ()))
      done);
  let evs = Trace.events () in
  let roots = by_name "root" evs and kids = by_name "kid" evs in
  check_int "half the roots" 2 (List.length roots);
  check_int "their kids, all of them" 2 (List.length kids);
  let root_ids = List.map (fun r -> r.Trace.id) roots in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        "kid parented to a recorded root" true
        (List.mem k.Trace.parent root_ids))
    kids

(* ------------------------------------------------------------------ *)
(* (d) Dynamic mutations *)

let test_mutation_spans () =
  let wt = Wtrie.Dynamic.of_list [ "a"; "b"; "a" ] in
  traced (fun () ->
      Wtrie.Dynamic.insert wt ~pos:1 "c";
      Wtrie.Dynamic.delete wt ~pos:1;
      Wtrie.Dynamic.append wt "d");
  let evs = Trace.events () in
  check_int "insert span" 1 (List.assoc "pos" (the "wt.insert" evs).Trace.args);
  check_int "delete span" 1 (List.assoc "pos" (the "wt.delete" evs).Trace.args);
  ignore (the "wt.append" evs)

(* ------------------------------------------------------------------ *)
(* (e) Flight recorder *)

let test_flight_wraparound () =
  with_fake_clock (fun () ->
      Flight.clear ();
      let extra = 50 in
      for i = 0 to Flight.capacity + extra - 1 do
        Flight.record ~a:i Flight.Mark
      done;
      let marks = List.filter (fun (e : Flight.event) -> e.kind = Flight.Mark) (Flight.dump ()) in
      check_int "ring keeps exactly capacity" Flight.capacity (List.length marks);
      check_int "oldest survivor" extra (List.hd marks).Flight.a;
      check_int "newest survivor"
        (Flight.capacity + extra - 1)
        (List.nth marks (Flight.capacity - 1)).Flight.a;
      (* timestamps non-decreasing after the merge-sort *)
      let rec mono = function
        | a :: (b :: _ as tl) ->
            Alcotest.(check bool) "chronological" true (a.Flight.t_ns <= b.Flight.t_ns);
            mono tl
        | _ -> ()
      in
      mono marks)

(* The injected-crash path drops a [Crash] marker after the WAL appends
   that led up to it — the "what happened just before" story the dump
   exists to tell. *)
let test_flight_crash_dump () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wt_trace_crash_%d" (Hashtbl.hash (Sys.time ())))
  in
  let t = Durable.create ~variant:`Append dir in
  Flight.clear ();
  Durable.append t "alpha";
  Durable.append t "beta";
  Fault.arm_crash_after_bytes 4;
  (match Durable.append t "gamma" with
  | () -> Alcotest.fail "armed fault did not fire"
  | exception Fault.Injected_crash _ -> ());
  Fault.disarm ();
  (try Durable.close t with Fault.Injected_crash _ -> ());
  let evs = Flight.dump () in
  let appends = List.filter (fun (e : Flight.event) -> e.kind = Flight.Wal_append) evs in
  check_int "both clean appends in the ring" 2 (List.length appends);
  (match List.filter (fun (e : Flight.event) -> e.kind = Flight.Crash) evs with
  | [ c ] ->
      Alcotest.(check bool)
        "crash note names the torn write" true
        (String.length c.note > 0
        && String.sub c.note 0 (min 14 (String.length c.note)) = "injected crash");
      List.iter
        (fun (a : Flight.event) ->
          Alcotest.(check bool) "appends precede the crash" true (a.t_ns <= c.t_ns))
        appends
  | l -> Alcotest.failf "expected exactly one crash event, got %d" (List.length l));
  (* the JSON dump is parseable and carries the same events *)
  match Wt_obs.Json.of_string (Wt_obs.Json.to_string (Flight.to_json ())) with
  | Error e -> Alcotest.failf "flight dump did not round-trip: %s" e
  | Ok j -> (
      match Wt_obs.Json.member "events" j with
      | Some (Wt_obs.Json.List l) -> check_int "dump size" (List.length evs) (List.length l)
      | _ -> Alcotest.fail "flight dump lacks an events list")

(* ------------------------------------------------------------------ *)
(* (f) Zero cost when disabled, mirroring test_obs.ml *)

let test_disabled_zero_cost () =
  Trace.reset ();
  Trace.disable ();
  let strings = Array.init 100 (fun i -> Printf.sprintf "z%d/%d" (i mod 9) (i mod 13)) in
  let wt = Wtrie.Static.of_array strings in
  let ops =
    Array.init 50 (fun i ->
        if i land 1 = 0 then Wtrie.Access { pos = i }
        else Wtrie.Rank { s = strings.(i); pos = i })
  in
  let off = Wtrie.Static.query_batch wt ops in
  check_int "no spans recorded" 0 (Trace.event_count ());
  check_int "nothing dropped" 0 (Trace.dropped_count ());
  check_int "no current span" (-1) (Trace.current_id ());
  (* enabling must not change any result *)
  let on = traced (fun () -> Wtrie.Static.query_batch wt ops) in
  Alcotest.(check bool) "trace state does not affect results" true (off = on);
  Trace.reset ()

let test_with_trace () =
  let wt = Wtrie.Static.of_array [| "x"; "y"; "x" |] in
  let r, j =
    Wtrie.with_trace (fun () -> Wtrie.Static.query_batch wt [| Wtrie.Access { pos = 0 } |])
  in
  Alcotest.(check bool) "result passes through" true (r = [| Ok (Wtrie.Str "x") |]);
  Alcotest.(check bool) "tracing off afterwards" false (Trace.enabled ());
  match Wt_obs.Json.member "traceEvents" j with
  | Some (Wt_obs.Json.List l) ->
      Alcotest.(check bool) "trace has events" true (List.length l > 0)
  | _ -> Alcotest.fail "with_trace did not produce trace_event JSON"

let () =
  Alcotest.run "wt_trace"
    [
      ( "spans",
        [
          Alcotest.test_case "deterministic span tree under injected clock" `Quick
            test_span_tree_deterministic;
          Alcotest.test_case "exceptions close spans" `Quick test_span_exception;
          Alcotest.test_case "exec levels nest under the batch" `Quick
            test_exec_level_nesting;
        ] );
      ( "cross-domain",
        [
          Alcotest.test_case "explicit spawn carries the parent" `Quick
            test_cross_domain_parent;
          Alcotest.test_case "par shards parent to the batch span" `Quick
            test_shard_spans;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "every 2nd root, subtrees intact" `Quick
            test_sampling_whole_subtrees;
        ] );
      ( "mutations",
        [ Alcotest.test_case "insert/delete/append spans" `Quick test_mutation_spans ] );
      ( "flight",
        [
          Alcotest.test_case "ring wraparound keeps the newest" `Quick
            test_flight_wraparound;
          Alcotest.test_case "crash dump tells the story" `Quick test_flight_crash_dump;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "disabled tracing records nothing, changes nothing"
            `Quick test_disabled_zero_cost;
          Alcotest.test_case "with_trace exports and restores" `Quick test_with_trace;
        ] );
    ]
