(* Differential harness for the tiered store (lib/tiered).

   - QCheck scenarios: random interleavings of ingest / flush /
     compact / publish, applied in lockstep to the tiered store, a
     naive list-of-strings oracle, and a pure [Wtrie.Dynamic] run.
     After every compaction and at the end of the scenario the whole
     query surface must agree: scalar ops against the oracle,
     query_batch (at 1/2/4 domains) and the analytics suite against
     the dynamic run, plus a close -> reopen leg so the WAL replay /
     manifest / run files round-trip every scenario's final state.
     Explicit compactions rotate through 1/2/4-domain pools.
   - Concurrent snapshot reads: reader domains hammer the epoch
     handle while the owner ingests through many background
     compactions; every view a reader obtains must be a consistent
     prefix of the (append-only) oracle. *)

module T = Wtrie.Tiered
module Pool = Wtrie.Pool
module Snapshot = Wtrie.Snapshot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Filesystem helpers *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("wt_tiered_" ^ name)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let fresh_dir name =
  let d = tmp name in
  rm_rf d;
  d

(* ------------------------------------------------------------------ *)
(* Scenario ops *)

type sop = Ingest of string | Flush | Compact | Publish

let pp_sop = function
  | Ingest s -> Printf.sprintf "ingest %S" s
  | Flush -> "flush"
  | Compact -> "compact"
  | Publish -> "publish"

(* A small alphabet makes duplicates and shared prefixes common, which
   is where the per-tier rank/select merging can go wrong. *)
let word_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 1 5))

let sop_gen =
  QCheck.Gen.(
    frequency
      [
        (8, map (fun s -> Ingest s) word_gen);
        (1, return Flush);
        (1, return Compact);
        (1, return Publish);
      ])

let scenario_gen = QCheck.Gen.(list_size (int_range 1 90) sop_gen)

let scenario_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_sop ops))
    scenario_gen

(* ------------------------------------------------------------------ *)
(* The differential check: tiered vs list oracle vs pure dynamic *)

let ok_value = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" (fun ppf -> Wtrie.pp_error ppf) e

let check_result what expected got =
  if expected <> got then
    Alcotest.failf "%s: tiered disagrees with the dynamic run" what

let distinct_of oracle =
  List.sort_uniq compare (Array.to_list oracle)

let batch_domains = [| 1; 2; 4 |]

let differential ?(tag = "") t (oracle : string array) (dyn : Wtrie.Dynamic.t) =
  let n = Array.length oracle in
  let ctx what = Printf.sprintf "%s%s (n=%d)" tag what n in
  check_int (ctx "length") n (T.length t);
  check_int (ctx "dyn length") n (Wtrie.Dynamic.length dyn);
  (* access: every position against the oracle *)
  for pos = 0 to n - 1 do
    check_bool (ctx "access") true (T.access t ~pos = Ok oracle.(pos))
  done;
  check_bool (ctx "access out of range") true
    (T.access t ~pos:n = Error (Wtrie.Position_out_of_bounds { pos = n; len = n }));
  check_bool (ctx "access negative") true
    (T.access t ~pos:(-1) = Error (Wtrie.Position_out_of_bounds { pos = -1; len = n }));
  let distinct = distinct_of oracle in
  check_int (ctx "distinct_count") (List.length distinct) (T.distinct_count t);
  (* rank / select for every stored string, plus one absent string *)
  let probe_strings = if n = 0 then [ "a" ] else "zzz" :: distinct in
  List.iter
    (fun s ->
      let occs = ref [] in
      Array.iteri (fun i x -> if x = s then occs := i :: !occs) oracle;
      let occs = Array.of_list (List.rev !occs) in
      let c = Array.length occs in
      check_int (ctx ("count " ^ s)) c (T.count t s);
      for pos = 0 to n do
        let naive = Array.fold_left (fun a p -> if p < pos then a + 1 else a) 0 occs in
        check_int (ctx ("rank " ^ s)) naive (ok_value (T.rank t s ~pos))
      done;
      Array.iteri
        (fun k p -> check_int (ctx ("select " ^ s)) p (ok_value (T.select t s ~count:k)))
        occs;
      check_bool
        (ctx ("select past " ^ s))
        true
        (T.select t s ~count:c = Error (Wtrie.No_occurrence { count = c; occurrences = c }));
      check_bool
        (ctx ("select negative " ^ s))
        true
        (T.select t s ~count:(-1) = Error (Wtrie.Negative_count { count = -1 })))
    probe_strings;
  (* prefix family, differentially against the dynamic run *)
  let prefixes = [ ""; "a"; "ab"; "b"; "c"; "zz" ] in
  List.iter
    (fun prefix ->
      check_result
        (ctx ("count_prefix " ^ prefix))
        (Wtrie.Dynamic.count_prefix dyn ~prefix)
        (T.count_prefix t ~prefix);
      check_result
        (ctx ("rank_prefix " ^ prefix))
        (Wtrie.Dynamic.rank_prefix dyn ~prefix ~pos:(n / 2))
        (T.rank_prefix t ~prefix ~pos:(n / 2));
      for count = 0 to min 4 n do
        check_result
          (ctx ("select_prefix " ^ prefix))
          (Wtrie.Dynamic.select_prefix dyn ~prefix ~count)
          (T.select_prefix t ~prefix ~count)
      done)
    prefixes;
  (* one mixed batch, compared op-for-op with the dynamic engine, at
     1/2/4 domains *)
  let ops =
    Array.concat
      [
        Array.init (min n 16) (fun i -> Wtrie.Access { pos = i * ((n / 16) + 1) });
        [| Wtrie.Access { pos = n }; Wtrie.Access { pos = -1 } |];
        Array.of_list
          (List.concat_map
             (fun s ->
               [
                 Wtrie.Rank { s; pos = n };
                 Wtrie.Rank { s; pos = n / 2 };
                 Wtrie.Select { s; count = 0 };
                 Wtrie.Select { s; count = max 0 (T.count t s - 1) };
                 Wtrie.Select { s; count = T.count t s };
                 Wtrie.Select { s; count = -2 };
               ])
             probe_strings);
        Array.of_list
          (List.concat_map
             (fun prefix ->
               [
                 Wtrie.Rank_prefix { prefix; pos = n };
                 Wtrie.Select_prefix { prefix; count = 1 };
               ])
             prefixes);
        [| Wtrie.Rank { s = "a"; pos = n + 1 } |];
      ]
  in
  let expected = Wtrie.Dynamic.query_batch dyn ops in
  Array.iter
    (fun domains ->
      let got = T.query_batch ~domains t ops in
      check_bool (ctx (Printf.sprintf "query_batch ~domains:%d" domains)) true
        (expected = got))
    batch_domains;
  (* analytics over a few windows, differentially *)
  let windows = [ (0, n); (0, n / 2); (n / 3, n - (n / 4)); (n / 2, n / 2) ] in
  List.iter
    (fun (lo, hi) ->
      if lo <= hi then
        List.iter
          (fun prefix ->
            let prefix = if prefix = "" then None else Some prefix in
            check_bool (ctx "select_all") true
              (Wtrie.Dynamic.select_all ?prefix ~lo ~hi dyn
              = T.select_all ?prefix ~lo ~hi t);
            check_bool (ctx "range_count") true
              (Wtrie.Dynamic.range_count ?prefix dyn ~lo ~hi
              = T.range_count ?prefix t ~lo ~hi);
            check_bool (ctx "range_distinct") true
              (Wtrie.Dynamic.range_distinct ?prefix ~lo ~hi dyn
              = T.range_distinct ?prefix ~lo ~hi t);
            List.iter
              (fun k ->
                check_bool (ctx "range_topk") true
                  (Wtrie.Dynamic.range_topk ?prefix ~lo ~hi dyn ~k
                  = T.range_topk ?prefix ~lo ~hi t ~k))
              [ 0; 1; 2; 1000 ])
          [ ""; "a"; "ab" ])
    windows;
  (* window validation errors *)
  check_bool (ctx "bad window") true
    (T.range_count t ~lo:(-1) ~hi:0
    = Error (Wtrie.Position_out_of_bounds { pos = -1; len = n }));
  check_bool (ctx "bad topk") true
    (T.range_topk t ~k:(-1) = Error (Wtrie.Negative_count { count = -1 }))

(* ------------------------------------------------------------------ *)
(* The scenario property *)

let scenario_id = ref 0

let pools = lazy (Array.map (fun size -> Pool.create ~size ()) [| 1; 2; 4 |])

let prop_scenario ops =
  incr scenario_id;
  let dir = fresh_dir (Printf.sprintf "scen%d_%d" (Unix.getpid ()) !scenario_id) in
  (* a tiny threshold makes background auto-compaction fire mid-scenario *)
  let t = T.create ~threshold:6 dir in
  let dyn = Wtrie.Dynamic.create () in
  let oracle = ref [] in
  let compactions = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Ingest s ->
          T.ingest t s;
          Wtrie.Dynamic.append dyn s;
          oracle := s :: !oracle
      | Flush -> T.flush t
      | Compact ->
          let pool = (Lazy.force pools).(!compactions mod 3) in
          incr compactions;
          T.compact ~pool t;
          differential ~tag:"post-compact " t
            (Array.of_list (List.rev !oracle))
            dyn
      | Publish -> T.publish t)
    ops;
  let oracle = Array.of_list (List.rev !oracle) in
  differential ~tag:"final " t oracle dyn;
  (* runs + delta and the generation history round-trip through disk *)
  T.flush t;
  let gen = T.generation t and runs = T.run_count t in
  T.close t;
  let t2, r = T.open_ dir in
  check_int "reopen generation" gen r.T.r_generation;
  check_int "reopen runs" runs r.T.r_runs;
  check_int "reopen replay" (T.delta_length t2) r.T.r_replayed;
  check_bool "reopen clean" true
    ((not r.T.r_wal_reset) && (not r.T.r_rolled_forward) && r.T.r_dropped_bytes = 0);
  differential ~tag:"reopened " t2 oracle dyn;
  (* compacting everything into runs changes no answer *)
  T.compact t2;
  check_int "delta empty after compact" 0 (T.delta_length t2);
  differential ~tag:"fully-compacted " t2 oracle dyn;
  T.close t2;
  rm_rf dir;
  true

(* ------------------------------------------------------------------ *)
(* Concurrent snapshot reads during compaction: every view a reader
   pulls off the epoch handle must be a prefix of the append-only
   oracle — never torn, never mixing tiers from two generations. *)

let test_concurrent_readers () =
  let dir = fresh_dir (Printf.sprintf "conc_%d" (Unix.getpid ())) in
  let t = T.create ~threshold:64 dir in
  let total = 3_000 in
  let word i = Printf.sprintf "%c%c-%d" (Char.chr (97 + (i mod 7))) (Char.chr (97 + (i mod 3))) (i mod 11) in
  (* the oracle the readers check against: grown before each ingest,
     so any published view is a prefix of what readers observe *)
  let oracle = Array.init total word in
  let published = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let stop = Atomic.make false in
  let handle = T.handle t in
  let reader () =
    let rng = Random.State.make [| 42 |] in
    while not (Atomic.get stop) do
      let v = Snapshot.read handle in
      let len = T.View.length v in
      let limit = Atomic.get published in
      (* the view was published before [published] advanced past it *)
      if len > limit then Atomic.incr failures
      else if len > 0 then begin
        let probe pos =
          let got = T.View.Seq.access v pos in
          if Wt_strings.Binarize.to_bytes got <> oracle.(pos) then Atomic.incr failures
        in
        probe (Random.State.int rng len);
        probe (len - 1);
        (* a small merged batch on the frozen view *)
        let ops = [| Wtrie.Access { pos = len - 1 }; Wtrie.Rank { s = oracle.(0); pos = len } |] in
        match T.View.query_batch v ops with
        | [| Ok (Wtrie.Str s); Ok (Wtrie.Int _) |] ->
            if s <> oracle.(len - 1) then Atomic.incr failures
        | _ -> Atomic.incr failures
      end
    done
  in
  let readers = Array.init 2 (fun _ -> Domain.spawn reader) in
  for i = 0 to total - 1 do
    Atomic.set published (i + 1);
    T.ingest t (word i);
    if i mod 16 = 0 then T.publish t
  done;
  T.publish t;
  T.compact t;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  check_int "no reader anomalies" 0 (Atomic.get failures);
  check_bool "compactions happened" true (T.run_count t >= 2);
  check_int "all ingests present" total (T.length t);
  T.close t;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Store lifecycle edges *)

let test_edges () =
  let dir = fresh_dir (Printf.sprintf "edges_%d" (Unix.getpid ())) in
  (* empty store: every query total, compact a no-op *)
  let t = T.create dir in
  check_int "empty length" 0 (T.length t);
  check_int "empty distinct" 0 (T.distinct_count t);
  T.compact t;
  check_int "empty compact makes no run" 0 (T.run_count t);
  check_bool "empty select" true
    (T.select t "x" ~count:0 = Error (Wtrie.No_occurrence { count = 0; occurrences = 0 }));
  check_bool "empty select_all" true (T.select_all t = Ok [||]);
  T.close t;
  (* closed store: queries answer Trie_closed, mutations raise *)
  check_bool "closed access" true (T.access t ~pos:0 = Error Wtrie.Trie_closed);
  check_bool "closed ingest raises" true
    (match T.ingest t "x" with exception Failure _ -> true | () -> false);
  (* double create refuses *)
  check_bool "double create refuses" true
    (match T.create dir with
    | exception Wt_durable.Container.Format_error _ -> true
    | t' ->
        T.close t';
        false);
  (* read-only handle refuses mutation but answers queries *)
  let t2, _ = T.open_ dir in
  T.ingest t2 "ro";
  T.flush t2;
  T.close t2;
  let ro, r = T.open_read_only dir in
  check_int "ro replayed" 1 r.T.r_replayed;
  check_bool "ro access" true (T.access ro ~pos:0 = Ok "ro");
  check_bool "ro ingest refuses" true
    (match T.ingest ro "x" with exception Failure _ -> true | () -> false);
  T.close ro;
  rm_rf dir

let () =
  let qcheck =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tiered = oracle = dynamic under interleavings"
         ~count:25 scenario_arb prop_scenario)
  in
  Alcotest.run "wt_tiered"
    [
      ("differential", [ qcheck ]);
      ( "concurrency",
        [ Alcotest.test_case "snapshot readers during compaction" `Quick test_concurrent_readers ] );
      ("edges", [ Alcotest.test_case "lifecycle edges" `Quick test_edges ]);
    ]
