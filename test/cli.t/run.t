The wtrie CLI over a small line file.

  $ cat > log.txt <<STOP
  > site.com/home
  > site.com/login
  > blog.net/post
  > site.com/home
  > shop.org/cart
  > site.com/home
  > STOP

Point queries share one convention: --at for positions, --prefix for
byte prefixes, --count for occurrence indices.  Malformed arguments
print the shared error rendering and exit 64 (EX_USAGE).

  $ wtrie access log.txt --at 2
  blog.net/post

  $ wtrie access log.txt --at 99
  position 99 out of bounds (sequence length 6)
  [64]

  $ wtrie rank log.txt site.com/home
  3

  $ wtrie rank log.txt site.com/home --at 3
  1

  $ wtrie select log.txt site.com/home --count 1
  3

  $ wtrie select log.txt nope --count 0
  no occurrence 0 (only 0 present)
  [64]

Prefix queries:

  $ wtrie prefix-count log.txt --prefix site.com/
  4

  $ wtrie prefix-count log.txt --prefix site.com/ --at 2
  2

  $ wtrie prefix-list log.txt --prefix site.com/ --count 2
         0  site.com/home
         1  site.com/login

Batch mode: a whole vector of operations through the batch engine in
one amortized traversal, one result line per operation.  Per-operation
failures are data, not process failures.

  $ cat > ops.txt <<STOP
  > access 2
  > rank site.com/home 6
  > select site.com/home 1
  > rank-prefix site.com/ 4
  > select-prefix blog.net/ 0
  > access 99
  > select nope 0
  > STOP

  $ wtrie query log.txt --batch ops.txt
  blog.net/post
  3
  3
  3
  2
  error: position 99 out of bounds (sequence length 6)
  error: no occurrence 0 (only 0 present)

  $ echo "rank site.com/home 3" | wtrie query log.txt --batch -
  1

Range analytics: one frontier traversal per query instead of a loop of
scalar queries.  The query subcommand exposes the windowed suite
(--select-all / --count-range / --distinct / --top-k over [--lo, --hi),
optionally restricted by --prefix):

  $ wtrie query log.txt --select-all --prefix site.com/
  0
  1
  3
  5

  $ wtrie query log.txt --select-all --prefix site.com/home --lo 1 --hi 5
  3

  $ wtrie query log.txt --count-range --lo 1 --hi 5 --prefix site.com/
  2

  $ wtrie query log.txt --distinct --lo 1 --hi 6
         1  blog.net/post
         1  shop.org/cart
         2  site.com/home
         1  site.com/login

  $ wtrie query log.txt --top-k 2 --prefix site.com/
         3  site.com/home
         1  site.com/login

A window outside the sequence is a usage error, same convention as the
point queries:

  $ wtrie query log.txt --top-k 2 --lo 99
  position 99 out of bounds (sequence length 6)
  [64]

  $ wtrie distinct log.txt --hi 7
  position 7 out of bounds (sequence length 6)
  [64]

The standalone range commands ride the same engine (top-k ties go to
the lexicographically smaller string):

  $ wtrie distinct log.txt
         1  blog.net/post
         1  shop.org/cart
         3  site.com/home
         1  site.com/login

  $ wtrie majority log.txt --lo 3 --hi 6
  site.com/home (2 of 3)

  $ wtrie at-least log.txt 3
         3  site.com/home

  $ wtrie top-k log.txt 2
         3  site.com/home
         1  blog.net/post

  $ wtrie quantile log.txt 0
  blog.net/post

  $ wtrie quantile log.txt 5
  site.com/login

Index caching: `wtrie index` writes a format-v3 file whose payload is
the flat query arena itself, so every later command opens it with an
O(1) checksum-plus-mmap, not a deserialize.

  $ wtrie index log.txt log.wtx
  indexed 6 strings into log.wtx

  $ wtrie rank log.wtx site.com/home
  3

  $ wtrie access log.wtx --at 4
  shop.org/cart

The mmap-opened index answers byte-for-byte the same as the line file
(same batch as above, now served from the arena):

  $ wtrie query log.wtx --batch ops.txt
  blog.net/post
  3
  3
  3
  2
  error: position 99 out of bounds (sequence length 6)
  error: no occurrence 0 (only 0 present)

  $ wtrie query log.wtx --top-k 2 --prefix site.com/
         3  site.com/home
         1  site.com/login

Deep verification of a saved index:

  $ wtrie verify log.wtx
  log.wtx: ok (static index, length 6)

Conversion: `wtrie convert` rewrites any readable index — v2 of any
variant, or v3 — as a format-v3 static index (idempotent on v3 input):

  $ wtrie convert log.wtx log-converted.wtx
  converted log.wtx (static index, length 6) into log-converted.wtx (v3 static)

  $ wtrie verify log-converted.wtx
  log-converted.wtx: ok (static index, length 6)

  $ wtrie rank log-converted.wtx site.com/home
  3

Durable store: crash-safe, write-ahead logged ingestion.

  $ wtrie ingest store.d log.txt
  ingested 6 strings into store.d (length 6, generation 0)

  $ wtrie verify store.d
  store.d: ok (append store, generation 0, length 6, wal records 6)

  $ wtrie rank store.d site.com/home
  3

Tear the write-ahead log mid-record (as a crash would); verify flags
it, recover replays the intact prefix and checkpoints:

  $ truncate -s -3 store.d/wal.log

  $ wtrie verify store.d
  store.d: recoverable (append store, 5 wal records intact, 19 bytes torn); run 'wtrie recover store.d'
  [1]

  $ wtrie recover store.d
  recovered store.d: replayed 5 records, dropped 19 bytes, checkpointed as generation 1

  $ wtrie verify store.d --json
  {"ok":true,"kind":"store","variant":"append","generation":1,"length":5,"distinct":4,"wal_records":0,"wal_dropped_bytes":0,"wal_reset_needed":false}

  $ wtrie access store.d --at 4
  shop.org/cart

An injected crash (the fault hook the CI smoke test uses) kills the
writer mid-append; acknowledged records survive, the torn one does not:

  $ WTRIE_FAULT_CRASH_AFTER=60 wtrie ingest store.d log.txt
  wtrie: injected crash: torn write (15 of 22 bytes reached the file)
  [70]

  $ wtrie recover store.d
  recovered store.d: replayed 2 records, dropped 15 bytes, checkpointed as generation 2

  $ wtrie verify store.d
  store.d: ok (append store, generation 2, length 7, wal records 0)

  $ wtrie access store.d --at 6
  site.com/login

Stats aggregate the per-op latency histograms into one summary line
(timings vary run to run, so check the shape only):

  $ wtrie stats log.txt | grep -c "overall latency: p50 .* ns  p90 .* ns  p99 .* ns  max .* ns"
  1

Span tracing: run a generated query batch under the tracer and export
Chrome trace_event JSON (loadable in Perfetto).  With one domain the
span tree is exactly one exec.batch over its levels:

  $ WTRIE_DOMAINS=1 wtrie trace log.txt --out trace.json --gen-ops 200
  traced 200 ops into trace.json (5 spans across 1 domains)

  $ grep -c '"traceEvents"' trace.json
  1

  $ grep -o '"name":"exec.batch"' trace.json | wc -l
  1

Across four domains the shard spans parent back to the batch span;
counts depend on sharding, so mask them:

  $ WTRIE_DOMAINS=4 wtrie trace log.txt --out trace4.json --gen-ops 2000 --domains 4 | sed -E 's/[0-9]+ spans across [0-9]+ domains/spans recorded/'
  traced 2000 ops into trace4.json (spans recorded)

  $ grep -c '"name":"par.batch"' trace4.json
  1

The flight recorder is always on; on an injected crash the CLI dumps
the recent-event ring when WTRIE_FLIGHT_DUMP names a file, so the WAL
appends leading up to the torn write are preserved:

  $ WTRIE_FAULT_CRASH_AFTER=200 WTRIE_FLIGHT_DUMP=flight.json wtrie ingest flight-store.d log.txt
  wtrie: injected crash: torn write (12 of 22 bytes reached the file)
  wtrie: flight recorder dumped to flight.json
  [70]

  $ grep -o '"kind":"wal_append"' flight.json | wc -l
  2

  $ grep -o '"kind":"crash"' flight.json | wc -l
  1

  $ grep -o '"kind":"snapshot_save"' flight.json | wc -l
  1

Tiered store: write-optimized ingestion behind the same query surface.
Ingests land in a WAL-backed in-memory delta; compaction folds the
delta into an immutable run and swaps the manifest.  With
--compact-strings above the input size everything stays in the delta:

  $ wtrie ingest tiered.d log.txt --tiered --compact-strings 100
  ingested 6 strings into tiered.d (tiered, length 6, generation 0, 0 runs + 6 in delta)

  $ wtrie verify tiered.d
  tiered.d: ok (tiered store, generation 0, 0 runs, length 6, wal records 6)

  $ wtrie rank tiered.d site.com/home
  3

  $ wtrie query tiered.d --top-k 2 --prefix site.com/
         3  site.com/home
         1  site.com/login

Recovery doubles as a forced compaction.  An injected crash part-way
through the run write loses nothing: the WAL still holds every
acknowledged ingest, so the store verifies clean without repair:

  $ WTRIE_FAULT_CRASH_AFTER=100 wtrie recover tiered.d
  wtrie: injected crash: torn write (56 of 440 bytes reached the file)
  [70]

  $ wtrie verify tiered.d
  tiered.d: ok (tiered store, generation 0, 0 runs, length 6, wal records 6)

  $ wtrie rank tiered.d site.com/home
  3

A crash in the window between the WAL rotation and the manifest swap
leaves a commit half-published; verify flags it, recover adopts the
pending run and completes the commit:

  $ WTRIE_FAULT_CRASH_AFTER=560 wtrie recover tiered.d
  wtrie: injected crash: torn write (18 of 53 bytes reached the file)
  [70]

  $ wtrie verify tiered.d
  tiered.d: recoverable (tiered store, 0 wal records intact, 0 bytes torn, mid-compaction commit pending); run 'wtrie recover tiered.d'
  [1]

  $ wtrie recover tiered.d
  recovered tiered.d: replayed 0 records, dropped 0 bytes, completed a mid-compaction commit, delta compacted into a run

  $ wtrie verify tiered.d
  tiered.d: ok (tiered store, generation 1, 1 runs, length 6, wal records 0)

After two crashes and a restart the answers are exactly what they were
before any of it:

  $ wtrie rank tiered.d site.com/home
  3

  $ wtrie access tiered.d --at 4
  shop.org/cart

  $ wtrie query tiered.d --top-k 2 --prefix site.com/
         3  site.com/home
         1  site.com/login

Further ingests stack a fresh delta on top of the committed run;
queries merge the tiers transparently:

  $ wtrie ingest tiered.d log.txt --tiered
  ingested 6 strings into tiered.d (tiered, length 12, generation 1, 1 runs + 6 in delta)

  $ wtrie rank tiered.d site.com/home
  6

  $ wtrie query tiered.d --top-k 2
         6  site.com/home
         2  blog.net/post

Serving: I/O and socket failures exit 74 (EX_IOERR), malformed server
flags exit 64 (EX_USAGE), and a missing input file is I/O, not usage:

  $ wtrie access no-such-file.txt --at 0
  wtrie: no-such-file.txt: No such file or directory
  [74]

  $ wtrie serve log.txt --port 123456
  wtrie serve: --port must be in 0..65535 (got 123456)
  [64]

  $ wtrie serve log.txt --batch-ops 0
  wtrie serve: --batch-ops must be >= 1 (got 0)
  [64]

  $ wtrie serve log.txt --metrics-port 123456
  wtrie serve: --metrics-port must be in 0..65535 (got 123456)
  [64]

  $ wtrie serve log.txt --slow-ms=-1
  wtrie serve: --slow-ms must be >= 0 (got -1)
  [64]

  $ wtrie loadgen nonsense --ops 10
  wtrie loadgen: TARGET must be HOST:PORT (got nonsense)
  [64]

  $ wtrie top nonsense --once
  wtrie top: TARGET must be HOST:PORT (got nonsense)
  [64]

  $ wtrie top 127.0.0.1:4242 --interval 0
  wtrie top: --interval must be > 0 (got 0)
  [64]

  $ wtrie loadgen 127.0.0.1:1 --ops 10 --connect-timeout 0
  wtrie loadgen: cannot reach 127.0.0.1:1: Connection refused
  [74]

End to end: serve the file on an ephemeral port with the telemetry
plane on (ephemeral metrics listener, every request leaving a
slow-query exemplar), drive it with the load generator, render one
frame of the live view, then SIGTERM must drain and exit 0:

  $ wtrie serve log.txt --port 0 --port-file port.txt --metrics-port 0 --metrics-port-file mport.txt --slow-ms 0 >serve.log 2>&1 & echo $! > serve.pid
  $ for i in $(seq 1 100); do [ -s port.txt ] && [ -s mport.txt ] && break; sleep 0.1; done
  $ wtrie loadgen 127.0.0.1:$(cat port.txt) --conns 2 --ops 400 --window 4 | grep -c "^throughput"
  1
  $ wtrie top 127.0.0.1:$(cat port.txt) --once | grep -c "queue-wait"
  1
  $ wtrie top 127.0.0.1:$(cat port.txt) --once | grep -c "^wtrie top"
  1

A second server whose metrics listener lands on a port already bound
(the first server's query port) must fail the bind and exit 74:

  $ wtrie serve log.txt --port 0 --metrics-port $(cat port.txt) 2>&1 | grep -c "Address already in use"
  1
  $ wtrie serve log.txt --port 0 --metrics-port $(cat port.txt) >/dev/null 2>&1
  [74]

  $ kill -TERM $(cat serve.pid) && wait $(cat serve.pid)
  $ grep -c "^listening on 127.0.0.1:" serve.log
  1
  $ grep -c "^metrics on 127.0.0.1:" serve.log
  1
  $ grep -c "^drained:" serve.log
  1

Serving the v3 index directly: the server maps the arena read-only, so
even after an abrupt kill -9 a fresh server is back up instantly — the
reopen is a header checksum plus an mmap, no rebuild or deserialize:

  $ wtrie serve log.wtx --port 0 --port-file portv3.txt >servev3.log 2>&1 & echo $! > servev3.pid
  $ for i in $(seq 1 100); do [ -s portv3.txt ] && break; sleep 0.1; done
  $ wtrie loadgen 127.0.0.1:$(cat portv3.txt) --conns 2 --ops 200 --window 4 | grep -c "^throughput"
  1
  $ kill -9 $(cat servev3.pid)
  $ wait $(cat servev3.pid) 2>/dev/null || true
  $ rm -f portv3.txt
  $ wtrie serve log.wtx --port 0 --port-file portv3.txt >servev3b.log 2>&1 & echo $! > servev3b.pid
  $ for i in $(seq 1 100); do [ -s portv3.txt ] && break; sleep 0.1; done
  $ wtrie loadgen 127.0.0.1:$(cat portv3.txt) --conns 2 --ops 200 --window 4 | grep -c "^throughput"
  1
  $ kill -TERM $(cat servev3b.pid) && wait $(cat servev3b.pid)
  $ grep -c "^listening on 127.0.0.1:" servev3b.log
  1
  $ grep -c "^drained:" servev3b.log
  1

The tiered store serves through the same front-end: the server reads a
published snapshot of the merged run-plus-delta view:

  $ wtrie serve tiered.d --port 0 --port-file portt.txt >servet.log 2>&1 & echo $! > servet.pid
  $ for i in $(seq 1 100); do [ -s portt.txt ] && break; sleep 0.1; done
  $ wtrie loadgen 127.0.0.1:$(cat portt.txt) --conns 2 --ops 200 --window 4 | grep -c "^throughput"
  1
  $ kill -TERM $(cat servet.pid) && wait $(cat servet.pid)
  $ grep -c "^drained:" servet.log
  1
