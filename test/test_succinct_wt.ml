(* Tests for the pointerless static Wavelet Trie (Theorem 3.7 layout) and
   the byte-string facade. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Succinct_wt = Wt_core.Succinct_wt
module Str = Wt_core.String_api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let word_pool rng n_words =
  Array.init n_words (fun _ ->
      Binarize.of_bytes
        (String.init (1 + Xoshiro.int rng 6) (fun _ ->
             Char.chr (Char.code 'a' + Xoshiro.int rng 3))))

let test_agrees_with_pointered () =
  let rng = Xoshiro.create 42 in
  List.iter
    (fun (n_words, n) ->
      let pool = word_pool rng n_words in
      let seq = Array.init n (fun _ -> pool.(Xoshiro.int rng n_words)) in
      let p = Wavelet_trie.of_array seq in
      let s = Succinct_wt.of_array seq in
      check_int "length" (Wavelet_trie.length p) (Succinct_wt.length s);
      check_int "distinct" (Wavelet_trie.distinct_count p) (Succinct_wt.distinct_count s);
      for _ = 1 to 300 do
        let pos = Xoshiro.int rng n in
        check_bool "access" true
          (Bitstring.equal (Wavelet_trie.access p pos) (Succinct_wt.access s pos));
        let q = pool.(Xoshiro.int rng n_words) in
        let pos' = Xoshiro.int rng (n + 1) in
        check_int "rank" (Wavelet_trie.rank p q pos') (Succinct_wt.rank s q pos');
        let idx = Xoshiro.int rng (max 1 (n / 4)) in
        Alcotest.(check (option int))
          "select" (Wavelet_trie.select p q idx) (Succinct_wt.select s q idx);
        let pref = Bitstring.prefix q (Xoshiro.int rng (Bitstring.length q + 1)) in
        check_int "rank_prefix"
          (Wavelet_trie.rank_prefix p pref pos')
          (Succinct_wt.rank_prefix s pref pos');
        Alcotest.(check (option int))
          "select_prefix"
          (Wavelet_trie.select_prefix p pref idx)
          (Succinct_wt.select_prefix s pref idx)
      done)
    [ (1, 5); (8, 200); (60, 1500) ]

let test_empty_and_conversion () =
  let s = Succinct_wt.of_array [||] in
  check_int "empty" 0 (Succinct_wt.length s);
  check_int "empty distinct" 0 (Succinct_wt.distinct_count s);
  let rng = Xoshiro.create 7 in
  let pool = word_pool rng 20 in
  let seq = Array.init 500 (fun _ -> pool.(Xoshiro.int rng 20)) in
  let p = Wavelet_trie.of_array seq in
  let s = Succinct_wt.of_wavelet_trie p in
  let back = Succinct_wt.to_array s in
  Array.iteri
    (fun i x -> check_bool "roundtrip" true (Bitstring.equal x back.(i)))
    seq

let test_space_closer_to_lb () =
  (* With many distinct strings, dropping per-node pointers must bring the
     total closer to LB than the pointer-based static trie. *)
  let rng = Xoshiro.create 9 in
  let pool = word_pool rng 3000 in
  let seq = Array.init 20_000 (fun _ -> pool.(Xoshiro.int rng 3000)) in
  let p = Wavelet_trie.of_array seq in
  let s = Succinct_wt.of_array seq in
  let sp = Wavelet_trie.space_bits p and ss = Succinct_wt.space_bits s in
  check_bool (Printf.sprintf "succinct %d < pointered %d" ss sp) true (ss < sp);
  let st = Succinct_wt.stats s in
  let ratio = float_of_int ss /. Wt_core.Stats.lower_bound st in
  check_bool (Printf.sprintf "within 4x of LB (%.2f)" ratio) true (ratio < 4.)

(* ------------------------------------------------------------------ *)
(* String_api facade *)

let test_string_api_static () =
  let wt = Str.Static.of_list [ "a.com/x"; "b.org/y"; "a.com/x"; "a.com/z" ] in
  check_int "length" 4 (Str.Static.length wt);
  Alcotest.(check string) "access" "b.org/y"
    (Result.get_ok (Str.Static.access wt ~pos:1));
  check_int "rank" 2 (Result.get_ok (Str.Static.rank wt "a.com/x" ~pos:4));
  Alcotest.(check bool)
    "rank out of bounds" true
    (Str.Static.rank wt "a.com/x" ~pos:99
    = Error (Wt_core.Indexed_sequence.Position_out_of_bounds { pos = 99; len = 4 }));
  check_int "count" 2 (Str.Static.count wt "a.com/x");
  check_int "select" 2 (Result.get_ok (Str.Static.select wt "a.com/x" ~count:1));
  check_int "prefix count" 3 (Str.Static.count_prefix wt ~prefix:"a.com/");
  check_int "prefix rank" 1
    (Result.get_ok (Str.Static.rank_prefix wt ~prefix:"a.com/" ~pos:1));
  check_int "prefix select" 3
    (Result.get_ok (Str.Static.select_prefix wt ~prefix:"a.com/" ~count:2));
  Alcotest.(check bool)
    "absent select reports the occurrence count" true
    (Str.Static.select wt "nope" ~count:0
    = Error (Wt_core.Indexed_sequence.No_occurrence { count = 0; occurrences = 0 }));
  check_int "absent" 0 (Str.Static.count wt "nope")

let test_string_api_dynamic () =
  let wt = Str.Dynamic.create () in
  Str.Dynamic.append wt "one";
  Str.Dynamic.append wt "two";
  Str.Dynamic.insert wt ~pos:1 "one-and-a-half";
  Alcotest.(check string) "order" "one-and-a-half"
    (Result.get_ok (Str.Dynamic.access wt ~pos:1));
  check_int "distinct" 3 (Str.Dynamic.distinct_count wt);
  Str.Dynamic.delete wt ~pos:1;
  check_int "after delete" 2 (Str.Dynamic.distinct_count wt);
  Alcotest.(check string) "shifted" "two"
    (Result.get_ok (Str.Dynamic.access wt ~pos:1))

let test_string_api_append () =
  let wt = Str.Append.create () in
  List.iter (Str.Append.append wt) [ "x"; "y" ];
  Str.Append.append_batch wt [| "x"; "xy" |];
  check_int "rank x" 2 (Str.Append.count wt "x");
  check_int "prefix x" 3 (Str.Append.count_prefix wt ~prefix:"x");
  Alcotest.(check string) "access" "xy"
    (Result.get_ok (Str.Append.access wt ~pos:3))

let () =
  Alcotest.run "wt_succinct_wt"
    [
      ( "succinct_wt",
        [
          Alcotest.test_case "agrees with pointer-based" `Quick test_agrees_with_pointered;
          Alcotest.test_case "empty and conversion" `Quick test_empty_and_conversion;
          Alcotest.test_case "space closer to LB" `Quick test_space_closer_to_lb;
        ] );
      ( "string_api",
        [
          Alcotest.test_case "static facade" `Quick test_string_api_static;
          Alcotest.test_case "dynamic facade" `Quick test_string_api_dynamic;
          Alcotest.test_case "append facade" `Quick test_string_api_append;
        ] );
    ]
