(* Cross-cutting property tests: algebraic laws relating the indexed-
   sequence operations to each other, run with qcheck over random inputs
   and all three Wavelet Trie variants. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Wavelet_trie = Wt_core.Wavelet_trie
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Range = Wt_core.Range
module Dyn_rle = Wt_bitvector.Dyn_rle

(* words over a tiny alphabet to force heavy sharing and duplicates *)
let word_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 1 5))
let seq_gen = QCheck.Gen.(list_size (int_range 1 120) word_gen)
let seq_arb = QCheck.make ~print:(fun l -> String.concat "," l) seq_gen

let encode_seq words = Array.of_list (List.map Binarize.of_bytes words)

(* rank is monotone and increments exactly at occurrences *)
let prop_rank_stepwise words =
  let seq = encode_seq words in
  let wt = Wavelet_trie.of_array seq in
  let n = Array.length seq in
  List.for_all
    (fun s ->
      let ok = ref true in
      for pos = 0 to n - 1 do
        let step = Wavelet_trie.rank wt s (pos + 1) - Wavelet_trie.rank wt s pos in
        let expect = if Bitstring.equal seq.(pos) s then 1 else 0 in
        if step <> expect then ok := false
      done;
      !ok)
    (Array.to_list seq)

(* select enumerates exactly the matching positions, in order *)
let prop_select_enumerates words =
  let seq = encode_seq words in
  let wt = Wavelet_trie.of_array seq in
  let s = seq.(0) in
  let expected =
    List.filteri (fun _ _ -> true) (Array.to_list seq)
    |> List.mapi (fun i x -> (i, x))
    |> List.filter (fun (_, x) -> Bitstring.equal x s)
    |> List.map fst
  in
  let got =
    List.init (List.length expected) (fun k ->
        match Wavelet_trie.select wt s k with Some p -> p | None -> -1)
  in
  got = expected && Wavelet_trie.select wt s (List.length expected) = None

(* rank s = rank_prefix (s as whole-string prefix), since Sset is
   prefix-free (the paper's observation after Lemma 3.3) *)
let prop_rank_eq_rank_prefix words =
  let seq = encode_seq words in
  let wt = Wavelet_trie.of_array seq in
  let n = Array.length seq in
  Array.for_all
    (fun s -> Wavelet_trie.rank wt s n = Wavelet_trie.rank_prefix wt s n)
    seq

(* rank_prefix is monotone in prefix length *)
let prop_rank_prefix_monotone words =
  let seq = encode_seq words in
  let wt = Wavelet_trie.of_array seq in
  let n = Array.length seq in
  let s = seq.(Array.length seq / 2) in
  let ok = ref true in
  for l = 0 to Bitstring.length s - 1 do
    let a = Wavelet_trie.rank_prefix wt (Bitstring.prefix s l) n in
    let b = Wavelet_trie.rank_prefix wt (Bitstring.prefix s (l + 1)) n in
    if b > a then ok := false
  done;
  !ok

(* distinct over the full range sums to n and matches rank counts *)
let prop_distinct_counts words =
  let seq = encode_seq words in
  let wt = Wavelet_trie.of_array seq in
  let n = Array.length seq in
  let d = Range.Pointer.distinct wt ~lo:0 ~hi:n in
  List.fold_left (fun acc (_, c) -> acc + c) 0 d = n
  && List.for_all (fun (s, c) -> Wavelet_trie.rank wt s n = c) d
  && List.length d = Wavelet_trie.distinct_count wt

(* the three variants stay in lockstep under a common build *)
let prop_variants_lockstep words =
  let seq = encode_seq words in
  let s = Wavelet_trie.of_array seq in
  let a = Append_wt.of_array seq in
  let d = Dynamic_wt.of_array seq in
  let n = Array.length seq in
  let q = seq.(0) in
  Wavelet_trie.rank s q n = Append_wt.rank a q n
  && Append_wt.rank a q n = Dynamic_wt.rank d q n
  && Wavelet_trie.select s q 0 = Dynamic_wt.select d q 0
  && Wavelet_trie.dump s = Append_wt.dump a
  && Append_wt.dump a = Dynamic_wt.dump d

(* deleting position i equals building from the sequence without it *)
let prop_delete_is_removal (words, k) =
  let seq = encode_seq words in
  let n = Array.length seq in
  let pos = k mod n in
  let d = Dynamic_wt.of_array seq in
  Dynamic_wt.delete d pos;
  Dynamic_wt.check_invariants d;
  let rest = Array.of_list (List.filteri (fun i _ -> i <> pos) (Array.to_list seq)) in
  let expect = Dynamic_wt.of_array rest in
  Dynamic_wt.dump d = Dynamic_wt.dump expect

(* a random insert then rebuild-compare *)
let prop_insert_matches_rebuild (words, k, w) =
  let seq = encode_seq words in
  let n = Array.length seq in
  let pos = k mod (n + 1) in
  let s = Binarize.of_bytes w in
  let d = Dynamic_wt.of_array seq in
  Dynamic_wt.insert d pos s;
  Dynamic_wt.check_invariants d;
  let spliced =
    Array.concat [ Array.sub seq 0 pos; [| s |]; Array.sub seq pos (n - pos) ]
  in
  Dynamic_wt.dump d = Dynamic_wt.dump (Dynamic_wt.of_array spliced)

(* dynamic bitvector: rank/select are inverse on both bit values *)
let prop_bv_rank_select_inverse bits =
  let bv = Dyn_rle.of_bits (Array.of_list bits) in
  List.for_all
    (fun b ->
      let total = if b then Dyn_rle.ones bv else Dyn_rle.zeros bv in
      let ok = ref true in
      for k = 0 to total - 1 do
        let p = Dyn_rle.select bv b k in
        if Dyn_rle.rank bv b p <> k then ok := false;
        if Dyn_rle.access bv p <> b then ok := false
      done;
      !ok)
    [ true; false ]

(* access_rank coherence across implementations *)
let prop_access_rank_coherent bits =
  let arr = Array.of_list bits in
  let bv = Dyn_rle.of_bits arr in
  let buf = Wt_bits.Bitbuf.create () in
  Array.iter (Wt_bits.Bitbuf.add buf) arr;
  let rrr = Wt_bitvector.Rrr.of_bitbuf buf in
  let ok = ref true in
  Array.iteri
    (fun pos _ ->
      let b1, r1 = Dyn_rle.access_rank bv pos in
      let b2, r2 = Wt_bitvector.Rrr.access_rank rrr pos in
      if b1 <> b2 || r1 <> r2 then ok := false;
      if r1 <> Dyn_rle.rank bv b1 pos then ok := false)
    arr;
  !ok

(* Appendix A, Lemma A.1: nH0(S) >= (sigma - 1) log2 n whenever every
   symbol occurs at least once. *)
let prop_lemma_a1 words =
  let seq = encode_seq words in
  let wt = Wavelet_trie.of_array seq in
  let st = Wavelet_trie.stats wt in
  let n = float_of_int st.n in
  let sigma = float_of_int st.distinct in
  st.n = 0 || st.seq_h0_bits +. 1e-6 >= (sigma -. 1.) *. (log n /. log 2.)

(* Lemma 3.5: H0(S) <= h~ <= average string length (in bits). *)
let prop_lemma_3_5 words =
  let seq = encode_seq words in
  let wt = Wavelet_trie.of_array seq in
  let st = Wavelet_trie.stats wt in
  let n = Array.length seq in
  if n = 0 then true
  else begin
    let avg_len =
      float_of_int (Array.fold_left (fun a s -> a + Bitstring.length s) 0 seq)
      /. float_of_int n
    in
    let h0 = st.seq_h0_bits /. float_of_int n in
    h0 <= st.avg_height +. 1e-9 && st.avg_height <= avg_len +. 1e-9
  end

let tests =
  let open QCheck in
  [
    Test.make ~name:"rank counts occurrences stepwise" ~count:80 seq_arb prop_rank_stepwise;
    Test.make ~name:"Lemma A.1: nH0 >= (sigma-1) log n" ~count:150 seq_arb prop_lemma_a1;
    Test.make ~name:"Lemma 3.5: H0 <= h~ <= avg length" ~count:150 seq_arb prop_lemma_3_5;
    Test.make ~name:"select enumerates positions" ~count:120 seq_arb prop_select_enumerates;
    Test.make ~name:"rank = rank_prefix on whole strings" ~count:120 seq_arb
      prop_rank_eq_rank_prefix;
    Test.make ~name:"rank_prefix monotone in prefix" ~count:120 seq_arb
      prop_rank_prefix_monotone;
    Test.make ~name:"distinct partitions the range" ~count:80 seq_arb prop_distinct_counts;
    Test.make ~name:"variants lockstep" ~count:60 seq_arb prop_variants_lockstep;
    Test.make ~name:"delete = rebuild without element" ~count:60
      (pair seq_arb small_nat) prop_delete_is_removal;
    Test.make ~name:"insert = rebuild with element" ~count:60
      (triple seq_arb small_nat (make word_gen))
      prop_insert_matches_rebuild;
    Test.make ~name:"dyn bitvector rank/select inverse" ~count:80
      (list_of_size Gen.(int_range 0 300) bool)
      prop_bv_rank_select_inverse;
    Test.make ~name:"access_rank coherent across FIDs" ~count:80
      (list_of_size Gen.(int_range 0 300) bool)
      prop_access_rank_coherent;
  ]

let () =
  Alcotest.run "wt_properties"
    [ ("cross-cutting", List.map QCheck_alcotest.to_alcotest tests) ]
