(* End-to-end soak: a long randomized session mixing every operation the
   library offers against the Naive oracle, on a workload resembling the
   paper's motivation (skewed URL log with a growing alphabet).  Catches
   interaction bugs that per-module tests cannot. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Naive = Wt_core.Indexed_sequence.Naive
module Dynamic_wt = Wt_core.Dynamic_wt
module Append_wt = Wt_core.Append_wt
module Range = Wt_core.Range
module Urls = Wt_workload.Urls

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_dynamic_soak () =
  let rng = Xoshiro.create 31337 in
  let gen = Urls.create ~seed:31337 ~hosts:12 ~paths_per_host:10 () in
  let oracle = Naive.create () in
  let wt = Dynamic_wt.create () in
  let fresh = ref 0 in
  for step = 1 to 12_000 do
    let n = Naive.length oracle in
    (match Xoshiro.int rng 20 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
        (* insert a (possibly repeated) log line at a random position *)
        let s = Urls.next_encoded gen in
        let pos = Xoshiro.int rng (n + 1) in
        Naive.insert oracle pos s;
        Dynamic_wt.insert wt pos s
    | 7 | 8 | 9 ->
        (* append *)
        let s = Urls.next_encoded gen in
        Naive.append oracle s;
        Dynamic_wt.append wt s
    | 10 | 11 ->
        (* brand-new string: alphabet grows *)
        incr fresh;
        let s = Binarize.of_bytes (Printf.sprintf "novel://%d" !fresh) in
        let pos = Xoshiro.int rng (n + 1) in
        Naive.insert oracle pos s;
        Dynamic_wt.insert wt pos s
    | 12 | 13 | 14 | 15 | 16 when n > 0 ->
        let pos = Xoshiro.int rng n in
        Naive.delete oracle pos;
        Dynamic_wt.delete wt pos
    | _ when n > 0 ->
        (* point query *)
        let pos = Xoshiro.int rng n in
        check_bool "access" true
          (Bitstring.equal (Naive.access oracle pos) (Dynamic_wt.access wt pos))
    | _ -> ());
    (* periodic deep checks *)
    if step mod 1500 = 0 then begin
      Dynamic_wt.check_invariants wt;
      let n = Naive.length oracle in
      check_int "length" n (Dynamic_wt.length wt);
      check_int "distinct" (Naive.distinct_count oracle) (Dynamic_wt.distinct_count wt);
      if n > 4 then begin
        let lo = Xoshiro.int rng (n / 2) in
        let hi = lo + Xoshiro.int rng (n - lo) in
        (* distinct in range agrees with a scan *)
        let tbl = Hashtbl.create 16 in
        for i = lo to hi - 1 do
          let w = Bitstring.to_string (Naive.access oracle i) in
          Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w))
        done;
        let got = Range.Dynamic.distinct wt ~lo ~hi in
        check_int "range distinct count" (Hashtbl.length tbl) (List.length got);
        List.iter
          (fun (s, c) ->
            check_int "range count" (Option.value ~default:(-1)
              (Hashtbl.find_opt tbl (Bitstring.to_string s))) c)
          got;
        (* top-1 equals max count *)
        (match Range.Dynamic.top_k wt ~lo ~hi 1 with
        | [ (_, c) ] ->
            let m = Hashtbl.fold (fun _ c m -> max c m) tbl 0 in
            check_int "top-1" m c
        | [] -> check_int "top-1 empty" 0 (hi - lo)
        | _ -> Alcotest.fail "top_k 1 returned several")
      end
    end
  done;
  Dynamic_wt.check_invariants wt

let test_append_soak () =
  (* long streaming session with periodic full verification *)
  let gen = Urls.create ~seed:555 ~hosts:20 () in
  let rng = Xoshiro.create 555 in
  let oracle = Naive.create () in
  let wt = Append_wt.create () in
  for step = 1 to 30_000 do
    let s = Urls.next_encoded gen in
    Naive.append oracle s;
    Append_wt.append wt s;
    if step mod 6000 = 0 then begin
      Append_wt.check_invariants wt;
      for _ = 1 to 100 do
        let pos = Xoshiro.int rng step in
        check_bool "access" true
          (Bitstring.equal (Naive.access oracle pos) (Append_wt.access wt pos));
        let s = Naive.access oracle (Xoshiro.int rng step) in
        check_int "rank" (Naive.rank oracle s pos) (Append_wt.rank wt s pos)
      done;
      (* per-host prefix counts agree with a scan *)
      for h = 0 to Urls.host_count gen - 1 do
        let p = Urls.host_prefix gen h in
        check_int
          (Printf.sprintf "host %d prefix count" h)
          (Naive.rank_prefix oracle p step)
          (Append_wt.rank_prefix wt p step)
      done
    end
  done

(* Deterministic concurrency stress: hammer one 4-way domain pool with a
   fixed-seed stream of mixed-size batches — empty, size-1, and up to a
   few thousand ops — through the parallel executor, asserting (1) every
   result lands at its own index (no reordering, no lost items: the
   expected vector is computed by the sequential engine up front) and
   (2) the obs counters sum exactly across domains: every op is counted
   exactly once no matter which domain ran its shard, and the pool's
   always-on per-domain histograms account for every task. *)
let test_par_soak () =
  let module Probe = Wt_obs.Probe in
  let module Pool = Wt_par.Pool in
  let rng = Xoshiro.create 4242 in
  let n = 4096 in
  let gen = Urls.create ~seed:4242 () in
  let strings = Urls.raw_sequence gen n in
  let wt = Wtrie.Static.of_array strings in
  let engine = Wt_exec.Exec.Static.query_batch in
  (* all-valid ops so the Exec_* counters are exactly predictable *)
  let valid_ops nops =
    Array.init nops (fun i ->
        if i land 1 = 0 then Wtrie.Access { pos = Xoshiro.int rng n }
        else Wtrie.Rank { s = strings.(Xoshiro.int rng n); pos = Xoshiro.int rng (n + 1) })
  in
  let sizes = [ 0; 1; 2; 3; 5; 16; 64; 257; 1024; 4999 ] in
  let rounds = 25 in
  let batches =
    List.concat_map (fun _ -> List.map valid_ops sizes) (List.init rounds Fun.id)
  in
  (* expected results and counter totals, before probes are on *)
  let expected = List.map (fun ops -> engine wt ops) batches in
  let exp_tasks = ref 0 and exp_par_batches = ref 0 and exp_engine_calls = ref 0 in
  let exp_ops = ref 0 in
  List.iter
    (fun ops ->
      let s = Array.length ops in
      let shards = min 4 s in
      exp_ops := !exp_ops + s;
      if shards >= 2 then begin
        incr exp_par_batches;
        exp_tasks := !exp_tasks + shards;
        exp_engine_calls := !exp_engine_calls + shards
      end
      else if s > 0 then incr exp_engine_calls)
    batches;
  let pool = Pool.create ~size:4 () in
  Probe.reset ();
  Probe.enable ();
  List.iter2
    (fun ops exp ->
      let got =
        Wt_par.Par_exec.query_batch ~pool ~min_shard:1 ~domains:4 engine wt ops
      in
      if Array.length got <> Array.length ops then
        Alcotest.failf "batch of %d: %d results" (Array.length ops) (Array.length got);
      Array.iteri
        (fun i r -> if r <> exp.(i) then Alcotest.failf "batch of %d: op %d differs"
                       (Array.length ops) i)
        got)
    batches expected;
  let c m = Probe.counter m in
  Probe.disable ();
  check_int "par_batch" !exp_par_batches (c Wt_obs.Metric.Par_batch);
  check_int "par_shard_count" !exp_tasks (c Wt_obs.Metric.Par_shards);
  check_int "par_task" !exp_tasks (c Wt_obs.Metric.Par_task);
  check_bool "par_steal <= par_task" true
    (c Wt_obs.Metric.Par_steal <= c Wt_obs.Metric.Par_task);
  check_int "exec_batch (engine calls)" !exp_engine_calls (c Wt_obs.Metric.Exec_batch);
  check_int "exec_batch_ops (no op lost or duplicated)" !exp_ops
    (c Wt_obs.Metric.Exec_batch_ops);
  (* per-shard latency histogram: one sample per shard run *)
  check_int "par_shard_run samples" !exp_tasks
    (Probe.histogram Wt_obs.Metric.Par_shard_run).Wt_obs.Histogram.count;
  (* the pool's per-domain histograms account for every task exactly once *)
  let domain_total =
    Array.fold_left
      (fun acc (_, s) -> acc + s.Wt_obs.Histogram.count)
      0 (Pool.domain_latencies pool)
  in
  check_int "per-domain task counts sum" !exp_tasks domain_total;
  Pool.shutdown pool;
  Probe.reset ()

(* Tiered-store soak: sustained ingest through many background and
   forced compactions, with lockstep oracle queries, periodic
   close/reopen (WAL replay + manifest + run reopen), and a final
   clean-verify.  Wall-clock capped at 60s and gated behind WTRIE_SOAK
   so the default runtest stays fast; CI and `WTRIE_SOAK=1 dune exec
   test/test_soak.exe` run it for real. *)
let test_tiered_soak () =
  match Sys.getenv_opt "WTRIE_SOAK" with
  | None -> ()
  | Some _ ->
      let module T = Wtrie.Tiered in
      let module Pool = Wt_par.Pool in
      let deadline = Unix.gettimeofday () +. 60.0 in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "wt_soak_tiered_%d" (Unix.getpid ()))
      in
      let rm_rf d =
        if Sys.file_exists d then begin
          Array.iter (fun e -> Sys.remove (Filename.concat d e)) (Sys.readdir d);
          Sys.rmdir d
        end
      in
      rm_rf dir;
      let t = ref (T.create ~threshold:2048 dir) in
      let gen = Urls.create ~seed:777 ~hosts:16 () in
      let rng = Xoshiro.create 777 in
      let oracle = Naive.create () in
      let pool = Pool.create ~size:4 () in
      let steps = ref 0 and reopens = ref 0 and forced = ref 0 in
      while Unix.gettimeofday () < deadline && !steps < 400_000 do
        incr steps;
        let line = Urls.next gen in
        Naive.append oracle (Binarize.of_bytes line);
        T.ingest !t line;
        if !steps mod 5_000 = 0 then begin
          let n = Naive.length oracle in
          check_int "soak length" n (T.length !t);
          for _ = 1 to 32 do
            let pos = Xoshiro.int rng n in
            check_bool "soak access" true
              (T.access !t ~pos = Ok (Binarize.to_bytes (Naive.access oracle pos)))
          done;
          let probe = Binarize.to_bytes (Naive.access oracle (Xoshiro.int rng n)) in
          check_int "soak count" (Naive.rank oracle (Binarize.of_bytes probe) n) (T.count !t probe);
          (* merged batch across the live tiers, on the parallel engine *)
          let ops =
            Array.init 64 (fun i ->
                if i land 1 = 0 then Wtrie.Access { pos = Xoshiro.int rng n }
                else Wtrie.Rank { s = probe; pos = Xoshiro.int rng (n + 1) })
          in
          Array.iteri
            (fun i r ->
              match (ops.(i), r) with
              | Wtrie.Access { pos }, Ok (Wtrie.Str s) ->
                  check_bool "soak batch access" true
                    (s = Binarize.to_bytes (Naive.access oracle pos))
              | Wtrie.Rank { s; pos }, Ok (Wtrie.Int c) ->
                  check_int "soak batch rank" (Naive.rank oracle (Binarize.of_bytes s) pos) c
              | _ -> Alcotest.fail "soak batch: unexpected result shape")
            (T.query_batch ~domains:4 !t ops)
        end;
        if !steps mod 17_000 = 0 then begin
          incr forced;
          T.compact ~pool !t
        end;
        if !steps mod 50_000 = 0 then begin
          incr reopens;
          T.close !t;
          let t', r = T.open_ ~threshold:2048 dir in
          check_bool "soak reopen clean" true
            ((not r.T.r_wal_reset) && r.T.r_dropped_bytes = 0);
          t := t';
          check_int "soak reopen length" (Naive.length oracle) (T.length !t)
        end
      done;
      T.compact ~pool !t;
      Pool.shutdown pool;
      check_int "soak final length" (Naive.length oracle) (T.length !t);
      check_bool "soak ran through compactions" true (T.generation !t >= 2);
      T.close !t;
      let rep = T.verify dir in
      check_bool "soak final verify clean" true rep.T.v_clean;
      check_int "soak final verify length" (Naive.length oracle) rep.T.v_length;
      Printf.printf "tiered soak: %d ingests, %d forced compactions, %d reopens, %d runs\n%!"
        !steps !forced !reopens rep.T.v_runs;
      rm_rf dir

let () =
  Alcotest.run "wt_soak"
    [
      ( "soak",
        [
          Alcotest.test_case "dynamic 12k mixed ops" `Slow test_dynamic_soak;
          Alcotest.test_case "append-only 30k stream" `Slow test_append_soak;
          Alcotest.test_case "domain pool mixed-size batches" `Slow test_par_soak;
          Alcotest.test_case "tiered 60s ingest/compact (WTRIE_SOAK)" `Slow test_tiered_soak;
        ] );
    ]
